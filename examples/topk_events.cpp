// Top-k event retrieval (Section 3.2): find the k most probable
// Entered-Room events in a long synthetic stream and compare the work done
// by the top-k B+Tree method against the plain B+Tree method + Sort plan.
//
//   ./topk_events [archive-dir]

#include <cstdio>

#include "common/logging.h"
#include "caldera/system.h"
#include "rfid/workload.h"

using namespace caldera;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/caldera_topk_events";

  // A dense, peaky stream: every snippet visits the target room, so the
  // query signal has many sharp peaks -- exactly the regime where the
  // Threshold Algorithm pays off (Section 4.2.2).
  SnippetStreamSpec spec;
  spec.num_snippets = 120;
  spec.density = 1.0;
  spec.match_rate = 1.0;
  spec.seed = 99;
  auto workload = MakeSnippetStream(spec);
  CALDERA_CHECK_OK(workload.status());

  Caldera system(dir);
  Status st = system.archive()->CreateStream("tag58", workload->stream);
  if (st.ok()) {
    CALDERA_CHECK_OK(system.archive()->BuildBtc("tag58", 0));
    CALDERA_CHECK_OK(system.archive()->BuildBtp("tag58", 0));
  } else if (st.code() != StatusCode::kAlreadyExists) {
    CALDERA_CHECK_OK(st);
  }

  RegularQuery query = workload->EnteredRoomFixed();
  std::printf("stream: %llu timesteps; query: %s\n",
              static_cast<unsigned long long>(workload->stream.length()),
              query.ToString().c_str());

  for (size_t k : {1u, 5u, 20u}) {
    ExecOptions topk_options;
    topk_options.method = AccessMethodKind::kTopK;
    topk_options.k = k;
    auto topk = system.Execute("tag58", query, topk_options);
    CALDERA_CHECK_OK(topk.status());

    ExecOptions btree_options;
    btree_options.method = AccessMethodKind::kBTree;
    btree_options.k = k;  // B+Tree computes everything, then sorts.
    auto btree = system.Execute("tag58", query, btree_options);
    CALDERA_CHECK_OK(btree.status());

    std::printf("\nk=%zu\n", k);
    std::printf("  %-18s %10s %14s %12s\n", "method", "Reg-updates",
                "stream-fetches", "candidates");
    std::printf("  %-18s %10llu %14llu %12llu\n", "topk-btree (TA)",
                static_cast<unsigned long long>(topk->stats.reg_updates),
                static_cast<unsigned long long>(
                    topk->stats.stream_io.fetches),
                static_cast<unsigned long long>(
                    topk->stats.relevant_timesteps +
                    topk->stats.pruned_candidates));
    std::printf("  %-18s %10llu %14llu %12llu\n", "btree + sort",
                static_cast<unsigned long long>(btree->stats.reg_updates),
                static_cast<unsigned long long>(
                    btree->stats.stream_io.fetches),
                static_cast<unsigned long long>(btree->stats.intervals));

    std::printf("  top-%zu matches (TA):\n", k);
    size_t shown = 0;
    for (const TimestepProbability& e : topk->signal) {
      if (shown++ >= 5) {
        std::printf("    ...\n");
        break;
      }
      std::printf("    t=%-6llu p=%.4f\n",
                  static_cast<unsigned long long>(e.time), e.prob);
    }
    // The two plans must retrieve identical probabilities.
    for (size_t i = 0; i < std::min(topk->signal.size(), btree->signal.size());
         ++i) {
      if (std::abs(topk->signal[i].prob - btree->signal[i].prob) > 1e-7) {
        std::printf("  WARNING: rank %zu disagrees!\n", i);
      }
    }
  }
  return 0;
}
