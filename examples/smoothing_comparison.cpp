// Compares the two smoothing substrates on the same noisy RFID trace
// (Section 2.1 of the paper describes the sample-based style; we also
// provide exact forward-backward):
//   * exact forward-backward smoothing with support truncation,
//   * sample-based (particle) smoothing,
//   * Viterbi decoding (one hard trajectory, no uncertainty),
// and shows how each affects a downstream Entered-Room event query.
//
//   ./smoothing_comparison

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "hmm/particle_smoother.h"
#include "hmm/smoother.h"
#include "hmm/viterbi.h"
#include "reg/reg_operator.h"
#include "rfid/layout.h"
#include "rfid/simulator.h"

using namespace caldera;  // NOLINT: example brevity.

int main() {
  // A small corridor deployment and a scripted walk into Room5.
  BuildingLayout layout = BuildingLayout::MakeCorridor(
      {.segments = 10, .rooms_per_segment = 1, .detect_prob = 0.8});
  StreamSchema schema = layout.MakeSchema();
  Hmm hmm = layout.MakeHmm({});
  auto h0 = layout.LocationByName("H0");
  auto h5 = layout.LocationByName("H5");
  auto room = layout.LocationByName("Room5_0");
  CALDERA_CHECK_OK(h0.status());
  CALDERA_CHECK_OK(h5.status());
  CALDERA_CHECK_OK(room.status());
  hmm.SetInitial(Distribution::Point(*h0));

  PersonSimulator simulator(&layout, /*seed=*/20260705);
  auto truth = simulator.SimulateRoutine(*h0, {{*room, 15}, {*h0, 0}});
  CALDERA_CHECK_OK(truth.status());
  auto obs = simulator.Observe(*truth, hmm);
  CALDERA_CHECK_OK(obs.status());
  std::printf("trace: %zu timesteps; antenna reads: ", truth->size());
  int reads = 0;
  for (uint32_t o : *obs) reads += o != 0 ? 1 : 0;
  std::printf("%d (%.0f%% silence)\n", reads,
              100.0 * (obs->size() - reads) / obs->size());

  // The event query: walked down H5 into Room5.
  RegularQuery query = RegularQuery::Sequence(
      "EnteredRoom5", {Predicate::Equality(0, *h5, "H5"),
                       Predicate::Equality(0, *room, "Room5_0")});

  // Ground truth: the timestep the person actually entered.
  uint64_t entry_t = 0;
  for (size_t t = 1; t < truth->size(); ++t) {
    if ((*truth)[t] == *room && (*truth)[t - 1] == *h5) {
      entry_t = t;
      break;
    }
  }
  std::printf("ground truth: entered Room5 at t=%llu\n\n",
              static_cast<unsigned long long>(entry_t));

  auto report = [&](const char* name, const MarkovianStream& stream) {
    std::vector<double> signal = RunRegOverStream(query, stream);
    size_t peak = 0;
    for (size_t t = 1; t < signal.size(); ++t) {
      if (signal[t] > signal[peak]) peak = t;
    }
    uint64_t support = 0;
    for (uint64_t t = 0; t < stream.length(); ++t) {
      support += stream.marginal(t).support_size();
    }
    std::printf("%-24s peak p=%.3f at t=%-4zu (truth %llu)  "
                "avg support %.1f states/timestep\n",
                name, signal[peak], peak,
                static_cast<unsigned long long>(entry_t),
                static_cast<double>(support) / stream.length());
  };

  auto exact = SmoothToMarkovianStream(hmm, *obs, schema,
                                       {.truncate_eps = 1e-3});
  CALDERA_CHECK_OK(exact.status());
  report("forward-backward", *exact);

  auto particle = ParticleSmoothToMarkovianStream(
      hmm, *obs, schema,
      {.num_particles = 2048, .num_trajectories = 1024, .seed = 7});
  CALDERA_CHECK_OK(particle.status());
  report("particle (2048/1024)", *particle);

  auto sparse_particle = ParticleSmoothToMarkovianStream(
      hmm, *obs, schema,
      {.num_particles = 128, .num_trajectories = 64, .seed = 7});
  CALDERA_CHECK_OK(sparse_particle.status());
  report("particle (128/64)", *sparse_particle);

  // Viterbi: a single deterministic trajectory -- the "cleaned stream"
  // baseline the paper's related work contrasts against. Its event answer
  // is binary.
  auto decoded = ViterbiDecode(hmm, *obs);
  CALDERA_CHECK_OK(decoded.status());
  bool viterbi_match = false;
  uint64_t viterbi_t = 0;
  for (size_t t = 1; t < decoded->states.size(); ++t) {
    if (decoded->states[t] == *room && decoded->states[t - 1] == *h5) {
      viterbi_match = true;
      viterbi_t = t;
      break;
    }
  }
  std::printf("%-24s %s%llu\n", "viterbi (hard path)",
              viterbi_match ? "event at t=" : "event MISSED; t=",
              static_cast<unsigned long long>(viterbi_t));
  std::printf(
      "\n(probabilistic smoothing preserves the uncertainty the event query "
      "needs;\n more particles -> wider supports and smoother signals; a "
      "hard trajectory\n either finds the event or silently drops it)\n");
  return 0;
}
