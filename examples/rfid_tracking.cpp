// End-to-end RFID tracking pipeline (Figure 1 of the paper):
// simulate a person in a two-floor building, log noisy antenna reads,
// smooth them into a Markovian stream, archive + index it, then answer the
// paper's two example queries:
//   Entered-Room (Figure 3(a))  -- fixed-length
//   Coffee-Break (Figure 3(b))  -- variable-length (Kleene)
// Also prints the Figure 4-style probability signal with threshold event
// detection.
//
//   ./rfid_tracking [archive-dir]

#include <cstdio>

#include "common/logging.h"
#include "caldera/system.h"
#include "rfid/workload.h"

using namespace caldera;  // NOLINT: example brevity.

namespace {

void PrintSignal(const char* title, const QuerySignal& signal,
                 double threshold) {
  std::printf("\n%s\n", title);
  std::printf("  events above p=%.2f:\n", threshold);
  int events = 0;
  uint64_t last = 0;
  for (const TimestepProbability& e : signal) {
    if (e.prob > threshold) {
      // Collapse runs of consecutive above-threshold timesteps.
      if (events == 0 || e.time > last + 3) {
        std::printf("    t=%-6llu p=%.3f\n",
                    static_cast<unsigned long long>(e.time), e.prob);
      }
      last = e.time;
      ++events;
    }
  }
  if (events == 0) {
    std::printf("    (none)\n");
  }
  QuerySignal top = TopKOfSignal(signal, 3);
  std::printf("  top-3 peaks:");
  for (const TimestepProbability& e : top) {
    std::printf("  (t=%llu p=%.3f)", static_cast<unsigned long long>(e.time),
                e.prob);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/caldera_rfid_tracking";

  // 1. Simulate + smooth: a ~7-minute office routine in the paper-scale
  //    building (352 locations, 38 corridor antennas).
  RoutineSpec spec;
  spec.length = 450;
  spec.num_excursions = 3;
  spec.seed = 20260705;
  auto workload = MakeRoutineStream(spec);
  CALDERA_CHECK_OK(workload.status());
  std::printf("building: %u locations, %zu antennas\n",
              workload->layout.num_locations(),
              workload->layout.antennas().size());
  std::printf("smoothed stream: %llu timesteps (valid: %s)\n",
              static_cast<unsigned long long>(workload->stream.length()),
              workload->stream.Validate(1e-6).ToString().c_str());

  // 2. Archive and index.
  Caldera system(dir);
  Status st = system.archive()->CreateStream("james", workload->stream);
  if (st.ok()) {
    CALDERA_CHECK_OK(system.archive()->BuildBtc("james", 0));
    CALDERA_CHECK_OK(system.archive()->BuildBtp("james", 0));
    CALDERA_CHECK_OK(system.archive()->BuildMc("james", {.alpha = 2}));
    CALDERA_CHECK_OK(
        system.archive()->BuildJoinIndex("james", workload->types, "type"));
  } else if (st.code() != StatusCode::kAlreadyExists) {
    CALDERA_CHECK_OK(st);
  }

  // 3. Entered-Room on the person's own office (dense data) and on an
  //    excursion room (sparse data).
  for (uint32_t room : {workload->own_office, workload->excursion_rooms[0]}) {
    auto query = workload->EnteredRoom(room, /*num_links=*/2);
    CALDERA_CHECK_OK(query.status());
    auto plan = system.Plan("james", *query, {});
    CALDERA_CHECK_OK(plan.status());
    auto result = system.Execute("james", *query, {});
    CALDERA_CHECK_OK(result.status());
    std::printf("\n== %s ==\n  density=%.3f  planner: %s\n",
                query->ToString().c_str(), plan->estimated_density,
                AccessMethodName(result->method));
    PrintSignal("  signal (Figure 4 style)", result->signal, 0.3);
    std::printf("  Reg updates: %llu of %llu timesteps\n",
                static_cast<unsigned long long>(result->stats.reg_updates),
                static_cast<unsigned long long>(workload->stream.length()));
  }

  // 4. Coffee-Break (variable length, via the LocationType dimension
  //    table), exact through the MC index.
  auto coffee = workload->CoffeeBreak();
  CALDERA_CHECK_OK(coffee.status());
  ExecOptions mc_options;
  mc_options.method = AccessMethodKind::kMcIndex;
  auto exact = system.Execute("james", *coffee, mc_options);
  CALDERA_CHECK_OK(exact.status());
  std::printf("\n== %s (MC index) ==\n", coffee->ToString().c_str());
  PrintSignal("  signal", exact->signal, 0.2);

  // ... and approximately through the semi-independent method.
  ExecOptions approx_options;
  approx_options.method = AccessMethodKind::kSemiIndependent;
  auto approx = system.Execute("james", *coffee, approx_options);
  CALDERA_CHECK_OK(approx.status());
  double max_err = 0;
  for (size_t i = 0;
       i < std::min(exact->signal.size(), approx->signal.size()); ++i) {
    max_err = std::max(
        max_err, std::abs(exact->signal[i].prob - approx->signal[i].prob));
  }
  std::printf("\nsemi-independent vs exact: max abs error %.4f\n", max_err);
  std::printf(
      "(the Coffee-Break query touches every corridor timestep, so on this\n"
      " dense query all variable-length methods approach a full scan -- the\n"
      " regime the paper calls data density ~1)\n");
  return 0;
}
