// Quickstart: build a tiny Markovian stream by hand, archive and index it,
// and run the paper's Entered-Room event query with two access methods.
//
//   ./quickstart [archive-dir]

#include <cstdio>

#include "common/logging.h"
#include "caldera/system.h"
#include "markov/stream.h"
#include "query/parser.h"

using namespace caldera;  // NOLINT: example brevity.

namespace {

// A 6-timestep stream over {Hallway, Office, Lounge}: Bob probably walks
// from the hallway into his office.
MarkovianStream MakeTinyStream() {
  StreamSchema schema =
      SingleAttributeSchema("loc", {"Hallway", "Office", "Lounge"});
  MarkovianStream stream(schema);

  // t0: certainly in the hallway.
  stream.Append(Distribution::Point(0), Cpt());

  // A fixed motion model: from the hallway Bob enters the office (60%),
  // drifts to the lounge (10%) or stays (30%); rooms are sticky.
  Cpt motion;
  motion.SetRow(0, {{0, 0.3}, {1, 0.6}, {2, 0.1}});
  motion.SetRow(1, {{0, 0.2}, {1, 0.8}});
  motion.SetRow(2, {{0, 0.1}, {2, 0.9}});

  Distribution current = stream.marginal(0);
  for (int t = 1; t < 6; ++t) {
    current = motion.Propagate(current);
    stream.Append(current, motion);
  }
  return stream;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/caldera_quickstart";

  MarkovianStream stream = MakeTinyStream();
  Status valid = stream.Validate();
  std::printf("stream of %llu timesteps, valid: %s\n",
              static_cast<unsigned long long>(stream.length()),
              valid.ToString().c_str());

  // 1. Archive the stream and build the chronological index.
  Caldera system(dir);
  Status st = system.archive()->CreateStream("bob", stream);
  if (st.code() == StatusCode::kAlreadyExists) {
    std::printf("(reusing existing archive at %s)\n", dir.c_str());
  } else if (!st.ok()) {
    std::fprintf(stderr, "archive failed: %s\n", st.ToString().c_str());
    return 1;
  } else {
    CALDERA_CHECK_OK(system.archive()->BuildBtc("bob", 0));
    CALDERA_CHECK_OK(system.archive()->BuildBtp("bob", 0));
  }

  // 2. Parse the written query from Figure 3(a).
  const StreamSchema& schema = stream.schema();
  SchemaResolver resolver(&schema);
  auto query = ParseQuery("Q(Hallway, Office)", resolver, "Entered-Room");
  CALDERA_CHECK_OK(query.status());
  std::printf("query: %s (fixed-length: %s)\n", query->ToString().c_str(),
              query->fixed_length() ? "yes" : "no");

  // 3. Execute with automatic planning and print the signal.
  auto plan = system.Plan("bob", *query, {});
  CALDERA_CHECK_OK(plan.status());
  std::printf("planner chose: %s (%s)\n", AccessMethodName(plan->method),
              plan->reason.c_str());

  auto result = system.Execute("bob", *query, {});
  CALDERA_CHECK_OK(result.status());
  std::printf("\n  t   P(entered office at t)\n");
  for (const TimestepProbability& e : result->signal) {
    std::printf("  %-3llu %.4f %s\n", static_cast<unsigned long long>(e.time),
                e.prob, e.prob > 0.3 ? "<-- event detected" : "");
  }
  std::printf("\nstats: %llu Reg updates, %llu stream page fetches\n",
              static_cast<unsigned long long>(result->stats.reg_updates),
              static_cast<unsigned long long>(
                  result->stats.stream_io.fetches));
  return 0;
}
