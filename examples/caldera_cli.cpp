// caldera_cli: a small command-line front end to a Caldera archive.
//
//   caldera_cli <archive-dir> demo
//       populates the archive with a simulated, smoothed RFID stream
//       ("james") plus all indexes and a LocationType dimension table.
//   caldera_cli <archive-dir> list
//       lists archived streams.
//   caldera_cli <archive-dir> query <stream> "<Q(...)>" [--method=M] [--k=N]
//       runs a written-syntax Regular query; M in
//       {auto,scan,btree,topk,mc,semi}.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "caldera/system.h"
#include "caldera/verify.h"
#include "query/parser.h"
#include "rfid/workload.h"

using namespace caldera;  // NOLINT: example brevity.

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: caldera_cli <archive-dir> demo\n"
               "       caldera_cli <archive-dir> list\n"
               "       caldera_cli <archive-dir> fsck <stream>\n"
               "       caldera_cli <archive-dir> query <stream> 'Q(...)'"
               " [--method=auto|scan|btree|topk|mc|semi] [--k=N]\n");
  return 2;
}

int RunDemo(Caldera& system) {
  RoutineSpec spec;
  spec.length = 900;
  spec.num_excursions = 4;
  spec.seed = 1;
  auto workload = MakeRoutineStream(spec);
  if (!workload.ok()) return Fail(workload.status());
  Status st = system.archive()->CreateStream("james", workload->stream);
  if (st.code() == StatusCode::kAlreadyExists) {
    std::printf("archive already populated\n");
    return 0;
  }
  if (!st.ok()) return Fail(st);
  CALDERA_CHECK_OK(system.archive()->BuildBtc("james", 0));
  CALDERA_CHECK_OK(system.archive()->BuildBtp("james", 0));
  CALDERA_CHECK_OK(system.archive()->BuildMc("james", {.alpha = 2}));
  CALDERA_CHECK_OK(
      system.archive()->BuildJoinIndex("james", workload->types, "type"));
  std::printf(
      "created stream 'james' (%llu timesteps) with BT_C, BT_P, MC and join "
      "indexes\n",
      static_cast<unsigned long long>(workload->stream.length()));
  std::printf("try:  query james 'Q(Corridor, (!CoffeeRoom*, CoffeeRoom))'\n");
  std::printf("      (own office: %s)\n",
              workload->schema.label(0, workload->own_office).c_str());
  return 0;
}

int RunFsck(Caldera& system, const std::string& stream_name) {
  auto archived = system.GetStream(stream_name);
  if (!archived.ok()) return Fail(archived.status());
  VerifyReport report;
  Status st = VerifyArchivedStream(archived->get(), VerifyOptions{}, &report);
  if (!st.ok()) {
    std::fprintf(stderr, "CORRUPT: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("OK: %s\n", report.ToString().c_str());
  return 0;
}

int RunList(Caldera& system) {
  auto names = system.archive()->ListStreams();
  if (!names.ok()) return Fail(names.status());
  for (const std::string& name : *names) {
    auto stream = system.GetStream(name);
    if (!stream.ok()) return Fail(stream.status());
    std::printf("%-16s %8llu timesteps  layout=%s  indexes:", name.c_str(),
                static_cast<unsigned long long>((*stream)->length()),
                DiskLayoutName((*stream)->stream()->layout()));
    if ((*stream)->btc(0) != nullptr) std::printf(" BT_C");
    if ((*stream)->btp(0) != nullptr) std::printf(" BT_P");
    if ((*stream)->mc() != nullptr) std::printf(" MC");
    std::printf("\n");
  }
  return 0;
}

int RunQuery(Caldera& system, const std::string& stream_name,
             const std::string& query_text, const std::string& method,
             size_t k) {
  auto archived = system.GetStream(stream_name);
  if (!archived.ok()) return Fail(archived.status());

  // Resolve identifiers against the schema and any type dimension the demo
  // created (location types live in the layout's naming convention here, so
  // rebuild the standard dimension for the paper building).
  const StreamSchema& schema = (*archived)->schema();
  SchemaResolver resolver(&schema);
  DimensionTable types("LocationType", 0);
  {
    // Derive location types from name prefixes (F1_Coffee12 etc.).
    std::vector<std::string> column;
    for (uint32_t v = 0; v < schema.domain_size(0); ++v) {
      const std::string& label = schema.label(0, v);
      if (label.find("Coffee") != std::string::npos) {
        column.push_back("CoffeeRoom");
      } else if (label.find("Lounge") != std::string::npos) {
        column.push_back("Lounge");
      } else if (label.find("Conf") != std::string::npos) {
        column.push_back("ConferenceRoom");
      } else if (label.find("Lab") != std::string::npos) {
        column.push_back("Lab");
      } else if (label.find("H") != std::string::npos &&
                 label.find("Office") == std::string::npos) {
        column.push_back("Corridor");
      } else {
        column.push_back("Office");
      }
    }
    types.AddColumn("type", std::move(column));
  }
  resolver.AddDimension(&types, "type");

  auto query = ParseQuery(query_text, resolver);
  if (!query.ok()) return Fail(query.status());

  ExecOptions options;
  options.k = k;
  if (method == "scan") options.method = AccessMethodKind::kScan;
  else if (method == "btree") options.method = AccessMethodKind::kBTree;
  else if (method == "topk") options.method = AccessMethodKind::kTopK;
  else if (method == "mc") options.method = AccessMethodKind::kMcIndex;
  else if (method == "semi") options.method = AccessMethodKind::kSemiIndependent;
  else if (method != "auto") return Usage();

  auto result = system.Execute(stream_name, *query, options);
  if (!result.ok()) return Fail(result.status());

  std::printf("# method=%s elapsed=%.3fms reg_updates=%llu "
              "stream_fetches=%llu index_fetches=%llu\n",
              AccessMethodName(result->method),
              result->stats.elapsed_seconds * 1e3,
              static_cast<unsigned long long>(result->stats.reg_updates),
              static_cast<unsigned long long>(result->stats.stream_io.fetches),
              static_cast<unsigned long long>(result->stats.index_io.fetches));
  size_t printed = 0;
  for (const TimestepProbability& e : result->signal) {
    if (e.prob <= 1e-9 && k == 0) continue;
    std::printf("%llu\t%.6f\n", static_cast<unsigned long long>(e.time),
                e.prob);
    if (++printed >= 50) {
      std::printf("# ... (%zu more rows suppressed)\n",
                  result->signal.size() - printed);
      break;
    }
  }
  if (printed == 0) std::printf("# no matches with nonzero probability\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  Caldera system(argv[1]);
  std::string command = argv[2];
  if (command == "demo") return RunDemo(system);
  if (command == "list") return RunList(system);
  if (command == "fsck") {
    if (argc < 4) return Usage();
    return RunFsck(system, argv[3]);
  }
  if (command == "query") {
    if (argc < 5) return Usage();
    std::string method = "auto";
    size_t k = 0;
    for (int i = 5; i < argc; ++i) {
      if (std::strncmp(argv[i], "--method=", 9) == 0) method = argv[i] + 9;
      else if (std::strncmp(argv[i], "--k=", 4) == 0) k = std::stoul(argv[i] + 4);
      else return Usage();
    }
    return RunQuery(system, argv[3], argv[4], method, k);
  }
  return Usage();
}
