// MC-index explorer (Section 3.3 / Figure 7): builds Markov-chain indexes
// with several branching factors over one stream and reports the
// space/time tradeoff -- stored bytes vs lookups needed per ComputeCpt.
//
//   ./mc_explorer [work-dir]

#include <cstdio>

#include "common/logging.h"
#include "index/mc_index.h"
#include "markov/stream_io.h"
#include "rfid/workload.h"
#include "storage/file.h"

using namespace caldera;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/caldera_mc_explorer";
  CALDERA_CHECK_OK(CreateDirectories(dir));

  SnippetStreamSpec spec;
  spec.num_snippets = 60;
  spec.seed = 5;
  auto workload = MakeSnippetStream(spec);
  CALDERA_CHECK_OK(workload.status());
  const MarkovianStream& stream = workload->stream;
  std::printf("stream: %llu timesteps, raw CPT bytes: %llu\n",
              static_cast<unsigned long long>(stream.length()),
              static_cast<unsigned long long>(stream.CptBytes()));

  CALDERA_CHECK_OK(WriteStream(dir + "/stream", stream));
  auto stored = StoredStream::Open(dir + "/stream");
  CALDERA_CHECK_OK(stored.status());
  StoredStream* raw = stored->get();
  TransitionSource source = [raw](uint64_t t, Cpt* out) {
    return raw->ReadTransition(t, out);
  };

  std::printf("\n%-8s %10s %8s | lookups for a gap of:\n", "alpha", "bytes",
              "levels");
  std::printf("%-8s %10s %8s | %6s %6s %6s %6s\n", "", "", "", "8", "64",
              "512", "1500");
  for (uint32_t alpha : {2u, 4u, 8u, 16u}) {
    std::string mc_dir = dir + "/mc_a" + std::to_string(alpha);
    CALDERA_CHECK_OK(McIndex::Build(stream, mc_dir, {.alpha = alpha}));
    auto index = McIndex::Open(mc_dir, source);
    CALDERA_CHECK_OK(index.status());
    std::printf("%-8u %10llu %8u |", alpha,
                static_cast<unsigned long long>((*index)->StoredBytes()),
                (*index)->num_levels());
    Cpt cpt;
    for (uint64_t gap : {8ull, 64ull, 512ull, 1500ull}) {
      if (gap + 1 >= stream.length()) {
        std::printf(" %6s", "-");
        continue;
      }
      (*index)->ResetStats();
      CALDERA_CHECK_OK((*index)->ComputeCpt(1, 1 + gap, &cpt));
      std::printf(" %6llu",
                  static_cast<unsigned long long>((*index)->entry_fetches() +
                                                  (*index)->raw_fetches()));
    }
    std::printf("\n");
  }

  // Dropping lower levels (Figure 11(a)): same alpha, fewer levels kept.
  std::printf("\nalpha=2, dropping lower levels (gap of 64):\n");
  std::printf("%-12s %10s %10s %10s\n", "min level", "bytes", "entries",
              "raw CPTs");
  auto index = McIndex::Open(dir + "/mc_a2", source);
  CALDERA_CHECK_OK(index.status());
  Cpt cpt;
  for (uint32_t min_level = 1; min_level <= 5; ++min_level) {
    CALDERA_CHECK_OK((*index)->SetMinLevel(min_level));
    (*index)->ResetStats();
    CALDERA_CHECK_OK((*index)->ComputeCpt(1, 65, &cpt));
    std::printf("%-12u %10llu %10llu %10llu\n", min_level,
                static_cast<unsigned long long>((*index)->StoredBytes()),
                static_cast<unsigned long long>((*index)->entry_fetches()),
                static_cast<unsigned long long>((*index)->raw_fetches()));
  }
  std::printf(
      "\n(the paper's headline: alpha=2 merely doubles stream storage while\n"
      " making any-gap correlation lookups logarithmic)\n");
  return 0;
}
