// Live append: grow an archived stream through the WAL-backed ingestion
// pipeline while its indexes are maintained incrementally. Run it
// repeatedly against the same directory — every run appends one batch and
// queries straight through the fresh tail.
//
//   ./live_append [archive-dir] [--crash-after-commit]
//
// With --crash-after-commit the run commits a batch to the WAL and exits
// without applying it, simulating a writer killed mid-batch. The next
// normal run's open replays the batch from the log before appending its
// own (the CI recovery smoke test drives exactly this sequence).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "caldera/system.h"
#include "common/logging.h"
#include "ingest/ingestor.h"
#include "markov/synthetic.h"
#include "query/regular_query.h"

using namespace caldera;  // NOLINT: example brevity.

namespace {

constexpr uint32_t kDomain = 8;
constexpr uint64_t kSeed = 1234;
constexpr uint64_t kInitialLength = 50;
constexpr uint64_t kBatch = 10;

// The stream is a deterministic banded random walk: generating a longer
// stream from the same seed reproduces every earlier timestep, so each run
// can extend the archive by slicing the generator just past the current
// committed length.
std::vector<IngestTimestep> NextBatch(uint64_t length) {
  MarkovianStream full =
      MakeBandedRandomWalkStream(length + kBatch, kDomain, kSeed);
  std::vector<IngestTimestep> batch;
  for (uint64_t t = length; t < length + kBatch; ++t) {
    batch.push_back({full.marginal(t), full.transition(t)});
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = "/tmp/caldera_live_append";
  bool crash_after_commit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--crash-after-commit") == 0) {
      crash_after_commit = true;
    } else {
      dir = argv[i];
    }
  }

  Caldera system(dir);
  if (!system.archive()->HasStream("live")) {
    MarkovianStream seedling =
        MakeBandedRandomWalkStream(kInitialLength, kDomain, kSeed);
    CALDERA_CHECK_OK(system.archive()->CreateStream("live", seedling));
    CALDERA_CHECK_OK(system.archive()->BuildBtc("live", 0));
    CALDERA_CHECK_OK(system.archive()->BuildMc("live", {.alpha = 2}));
    std::printf("created stream 'live' with %llu timesteps (BT_C + MC)\n",
                static_cast<unsigned long long>(kInitialLength));
  }

  // Open replays the WAL first if the previous writer died mid-batch.
  auto ingestor = system.OpenForIngest("live");
  CALDERA_CHECK_OK(ingestor.status());
  if ((*ingestor)->stats().batches_recovered > 0) {
    std::printf("recovered %llu committed batch(es) from the WAL left by a "
                "crashed writer\n",
                static_cast<unsigned long long>(
                    (*ingestor)->stats().batches_recovered));
  }
  uint64_t length = (*ingestor)->length();
  std::printf("stream 'live' is %llu timesteps long\n",
              static_cast<unsigned long long>(length));

  std::vector<IngestTimestep> batch = NextBatch(length);
  if (crash_after_commit) {
    // Commit the batch durably, then die before applying it. The batch is
    // past the WAL commit point, so the next open MUST replay it.
    CALDERA_CHECK_OK((*ingestor)->CommitWithoutApply(batch));
    std::printf("batch of %llu committed to the WAL; crashing before the "
                "apply (rerun without the flag to recover)\n",
                static_cast<unsigned long long>(kBatch));
    std::fflush(stdout);
    _Exit(1);
  }

  CALDERA_CHECK_OK((*ingestor)->Append(batch));
  const IngestStats& stats = (*ingestor)->stats();
  std::printf("appended %llu timesteps: %llu B+ tree inserts, %llu MC "
              "nodes recomputed, %llu WAL bytes\n",
              static_cast<unsigned long long>(stats.timesteps_appended),
              static_cast<unsigned long long>(stats.btree_inserts),
              static_cast<unsigned long long>(stats.mc.nodes_recomputed),
              static_cast<unsigned long long>(stats.wal_bytes));

  // The commit already bumped the handle epoch: this query sees the new
  // tail with no manual invalidation.
  RegularQuery query = RegularQuery::Sequence(
      "probe",
      {Predicate::Equality(0, 2, "eq2"), Predicate::Equality(0, 3, "eq3")});
  auto result = system.Execute("live", query, {});
  CALDERA_CHECK_OK(result.status());
  std::printf("query over %llu timesteps: %zu signal entries",
              static_cast<unsigned long long>((*ingestor)->length()),
              result->signal.size());
  if (!result->signal.empty()) {
    const TimestepProbability& last = result->signal.back();
    std::printf("; last at t=%llu p=%.4f",
                static_cast<unsigned long long>(last.time), last.prob);
  }
  std::printf("\n");
  return 0;
}
