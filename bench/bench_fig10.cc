// Figure 10 (table): algorithm and stream statistics on three real-world-
// style streams, for Entered-Room / Coffee-Room queries of 2, 3 and 4
// links. Reproduces every row of the paper's table:
//   stream length (minutes / timesteps), # relevant timesteps,
//   full-scan time, # query matches, B+Tree time, top-k B+Tree time,
//   (variable-length:) # matches, MC-index time, semi-independent time.
//
// Paper shape to reproduce: the scan slows sharply with extra links (Reg
// cost grows with automaton size) while the indexed methods, which skip
// most Reg updates, gain relative ground on longer queries.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/planner.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "caldera/topk_method.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

namespace {

int CountMatches(const QuerySignal& signal, double threshold = 1e-6) {
  int matches = 0;
  for (const TimestepProbability& e : signal) {
    matches += e.prob > threshold ? 1 : 0;
  }
  return matches;
}

struct TraceSpec {
  const char* person;
  const char* query_kind;  // "Entered-Office" or "Coffee-Room"
  uint64_t length;
  uint64_t seed;
  bool query_own_office;  // Else: a rarely-visited excursion room.
};

}  // namespace

int main() {
  std::string root = ScratchDir("fig10");
  // James: 7.7 min, dense own-office query. Sally: 7.6 min, sparse query.
  // Pat: 28 min, coffee-room-style query on an excursion room.
  const std::vector<TraceSpec> traces = {
      {"James", "Entered-Office", 462, 101, true},
      {"Sally", "Entered-Office", 458, 102, false},
      {"Pat", "Coffee-Room", 1683, 103, false},
  };

  for (const TraceSpec& trace : traces) {
    RoutineSpec spec;
    spec.length = trace.length;
    spec.num_excursions = trace.query_own_office ? 5 : 2;
    spec.seed = trace.seed;
    auto workload = MakeRoutineStream(spec);
    CALDERA_CHECK_OK(workload.status());
    auto archived = ArchiveStream(root, trace.person, workload->stream,
                                  DiskLayout::kSeparated, true, true, true);
    uint32_t room = trace.query_own_office ? workload->own_office
                                           : workload->excursion_rooms[0];

    std::printf("\n=== Stream: %s   Q: %s (%s) ===\n", trace.person,
                trace.query_kind, workload->schema.label(0, room).c_str());
    std::printf("%-34s %10s %10s %10s\n", "# subgoals (links) in query:", "2",
                "3", "4");

    struct Row {
      double v[3];
    };
    uint64_t relevant[3];
    Row scan_ms{}, btree_ms{}, topk_ms{}, mc_cold_ms{}, mc_ms{}, semi_ms{};
    int next_matches[3], before_matches[3];
    uint64_t span_hits[3] = {0, 0, 0};

    for (int i = 0; i < 3; ++i) {
      size_t links = static_cast<size_t>(i) + 2;
      auto fixed = workload->EnteredRoom(room, links, false);
      auto variable = workload->EnteredRoom(room, links, true);
      CALDERA_CHECK_OK(fixed.status());
      CALDERA_CHECK_OK(variable.status());

      relevant[i] = static_cast<uint64_t>(
          MeasuredDensity(workload->stream, *fixed) *
          workload->stream.length());

      // EXPLAIN: what the planner would pick for each query shape.
      auto fixed_plan = PlanQuery(archived.get(), *fixed,
                                  /*want_topk=*/false,
                                  /*approximation_ok=*/false);
      CALDERA_CHECK_OK(fixed_plan.status());
      auto variable_plan = PlanQuery(archived.get(), *variable,
                                     /*want_topk=*/false,
                                     /*approximation_ok=*/false);
      CALDERA_CHECK_OK(variable_plan.status());
      std::printf("EXPLAIN %zu-link fixed:    %s\n", links,
                  fixed_plan->Explain().c_str());
      std::printf("EXPLAIN %zu-link variable: %s\n", links,
                  variable_plan->Explain().c_str());

      auto scan_result = RunScanMethod(archived.get(), *fixed);
      CALDERA_CHECK_OK(scan_result.status());
      next_matches[i] = CountMatches(scan_result->signal);
      scan_ms.v[i] = TimeBest([&] {
        CALDERA_CHECK_OK(RunScanMethod(archived.get(), *fixed).status());
      });
      btree_ms.v[i] = TimeBest([&] {
        CALDERA_CHECK_OK(RunBTreeMethod(archived.get(), *fixed).status());
      });
      topk_ms.v[i] = TimeBest([&] {
        CALDERA_CHECK_OK(RunTopKMethod(archived.get(), *fixed, 1).status());
      });

      auto mc_result = RunMcMethod(archived.get(), *variable);
      CALDERA_CHECK_OK(mc_result.status());
      before_matches[i] = CountMatches(mc_result->signal);
      // Cold: every span is composed from index entries (the span cache is
      // dropped before each run). Warm: repeated variable-length queries
      // serve spans from the shared cache.
      mc_cold_ms.v[i] = TimeBest([&] {
        archived->span_cache()->Clear();
        CALDERA_CHECK_OK(RunMcMethod(archived.get(), *variable).status());
      });
      auto warm_result = RunMcMethod(archived.get(), *variable);
      CALDERA_CHECK_OK(warm_result.status());
      span_hits[i] = warm_result->stats.span_cache_hits;
      mc_ms.v[i] = TimeBest([&] {
        CALDERA_CHECK_OK(RunMcMethod(archived.get(), *variable).status());
      });
      semi_ms.v[i] = TimeBest([&] {
        CALDERA_CHECK_OK(
            RunSemiIndependentMethod(archived.get(), *variable).status());
      });
    }

    std::printf("%-34s %10.1f %10.1f %10.1f\n", "Stream length (minutes)",
                trace.length / 60.0, trace.length / 60.0,
                trace.length / 60.0);
    std::printf("%-34s %10llu %10llu %10llu\n", "Stream length (timesteps)",
                static_cast<unsigned long long>(workload->stream.length()),
                static_cast<unsigned long long>(workload->stream.length()),
                static_cast<unsigned long long>(workload->stream.length()));
    std::printf("%-34s %10llu %10llu %10llu\n", "# relevant timesteps",
                static_cast<unsigned long long>(relevant[0]),
                static_cast<unsigned long long>(relevant[1]),
                static_cast<unsigned long long>(relevant[2]));
    std::printf("%-34s %10.2f %10.2f %10.2f\n", "Time: Full Scan (ms)",
                scan_ms.v[0] * 1e3, scan_ms.v[1] * 1e3, scan_ms.v[2] * 1e3);
    std::printf("[NEXT]  %-26s %10d %10d %10d\n", "# query matches",
                next_matches[0], next_matches[1], next_matches[2]);
    std::printf("[NEXT]  %-26s %10.2f %10.2f %10.2f\n", "Time: B+Tree (ms)",
                btree_ms.v[0] * 1e3, btree_ms.v[1] * 1e3,
                btree_ms.v[2] * 1e3);
    std::printf("[NEXT]  %-26s %10.2f %10.2f %10.2f\n",
                "Time: Top-K B+Tree (ms)", topk_ms.v[0] * 1e3,
                topk_ms.v[1] * 1e3, topk_ms.v[2] * 1e3);
    std::printf("[BEFORE] %-25s %10d %10d %10d\n", "# query matches",
                before_matches[0], before_matches[1], before_matches[2]);
    std::printf("[BEFORE] %-25s %10.2f %10.2f %10.2f\n",
                "Time: MC Index cold (ms)", mc_cold_ms.v[0] * 1e3,
                mc_cold_ms.v[1] * 1e3, mc_cold_ms.v[2] * 1e3);
    std::printf("[BEFORE] %-25s %10.2f %10.2f %10.2f\n",
                "Time: MC Index warm (ms)", mc_ms.v[0] * 1e3, mc_ms.v[1] * 1e3,
                mc_ms.v[2] * 1e3);
    std::printf("[BEFORE] %-25s %10llu %10llu %10llu\n",
                "Span-cache hits (warm)",
                static_cast<unsigned long long>(span_hits[0]),
                static_cast<unsigned long long>(span_hits[1]),
                static_cast<unsigned long long>(span_hits[2]));
    std::printf("[BEFORE] %-25s %10.2f %10.2f %10.2f\n",
                "Time: Semi-Indep. (ms)", semi_ms.v[0] * 1e3,
                semi_ms.v[1] * 1e3, semi_ms.v[2] * 1e3);
  }
  std::printf("\n# expected shape: scan time grows with links; indexed "
              "methods' advantage grows with links; semi < mc\n");
  return 0;
}
