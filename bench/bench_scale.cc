// Archive-scale benchmark (beyond the paper's figures, supporting its
// Section 3.4.2 physical-schema argument): one Markovian stream per tag,
// partitioned on disk by stream. Querying one tag touches only its own
// partition — cost is independent of how many other tags are archived —
// and a fleet-wide query costs the sum of per-stream costs.

#include <cstdio>

#include "bench_util.h"
#include "caldera/batch.h"
#include "common/thread_pool.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("scale");
  Caldera system(root);

  // Archive a fleet of tags (the paper's deployment used 58; we scale the
  // count and watch per-tag query cost stay flat).
  std::printf("# Archive-scale: per-tag query cost vs archived tag count\n");
  std::printf("%-10s %16s %18s %16s\n", "tags", "one-tag-ms",
              "fleet-total-ms", "fleet-matches");

  uint32_t archived = 0;
  RegularQuery query;  // Fixed Entered-Room query shared by all tags.
  for (uint32_t fleet : {1u, 4u, 16u, 58u}) {
    for (; archived < fleet; ++archived) {
      SnippetStreamSpec spec;
      spec.num_snippets = 60;
      spec.density = 0.2;
      spec.seed = 500 + archived;
      auto workload = MakeSnippetStream(spec);
      CALDERA_CHECK_OK(workload.status());
      std::string name = "tag" + std::to_string(archived);
      CALDERA_CHECK_OK(
          system.archive()->CreateStream(name, workload->stream));
      CALDERA_CHECK_OK(system.archive()->BuildBtc(name, 0));
      if (archived == 0) query = workload->EnteredRoomFixed();
    }
    // All tags share the same layout, so tag0's query is valid everywhere.
    ExecOptions options;
    options.method = AccessMethodKind::kBTree;

    double one = TimeBest([&] {
      CALDERA_CHECK_OK(system.Execute("tag0", query, options).status());
    });

    BatchOptions batch_options;
    batch_options.exec = options;
    batch_options.num_threads = 1;
    auto batch = ExecuteBatch(&system, query, batch_options);
    CALDERA_CHECK_OK(batch.status());
    size_t matches = batch->TopMatches(1000000, 1e-6).size();
    double fleet_total = TimeBest([&] {
      CALDERA_CHECK_OK(ExecuteBatch(&system, query, batch_options).status());
    });

    std::printf("%-10u %16.3f %18.2f %16zu\n", fleet, one * 1e3,
                fleet_total * 1e3, matches);
  }
  std::printf("# expected: one-tag cost flat in the fleet size (per-stream "
              "partitioning); fleet cost ~linear in tags\n");

  // Thread-scaling sweep on the full fleet: the per-stream partitioning
  // makes the batch embarrassingly parallel, so fleet latency should drop
  // toward fleet_total / min(threads, cores) while the output stays
  // byte-identical to the sequential run.
  std::printf("\n# Thread scaling: fleet of %u tags, BT_C method "
              "(hardware_concurrency=%zu)\n",
              archived, ThreadPool::DefaultThreadCount());
  std::printf("%-10s %16s %12s %16s\n", "threads", "fleet-total-ms",
              "speedup", "identical-out");

  ExecOptions options;
  options.method = AccessMethodKind::kBTree;
  BatchOptions sequential;
  sequential.exec = options;
  sequential.num_threads = 1;
  auto baseline = ExecuteBatch(&system, query, sequential);
  CALDERA_CHECK_OK(baseline.status());
  double sequential_ms = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    BatchOptions batch_options;
    batch_options.exec = options;
    batch_options.num_threads = threads;
    auto batch = ExecuteBatch(&system, query, batch_options);
    CALDERA_CHECK_OK(batch.status());
    bool identical = IdenticalSignals(*baseline, *batch) &&
                     batch->TotalRegUpdates() == baseline->TotalRegUpdates();
    double total = TimeBest([&] {
      CALDERA_CHECK_OK(ExecuteBatch(&system, query, batch_options).status());
    });
    if (threads == 1) sequential_ms = total * 1e3;
    std::printf("%-10zu %16.2f %11.2fx %16s\n", threads, total * 1e3,
                sequential_ms / (total * 1e3), identical ? "yes" : "NO");
  }
  std::printf("# expected: speedup ~min(threads, cores, tags) with "
              "identical-out=yes on every row\n");

  // Pipeline prefetch sweep: one long stream, scan and MC methods, with
  // the background decode stage off and at increasing batch sizes. The
  // signal must stay byte-identical at every setting (the prefetch knob is
  // latency-only); results land in BENCH_pipeline.json.
  SnippetStreamSpec long_spec;
  long_spec.num_snippets = 600;
  long_spec.density = 0.2;
  long_spec.seed = 4242;
  auto long_workload = MakeSnippetStream(long_spec);
  CALDERA_CHECK_OK(long_workload.status());
  CALDERA_CHECK_OK(
      system.archive()->CreateStream("long", long_workload->stream));
  CALDERA_CHECK_OK(system.archive()->BuildBtc("long", 0));
  CALDERA_CHECK_OK(system.archive()->BuildMc("long", {.alpha = 2}));
  system.InvalidateStreams();
  RegularQuery long_query = long_workload->EnteredRoomFixed();

  std::printf("\n# Pipeline prefetch: stream of %llu timesteps\n",
              static_cast<unsigned long long>(long_workload->stream.length()));
  std::printf("%-10s %-10s %14s %16s\n", "method", "prefetch", "best-ms",
              "identical-out");

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  CALDERA_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"stream_timesteps\": %llu,\n  \"runs\": [\n",
               static_cast<unsigned long long>(
                   long_workload->stream.length()));
  bool first_row = true;
  for (AccessMethodKind method :
       {AccessMethodKind::kScan, AccessMethodKind::kMcIndex}) {
    ExecOptions exec;
    exec.method = method;
    auto reference = system.Execute("long", long_query, exec);
    CALDERA_CHECK_OK(reference.status());
    for (size_t batch : {size_t{0}, size_t{8}, size_t{32}, size_t{128}}) {
      exec.prefetch_batch = batch;
      auto run = system.Execute("long", long_query, exec);
      CALDERA_CHECK_OK(run.status());
      bool identical = run->signal == reference->signal;
      double best = TimeBest([&] {
        CALDERA_CHECK_OK(system.Execute("long", long_query, exec).status());
      });
      std::printf("%-10s %-10zu %14.3f %16s\n", AccessMethodName(method),
                  batch, best * 1e3, identical ? "yes" : "NO");
      std::fprintf(json,
                   "%s    {\"method\": \"%s\", \"prefetch_batch\": %zu, "
                   "\"best_ms\": %.4f, \"identical\": %s, \"plan\": \"%s\"}",
                   first_row ? "" : ",\n", AccessMethodName(method), batch,
                   best * 1e3, identical ? "true" : "false",
                   run->stats.plan_summary.c_str());
      first_row = false;
    }
    std::printf("# EXPLAIN %s: %s\n", AccessMethodName(method),
                reference->stats.plan_summary.c_str());
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("# expected: identical-out=yes on every row; wrote "
              "BENCH_pipeline.json\n");
  return 0;
}
