// Figure 9(a): the variable-length access methods (MC index, exact; semi-
// independent, approximate) vs the naive scan on synthetic ~30k-timestep
// streams, as data density varies. Directly comparable with Figure 8(a).
//
// Paper shape to reproduce: both methods scale inversely with density like
// the B+Tree method; semi-independent is consistently faster than the MC
// index (the paper reports roughly 8x).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "markov/synthetic.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig9a");
  std::printf("# Figure 9(a): variable-length methods vs scan on synthetic "
              "streams (times in ms; MC index alpha=2)\n");
  std::printf("%-10s %12s %12s %12s %12s %14s\n", "density", "scan",
              "mc-index", "semi-indep", "mc-speedup", "semi-vs-mc");

  for (double density : {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    SnippetStreamSpec spec;
    spec.num_snippets = 1000;
    spec.density = density;
    spec.match_rate = 1.0;
    spec.seed = 90;
    auto workload = MakeSnippetStream(spec);
    CALDERA_CHECK_OK(workload.status());
    auto archived = ArchiveStream(
        root, "d" + std::to_string(static_cast<int>(density * 100)),
        workload->stream, DiskLayout::kSeparated, true, false, true);
    RegularQuery query = workload->EnteredRoomVariable();

    double scan = TimeBest([&] {
      CALDERA_CHECK_OK(RunScanMethod(archived.get(), query).status());
    });
    double mc = TimeBest([&] {
      CALDERA_CHECK_OK(RunMcMethod(archived.get(), query).status());
    });
    double semi = TimeBest([&] {
      CALDERA_CHECK_OK(
          RunSemiIndependentMethod(archived.get(), query).status());
    });
    std::printf("%-10.2f %12.2f %12.2f %12.2f %11.1fx %13.1fx\n", density,
                scan * 1e3, mc * 1e3, semi * 1e3, scan / mc, mc / semi);
  }
  std::printf("# expected shape: mc-speedup mirrors Figure 8(a); semi-indep "
              "consistently faster than mc-index\n");

  // The paper reports semi-independent ~8x faster than the MC index. The
  // gap scales with the width of the composed CPTs the MC method must
  // fetch and multiply (~|support|^2) while the semi method reads one
  // marginal. Random-walk streams (wide long-span CPTs) show the gap
  // widening with the state-space size; the snippet streams above, whose
  // long-span CPTs collapse to near-rank-1 at snippet boundaries, hide it.
  std::printf("\n# semi-vs-mc gap vs state-space size "
              "(banded random-walk streams, sparse query)\n");
  std::printf("%-12s %12s %12s %14s\n", "states", "mc-index", "semi",
              "semi-speedup");
  for (uint32_t domain : {32u, 128u, 384u}) {
    // Aggressive truncation (like a modest particle count) keeps supports
    // tight so the query below is sparse; the 384-state row matches the
    // paper's 352-location deployment.
    MarkovianStream stream =
        MakeBandedRandomWalkStream(12000, domain, 91, /*truncate_eps=*/0.02);
    uint32_t start = stream.marginal(0).entries()[0].value;
    uint32_t target_value = std::min(domain - 2, start + 30);
    uint32_t hall_value = target_value >= 3 ? target_value - 3
                                            : target_value + 3;
    auto archived = ArchiveStream(root, "w" + std::to_string(domain), stream,
                                  DiskLayout::kSeparated, true, false, true);
    Predicate target = Predicate::Equality(0, target_value, "target");
    std::vector<QueryLink> links;
    links.push_back(
        QueryLink{std::nullopt, Predicate::Equality(0, hall_value, "hall")});
    links.push_back(QueryLink{Predicate::Not(target), target});
    RegularQuery query("edge", links);
    double mc = TimeBest([&] {
      CALDERA_CHECK_OK(RunMcMethod(archived.get(), query).status());
    });
    double semi = TimeBest([&] {
      CALDERA_CHECK_OK(
          RunSemiIndependentMethod(archived.get(), query).status());
    });
    std::printf("%-12u %12.2f %12.2f %13.1fx\n", domain, mc * 1e3,
                semi * 1e3, mc / semi);
  }
  std::printf("# expected: the speedup grows with the state space, toward "
              "the paper's ~8x on its 352-location domain\n");
  return 0;
}
