// Figure 8(b): the three fixed-length access methods on a "real-world"
// stream — 22 different Entered-Room queries against one 28-minute routine
// trace (simulated analog of the paper's volunteer data). Each query
// contributes one point per method at its measured data density.
//
// Paper shape to reproduce: density is bimodal (own office ~1, other rooms
// near 0); the B+Tree method gains >= an order of magnitude at low density;
// the top-k method loses to B+Tree at low density but can win by ~an order
// of magnitude on dense, peaky queries.

#include <cstdio>

#include "bench_util.h"
#include "caldera/btree_method.h"
#include "caldera/scan_method.h"
#include "caldera/topk_method.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig8b");

  RoutineSpec spec;
  spec.length = 1680;  // 28 minutes at 1 Hz, like the paper's Pat trace.
  spec.num_excursions = 6;
  spec.seed = 81;
  auto workload = MakeRoutineStream(spec);
  CALDERA_CHECK_OK(workload.status());

  auto archived =
      ArchiveStream(root, "trace", workload->stream, DiskLayout::kSeparated,
                    true, true, false);

  std::printf("# Figure 8(b): 22 Entered-Room queries on one real-world-"
              "style stream (times in ms; k=1 for top-k)\n");
  std::printf("%-26s %9s %10s %10s %10s\n", "room", "density", "scan",
              "btree", "topk");

  for (uint32_t room : workload->QueryRooms(22)) {
    auto query = workload->EnteredRoom(room, 2);
    CALDERA_CHECK_OK(query.status());
    double density = MeasuredDensity(workload->stream, *query);
    double scan = TimeBest([&] {
      CALDERA_CHECK_OK(RunScanMethod(archived.get(), *query).status());
    });
    double btree = TimeBest([&] {
      CALDERA_CHECK_OK(RunBTreeMethod(archived.get(), *query).status());
    });
    double topk = TimeBest([&] {
      CALDERA_CHECK_OK(RunTopKMethod(archived.get(), *query, 1).status());
    });
    std::printf("%-26s %9.3f %10.2f %10.2f %10.2f\n",
                workload->schema.label(0, room).c_str(), density, scan * 1e3,
                btree * 1e3, topk * 1e3);
  }
  std::printf("# expected shape: bimodal densities; btree << scan at low "
              "density; topk can beat btree only at high density\n");
  return 0;
}
