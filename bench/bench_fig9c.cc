// Figure 9(c): approximation error of the semi-independent access method —
// the exact (MC index) and approximate probability signals of one real-
// world variable-length query over time, plus the error at the maximum-
// probability timestep.
//
// Paper shape to reproduce: the approximate signal tracks the exact one's
// magnitudes; in the paper's favorable example the max-probability timestep
// is identified correctly with ~13% relative error, while other streams
// show raw errors up to ~0.286.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "caldera/mc_method.h"
#include "caldera/semi_independent_method.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig9c");

  std::printf("# Figure 9(c): semi-independent approximation error on "
              "variable-length Entered-Room queries\n");

  double worst_raw_error = 0;
  int correct_peaks = 0, total = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    RoutineSpec spec;
    spec.length = 900;
    spec.num_excursions = 4;
    spec.seed = seed;
    auto workload = MakeRoutineStream(spec);
    CALDERA_CHECK_OK(workload.status());
    auto archived = ArchiveStream(root, "t" + std::to_string(seed),
                                  workload->stream, DiskLayout::kSeparated,
                                  true, false, true);
    // Query with a SHORT gap between its predicates' relevant timesteps:
    // the first link is a corridor cell a few segments away from the room,
    // so the intermediate walk (2-5 timesteps) is skipped — exactly the
    // regime where discarding correlations hurts. (Across the long gaps of
    // Figure 9(b)'s queries the chain mixes and independence is almost
    // exact.) We borrow the far hallway from the 4-link query.
    uint32_t room = workload->excursion_rooms[0];
    auto four_link = workload->EnteredRoom(room, 4, true);
    CALDERA_CHECK_OK(four_link.status());
    std::vector<QueryLink> links;
    links.push_back(four_link->links()[0]);    // Far approach hallway.
    links.push_back(four_link->links().back());  // (!Room*, Room).
    RegularQuery query_obj("short-gap", links);
    Result<RegularQuery> query = query_obj;

    auto exact = RunMcMethod(archived.get(), *query);
    auto approx = RunSemiIndependentMethod(archived.get(), *query);
    CALDERA_CHECK_OK(exact.status());
    CALDERA_CHECK_OK(approx.status());

    // Peak analysis.
    size_t exact_peak = 0, approx_peak = 0;
    double max_raw = 0;
    for (size_t i = 0; i < exact->signal.size(); ++i) {
      if (exact->signal[i].prob > exact->signal[exact_peak].prob) {
        exact_peak = i;
      }
      if (approx->signal[i].prob > approx->signal[approx_peak].prob) {
        approx_peak = i;
      }
      max_raw = std::max(
          max_raw, std::abs(exact->signal[i].prob - approx->signal[i].prob));
    }
    worst_raw_error = std::max(worst_raw_error, max_raw);
    bool peak_ok =
        exact->signal[exact_peak].time == approx->signal[approx_peak].time;
    correct_peaks += peak_ok ? 1 : 0;
    ++total;
    double rel_err =
        exact->signal[exact_peak].prob > 0
            ? std::abs(exact->signal[exact_peak].prob -
                       approx->signal[exact_peak].prob) /
                  exact->signal[exact_peak].prob
            : 0.0;
    std::printf("trace %llu: peak-correct=%s  rel-err-at-peak=%7.3f%%  "
                "max-raw-err=%.6f\n",
                static_cast<unsigned long long>(seed),
                peak_ok ? "yes" : "NO ", rel_err * 100, max_raw);

    // Print the signal series around the exact peak for the first trace
    // (the Figure 9(c) plot).
    if (seed == 1) {
      std::printf("  t       exact     approx\n");
      size_t lo = exact_peak > 5 ? exact_peak - 5 : 0;
      for (size_t i = lo; i < std::min(exact->signal.size(), exact_peak + 6);
           ++i) {
        std::printf("  %-7llu %9.4f %9.4f\n",
                    static_cast<unsigned long long>(exact->signal[i].time),
                    exact->signal[i].prob, approx->signal[i].prob);
      }
    }
  }
  std::printf("# summary: %d/%d traces identify the max-probability "
              "timestep correctly; worst raw error %.6f\n",
              correct_peaks, total, worst_raw_error);
  std::printf("# (on these well-observed traces the posterior is unimodal "
              "across gaps, so errors are small)\n");

  // Worst-case demonstration: a stream whose skipped span carries strong
  // correlation "memory". Two start states H/X flow deterministically
  // through distinct null-state channels (u/v) and surface as C/D. The
  // exact P(H, !C*, C) is 0.5; assuming independence across the gap yields
  // 0.25 -- a raw error of 0.25, the magnitude the paper reports (0.286).
  {
    StreamSchema schema =
        SingleAttributeSchema("loc", {"H", "X", "u", "v", "C", "D"});
    MarkovianStream stream(schema);
    stream.Append(Distribution::FromPairs({{0, 0.5}, {1, 0.5}}), Cpt());
    {
      Cpt cpt;  // H -> u, X -> v (memory channels).
      cpt.SetRow(0, {{2, 1.0}});
      cpt.SetRow(1, {{3, 1.0}});
      stream.Append(cpt.Propagate(stream.marginal(0)), cpt);
    }
    for (int t = 2; t <= 3; ++t) {
      Cpt cpt;  // Channels persist.
      cpt.SetRow(2, {{2, 1.0}});
      cpt.SetRow(3, {{3, 1.0}});
      stream.Append(cpt.Propagate(stream.marginal(t - 1)), cpt);
    }
    {
      Cpt cpt;  // u -> C, v -> D.
      cpt.SetRow(2, {{4, 1.0}});
      cpt.SetRow(3, {{5, 1.0}});
      stream.Append(cpt.Propagate(stream.marginal(3)), cpt);
    }
    CALDERA_CHECK_OK(stream.Validate());
    auto archived2 = ArchiveStream(root, "worstcase", stream,
                                   DiskLayout::kSeparated, true, false, true);
    Predicate c = Predicate::Equality(0, 4, "C");
    std::vector<QueryLink> wl;
    wl.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H")});
    wl.push_back(QueryLink{Predicate::Not(c), c});
    RegularQuery wq("worst", wl);
    auto exact2 = RunMcMethod(archived2.get(), wq);
    auto approx2 = RunSemiIndependentMethod(archived2.get(), wq);
    CALDERA_CHECK_OK(exact2.status());
    CALDERA_CHECK_OK(approx2.status());
    double exact_p = 0, approx_p = 0;
    for (const auto& e : exact2->signal) exact_p = std::max(exact_p, e.prob);
    for (const auto& e : approx2->signal) approx_p = std::max(approx_p, e.prob);
    std::printf("\n# worst-case correlated stream: exact peak %.3f, "
                "semi-independent peak %.3f, raw error %.3f\n",
                exact_p, approx_p, std::abs(exact_p - approx_p));
  }
  std::printf("# paper: peak usually-but-not-always correct; raw errors up "
              "to ~0.286\n");
  return 0;
}
