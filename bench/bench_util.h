#ifndef CALDERA_BENCH_BENCH_UTIL_H_
#define CALDERA_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>

#include "caldera/archive.h"
#include "caldera/batch.h"
#include "common/logging.h"
#include "markov/stream_io.h"
#include "query/regular_query.h"

namespace caldera {
namespace bench {

/// Fresh scratch directory for one benchmark binary.
inline std::string ScratchDir(const std::string& name) {
  std::string dir = "/tmp/caldera_bench/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Runs `fn` `reps` times and returns the best wall-clock seconds (best-of
/// filters scheduler noise; all access methods are deterministic).
inline double TimeBest(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    if (s < best) best = s;
  }
  return best;
}

/// Archives a stream and builds the requested indexes; returns the opened
/// handle. `pool_pages` bounds each file's buffer pool, keeping disk-page
/// traffic meaningful on cached filesystems.
inline std::unique_ptr<ArchivedStream> ArchiveStream(
    const std::string& root, const std::string& name,
    const MarkovianStream& stream, DiskLayout layout, bool btc, bool btp,
    bool mc, size_t pool_pages = 128) {
  StreamArchive archive(root);
  CALDERA_CHECK_OK(archive.CreateStream(name, stream, layout));
  if (btc) CALDERA_CHECK_OK(archive.BuildBtc(name, 0));
  if (btp) CALDERA_CHECK_OK(archive.BuildBtp(name, 0));
  if (mc) CALDERA_CHECK_OK(archive.BuildMc(name, {.alpha = 2}));
  auto opened = archive.OpenStream(name, pool_pages);
  CALDERA_CHECK_OK(opened.status());
  return std::move(*opened);
}

/// True when two batch results cover the same streams in the same order
/// with byte-identical signals — the determinism contract of parallel
/// ExecuteBatch (TimestepProbability compares exactly, not within eps).
inline bool IdenticalSignals(const BatchResult& a, const BatchResult& b) {
  if (a.streams.size() != b.streams.size()) return false;
  for (size_t i = 0; i < a.streams.size(); ++i) {
    if (a.streams[i].stream != b.streams[i].stream) return false;
    if (a.streams[i].result.signal != b.streams[i].result.signal) {
      return false;
    }
  }
  return true;
}

/// Measured data density of a query on a stream: fraction of timesteps
/// carrying support for any cursor predicate (Section 4.1.2).
inline double MeasuredDensity(const MarkovianStream& stream,
                              const RegularQuery& query) {
  uint64_t relevant = 0;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    bool hit = false;
    for (const Predicate* pred : query.CursorPredicates()) {
      const Predicate* base = pred->is_negation() ? &pred->base() : pred;
      for (const Distribution::Entry& e : stream.marginal(t).entries()) {
        if (base->Matches(stream.schema(), e.value)) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    relevant += hit ? 1 : 0;
  }
  return static_cast<double>(relevant) / stream.length();
}

}  // namespace bench
}  // namespace caldera

#endif  // CALDERA_BENCH_BENCH_UTIL_H_
