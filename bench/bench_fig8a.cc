// Figure 8(a): worst-case performance of the B+Tree access method vs the
// naive stream scan, on synthetic ~30k-timestep snippet streams, for both
// disk layouts, as data density varies. "Worst case" = every relevant
// timestep participates in a candidate match (match rate 100%).
//
// Paper shape to reproduce: at low density the B+Tree method beats the scan
// by 1-2 orders of magnitude; as density -> 1 it degenerates into a scan
// with index overhead. Both methods run faster on the separated layout.

#include <cstdio>

#include "bench_util.h"
#include "caldera/btree_method.h"
#include "caldera/scan_method.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig8a");
  std::printf("# Figure 8(a): B+Tree vs naive scan, separated vs "
              "co-clustered layout (times in ms, logscale in the paper)\n");
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "density", "scan-sep",
              "scan-co", "btree-sep", "btree-co", "speedup");

  for (double density : {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    SnippetStreamSpec spec;
    spec.num_snippets = 1000;  // ~30k timesteps (8h at 1 Hz in the paper).
    spec.density = density;
    spec.match_rate = 1.0;  // Worst case.
    spec.seed = 8;
    auto workload = MakeSnippetStream(spec);
    CALDERA_CHECK_OK(workload.status());
    RegularQuery query = workload->EnteredRoomFixed();

    double times[4];
    int slot = 0;
    for (DiskLayout layout :
         {DiskLayout::kSeparated, DiskLayout::kCoClustered}) {
      std::string name = "d" + std::to_string(static_cast<int>(density * 100)) +
                         (layout == DiskLayout::kSeparated ? "sep" : "co");
      auto archived = ArchiveStream(root, name, workload->stream, layout,
                                    /*btc=*/true, /*btp=*/false, /*mc=*/false);
      times[slot] = TimeBest([&] {
        CALDERA_CHECK_OK(RunScanMethod(archived.get(), query).status());
      });
      times[slot + 2] = TimeBest([&] {
        CALDERA_CHECK_OK(RunBTreeMethod(archived.get(), query).status());
      });
      ++slot;
    }
    std::printf("%-10.2f %12.2f %12.2f %12.2f %12.2f %9.1fx\n", density,
                times[0] * 1e3, times[1] * 1e3, times[2] * 1e3,
                times[3] * 1e3, times[0] / times[2]);
  }
  std::printf("# expected shape: speedup ~1-2 orders of magnitude at low "
              "density, ~1x at density 1.0; sep <= co for both methods\n");
  return 0;
}
