// Micro-benchmarks (google-benchmark) for Caldera's hot inner loops:
// sparse distribution propagation, CPT composition, B+ tree operations,
// record-file reads, and single Reg-operator updates.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "btree/btree.h"
#include "common/crc32c.h"
#include "common/encoding.h"
#include "common/logging.h"
#include "common/rng.h"
#include "hmm/smoother.h"
#include "index/btc_index.h"
#include "markov/kernels.h"
#include "markov/stream_io.h"
#include "reg/reg_operator.h"
#include "rfid/simulator.h"
#include "rfid/workload.h"
#include "storage/file.h"
#include "storage/pager.h"
#include "storage/record_file.h"

namespace caldera {
namespace {

std::string MicroDir() {
  std::string dir = "/tmp/caldera_bench/micro";
  std::filesystem::create_directories(dir);
  return dir;
}

Cpt RandomCpt(uint32_t domain, double row_density, uint64_t seed) {
  Rng rng(seed);
  Cpt cpt;
  for (uint32_t src = 0; src < domain; ++src) {
    std::vector<Cpt::RowEntry> row;
    double sum = 0;
    for (uint32_t dst = 0; dst < domain; ++dst) {
      if (rng.NextBool(row_density)) {
        double v = rng.NextDouble() + 0.01;
        row.push_back({dst, v});
        sum += v;
      }
    }
    if (row.empty()) {
      row.push_back({src, 1.0});
      sum = 1.0;
    }
    for (auto& e : row) e.prob /= sum;
    cpt.SetRow(src, std::move(row));
  }
  return cpt;
}

Distribution RandomDistribution(uint32_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<Distribution::Entry> entries;
  for (uint32_t v = 0; v < domain; ++v) {
    entries.push_back({v, rng.NextDouble() + 0.01});
  }
  Distribution d = Distribution::FromPairs(std::move(entries));
  d.Normalize();
  return d;
}

void BM_CptPropagate(benchmark::State& state) {
  uint32_t domain = static_cast<uint32_t>(state.range(0));
  Cpt cpt = RandomCpt(domain, 0.1, 1);
  Distribution in = RandomDistribution(domain, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpt.Propagate(in));
  }
  state.SetItemsProcessed(state.iterations() * cpt.nnz());
}
BENCHMARK(BM_CptPropagate)->Arg(32)->Arg(128)->Arg(352);

void BM_ComposeCpts(benchmark::State& state) {
  uint32_t domain = static_cast<uint32_t>(state.range(0));
  Cpt a = RandomCpt(domain, 0.1, 3);
  Cpt b = RandomCpt(domain, 0.1, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComposeCpts(a, b, domain));
  }
}
BENCHMARK(BM_ComposeCpts)->Arg(32)->Arg(128)->Arg(352);

// --------------------------------------------------------------------------
// Flat CSR kernels (markov/kernels.h). BM_CptPropagate above is the legacy
// AoS reference; the kernel benchmarks run the same shapes through the
// dispatched, forced-scalar, and (when supported) SIMD paths so the speedup
// and the scalar-vs-SIMD split are both visible. Args: {domain,
// row_density_permille} — density varies nnz at fixed domain.

void KernelPropagateBench(benchmark::State& state, bool force_scalar) {
  uint32_t domain = static_cast<uint32_t>(state.range(0));
  double density = static_cast<double>(state.range(1)) / 1000.0;
  Cpt cpt = RandomCpt(domain, density, 1);
  Distribution in = RandomDistribution(domain, 2);
  kernels::PropagationWorkspace ws;
  kernels::internal::ForceScalar(force_scalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Propagate(cpt, in, &ws));
  }
  kernels::internal::ForceScalar(false);
  state.SetItemsProcessed(state.iterations() * cpt.nnz());
  state.SetLabel(force_scalar ? "scalar" : kernels::Backend());
}

void BM_KernelPropagate(benchmark::State& state) {
  KernelPropagateBench(state, /*force_scalar=*/false);
}
BENCHMARK(BM_KernelPropagate)
    ->Args({32, 100})
    ->Args({128, 100})
    ->Args({352, 10})
    ->Args({352, 100})
    ->Args({352, 500})
    ->Args({1024, 100});

void BM_KernelPropagateScalar(benchmark::State& state) {
  KernelPropagateBench(state, /*force_scalar=*/true);
}
BENCHMARK(BM_KernelPropagateScalar)
    ->Args({32, 100})
    ->Args({128, 100})
    ->Args({352, 10})
    ->Args({352, 100})
    ->Args({352, 500})
    ->Args({1024, 100});

void KernelComposeBench(benchmark::State& state, bool force_scalar) {
  uint32_t domain = static_cast<uint32_t>(state.range(0));
  double density = static_cast<double>(state.range(1)) / 1000.0;
  Cpt a = RandomCpt(domain, density, 3);
  Cpt b = RandomCpt(domain, density, 4);
  kernels::PropagationWorkspace ws;
  kernels::internal::ForceScalar(force_scalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::Compose(a, b, domain, &ws));
  }
  kernels::internal::ForceScalar(false);
  state.SetItemsProcessed(state.iterations() * a.nnz());
  state.SetLabel(force_scalar ? "scalar" : kernels::Backend());
}

void BM_KernelCompose(benchmark::State& state) {
  KernelComposeBench(state, /*force_scalar=*/false);
}
BENCHMARK(BM_KernelCompose)
    ->Args({32, 100})
    ->Args({128, 100})
    ->Args({352, 10})
    ->Args({352, 100})
    ->Args({1024, 50});

void BM_KernelComposeScalar(benchmark::State& state) {
  KernelComposeBench(state, /*force_scalar=*/true);
}
BENCHMARK(BM_KernelComposeScalar)
    ->Args({32, 100})
    ->Args({128, 100})
    ->Args({352, 10})
    ->Args({352, 100})
    ->Args({1024, 50});

void BM_BTreeInsert(benchmark::State& state) {
  std::string path = MicroDir() + "/insert.bt";
  Rng rng(5);
  std::unique_ptr<BTree> tree;
  uint64_t next_key = 0;
  for (auto _ : state) {
    if (next_key == 0) {
      state.PauseTiming();
      auto created = BTree::Create(path, {12, 8}, 4096, 256);
      CALDERA_CHECK_OK(created.status());
      tree = std::move(*created);
      state.ResumeTiming();
    }
    std::string key = EncodeBtcKey(static_cast<uint32_t>(rng.NextBelow(64)),
                                   next_key++);
    std::string value;
    PutDouble(0.5, &value);
    CALDERA_CHECK_OK(tree->Insert(key, value));
    if (next_key >= 100000) next_key = 0;
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreePointLookup(benchmark::State& state) {
  std::string path = MicroDir() + "/lookup.bt";
  auto builder = BTreeBuilder::Create(path, {12, 8}, 4096);
  CALDERA_CHECK_OK(builder.status());
  const uint64_t kEntries = 200000;
  std::string value;
  PutDouble(0.5, &value);
  for (uint64_t i = 0; i < kEntries; ++i) {
    // Keys must be added in sorted order: value runs of 3125 timesteps.
    CALDERA_CHECK_OK((*builder)->Add(
        EncodeBtcKey(static_cast<uint32_t>(i / 3125), i), value));
  }
  auto tree = (*builder)->Finish(1024);
  CALDERA_CHECK_OK(tree.status());
  Rng rng(6);
  for (auto _ : state) {
    uint64_t i = rng.NextBelow(kEntries);
    auto got = (*tree)->Get(EncodeBtcKey(static_cast<uint32_t>(i / 3125), i));
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_BTreePointLookup);

void BM_BTreeCursorScan(benchmark::State& state) {
  std::string path = MicroDir() + "/scan.bt";
  auto builder = BTreeBuilder::Create(path, {12, 8}, 4096);
  CALDERA_CHECK_OK(builder.status());
  std::string value;
  PutDouble(0.5, &value);
  for (uint64_t i = 0; i < 100000; ++i) {
    CALDERA_CHECK_OK((*builder)->Add(EncodeBtcKey(7, i), value));
  }
  auto tree = (*builder)->Finish(1024);
  CALDERA_CHECK_OK(tree.status());
  for (auto _ : state) {
    auto cursor = (*tree)->SeekFirst();
    CALDERA_CHECK_OK(cursor.status());
    uint64_t count = 0;
    while (cursor->valid()) {
      ++count;
      CALDERA_CHECK_OK(cursor->Next());
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_BTreeCursorScan);

void BM_Crc32c(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string data(n, '\0');
  Rng rng(11);
  for (auto& c : data) c = char(rng.NextBelow(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * n);
  state.SetLabel(Crc32cHardwareEnabled() ? "sse4.2" : "software");
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Crc32cSoftware(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::string data(n, '\0');
  Rng rng(12);
  for (auto& c : data) c = char(rng.NextBelow(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        internal::Crc32cExtendSoftware(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_Crc32cSoftware)->Arg(4096);

// Read-path overhead of the v2 page checksum: cached pager reads verify the
// CRC on every BufferPool miss, so this measures ReadPage with and without
// verification (v2 vs a hand-built v1 file of identical size).
void PagerReadBench(benchmark::State& state, uint32_t version) {
  const uint32_t kPageSize = 4096;
  const uint64_t kPages = 256;
  std::string path = MicroDir() + "/crc_v" + std::to_string(version) + ".pg";
  {
    auto pager = Pager::Create(path, kPageSize);
    CALDERA_CHECK_OK(pager.status());
    std::string payload((*pager)->page_size(), 'p');
    for (uint64_t i = 0; i < kPages; ++i) {
      auto id = (*pager)->AllocatePage();
      CALDERA_CHECK_OK(id.status());
      CALDERA_CHECK_OK((*pager)->WritePage(*id, payload.data()));
    }
    CALDERA_CHECK_OK((*pager)->Sync());
  }
  if (version == 1) {
    // Rewrite the magic so the same file reopens as an unchecksummed v1
    // pager: identical bytes read, no verification.
    auto f = File::OpenOrCreate(path);
    CALDERA_CHECK_OK(f.status());
    CALDERA_CHECK_OK((*f)->WriteAt(0, std::string_view("CLDRPGR1", 8)));
  }
  auto pager = Pager::Open(path);
  CALDERA_CHECK_OK(pager.status());
  std::vector<char> buf((*pager)->physical_page_size());
  Rng rng(13);
  for (auto _ : state) {
    CALDERA_CHECK_OK((*pager)->ReadPage(1 + rng.NextBelow(kPages),
                                        buf.data()));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
}

void BM_PagerReadChecksummed(benchmark::State& state) {
  PagerReadBench(state, 2);
}
BENCHMARK(BM_PagerReadChecksummed);

void BM_PagerReadUnchecksummed(benchmark::State& state) {
  PagerReadBench(state, 1);
}
BENCHMARK(BM_PagerReadUnchecksummed);

void BM_RecordFileRandomRead(benchmark::State& state) {
  std::string path = MicroDir() + "/records.rec";
  {
    auto writer = RecordFileWriter::Create(path);
    CALDERA_CHECK_OK(writer.status());
    for (int i = 0; i < 30000; ++i) {
      CALDERA_CHECK_OK((*writer)->Append(std::string(200, 'r')).status());
    }
    CALDERA_CHECK_OK((*writer)->Finalize());
  }
  auto reader = RecordFileReader::Open(path, 64);
  CALDERA_CHECK_OK(reader.status());
  Rng rng(7);
  std::string out;
  for (auto _ : state) {
    CALDERA_CHECK_OK((*reader)->Get(rng.NextBelow(30000), &out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RecordFileRandomRead);

void BM_RegUpdate(benchmark::State& state) {
  // One Reg update on a paper-scale domain with a query of N links.
  size_t links = static_cast<size_t>(state.range(0));
  uint32_t domain = 352;
  std::vector<std::string> labels;
  for (uint32_t i = 0; i < domain; ++i) {
    labels.push_back("L" + std::to_string(i));
  }
  StreamSchema schema = SingleAttributeSchema("loc", labels);
  std::vector<Predicate> predicates;
  for (size_t i = 0; i < links; ++i) {
    predicates.push_back(Predicate::Equality(
        0, static_cast<uint32_t>(i + 1), "L" + std::to_string(i + 1)));
  }
  RegularQuery query = RegularQuery::Sequence("bench", predicates);
  Cpt cpt = RandomCpt(domain, 0.02, 8);
  Distribution marginal = RandomDistribution(domain, 9);
  RegOperator reg(query, schema);
  reg.Initialize(marginal);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.Update(cpt));
  }
}
BENCHMARK(BM_RegUpdate)->Arg(2)->Arg(3)->Arg(4);

void BM_SmoothSnippet(benchmark::State& state) {
  // Forward-backward smoothing of one ~30s snippet in a 20-location
  // corridor.
  BuildingLayout layout = BuildingLayout::MakeCorridor({.segments = 10});
  Hmm hmm = layout.MakeHmm({});
  auto h0 = layout.LocationByName("H0");
  CALDERA_CHECK_OK(h0.status());
  hmm.SetInitial(Distribution::Point(*h0));
  PersonSimulator sim(&layout, 10);
  auto room = layout.LocationByName("Room5_0");
  CALDERA_CHECK_OK(room.status());
  auto truth = sim.SimulateRoutine(*h0, {{*room, 15}, {*h0, 0}});
  CALDERA_CHECK_OK(truth.status());
  auto obs = sim.Observe(*truth, hmm);
  CALDERA_CHECK_OK(obs.status());
  StreamSchema schema = layout.MakeSchema();
  for (auto _ : state) {
    auto stream = SmoothToMarkovianStream(hmm, *obs, schema, {});
    CALDERA_CHECK_OK(stream.status());
    benchmark::DoNotOptimize(stream);
  }
}
BENCHMARK(BM_SmoothSnippet);

}  // namespace
}  // namespace caldera

BENCHMARK_MAIN();
