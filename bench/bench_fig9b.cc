// Figure 9(b): the variable-length access methods on real-world-style
// streams — the Kleene-closure versions of the 22 Entered-Room queries of
// Figure 8(b), on the same 28-minute routine trace. The naive-scan column
// is directly comparable with Figure 8(b)'s.
//
// Paper shape to reproduce: the MC index scales inversely with density and
// beats the scan by more than an order of magnitude at low density; the
// semi-independent method gains just under another order of magnitude.

#include <cstdio>

#include "bench_util.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig9b");

  RoutineSpec spec;
  spec.length = 1680;
  spec.num_excursions = 6;
  spec.seed = 81;  // Same trace as Figure 8(b).
  auto workload = MakeRoutineStream(spec);
  CALDERA_CHECK_OK(workload.status());
  auto archived =
      ArchiveStream(root, "trace", workload->stream, DiskLayout::kSeparated,
                    true, false, true);

  std::printf("# Figure 9(b): Kleene versions of the Figure 8(b) queries "
              "(times in ms; MC index alpha=2)\n");
  std::printf("%-26s %9s %10s %10s %10s\n", "room", "density", "scan",
              "mc-index", "semi");

  for (uint32_t room : workload->QueryRooms(22)) {
    auto query = workload->EnteredRoom(room, 2, /*variable=*/true);
    CALDERA_CHECK_OK(query.status());
    double density = MeasuredDensity(workload->stream, *query);
    double scan = TimeBest([&] {
      CALDERA_CHECK_OK(RunScanMethod(archived.get(), *query).status());
    });
    double mc = TimeBest([&] {
      CALDERA_CHECK_OK(RunMcMethod(archived.get(), *query).status());
    });
    double semi = TimeBest([&] {
      CALDERA_CHECK_OK(
          RunSemiIndependentMethod(archived.get(), *query).status());
    });
    std::printf("%-26s %9.3f %10.2f %10.2f %10.2f\n",
                workload->schema.label(0, room).c_str(), density, scan * 1e3,
                mc * 1e3, semi * 1e3);
  }
  std::printf("# expected shape: mc << scan at low density; semi < mc\n");
  return 0;
}
