// Ablation benchmarks for Caldera design choices not tied to a specific
// paper figure:
//   1. Buffer-pool capacity vs B+Tree-method latency and page misses.
//   2. Page size vs scan latency.
//   3. MC-index branching factor (alpha) vs variable-length query latency.
//   4. Smoothing truncation threshold vs density and signal fidelity.
//   5. Disk layout for the MC access method (it touches marginals AND CPTs).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("ablation");

  SnippetStreamSpec spec;
  spec.num_snippets = 600;
  spec.density = 0.1;
  spec.seed = 120;
  auto workload = MakeSnippetStream(spec);
  CALDERA_CHECK_OK(workload.status());
  RegularQuery fixed = workload->EnteredRoomFixed();
  RegularQuery variable = workload->EnteredRoomVariable();

  // 1. Buffer-pool capacity.
  std::printf("# Ablation 1: buffer-pool pages vs B+Tree method\n");
  std::printf("%-12s %10s %12s %12s\n", "pool-pages", "time-ms", "misses",
              "hit-rate");
  for (size_t pool : {4u, 16u, 64u, 256u, 1024u}) {
    auto archived = ArchiveStream(root, "bp" + std::to_string(pool),
                                  workload->stream, DiskLayout::kSeparated,
                                  true, false, false, pool);
    auto result = RunBTreeMethod(archived.get(), fixed);
    CALDERA_CHECK_OK(result.status());
    double t = TimeBest([&] {
      CALDERA_CHECK_OK(RunBTreeMethod(archived.get(), fixed).status());
    });
    const BufferPoolStats& io = result->stats.stream_io;
    std::printf("%-12zu %10.2f %12llu %11.1f%%\n", pool, t * 1e3,
                static_cast<unsigned long long>(io.misses),
                io.fetches > 0 ? 100.0 * io.hits / io.fetches : 0.0);
  }

  // 2. Page size.
  std::printf("\n# Ablation 2: page size vs naive scan\n");
  std::printf("%-12s %10s %14s\n", "page-bytes", "time-ms", "pages-fetched");
  for (uint32_t page_size : {1024u, 4096u, 16384u}) {
    StreamArchive archive(root + "/ps" + std::to_string(page_size));
    CALDERA_CHECK_OK(archive.CreateStream("s", workload->stream,
                                          DiskLayout::kSeparated,
                                          page_size));
    auto archived = archive.OpenStream("s", 64);
    CALDERA_CHECK_OK(archived.status());
    auto result = RunScanMethod(archived->get(), fixed);
    CALDERA_CHECK_OK(result.status());
    double t = TimeBest([&] {
      CALDERA_CHECK_OK(RunScanMethod(archived->get(), fixed).status());
    });
    std::printf("%-12u %10.2f %14llu\n", page_size, t * 1e3,
                static_cast<unsigned long long>(
                    result->stats.stream_io.fetches));
  }

  // 3. MC alpha.
  std::printf("\n# Ablation 3: MC-index alpha vs variable-length query\n");
  std::printf("%-8s %10s %12s %12s\n", "alpha", "time-ms", "index-KiB",
              "fetches");
  for (uint32_t alpha : {2u, 4u, 8u, 16u}) {
    StreamArchive archive(root + "/mc_a" + std::to_string(alpha));
    CALDERA_CHECK_OK(archive.CreateStream("s", workload->stream));
    CALDERA_CHECK_OK(archive.BuildBtc("s", 0));
    CALDERA_CHECK_OK(archive.BuildMc("s", {.alpha = alpha}));
    auto archived = archive.OpenStream("s", 128);
    CALDERA_CHECK_OK(archived.status());
    auto result = RunMcMethod(archived->get(), variable);
    CALDERA_CHECK_OK(result.status());
    double t = TimeBest([&] {
      CALDERA_CHECK_OK(RunMcMethod(archived->get(), variable).status());
    });
    std::printf("%-8u %10.2f %12.0f %12llu\n", alpha, t * 1e3,
                (*archived)->mc()->StoredBytes() / 1024.0,
                static_cast<unsigned long long>(result->stats.mc_entry_fetches +
                                                result->stats.mc_raw_fetches));
  }

  // 4. Truncation threshold (smoothing sparsity knob).
  std::printf("\n# Ablation 4: smoothing truncation eps vs density/signal\n");
  std::printf("%-10s %10s %12s %14s\n", "eps", "density", "scan-ms",
              "peak-delta");
  double reference_peak = -1;
  for (double eps : {1e-4, 1e-3, 1e-2}) {
    SnippetStreamSpec eps_spec = spec;
    eps_spec.num_snippets = 200;
    eps_spec.density = 1.0;
    eps_spec.truncate_eps = eps;
    auto w = MakeSnippetStream(eps_spec);
    CALDERA_CHECK_OK(w.status());
    auto archived = ArchiveStream(root, "eps" + std::to_string(int(-std::log10(eps))),
                                  w->stream, DiskLayout::kSeparated, true,
                                  false, false);
    RegularQuery q = w->EnteredRoomFixed();
    double density = MeasuredDensity(w->stream, q);
    auto result = RunScanMethod(archived.get(), q);
    CALDERA_CHECK_OK(result.status());
    double peak = 0;
    for (const TimestepProbability& e : result->signal) {
      peak = std::max(peak, e.prob);
    }
    if (reference_peak < 0) reference_peak = peak;
    double t = TimeBest([&] {
      CALDERA_CHECK_OK(RunScanMethod(archived.get(), q).status());
    });
    std::printf("%-10.0e %10.3f %12.2f %14.4f\n", eps, density, t * 1e3,
                std::abs(peak - reference_peak));
  }

  // 5. Layout for the MC access method.
  std::printf("\n# Ablation 5: disk layout for the MC access method\n");
  std::printf("%-14s %10s %14s\n", "layout", "time-ms", "stream-misses");
  for (DiskLayout layout :
       {DiskLayout::kSeparated, DiskLayout::kCoClustered}) {
    auto archived = ArchiveStream(
        root, std::string("mclayout_") + DiskLayoutName(layout),
        workload->stream, layout, true, false, true, 64);
    auto result = RunMcMethod(archived.get(), variable);
    CALDERA_CHECK_OK(result.status());
    double t = TimeBest([&] {
      CALDERA_CHECK_OK(RunMcMethod(archived.get(), variable).status());
    });
    std::printf("%-14s %10.2f %14llu\n", DiskLayoutName(layout), t * 1e3,
                static_cast<unsigned long long>(
                    result->stats.stream_io.misses));
  }
  return 0;
}
