// Figure 11(b): storage requirements of the Markov chain index for various
// alpha, on streams of varying length, reported next to the raw stream's
// own CPT bytes.
//
// Paper shape to reproduce: storage grows linearly with stream length;
// alpha=2 roughly doubles the stream's CPT storage, and larger alpha
// decreases it steeply.

#include <cstdio>

#include "bench_util.h"
#include "index/mc_index.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig11b");
  std::printf("# Figure 11(b): MC index storage (KiB of CPT payload) vs "
              "stream length and alpha\n");
  std::printf("%-12s %12s %12s %12s %12s %12s %14s\n", "timesteps",
              "raw-cpts", "alpha=2", "alpha=4", "alpha=8", "alpha=16",
              "a2/raw-ratio");

  int variant = 0;
  for (uint32_t snippets : {36u, 73u, 146u, 292u, 584u, 1100u}) {
    SnippetStreamSpec spec;
    spec.num_snippets = snippets;
    spec.seed = 111;
    auto workload = MakeSnippetStream(spec);
    CALDERA_CHECK_OK(workload.status());
    const MarkovianStream& stream = workload->stream;

    CALDERA_CHECK_OK(WriteStream(root + "/s" + std::to_string(variant),
                                 stream));
    auto stored =
        StoredStream::Open(root + "/s" + std::to_string(variant));
    CALDERA_CHECK_OK(stored.status());
    StoredStream* raw = stored->get();
    TransitionSource source = [raw](uint64_t t, Cpt* out) {
      return raw->ReadTransition(t, out);
    };

    double kib[4];
    int i = 0;
    for (uint32_t alpha : {2u, 4u, 8u, 16u}) {
      std::string dir = root + "/mc" + std::to_string(variant) + "_a" +
                        std::to_string(alpha);
      CALDERA_CHECK_OK(McIndex::Build(stream, dir, {.alpha = alpha}));
      auto index = McIndex::Open(dir, source);
      CALDERA_CHECK_OK(index.status());
      kib[i++] = (*index)->StoredBytes() / 1024.0;
    }
    double raw_kib = stream.CptBytes() / 1024.0;
    std::printf("%-12llu %12.0f %12.0f %12.0f %12.0f %12.0f %13.2fx\n",
                static_cast<unsigned long long>(stream.length()), raw_kib,
                kib[0], kib[1], kib[2], kib[3], kib[0] / raw_kib);
    ++variant;
  }
  std::printf("# expected shape: linear growth in length; alpha=2 index "
              "~1-2x the raw CPT bytes; storage falls steeply with alpha\n");
  return 0;
}
