// Figure 8(c): B+Tree access method performance on increasingly favorable
// synthetic datasets — each curve fixes the fraction of relevant timesteps
// that participate in a candidate query match (100%/50%/25%), sweeping data
// density on the x axis.
//
// Paper shape to reproduce: for a fixed density, lowering the match rate
// proportionally lowers processing time; at the lowest densities the gap
// between 100% and 25% reaches roughly an order of magnitude.

#include <cstdio>

#include "bench_util.h"
#include "caldera/btree_method.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig8c");
  std::printf("# Figure 8(c): B+Tree method, time (ms) vs density, one "
              "column per query-match rate\n");
  std::printf("%-10s %14s %14s %14s\n", "density", "match=100%",
              "match=50%", "match=25%");

  int variant = 0;
  for (double density : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    double times[3];
    int i = 0;
    for (double match_rate : {1.0, 0.5, 0.25}) {
      SnippetStreamSpec spec;
      spec.num_snippets = 1000;
      spec.density = density;
      spec.match_rate = match_rate;
      spec.seed = 80;
      auto workload = MakeSnippetStream(spec);
      CALDERA_CHECK_OK(workload.status());
      auto archived = ArchiveStream(root, "v" + std::to_string(variant++),
                                    workload->stream, DiskLayout::kSeparated,
                                    true, false, false);
      RegularQuery query = workload->EnteredRoomFixed();
      times[i++] = TimeBest([&] {
        CALDERA_CHECK_OK(RunBTreeMethod(archived.get(), query).status());
      });
    }
    std::printf("%-10.2f %14.2f %14.2f %14.2f\n", density, times[0] * 1e3,
                times[1] * 1e3, times[2] * 1e3);
  }
  std::printf("# expected shape: each curve falls as density falls; lower "
              "match rates run proportionally faster\n");
  return 0;
}
