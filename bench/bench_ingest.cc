// Live-ingestion benchmark: durable append throughput through the WAL
// commit protocol, and the cost of incremental MC index maintenance
// against a full rebuild. The right-spine extension recomputes
// O(B/(alpha-1) + log_alpha n) nodes per batch of B timesteps, so extend
// cost should stay flat in the stream length while rebuild cost grows
// linearly; results land in BENCH_ingest.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "caldera/btree_method.h"
#include "caldera/system.h"
#include "ingest/ingestor.h"
#include "markov/synthetic.h"
#include "query/regular_query.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

namespace {

double Seconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<IngestTimestep> Slice(const MarkovianStream& full, uint64_t from,
                                  uint64_t count) {
  std::vector<IngestTimestep> batch;
  batch.reserve(count);
  for (uint64_t t = from; t < from + count; ++t) {
    batch.push_back({full.marginal(t), full.transition(t)});
  }
  return batch;
}

MarkovianStream Prefix(const MarkovianStream& full, uint64_t len) {
  MarkovianStream prefix(full.schema());
  for (uint64_t t = 0; t < len; ++t) {
    prefix.Append(full.marginal(t), t == 0 ? Cpt() : full.transition(t));
  }
  return prefix;
}

}  // namespace

int main() {
  std::string root = ScratchDir("ingest");
  constexpr uint32_t kDomain = 16;

  std::FILE* json = std::fopen("BENCH_ingest.json", "w");
  CALDERA_CHECK(json != nullptr);
  std::fprintf(json, "{\n  \"append_throughput\": [\n");

  // Durable append throughput: archive a 1000-timestep prefix with all
  // three index families, then ingest 1000 more timesteps in batches of B.
  // Every batch pays two fsyncs (frame + undo journal) plus the full index
  // maintenance, so throughput should rise steeply with the batch size.
  std::printf("# Append throughput: 1000 timesteps onto a 1000-timestep "
              "archive (BT_C + BT_P + MC)\n");
  std::printf("%-10s %14s %16s %14s %16s\n", "batch", "timesteps/s",
              "wal-bytes/step", "mc-nodes", "identical-out");

  const MarkovianStream full = MakeBandedRandomWalkStream(2000, kDomain, 99);
  Caldera system(root);
  CALDERA_CHECK_OK(system.archive()->CreateStream("oracle", full));
  CALDERA_CHECK_OK(system.archive()->BuildBtc("oracle", 0));
  const RegularQuery query = RegularQuery::Sequence(
      "probe", {Predicate::Equality(0, 2, "eq2"), Predicate::Equality(0, 3, "eq3")});
  ExecOptions btree_exec;
  btree_exec.method = AccessMethodKind::kBTree;
  auto oracle = system.Execute("oracle", query, btree_exec);
  CALDERA_CHECK_OK(oracle.status());

  bool first_row = true;
  for (uint64_t batch_size : {1u, 16u, 64u, 256u}) {
    std::string name = "b";
    name += std::to_string(batch_size);
    CALDERA_CHECK_OK(system.archive()->CreateStream(name, Prefix(full, 1000)));
    CALDERA_CHECK_OK(system.archive()->BuildBtc(name, 0));
    CALDERA_CHECK_OK(system.archive()->BuildBtp(name, 0));
    CALDERA_CHECK_OK(system.archive()->BuildMc(name, {.alpha = 2}));
    system.InvalidateStreams();

    auto ingestor = system.OpenForIngest(name);
    CALDERA_CHECK_OK(ingestor.status());
    double secs = Seconds([&] {
      for (uint64_t at = 1000; at < 2000; at += batch_size) {
        uint64_t count = std::min<uint64_t>(batch_size, 2000 - at);
        CALDERA_CHECK_OK((*ingestor)->Append(Slice(full, at, count)));
      }
    });
    const IngestStats& stats = (*ingestor)->stats();
    double per_sec = static_cast<double>(stats.timesteps_appended) / secs;
    double wal_per_step = static_cast<double>(stats.wal_bytes) /
                          static_cast<double>(stats.timesteps_appended);

    auto live = system.Execute(name, query, btree_exec);
    CALDERA_CHECK_OK(live.status());
    bool identical = live->signal == oracle->signal;

    std::printf("%-10llu %14.0f %16.0f %14llu %16s\n",
                static_cast<unsigned long long>(batch_size), per_sec,
                wal_per_step,
                static_cast<unsigned long long>(stats.mc.nodes_recomputed),
                identical ? "yes" : "NO");
    std::fprintf(json,
                 "%s    {\"batch\": %llu, \"timesteps_per_s\": %.0f, "
                 "\"wal_bytes_per_step\": %.0f, \"mc_nodes_recomputed\": "
                 "%llu, \"identical\": %s}",
                 first_row ? "" : ",\n",
                 static_cast<unsigned long long>(batch_size), per_sec,
                 wal_per_step,
                 static_cast<unsigned long long>(stats.mc.nodes_recomputed),
                 identical ? "true" : "false");
    first_row = false;
  }
  std::printf("# expected: throughput rises with batch size (two fsyncs "
              "per batch amortize); identical-out=yes everywhere\n");

  // Incremental extension vs full rebuild: at each archived length n,
  // append one 16-timestep batch through the ingestor and compare its MC
  // maintenance (time and nodes recomputed) with rebuilding the whole MC
  // index at length n+16. Extend cost should stay ~flat; rebuild is O(n).
  std::fprintf(json, "\n  ],\n  \"mc_extend_vs_rebuild\": [\n");
  std::printf("\n# MC maintenance: extend by 16 vs full rebuild, alpha=2\n");
  std::printf("%-12s %14s %14s %16s %14s\n", "length", "extend-ms",
              "rebuild-ms", "extend-nodes", "ratio");

  first_row = true;
  for (uint64_t length : {1024u, 4096u, 16384u}) {
    const MarkovianStream big =
        MakeBandedRandomWalkStream(length + 16, kDomain, 7);
    std::string name = "n";
    name += std::to_string(length);
    CALDERA_CHECK_OK(system.archive()->CreateStream(name, Prefix(big, length)));
    CALDERA_CHECK_OK(system.archive()->BuildMc(name, {.alpha = 2}));
    system.InvalidateStreams();

    auto ingestor = system.OpenForIngest(name);
    CALDERA_CHECK_OK(ingestor.status());
    double extend_s = Seconds([&] {
      CALDERA_CHECK_OK((*ingestor)->Append(Slice(big, length, 16)));
    });
    uint64_t extend_nodes = (*ingestor)->stats().mc.nodes_recomputed;

    // Full rebuild of the same index at the same final length. Best-of-3:
    // the rebuild is rerunnable once the old level files are removed.
    std::string rebuild_name = name + "_full";
    CALDERA_CHECK_OK(
        system.archive()->CreateStream(rebuild_name, Prefix(big, length + 16)));
    double rebuild_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      std::filesystem::remove_all(system.archive()->StreamDir(rebuild_name) +
                                  "/mc");
      double s = Seconds([&] {
        CALDERA_CHECK_OK(
            system.archive()->BuildMc(rebuild_name, {.alpha = 2}));
      });
      if (s < rebuild_s) rebuild_s = s;
    }

    std::printf("%-12llu %14.3f %14.3f %16llu %13.1fx\n",
                static_cast<unsigned long long>(length), extend_s * 1e3,
                rebuild_s * 1e3,
                static_cast<unsigned long long>(extend_nodes),
                rebuild_s / extend_s);
    std::fprintf(json,
                 "%s    {\"length\": %llu, \"extend_ms\": %.4f, "
                 "\"rebuild_ms\": %.4f, \"extend_nodes\": %llu}",
                 first_row ? "" : ",\n",
                 static_cast<unsigned long long>(length), extend_s * 1e3,
                 rebuild_s * 1e3,
                 static_cast<unsigned long long>(extend_nodes));
    first_row = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("# expected: extend-ms ~flat in length (right-spine O(log n) "
              "maintenance), rebuild-ms ~linear; wrote BENCH_ingest.json\n");
  return 0;
}
