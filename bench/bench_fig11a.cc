// Figure 11(a): time required to compute the CPT between two timesteps
// separated by intervals of varying length, using the Markov chain index
// (alpha=2). Each successive curve omits one more of the lowest index
// levels; the leftmost curve is the naive raw-stream scan.
//
// Paper shape to reproduce: the naive scan grows linearly in the interval
// length; with the index the cost is logarithmic; each removed level
// doubles the work for intervals below its span (flat-step structure).
// Results are averaged over all placements of the interval, as in the
// paper.

#include <cstdio>

#include "bench_util.h"
#include "index/mc_index.h"
#include "rfid/workload.h"

using namespace caldera;         // NOLINT
using namespace caldera::bench;  // NOLINT

int main() {
  std::string root = ScratchDir("fig11a");

  SnippetStreamSpec spec;
  spec.num_snippets = 1100;  // ~32k timesteps.
  spec.seed = 110;
  auto workload = MakeSnippetStream(spec);
  CALDERA_CHECK_OK(workload.status());
  const MarkovianStream& stream = workload->stream;

  CALDERA_CHECK_OK(WriteStream(root + "/stream", stream));
  auto stored = StoredStream::Open(root + "/stream");
  CALDERA_CHECK_OK(stored.status());
  StoredStream* raw = stored->get();
  CALDERA_CHECK_OK(McIndex::Build(stream, root + "/mc", {.alpha = 2}));
  auto index = McIndex::Open(root + "/mc", [raw](uint64_t t, Cpt* out) {
    return raw->ReadTransition(t, out);
  });
  CALDERA_CHECK_OK(index.status());

  std::printf("# Figure 11(a): avg CPT computation time (us) vs interval "
              "length; naive = raw scan; i>=N = lowest stored level is N\n");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "interval", "naive",
              "i>=1", "i>=2", "i>=3", "i>=4", "i>=5");

  const int kPlacements = 24;
  Cpt cpt;
  for (uint64_t gap : {2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull,
                       256ull, 512ull, 1024ull}) {
    std::printf("%-10llu", static_cast<unsigned long long>(gap));
    // Naive scan: compose raw transitions only. Model it through the index
    // by setting min_level beyond the top (no stored level usable).
    CALDERA_CHECK_OK((*index)->SetMinLevel((*index)->num_levels() + 1));
    double naive = TimeBest([&] {
      for (int p = 0; p < kPlacements; ++p) {
        uint64_t from = 1 + (p * 797) % (stream.length() - gap - 2);
        CALDERA_CHECK_OK((*index)->ComputeCpt(from, from + gap, &cpt));
      }
    });
    std::printf(" %10.1f", naive / kPlacements * 1e6);
    for (uint32_t min_level = 1; min_level <= 5; ++min_level) {
      CALDERA_CHECK_OK((*index)->SetMinLevel(min_level));
      double t = TimeBest([&] {
        for (int p = 0; p < kPlacements; ++p) {
          uint64_t from = 1 + (p * 797) % (stream.length() - gap - 2);
          CALDERA_CHECK_OK((*index)->ComputeCpt(from, from + gap, &cpt));
        }
      });
      std::printf(" %10.1f", t / kPlacements * 1e6);
    }
    std::printf("\n");
  }
  std::printf("# expected shape: naive grows ~linearly; indexed columns "
              "grow ~logarithmically; dropping a level roughly doubles\n"
              "# the cost of intervals below its span\n");
  return 0;
}
