// Tests for multi-stream (fleet) batch execution and Viterbi decoding.

#include <gtest/gtest.h>

#include <cmath>

#include "caldera/batch.h"
#include "common/logging.h"
#include "hmm/smoother.h"
#include "hmm/viterbi.h"
#include "rfid/layout.h"
#include "rfid/simulator.h"
#include "test_util.h"

namespace caldera {
namespace {

RegularQuery Fixed(uint32_t a, uint32_t b) {
  return RegularQuery::Sequence(
      "f", {Predicate::Equality(0, a, "a"), Predicate::Equality(0, b, "b")});
}

class BatchTest : public ::testing::Test {
 protected:
  BatchTest() : scratch_("batch_test"), system_(scratch_.Path("archive")) {}

  void AddStream(const std::string& name, uint64_t seed, bool index) {
    MarkovianStream stream = test::MakeBandedStream(150, 12, seed);
    CALDERA_CHECK_OK(system_.archive()->CreateStream(name, stream));
    if (index) {
      CALDERA_CHECK_OK(system_.archive()->BuildBtc(name, 0));
      CALDERA_CHECK_OK(system_.archive()->BuildBtp(name, 0));
    }
  }

  test::ScratchDir scratch_;
  Caldera system_;
};

TEST_F(BatchTest, RunsOverAllStreams) {
  AddStream("tag1", 1, true);
  AddStream("tag2", 2, true);
  AddStream("tag3", 3, true);
  auto batch = ExecuteBatch(&system_, Fixed(4, 5), {});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->streams.size(), 3u);
  EXPECT_EQ(batch->streams[0].stream, "tag1");
  EXPECT_EQ(batch->streams[2].stream, "tag3");
  EXPECT_GT(batch->TotalRegUpdates(), 0u);
  EXPECT_GE(batch->TotalSeconds(), 0.0);

  // Per-stream results equal individual execution.
  for (const BatchStreamResult& s : batch->streams) {
    auto single = system_.Execute(s.stream, Fixed(4, 5), {});
    ASSERT_TRUE(single.ok());
    ASSERT_EQ(s.result.signal.size(), single->signal.size());
    for (size_t i = 0; i < s.result.signal.size(); ++i) {
      EXPECT_EQ(s.result.signal[i], single->signal[i]);
    }
  }
}

TEST_F(BatchTest, SubsetSelection) {
  AddStream("a", 4, true);
  AddStream("b", 5, true);
  AddStream("c", 6, true);
  BatchOptions options;
  options.streams = {"c", "a"};
  auto batch = ExecuteBatch(&system_, Fixed(2, 3), options);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->streams.size(), 2u);
  EXPECT_EQ(batch->streams[0].stream, "c");
  EXPECT_EQ(batch->streams[1].stream, "a");
}

TEST_F(BatchTest, TopMatchesMergesAcrossStreams) {
  AddStream("x", 7, true);
  AddStream("y", 8, true);
  auto batch = ExecuteBatch(&system_, Fixed(3, 4), {});
  ASSERT_TRUE(batch.ok());
  auto top = batch->TopMatches(5, 0.0);
  EXPECT_LE(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second.prob, top[i].second.prob);
  }
  // The global best equals the max over per-stream bests.
  double best = 0;
  for (const BatchStreamResult& s : batch->streams) {
    for (const TimestepProbability& e : s.result.signal) {
      best = std::max(best, e.prob);
    }
  }
  if (!top.empty()) {
    EXPECT_DOUBLE_EQ(top[0].second.prob, best);
  }
}

TEST_F(BatchTest, MissingStreamFailsBatch) {
  AddStream("only", 9, true);
  BatchOptions options;
  options.streams = {"only", "ghost"};
  auto batch = ExecuteBatch(&system_, Fixed(1, 2), options);
  EXPECT_EQ(batch.status().code(), StatusCode::kNotFound);
}

TEST_F(BatchTest, FallbackToScanOnMissingIndex) {
  AddStream("indexed", 10, true);
  AddStream("bare", 11, false);  // No indexes at all.
  BatchOptions options;
  options.exec.method = AccessMethodKind::kBTree;
  auto strict = ExecuteBatch(&system_, Fixed(2, 3), options);
  EXPECT_EQ(strict.status().code(), StatusCode::kFailedPrecondition);

  options.fallback_to_scan = true;
  auto relaxed = ExecuteBatch(&system_, Fixed(2, 3), options);
  ASSERT_TRUE(relaxed.ok()) << relaxed.status().ToString();
  ASSERT_EQ(relaxed->streams.size(), 2u);
  for (const BatchStreamResult& s : relaxed->streams) {
    EXPECT_EQ(s.result.method, s.stream == "indexed"
                                   ? AccessMethodKind::kBTree
                                   : AccessMethodKind::kScan)
        << s.stream;
  }
}

// ---------------------------------------------------------------------------
// Viterbi
// ---------------------------------------------------------------------------

Hmm ChainHmm() {
  Hmm hmm(3, 3);
  hmm.SetInitial(Distribution::FromPairs({{0, 1.0}}));
  hmm.SetTransitionRow(0, {{0, 0.5}, {1, 0.5}});
  hmm.SetTransitionRow(1, {{0, 0.25}, {1, 0.5}, {2, 0.25}});
  hmm.SetTransitionRow(2, {{1, 0.5}, {2, 0.5}});
  hmm.SetEmissionRow(0, {{0, 0.3}, {1, 0.7}});
  hmm.SetEmissionRow(1, {{0, 1.0}});
  hmm.SetEmissionRow(2, {{0, 0.3}, {2, 0.7}});
  return hmm;
}

TEST(ViterbiTest, RecoversUnambiguousTrajectory) {
  // Fully observable model: Viterbi must reproduce the truth exactly.
  Hmm hmm(3, 3);
  hmm.SetInitial(Distribution::FromPairs({{0, 1.0}}));
  hmm.SetTransitionRow(0, {{0, 0.5}, {1, 0.5}});
  hmm.SetTransitionRow(1, {{0, 0.25}, {1, 0.5}, {2, 0.25}});
  hmm.SetTransitionRow(2, {{1, 0.5}, {2, 0.5}});
  for (uint32_t s = 0; s < 3; ++s) hmm.SetEmissionRow(s, {{s, 1.0}});
  Rng rng(1);
  std::vector<uint32_t> truth, obs;
  ASSERT_TRUE(hmm.Sample(60, &rng, &truth, &obs).ok());
  auto decoded = ViterbiDecode(hmm, obs);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->states, truth);
  EXPECT_LT(decoded->log_probability, 0.0);
}

TEST(ViterbiTest, PathIsModelConsistent) {
  Hmm hmm = ChainHmm();
  std::vector<uint32_t> obs = {1, 0, 0, 0, 2, 0, 1};
  auto decoded = ViterbiDecode(hmm, obs);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->states.size(), obs.size());
  // Every step possible under the model and consistent with emissions.
  EXPECT_GT(hmm.initial().ProbabilityOf(decoded->states[0]), 0.0);
  for (size_t t = 0; t < obs.size(); ++t) {
    EXPECT_GT(hmm.EmissionProb(decoded->states[t], obs[t]), 0.0);
    if (t > 0) {
      EXPECT_GT(hmm.transition().Probability(decoded->states[t - 1],
                                             decoded->states[t]),
                0.0);
    }
  }
}

TEST(ViterbiTest, BeatsOrTiesAnyOtherPath) {
  // Brute-force check on a short sequence: no trajectory scores higher.
  Hmm hmm = ChainHmm();
  std::vector<uint32_t> obs = {1, 0, 0, 2};
  auto decoded = ViterbiDecode(hmm, obs);
  ASSERT_TRUE(decoded.ok());
  double best = -1e300;
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 0; b < 3; ++b) {
      for (uint32_t c = 0; c < 3; ++c) {
        for (uint32_t d = 0; d < 3; ++d) {
          double p = hmm.initial().ProbabilityOf(a) *
                     hmm.EmissionProb(a, obs[0]) *
                     hmm.transition().Probability(a, b) *
                     hmm.EmissionProb(b, obs[1]) *
                     hmm.transition().Probability(b, c) *
                     hmm.EmissionProb(c, obs[2]) *
                     hmm.transition().Probability(c, d) *
                     hmm.EmissionProb(d, obs[3]);
          if (p > 0) best = std::max(best, std::log(p));
        }
      }
    }
  }
  EXPECT_NEAR(decoded->log_probability, best, 1e-9);
}

TEST(ViterbiTest, RejectsImpossibleSequences) {
  Hmm hmm = ChainHmm();
  EXPECT_FALSE(ViterbiDecode(hmm, {}).ok());
  EXPECT_FALSE(ViterbiDecode(hmm, {2}).ok());  // C's beep from start A.
  EXPECT_FALSE(ViterbiDecode(hmm, {9}).ok());  // Unknown symbol.
}

TEST(ViterbiTest, AgreesWithSmootherOnStrongEvidence) {
  // Where the posterior is concentrated, the Viterbi path should track the
  // smoothed argmax.
  Hmm hmm = ChainHmm();
  Rng rng(2);
  std::vector<uint32_t> truth, obs;
  ASSERT_TRUE(hmm.Sample(40, &rng, &truth, &obs).ok());
  auto decoded = ViterbiDecode(hmm, obs);
  ASSERT_TRUE(decoded.ok());
  auto stream = SmoothToMarkovianStream(
      hmm, obs, SingleAttributeSchema("loc", {"A", "B", "C"}),
      {.truncate_eps = 0.0});
  ASSERT_TRUE(stream.ok());
  size_t agreements = 0;
  for (uint64_t t = 0; t < stream->length(); ++t) {
    ValueId argmax = 0;
    double best = -1;
    for (const Distribution::Entry& e : stream->marginal(t).entries()) {
      if (e.prob > best) {
        best = e.prob;
        argmax = e.value;
      }
    }
    if (best > 0.8 && argmax == decoded->states[t]) ++agreements;
    if (best > 0.8 && argmax != decoded->states[t]) {
      ADD_FAILURE() << "strongly-supported marginal disagrees with Viterbi "
                       "at t=" << t;
    }
    (void)agreements;
  }
}

}  // namespace
}  // namespace caldera
