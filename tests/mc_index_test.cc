#include <gtest/gtest.h>

#include "index/mc_index.h"
#include "markov/stream_io.h"
#include "test_util.h"

namespace caldera {
namespace {

// Reference: the product of per-step transitions computed directly from the
// in-memory stream.
Cpt DirectSpan(const MarkovianStream& stream, uint64_t from, uint64_t to) {
  Cpt result = stream.transition(from + 1);
  for (uint64_t t = from + 2; t <= to; ++t) {
    result =
        ComposeCpts(result, stream.transition(t), stream.schema().state_count());
  }
  return result;
}

void ExpectCptsNear(const Cpt& a, const Cpt& b, double tol = 1e-9) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (const Cpt::Row& row : a.rows()) {
    const Cpt::Row* other = b.FindRow(row.src);
    ASSERT_NE(other, nullptr) << "missing row " << row.src;
    ASSERT_EQ(row.entries.size(), other->entries.size());
    for (size_t i = 0; i < row.entries.size(); ++i) {
      EXPECT_EQ(row.entries[i].dst, other->entries[i].dst);
      EXPECT_NEAR(row.entries[i].prob, other->entries[i].prob, tol);
    }
  }
}

class McIndexTest : public ::testing::Test {
 protected:
  McIndexTest() : scratch_("mc_index_test") {}

  // Builds stream, archives it, builds the MC index, opens both.
  void Setup(uint64_t length, uint32_t domain, uint64_t seed,
             const McIndexOptions& options) {
    stream_ = test::MakeValidStream(length, domain, seed);
    ASSERT_TRUE(WriteStream(scratch_.Path("stream"), stream_,
                            DiskLayout::kSeparated)
                    .ok());
    auto stored = StoredStream::Open(scratch_.Path("stream"));
    ASSERT_TRUE(stored.ok());
    stored_ = std::move(*stored);
    ASSERT_TRUE(McIndex::Build(stream_, scratch_.Path("mc"), options).ok());
    StoredStream* raw = stored_.get();
    auto index = McIndex::Open(
        scratch_.Path("mc"),
        [raw](uint64_t t, Cpt* out) { return raw->ReadTransition(t, out); });
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    index_ = std::move(*index);
  }

  test::ScratchDir scratch_;
  MarkovianStream stream_;
  std::unique_ptr<StoredStream> stored_;
  std::unique_ptr<McIndex> index_;
};

TEST_F(McIndexTest, ComputeCptMatchesDirectProductAlpha2) {
  Setup(64, 5, 21, {.alpha = 2});
  Cpt computed;
  for (auto [from, to] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 1}, {0, 63}, {0, 5}, {3, 17}, {7, 8}, {16, 48}, {1, 62},
           {31, 33}, {20, 21}, {0, 32}}) {
    ASSERT_TRUE(index_->ComputeCpt(from, to, &computed).ok());
    ExpectCptsNear(computed, DirectSpan(stream_, from, to));
  }
}

TEST_F(McIndexTest, ComputeCptMatchesDirectProductAlpha4) {
  Setup(100, 4, 22, {.alpha = 4});
  Cpt computed;
  for (auto [from, to] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 99}, {2, 50}, {16, 80}, {63, 65}, {0, 4}}) {
    ASSERT_TRUE(index_->ComputeCpt(from, to, &computed).ok());
    ExpectCptsNear(computed, DirectSpan(stream_, from, to));
  }
}

TEST_F(McIndexTest, ExhaustiveSmallStream) {
  Setup(20, 4, 23, {.alpha = 2});
  Cpt computed;
  for (uint64_t from = 0; from < 19; ++from) {
    for (uint64_t to = from + 1; to < 20; ++to) {
      ASSERT_TRUE(index_->ComputeCpt(from, to, &computed).ok());
      ExpectCptsNear(computed, DirectSpan(stream_, from, to));
    }
  }
}

TEST_F(McIndexTest, LookupCostIsLogarithmic) {
  Setup(1024, 4, 24, {.alpha = 2});
  Cpt computed;
  index_->ResetStats();
  ASSERT_TRUE(index_->ComputeCpt(0, 1023, &computed).ok());
  // <= 2 entries per level (log2(1024) = 10 levels) plus residue.
  EXPECT_LE(index_->entry_fetches() + index_->raw_fetches(), 22u);

  index_->ResetStats();
  ASSERT_TRUE(index_->ComputeCpt(1, 1022, &computed).ok());
  EXPECT_LE(index_->entry_fetches() + index_->raw_fetches(), 22u);
}

TEST_F(McIndexTest, MinLevelForcesRawResidues) {
  Setup(256, 4, 25, {.alpha = 2});
  Cpt computed;

  index_->ResetStats();
  ASSERT_TRUE(index_->ComputeCpt(0, 255, &computed).ok());
  uint64_t raw_all_levels = index_->raw_fetches();

  ASSERT_TRUE(index_->SetMinLevel(4).ok());  // Drop levels 1..3 (spans 2-8).
  index_->ResetStats();
  ASSERT_TRUE(index_->ComputeCpt(0, 255, &computed).ok());
  uint64_t raw_high_levels = index_->raw_fetches();
  ExpectCptsNear(computed, DirectSpan(stream_, 0, 255));
  EXPECT_GE(raw_high_levels, raw_all_levels);

  // An interval smaller than the lowest stored level must be answered by a
  // raw scan only.
  index_->ResetStats();
  ASSERT_TRUE(index_->ComputeCpt(10, 14, &computed).ok());
  EXPECT_EQ(index_->entry_fetches(), 0u);
  EXPECT_EQ(index_->raw_fetches(), 4u);
  ExpectCptsNear(computed, DirectSpan(stream_, 10, 14));
}

TEST_F(McIndexTest, MaxSpanCapsLevels) {
  Setup(512, 4, 26, {.alpha = 2, .max_span = 16});
  Cpt computed;
  // Long spans still compute correctly (by chaining top-level entries).
  ASSERT_TRUE(index_->ComputeCpt(0, 511, &computed).ok());
  ExpectCptsNear(computed, DirectSpan(stream_, 0, 511));
  // Number of levels is log2(16) = 4.
  EXPECT_EQ(index_->num_levels(), 4u);
}

TEST_F(McIndexTest, StoredBytesShrinkWithAlpha) {
  MarkovianStream stream = test::MakeValidStream(256, 4, 27);
  test::ScratchDir scratch2("mc_alpha_cmp");
  ASSERT_TRUE(
      WriteStream(scratch2.Path("s"), stream, DiskLayout::kSeparated).ok());
  auto stored = StoredStream::Open(scratch2.Path("s"));
  ASSERT_TRUE(stored.ok());
  StoredStream* raw = stored->get();
  TransitionSource source = [raw](uint64_t t, Cpt* out) {
    return raw->ReadTransition(t, out);
  };

  uint64_t bytes_by_alpha[2];
  int i = 0;
  for (uint32_t alpha : {2u, 8u}) {
    std::string dir = scratch2.Path("mc" + std::to_string(alpha));
    ASSERT_TRUE(McIndex::Build(stream, dir, {.alpha = alpha}).ok());
    auto index = McIndex::Open(dir, source);
    ASSERT_TRUE(index.ok());
    bytes_by_alpha[i++] = (*index)->StoredBytes();
  }
  EXPECT_GT(bytes_by_alpha[0], bytes_by_alpha[1]);
}

TEST_F(McIndexTest, InvalidArguments) {
  Setup(32, 4, 28, {.alpha = 2});
  Cpt computed;
  EXPECT_EQ(index_->ComputeCpt(5, 5, &computed).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->ComputeCpt(5, 3, &computed).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->ComputeCpt(0, 32, &computed).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->SetMinLevel(0).code(), StatusCode::kInvalidArgument);
  MarkovianStream tiny = test::MakeValidStream(1, 3, 29);
  EXPECT_EQ(McIndex::Build(tiny, scratch_.Path("mc2"), {}).code(),
            StatusCode::kInvalidArgument);
  MarkovianStream ok_stream = test::MakeValidStream(8, 3, 30);
  EXPECT_EQ(
      McIndex::Build(ok_stream, scratch_.Path("mc3"), {.alpha = 1}).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(McIndexTest, TruncatedIndexStaysClose) {
  MarkovianStream stream = test::MakeValidStream(128, 6, 31);
  test::ScratchDir scratch2("mc_trunc");
  ASSERT_TRUE(
      WriteStream(scratch2.Path("s"), stream, DiskLayout::kSeparated).ok());
  auto stored = StoredStream::Open(scratch2.Path("s"));
  ASSERT_TRUE(stored.ok());
  StoredStream* raw = stored->get();
  ASSERT_TRUE(McIndex::Build(stream, scratch2.Path("mc"),
                             {.alpha = 2, .truncate_eps = 1e-4})
                  .ok());
  auto index = McIndex::Open(scratch2.Path("mc"), [raw](uint64_t t, Cpt* out) {
    return raw->ReadTransition(t, out);
  });
  ASSERT_TRUE(index.ok());
  Cpt computed;
  ASSERT_TRUE((*index)->ComputeCpt(0, 127, &computed).ok());
  Cpt direct = DirectSpan(stream, 0, 127);
  for (const Cpt::Row& row : direct.rows()) {
    for (const Cpt::RowEntry& e : row.entries) {
      EXPECT_NEAR(computed.Probability(row.src, e.dst), e.prob, 0.05);
    }
  }
}

}  // namespace
}  // namespace caldera
