// Failure-injection tests: every externally visible corruption or misuse
// must surface as a Status, never as UB or a crash.

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "caldera/archive.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/topk_method.h"
#include "common/logging.h"
#include "index/mc_index.h"
#include "storage/file.h"
#include "test_util.h"

namespace caldera {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : scratch_("failure_test") {}
  test::ScratchDir scratch_;
};

TEST_F(FailureTest, BTreeOpenOnGarbageFile) {
  {
    auto f = File::OpenOrCreate(scratch_.Path("garbage.bt"));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(std::string(8192, 'j')).ok());
  }
  EXPECT_FALSE(BTree::Open(scratch_.Path("garbage.bt")).ok());
}

TEST_F(FailureTest, BTreeOpenOnWrongMagic) {
  {
    auto pager = Pager::Create(scratch_.Path("p.bt"), 512);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  EXPECT_EQ(BTree::Open(scratch_.Path("p.bt")).status().code(),
            StatusCode::kCorruption);
}

TEST_F(FailureTest, BTreeCreateRejectsDegenerateShapes) {
  EXPECT_FALSE(BTree::Create(scratch_.Path("a.bt"), {0, 4}, 512).ok());
  EXPECT_FALSE(BTree::Create(scratch_.Path("b.bt"), {300, 4}, 512).ok());
  EXPECT_FALSE(BTree::Create(scratch_.Path("c.bt"), {200, 2000}, 512).ok());
}

TEST_F(FailureTest, StreamOpenWithMissingDataFile) {
  MarkovianStream stream = test::MakeBandedStream(40, 8, 1);
  std::string dir = scratch_.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(RemoveFileIfExists(dir + "/cpts.rec").ok());
  EXPECT_FALSE(StoredStream::Open(dir).ok());
}

TEST_F(FailureTest, StreamOpenWithTruncatedDataFile) {
  MarkovianStream stream = test::MakeBandedStream(40, 8, 2);
  std::string dir = scratch_.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream, DiskLayout::kSeparated).ok());
  {
    auto f = File::OpenOrCreate(dir + "/marginals.rec");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Truncate((*f)->size() / 2).ok());
  }
  EXPECT_FALSE(StoredStream::Open(dir).ok());
}

TEST_F(FailureTest, CorruptRecordPayloadSurfacesOnRead) {
  MarkovianStream stream = test::MakeBandedStream(40, 8, 3);
  std::string dir = scratch_.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream, DiskLayout::kSeparated).ok());
  {
    // Overwrite the middle of the marginal data region with garbage that
    // parses as an absurd entry count.
    auto f = File::OpenOrCreate(dir + "/marginals.rec");
    ASSERT_TRUE(f.ok());
    std::string garbage(256, '\xff');
    ASSERT_TRUE((*f)->WriteAt(2 * 4096 + 100, garbage).ok());
  }
  auto stored = StoredStream::Open(dir);
  ASSERT_TRUE(stored.ok());  // Metadata still intact.
  Distribution marginal;
  bool failed = false;
  for (uint64_t t = 0; t < (*stored)->length(); ++t) {
    if (!(*stored)->ReadMarginal(t, &marginal).ok()) failed = true;
  }
  EXPECT_TRUE(failed);
}

TEST_F(FailureTest, McIndexOpenWithoutMeta) {
  auto index = McIndex::Open(scratch_.Path("nonexistent"),
                             [](uint64_t, Cpt*) { return Status::Ok(); });
  EXPECT_FALSE(index.ok());
}

TEST_F(FailureTest, McIndexMissingLevelFile) {
  MarkovianStream stream = test::MakeBandedStream(64, 8, 4);
  std::string dir = scratch_.Path("mc");
  ASSERT_TRUE(McIndex::Build(stream, dir, {}).ok());
  ASSERT_TRUE(RemoveFileIfExists(dir + "/L2.rec").ok());
  auto index = McIndex::Open(dir, [](uint64_t, Cpt*) { return Status::Ok(); });
  EXPECT_FALSE(index.ok());
}

TEST_F(FailureTest, McMethodWithoutIndexFailsCleanly) {
  MarkovianStream stream = test::MakeBandedStream(60, 8, 5);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  Predicate t = Predicate::Equality(0, 3, "s3");
  RegularQuery query(
      "v", {QueryLink{std::nullopt, Predicate::Equality(0, 1, "s1")},
            QueryLink{Predicate::Not(t), t}});
  EXPECT_EQ(RunMcMethod(archived->get(), query).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FailureTest, MethodsRejectQueriesInvalidForSchema) {
  MarkovianStream stream = test::MakeBandedStream(60, 8, 6);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 0).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  RegularQuery bogus = RegularQuery::Sequence(
      "b", {Predicate::Equality(0, 99, "nope"),
            Predicate::Equality(0, 100, "nope2")});
  EXPECT_FALSE(RunScanMethod(archived->get(), bogus).ok());
  EXPECT_FALSE(RunTopKMethod(archived->get(), bogus, 1).ok());
}

TEST_F(FailureTest, ArchiveOpenStreamWithCorruptIndexFails) {
  MarkovianStream stream = test::MakeBandedStream(60, 8, 7);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  {
    auto f = File::OpenOrCreate(archive.StreamDir("s") + "/btc.attr0.bt");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->WriteAt(0, std::string(64, 'x')).ok());
  }
  EXPECT_FALSE(archive.OpenStream("s").ok());
}

TEST_F(FailureTest, ScanOnEmptyArchiveDirectory) {
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.Init().ok());
  EXPECT_EQ(archive.OpenStream("missing").status().code(),
            StatusCode::kNotFound);
  auto list = archive.ListStreams();
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->empty());
}

}  // namespace
}  // namespace caldera
