// Failure-injection tests: every externally visible corruption or misuse
// must surface as a Status, never as UB or a crash.

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "caldera/archive.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/system.h"
#include "caldera/topk_method.h"
#include "common/encoding.h"
#include "common/logging.h"
#include "index/mc_index.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection_file.h"
#include "storage/file.h"
#include "test_util.h"

namespace caldera {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : scratch_("failure_test") {}
  test::ScratchDir scratch_;
};

// Flips one bit of the byte at `offset` in `path`, in place.
void FlipBit(const std::string& path, uint64_t offset) {
  auto f = File::OpenOrCreate(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  char c;
  ASSERT_TRUE((*f)->ReadAt(offset, 1, &c).ok());
  c = char(c ^ 1);
  ASSERT_TRUE((*f)->WriteAt(offset, {&c, 1}).ok());
}

// Flips one bit in every non-header page of a pager-backed file, reading
// the page size out of its header. Guarantees any access to a data page
// trips the checksum.
void CorruptEveryDataPage(const std::string& path) {
  auto f = File::OpenOrCreate(path);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  char header[12];
  ASSERT_TRUE((*f)->ReadAt(0, 12, header).ok());
  uint32_t page_size = GetFixed32(header + 8);
  ASSERT_GE(page_size, 512u);
  for (uint64_t off = page_size + 17; off < (*f)->size(); off += page_size) {
    char c;
    ASSERT_TRUE((*f)->ReadAt(off, 1, &c).ok());
    c = char(c ^ 1);
    ASSERT_TRUE((*f)->WriteAt(off, {&c, 1}).ok());
  }
}

void ExpectSameSignal(const std::vector<TimestepProbability>& got,
                      const std::vector<TimestepProbability>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, want[i].time) << "entry " << i;
    EXPECT_NEAR(got[i].prob, want[i].prob, 1e-12) << "entry " << i;
  }
}

RegularQuery TwoStepQuery() {
  return RegularQuery::Sequence("f", {Predicate::Equality(0, 3, "s3"),
                                      Predicate::Equality(0, 4, "s4")});
}

TEST_F(FailureTest, BTreeOpenOnGarbageFile) {
  {
    auto f = File::OpenOrCreate(scratch_.Path("garbage.bt"));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(std::string(8192, 'j')).ok());
  }
  EXPECT_FALSE(BTree::Open(scratch_.Path("garbage.bt")).ok());
}

TEST_F(FailureTest, BTreeOpenOnWrongMagic) {
  {
    auto pager = Pager::Create(scratch_.Path("p.bt"), 512);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  EXPECT_EQ(BTree::Open(scratch_.Path("p.bt")).status().code(),
            StatusCode::kCorruption);
}

TEST_F(FailureTest, BTreeCreateRejectsDegenerateShapes) {
  EXPECT_FALSE(BTree::Create(scratch_.Path("a.bt"), {0, 4}, 512).ok());
  EXPECT_FALSE(BTree::Create(scratch_.Path("b.bt"), {300, 4}, 512).ok());
  EXPECT_FALSE(BTree::Create(scratch_.Path("c.bt"), {200, 2000}, 512).ok());
}

TEST_F(FailureTest, StreamOpenWithMissingDataFile) {
  MarkovianStream stream = test::MakeBandedStream(40, 8, 1);
  std::string dir = scratch_.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(RemoveFileIfExists(dir + "/cpts.rec").ok());
  EXPECT_FALSE(StoredStream::Open(dir).ok());
}

TEST_F(FailureTest, StreamOpenWithTruncatedDataFile) {
  MarkovianStream stream = test::MakeBandedStream(40, 8, 2);
  std::string dir = scratch_.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream, DiskLayout::kSeparated).ok());
  {
    auto f = File::OpenOrCreate(dir + "/marginals.rec");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Truncate((*f)->size() / 2).ok());
  }
  EXPECT_FALSE(StoredStream::Open(dir).ok());
}

TEST_F(FailureTest, CorruptRecordPayloadSurfacesOnRead) {
  MarkovianStream stream = test::MakeBandedStream(40, 8, 3);
  std::string dir = scratch_.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream, DiskLayout::kSeparated).ok());
  {
    // Overwrite the middle of the marginal data region with garbage that
    // parses as an absurd entry count.
    auto f = File::OpenOrCreate(dir + "/marginals.rec");
    ASSERT_TRUE(f.ok());
    std::string garbage(256, '\xff');
    ASSERT_TRUE((*f)->WriteAt(2 * 4096 + 100, garbage).ok());
  }
  auto stored = StoredStream::Open(dir);
  ASSERT_TRUE(stored.ok());  // Metadata still intact.
  Distribution marginal;
  bool failed = false;
  for (uint64_t t = 0; t < (*stored)->length(); ++t) {
    if (!(*stored)->ReadMarginal(t, &marginal).ok()) failed = true;
  }
  EXPECT_TRUE(failed);
}

TEST_F(FailureTest, McIndexOpenWithoutMeta) {
  auto index = McIndex::Open(scratch_.Path("nonexistent"),
                             [](uint64_t, Cpt*) { return Status::Ok(); });
  EXPECT_FALSE(index.ok());
}

TEST_F(FailureTest, McIndexMissingLevelFile) {
  MarkovianStream stream = test::MakeBandedStream(64, 8, 4);
  std::string dir = scratch_.Path("mc");
  ASSERT_TRUE(McIndex::Build(stream, dir, {}).ok());
  ASSERT_TRUE(RemoveFileIfExists(dir + "/L2.rec").ok());
  auto index = McIndex::Open(dir, [](uint64_t, Cpt*) { return Status::Ok(); });
  EXPECT_FALSE(index.ok());
}

TEST_F(FailureTest, McMethodWithoutIndexFailsCleanly) {
  MarkovianStream stream = test::MakeBandedStream(60, 8, 5);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  Predicate t = Predicate::Equality(0, 3, "s3");
  RegularQuery query(
      "v", {QueryLink{std::nullopt, Predicate::Equality(0, 1, "s1")},
            QueryLink{Predicate::Not(t), t}});
  EXPECT_EQ(RunMcMethod(archived->get(), query).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FailureTest, MethodsRejectQueriesInvalidForSchema) {
  MarkovianStream stream = test::MakeBandedStream(60, 8, 6);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 0).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  RegularQuery bogus = RegularQuery::Sequence(
      "b", {Predicate::Equality(0, 99, "nope"),
            Predicate::Equality(0, 100, "nope2")});
  EXPECT_FALSE(RunScanMethod(archived->get(), bogus).ok());
  EXPECT_FALSE(RunTopKMethod(archived->get(), bogus, 1).ok());
}

TEST_F(FailureTest, ArchiveOpenStreamWithCorruptIndexFails) {
  MarkovianStream stream = test::MakeBandedStream(60, 8, 7);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  {
    auto f = File::OpenOrCreate(archive.StreamDir("s") + "/btc.attr0.bt");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->WriteAt(0, std::string(64, 'x')).ok());
  }
  EXPECT_FALSE(archive.OpenStream("s").ok());
}

TEST_F(FailureTest, ScanOnEmptyArchiveDirectory) {
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.Init().ok());
  EXPECT_EQ(archive.OpenStream("missing").status().code(),
            StatusCode::kNotFound);
  auto list = archive.ListStreams();
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->empty());
}

TEST_F(FailureTest, FaultInjectionFlipsReadPathBitsOnly) {
  const std::string path = scratch_.Path("flip.dat");
  {
    FaultInjectionOptions options;
    options.flip_bits = {0, 8 * 3 + 1};  // Byte 0 bit 0, byte 3 bit 1.
    ScopedFaultInjection fault("flip.dat", options);
    auto f = File::OpenOrCreate(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("abcdefgh").ok());
    char buf[8];
    ASSERT_TRUE((*f)->ReadAt(0, 8, buf).ok());
    EXPECT_EQ(buf[0], char('a' ^ 1));
    EXPECT_EQ(buf[3], char('d' ^ 2));
    EXPECT_EQ(buf[1], 'b');
    EXPECT_EQ(buf[7], 'h');
    EXPECT_EQ(fault.counters().flipped_bits, 2u);
    EXPECT_EQ(fault.counters().reads, 1u);
  }
  // The flips model silent media corruption on the read path: the bytes on
  // disk are untouched.
  auto f = File::OpenReadOnly(path);
  ASSERT_TRUE(f.ok());
  char buf[8];
  ASSERT_TRUE((*f)->ReadAt(0, 8, buf).ok());
  EXPECT_EQ(std::string(buf, 8), "abcdefgh");
}

TEST_F(FailureTest, DirtyWritebackFailureDuringEvictionIsStatusNotCrash) {
  {
    auto pager = Pager::Create(scratch_.Path("evict.pg"), 512);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE((*pager)->AllocatePage().ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  FaultInjectionOptions options;
  options.fail_writes_from = 0;
  ScopedFaultInjection fault("evict.pg", options);
  auto pager = Pager::Open(scratch_.Path("evict.pg"));
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  BufferPool pool(pager->get(), 2);
  {
    auto h1 = pool.Fetch(1);
    ASSERT_TRUE(h1.ok());
    h1->MarkDirty();
  }
  {
    auto h2 = pool.Fetch(2);
    ASSERT_TRUE(h2.ok());
    h2->MarkDirty();
  }
  // Fetching a third page must evict a dirty frame; the failed writeback
  // has to surface as the fetch's Status.
  auto h3 = pool.Fetch(3);
  ASSERT_FALSE(h3.ok());
  EXPECT_EQ(h3.status().code(), StatusCode::kIoError);
  EXPECT_GE(fault.counters().injected_write_errors, 1u);
  EXPECT_FALSE(pool.FlushAll().ok());
  // The pool destructor retries the flush, logs, and must not crash.
}

TEST_F(FailureTest, CorruptBtcIndexFallsBackToScan) {
  MarkovianStream stream = test::MakeBandedStream(120, 10, 11);
  Caldera system(scratch_.Path("a_btc"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("s", stream, DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  RegularQuery query = TwoStepQuery();
  ExecOptions scan_only;
  scan_only.method = AccessMethodKind::kScan;
  auto reference = system.Execute("s", query, scan_only);
  ASSERT_TRUE(reference.ok());

  // Drop cached handles first: a live handle would re-stamp the header
  // page on close and erase the injected corruption.
  system.InvalidateStreams();
  FlipBit(system.archive()->StreamDir("s") + "/btc.attr0.bt", 100);

  // Strict execution refuses the damaged archive...
  EXPECT_EQ(system.Execute("s", query, {}).status().code(),
            StatusCode::kCorruption);
  // ...while opting into fallback degrades to the scan and matches it.
  ExecOptions rescue;
  rescue.fallback_to_scan = true;
  auto rescued = system.Execute("s", query, rescue);
  ASSERT_TRUE(rescued.ok()) << rescued.status().ToString();
  EXPECT_EQ(rescued->method, AccessMethodKind::kScan);
  EXPECT_GE(rescued->stats.scan_fallbacks, 1u);
  EXPECT_GE(rescued->stats.corruption_events, 1u);
  ExpectSameSignal(rescued->signal, reference->signal);
}

TEST_F(FailureTest, CorruptBtpIndexFallsBackToScan) {
  MarkovianStream stream = test::MakeBandedStream(120, 10, 12);
  Caldera system(scratch_.Path("a_btp"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("s", stream, DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildBtp("s", 0).ok());
  RegularQuery query = TwoStepQuery();
  ExecOptions scan_only;
  scan_only.method = AccessMethodKind::kScan;
  auto reference = system.Execute("s", query, scan_only);
  ASSERT_TRUE(reference.ok());

  system.InvalidateStreams();
  FlipBit(system.archive()->StreamDir("s") + "/btp.attr0.bt", 100);

  EXPECT_FALSE(system.Execute("s", query, {}).ok());
  ExecOptions rescue;
  rescue.fallback_to_scan = true;
  auto rescued = system.Execute("s", query, rescue);
  ASSERT_TRUE(rescued.ok()) << rescued.status().ToString();
  EXPECT_EQ(rescued->method, AccessMethodKind::kScan);
  EXPECT_GE(rescued->stats.scan_fallbacks, 1u);
  EXPECT_GE(rescued->stats.corruption_events, 1u);
  ExpectSameSignal(rescued->signal, reference->signal);
}

TEST_F(FailureTest, CorruptMcIndexFallsBackToScan) {
  MarkovianStream stream = test::MakeBandedStream(120, 10, 13);
  Caldera system(scratch_.Path("a_mc"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("s", stream, DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildMc("s", {}).ok());
  RegularQuery query = TwoStepQuery();
  ExecOptions scan_only;
  scan_only.method = AccessMethodKind::kScan;
  auto reference = system.Execute("s", query, scan_only);
  ASSERT_TRUE(reference.ok());

  system.InvalidateStreams();
  FlipBit(system.archive()->StreamDir("s") + "/mc/mc.meta", 0);

  EXPECT_FALSE(system.Execute("s", query, {}).ok());
  ExecOptions rescue;
  rescue.fallback_to_scan = true;
  auto rescued = system.Execute("s", query, rescue);
  ASSERT_TRUE(rescued.ok()) << rescued.status().ToString();
  EXPECT_EQ(rescued->method, AccessMethodKind::kScan);
  EXPECT_GE(rescued->stats.scan_fallbacks, 1u);
  EXPECT_GE(rescued->stats.corruption_events, 1u);
  ExpectSameSignal(rescued->signal, reference->signal);
}

TEST_F(FailureTest, MidQueryIndexCorruptionRescuedByScan) {
  MarkovianStream stream = test::MakeBandedStream(200, 12, 14);
  Caldera system(scratch_.Path("a_mid"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("s", stream, DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  ASSERT_TRUE(system.archive()->BuildBtp("s", 0).ok());
  RegularQuery query = TwoStepQuery();
  ExecOptions scan_only;
  scan_only.method = AccessMethodKind::kScan;
  auto reference = system.Execute("s", query, scan_only);
  ASSERT_TRUE(reference.ok());

  // Every data page of the BT_C index is damaged: whether the corruption is
  // noticed at open time or mid-traversal, the rescue must produce the
  // scan's exact signal.
  system.InvalidateStreams();
  CorruptEveryDataPage(system.archive()->StreamDir("s") + "/btc.attr0.bt");

  ExecOptions strict;
  strict.method = AccessMethodKind::kBTree;
  EXPECT_FALSE(system.Execute("s", query, strict).ok());

  ExecOptions rescue = strict;
  rescue.fallback_to_scan = true;
  auto rescued = system.Execute("s", query, rescue);
  ASSERT_TRUE(rescued.ok()) << rescued.status().ToString();
  EXPECT_EQ(rescued->method, AccessMethodKind::kScan);
  EXPECT_EQ(rescued->stats.scan_fallbacks, 1u);
  ExpectSameSignal(rescued->signal, reference->signal);
}

TEST_F(FailureTest, CorruptStreamDataIsNotRescuable) {
  MarkovianStream stream = test::MakeBandedStream(120, 10, 15);
  Caldera system(scratch_.Path("a_data"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("s", stream, DiskLayout::kSeparated)
                  .ok());
  RegularQuery query = TwoStepQuery();
  ASSERT_TRUE(system.Execute("s", query, {}).ok());

  // The stream data itself is the scan's input: with it damaged there is
  // nothing to fall back to, and the error must surface (never a silently
  // wrong signal).
  system.InvalidateStreams();
  CorruptEveryDataPage(system.archive()->StreamDir("s") + "/cpts.rec");

  ExecOptions rescue;
  rescue.fallback_to_scan = true;
  auto result = system.Execute("s", query, rescue);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureTest, RebuildIndexesRecoversFromCorruption) {
  MarkovianStream stream = test::MakeBandedStream(150, 10, 16);
  Caldera system(scratch_.Path("a_rebuild"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("s", stream, DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  ASSERT_TRUE(system.archive()->BuildBtp("s", 0).ok());
  ASSERT_TRUE(system.archive()->BuildMc("s", {}).ok());
  RegularQuery query = TwoStepQuery();
  ExecOptions scan_only;
  scan_only.method = AccessMethodKind::kScan;
  auto reference = system.Execute("s", query, scan_only);
  ASSERT_TRUE(reference.ok());

  const std::string dir = system.archive()->StreamDir("s");
  system.InvalidateStreams();
  FlipBit(dir + "/btc.attr0.bt", 100);
  FlipBit(dir + "/btp.attr0.bt", 100);
  FlipBit(dir + "/mc/mc.meta", 0);
  EXPECT_FALSE(system.Execute("s", query, {}).ok());

  ASSERT_TRUE(system.RebuildIndexes("s").ok());

  // Strict execution works again, with zero degradation reported.
  auto healed = system.Execute("s", query, {});
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed->stats.scan_fallbacks, 0u);
  EXPECT_EQ(healed->stats.corruption_events, 0u);
  ExpectSameSignal(healed->signal, reference->signal);
}

TEST_F(FailureTest, RandomReadErrorsNeverYieldWrongSignal) {
  MarkovianStream stream = test::MakeBandedStream(100, 10, 17);
  Caldera system(scratch_.Path("a_chaos"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("s", stream, DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  RegularQuery query = TwoStepQuery();
  ExecOptions scan_only;
  scan_only.method = AccessMethodKind::kScan;
  auto reference = system.Execute("s", query, scan_only);
  ASSERT_TRUE(reference.ok());

  ExecOptions btree_only;
  btree_only.method = AccessMethodKind::kBTree;
  auto reference_btree = system.Execute("s", query, btree_only);
  ASSERT_TRUE(reference_btree.ok());

  // Random IoErrors on the index file: every outcome must be either a clean
  // Status or a result identical to the pristine run of whichever method
  // ended up executing — never garbage.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FaultInjectionOptions options;
    options.seed = seed;
    options.read_error_prob = 0.2;
    ScopedFaultInjection fault("btc.attr0.bt", options);
    system.InvalidateStreams();  // Force reopen through the fault hook.
    ExecOptions rescue;
    rescue.fallback_to_scan = true;
    auto result = system.Execute("s", query, rescue);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kIoError);
    } else if (result->method == AccessMethodKind::kScan) {
      ExpectSameSignal(result->signal, reference->signal);
    } else {
      ASSERT_EQ(result->method, AccessMethodKind::kBTree);
      ExpectSameSignal(result->signal, reference_btree->signal);
    }
  }
}

}  // namespace
}  // namespace caldera
