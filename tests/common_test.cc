#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/encoding.h"
#include "common/rng.h"
#include "common/status.h"

namespace caldera {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

// GCC's -Wmaybe-uninitialized misfires here: destroying the variant inside
// Result<int> makes it reason about the Status alternative's string even
// though that alternative was never constructed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IoError("disk on fire"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

Result<int> Doubler(Result<int> in) {
  CALDERA_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubler(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(EncodingTest, U32RoundTripAndOrder) {
  std::vector<uint32_t> values = {0, 1, 255, 256, 65535, 1u << 20,
                                  0xffffffffu};
  std::vector<std::string> encoded;
  for (uint32_t v : values) {
    std::string s;
    EncodeU32(v, &s);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeU32(s.data()), v);
    encoded.push_back(s);
  }
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
}

TEST(EncodingTest, U64RoundTripAndOrder) {
  std::vector<uint64_t> values = {0, 1, 1ull << 32, (1ull << 40) + 7,
                                  UINT64_MAX};
  std::vector<std::string> encoded;
  for (uint64_t v : values) {
    std::string s;
    EncodeU64(v, &s);
    EXPECT_EQ(DecodeU64(s.data()), v);
    encoded.push_back(s);
  }
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
}

TEST(EncodingTest, ProbDescendingOrdersHighFirst) {
  std::vector<double> probs = {1.0, 0.99, 0.5, 0.25, 0.001, 0.0};
  std::vector<std::string> encoded;
  for (double p : probs) {
    std::string s;
    EncodeProbDescending(p, &s);
    EXPECT_NEAR(DecodeProbDescending(s.data()), p, 1e-15);
    encoded.push_back(s);
  }
  // Input was descending in probability -> encodings ascend.
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
}

TEST(EncodingTest, DoubleAscendingOrderPreserving) {
  Rng rng(123);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble() * 1e6);
  std::sort(values.begin(), values.end());
  std::vector<std::string> encoded;
  for (double v : values) {
    std::string s;
    EncodeDoubleAscending(v, &s);
    EXPECT_EQ(DecodeDoubleAscending(s.data()), v);
    encoded.push_back(s);
  }
  EXPECT_TRUE(std::is_sorted(encoded.begin(), encoded.end()));
}

TEST(EncodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed("hello", &buf);
  PutLengthPrefixed("", &buf);
  PutLengthPrefixed("world!", &buf);
  size_t offset = 0;
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(buf, &offset, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(buf, &offset, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(buf, &offset, &s));
  EXPECT_EQ(s, "world!");
  EXPECT_FALSE(GetLengthPrefixed(buf, &offset, &s));
}

TEST(EncodingTest, LengthPrefixedRejectsTruncation) {
  std::string buf;
  PutLengthPrefixed("payload", &buf);
  buf.resize(buf.size() - 2);
  size_t offset = 0;
  std::string_view s;
  EXPECT_FALSE(GetLengthPrefixed(buf, &offset, &s));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(99), b(99), c(100);
  bool differed = false;
  for (int i = 0; i < 64; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, BernoulliRoughlyUnbiased) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Crc32cTest, StandardVectors) {
  // RFC 3720 / Rocksoft check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);

  // iSCSI test vectors (also used by leveldb/rocksdb).
  char buf[32];
  std::memset(buf, 0, sizeof(buf));
  EXPECT_EQ(Crc32c(buf, 32), 0x8A9136AAu);
  std::memset(buf, 0xFF, sizeof(buf));
  EXPECT_EQ(Crc32c(buf, 32), 0x62A8AB43u);
  for (int i = 0; i < 32; ++i) buf[i] = char(i);
  EXPECT_EQ(Crc32c(buf, 32), 0x46DD794Eu);
  for (int i = 0; i < 32; ++i) buf[i] = char(31 - i);
  EXPECT_EQ(Crc32c(buf, 32), 0x113FDB5Cu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DistinguishesSingleBitFlips) {
  std::string data(4096, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = char(i * 31 + 7);
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 97) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] = char(data[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(data.data(), data.size()), base)
          << "byte " << byte << " bit " << bit;
      data[byte] = char(data[byte] ^ (1 << bit));
    }
  }
}

TEST(Crc32cTest, SoftwarePathMatchesDispatchedPath) {
  // The dispatcher may pick the SSE4.2 path; check the portable slice-by-8
  // implementation against the same vectors so both stay correct.
  EXPECT_EQ(internal::Crc32cExtendSoftware(0, "123456789", 9), 0xE3069283u);
  std::string data(1 << 14, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = char(i * 131 + 17);
  // Misaligned starts and short tails exercise the alignment prologue.
  for (size_t off : {0u, 1u, 3u, 7u, 8u, 9u}) {
    EXPECT_EQ(internal::Crc32cExtendSoftware(0, data.data() + off,
                                             data.size() - off),
              Crc32c(data.data() + off, data.size() - off))
        << "offset " << off;
  }
  (void)Crc32cHardwareEnabled();
}

}  // namespace
}  // namespace caldera
