#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/encoding.h"
#include "common/rng.h"

namespace caldera {
namespace {

std::string Key8(uint64_t v) {
  std::string s;
  EncodeU64(v, &s);
  return s;
}

std::string Val4(uint32_t v) {
  std::string s;
  PutFixed32(v, &s);
  return s;
}

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("caldera_btree_test_" + std::string(::testing::UnitTest::
                                                    GetInstance()
                                                        ->current_test_info()
                                                        ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(BTreeTest, EmptyTree) {
  auto tree = BTree::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->num_entries(), 0u);
  auto get = (*tree)->Get(Key8(1));
  ASSERT_TRUE(get.ok());
  EXPECT_FALSE(get->has_value());
  auto cursor = (*tree)->SeekFirst();
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor->valid());
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
}

TEST_F(BTreeTest, InsertAndGet) {
  auto tree = BTree::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE((*tree)->Insert(Key8(i * 3), Val4(i)).ok());
  }
  EXPECT_EQ((*tree)->num_entries(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    auto got = (*tree)->Get(Key8(i * 3));
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(GetFixed32(got->value().data()), i);
    auto missing = (*tree)->Get(Key8(i * 3 + 1));
    ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(missing->has_value());
  }
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  auto tree = BTree::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->Insert(Key8(7), Val4(1)).ok());
  EXPECT_EQ((*tree)->Insert(Key8(7), Val4(2)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ((*tree)->num_entries(), 1u);
}

TEST_F(BTreeTest, KeySizeMismatchRejected) {
  auto tree = BTree::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->Insert("short", Val4(0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*tree)->Insert(Key8(0), "toolongvalue").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*tree)->Get("x").status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, RandomInsertMatchesReferenceMap) {
  auto tree = BTree::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(tree.ok());
  Rng rng(1234);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.NextBelow(100000);
    std::string key = Key8(k);
    std::string value = Val4(static_cast<uint32_t>(i));
    Status st = (*tree)->Insert(key, value);
    if (reference.count(key)) {
      EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
    } else {
      ASSERT_TRUE(st.ok()) << st.ToString();
      reference[key] = value;
    }
  }
  EXPECT_EQ((*tree)->num_entries(), reference.size());
  ASSERT_TRUE((*tree)->CheckInvariants().ok());

  // Full forward scan must equal the reference map.
  auto cursor = (*tree)->SeekFirst();
  ASSERT_TRUE(cursor.ok());
  auto it = reference.begin();
  while (cursor->valid()) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(cursor->key(), it->first);
    EXPECT_EQ(cursor->value(), it->second);
    ASSERT_TRUE(cursor->Next().ok());
    ++it;
  }
  EXPECT_EQ(it, reference.end());
}

TEST_F(BTreeTest, SeekFindsLowerBound) {
  auto tree = BTree::Create(Path("t"), {8, 0}, 512);
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 10; i <= 1000; i += 10) {
    ASSERT_TRUE((*tree)->Insert(Key8(i), {}).ok());
  }
  for (uint64_t probe : {0ull, 5ull, 10ull, 11ull, 555ull, 995ull, 1000ull}) {
    auto cursor = (*tree)->Seek(Key8(probe));
    ASSERT_TRUE(cursor.ok());
    uint64_t expected = ((probe + 9) / 10) * 10;
    if (expected < 10) expected = 10;
    ASSERT_TRUE(cursor->valid()) << probe;
    EXPECT_EQ(DecodeU64(cursor->key().data()), expected) << probe;
  }
  auto past = (*tree)->Seek(Key8(1001));
  ASSERT_TRUE(past.ok());
  EXPECT_FALSE(past->valid());
}

TEST_F(BTreeTest, DeleteRemovesKeys) {
  auto tree = BTree::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE((*tree)->Insert(Key8(i), Val4(0)).ok());
  }
  for (uint64_t i = 0; i < 500; i += 2) {
    ASSERT_TRUE((*tree)->Delete(Key8(i)).ok());
  }
  EXPECT_EQ((*tree)->Delete(Key8(0)).code(), StatusCode::kNotFound);
  EXPECT_EQ((*tree)->num_entries(), 250u);
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  for (uint64_t i = 0; i < 500; ++i) {
    auto got = (*tree)->Get(Key8(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->has_value(), i % 2 == 1);
  }
  // Cursors skip emptied regions.
  auto cursor = (*tree)->SeekFirst();
  ASSERT_TRUE(cursor.ok());
  uint64_t count = 0;
  while (cursor->valid()) {
    EXPECT_EQ(DecodeU64(cursor->key().data()) % 2, 1u);
    ++count;
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_EQ(count, 250u);
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  {
    auto tree = BTree::Create(Path("t"), {8, 4}, 512);
    ASSERT_TRUE(tree.ok());
    for (uint64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE((*tree)->Insert(Key8(i), Val4(i & 0xff)).ok());
    }
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  auto tree = BTree::Open(Path("t"));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->num_entries(), 2000u);
  EXPECT_EQ((*tree)->options().key_size, 8u);
  EXPECT_EQ((*tree)->options().value_size, 4u);
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  auto got = (*tree)->Get(Key8(1234));
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(GetFixed32(got->value().data()), 1234u & 0xff);
}

TEST_F(BTreeTest, BulkLoadMatchesReference) {
  auto builder = BTreeBuilder::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(builder.ok()) << builder.status().ToString();
  const uint64_t kEntries = 20000;
  for (uint64_t i = 0; i < kEntries; ++i) {
    ASSERT_TRUE((*builder)->Add(Key8(i * 7), Val4(i & 0xffff)).ok());
  }
  auto tree = (*builder)->Finish();
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->num_entries(), kEntries);
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  EXPECT_GT((*tree)->height(), 1u);
  for (uint64_t probe :
       {uint64_t{0}, uint64_t{7}, uint64_t{70000}, (kEntries - 1) * 7}) {
    auto got = (*tree)->Get(Key8(probe));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->has_value()) << probe;
  }
  // Scan order.
  auto cursor = (*tree)->SeekFirst();
  ASSERT_TRUE(cursor.ok());
  uint64_t expected = 0;
  while (cursor->valid()) {
    EXPECT_EQ(DecodeU64(cursor->key().data()), expected * 7);
    ++expected;
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_EQ(expected, kEntries);
}

TEST_F(BTreeTest, BulkLoadRejectsUnsortedKeys) {
  auto builder = BTreeBuilder::Create(Path("t"), {8, 0}, 512);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add(Key8(10), {}).ok());
  EXPECT_EQ((*builder)->Add(Key8(10), {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*builder)->Add(Key8(5), {}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BTreeTest, BulkLoadEmpty) {
  auto builder = BTreeBuilder::Create(Path("t"), {8, 0}, 512);
  ASSERT_TRUE(builder.ok());
  auto tree = (*builder)->Finish();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_entries(), 0u);
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
}

TEST_F(BTreeTest, BulkLoadSingleEntry) {
  auto builder = BTreeBuilder::Create(Path("t"), {8, 4}, 512);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE((*builder)->Add(Key8(42), Val4(42)).ok());
  auto tree = (*builder)->Finish();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_entries(), 1u);
  EXPECT_TRUE((*tree)->CheckInvariants().ok());
  auto got = (*tree)->Get(Key8(42));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->has_value());
}

TEST_F(BTreeTest, InsertIntoBulkLoadedTree) {
  auto builder = BTreeBuilder::Create(Path("t"), {8, 0}, 512);
  ASSERT_TRUE(builder.ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*builder)->Add(Key8(i * 2), {}).ok());
  }
  auto tree = (*builder)->Finish();
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*tree)->Insert(Key8(i * 2 + 1), {}).ok());
  }
  EXPECT_EQ((*tree)->num_entries(), 2000u);
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
}

// Parameterized sweep: tree behaviour must be identical across page sizes
// and entry shapes.
struct BTreeParam {
  uint32_t page_size;
  uint32_t key_size;
  uint32_t value_size;
  int entries;
};

class BTreeParamTest : public ::testing::TestWithParam<BTreeParam> {
 protected:
  void SetUp() override {
    // Pid-unique: ctest -j runs the parameterized cases as concurrent
    // processes, which would race on a fixed path.
    dir_ = std::filesystem::temp_directory_path() /
           ("caldera_btree_param_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_P(BTreeParamTest, RandomWorkloadKeepsInvariants) {
  const BTreeParam& p = GetParam();
  BTreeOptions options{p.key_size, p.value_size};
  auto tree = BTree::Create((dir_ / "t").string(), options, p.page_size);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  Rng rng(p.page_size * 31 + p.key_size);
  std::map<std::string, bool> present;
  for (int i = 0; i < p.entries; ++i) {
    std::string key;
    while (key.size() < p.key_size) {
      key.push_back(static_cast<char>('a' + rng.NextBelow(16)));
    }
    std::string value(p.value_size, static_cast<char>(rng.NextBelow(256)));
    Status st = (*tree)->Insert(key, value);
    if (present[key]) {
      EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
    } else {
      ASSERT_TRUE(st.ok());
      present[key] = true;
    }
    if (i % 7 == 0 && !present.empty()) {
      // Delete a random known key occasionally.
      auto it = present.begin();
      std::advance(it, rng.NextBelow(present.size()));
      if (it->second) {
        ASSERT_TRUE((*tree)->Delete(it->first).ok());
        it->second = false;
      }
    }
  }
  ASSERT_TRUE((*tree)->CheckInvariants().ok());
  size_t live = 0;
  for (const auto& [k, alive] : present) live += alive ? 1 : 0;
  EXPECT_EQ((*tree)->num_entries(), live);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeParamTest,
    ::testing::Values(BTreeParam{512, 8, 0, 2000},
                      BTreeParam{512, 12, 8, 2000},
                      BTreeParam{1024, 20, 0, 3000},
                      BTreeParam{4096, 12, 8, 5000},
                      BTreeParam{1024, 100, 64, 800}));

}  // namespace
}  // namespace caldera
