#include <gtest/gtest.h>

#include "markov/stream_io.h"
#include "storage/file.h"
#include "test_util.h"

namespace caldera {
namespace {

class StreamIoTest : public ::testing::TestWithParam<DiskLayout> {
 protected:
  StreamIoTest() : scratch_("stream_io_test") {}
  test::ScratchDir scratch_;
};

TEST_P(StreamIoTest, RoundTripPreservesStream) {
  MarkovianStream stream = test::MakeValidStream(120, 7, 42);
  std::string dir = scratch_.Path("s1");
  ASSERT_TRUE(WriteStream(dir, stream, GetParam()).ok());

  auto stored = StoredStream::Open(dir);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_EQ((*stored)->length(), stream.length());
  EXPECT_EQ((*stored)->layout(), GetParam());
  EXPECT_EQ((*stored)->schema(), stream.schema());

  Distribution marginal;
  Cpt transition;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    ASSERT_TRUE((*stored)->ReadMarginal(t, &marginal).ok());
    EXPECT_EQ(marginal, stream.marginal(t)) << "t=" << t;
    if (t > 0) {
      ASSERT_TRUE((*stored)->ReadTransition(t, &transition).ok());
      EXPECT_EQ(transition, stream.transition(t)) << "t=" << t;
    }
  }
}

TEST_P(StreamIoTest, ReadTimestepReturnsBoth) {
  MarkovianStream stream = test::MakeValidStream(20, 5, 43);
  std::string dir = scratch_.Path("s2");
  ASSERT_TRUE(WriteStream(dir, stream, GetParam()).ok());
  auto stored = StoredStream::Open(dir);
  ASSERT_TRUE(stored.ok());
  Distribution marginal;
  Cpt transition;
  ASSERT_TRUE((*stored)->ReadTimestep(0, &marginal, &transition).ok());
  EXPECT_EQ(marginal, stream.marginal(0));
  EXPECT_TRUE(transition.empty());
  ASSERT_TRUE((*stored)->ReadTimestep(7, &marginal, &transition).ok());
  EXPECT_EQ(marginal, stream.marginal(7));
  EXPECT_EQ(transition, stream.transition(7));
}

TEST_P(StreamIoTest, OutOfRangeReads) {
  MarkovianStream stream = test::MakeValidStream(10, 4, 44);
  std::string dir = scratch_.Path("s3");
  ASSERT_TRUE(WriteStream(dir, stream, GetParam()).ok());
  auto stored = StoredStream::Open(dir);
  ASSERT_TRUE(stored.ok());
  Distribution marginal;
  Cpt transition;
  EXPECT_EQ((*stored)->ReadMarginal(10, &marginal).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*stored)->ReadTransition(0, &transition).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*stored)->ReadTransition(10, &transition).code(),
            StatusCode::kOutOfRange);
}

TEST_P(StreamIoTest, LoadStreamReconstructsExactly) {
  MarkovianStream stream = test::MakeValidStream(60, 6, 45);
  std::string dir = scratch_.Path("s4");
  ASSERT_TRUE(WriteStream(dir, stream, GetParam()).ok());
  auto stored = StoredStream::Open(dir);
  ASSERT_TRUE(stored.ok());
  auto loaded = LoadStream(stored->get());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Validate().ok());
  ASSERT_EQ(loaded->length(), stream.length());
  for (uint64_t t = 0; t < stream.length(); ++t) {
    EXPECT_EQ(loaded->marginal(t), stream.marginal(t));
    if (t > 0) {
      EXPECT_EQ(loaded->transition(t), stream.transition(t));
    }
  }
}

TEST_P(StreamIoTest, IoStatsCountPageTraffic) {
  MarkovianStream stream = test::MakeValidStream(200, 8, 46);
  std::string dir = scratch_.Path("s5");
  ASSERT_TRUE(WriteStream(dir, stream, GetParam()).ok());
  auto stored = StoredStream::Open(dir);
  ASSERT_TRUE(stored.ok());
  (*stored)->ResetStats();
  EXPECT_EQ((*stored)->IoStats().fetches, 0u);
  Distribution marginal;
  ASSERT_TRUE((*stored)->ReadMarginal(100, &marginal).ok());
  EXPECT_GT((*stored)->IoStats().fetches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, StreamIoTest,
                         ::testing::Values(DiskLayout::kSeparated,
                                           DiskLayout::kCoClustered),
                         [](const auto& info) {
                           return std::string(DiskLayoutName(info.param)) ==
                                          "separated"
                                      ? "Separated"
                                      : "CoClustered";
                         });

TEST(StreamIoLayoutTest, SeparatedCpTOnlyScanTouchesFewerPages) {
  test::ScratchDir scratch("stream_io_layout");
  MarkovianStream stream = test::MakeValidStream(500, 10, 47);
  ASSERT_TRUE(
      WriteStream(scratch.Path("sep"), stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(
      WriteStream(scratch.Path("co"), stream, DiskLayout::kCoClustered).ok());
  auto sep = StoredStream::Open(scratch.Path("sep"));
  auto co = StoredStream::Open(scratch.Path("co"));
  ASSERT_TRUE(sep.ok());
  ASSERT_TRUE(co.ok());
  Cpt transition;
  (*sep)->ResetStats();
  (*co)->ResetStats();
  for (uint64_t t = 1; t < 500; ++t) {
    ASSERT_TRUE((*sep)->ReadTransition(t, &transition).ok());
    ASSERT_TRUE((*co)->ReadTransition(t, &transition).ok());
  }
  // A CPT-only scan on the separated layout skips all marginal bytes, so it
  // misses fewer pages than the interleaved layout.
  EXPECT_LT((*sep)->IoStats().misses, (*co)->IoStats().misses);
}

TEST(StreamIoFailureTest, OpenMissingDirectory) {
  auto stored = StoredStream::Open("/nonexistent/caldera/stream");
  EXPECT_FALSE(stored.ok());
}

TEST(StreamIoFailureTest, CorruptMetaRejected) {
  test::ScratchDir scratch("stream_io_corrupt");
  MarkovianStream stream = test::MakeValidStream(10, 4, 48);
  std::string dir = scratch.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream, DiskLayout::kSeparated).ok());
  {
    auto f = File::OpenOrCreate(dir + "/meta.bin");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->WriteAt(0, "XXXXXXXX").ok());
  }
  EXPECT_EQ(StoredStream::Open(dir).status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace caldera
