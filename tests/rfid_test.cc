#include <gtest/gtest.h>

#include <set>

#include "caldera/access_method.h"
#include "reg/reg_operator.h"
#include "rfid/layout.h"
#include "rfid/simulator.h"
#include "rfid/workload.h"

namespace caldera {
namespace {

TEST(LayoutTest, CorridorFactoryShape) {
  BuildingLayout layout =
      BuildingLayout::MakeCorridor({.segments = 6, .rooms_per_segment = 2});
  EXPECT_EQ(layout.num_locations(), 6u + 12u);
  EXPECT_EQ(layout.antennas().size(), 6u);
  auto h0 = layout.LocationByName("H0");
  auto h5 = layout.LocationByName("H5");
  ASSERT_TRUE(h0.ok());
  ASSERT_TRUE(h5.ok());
  auto path = layout.ShortestPath(*h0, *h5);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 6u);
  auto room = layout.LocationByName("Room3_1");
  ASSERT_TRUE(room.ok());
  EXPECT_EQ(layout.location(*room).type, LocationType::kOffice);
  // Rooms hang off exactly one corridor cell.
  EXPECT_EQ(layout.neighbors(*room).size(), 1u);
}

TEST(LayoutTest, PaperBuildingMatchesDeploymentScale) {
  BuildingLayout layout = BuildingLayout::MakePaperBuilding();
  EXPECT_EQ(layout.num_locations(), 352u);
  EXPECT_EQ(layout.antennas().size(), 38u);
  // Antennas only in corridors.
  for (const auto& antenna : layout.antennas()) {
    EXPECT_EQ(layout.location(antenna.location).type,
              LocationType::kCorridor);
  }
  // Both floors reachable.
  auto f1 = layout.LocationByName("F1_H0");
  auto f2 = layout.LocationByName("F2_H25");
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(layout.ShortestPath(*f1, *f2).ok());
  // It has the special room types.
  EXPECT_FALSE(layout.LocationsOfType(LocationType::kCoffeeRoom).empty());
  EXPECT_FALSE(layout.LocationsOfType(LocationType::kLounge).empty());
}

TEST(LayoutTest, SchemaAndDimensionAgree) {
  BuildingLayout layout = BuildingLayout::MakeCorridor({.segments = 4});
  StreamSchema schema = layout.MakeSchema();
  EXPECT_EQ(schema.state_count(), layout.num_locations());
  DimensionTable types = layout.MakeTypeDimension();
  auto corridors = types.Lookup("type", "Corridor");
  ASSERT_TRUE(corridors.ok());
  EXPECT_EQ(corridors->size(), 4u);
  for (uint32_t c : *corridors) {
    EXPECT_EQ(layout.location(c).type, LocationType::kCorridor);
  }
}

TEST(LayoutTest, HmmIsValidAndLocal) {
  BuildingLayout layout = BuildingLayout::MakeCorridor({.segments = 8});
  Hmm hmm = layout.MakeHmm({});
  EXPECT_TRUE(hmm.Validate().ok());
  // Transitions only to self or neighbors.
  for (uint32_t loc = 0; loc < layout.num_locations(); ++loc) {
    const Cpt::Row* row = hmm.transition().FindRow(loc);
    ASSERT_NE(row, nullptr);
    for (const Cpt::RowEntry& e : row->entries) {
      if (e.dst == loc) continue;
      const auto& neighbors = layout.neighbors(loc);
      EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), e.dst),
                neighbors.end());
    }
  }
  // Rooms (no antennas nearby... rooms adjacent to corridor with antenna
  // may produce false reads) always allow silence.
  for (uint32_t loc = 0; loc < layout.num_locations(); ++loc) {
    EXPECT_GT(hmm.EmissionProb(loc, 0), 0.0);
  }
}

TEST(SimulatorTest, RoutineVisitsStopsInOrder) {
  BuildingLayout layout = BuildingLayout::MakeCorridor({.segments = 8});
  PersonSimulator sim(&layout, 3);
  auto h0 = layout.LocationByName("H0");
  auto room = layout.LocationByName("Room5_0");
  auto h7 = layout.LocationByName("H7");
  ASSERT_TRUE(h0.ok());
  ASSERT_TRUE(room.ok());
  ASSERT_TRUE(h7.ok());
  auto truth = sim.SimulateRoutine(*h0, {{*room, 5}, {*h7, 2}});
  ASSERT_TRUE(truth.ok());
  // Consecutive cells are identical or adjacent.
  for (size_t i = 1; i < truth->size(); ++i) {
    if ((*truth)[i] == (*truth)[i - 1]) continue;
    const auto& neighbors = layout.neighbors((*truth)[i - 1]);
    EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), (*truth)[i]),
              neighbors.end());
  }
  // The room is dwelled in for at least its dwell time.
  size_t room_steps = 0;
  for (uint32_t loc : *truth) room_steps += (loc == *room) ? 1 : 0;
  EXPECT_GE(room_steps, 5u);
  EXPECT_EQ(truth->back(), *h7);
}

TEST(SimulatorTest, ObservationsComeFromEmissionModel) {
  BuildingLayout layout = BuildingLayout::MakeCorridor({.segments = 6});
  Hmm hmm = layout.MakeHmm({});
  PersonSimulator sim(&layout, 4);
  auto h0 = layout.LocationByName("H0");
  ASSERT_TRUE(h0.ok());
  std::vector<uint32_t> truth = sim.RandomWalk(*h0, 300);
  auto obs = sim.Observe(truth, hmm);
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs->size(), truth.size());
  for (size_t t = 0; t < obs->size(); ++t) {
    EXPECT_GT(hmm.EmissionProb(truth[t], (*obs)[t]), 0.0);
  }
}

TEST(WorkloadTest, SnippetStreamDensityControl) {
  for (double density : {0.1, 0.9}) {
    SnippetStreamSpec spec;
    spec.num_snippets = 30;
    spec.density = density;
    spec.match_rate = 1.0;
    spec.seed = 17;
    auto workload = MakeSnippetStream(spec);
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    EXPECT_TRUE(workload->stream.Validate(1e-6).ok());

    // Measured density: fraction of timesteps with target-room support.
    uint64_t relevant = 0;
    for (uint64_t t = 0; t < workload->stream.length(); ++t) {
      if (workload->stream.marginal(t).ProbabilityOf(workload->target_room) >
          0) {
        ++relevant;
      }
    }
    double measured =
        static_cast<double>(relevant) / workload->stream.length();
    if (density < 0.5) {
      EXPECT_LT(measured, 0.35) << "requested density " << density;
    } else {
      EXPECT_GT(measured, 0.2) << "requested density " << density;
    }
  }
}

TEST(WorkloadTest, SnippetMatchRateControlsSignal) {
  SnippetStreamSpec spec;
  spec.num_snippets = 40;
  spec.density = 1.0;
  spec.seed = 19;

  spec.match_rate = 1.0;
  auto matching = MakeSnippetStream(spec);
  ASSERT_TRUE(matching.ok());
  spec.match_rate = 0.0;
  auto non_matching = MakeSnippetStream(spec);
  ASSERT_TRUE(non_matching.ok());

  auto count_peaks = [](const SnippetWorkload& w) {
    std::vector<double> signal =
        RunRegOverStream(w.EnteredRoomFixed(), w.stream);
    int peaks = 0;
    for (double p : signal) peaks += (p > 0.05) ? 1 : 0;
    return peaks;
  };
  EXPECT_GT(count_peaks(*matching), 10);
  EXPECT_EQ(count_peaks(*non_matching), 0);
}

TEST(WorkloadTest, SnippetQueriesValidate) {
  SnippetStreamSpec spec;
  spec.num_snippets = 3;
  auto workload = MakeSnippetStream(spec);
  ASSERT_TRUE(workload.ok());
  EXPECT_TRUE(workload->EnteredRoomFixed()
                  .ValidateAgainst(workload->schema)
                  .ok());
  RegularQuery variable = workload->EnteredRoomVariable();
  EXPECT_TRUE(variable.ValidateAgainst(workload->schema).ok());
  EXPECT_FALSE(variable.fixed_length());
}

TEST(WorkloadTest, RoutineStreamIsBimodal) {
  RoutineSpec spec;
  spec.length = 900;
  spec.num_excursions = 3;
  spec.paper_building = false;
  auto workload = MakeRoutineStream(spec);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  EXPECT_TRUE(workload->stream.Validate(1e-6).ok());

  auto density_of = [&](uint32_t room) {
    uint64_t relevant = 0;
    for (uint64_t t = 0; t < workload->stream.length(); ++t) {
      if (workload->stream.marginal(t).ProbabilityOf(room) > 0) ++relevant;
    }
    return static_cast<double>(relevant) / workload->stream.length();
  };

  // Bimodality (Section 4.1.2): own-office density high, decoy density low.
  EXPECT_GT(density_of(workload->own_office), 0.5);
  ASSERT_FALSE(workload->decoy_rooms.empty());
  EXPECT_LT(density_of(workload->decoy_rooms[0]), 0.1);
}

TEST(WorkloadTest, RoutineEnteredRoomQueries) {
  RoutineSpec spec;
  spec.length = 600;
  spec.num_excursions = 2;
  spec.paper_building = false;
  auto workload = MakeRoutineStream(spec);
  ASSERT_TRUE(workload.ok());

  for (size_t links : {2u, 3u, 4u}) {
    auto query = workload->EnteredRoom(workload->own_office, links);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    EXPECT_EQ(query->num_links(), links);
    EXPECT_TRUE(query->fixed_length());
    EXPECT_TRUE(query->ValidateAgainst(workload->schema).ok());
    auto variable = workload->EnteredRoom(workload->own_office, links, true);
    ASSERT_TRUE(variable.ok());
    EXPECT_FALSE(variable->fixed_length());
  }
  // Corridor targets are rejected.
  uint32_t corridor =
      workload->layout.LocationsOfType(LocationType::kCorridor)[0];
  EXPECT_FALSE(workload->EnteredRoom(corridor, 2).ok());
  // The 22-room query mix is available on the paper building.
  EXPECT_GE(workload->QueryRooms(22).size(), 3u);
}

TEST(WorkloadTest, IndependenceBridgeIsStochastic) {
  Distribution from = Distribution::FromPairs({{0, 0.5}, {2, 0.5}});
  Distribution to = Distribution::FromPairs({{1, 0.25}, {3, 0.75}});
  Cpt bridge = IndependenceBridge(from, to);
  EXPECT_TRUE(bridge.ValidateStochastic().ok());
  EXPECT_DOUBLE_EQ(bridge.Probability(0, 3), 0.75);
  EXPECT_DOUBLE_EQ(bridge.Probability(2, 1), 0.25);
}

}  // namespace
}  // namespace caldera
