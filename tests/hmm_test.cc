#include <gtest/gtest.h>

#include <cmath>

#include "hmm/hmm.h"
#include "hmm/particle_smoother.h"
#include "hmm/smoother.h"
#include "reg/reg_operator.h"

namespace caldera {
namespace {

// A 3-state chain HMM: states A-B-C, observations 0=silence, 1=beepA,
// 2=beepC (antennas at the ends).
Hmm ChainHmm() {
  Hmm hmm(3, 3);
  hmm.SetInitial(Distribution::FromPairs({{0, 1.0}}));
  hmm.SetTransitionRow(0, {{0, 0.5}, {1, 0.5}});
  hmm.SetTransitionRow(1, {{0, 0.25}, {1, 0.5}, {2, 0.25}});
  hmm.SetTransitionRow(2, {{1, 0.5}, {2, 0.5}});
  hmm.SetEmissionRow(0, {{0, 0.3}, {1, 0.7}});
  hmm.SetEmissionRow(1, {{0, 1.0}});
  hmm.SetEmissionRow(2, {{0, 0.3}, {2, 0.7}});
  return hmm;
}

StreamSchema ChainSchema() {
  return SingleAttributeSchema("loc", {"A", "B", "C"});
}

TEST(HmmTest, ValidateAcceptsWellFormedModel) {
  EXPECT_TRUE(ChainHmm().Validate().ok());
}

TEST(HmmTest, ValidateRejectsBrokenModels) {
  Hmm missing_row(2, 2);
  missing_row.SetInitial(Distribution::FromPairs({{0, 1.0}}));
  missing_row.SetTransitionRow(0, {{0, 1.0}});
  missing_row.SetEmissionRow(0, {{0, 1.0}});
  missing_row.SetEmissionRow(1, {{0, 1.0}});
  EXPECT_FALSE(missing_row.Validate().ok());

  Hmm bad_probs = ChainHmm();
  bad_probs.SetTransitionRow(0, {{0, 0.5}, {1, 0.4}});
  EXPECT_FALSE(bad_probs.Validate().ok());

  Hmm bad_symbol = ChainHmm();
  bad_symbol.SetEmissionRow(0, {{9, 1.0}});
  EXPECT_FALSE(bad_symbol.Validate().ok());
}

TEST(HmmTest, SampleProducesConsistentTrajectories) {
  Hmm hmm = ChainHmm();
  Rng rng(5);
  std::vector<uint32_t> states, obs;
  ASSERT_TRUE(hmm.Sample(200, &rng, &states, &obs).ok());
  ASSERT_EQ(states.size(), 200u);
  ASSERT_EQ(obs.size(), 200u);
  EXPECT_EQ(states[0], 0u);  // Point initial.
  for (size_t t = 1; t < states.size(); ++t) {
    EXPECT_GT(hmm.transition().Probability(states[t - 1], states[t]), 0.0);
  }
  for (size_t t = 0; t < states.size(); ++t) {
    EXPECT_GT(hmm.EmissionProb(states[t], obs[t]), 0.0);
  }
}

TEST(SmootherTest, OutputIsValidMarkovianStream) {
  Hmm hmm = ChainHmm();
  Rng rng(6);
  std::vector<uint32_t> states, obs;
  ASSERT_TRUE(hmm.Sample(60, &rng, &states, &obs).ok());
  auto stream = SmoothToMarkovianStream(hmm, obs, ChainSchema(), {});
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->length(), 60u);
  EXPECT_TRUE(stream->Validate().ok());
}

TEST(SmootherTest, PerfectObservationsRecoverTruth) {
  // Fully observable variant: each state has its own symbol.
  Hmm hmm(3, 3);
  hmm.SetInitial(Distribution::FromPairs({{0, 1.0}}));
  hmm.SetTransitionRow(0, {{0, 0.5}, {1, 0.5}});
  hmm.SetTransitionRow(1, {{0, 0.25}, {1, 0.5}, {2, 0.25}});
  hmm.SetTransitionRow(2, {{1, 0.5}, {2, 0.5}});
  for (uint32_t s = 0; s < 3; ++s) hmm.SetEmissionRow(s, {{s, 1.0}});

  Rng rng(7);
  std::vector<uint32_t> states, obs;
  ASSERT_TRUE(hmm.Sample(40, &rng, &states, &obs).ok());
  auto stream = SmoothToMarkovianStream(hmm, obs, ChainSchema(),
                                        {.truncate_eps = 0.0});
  ASSERT_TRUE(stream.ok());
  for (uint64_t t = 0; t < stream->length(); ++t) {
    EXPECT_NEAR(stream->marginal(t).ProbabilityOf(states[t]), 1.0, 1e-9);
    EXPECT_EQ(stream->marginal(t).support_size(), 1u);
  }
}

TEST(SmootherTest, SilenceBetweenBeepsFillsGapsProbabilistically) {
  // Observation: beepA, silence x3, beepC. The smoothed stream must put
  // the person near A at the start, near C at the end, and spread mass over
  // the chain in between — with zero support for C at t=0.
  Hmm hmm = ChainHmm();
  std::vector<uint32_t> obs = {1, 0, 0, 0, 2};
  auto stream = SmoothToMarkovianStream(hmm, obs, ChainSchema(),
                                        {.truncate_eps = 0.0});
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_TRUE(stream->Validate().ok());
  EXPECT_GT(stream->marginal(0).ProbabilityOf(0), 0.99);
  EXPECT_GT(stream->marginal(4).ProbabilityOf(2), 0.9);
  // Mid-way: support on the middle state.
  EXPECT_GT(stream->marginal(2).ProbabilityOf(1), 0.1);
}

TEST(SmootherTest, TruncationSparsifiesSupports) {
  Hmm hmm = ChainHmm();
  // A long silent gap spreads mass over the whole chain; aggressive
  // truncation must then prune low-probability states.
  std::vector<uint32_t> obs = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2};
  auto exact = SmoothToMarkovianStream(hmm, obs, ChainSchema(),
                                       {.truncate_eps = 0.0});
  auto truncated = SmoothToMarkovianStream(hmm, obs, ChainSchema(),
                                           {.truncate_eps = 0.25});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(truncated.ok());
  EXPECT_TRUE(truncated->Validate().ok());
  uint64_t exact_support = 0, truncated_support = 0;
  for (uint64_t t = 0; t < exact->length(); ++t) {
    exact_support += exact->marginal(t).support_size();
    truncated_support += truncated->marginal(t).support_size();
  }
  EXPECT_LT(truncated_support, exact_support);
}

TEST(SmootherTest, RejectsBadInput) {
  Hmm hmm = ChainHmm();
  EXPECT_FALSE(SmoothToMarkovianStream(hmm, {}, ChainSchema(), {}).ok());
  EXPECT_FALSE(
      SmoothToMarkovianStream(hmm, {0, 9}, ChainSchema(), {}).ok());
  StreamSchema wrong = SingleAttributeSchema("loc", {"A", "B"});
  EXPECT_FALSE(SmoothToMarkovianStream(hmm, {0, 0}, wrong, {}).ok());
}

TEST(SmootherTest, ImpossibleObservationSequenceIsRejected) {
  // beepC at t=0 is impossible: the chain starts at A and C's symbol
  // cannot be emitted from A... (A emits silence/beepA only).
  Hmm hmm = ChainHmm();
  auto stream = SmoothToMarkovianStream(hmm, {2}, ChainSchema(), {});
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(SmootherTest, SmoothedEventProbabilityIsSensible) {
  // Event query "A then B" on a smoothed stream where the trajectory is
  // known to go A->B quickly: the signal must spike above 0.2 somewhere.
  Hmm hmm = ChainHmm();
  std::vector<uint32_t> obs = {1, 1, 0, 0, 0, 0, 2, 2};
  auto stream = SmoothToMarkovianStream(hmm, obs, ChainSchema(),
                                        {.truncate_eps = 1e-4});
  ASSERT_TRUE(stream.ok());
  RegularQuery query = RegularQuery::Sequence(
      "AB", {Predicate::Equality(0, 0, "A"), Predicate::Equality(0, 1, "B")});
  std::vector<double> signal = RunRegOverStream(query, *stream);
  double peak = 0;
  for (double p : signal) peak = std::max(peak, p);
  EXPECT_GT(peak, 0.2);
}

TEST(ParticleSmootherTest, OutputIsValidAndConsistent) {
  Hmm hmm = ChainHmm();
  Rng rng(9);
  std::vector<uint32_t> states, obs;
  ASSERT_TRUE(hmm.Sample(50, &rng, &states, &obs).ok());
  auto stream = ParticleSmoothToMarkovianStream(
      hmm, obs, ChainSchema(), {.num_particles = 512, .num_trajectories = 256});
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->length(), 50u);
  // Counts are exactly self-consistent by construction.
  EXPECT_TRUE(stream->Validate(1e-9).ok());
}

TEST(ParticleSmootherTest, AgreesWithExactSmootherOnMarginals) {
  Hmm hmm = ChainHmm();
  std::vector<uint32_t> obs = {1, 0, 0, 0, 2, 0, 0, 1};
  auto exact = SmoothToMarkovianStream(hmm, obs, ChainSchema(),
                                       {.truncate_eps = 0.0});
  auto particle = ParticleSmoothToMarkovianStream(
      hmm, obs, ChainSchema(),
      {.num_particles = 4096, .num_trajectories = 4096, .seed = 11});
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(particle.ok());
  for (uint64_t t = 0; t < exact->length(); ++t) {
    for (uint32_t s = 0; s < 3; ++s) {
      EXPECT_NEAR(particle->marginal(t).ProbabilityOf(s),
                  exact->marginal(t).ProbabilityOf(s), 0.08)
          << "t=" << t << " s=" << s;
    }
  }
}

TEST(ParticleSmootherTest, RejectsBadOptions) {
  Hmm hmm = ChainHmm();
  EXPECT_FALSE(ParticleSmoothToMarkovianStream(hmm, {0}, ChainSchema(),
                                               {.num_particles = 0})
                   .ok());
}

}  // namespace
}  // namespace caldera
