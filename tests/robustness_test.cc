// Robustness / fuzz-style tests: random bytes fed to every on-disk parser
// and to the query parser must produce Status errors (or benign successes),
// never crashes, hangs, or unbounded allocations.

#include <gtest/gtest.h>

#include <string>

#include "btree/btree.h"
#include "common/encoding.h"
#include "common/logging.h"
#include "common/rng.h"
#include "markov/cpt.h"
#include "markov/distribution.h"
#include "markov/schema.h"
#include "markov/stream_io.h"
#include "query/parser.h"
#include "storage/file.h"
#include "storage/pager.h"
#include "storage/record_file.h"
#include "test_util.h"

namespace caldera {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->NextBelow(max_len);
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng->NextBelow(256));
  return out;
}

TEST(RobustnessTest, DistributionParseOnRandomBytes) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes = RandomBytes(&rng, 64);
    size_t offset = 0;
    Result<Distribution> parsed = Distribution::Parse(bytes, &offset);
    if (parsed.ok()) {
      // A benign parse must have consumed a coherent prefix.
      EXPECT_LE(offset, bytes.size());
    }
  }
}

TEST(RobustnessTest, CptParseOnRandomBytes) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes = RandomBytes(&rng, 96);
    size_t offset = 0;
    Result<Cpt> parsed = Cpt::Parse(bytes, &offset);
    if (parsed.ok()) {
      EXPECT_LE(offset, bytes.size());
    }
  }
}

TEST(RobustnessTest, SchemaParseOnRandomBytes) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes = RandomBytes(&rng, 96);
    size_t offset = 0;
    Result<StreamSchema> parsed = StreamSchema::Parse(bytes, &offset);
    if (parsed.ok()) {
      EXPECT_LE(offset, bytes.size());
    }
  }
}

TEST(RobustnessTest, MutatedSerializationsStillSafe) {
  // Start from VALID serializations and flip bytes: closer to real
  // corruption than pure random bytes.
  Rng rng(4);
  Distribution d = Distribution::FromPairs({{1, 0.25}, {9, 0.5}, {20, 0.25}});
  Cpt cpt;
  cpt.SetRow(0, {{1, 0.5}, {2, 0.5}});
  cpt.SetRow(5, {{5, 1.0}});
  std::string dist_bytes, cpt_bytes;
  d.AppendTo(&dist_bytes);
  cpt.AppendTo(&cpt_bytes);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = dist_bytes;
    mutated[rng.NextBelow(mutated.size())] ^=
        static_cast<char>(1 + rng.NextBelow(255));
    size_t offset = 0;
    (void)Distribution::Parse(mutated, &offset);

    mutated = cpt_bytes;
    mutated[rng.NextBelow(mutated.size())] ^=
        static_cast<char>(1 + rng.NextBelow(255));
    offset = 0;
    (void)Cpt::Parse(mutated, &offset);
  }
}

TEST(RobustnessTest, QueryParserOnRandomStrings) {
  StreamSchema schema = SingleAttributeSchema("loc", {"A", "B", "C"});
  SchemaResolver resolver(&schema);
  Rng rng(5);
  const std::string alphabet = "QABC(),!* \txyz0123";
  for (int i = 0; i < 5000; ++i) {
    std::string text;
    size_t len = rng.NextBelow(24);
    for (size_t j = 0; j < len; ++j) {
      text.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    Result<RegularQuery> parsed = ParseQuery(text, resolver);
    if (parsed.ok()) {
      // Anything that parses must also validate structurally.
      EXPECT_GE(parsed->num_links(), 1u);
    }
  }
}

TEST(RobustnessTest, BTreeOpenOnMutatedTreeFile) {
  test::ScratchDir scratch("robust_btree");
  // Build a real tree, then corrupt random page bytes and reopen/scan.
  const std::string path = scratch.Path("t.bt");
  {
    auto tree = BTree::Create(path, {8, 4}, 512);
    ASSERT_TRUE(tree.ok());
    std::string value(4, 'v');
    for (uint64_t i = 0; i < 500; ++i) {
      std::string key;
      EncodeU64(i, &key);
      ASSERT_TRUE((*tree)->Insert(key, value).ok());
    }
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  Rng rng(6);
  for (int round = 0; round < 20; ++round) {
    // Copy + corrupt.
    std::string mutated = scratch.Path("mut.bt");
    {
      auto src = File::OpenReadOnly(path);
      ASSERT_TRUE(src.ok());
      std::string bytes((*src)->size(), '\0');
      ASSERT_TRUE((*src)->ReadAt(0, bytes.size(), bytes.data()).ok());
      for (int flips = 0; flips < 8; ++flips) {
        bytes[rng.NextBelow(bytes.size())] ^=
            static_cast<char>(1 + rng.NextBelow(255));
      }
      auto dst = File::OpenOrCreate(mutated);
      ASSERT_TRUE(dst.ok());
      ASSERT_TRUE((*dst)->Truncate(0).ok());
      ASSERT_TRUE((*dst)->Append(bytes).ok());
    }
    auto tree = BTree::Open(mutated);
    if (!tree.ok()) continue;  // Rejected at open: fine.
    // Operations may fail with Status but must not crash. (Checking
    // invariants exercises every node.)
    (void)(*tree)->CheckInvariants();
    auto cursor = (*tree)->SeekFirst();
    if (cursor.ok()) {
      int steps = 0;
      while (cursor->valid() && steps++ < 2000) {
        if (!cursor->Next().ok()) break;
      }
    }
  }
}

TEST(RobustnessTest, RecordFileOpenOnMutatedFile) {
  test::ScratchDir scratch("robust_recfile");
  const std::string path = scratch.Path("r.rec");
  {
    auto writer = RecordFileWriter::Create(path, 512);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*writer)->Append(std::string(40, 'd')).ok());
    }
    ASSERT_TRUE((*writer)->Finalize().ok());
  }
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    std::string mutated = scratch.Path("mut.rec");
    {
      auto src = File::OpenReadOnly(path);
      ASSERT_TRUE(src.ok());
      std::string bytes((*src)->size(), '\0');
      ASSERT_TRUE((*src)->ReadAt(0, bytes.size(), bytes.data()).ok());
      for (int flips = 0; flips < 8; ++flips) {
        bytes[rng.NextBelow(bytes.size())] ^=
            static_cast<char>(1 + rng.NextBelow(255));
      }
      auto dst = File::OpenOrCreate(mutated);
      ASSERT_TRUE(dst.ok());
      ASSERT_TRUE((*dst)->Truncate(0).ok());
      ASSERT_TRUE((*dst)->Append(bytes).ok());
    }
    auto reader = RecordFileReader::Open(mutated);
    if (!reader.ok()) continue;
    std::string out;
    for (uint64_t i = 0; i < (*reader)->num_records(); ++i) {
      (void)(*reader)->Get(i, &out);  // Status errors are fine.
    }
  }
}

TEST(RobustnessTest, StoredStreamOpenOnTruncations) {
  test::ScratchDir scratch("robust_stream");
  MarkovianStream stream = test::MakeBandedStream(50, 8, 8);
  std::string dir = scratch.Path("s");
  ASSERT_TRUE(WriteStream(dir, stream).ok());
  // Truncate the marginal file at many byte positions; opening or reading
  // must fail cleanly.
  auto original = File::OpenReadOnly(dir + "/marginals.rec");
  ASSERT_TRUE(original.ok());
  uint64_t full = (*original)->size();
  for (uint64_t cut : {uint64_t{0}, uint64_t{17}, full / 4, full / 2,
                       full - 100, full - 1}) {
    // Restore then truncate.
    std::string bytes(full, '\0');
    ASSERT_TRUE((*original)->ReadAt(0, full, bytes.data()).ok());
    {
      auto f = File::OpenOrCreate(dir + "/marginals.rec");
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE((*f)->Truncate(0).ok());
      ASSERT_TRUE((*f)->Append(bytes.substr(0, cut)).ok());
    }
    auto stored = StoredStream::Open(dir);
    if (stored.ok()) {
      Distribution marginal;
      for (uint64_t t = 0; t < (*stored)->length(); ++t) {
        (void)(*stored)->ReadMarginal(t, &marginal);
      }
    }
    // Restore for the next iteration.
    auto f = File::OpenOrCreate(dir + "/marginals.rec");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Truncate(0).ok());
    ASSERT_TRUE((*f)->Append(bytes).ok());
  }
}

}  // namespace
}  // namespace caldera
