#include <gtest/gtest.h>

#include "caldera/system.h"
#include "common/logging.h"
#include "query/parser.h"
#include "rfid/workload.h"
#include "test_util.h"

namespace caldera {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : scratch_("system_test") {}
  test::ScratchDir scratch_;
};

TEST_F(SystemTest, EndToEndArchiveIndexQuery) {
  MarkovianStream stream = test::MakeBandedStream(300, 20, 1);
  Caldera system(scratch_.Path("archive"));
  ASSERT_TRUE(system.archive()->Init().ok());
  ASSERT_TRUE(system.archive()
                  ->CreateStream("bob", stream, DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildBtc("bob", 0).ok());
  ASSERT_TRUE(system.archive()->BuildBtp("bob", 0).ok());
  ASSERT_TRUE(system.archive()->BuildMc("bob", {}).ok());

  RegularQuery fixed = RegularQuery::Sequence(
      "f",
      {Predicate::Equality(0, 5, "s5"), Predicate::Equality(0, 6, "s6")});

  // Auto planning: the executed method must match the announced plan.
  auto plan = system.Plan("bob", fixed, {});
  ASSERT_TRUE(plan.ok());
  auto auto_result = system.Execute("bob", fixed, {});
  ASSERT_TRUE(auto_result.ok()) << auto_result.status().ToString();
  EXPECT_EQ(auto_result->method, plan->method);

  // Explicit scan produces the same nonzero signal.
  ExecOptions scan_options;
  scan_options.method = AccessMethodKind::kScan;
  auto scan_result = system.Execute("bob", fixed, scan_options);
  ASSERT_TRUE(scan_result.ok());
  for (const TimestepProbability& e : scan_result->signal) {
    if (e.prob <= 0) continue;
    bool found = false;
    for (const TimestepProbability& o : auto_result->signal) {
      if (o.time == e.time) {
        EXPECT_NEAR(o.prob, e.prob, 1e-9);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "missing t=" << e.time;
  }
}

TEST_F(SystemTest, TopKThroughFacade) {
  MarkovianStream stream = test::MakeBandedStream(200, 16, 2);
  Caldera system(scratch_.Path("archive"));
  ASSERT_TRUE(
      system.archive()->CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  ASSERT_TRUE(system.archive()->BuildBtp("s", 0).ok());

  RegularQuery fixed = RegularQuery::Sequence(
      "f",
      {Predicate::Equality(0, 4, "s4"), Predicate::Equality(0, 5, "s5")});
  ExecOptions options;
  options.method = AccessMethodKind::kTopK;
  options.k = 3;
  auto result = system.Execute("s", fixed, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->signal.size(), 3u);
  // Sorted by decreasing probability.
  for (size_t i = 1; i < result->signal.size(); ++i) {
    EXPECT_GE(result->signal[i - 1].prob, result->signal[i].prob);
  }
  // k also trims full signals from other methods.
  options.method = AccessMethodKind::kScan;
  auto scan = system.Execute("s", fixed, options);
  ASSERT_TRUE(scan.ok());
  ASSERT_LE(scan->signal.size(), 3u);
  for (size_t i = 0; i < std::min(scan->signal.size(),
                                  result->signal.size());
       ++i) {
    EXPECT_NEAR(scan->signal[i].prob, result->signal[i].prob, 1e-9);
  }
}

TEST_F(SystemTest, PlanWithoutExecution) {
  MarkovianStream stream = test::MakeBandedStream(100, 12, 3);
  Caldera system(scratch_.Path("archive"));
  ASSERT_TRUE(
      system.archive()->CreateStream("s", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  auto plan = system.Plan("s", RegularQuery::Sequence(
                                   "f", {Predicate::Equality(0, 2, "s2"),
                                         Predicate::Equality(0, 3, "s3")}));
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->reason.empty());
}

TEST_F(SystemTest, UnknownStreamIsNotFound) {
  Caldera system(scratch_.Path("archive"));
  ASSERT_TRUE(system.archive()->Init().ok());
  RegularQuery query =
      RegularQuery::Sequence("f", {Predicate::Equality(0, 0, "x")});
  EXPECT_EQ(system.Execute("ghost", query, {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SystemTest, DuplicateStreamIsRejected) {
  MarkovianStream stream = test::MakeBandedStream(20, 8, 4);
  Caldera system(scratch_.Path("archive"));
  ASSERT_TRUE(
      system.archive()->CreateStream("s", stream, DiskLayout::kSeparated).ok());
  EXPECT_EQ(system.archive()
                ->CreateStream("s", stream, DiskLayout::kSeparated)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(SystemTest, ListStreams) {
  MarkovianStream stream = test::MakeBandedStream(20, 8, 5);
  Caldera system(scratch_.Path("archive"));
  ASSERT_TRUE(
      system.archive()->CreateStream("zeta", stream, DiskLayout::kSeparated).ok());
  ASSERT_TRUE(
      system.archive()->CreateStream("alpha", stream, DiskLayout::kSeparated).ok());
  auto names = system.archive()->ListStreams();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"alpha", "zeta"}));
}

TEST_F(SystemTest, FullRfidPipelineWithParserAndDimensions) {
  // The paper's flow (Figure 1): simulate, smooth, archive, index, parse a
  // written query via the dimension table, execute.
  RoutineSpec spec;
  spec.length = 500;
  spec.num_excursions = 2;
  spec.paper_building = false;
  auto workload = MakeRoutineStream(spec);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  Caldera system(scratch_.Path("archive"));
  ASSERT_TRUE(system.archive()
                  ->CreateStream("james", workload->stream,
                                 DiskLayout::kSeparated)
                  .ok());
  ASSERT_TRUE(system.archive()->BuildBtc("james", 0).ok());
  ASSERT_TRUE(system.archive()->BuildMc("james", {}).ok());
  ASSERT_TRUE(system.archive()
                  ->BuildJoinIndex("james", workload->types, "type")
                  .ok());

  SchemaResolver resolver(&workload->schema);
  resolver.AddDimension(&workload->types, "type");
  std::string own = workload->schema.label(0, workload->own_office);
  auto query = ParseQuery("Q(Corridor, " + own + ")", resolver);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  ExecOptions options;
  options.method = AccessMethodKind::kScan;
  auto result = system.Execute("james", *query, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double peak = 0;
  for (const TimestepProbability& e : result->signal) {
    peak = std::max(peak, e.prob);
  }
  // The person demonstrably entered their office from the corridor.
  EXPECT_GT(peak, 0.1);

  // Join index is discoverable after reopening.
  auto stale = system.GetStream("james");
  ASSERT_TRUE(stale.ok());
  uint64_t epoch_before = system.stream_epoch();
  EXPECT_EQ(system.InvalidateStreams(), epoch_before + 1);
  auto archived = system.GetStream("james");
  ASSERT_TRUE(archived.ok());
  EXPECT_NE((*archived)->join_index("type"), nullptr);
  // A fresh handle was opened, and the pre-invalidation handle is still
  // safe to use (shared ownership — no dangling).
  EXPECT_NE(archived->get(), stale->get());
  EXPECT_EQ((*stale)->length(), (*archived)->length());
}

}  // namespace
}  // namespace caldera
