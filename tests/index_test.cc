#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/encoding.h"
#include "index/btc_index.h"
#include "index/btp_index.h"
#include "index/join_index.h"
#include "test_util.h"

namespace caldera {
namespace {

TEST(BtcKeyTest, RoundTripAndOrder) {
  std::string a = EncodeBtcKey(1, 100);
  std::string b = EncodeBtcKey(1, 101);
  std::string c = EncodeBtcKey(2, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  uint32_t value;
  uint64_t time;
  DecodeBtcKey(b, &value, &time);
  EXPECT_EQ(value, 1u);
  EXPECT_EQ(time, 101u);
}

TEST(BtpKeyTest, OrdersByValueThenProbDescThenTime) {
  std::string a = EncodeBtpKey(1, 0.9, 50);
  std::string b = EncodeBtpKey(1, 0.5, 10);
  std::string c = EncodeBtpKey(1, 0.5, 11);
  std::string d = EncodeBtpKey(2, 1.0, 0);
  EXPECT_LT(a, b);  // Higher probability first.
  EXPECT_LT(b, c);  // Ties broken by time.
  EXPECT_LT(c, d);  // Value dominates.
  uint32_t value;
  double prob;
  uint64_t time;
  DecodeBtpKey(a, &value, &prob, &time);
  EXPECT_EQ(value, 1u);
  EXPECT_NEAR(prob, 0.9, 1e-15);
  EXPECT_EQ(time, 50u);
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : scratch_("index_test") {}

  test::ScratchDir scratch_;
};

TEST_F(IndexTest, BtcIndexContainsExactlyTheSupport) {
  MarkovianStream stream = test::MakeValidStream(80, 6, 7);
  auto tree = BuildBtcIndex(stream, 0, scratch_.Path("btc.bt"));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_TRUE((*tree)->CheckInvariants().ok());

  // Every (value, t) with nonzero marginal must be present with the right
  // probability; nothing else may be present.
  uint64_t expected_entries = 0;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    expected_entries += stream.marginal(t).support_size();
    for (const Distribution::Entry& e : stream.marginal(t).entries()) {
      auto got = (*tree)->Get(EncodeBtcKey(e.value, t));
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(got->has_value()) << "value=" << e.value << " t=" << t;
      EXPECT_DOUBLE_EQ(GetDouble(got->value().data()), e.prob);
    }
  }
  EXPECT_EQ((*tree)->num_entries(), expected_entries);
}

TEST_F(IndexTest, PredicateCursorVisitsRelevantTimesInOrder) {
  MarkovianStream stream = test::MakeValidStream(100, 6, 8);
  auto tree = BuildBtcIndex(stream, 0, scratch_.Path("btc.bt"));
  ASSERT_TRUE(tree.ok());

  std::vector<uint32_t> values = {1, 4};
  auto cursor = PredicateCursor::Create(tree->get(), values);
  ASSERT_TRUE(cursor.ok());

  std::vector<uint64_t> expected;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    double p = stream.marginal(t).ProbabilityOf(1) +
               stream.marginal(t).ProbabilityOf(4);
    if (p > 0) expected.push_back(t);
  }
  std::vector<uint64_t> visited;
  while (cursor->valid()) {
    visited.push_back(cursor->time());
    double p = stream.marginal(cursor->time()).ProbabilityOf(1) +
               stream.marginal(cursor->time()).ProbabilityOf(4);
    EXPECT_NEAR(cursor->prob(), p, 1e-12);
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_EQ(visited, expected);
}

TEST_F(IndexTest, PredicateCursorSeekTime) {
  MarkovianStream stream = test::MakeValidStream(100, 6, 9);
  auto tree = BuildBtcIndex(stream, 0, scratch_.Path("btc.bt"));
  ASSERT_TRUE(tree.ok());
  auto cursor = PredicateCursor::Create(tree->get(), {2});
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor->SeekTime(50).ok());
  if (cursor->valid()) {
    EXPECT_GE(cursor->time(), 50u);
    // Seeking backwards is a no-op.
    uint64_t t = cursor->time();
    ASSERT_TRUE(cursor->SeekTime(10).ok());
    EXPECT_EQ(cursor->time(), t);
  }
}

TEST_F(IndexTest, PredicateCursorOnMissingValueIsInvalid) {
  MarkovianStream stream = test::MakeValidStream(20, 4, 10);
  auto tree = BuildBtcIndex(stream, 0, scratch_.Path("btc.bt"));
  ASSERT_TRUE(tree.ok());
  // Value 3 may exist; use an impossible one via empty support: value 3
  // with all entries... use a value id beyond any support: the stream
  // domain is 4, so value 100 has no entries.
  auto cursor = PredicateCursor::Create(tree->get(), {100});
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor->valid());
}

TEST_F(IndexTest, BtpIndexOrdersByDecreasingProbability) {
  MarkovianStream stream = test::MakeValidStream(80, 6, 11);
  auto tree = BuildBtpIndex(stream, 0, scratch_.Path("btp.bt"));
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_TRUE((*tree)->CheckInvariants().ok());

  auto cursor = TopProbCursor::Create(tree->get(), {2});
  ASSERT_TRUE(cursor.ok());
  double prev = 1.1;
  std::set<uint64_t> seen;
  size_t count = 0;
  while (cursor->valid()) {
    EXPECT_LE(cursor->prob(), prev + 1e-15);
    prev = cursor->prob();
    EXPECT_NEAR(cursor->prob(),
                stream.marginal(cursor->time()).ProbabilityOf(2), 1e-12);
    EXPECT_TRUE(seen.insert(cursor->time()).second);
    ++count;
    ASSERT_TRUE(cursor->Next().ok());
  }
  size_t expected = 0;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    if (stream.marginal(t).ProbabilityOf(2) > 0) ++expected;
  }
  EXPECT_EQ(count, expected);
}

TEST_F(IndexTest, TopProbCursorMergesValues) {
  MarkovianStream stream = test::MakeValidStream(60, 6, 12);
  auto tree = BuildBtpIndex(stream, 0, scratch_.Path("btp.bt"));
  ASSERT_TRUE(tree.ok());
  auto cursor = TopProbCursor::Create(tree->get(), {1, 3, 5});
  ASSERT_TRUE(cursor.ok());
  double prev = 1.1;
  size_t count = 0;
  while (cursor->valid()) {
    EXPECT_LE(cursor->prob(), prev + 1e-15);
    EXPECT_GE(cursor->UpperBound(), cursor->prob());
    prev = cursor->prob();
    ++count;
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_GT(count, 0u);
}

TEST_F(IndexTest, BuildersRejectBadAttribute) {
  MarkovianStream stream = test::MakeValidStream(10, 4, 13);
  EXPECT_FALSE(BuildBtcIndex(stream, 5, scratch_.Path("x.bt")).ok());
  EXPECT_FALSE(BuildBtpIndex(stream, 5, scratch_.Path("y.bt")).ok());
}

TEST_F(IndexTest, CursorCreateRejectsWrongTreeShape) {
  MarkovianStream stream = test::MakeValidStream(10, 4, 14);
  auto btc = BuildBtcIndex(stream, 0, scratch_.Path("btc.bt"));
  auto btp = BuildBtpIndex(stream, 0, scratch_.Path("btp.bt"));
  ASSERT_TRUE(btc.ok());
  ASSERT_TRUE(btp.ok());
  EXPECT_FALSE(PredicateCursor::Create(btp->get(), {0}).ok());
  EXPECT_FALSE(TopProbCursor::Create(btc->get(), {0}).ok());
}

TEST_F(IndexTest, JoinIndexAggregatesDimensionValues) {
  // Domain of 6: types Corridor (0,1,2), Office (3,4), Coffee (5).
  MarkovianStream stream = test::MakeValidStream(60, 6, 15);
  DimensionTable table("LocationType", 0);
  table.AddColumn("type", {"Corridor", "Corridor", "Corridor", "Office",
                           "Office", "Coffee"});
  auto index =
      JoinIndex::Build(stream, table, "type", scratch_.Path("join.type"));
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  auto cursor = (*index)->TimeCursor("Office");
  ASSERT_TRUE(cursor.ok());
  std::vector<uint64_t> visited;
  while (cursor->valid()) {
    double expected = stream.marginal(cursor->time()).ProbabilityOf(3) +
                      stream.marginal(cursor->time()).ProbabilityOf(4);
    EXPECT_NEAR(cursor->prob(), expected, 1e-12);
    visited.push_back(cursor->time());
    ASSERT_TRUE(cursor->Next().ok());
  }
  std::vector<uint64_t> expected_times;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    if (stream.marginal(t).ProbabilityOf(3) +
            stream.marginal(t).ProbabilityOf(4) >
        0) {
      expected_times.push_back(t);
    }
  }
  EXPECT_EQ(visited, expected_times);

  // Probability-ordered access.
  auto prob_cursor = (*index)->ProbCursor("Coffee");
  ASSERT_TRUE(prob_cursor.ok());
  double prev = 1.1;
  while (prob_cursor->valid()) {
    EXPECT_LE(prob_cursor->prob(), prev + 1e-15);
    prev = prob_cursor->prob();
    ASSERT_TRUE(prob_cursor->Next().ok());
  }
}

TEST_F(IndexTest, JoinIndexPersistsAcrossReopen) {
  MarkovianStream stream = test::MakeValidStream(30, 6, 16);
  DimensionTable table("LocationType", 0);
  table.AddColumn("type",
                  {"A", "A", "B", "B", "C", "C"});
  {
    auto index =
        JoinIndex::Build(stream, table, "type", scratch_.Path("join.type"));
    ASSERT_TRUE(index.ok());
  }
  auto index = JoinIndex::Open(scratch_.Path("join.type"));
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->column(), "type");
  auto id = (*index)->IdOf("B");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE((*index)->IdOf("Z").ok());
  auto cursor = (*index)->TimeCursor("B");
  ASSERT_TRUE(cursor.ok());
  EXPECT_TRUE(cursor->valid());
}

}  // namespace
}  // namespace caldera
