// Randomized differential testing: generate random streams and random
// Regular queries, then check that every exact access method produces the
// same probability signal as the naive scan, that top-k equals the sorted
// scan prefix, and that the planner's auto choice matches too. One failure
// here pinpoints a divergence between two independent implementations of
// the same semantics.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "caldera/topk_method.h"
#include "common/logging.h"
#include "common/rng.h"
#include "test_util.h"

namespace caldera {
namespace {

// Draws a random Regular query over a flat domain: 1..4 links, each
// primary an equality/set/range predicate, optionally a Kleene link with a
// negated or positive loop.
RegularQuery RandomQuery(Rng* rng, uint32_t domain) {
  size_t num_links = 1 + rng->NextBelow(4);
  std::vector<QueryLink> links;
  auto random_predicate = [&](const std::string& tag) {
    uint32_t kind = static_cast<uint32_t>(rng->NextBelow(3));
    if (kind == 0) {
      uint32_t v = static_cast<uint32_t>(rng->NextBelow(domain));
      return Predicate::Equality(0, v, tag + "=" + std::to_string(v));
    }
    if (kind == 1) {
      std::vector<uint32_t> values;
      size_t count = 1 + rng->NextBelow(3);
      for (size_t i = 0; i < count; ++i) {
        values.push_back(static_cast<uint32_t>(rng->NextBelow(domain)));
      }
      return Predicate::In(0, values, tag + "-set");
    }
    uint32_t lo = static_cast<uint32_t>(rng->NextBelow(domain));
    uint32_t hi =
        std::min<uint32_t>(domain - 1,
                           lo + static_cast<uint32_t>(rng->NextBelow(3)));
    return Predicate::Range(0, lo, hi, tag + "-range");
  };

  for (size_t i = 0; i < num_links; ++i) {
    Predicate primary = random_predicate("p" + std::to_string(i));
    std::optional<Predicate> loop;
    if (rng->NextBool(0.4)) {
      if (rng->NextBool(0.7)) {
        loop = Predicate::Not(primary);  // The paper's canonical (!P*, P).
      } else {
        loop = random_predicate("l" + std::to_string(i));  // Positive loop.
      }
    }
    links.push_back(QueryLink{std::move(loop), std::move(primary)});
  }
  return RegularQuery("random", std::move(links));
}

void ExpectMatchesScan(const QuerySignal& indexed, const QuerySignal& scan,
                       const std::string& what) {
  std::map<uint64_t, double> by_time;
  for (const TimestepProbability& e : indexed) by_time[e.time] = e.prob;
  for (const TimestepProbability& e : scan) {
    auto it = by_time.find(e.time);
    if (it != by_time.end()) {
      EXPECT_NEAR(it->second, e.prob, 1e-9) << what << " t=" << e.time;
    } else {
      EXPECT_NEAR(e.prob, 0.0, 1e-9)
          << what << " skipped a nonzero timestep t=" << e.time;
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllExactMethodsAgreeOnRandomWorkloads) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  test::ScratchDir scratch("differential_" + std::to_string(seed));

  const uint32_t domain = 8 + static_cast<uint32_t>(rng.NextBelow(12));
  const uint64_t length = 120 + rng.NextBelow(200);
  MarkovianStream stream = rng.NextBool(0.5)
                               ? test::MakeBandedStream(length, domain, seed)
                               : test::MakeValidStream(length, domain, seed,
                                                       0.4);
  ASSERT_TRUE(stream.Validate(1e-6).ok());

  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream,
                                   rng.NextBool(0.5)
                                       ? DiskLayout::kSeparated
                                       : DiskLayout::kCoClustered)
                  .ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 0).ok());
  ASSERT_TRUE(archive.BuildMc("s", {.alpha = 2 + static_cast<uint32_t>(
                                                     rng.NextBelow(3))})
                  .ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());

  for (int q = 0; q < 6; ++q) {
    RegularQuery query = RandomQuery(&rng, domain);
    ASSERT_TRUE(query.ValidateAgainst(stream.schema()).ok());

    auto scan = RunScanMethod(archived->get(), query);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();

    // MC method handles every query shape.
    auto mc = RunMcMethod(archived->get(), query);
    ASSERT_TRUE(mc.ok()) << query.ToString() << ": "
                         << mc.status().ToString();
    ExpectMatchesScan(mc->signal, scan->signal,
                      "mc[" + query.ToString() + "]");

    if (query.fixed_length()) {
      auto btree = RunBTreeMethod(archived->get(), query);
      ASSERT_TRUE(btree.ok()) << btree.status().ToString();
      ExpectMatchesScan(btree->signal, scan->signal,
                        "btree[" + query.ToString() + "]");

      // Top-k: ranked probabilities equal the scan's sorted prefix.
      bool topk_supported = true;
      for (const QueryLink& link : query.links()) {
        if (link.primary.kind() == Predicate::Kind::kRange) {
          topk_supported = false;
        }
      }
      if (topk_supported) {
        auto topk = RunTopKMethod(archived->get(), query, 5);
        ASSERT_TRUE(topk.ok()) << topk.status().ToString();
        QuerySignal reference = TopKOfSignal(
            FilterSignal(scan->signal, 0.0), 5);
        ASSERT_EQ(topk->signal.size(), reference.size())
            << query.ToString();
        for (size_t i = 0; i < reference.size(); ++i) {
          EXPECT_NEAR(topk->signal[i].prob, reference[i].prob, 1e-9)
              << query.ToString() << " rank " << i;
        }
      }
    }

    // Semi-independent: not exact, but must report the same relevant
    // timesteps as the MC method with probabilities in range.
    auto semi = RunSemiIndependentMethod(archived->get(), query);
    ASSERT_TRUE(semi.ok());
    ASSERT_EQ(semi->signal.size(), mc->signal.size());
    for (size_t i = 0; i < semi->signal.size(); ++i) {
      EXPECT_EQ(semi->signal[i].time, mc->signal[i].time);
      EXPECT_GE(semi->signal[i].prob, -1e-12);
      EXPECT_LE(semi->signal[i].prob, 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace caldera
