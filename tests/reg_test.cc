#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "reg/reg_operator.h"
#include "test_util.h"

namespace caldera {
namespace {

StreamSchema SmallSchema() {
  return SingleAttributeSchema("loc", {"H", "O", "C", "X"});
}

// Independent brute-force reference: enumerates every trajectory with
// nonzero probability and sums the mass of those in which a match ends
// exactly at each timestep. Deliberately avoids QueryAutomaton: it
// simulates the linear NFA with an explicit state-set per prefix.
std::vector<double> BruteForceSignal(const RegularQuery& query,
                                     const MarkovianStream& stream) {
  const StreamSchema& schema = stream.schema();
  const size_t n = query.num_links();
  std::vector<double> signal(stream.length(), 0.0);

  // NFA step on a symbol: returns the next state set (always re-seeding 0).
  auto step = [&](const std::vector<bool>& states,
                  ValueId value) -> std::vector<bool> {
    std::vector<bool> next(n + 1, false);
    next[0] = true;
    for (size_t i = 0; i < n; ++i) {
      if (!states[i]) continue;
      const QueryLink& link = query.link(i);
      if (link.primary.Matches(schema, value)) next[i + 1] = true;
      if (i > 0 && link.is_kleene() && link.loop->Matches(schema, value)) {
        next[i] = true;
      }
    }
    return next;
  };

  std::function<void(uint64_t, ValueId, double, std::vector<bool>)> recurse =
      [&](uint64_t t, ValueId value, double prob, std::vector<bool> states) {
        if (prob == 0.0) return;
        states = step(states, value);
        if (states[n]) signal[t] += prob;
        if (t + 1 >= stream.length()) return;
        const Cpt& cpt = stream.transition(t + 1);
        const Cpt::Row* row = cpt.FindRow(value);
        if (row == nullptr) return;
        for (const Cpt::RowEntry& e : row->entries) {
          recurse(t + 1, e.dst, prob * e.prob, states);
        }
      };

  std::vector<bool> initial(n + 1, false);
  initial[0] = true;
  for (const Distribution::Entry& e : stream.marginal(0).entries()) {
    recurse(0, e.value, e.prob, initial);
  }
  return signal;
}

void ExpectSignalsNear(const std::vector<double>& a,
                       const std::vector<double>& b, double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "t=" << i;
  }
}

RegularQuery FixedHO() {
  return RegularQuery::Sequence(
      "HO", {Predicate::Equality(0, 0, "H"), Predicate::Equality(0, 1, "O")});
}

RegularQuery VariableHC() {
  Predicate c = Predicate::Equality(0, 2, "C");
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H")});
  links.push_back(QueryLink{Predicate::Not(c), c});
  return RegularQuery("HC", links);
}

TEST(RegOperatorTest, HandComputedTwoStepMatch) {
  // Stream: t0 = H w.p. 0.8, O w.p. 0.2; CPT into t1: H->O 0.25 / H->H
  // 0.75; O->O 1. Match prob of (H,O) at t1 = 0.8 * 0.25 = 0.2 — the
  // paper's Section 3.2 example.
  StreamSchema schema = SmallSchema();
  MarkovianStream stream(schema);
  stream.Append(Distribution::FromPairs({{0, 0.8}, {1, 0.2}}), Cpt());
  Cpt cpt;
  cpt.SetRow(0, {{0, 0.75}, {1, 0.25}});
  cpt.SetRow(1, {{1, 1.0}});
  stream.Append(cpt.Propagate(stream.marginal(0)), cpt);
  ASSERT_TRUE(stream.Validate().ok());

  std::vector<double> signal = RunRegOverStream(FixedHO(), stream);
  ASSERT_EQ(signal.size(), 2u);
  EXPECT_DOUBLE_EQ(signal[0], 0.0);
  EXPECT_NEAR(signal[1], 0.2, 1e-12);
}

TEST(RegOperatorTest, WallExampleCorrelationsMatter) {
  // Paper Section 2.1: O1/O2 each 0.5, walls forbid O1->O2. With
  // correlations the (O1 then O2) event has probability 0.
  StreamSchema schema = SingleAttributeSchema("loc", {"O1", "O2"});
  MarkovianStream stream(schema);
  stream.Append(Distribution::FromPairs({{0, 0.5}, {1, 0.5}}), Cpt());
  Cpt cpt;
  cpt.SetRow(0, {{0, 1.0}});
  cpt.SetRow(1, {{0, 0.5}, {1, 0.5}});
  stream.Append(cpt.Propagate(stream.marginal(0)), cpt);
  RegularQuery query = RegularQuery::Sequence(
      "O1O2",
      {Predicate::Equality(0, 0, "O1"), Predicate::Equality(0, 1, "O2")});
  std::vector<double> signal = RunRegOverStream(query, stream);
  EXPECT_DOUBLE_EQ(signal[1], 0.0);
}

TEST(RegOperatorTest, FixedQueryMatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    MarkovianStream stream = test::MakeValidStream(8, 4, seed, 0.6);
    std::vector<double> expected = BruteForceSignal(FixedHO(), stream);
    std::vector<double> actual = RunRegOverStream(FixedHO(), stream);
    ExpectSignalsNear(actual, expected);
  }
}

TEST(RegOperatorTest, VariableQueryMatchesBruteForce) {
  for (uint64_t seed : {10u, 11u, 12u, 13u, 14u}) {
    MarkovianStream stream = test::MakeValidStream(8, 4, seed, 0.6);
    std::vector<double> expected = BruteForceSignal(VariableHC(), stream);
    std::vector<double> actual = RunRegOverStream(VariableHC(), stream);
    ExpectSignalsNear(actual, expected);
  }
}

TEST(RegOperatorTest, ThreeLinkQueryMatchesBruteForce) {
  RegularQuery query = RegularQuery::Sequence(
      "HOC", {Predicate::Equality(0, 0, "H"), Predicate::Equality(0, 1, "O"),
              Predicate::Equality(0, 2, "C")});
  for (uint64_t seed : {20u, 21u, 22u}) {
    MarkovianStream stream = test::MakeValidStream(7, 4, seed, 0.7);
    ExpectSignalsNear(RunRegOverStream(query, stream),
                      BruteForceSignal(query, stream));
  }
}

TEST(RegOperatorTest, PositiveLoopMatchesBruteForce) {
  // Q(H, (O*, C)): enter the office region and stay until coffee.
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H")});
  links.push_back(QueryLink{Predicate::Equality(0, 1, "O"),
                            Predicate::Equality(0, 2, "C")});
  RegularQuery query("HOstarC", links);
  for (uint64_t seed : {30u, 31u, 32u}) {
    MarkovianStream stream = test::MakeValidStream(8, 4, seed, 0.7);
    ExpectSignalsNear(RunRegOverStream(query, stream),
                      BruteForceSignal(query, stream));
  }
}

TEST(RegOperatorTest, AmbiguousQueryStillExact) {
  // Loop and primary overlap: Q(H, (X-or-C*, C)) — an ambiguous NFA that
  // the determinized operator must still score exactly.
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H")});
  links.push_back(QueryLink{Predicate::In(0, {2, 3}, "XC"),
                            Predicate::Equality(0, 2, "C")});
  RegularQuery query("ambiguous", links);
  for (uint64_t seed : {40u, 41u, 42u}) {
    MarkovianStream stream = test::MakeValidStream(8, 4, seed, 0.7);
    ExpectSignalsNear(RunRegOverStream(query, stream),
                      BruteForceSignal(query, stream));
  }
}

TEST(RegOperatorTest, SingleLinkSignalEqualsMarginals) {
  MarkovianStream stream = test::MakeValidStream(20, 4, 50);
  RegularQuery query =
      RegularQuery::Sequence("O", {Predicate::Equality(0, 1, "O")});
  std::vector<double> signal = RunRegOverStream(query, stream);
  for (uint64_t t = 0; t < stream.length(); ++t) {
    EXPECT_NEAR(signal[t], stream.marginal(t).ProbabilityOf(1), 1e-9);
  }
}

TEST(RegOperatorTest, ProbabilitiesAreWithinBounds) {
  MarkovianStream stream = test::MakeValidStream(60, 5, 51);
  RegularQuery query = RegularQuery::Sequence(
      "q", {Predicate::Equality(0, 0, "s0"), Predicate::Equality(0, 1, "s1")});
  std::vector<double> signal = RunRegOverStream(query, stream);
  for (uint64_t t = 1; t < stream.length(); ++t) {
    EXPECT_GE(signal[t], -1e-12);
    EXPECT_LE(signal[t], 1.0 + 1e-9);
    // Upper bound property used by the top-k method: the match probability
    // never exceeds the final link's marginal.
    EXPECT_LE(signal[t], stream.marginal(t).ProbabilityOf(1) + 1e-9);
    // ... nor the first link's marginal one step earlier.
    EXPECT_LE(signal[t], stream.marginal(t - 1).ProbabilityOf(0) + 1e-9);
  }
}

TEST(RegOperatorTest, UpdateSpanningEqualsStepByStepOnNullSpans) {
  // Construct a stream with a hole: values {2,3} in the middle never match
  // the query's predicates, so the operator may skip them via a composed
  // CPT and must produce identical probabilities at the ends.
  StreamSchema schema = SmallSchema();
  RegularQuery query = VariableHC();

  for (uint64_t seed : {60u, 61u, 62u, 63u}) {
    Rng rng(seed);
    MarkovianStream stream(schema);
    // t0: H or X.
    stream.Append(Distribution::FromPairs({{0, 0.6}, {3, 0.4}}), Cpt());
    // t1..t4: only values in {1 (O, null for this query... O matches
    // nothing here), 3 (X)}: both are null-atom states for Q(H, !C*, C).
    Distribution current = stream.marginal(0);
    for (int t = 1; t <= 4; ++t) {
      Cpt cpt;
      for (const Distribution::Entry& e : current.entries()) {
        double split = 0.2 + 0.6 * rng.NextDouble();
        cpt.SetRow(e.value, {{1, split}, {3, 1.0 - split}});
      }
      current = cpt.Propagate(current);
      stream.Append(current, std::move(cpt));
    }
    // t5: C or X.
    {
      Cpt cpt;
      for (const Distribution::Entry& e : current.entries()) {
        double split = 0.3 + 0.4 * rng.NextDouble();
        cpt.SetRow(e.value, {{2, split}, {3, 1.0 - split}});
      }
      current = cpt.Propagate(current);
      stream.Append(current, std::move(cpt));
    }
    ASSERT_TRUE(stream.Validate().ok());

    // Exact step-by-step signal.
    std::vector<double> exact = RunRegOverStream(query, stream);

    // Spanning update: initialize at t0, jump straight to t5 through the
    // composed CPT of transitions 1..5.
    Cpt span = stream.transition(1);
    for (int t = 2; t <= 5; ++t) {
      span = ComposeCpts(span, stream.transition(t), schema.state_count());
    }
    RegOperator reg(query, schema);
    reg.Initialize(stream.marginal(0));
    double p = reg.UpdateSpanning(span, 5);
    EXPECT_NEAR(p, exact[5], 1e-12) << "seed=" << seed;
  }
}

TEST(RegOperatorTest, UpdateIndependentEqualsExactWhenAdjacent) {
  // On gap-free processing the semi-independent method never takes the
  // independent branch, so its operator calls equal the exact ones; here we
  // instead check that UpdateIndependent is exact when the stream really IS
  // independent across the gap.
  StreamSchema schema = SmallSchema();
  MarkovianStream stream(schema);
  Distribution first = Distribution::FromPairs({{0, 0.5}, {3, 0.5}});
  stream.Append(first, Cpt());
  // Independent step: every row equals the next marginal.
  Distribution second = Distribution::FromPairs({{1, 0.3}, {2, 0.7}});
  Cpt bridge;
  bridge.SetRow(0, {{1, 0.3}, {2, 0.7}});
  bridge.SetRow(3, {{1, 0.3}, {2, 0.7}});
  stream.Append(second, bridge);
  ASSERT_TRUE(stream.Validate().ok());

  RegularQuery query = VariableHC();
  std::vector<double> exact = RunRegOverStream(query, stream);

  RegOperator reg(query, schema);
  reg.Initialize(stream.marginal(0));
  double p = reg.UpdateIndependent(stream.marginal(1));
  EXPECT_NEAR(p, exact[1], 1e-12);
}

TEST(RegOperatorTest, ResetClearsState) {
  StreamSchema schema = SmallSchema();
  MarkovianStream stream = test::MakeValidStream(10, 4, 70);
  RegOperator reg(FixedHO(), stream.schema());
  reg.Initialize(stream.marginal(0));
  reg.Update(stream.transition(1));
  EXPECT_EQ(reg.num_updates(), 2u);
  reg.Reset();
  EXPECT_FALSE(reg.initialized());
  EXPECT_EQ(reg.num_updates(), 0u);
  reg.Initialize(stream.marginal(0));
  EXPECT_TRUE(reg.initialized());
}

}  // namespace
}  // namespace caldera
