// Tests for the parallel batch execution engine: the common/thread_pool
// primitive, the shared-ownership epoch-versioned stream-handle cache, and
// ExecuteBatch's determinism across thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "caldera/batch.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "test_util.h"

namespace caldera {
namespace {

RegularQuery Fixed(uint32_t a, uint32_t b) {
  return RegularQuery::Sequence(
      "f", {Predicate::Equality(0, a, "a"), Predicate::Equality(0, b, "b")});
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, MoreThreadsThanTasks) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// ---------------------------------------------------------------------------
// Stream-handle cache
// ---------------------------------------------------------------------------

class ParallelBatchTest : public ::testing::Test {
 protected:
  ParallelBatchTest()
      : scratch_("parallel_batch_test"), system_(scratch_.Path("archive")) {}

  void AddStream(const std::string& name, uint64_t seed, bool index) {
    MarkovianStream stream = test::MakeBandedStream(200, 12, seed);
    CALDERA_CHECK_OK(system_.archive()->CreateStream(name, stream));
    if (index) {
      CALDERA_CHECK_OK(system_.archive()->BuildBtc(name, 0));
      CALDERA_CHECK_OK(system_.archive()->BuildBtp(name, 0));
    }
  }

  test::ScratchDir scratch_;
  Caldera system_;
};

TEST_F(ParallelBatchTest, HandlesAreSharedAndCached) {
  AddStream("s", 1, true);
  auto a = system_.GetStream("s");
  auto b = system_.GetStream("s");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());  // Same cached object.
}

TEST_F(ParallelBatchTest, InvalidationBumpsEpochAndKeepsOldHandlesAlive) {
  AddStream("s", 2, true);
  auto old_handle = system_.GetStream("s");
  ASSERT_TRUE(old_handle.ok());
  uint64_t before = system_.stream_epoch();
  EXPECT_EQ(system_.InvalidateStreams(), before + 1);
  EXPECT_EQ(system_.stream_epoch(), before + 1);
  auto new_handle = system_.GetStream("s");
  ASSERT_TRUE(new_handle.ok());
  EXPECT_NE(new_handle->get(), old_handle->get());
  // The pre-invalidation handle is still fully usable.
  EXPECT_EQ((*old_handle)->length(), 200u);
  EXPECT_NE((*old_handle)->btc(0), nullptr);
}

TEST_F(ParallelBatchTest, ConcurrentGetStreamIsSafe) {
  for (int i = 0; i < 4; ++i) {
    AddStream("tag" + std::to_string(i), 10 + i, true);
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < 20; ++i) {
        auto handle =
            system_.GetStream("tag" + std::to_string((t + i) % 4));
        if (!handle.ok() || (*handle)->length() != 200) failures.fetch_add(1);
        if (i == 10 && t == 0) system_.InvalidateStreams();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// ExecuteBatch determinism across thread counts
// ---------------------------------------------------------------------------

TEST_F(ParallelBatchTest, ThreadCountDoesNotChangeResults) {
  for (int i = 0; i < 6; ++i) {
    AddStream("tag" + std::to_string(i), 100 + i, true);
  }
  RegularQuery query = Fixed(4, 5);

  BatchOptions sequential;
  sequential.num_threads = 1;
  auto baseline = ExecuteBatch(&system_, query, sequential);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->streams.size(), 6u);
  ExecStats baseline_stats = baseline->TotalStats();
  EXPECT_GT(baseline_stats.reg_updates, 0u);

  for (size_t num_threads : {2u, 8u}) {
    BatchOptions parallel;
    parallel.num_threads = num_threads;
    auto batch = ExecuteBatch(&system_, query, parallel);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->streams.size(), baseline->streams.size());
    for (size_t i = 0; i < batch->streams.size(); ++i) {
      // Same streams in the same order with byte-identical signals.
      EXPECT_EQ(batch->streams[i].stream, baseline->streams[i].stream);
      EXPECT_EQ(batch->streams[i].result.method,
                baseline->streams[i].result.method);
      EXPECT_EQ(batch->streams[i].result.signal,
                baseline->streams[i].result.signal);
    }
    // Identical aggregate work, rolled up thread-safely.
    EXPECT_EQ(batch->TotalStats().reg_updates, baseline_stats.reg_updates);
    EXPECT_EQ(batch->TotalRegUpdates(), baseline->TotalRegUpdates());
  }
}

TEST_F(ParallelBatchTest, FallbackToScanUnderContention) {
  // Half the fleet is missing the B+ tree index; with fallback enabled the
  // parallel run must degrade those streams to scans exactly like the
  // sequential run does.
  for (int i = 0; i < 8; ++i) {
    AddStream("tag" + std::to_string(i), 200 + i, /*index=*/i % 2 == 0);
  }
  RegularQuery query = Fixed(3, 4);
  BatchOptions options;
  options.exec.method = AccessMethodKind::kBTree;
  options.fallback_to_scan = true;

  options.num_threads = 1;
  auto baseline = ExecuteBatch(&system_, query, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  options.num_threads = 8;
  auto parallel = ExecuteBatch(&system_, query, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel->streams.size(), 8u);
  for (size_t i = 0; i < parallel->streams.size(); ++i) {
    const BatchStreamResult& s = parallel->streams[i];
    EXPECT_EQ(s.result.method, i % 2 == 0 ? AccessMethodKind::kBTree
                                          : AccessMethodKind::kScan)
        << s.stream;
    EXPECT_EQ(s.result.signal, baseline->streams[i].result.signal);
  }
  EXPECT_EQ(parallel->TotalRegUpdates(), baseline->TotalRegUpdates());
}

TEST_F(ParallelBatchTest, StrictErrorsAreDeterministicUnderContention) {
  // Without fallback, the batch must fail with the error of the earliest
  // failing stream in request order — regardless of which worker finished
  // first.
  AddStream("a_indexed", 300, true);
  AddStream("b_bare", 301, false);
  AddStream("c_bare", 302, false);
  BatchOptions options;
  options.exec.method = AccessMethodKind::kBTree;

  options.num_threads = 1;
  auto sequential = ExecuteBatch(&system_, Fixed(2, 3), options);
  ASSERT_FALSE(sequential.ok());
  EXPECT_EQ(sequential.status().code(), StatusCode::kFailedPrecondition);

  options.num_threads = 8;
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto parallel = ExecuteBatch(&system_, Fixed(2, 3), options);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status(), sequential.status());
  }
}

TEST_F(ParallelBatchTest, MissingStreamFailsBatchInParallel) {
  AddStream("only", 400, true);
  BatchOptions options;
  options.streams = {"only", "ghost"};
  options.num_threads = 4;
  auto batch = ExecuteBatch(&system_, Fixed(1, 2), options);
  EXPECT_EQ(batch.status().code(), StatusCode::kNotFound);
}

TEST_F(ParallelBatchTest, DuplicateStreamRequestsDoNotRace) {
  // The same stream requested multiple times shares one ArchivedStream
  // handle; the engine must serialize those executions on one worker.
  AddStream("dup", 500, true);
  AddStream("other", 501, true);
  BatchOptions options;
  options.streams = {"dup", "other", "dup", "dup"};
  options.num_threads = 8;
  auto batch = ExecuteBatch(&system_, Fixed(4, 5), options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->streams.size(), 4u);
  EXPECT_EQ(batch->streams[0].stream, "dup");
  EXPECT_EQ(batch->streams[1].stream, "other");
  EXPECT_EQ(batch->streams[2].stream, "dup");
  EXPECT_EQ(batch->streams[3].stream, "dup");
  EXPECT_EQ(batch->streams[0].result.signal, batch->streams[2].result.signal);
  EXPECT_EQ(batch->streams[0].result.signal, batch->streams[3].result.signal);
}

TEST_F(ParallelBatchTest, TotalStatsMatchesHandRolledSum) {
  for (int i = 0; i < 3; ++i) {
    AddStream("tag" + std::to_string(i), 600 + i, true);
  }
  BatchOptions options;
  options.num_threads = 2;
  auto batch = ExecuteBatch(&system_, Fixed(4, 5), options);
  ASSERT_TRUE(batch.ok());
  ExecStats expected;
  double seconds = 0;
  for (const BatchStreamResult& s : batch->streams) {
    expected += s.result.stats;
    seconds += s.result.stats.elapsed_seconds;
  }
  ExecStats total = batch->TotalStats();
  EXPECT_EQ(total.reg_updates, expected.reg_updates);
  EXPECT_EQ(total.relevant_timesteps, expected.relevant_timesteps);
  EXPECT_EQ(total.intervals, expected.intervals);
  EXPECT_EQ(total.stream_io.fetches, expected.stream_io.fetches);
  EXPECT_EQ(total.index_io.fetches, expected.index_io.fetches);
  EXPECT_DOUBLE_EQ(batch->TotalSeconds(), seconds);
}

}  // namespace
}  // namespace caldera
