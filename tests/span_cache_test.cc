#include "index/span_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "caldera/system.h"
#include "markov/cpt.h"
#include "query/regular_query.h"
#include "test_util.h"

namespace caldera {
namespace {

std::shared_ptr<const Cpt> MakeCpt(uint32_t rows) {
  Cpt cpt;
  for (uint32_t r = 0; r < rows; ++r) cpt.SetRow(r, {{r, 1.0}});
  return std::make_shared<const Cpt>(std::move(cpt));
}

SpanKey Key(uint64_t lo, uint64_t hi) {
  return SpanKey{/*stream_id=*/1, /*epoch=*/0, lo, hi, /*condition_fp=*/0};
}

TEST(FingerprintTest, StableAndDistinct) {
  EXPECT_EQ(FingerprintString("abc"), FingerprintString("abc"));
  EXPECT_NE(FingerprintString("abc"), FingerprintString("abd"));
  EXPECT_NE(FingerprintString(""), 0u);
  EXPECT_NE(FingerprintCombine(7, 1), FingerprintCombine(7, 2));
  EXPECT_NE(FingerprintCombine(7, 1), 0u);
}

TEST(SpanCptCacheTest, HitAndMissAccounting) {
  SpanCptCache cache(1 << 20, /*num_shards=*/2);
  EXPECT_EQ(cache.Get(Key(0, 4)), nullptr);
  auto cpt = MakeCpt(4);
  cache.Put(Key(0, 4), cpt);
  EXPECT_EQ(cache.Get(Key(0, 4)).get(), cpt.get());
  EXPECT_EQ(cache.Get(Key(0, 8)), nullptr);

  SpanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, cpt->ByteSize());
}

TEST(SpanCptCacheTest, EveryKeyComponentDisambiguates) {
  SpanCptCache cache(1 << 20);
  cache.Put(Key(0, 4), MakeCpt(2));
  SpanKey base = Key(0, 4);
  for (SpanKey variant : {SpanKey{2, 0, 0, 4, 0}, SpanKey{1, 1, 0, 4, 0},
                          SpanKey{1, 0, 1, 4, 0}, SpanKey{1, 0, 0, 5, 0},
                          SpanKey{1, 0, 0, 4, 9}}) {
    EXPECT_FALSE(variant == base);
    EXPECT_EQ(cache.Get(variant), nullptr);
  }
  EXPECT_NE(cache.Get(base), nullptr);
}

TEST(SpanCptCacheTest, ByteBudgetEvictsLru) {
  // Single shard so the LRU order is global and deterministic.
  auto cpt = MakeCpt(8);
  const size_t entry_bytes = cpt->ByteSize() + 128;  // Payload + overhead.
  SpanCptCache cache(entry_bytes * 3, /*num_shards=*/1);
  cache.Put(Key(0, 1), cpt);
  cache.Put(Key(0, 2), MakeCpt(8));
  cache.Put(Key(0, 3), MakeCpt(8));
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch (0,1) so (0,2) is the LRU victim.
  EXPECT_NE(cache.Get(Key(0, 1)), nullptr);
  cache.Put(Key(0, 4), MakeCpt(8));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get(Key(0, 2)), nullptr) << "LRU entry must be evicted";
  EXPECT_NE(cache.Get(Key(0, 1)), nullptr);
  EXPECT_NE(cache.Get(Key(0, 4)), nullptr);
  EXPECT_LE(cache.stats().bytes, cache.byte_budget());
}

TEST(SpanCptCacheTest, OversizedEntriesAreSkipped) {
  SpanCptCache cache(256, /*num_shards=*/1);
  cache.Put(Key(0, 1), MakeCpt(64));  // Far beyond the shard budget.
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Get(Key(0, 1)), nullptr);
}

TEST(SpanCptCacheTest, ReplacementUpdatesBytes) {
  SpanCptCache cache(1 << 20, /*num_shards=*/1);
  cache.Put(Key(0, 1), MakeCpt(4));
  uint64_t bytes_small = cache.stats().bytes;
  cache.Put(Key(0, 1), MakeCpt(16));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GT(cache.stats().bytes, bytes_small);
}

TEST(SpanCptCacheTest, ClearDropsEntriesKeepsTrafficCounters) {
  SpanCptCache cache(1 << 20);
  cache.Put(Key(0, 1), MakeCpt(4));
  EXPECT_NE(cache.Get(Key(0, 1)), nullptr);
  cache.Clear();
  SpanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.Get(Key(0, 1)), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end through the Caldera facade.

class SpanCacheSystemTest : public ::testing::Test {
 protected:
  SpanCacheSystemTest() : scratch_("span_cache_test") {}

  void BuildArchive(Caldera* system) {
    // Sparse random stream: supports churn per timestep, so the relevant
    // set for the query below has many gap >= 2 holes for the MC method to
    // span (verified by the cold-run miss assertion).
    MarkovianStream stream = test::MakeValidStream(400, 40, 7, 0.05);
    ASSERT_TRUE(system->archive()->Init().ok());
    ASSERT_TRUE(system->archive()
                    ->CreateStream("bob", stream, DiskLayout::kSeparated)
                    .ok());
    ASSERT_TRUE(system->archive()->BuildBtc("bob", 0).ok());
    ASSERT_TRUE(system->archive()->BuildMc("bob", {}).ok());
  }

  static RegularQuery GappyQuery() {
    // Variable-length query; its relevant-timestep set (supports of s3 and
    // s17) leaves gap >= 2 holes the MC method must span.
    Predicate target = Predicate::Equality(0, 17, "s17");
    std::vector<QueryLink> links;
    links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 3, "s3")});
    links.push_back(QueryLink{Predicate::Not(target), target});
    return RegularQuery("gappy", links);
  }

  test::ScratchDir scratch_;
};

TEST_F(SpanCacheSystemTest, RepeatedQueryHitsCache) {
  Caldera system(scratch_.Path("archive"));
  BuildArchive(&system);
  ExecOptions mc;
  mc.method = AccessMethodKind::kMcIndex;

  auto cold = system.Execute("bob", GappyQuery(), mc);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->stats.span_cache_hits, 0u);
  ASSERT_GT(cold->stats.span_cache_misses, 0u)
      << "query must contain spanning (gap >= 2) steps for this test";

  auto warm = system.Execute("bob", GappyQuery(), mc);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.span_cache_hits, cold->stats.span_cache_misses)
      << "every composed span must be served from cache on the second run";
  EXPECT_EQ(warm->stats.span_cache_misses, 0u);
  ASSERT_EQ(warm->signal.size(), cold->signal.size());
  for (size_t i = 0; i < warm->signal.size(); ++i) {
    EXPECT_EQ(warm->signal[i].time, cold->signal[i].time);
    EXPECT_EQ(warm->signal[i].prob, cold->signal[i].prob)
        << "cached spans must reproduce the signal bit-for-bit";
  }
  EXPECT_GT(system.span_cache()->stats().entries, 0u);
}

TEST_F(SpanCacheSystemTest, RebuildIndexesInvalidates) {
  Caldera system(scratch_.Path("archive"));
  BuildArchive(&system);
  ExecOptions mc;
  mc.method = AccessMethodKind::kMcIndex;
  ASSERT_TRUE(system.Execute("bob", GappyQuery(), mc).ok());
  ASSERT_GT(system.span_cache()->stats().entries, 0u);

  ASSERT_TRUE(system.RebuildIndexes("bob").ok());
  EXPECT_EQ(system.span_cache()->stats().entries, 0u)
      << "RebuildIndexes must clear the span cache";

  // Epoch changed: the next run re-composes (misses) even if Clear had not
  // reclaimed the entries.
  auto again = system.Execute("bob", GappyQuery(), mc);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->stats.span_cache_hits, 0u);
  EXPECT_GT(again->stats.span_cache_misses, 0u);
}

TEST_F(SpanCacheSystemTest, SemiIndependentUpgradesToExactOnWarmCache) {
  Caldera system(scratch_.Path("archive"));
  BuildArchive(&system);
  ExecOptions mc;
  mc.method = AccessMethodKind::kMcIndex;
  auto exact = system.Execute("bob", GappyQuery(), mc);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_GT(exact->stats.span_cache_misses, 0u);

  // Opt-in: every gap span is now cached, so the "approximate" method
  // reproduces the exact MC signal.
  ExecOptions semi;
  semi.method = AccessMethodKind::kSemiIndependent;
  semi.use_cached_spans = true;
  auto upgraded = system.Execute("bob", GappyQuery(), semi);
  ASSERT_TRUE(upgraded.ok()) << upgraded.status().ToString();
  EXPECT_GT(upgraded->stats.span_cache_hits, 0u);
  ASSERT_EQ(upgraded->signal.size(), exact->signal.size());
  for (size_t i = 0; i < upgraded->signal.size(); ++i) {
    EXPECT_EQ(upgraded->signal[i].time, exact->signal[i].time);
    EXPECT_NEAR(upgraded->signal[i].prob, exact->signal[i].prob, 1e-12)
        << "warm-cache semi-independent must match the exact MC signal";
  }

  // Default remains the pure approximation: no cache probes at all.
  semi.use_cached_spans = false;
  auto plain = system.Execute("bob", GappyQuery(), semi);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->stats.span_cache_hits, 0u);
  EXPECT_EQ(plain->stats.span_cache_misses, 0u);
}

}  // namespace
}  // namespace caldera
