#include "markov/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "markov/cpt.h"
#include "markov/distribution.h"

namespace caldera {
namespace {

using kernels::CsrCpt;
using kernels::PropagationWorkspace;

// ---------------------------------------------------------------------------
// Generators (seeded: every failure is reproducible from the test body).

Cpt RandomCpt(uint32_t domain, double row_density, double entry_density,
              Rng* rng) {
  Cpt cpt;
  for (uint32_t src = 0; src < domain; ++src) {
    if (!rng->NextBool(row_density)) continue;
    std::vector<Cpt::RowEntry> entries;
    for (uint32_t dst = 0; dst < domain; ++dst) {
      if (rng->NextBool(entry_density)) {
        entries.push_back({dst, rng->NextDouble() + 1e-6});
      }
    }
    if (entries.empty()) {
      entries.push_back({static_cast<ValueId>(rng->NextBelow(domain)), 1.0});
    }
    double mass = 0;
    for (const auto& e : entries) mass += e.prob;
    for (auto& e : entries) e.prob /= mass;
    cpt.SetRow(src, std::move(entries));
  }
  return cpt;
}

Distribution RandomDistribution(uint32_t domain, double density, Rng* rng) {
  std::vector<Distribution::Entry> entries;
  for (uint32_t v = 0; v < domain; ++v) {
    if (rng->NextBool(density)) entries.push_back({v, rng->NextDouble()});
  }
  if (entries.empty()) {
    entries.push_back({static_cast<ValueId>(rng->NextBelow(domain)), 1.0});
  }
  Distribution d = Distribution::FromPairs(std::move(entries));
  d.Normalize();
  return d;
}

// Union-of-support comparison: every value present in either distribution
// must agree within tol (absent = 0).
void ExpectDistsNear(const Distribution& a, const Distribution& b, double tol,
                     const std::string& context) {
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  while (ia != a.entries().end() || ib != b.entries().end()) {
    ValueId va = ia != a.entries().end() ? ia->value : UINT32_MAX;
    ValueId vb = ib != b.entries().end() ? ib->value : UINT32_MAX;
    if (va < vb) {
      EXPECT_NEAR(ia->prob, 0.0, tol) << context << " value " << va;
      ++ia;
    } else if (vb < va) {
      EXPECT_NEAR(ib->prob, 0.0, tol) << context << " value " << vb;
      ++ib;
    } else {
      EXPECT_NEAR(ia->prob, ib->prob, tol) << context << " value " << va;
      ++ia;
      ++ib;
    }
  }
}

void ExpectCptsNear(const Cpt& a, const Cpt& b, uint32_t domain, double tol,
                    const std::string& context) {
  for (uint32_t src = 0; src < domain; ++src) {
    for (uint32_t dst = 0; dst < domain; ++dst) {
      double pa = a.Probability(src, dst);
      double pb = b.Probability(src, dst);
      ASSERT_NEAR(pa, pb, tol)
          << context << " P(" << dst << "|" << src << ")";
    }
  }
}

// O(d^3) brute-force chain-rule reference, independent of every kernel and
// of ComposeCpts itself.
Cpt BruteForceCompose(const Cpt& first, const Cpt& second, uint32_t domain) {
  Cpt out;
  for (const Cpt::Row& row : first.rows()) {
    std::vector<Cpt::RowEntry> entries;
    for (uint32_t z = 0; z < domain; ++z) {
      double p = 0;
      for (const Cpt::RowEntry& e : row.entries) {
        p += e.prob * second.Probability(e.dst, z);
      }
      if (p != 0.0) entries.push_back({z, p});
    }
    if (!entries.empty()) out.SetRow(row.src, std::move(entries));
  }
  return out;
}

// ---------------------------------------------------------------------------
// CSR view.

TEST(CsrCptTest, FlattensRowsInOrder) {
  Cpt cpt;
  cpt.SetRow(2, {{1, 0.5}, {4, 0.5}});
  cpt.SetRow(7, {{0, 1.0}});
  CsrCpt csr = CsrCpt::From(cpt);
  ASSERT_EQ(csr.num_rows(), 2u);
  EXPECT_EQ(csr.srcs, (std::vector<ValueId>{2, 7}));
  EXPECT_EQ(csr.offsets, (std::vector<uint32_t>{0, 2, 3}));
  EXPECT_EQ(csr.dsts, (std::vector<ValueId>{1, 4, 0}));
  EXPECT_EQ(csr.probs, (std::vector<double>{0.5, 0.5, 1.0}));
  EXPECT_EQ(csr.dst_begin, 0u);
  EXPECT_EQ(csr.dst_end, 5u);
  EXPECT_EQ(csr.nnz(), 3u);
}

TEST(CsrCptTest, EmptyCpt) {
  CsrCpt csr = CsrCpt::From(Cpt{});
  EXPECT_TRUE(csr.empty());
  EXPECT_EQ(csr.offsets, (std::vector<uint32_t>{0}));
  EXPECT_EQ(csr.dst_end, 0u);
}

TEST(CsrCptTest, CachedViewIsStableUntilMutation) {
  Cpt cpt;
  cpt.SetRow(0, {{0, 1.0}});
  const CsrCpt* first = &cpt.csr();
  EXPECT_EQ(first, &cpt.csr()) << "csr() must cache";
  cpt.SetRow(1, {{1, 1.0}});
  const CsrCpt& rebuilt = cpt.csr();
  EXPECT_EQ(rebuilt.num_rows(), 2u) << "mutation must invalidate the cache";
}

TEST(CsrCptTest, CopyAndEqualityIgnoreCache) {
  Cpt a;
  a.SetRow(0, {{0, 0.5}, {1, 0.5}});
  a.csr();  // Populate the cache on one side only.
  Cpt b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.csr().nnz(), 2u);
  b.SetRow(1, {{0, 1.0}});
  EXPECT_FALSE(a == b);
}

// ---------------------------------------------------------------------------
// Differential: legacy AoS vs scalar CSR vs SIMD CSR.

struct Shape {
  uint32_t domain;
  double row_density;
  double entry_density;
  double dist_density;
};

const Shape kShapes[] = {
    {1, 1.0, 1.0, 1.0},      {3, 0.8, 0.6, 0.7},
    {32, 0.9, 0.10, 0.3},    {32, 0.5, 0.9, 0.9},
    {352, 0.9, 0.01, 0.05},  {352, 0.7, 0.10, 0.5},
    {1024, 0.3, 0.01, 0.02}, {1024, 0.9, 0.05, 0.9},
};

TEST(KernelDifferentialTest, PropagateMatchesLegacyAcrossShapes) {
  PropagationWorkspace ws;
  Rng rng(0xC0FFEE);
  for (const Shape& s : kShapes) {
    for (int round = 0; round < 6; ++round) {
      Cpt cpt = RandomCpt(s.domain, s.row_density, s.entry_density, &rng);
      Distribution in = RandomDistribution(s.domain, s.dist_density, &rng);
      Distribution legacy = cpt.Propagate(in);
      const CsrCpt& csr = cpt.csr();
      Distribution scalar = kernels::internal::PropagateScalar(csr, in, &ws);
      std::string ctx = "domain=" + std::to_string(s.domain) +
                        " round=" + std::to_string(round);
      ExpectDistsNear(legacy, scalar, 1e-12, "scalar " + ctx);
      if (kernels::internal::SimdSupported()) {
        Distribution simd = kernels::internal::PropagateSimd(csr, in, &ws);
        ExpectDistsNear(scalar, simd, 1e-12, "simd " + ctx);
      }
      Distribution dispatched = kernels::Propagate(cpt, in, &ws);
      ExpectDistsNear(legacy, dispatched, 1e-12, "dispatched " + ctx);
    }
  }
}

TEST(KernelDifferentialTest, PropagateAdversarialCases) {
  PropagationWorkspace ws;

  // Empty CPT: everything propagates to the empty distribution.
  Cpt empty;
  Distribution in = Distribution::FromPairs({{0, 0.5}, {9, 0.5}});
  EXPECT_TRUE(kernels::Propagate(empty, in, &ws).empty());

  // Input entirely outside the CPT's rows.
  Cpt cpt;
  cpt.SetRow(5, {{1, 1.0}});
  EXPECT_TRUE(kernels::Propagate(cpt, in, &ws).empty());

  // Empty input.
  EXPECT_TRUE(kernels::Propagate(cpt, Distribution{}, &ws).empty());

  // Missing interior rows + boundary destinations + denormal-tiny probs.
  Cpt gappy;
  gappy.SetRow(0, {{0, 1e-300}, {999, 1.0 - 1e-300}});
  gappy.SetRow(999, {{0, 1.0}});
  Distribution wide = Distribution::FromPairs({{0, 0.25}, {500, 0.5},
                                               {999, 0.25}});
  Distribution legacy = gappy.Propagate(wide);
  Distribution fast = kernels::Propagate(gappy, wide, &ws);
  ExpectDistsNear(legacy, fast, 1e-12, "gappy");
  if (kernels::internal::SimdSupported()) {
    Distribution simd = kernels::internal::PropagateSimd(gappy.csr(), wide, &ws);
    ExpectDistsNear(legacy, simd, 1e-12, "gappy simd");
  }
}

TEST(KernelDifferentialTest, ComposeMatchesBruteForceSmallDomains) {
  PropagationWorkspace ws;
  Rng rng(0xBEEF);
  for (uint32_t domain : {1u, 3u, 8u, 24u}) {
    for (int round = 0; round < 8; ++round) {
      Cpt first = RandomCpt(domain, 0.8, 0.5, &rng);
      Cpt second = RandomCpt(domain, 0.8, 0.5, &rng);
      Cpt expected = BruteForceCompose(first, second, domain);
      std::string ctx = "domain=" + std::to_string(domain) +
                        " round=" + std::to_string(round);
      Cpt scalar = kernels::internal::ComposeScalar(first.csr(), second.csr(),
                                                    domain, &ws);
      ExpectCptsNear(expected, scalar, domain, 1e-12, "scalar " + ctx);
      if (kernels::internal::SimdSupported()) {
        Cpt simd = kernels::internal::ComposeSimd(first.csr(), second.csr(),
                                                  domain, &ws);
        ExpectCptsNear(scalar, simd, domain, 1e-12, "simd " + ctx);
      }
      Cpt dispatched = ComposeCpts(first, second, domain);
      ExpectCptsNear(expected, dispatched, domain, 1e-12, "dispatched " + ctx);
    }
  }
}

TEST(KernelDifferentialTest, ComposeScalarSimdParityLargeDomains) {
  if (!kernels::internal::SimdSupported()) {
    GTEST_SKIP() << "no SIMD backend on this CPU/build";
  }
  PropagationWorkspace ws;
  Rng rng(0xFACADE);
  for (uint32_t domain : {352u, 1024u}) {
    for (double density : {0.01, 0.10}) {
      Cpt first = RandomCpt(domain, 0.6, density, &rng);
      Cpt second = RandomCpt(domain, 0.6, density, &rng);
      Cpt scalar = kernels::internal::ComposeScalar(first.csr(), second.csr(),
                                                    domain, &ws);
      Cpt simd = kernels::internal::ComposeSimd(first.csr(), second.csr(),
                                                domain, &ws);
      // Exact same support and per-entry agreement.
      ASSERT_EQ(scalar.rows().size(), simd.rows().size());
      for (size_t r = 0; r < scalar.rows().size(); ++r) {
        const Cpt::Row& rs = scalar.rows()[r];
        const Cpt::Row& rv = simd.rows()[r];
        ASSERT_EQ(rs.src, rv.src);
        ASSERT_EQ(rs.entries.size(), rv.entries.size());
        for (size_t i = 0; i < rs.entries.size(); ++i) {
          ASSERT_EQ(rs.entries[i].dst, rv.entries[i].dst);
          ASSERT_NEAR(rs.entries[i].prob, rv.entries[i].prob, 1e-12);
        }
      }
    }
  }
}

// The workspace's all-zero invariant: interleaving wildly different shapes
// through one workspace never changes any result.
TEST(KernelDifferentialTest, WorkspaceReuseIsStateless) {
  Rng rng(42);
  std::vector<Cpt> cpts;
  std::vector<Distribution> dists;
  for (const Shape& s : kShapes) {
    cpts.push_back(RandomCpt(s.domain, s.row_density, s.entry_density, &rng));
    dists.push_back(RandomDistribution(s.domain, s.dist_density, &rng));
  }
  PropagationWorkspace shared;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < cpts.size(); ++i) {
      PropagationWorkspace fresh;
      Distribution a = kernels::Propagate(cpts[i], dists[i], &shared);
      Distribution b = kernels::Propagate(cpts[i], dists[i], &fresh);
      EXPECT_EQ(a.entries().size(), b.entries().size());
      ExpectDistsNear(a, b, 0.0, "shared-vs-fresh " + std::to_string(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(KernelDispatchTest, BackendReportsLivePath) {
  const std::string backend = kernels::Backend();
  EXPECT_TRUE(backend == "avx2+fma" || backend == "scalar") << backend;
  EXPECT_EQ(kernels::SimdEnabled(), backend != "scalar");
  const char* env = std::getenv("CALDERA_FORCE_SCALAR_KERNELS");
  if (env != nullptr && env[0] != '\0' && std::string(env) != "0") {
    EXPECT_EQ(backend, "scalar")
        << "CALDERA_FORCE_SCALAR_KERNELS must force the scalar path";
  }
}

TEST(KernelDispatchTest, ForceScalarOverridesDispatch) {
  kernels::internal::ForceScalar(true);
  EXPECT_STREQ(kernels::Backend(), "scalar");
  EXPECT_FALSE(kernels::SimdEnabled());
  PropagationWorkspace ws;
  Cpt cpt;
  cpt.SetRow(0, {{0, 0.25}, {1, 0.75}});
  Distribution out = kernels::Propagate(cpt, Distribution::Point(0), &ws);
  EXPECT_NEAR(out.ProbabilityOf(1), 0.75, 1e-15);
  kernels::internal::ForceScalar(false);
  if (kernels::internal::SimdSupported() &&
      std::getenv("CALDERA_FORCE_SCALAR_KERNELS") == nullptr) {
    EXPECT_STREQ(kernels::Backend(), "avx2+fma");
  }
}

// ---------------------------------------------------------------------------
// New Distribution builders.

TEST(DistributionBuilderTest, FromSortedMovesEntries) {
  Distribution d = Distribution::FromSorted({{1, 0.25}, {5, 0.75}});
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_NEAR(d.ProbabilityOf(5), 0.75, 0.0);
}

TEST(DistributionBuilderTest, FromDenseScratchDrainsAndZeroes) {
  std::vector<double> dense(10, 0.0);
  dense[2] = 0.5;
  dense[7] = 0.5;
  Distribution d = Distribution::FromDenseScratch(dense, 0, 10);
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_NEAR(d.ProbabilityOf(2), 0.5, 0.0);
  for (double v : dense) EXPECT_EQ(v, 0.0) << "scratch must be re-zeroed";
}

}  // namespace
}  // namespace caldera
