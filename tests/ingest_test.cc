// End-to-end tests for the live-ingestion subsystem (src/ingest/): the
// offline-vs-incremental differential (including a crash/replay mid-way),
// the crash-recovery fault matrix, the O(log n) incremental MC maintenance
// bound, snapshot consistency under concurrent ingest, and the facade
// epoch-bump wiring.

#include "ingest/ingestor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/system.h"
#include "index/mc_index.h"
#include "storage/fault_injection_file.h"
#include "storage/record_file.h"
#include "test_util.h"

namespace caldera {
namespace {

// The first `len` timesteps of `full` as a standalone stream.
MarkovianStream Prefix(const MarkovianStream& full, uint64_t len) {
  MarkovianStream out(full.schema());
  for (uint64_t t = 0; t < len; ++t) {
    out.Append(full.marginal(t), t == 0 ? Cpt() : full.transition(t));
  }
  return out;
}

// Timesteps [from, from + count) of `full` as an ingest batch.
std::vector<IngestTimestep> Slice(const MarkovianStream& full, uint64_t from,
                                  uint64_t count) {
  std::vector<IngestTimestep> batch;
  batch.reserve(count);
  for (uint64_t t = from; t < from + count; ++t) {
    batch.push_back(IngestTimestep{full.marginal(t), full.transition(t)});
  }
  return batch;
}

// Bit-exact signal comparison: the differential acceptance criterion is
// byte-identical results, not epsilon-close ones — the incremental path
// must perform the same floating-point operations as the offline build.
void ExpectSignalsIdentical(const QuerySignal& got, const QuerySignal& want,
                            const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, want[i].time) << what << " entry " << i;
    EXPECT_EQ(got[i].prob, want[i].prob) << what << " entry " << i;
  }
}

// Every stored MC level entry of `live_dir` equals the offline-built one.
void ExpectMcLevelsIdentical(const std::string& oracle_dir,
                             const std::string& live_dir) {
  auto oracle_meta = McIndex::ReadMeta(oracle_dir + "/mc");
  auto live_meta = McIndex::ReadMeta(live_dir + "/mc");
  ASSERT_TRUE(oracle_meta.ok() && live_meta.ok());
  ASSERT_EQ(oracle_meta->level_counts, live_meta->level_counts);
  for (size_t i = 0; i < oracle_meta->level_counts.size(); ++i) {
    const std::string level_file =
        "/mc/L" + std::to_string(i + 1) + ".rec";
    auto oracle = RecordFileReader::Open(oracle_dir + level_file, 4);
    auto live = RecordFileReader::Open(live_dir + level_file, 4);
    ASSERT_TRUE(oracle.ok() && live.ok()) << level_file;
    std::string a, b;
    for (uint64_t k = 0; k < oracle_meta->level_counts[i]; ++k) {
      ASSERT_TRUE((*oracle)->Get(k, &a).ok());
      ASSERT_TRUE((*live)->Get(k, &b).ok());
      ASSERT_EQ(a, b) << level_file << " entry " << k;
    }
  }
}

RegularQuery FixedQuery() {
  return RegularQuery::Sequence(
      "fixed", {Predicate::Equality(0, 2, "v2"), Predicate::Equality(0, 3, "v3")});
}

RegularQuery KleeneQuery() {
  Predicate p5 = Predicate::Equality(0, 5, "v5");
  std::vector<QueryLink> links;
  links.push_back(QueryLink{Predicate::Not(p5), p5});
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 4, "v4")});
  return RegularQuery("kleene", std::move(links));
}

// Runs the same query via the same method against both streams of one
// facade and demands bit-identical signals.
void ExpectStreamsAgree(Caldera* system, const std::string& oracle,
                        const std::string& live) {
  const RegularQuery fixed = FixedQuery();
  const RegularQuery kleene = KleeneQuery();
  struct Case {
    RegularQuery query;
    ExecOptions options;
    std::string tag;
  };
  std::vector<Case> cases = {
      {fixed, ExecOptions{.method = AccessMethodKind::kScan}, "fixed/scan"},
      {fixed, ExecOptions{.method = AccessMethodKind::kBTree}, "fixed/btree"},
      {fixed, ExecOptions{.method = AccessMethodKind::kTopK, .k = 5},
       "fixed/topk"},
      {fixed, ExecOptions{.method = AccessMethodKind::kMcIndex}, "fixed/mc"},
      {fixed, ExecOptions{.method = AccessMethodKind::kSemiIndependent},
       "fixed/semi"},
      {kleene, ExecOptions{.method = AccessMethodKind::kScan}, "kleene/scan"},
      {kleene, ExecOptions{.method = AccessMethodKind::kMcIndex}, "kleene/mc"},
      {kleene, ExecOptions{.method = AccessMethodKind::kSemiIndependent},
       "kleene/semi"},
  };
  for (const Case& c : cases) {
    auto want = system->Execute(oracle, c.query, c.options);
    auto got = system->Execute(live, c.query, c.options);
    ASSERT_TRUE(want.ok()) << c.tag << ": " << want.status().ToString();
    ASSERT_TRUE(got.ok()) << c.tag << ": " << got.status().ToString();
    ExpectSignalsIdentical(got->signal, want->signal, c.tag);
  }
}

struct DifferentialVariant {
  DiskLayout layout;
  McIndexOptions mc;
};

class IngestDifferentialTest
    : public ::testing::TestWithParam<size_t> {};

// The acceptance-criteria differential: a stream archived offline at full
// length vs a prefix archive grown to the same length through the ingest
// pipeline — with a simulated crash (committed-but-unapplied batch) and
// WAL replay mid-way — must answer every access method bit-identically,
// and the incrementally extended MC index must hold byte-identical
// entries.
TEST_P(IngestDifferentialTest, OfflineAndIncrementalBuildsAreBitIdentical) {
  const DifferentialVariant variants[] = {
      {DiskLayout::kSeparated, McIndexOptions{.alpha = 2}},
      // Co-clustered layout + non-default MC options: proves the extension
      // recovers alpha/truncate_eps from the persisted metadata instead of
      // assuming defaults.
      {DiskLayout::kCoClustered,
       McIndexOptions{.alpha = 3, .truncate_eps = 1e-4}},
  };
  const DifferentialVariant& variant = variants[GetParam()];
  test::ScratchDir scratch("ingest_diff_" + std::to_string(GetParam()));

  const uint32_t domain = 10;
  const uint64_t full_len = 260;
  const uint64_t prefix_len = 180;
  MarkovianStream full = test::MakeBandedStream(full_len, domain, 41);
  ASSERT_TRUE(full.Validate(1e-6).ok());

  Caldera system(scratch.Path("archive"));
  ASSERT_TRUE(system.archive()->Init().ok());
  auto archive_stream = [&](const std::string& name,
                            const MarkovianStream& stream) {
    ASSERT_TRUE(
        system.archive()->CreateStream(name, stream, variant.layout).ok());
    ASSERT_TRUE(system.archive()->BuildBtc(name, 0).ok());
    ASSERT_TRUE(system.archive()->BuildBtp(name, 0).ok());
    ASSERT_TRUE(system.archive()->BuildMc(name, variant.mc).ok());
  };
  archive_stream("oracle", full);
  archive_stream("live", Prefix(full, prefix_len));

  auto ingestor = system.OpenForIngest("live");
  ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
  ASSERT_TRUE((*ingestor)->Append(Slice(full, 180, 1)).ok());
  ASSERT_TRUE((*ingestor)->Append(Slice(full, 181, 19)).ok());
  EXPECT_EQ((*ingestor)->length(), 200u);

  // Crash mid-way: the batch reaches the WAL commit point but is never
  // applied; the handle is poisoned, and reopening replays it.
  ASSERT_TRUE((*ingestor)->CommitWithoutApply(Slice(full, 200, 25)).ok());
  EXPECT_TRUE((*ingestor)->broken());
  EXPECT_FALSE((*ingestor)->Append(Slice(full, 225, 1)).ok());
  ingestor->reset();

  auto reopened = system.OpenForIngest("live");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->length(), 225u);
  EXPECT_EQ((*reopened)->stats().batches_recovered, 1u);
  ASSERT_TRUE((*reopened)->Append(Slice(full, 225, 35)).ok());
  ASSERT_EQ((*reopened)->length(), full_len);

  ExpectStreamsAgree(&system, "oracle", "live");
  ExpectMcLevelsIdentical(system.archive()->StreamDir("oracle"),
                          system.archive()->StreamDir("live"));
}

INSTANTIATE_TEST_SUITE_P(Variants, IngestDifferentialTest,
                         ::testing::Values(0, 1));

// One cell of the crash matrix: inject `fault` on files matching `target`
// while a batch is appended, reopen clean, and demand the recovered stream
// equals an offline-built oracle at whatever length survived (base or
// base + batch — never anything else).
void RunCrashRecoveryCase(const std::string& tag, const std::string& target,
                          const FaultInjectionOptions& fault) {
  SCOPED_TRACE(tag);
  test::ScratchDir scratch("ingest_crash_" + tag);
  const uint32_t domain = 8;
  const uint64_t base_len = 200;
  const uint64_t full_len = 240;
  MarkovianStream full = test::MakeBandedStream(full_len, domain, 17);

  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.Init().ok());
  ASSERT_TRUE(archive.CreateStream("s", Prefix(full, base_len)).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 0).ok());
  ASSERT_TRUE(archive.BuildMc("s", {.alpha = 2}).ok());
  const std::string dir = archive.StreamDir("s");

  {
    ScopedFaultInjection inject(target, fault);
    auto ingestor = StreamIngestor::Open(dir);
    if (ingestor.ok()) {
      // The append may fail (that is the point); state must stay sound.
      Status ignored =
          (*ingestor)->Append(Slice(full, base_len, full_len - base_len));
      (void)ignored;
    }
  }

  // Reopen without injection: recovery must land on base or base+batch.
  auto recovered = StreamIngestor::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const uint64_t len = (*recovered)->length();
  ASSERT_TRUE(len == base_len || len == full_len) << "recovered to " << len;
  recovered->reset();

  // Oracle: the same stream archived offline at the recovered length.
  ASSERT_TRUE(archive.CreateStream("oracle", Prefix(full, len)).ok());
  ASSERT_TRUE(archive.BuildBtc("oracle", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("oracle", 0).ok());
  ASSERT_TRUE(archive.BuildMc("oracle", {.alpha = 2}).ok());

  auto live = archive.OpenStream("s");
  auto oracle = archive.OpenStream("oracle");
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  for (const RegularQuery& query : {FixedQuery(), KleeneQuery()}) {
    auto want_scan = RunScanMethod(oracle->get(), query);
    auto got_scan = RunScanMethod(live->get(), query);
    ASSERT_TRUE(want_scan.ok() && got_scan.ok());
    ExpectSignalsIdentical(got_scan->signal, want_scan->signal,
                           tag + "/scan/" + query.name());
    auto want_mc = RunMcMethod(oracle->get(), query);
    auto got_mc = RunMcMethod(live->get(), query);
    ASSERT_TRUE(want_mc.ok() && got_mc.ok());
    ExpectSignalsIdentical(got_mc->signal, want_mc->signal,
                           tag + "/mc/" + query.name());
    if (query.fixed_length()) {
      auto want_bt = RunBTreeMethod(oracle->get(), query);
      auto got_bt = RunBTreeMethod(live->get(), query);
      ASSERT_TRUE(want_bt.ok() && got_bt.ok());
      ExpectSignalsIdentical(got_bt->signal, want_bt->signal,
                             tag + "/btree/" + query.name());
    }
  }
}

TEST(IngestCrashRecoveryTest, WalWriteFailsBeforeCommit) {
  FaultInjectionOptions fault;
  fault.fail_writes_from = 0;
  RunCrashRecoveryCase("wal_write0", "ingest.wal", fault);
}

TEST(IngestCrashRecoveryTest, WalWriteTearsMidJournal) {
  FaultInjectionOptions fault;
  fault.fail_writes_from = 2;
  fault.torn_writes = true;
  RunCrashRecoveryCase("wal_torn2", "ingest.wal", fault);
}

TEST(IngestCrashRecoveryTest, WalSyncFails) {
  FaultInjectionOptions fault;
  fault.fail_sync = true;
  RunCrashRecoveryCase("wal_sync", "ingest.wal", fault);
}

TEST(IngestCrashRecoveryTest, MarginalAppendTearsAfterCommit) {
  FaultInjectionOptions fault;
  fault.fail_writes_from = 0;
  fault.torn_writes = true;
  RunCrashRecoveryCase("marginals_torn", "marginals.rec", fault);
}

TEST(IngestCrashRecoveryTest, CptAppendFailsAfterCommit) {
  FaultInjectionOptions fault;
  fault.fail_writes_from = 1;
  RunCrashRecoveryCase("cpts_write1", "cpts.rec", fault);
}

TEST(IngestCrashRecoveryTest, McLevelExtensionTears) {
  FaultInjectionOptions fault;
  fault.fail_writes_from = 0;
  fault.torn_writes = true;
  RunCrashRecoveryCase("mc_l1_torn", "L1.rec", fault);
}

TEST(IngestCrashRecoveryTest, DataSyncFails) {
  FaultInjectionOptions fault;
  fault.fail_sync = true;
  RunCrashRecoveryCase("marginals_sync", "marginals.rec", fault);
}

// A crash *during recovery* (undo restore / redo hits an I/O error) leaves
// the WAL intact; the next clean open finishes the job.
TEST(IngestCrashRecoveryTest, RecoveryItselfCanCrashAndRetry) {
  test::ScratchDir scratch("ingest_rec_retry");
  MarkovianStream full = test::MakeBandedStream(200, 8, 23);
  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.Init().ok());
  ASSERT_TRUE(archive.CreateStream("s", Prefix(full, 160)).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  const std::string dir = archive.StreamDir("s");

  {
    auto ingestor = StreamIngestor::Open(dir);
    ASSERT_TRUE(ingestor.ok());
    ASSERT_TRUE((*ingestor)->CommitWithoutApply(Slice(full, 160, 40)).ok());
  }
  {
    // First recovery attempt dies re-applying the batch.
    FaultInjectionOptions fault;
    fault.fail_writes_from = 0;
    ScopedFaultInjection inject("marginals.rec", fault);
    auto ingestor = StreamIngestor::Open(dir);
    EXPECT_FALSE(ingestor.ok());
  }
  auto ingestor = StreamIngestor::Open(dir);
  ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
  EXPECT_EQ((*ingestor)->length(), 200u);
  EXPECT_EQ((*ingestor)->stats().batches_recovered, 1u);
}

// Replay is idempotent: a committed-but-unapplied batch is applied exactly
// once no matter how many times the stream is reopened.
TEST(IngestRecoveryTest, ReplayIsIdempotentAcrossReopens) {
  test::ScratchDir scratch("ingest_idem");
  MarkovianStream full = test::MakeBandedStream(180, 8, 29);
  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.Init().ok());
  ASSERT_TRUE(archive.CreateStream("s", Prefix(full, 150)).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 0).ok());
  ASSERT_TRUE(archive.BuildMc("s", {.alpha = 2}).ok());
  const std::string dir = archive.StreamDir("s");

  {
    auto ingestor = StreamIngestor::Open(dir);
    ASSERT_TRUE(ingestor.ok());
    ASSERT_TRUE((*ingestor)->CommitWithoutApply(Slice(full, 150, 30)).ok());
  }
  {
    auto first = StreamIngestor::Open(dir);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ((*first)->length(), 180u);
    EXPECT_EQ((*first)->stats().batches_recovered, 1u);
  }
  auto second = StreamIngestor::Open(dir);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->length(), 180u);
  EXPECT_EQ((*second)->stats().batches_recovered, 0u);
  second->reset();

  ASSERT_TRUE(archive.CreateStream("oracle", full).ok());
  ASSERT_TRUE(archive.BuildBtc("oracle", 0).ok());
  auto live = archive.OpenStream("s");
  auto oracle = archive.OpenStream("oracle");
  ASSERT_TRUE(live.ok() && oracle.ok());
  auto want = RunBTreeMethod(oracle->get(), FixedQuery());
  auto got = RunBTreeMethod(live->get(), FixedQuery());
  ASSERT_TRUE(want.ok() && got.ok());
  ExpectSignalsIdentical(got->signal, want->signal, "idempotent-replay");
}

// Incremental MC maintenance touches only the right spine: a one-timestep
// append recomputes at most one node per level, i.e. O(log n) nodes, and
// the grown index is entry-for-entry byte-identical to a full rebuild.
TEST(IngestMcMaintenanceTest, SingleAppendRecomputesLogNodes) {
  test::ScratchDir scratch("ingest_mclog");
  const uint64_t full_len = 400;
  MarkovianStream full = test::MakeBandedStream(full_len, 6, 31);
  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.Init().ok());
  ASSERT_TRUE(archive.CreateStream("s", Prefix(full, 64)).ok());
  ASSERT_TRUE(archive.BuildMc("s", {.alpha = 2}).ok());

  auto ingestor = StreamIngestor::Open(archive.StreamDir("s"));
  ASSERT_TRUE(ingestor.ok());
  uint64_t prev_nodes = 0;
  for (uint64_t t = 64; t < full_len; ++t) {
    ASSERT_TRUE((*ingestor)->Append(Slice(full, t, 1)).ok()) << "t=" << t;
    const uint64_t delta = (*ingestor)->stats().mc.nodes_recomputed -
                           prev_nodes;
    prev_nodes = (*ingestor)->stats().mc.nodes_recomputed;
    // With alpha=2 at most one block completes per level: delta <=
    // floor(log2(num_transitions)) per append.
    uint64_t bound = 0;
    for (uint64_t n = t; n > 1; n /= 2) ++bound;
    EXPECT_LE(delta, bound) << "t=" << t;
  }
  ingestor->reset();

  ASSERT_TRUE(archive.CreateStream("oracle", full).ok());
  ASSERT_TRUE(archive.BuildMc("oracle", {.alpha = 2}).ok());
  ExpectMcLevelsIdentical(archive.StreamDir("oracle"),
                          archive.StreamDir("s"));
}

// Snapshot consistency: a query racing a concurrent ingest observes the
// stream at some batch boundary — bit-identical to one of the precomputed
// per-boundary oracles, never a mix of old and new timesteps. Runs under
// the TSan CI job, which additionally checks the locking for races.
TEST(IngestConcurrencyTest, QueriesSeeBatchBoundarySnapshotsOnly) {
  test::ScratchDir scratch("ingest_race");
  const uint64_t base_len = 100;
  const uint64_t batch_size = 10;
  const size_t num_batches = 5;
  MarkovianStream full =
      test::MakeBandedStream(base_len + num_batches * batch_size, 8, 37);

  Caldera system(scratch.Path("archive"));
  ASSERT_TRUE(system.archive()->Init().ok());
  // One offline oracle per reachable boundary length, plus the live stream.
  std::vector<std::string> boundary_names;
  for (size_t i = 0; i <= num_batches; ++i) {
    const uint64_t len = base_len + i * batch_size;
    std::string name = "o";
    name += std::to_string(len);
    boundary_names.push_back(name);
    ASSERT_TRUE(
        system.archive()->CreateStream(name, Prefix(full, len)).ok());
    ASSERT_TRUE(system.archive()->BuildBtc(name, 0).ok());
    ASSERT_TRUE(system.archive()->BuildMc(name, {.alpha = 2}).ok());
  }
  ASSERT_TRUE(
      system.archive()->CreateStream("live", Prefix(full, base_len)).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("live", 0).ok());
  ASSERT_TRUE(system.archive()->BuildMc("live", {.alpha = 2}).ok());

  const RegularQuery query = FixedQuery();
  const AccessMethodKind methods[] = {AccessMethodKind::kBTree,
                                      AccessMethodKind::kMcIndex};
  // Oracle signals per (boundary, method).
  std::vector<std::vector<QuerySignal>> oracles(boundary_names.size());
  for (size_t i = 0; i < boundary_names.size(); ++i) {
    for (AccessMethodKind method : methods) {
      auto r = system.Execute(boundary_names[i], query,
                              ExecOptions{.method = method});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      oracles[i].push_back(r->signal);
    }
  }
  auto is_boundary_signal = [&](const QuerySignal& signal,
                                size_t method_idx) {
    for (const auto& per_boundary : oracles) {
      const QuerySignal& want = per_boundary[method_idx];
      if (signal.size() != want.size()) continue;
      bool same = true;
      for (size_t i = 0; i < signal.size() && same; ++i) {
        same = signal[i].time == want[i].time &&
               signal[i].prob == want[i].prob;
      }
      if (same) return true;
    }
    return false;
  };

  std::atomic<bool> ingest_done{false};
  std::atomic<int> torn_reads{0};
  std::string reader_error;  // First failure, written once before the flag.
  std::thread reader([&] {
    size_t method_idx = 0;
    int iterations = 0;
    while (!ingest_done.load(std::memory_order_acquire) || iterations < 20) {
      auto r = system.Execute(
          "live", query, ExecOptions{.method = methods[method_idx]});
      if (!r.ok() || !is_boundary_signal(r->signal, method_idx)) {
        if (torn_reads.load() == 0) {
          reader_error = r.ok() ? "non-boundary signal"
                                : r.status().ToString();
        }
        torn_reads.fetch_add(1);
      }
      method_idx = 1 - method_idx;
      ++iterations;
      if (iterations > 2000) break;  // Safety valve.
    }
  });
  std::string writer_error;
  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    auto ingestor = system.OpenForIngest("live");
    if (!ingestor.ok()) {
      writer_error = ingestor.status().ToString();
      writer_failed.store(true);
      ingest_done.store(true, std::memory_order_release);
      return;
    }
    for (size_t i = 0; i < num_batches; ++i) {
      Status appended =
          (*ingestor)->Append(Slice(full, base_len + i * batch_size,
                                    batch_size));
      if (!appended.ok()) {
        writer_error = appended.ToString();
        writer_failed.store(true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ingest_done.store(true, std::memory_order_release);
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(writer_failed.load()) << writer_error;
  EXPECT_EQ(torn_reads.load(), 0) << reader_error;
  // After the dust settles the live stream equals the final oracle.
  auto final_live =
      system.Execute("live", query, ExecOptions{.method = methods[0]});
  ASSERT_TRUE(final_live.ok());
  ExpectSignalsIdentical(final_live->signal, oracles.back()[0], "final");
}

// The facade's epoch bump makes commits visible to later queries with no
// manual InvalidateStreams, while handles opened before the commit keep
// serving their snapshot.
TEST(IngestFacadeTest, CommitsAreVisibleWithoutManualInvalidation) {
  test::ScratchDir scratch("ingest_epoch");
  MarkovianStream full = test::MakeBandedStream(140, 8, 43);
  Caldera system(scratch.Path("archive"));
  ASSERT_TRUE(system.archive()->Init().ok());
  ASSERT_TRUE(
      system.archive()->CreateStream("live", Prefix(full, 100)).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("live", 0).ok());
  ASSERT_TRUE(system.archive()->CreateStream("oracle", full).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("oracle", 0).ok());

  const RegularQuery query = FixedQuery();
  const ExecOptions options{.method = AccessMethodKind::kBTree};
  // Populate the handle cache at length 100 and keep a pre-commit handle.
  auto before = system.Execute("live", query, options);
  ASSERT_TRUE(before.ok());
  auto snapshot = system.GetStream("live");
  ASSERT_TRUE(snapshot.ok());
  const uint64_t epoch_before = system.stream_epoch();

  auto ingestor = system.OpenForIngest("live");
  ASSERT_TRUE(ingestor.ok());
  ASSERT_TRUE((*ingestor)->Append(Slice(full, 100, 40)).ok());
  EXPECT_GT(system.stream_epoch(), epoch_before);

  auto after = system.Execute("live", query, options);
  auto want = system.Execute("oracle", query, options);
  ASSERT_TRUE(after.ok() && want.ok());
  ExpectSignalsIdentical(after->signal, want->signal, "post-commit");
  // The pre-commit handle still sees the old stream (snapshot semantics).
  EXPECT_EQ((*snapshot)->length(), 100u);
  auto old_view = RunScanMethod(snapshot->get(), query);
  ASSERT_TRUE(old_view.ok());
  auto old_oracle = system.Execute(
      "live", query, ExecOptions{.method = AccessMethodKind::kScan});
  ASSERT_TRUE(old_oracle.ok());
  // Old handle: 100 timesteps; fresh execute: 140. Sizes must differ only
  // by the appended suffix — check the shared prefix is untouched.
  for (size_t i = 0; i < old_view->signal.size(); ++i) {
    ASSERT_LT(i, old_oracle->signal.size());
    EXPECT_EQ(old_view->signal[i].time, old_oracle->signal[i].time);
    EXPECT_EQ(old_view->signal[i].prob, old_oracle->signal[i].prob);
  }
}

TEST(IngestFacadeTest, OpenForIngestUnknownStreamIsNotFound) {
  test::ScratchDir scratch("ingest_notfound");
  Caldera system(scratch.Path("archive"));
  ASSERT_TRUE(system.archive()->Init().ok());
  auto ingestor = system.OpenForIngest("nope");
  ASSERT_FALSE(ingestor.ok());
  EXPECT_EQ(ingestor.status().code(), StatusCode::kNotFound);
}

// Ingest into a stream with no indexes at all: only the data files and
// meta grow; the scan still answers correctly.
TEST(IngestFacadeTest, IndexlessStreamsIngestToo) {
  test::ScratchDir scratch("ingest_noindex");
  MarkovianStream full = test::MakeBandedStream(120, 8, 47);
  Caldera system(scratch.Path("archive"));
  ASSERT_TRUE(system.archive()->Init().ok());
  ASSERT_TRUE(system.archive()
                  ->CreateStream("live", Prefix(full, 90),
                                 DiskLayout::kCoClustered)
                  .ok());
  ASSERT_TRUE(system.archive()->CreateStream("oracle", full,
                                             DiskLayout::kCoClustered)
                  .ok());
  auto ingestor = system.OpenForIngest("live");
  ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
  ASSERT_TRUE((*ingestor)->Append(Slice(full, 90, 30)).ok());
  EXPECT_EQ((*ingestor)->stats().btree_inserts, 0u);
  EXPECT_EQ((*ingestor)->stats().mc.nodes_recomputed, 0u);
  auto got = system.Execute("live", KleeneQuery(),
                            ExecOptions{.method = AccessMethodKind::kScan});
  auto want = system.Execute("oracle", KleeneQuery(),
                             ExecOptions{.method = AccessMethodKind::kScan});
  ASSERT_TRUE(got.ok() && want.ok());
  ExpectSignalsIdentical(got->signal, want->signal, "indexless-scan");
}

}  // namespace
}  // namespace caldera
