#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "caldera/archive.h"
#include "common/logging.h"
#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "reg/reg_operator.h"
#include "rfid/workload.h"
#include "test_util.h"

namespace caldera {
namespace {

// Builds archive + all indexes for a stream and opens it.
std::unique_ptr<ArchivedStream> ArchiveWithIndexes(
    const test::ScratchDir& scratch, const std::string& name,
    const MarkovianStream& stream, DiskLayout layout) {
  StreamArchive archive(scratch.Path("archive"));
  CALDERA_CHECK_OK(archive.CreateStream(name, stream, layout));
  CALDERA_CHECK_OK(archive.BuildBtc(name, 0));
  CALDERA_CHECK_OK(archive.BuildBtp(name, 0));
  CALDERA_CHECK_OK(archive.BuildMc(name, {.alpha = 2}));
  auto opened = archive.OpenStream(name);
  CALDERA_CHECK_OK(opened.status());
  return std::move(*opened);
}

// Asserts that `indexed` agrees with the full-scan signal: equal
// probabilities at every timestep it reports, and every nonzero scan
// probability is reported.
void ExpectSignalEqualsScan(const QuerySignal& indexed,
                            const QuerySignal& scan, double tol = 1e-9) {
  std::map<uint64_t, double> by_time;
  for (const TimestepProbability& e : indexed) {
    EXPECT_TRUE(by_time.emplace(e.time, e.prob).second)
        << "duplicate time " << e.time;
  }
  for (const TimestepProbability& e : scan) {
    auto it = by_time.find(e.time);
    if (it != by_time.end()) {
      EXPECT_NEAR(it->second, e.prob, tol) << "t=" << e.time;
    } else {
      EXPECT_NEAR(e.prob, 0.0, tol) << "skipped t=" << e.time
                                    << " has nonzero probability";
    }
  }
}

RegularQuery FixedQuery(uint32_t a, uint32_t b) {
  return RegularQuery::Sequence(
      "fixed", {Predicate::Equality(0, a, "s" + std::to_string(a)),
                Predicate::Equality(0, b, "s" + std::to_string(b))});
}

RegularQuery VariableQuery(uint32_t a, uint32_t b) {
  Predicate target = Predicate::Equality(0, b, "s" + std::to_string(b));
  std::vector<QueryLink> links;
  links.push_back(QueryLink{
      std::nullopt, Predicate::Equality(0, a, "s" + std::to_string(a))});
  links.push_back(QueryLink{Predicate::Not(target), target});
  return RegularQuery("variable", links);
}

class AccessMethodLayoutTest : public ::testing::TestWithParam<DiskLayout> {
 protected:
  AccessMethodLayoutTest() : scratch_("access_methods") {}
  test::ScratchDir scratch_;
};

TEST_P(AccessMethodLayoutTest, ScanMatchesInMemoryReference) {
  MarkovianStream stream = test::MakeBandedStream(150, 16, 1);
  auto archived = ArchiveWithIndexes(scratch_, "s", stream, GetParam());
  RegularQuery query = FixedQuery(3, 4);
  auto result = RunScanMethod(archived.get(), query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<double> reference = RunRegOverStream(query, stream);
  ASSERT_EQ(result->signal.size(), reference.size());
  for (uint64_t t = 0; t < reference.size(); ++t) {
    EXPECT_NEAR(result->signal[t].prob, reference[t], 1e-9);
  }
  EXPECT_EQ(result->stats.reg_updates, stream.length());
  EXPECT_GT(result->stats.stream_io.fetches, 0u);
}

TEST_P(AccessMethodLayoutTest, BTreeMethodEqualsScan) {
  MarkovianStream stream = test::MakeBandedStream(300, 20, 2);
  auto archived = ArchiveWithIndexes(scratch_, "s", stream, GetParam());
  for (auto [a, b] : std::vector<std::pair<uint32_t, uint32_t>>{
           {3, 4}, {10, 11}, {19, 18}, {0, 1}, {5, 5}}) {
    RegularQuery query = FixedQuery(a, b);
    auto scan = RunScanMethod(archived.get(), query);
    auto btree = RunBTreeMethod(archived.get(), query);
    ASSERT_TRUE(scan.ok());
    ASSERT_TRUE(btree.ok()) << btree.status().ToString();
    ExpectSignalEqualsScan(btree->signal, scan->signal);
    EXPECT_LE(btree->stats.reg_updates, scan->stats.reg_updates);
  }
}

TEST_P(AccessMethodLayoutTest, McMethodEqualsScanOnVariableQueries) {
  MarkovianStream stream = test::MakeBandedStream(300, 20, 3);
  auto archived = ArchiveWithIndexes(scratch_, "s", stream, GetParam());
  for (auto [a, b] : std::vector<std::pair<uint32_t, uint32_t>>{
           {2, 17}, {10, 12}, {0, 19}}) {
    RegularQuery query = VariableQuery(a, b);
    auto scan = RunScanMethod(archived.get(), query);
    auto mc = RunMcMethod(archived.get(), query);
    ASSERT_TRUE(scan.ok());
    ASSERT_TRUE(mc.ok()) << mc.status().ToString();
    ExpectSignalEqualsScan(mc->signal, scan->signal);
    EXPECT_LT(mc->stats.reg_updates, scan->stats.reg_updates);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, AccessMethodLayoutTest,
                         ::testing::Values(DiskLayout::kSeparated,
                                           DiskLayout::kCoClustered),
                         [](const auto& info) {
                           return info.param == DiskLayout::kSeparated
                                      ? "Separated"
                                      : "CoClustered";
                         });

class AccessMethodTest : public ::testing::Test {
 protected:
  AccessMethodTest() : scratch_("access_methods_single") {}
  test::ScratchDir scratch_;
};

TEST_F(AccessMethodTest, McMethodHandlesFixedQueriesToo) {
  MarkovianStream stream = test::MakeBandedStream(200, 16, 4);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  RegularQuery query = FixedQuery(7, 8);
  auto scan = RunScanMethod(archived.get(), query);
  auto mc = RunMcMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(mc.ok());
  ExpectSignalEqualsScan(mc->signal, scan->signal);
}

TEST_F(AccessMethodTest, McMethodHandlesPositiveLoops) {
  MarkovianStream stream = test::MakeBandedStream(200, 12, 5);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  // Q(s2, (s3*, s4)): positive (non-negated) loop; the loop predicate's
  // support joins the cursor set so skipping stays exact.
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 2, "s2")});
  links.push_back(QueryLink{Predicate::Equality(0, 3, "s3"),
                            Predicate::Equality(0, 4, "s4")});
  RegularQuery query("posloop", links);
  auto scan = RunScanMethod(archived.get(), query);
  auto mc = RunMcMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(mc.ok());
  ExpectSignalEqualsScan(mc->signal, scan->signal);
}

TEST_F(AccessMethodTest, ThreeLinkQueriesAgree) {
  MarkovianStream stream = test::MakeBandedStream(300, 16, 6);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  RegularQuery query = RegularQuery::Sequence(
      "three", {Predicate::Equality(0, 5, "s5"),
                Predicate::Equality(0, 6, "s6"),
                Predicate::Equality(0, 7, "s7")});
  auto scan = RunScanMethod(archived.get(), query);
  auto btree = RunBTreeMethod(archived.get(), query);
  auto mc = RunMcMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(btree.ok());
  ASSERT_TRUE(mc.ok());
  ExpectSignalEqualsScan(btree->signal, scan->signal);
  ExpectSignalEqualsScan(mc->signal, scan->signal);
}

TEST_F(AccessMethodTest, SetPredicatesAgree) {
  MarkovianStream stream = test::MakeBandedStream(250, 16, 7);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  RegularQuery query = RegularQuery::Sequence(
      "set", {Predicate::In(0, {2, 3, 4}, "low"),
              Predicate::In(0, {5, 6}, "mid")});
  auto scan = RunScanMethod(archived.get(), query);
  auto btree = RunBTreeMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(btree.ok());
  ExpectSignalEqualsScan(btree->signal, scan->signal);
}

TEST_F(AccessMethodTest, RangePredicatesAgree) {
  MarkovianStream stream = test::MakeBandedStream(250, 16, 8);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  RegularQuery query = RegularQuery::Sequence(
      "range", {Predicate::Range(0, 2, 5, "r25"),
                Predicate::Range(0, 6, 9, "r69")});
  auto scan = RunScanMethod(archived.get(), query);
  auto btree = RunBTreeMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(btree.ok());
  ExpectSignalEqualsScan(btree->signal, scan->signal);
}

TEST_F(AccessMethodTest, UnindexedLinkRelaxesIntersection) {
  MarkovianStream stream = test::MakeBandedStream(200, 16, 9);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  // Middle link is a negation (not indexable): the B+Tree method must
  // still be exact using cursors on the outer links only.
  RegularQuery query(
      "neg", {QueryLink{std::nullopt, Predicate::Equality(0, 4, "s4")},
              QueryLink{std::nullopt,
                        Predicate::Not(Predicate::Equality(0, 0, "s0"))},
              QueryLink{std::nullopt, Predicate::Equality(0, 6, "s6")}});
  auto scan = RunScanMethod(archived.get(), query);
  auto btree = RunBTreeMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(btree.ok());
  ExpectSignalEqualsScan(btree->signal, scan->signal);
}

TEST_F(AccessMethodTest, BTreeMethodRejectsVariableQueries) {
  MarkovianStream stream = test::MakeBandedStream(50, 8, 10);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  auto result = RunBTreeMethod(archived.get(), VariableQuery(1, 2));
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AccessMethodTest, SemiIndependentExactWhenNoGaps) {
  // Dense stream: every timestep relevant to the (single-value) predicates,
  // so the semi-independent method never takes the independent branch.
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b"});
  MarkovianStream stream(schema);
  Rng rng(11);
  Distribution current = Distribution::FromPairs({{0, 0.5}, {1, 0.5}});
  stream.Append(current, Cpt());
  for (int t = 1; t < 60; ++t) {
    Cpt cpt;
    for (const Distribution::Entry& e : current.entries()) {
      double p = 0.2 + 0.6 * rng.NextDouble();
      cpt.SetRow(e.value, {{0, p}, {1, 1.0 - p}});
    }
    current = cpt.Propagate(current);
    stream.Append(current, std::move(cpt));
  }
  auto archived =
      ArchiveWithIndexes(scratch_, "dense", stream, DiskLayout::kSeparated);
  RegularQuery query = VariableQuery(0, 1);
  auto scan = RunScanMethod(archived.get(), query);
  auto semi = RunSemiIndependentMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(semi.ok());
  ExpectSignalEqualsScan(semi->signal, scan->signal);
}

TEST_F(AccessMethodTest, SemiIndependentApproximatesAcrossGaps) {
  MarkovianStream stream = test::MakeBandedStream(300, 20, 12);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  RegularQuery query = VariableQuery(2, 17);
  auto scan = RunScanMethod(archived.get(), query);
  auto semi = RunSemiIndependentMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(semi.ok());
  // Approximate: probabilities stay in [0, 1] and the signal is reported
  // at the same relevant timesteps as the exact MC method.
  auto mc = RunMcMethod(archived.get(), query);
  ASSERT_TRUE(mc.ok());
  ASSERT_EQ(semi->signal.size(), mc->signal.size());
  for (size_t i = 0; i < semi->signal.size(); ++i) {
    EXPECT_EQ(semi->signal[i].time, mc->signal[i].time);
    EXPECT_GE(semi->signal[i].prob, -1e-12);
    EXPECT_LE(semi->signal[i].prob, 1.0 + 1e-9);
  }
}

TEST_F(AccessMethodTest, SnippetWorkloadEndToEndAgreement) {
  SnippetStreamSpec spec;
  spec.num_snippets = 20;
  spec.density = 0.5;
  spec.match_rate = 0.5;
  spec.seed = 13;
  auto workload = MakeSnippetStream(spec);
  ASSERT_TRUE(workload.ok());
  auto archived = ArchiveWithIndexes(scratch_, "rfid", workload->stream,
                                     DiskLayout::kSeparated);

  RegularQuery fixed = workload->EnteredRoomFixed();
  auto scan_f = RunScanMethod(archived.get(), fixed);
  auto btree = RunBTreeMethod(archived.get(), fixed);
  ASSERT_TRUE(scan_f.ok());
  ASSERT_TRUE(btree.ok());
  ExpectSignalEqualsScan(btree->signal, scan_f->signal, 1e-7);

  RegularQuery variable = workload->EnteredRoomVariable();
  auto scan_v = RunScanMethod(archived.get(), variable);
  auto mc = RunMcMethod(archived.get(), variable);
  ASSERT_TRUE(scan_v.ok());
  ASSERT_TRUE(mc.ok());
  ExpectSignalEqualsScan(mc->signal, scan_v->signal, 1e-7);

  // And the index methods do real pruning on this sparse workload.
  EXPECT_LT(btree->stats.reg_updates, scan_f->stats.reg_updates / 2);
  EXPECT_LT(mc->stats.reg_updates, scan_v->stats.reg_updates / 2);
}

TEST_F(AccessMethodTest, StatsArePopulated) {
  MarkovianStream stream = test::MakeBandedStream(200, 16, 14);
  auto archived =
      ArchiveWithIndexes(scratch_, "s", stream, DiskLayout::kSeparated);
  RegularQuery query = VariableQuery(2, 13);
  auto mc = RunMcMethod(archived.get(), query);
  ASSERT_TRUE(mc.ok());
  EXPECT_GT(mc->stats.relevant_timesteps, 0u);
  EXPECT_GT(mc->stats.reg_updates, 0u);
  EXPECT_GE(mc->stats.elapsed_seconds, 0.0);
  EXPECT_GT(mc->stats.index_io.fetches, 0u);
}

}  // namespace
}  // namespace caldera
