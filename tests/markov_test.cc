#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/encoding.h"
#include "common/rng.h"
#include "markov/cpt.h"
#include "markov/distribution.h"
#include "markov/schema.h"
#include "markov/stream.h"
#include "test_util.h"

namespace caldera {
namespace {

TEST(DistributionTest, FromPairsSortsAndMerges) {
  Distribution d = Distribution::FromPairs({{5, 0.2}, {1, 0.3}, {5, 0.1}});
  ASSERT_EQ(d.support_size(), 2u);
  EXPECT_EQ(d.entries()[0].value, 1u);
  EXPECT_DOUBLE_EQ(d.entries()[0].prob, 0.3);
  EXPECT_EQ(d.entries()[1].value, 5u);
  EXPECT_DOUBLE_EQ(d.entries()[1].prob, 0.30000000000000004);
}

TEST(DistributionTest, ProbabilityOfAndMass) {
  Distribution d = Distribution::FromPairs({{0, 0.5}, {3, 0.25}, {9, 0.25}});
  EXPECT_DOUBLE_EQ(d.ProbabilityOf(0), 0.5);
  EXPECT_DOUBLE_EQ(d.ProbabilityOf(3), 0.25);
  EXPECT_DOUBLE_EQ(d.ProbabilityOf(1), 0.0);
  EXPECT_DOUBLE_EQ(d.Mass(), 1.0);
  EXPECT_TRUE(d.IsNormalized());
}

TEST(DistributionTest, FromDenseDropsZeros) {
  Distribution d = Distribution::FromDense({0.0, 0.5, 0.0, 0.5});
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_DOUBLE_EQ(d.ProbabilityOf(1), 0.5);
  EXPECT_DOUBLE_EQ(d.ProbabilityOf(3), 0.5);
}

TEST(DistributionTest, NormalizeAndTruncate) {
  Distribution d = Distribution::FromPairs({{0, 2.0}, {1, 1.0}, {2, 0.001}});
  d.Normalize();
  EXPECT_TRUE(d.IsNormalized());
  d.Truncate(0.01);
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_TRUE(d.IsNormalized());
  EXPECT_NEAR(d.ProbabilityOf(0), 2.0 / 3.0, 1e-9);
}

TEST(DistributionTest, AddKeepsOrder) {
  Distribution d;
  d.Add(5, 0.5);
  d.Add(1, 0.2);
  d.Add(5, 0.1);
  d.Add(3, 0.2);
  ASSERT_EQ(d.support_size(), 3u);
  EXPECT_EQ(d.entries()[0].value, 1u);
  EXPECT_EQ(d.entries()[1].value, 3u);
  EXPECT_EQ(d.entries()[2].value, 5u);
  EXPECT_NEAR(d.ProbabilityOf(5), 0.6, 1e-12);
}

TEST(DistributionTest, MassWhere) {
  Distribution d = Distribution::FromPairs({{0, 0.1}, {1, 0.2}, {2, 0.7}});
  EXPECT_DOUBLE_EQ(d.MassWhere([](ValueId v) { return v >= 1; }), 0.9);
  EXPECT_DOUBLE_EQ(d.MassWhere([](ValueId v) { return v == 42; }), 0.0);
}

TEST(DistributionTest, SerializationRoundTrip) {
  Distribution d = Distribution::FromPairs({{0, 0.125}, {7, 0.5}, {9, 0.375}});
  std::string buf;
  d.AppendTo(&buf);
  size_t offset = 0;
  auto parsed = Distribution::Parse(buf, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, d);
  EXPECT_EQ(offset, buf.size());
}

TEST(DistributionTest, ParseRejectsTruncation) {
  Distribution d = Distribution::FromPairs({{1, 1.0}});
  std::string buf;
  d.AppendTo(&buf);
  buf.resize(buf.size() - 1);
  size_t offset = 0;
  EXPECT_FALSE(Distribution::Parse(buf, &offset).ok());
}

TEST(DistributionTest, ParseRejectsUnsortedEntries) {
  std::string buf;
  PutFixed32(2, &buf);
  PutFixed32(5, &buf);
  PutDouble(0.5, &buf);
  PutFixed32(3, &buf);  // Out of order.
  PutDouble(0.5, &buf);
  size_t offset = 0;
  EXPECT_EQ(Distribution::Parse(buf, &offset).status().code(),
            StatusCode::kCorruption);
}

TEST(CptTest, SetRowFindRowProbability) {
  Cpt cpt;
  cpt.SetRow(3, {{1, 0.25}, {0, 0.75}});
  cpt.SetRow(1, {{1, 1.0}});
  ASSERT_NE(cpt.FindRow(3), nullptr);
  EXPECT_EQ(cpt.FindRow(2), nullptr);
  EXPECT_DOUBLE_EQ(cpt.Probability(3, 0), 0.75);
  EXPECT_DOUBLE_EQ(cpt.Probability(3, 1), 0.25);
  EXPECT_DOUBLE_EQ(cpt.Probability(3, 2), 0.0);
  EXPECT_DOUBLE_EQ(cpt.Probability(9, 0), 0.0);
  EXPECT_EQ(cpt.nnz(), 3u);
}

TEST(CptTest, PropagateMatchesHandComputation) {
  // The paper's wall example: Bob in O1 or O2 with prob 0.5 each; no move
  // from O1 to O2 is possible.
  Cpt cpt;
  cpt.SetRow(0, {{0, 1.0}});           // O1 stays in O1.
  cpt.SetRow(1, {{0, 0.5}, {1, 0.5}}); // O2 may move to O1.
  Distribution in = Distribution::FromPairs({{0, 0.5}, {1, 0.5}});
  Distribution out = cpt.Propagate(in);
  EXPECT_DOUBLE_EQ(out.ProbabilityOf(0), 0.75);
  EXPECT_DOUBLE_EQ(out.ProbabilityOf(1), 0.25);
  // With correlations, P(O1 then O2) = 0.5 * 0 = 0, not 0.25.
  EXPECT_DOUBLE_EQ(cpt.Probability(0, 1), 0.0);
}

TEST(CptTest, PropagateDropsUnsupportedSources) {
  Cpt cpt;
  cpt.SetRow(0, {{0, 1.0}});
  Distribution in = Distribution::FromPairs({{0, 0.5}, {1, 0.5}});
  Distribution out = cpt.Propagate(in);
  EXPECT_DOUBLE_EQ(out.Mass(), 0.5);
}

TEST(CptTest, ValidateStochastic) {
  Cpt good;
  good.SetRow(0, {{0, 0.5}, {1, 0.5}});
  EXPECT_TRUE(good.ValidateStochastic().ok());
  Cpt bad;
  bad.SetRow(0, {{0, 0.5}, {1, 0.4}});
  EXPECT_EQ(bad.ValidateStochastic().code(), StatusCode::kCorruption);
  Cpt negative;
  negative.SetRow(0, {{0, 1.5}, {1, -0.5}});
  EXPECT_EQ(negative.ValidateStochastic().code(), StatusCode::kCorruption);
}

TEST(CptTest, SerializationRoundTrip) {
  Cpt cpt;
  cpt.SetRow(2, {{0, 0.25}, {5, 0.75}});
  cpt.SetRow(7, {{7, 1.0}});
  std::string buf;
  cpt.AppendTo(&buf);
  size_t offset = 0;
  auto parsed = Cpt::Parse(buf, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, cpt);
  EXPECT_EQ(offset, buf.size());
}

TEST(CptTest, ComposeMatchesMatrixProduct) {
  // Random 6x6 stochastic matrices; compare sparse composition against a
  // dense reference product.
  const uint32_t n = 6;
  Rng rng(77);
  auto random_cpt = [&](Cpt* cpt, std::vector<std::vector<double>>* dense) {
    dense->assign(n, std::vector<double>(n, 0.0));
    for (uint32_t i = 0; i < n; ++i) {
      double sum = 0;
      std::vector<Cpt::RowEntry> row;
      for (uint32_t j = 0; j < n; ++j) {
        if (rng.NextBool(0.4)) {
          double v = rng.NextDouble() + 0.01;
          (*dense)[i][j] = v;
          sum += v;
        }
      }
      if (sum == 0) {
        (*dense)[i][i] = 1.0;
        sum = 1.0;
      }
      for (uint32_t j = 0; j < n; ++j) {
        (*dense)[i][j] /= sum;
        if ((*dense)[i][j] > 0) row.push_back({j, (*dense)[i][j]});
      }
      cpt->SetRow(i, std::move(row));
    }
  };
  Cpt a, b;
  std::vector<std::vector<double>> da, db;
  random_cpt(&a, &da);
  random_cpt(&b, &db);
  Cpt ab = ComposeCpts(a, b, n);
  EXPECT_TRUE(ab.ValidateStochastic(1e-9).ok());
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      double expected = 0;
      for (uint32_t k = 0; k < n; ++k) expected += da[i][k] * db[k][j];
      EXPECT_NEAR(ab.Probability(i, j), expected, 1e-12);
    }
  }
}

TEST(CptTest, ComposeIsAssociative) {
  const uint32_t n = 5;
  Rng rng(99);
  auto random_cpt = [&] {
    Cpt cpt;
    for (uint32_t i = 0; i < n; ++i) {
      std::vector<Cpt::RowEntry> row;
      double sum = 0;
      for (uint32_t j = 0; j < n; ++j) {
        double v = rng.NextDouble();
        row.push_back({j, v});
        sum += v;
      }
      for (auto& e : row) e.prob /= sum;
      cpt.SetRow(i, std::move(row));
    }
    return cpt;
  };
  Cpt a = random_cpt(), b = random_cpt(), c = random_cpt();
  Cpt left = ComposeCpts(ComposeCpts(a, b, n), c, n);
  Cpt right = ComposeCpts(a, ComposeCpts(b, c, n), n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      EXPECT_NEAR(left.Probability(i, j), right.Probability(i, j), 1e-12);
    }
  }
}

TEST(CptTest, IdentityCptIsNeutral) {
  Cpt id = IdentityCpt({0, 1, 2, 3});
  Cpt a;
  a.SetRow(0, {{1, 0.5}, {2, 0.5}});
  a.SetRow(1, {{1, 1.0}});
  a.SetRow(2, {{3, 1.0}});
  a.SetRow(3, {{0, 1.0}});
  Cpt left = ComposeCpts(id, a, 4);
  Cpt right = ComposeCpts(a, id, 4);
  EXPECT_EQ(left, a);
  EXPECT_EQ(right, a);
}

TEST(CptTest, ConditionDestinationKeepsOnlyMatches) {
  Cpt a;
  a.SetRow(0, {{0, 0.3}, {1, 0.3}, {2, 0.4}});
  a.SetRow(1, {{2, 1.0}});
  Cpt conditioned = a.ConditionDestination([](ValueId v) { return v != 2; });
  EXPECT_DOUBLE_EQ(conditioned.Probability(0, 0), 0.3);
  EXPECT_DOUBLE_EQ(conditioned.Probability(0, 2), 0.0);
  EXPECT_EQ(conditioned.FindRow(1), nullptr);
}

TEST(SchemaTest, SingleAttribute) {
  StreamSchema schema = SingleAttributeSchema("loc", {"A", "B", "C"});
  EXPECT_EQ(schema.num_attributes(), 1u);
  EXPECT_EQ(schema.state_count(), 3u);
  EXPECT_EQ(schema.AttributeValue(2, 0), 2u);
  EXPECT_EQ(schema.StateLabel(1), "loc=B");
  auto idx = schema.AttributeIndex("loc");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0u);
  auto v = schema.ValueOf(0, "C");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2u);
  EXPECT_FALSE(schema.ValueOf(0, "Z").ok());
}

TEST(SchemaTest, MultiAttributeMixedRadix) {
  StreamSchema schema;
  schema.AddAttribute("loc", {"A", "B", "C"});
  schema.AddAttribute("state", {"idle", "busy"});
  EXPECT_EQ(schema.state_count(), 6u);
  for (uint32_t loc = 0; loc < 3; ++loc) {
    for (uint32_t st = 0; st < 2; ++st) {
      ValueId encoded = schema.EncodeState({loc, st});
      EXPECT_LT(encoded, 6u);
      EXPECT_EQ(schema.AttributeValue(encoded, 0), loc);
      EXPECT_EQ(schema.AttributeValue(encoded, 1), st);
    }
  }
  EXPECT_EQ(schema.StateLabel(schema.EncodeState({2, 1})),
            "loc=C,state=busy");
}

TEST(SchemaTest, SerializationRoundTrip) {
  StreamSchema schema;
  schema.AddAttribute("loc", {"A", "B"});
  schema.AddAttribute("mode", {"x", "y", "z"});
  std::string buf;
  schema.AppendTo(&buf);
  size_t offset = 0;
  auto parsed = StreamSchema::Parse(buf, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, schema);
}

using test::MakeValidStream;

TEST(StreamTest, ValidStreamValidates) {
  MarkovianStream stream = MakeValidStream(50, 8, 3);
  EXPECT_TRUE(stream.Validate().ok());
  EXPECT_EQ(stream.length(), 50u);
}

TEST(StreamTest, ValidateCatchesInconsistentMarginal) {
  MarkovianStream stream = MakeValidStream(10, 4, 5);
  *stream.mutable_marginal(5) = Distribution::Point(0);
  EXPECT_EQ(stream.Validate().code(), StatusCode::kCorruption);
}

TEST(StreamTest, ValidateCatchesNonStochasticCpt) {
  MarkovianStream stream = MakeValidStream(10, 4, 6);
  Cpt* cpt = stream.mutable_transition(3);
  Cpt broken;
  for (const Cpt::Row& row : cpt->rows()) {
    std::vector<Cpt::RowEntry> entries = row.entries;
    for (auto& e : entries) e.prob *= 0.5;
    broken.SetRow(row.src, std::move(entries));
  }
  *cpt = broken;
  EXPECT_EQ(stream.Validate().code(), StatusCode::kCorruption);
}

TEST(StreamTest, ValidateCatchesMissingRow) {
  MarkovianStream stream = MakeValidStream(10, 4, 7);
  *stream.mutable_transition(4) = Cpt();  // No rows at all.
  EXPECT_EQ(stream.Validate().code(), StatusCode::kCorruption);
}

TEST(StreamTest, RelabelValuesPreservesValidity) {
  MarkovianStream stream = MakeValidStream(30, 6, 8);
  std::vector<double> before;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    before.push_back(stream.marginal(t).ProbabilityOf(2));
  }
  std::vector<ValueId> perm = {0, 1, 5, 3, 4, 2};  // Swap 2 <-> 5.
  stream.RelabelValues(perm);
  EXPECT_TRUE(stream.Validate().ok());
  for (uint64_t t = 0; t < stream.length(); ++t) {
    EXPECT_DOUBLE_EQ(stream.marginal(t).ProbabilityOf(5), before[t]);
  }
}

TEST(StreamTest, ConcatenateWithBridge) {
  MarkovianStream a = MakeValidStream(20, 5, 10);
  MarkovianStream b = MakeValidStream(15, 5, 11);
  // Independence bridge.
  Cpt bridge;
  std::vector<Cpt::RowEntry> to;
  for (const Distribution::Entry& e : b.marginal(0).entries()) {
    to.push_back({e.value, e.prob});
  }
  for (const Distribution::Entry& e : a.marginal(19).entries()) {
    bridge.SetRow(e.value, to);
  }
  ASSERT_TRUE(a.Concatenate(b, bridge).ok());
  EXPECT_EQ(a.length(), 35u);
  EXPECT_TRUE(a.Validate().ok());
}

TEST(StreamTest, ConcatenateRejectsMissingBridgeRow) {
  MarkovianStream a = MakeValidStream(5, 4, 12);
  MarkovianStream b = MakeValidStream(5, 4, 13);
  EXPECT_EQ(a.Concatenate(b, Cpt()).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace caldera
