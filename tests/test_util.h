#ifndef CALDERA_TESTS_TEST_UTIL_H_
#define CALDERA_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "markov/stream.h"
#include "markov/synthetic.h"

namespace caldera {
namespace test {

/// Library synthetic generators re-exported under their historic test
/// names.
inline MarkovianStream MakeValidStream(uint64_t length, uint32_t domain,
                                       uint64_t seed,
                                       double edge_prob = 0.5) {
  return MakeRandomStream(length, domain, seed, edge_prob);
}

inline MarkovianStream MakeBandedStream(uint64_t length, uint32_t domain,
                                        uint64_t seed) {
  return MakeBandedRandomWalkStream(length, domain, seed);
}

/// RAII scratch directory under the system temp dir. The path includes the
/// process id: ctest -j runs test cases of one binary as concurrent
/// processes, and fixtures reuse one tag per suite, so a fixed path would
/// race.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("caldera_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }

  std::string Path(const std::string& name) const {
    return (path_ / name).string();
  }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace test
}  // namespace caldera

#endif  // CALDERA_TESTS_TEST_UTIL_H_
