#include <gtest/gtest.h>

#include <algorithm>

#include "caldera/archive.h"
#include "caldera/scan_method.h"
#include "caldera/topk_method.h"
#include "common/logging.h"
#include "rfid/workload.h"
#include "test_util.h"

namespace caldera {
namespace {

std::unique_ptr<ArchivedStream> ArchiveWithIndexes(
    const test::ScratchDir& scratch, const MarkovianStream& stream,
    const std::string& name = "s") {
  StreamArchive archive(scratch.Path("archive"));
  CALDERA_CHECK_OK(archive.CreateStream(name, stream, DiskLayout::kSeparated));
  CALDERA_CHECK_OK(archive.BuildBtc(name, 0));
  CALDERA_CHECK_OK(archive.BuildBtp(name, 0));
  auto opened = archive.OpenStream(name);
  CALDERA_CHECK_OK(opened.status());
  return std::move(*opened);
}

RegularQuery FixedQuery(uint32_t a, uint32_t b) {
  return RegularQuery::Sequence(
      "fixed", {Predicate::Equality(0, a, "s" + std::to_string(a)),
                Predicate::Equality(0, b, "s" + std::to_string(b))});
}

// Reference top-k from the scan signal (positive entries only).
QuerySignal ReferenceTopK(const QuerySignal& scan, size_t k) {
  QuerySignal positive;
  for (const TimestepProbability& e : scan) {
    if (e.prob > 0) positive.push_back(e);
  }
  std::sort(positive.begin(), positive.end(),
            [](const TimestepProbability& a, const TimestepProbability& b) {
              if (a.prob != b.prob) return a.prob > b.prob;
              return a.time < b.time;
            });
  if (positive.size() > k) positive.resize(k);
  return positive;
}

void ExpectTopKEquals(const QuerySignal& actual, const QuerySignal& expected,
                      double tol = 1e-9) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    // Probabilities must match rank by rank; times may differ only between
    // entries with (numerically) identical probabilities.
    EXPECT_NEAR(actual[i].prob, expected[i].prob, tol) << "rank " << i;
  }
}

class TopKTest : public ::testing::Test {
 protected:
  TopKTest() : scratch_("topk_test") {}
  test::ScratchDir scratch_;
};

TEST_F(TopKTest, MatchesScanTopKAcrossSeedsAndK) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    MarkovianStream stream = test::MakeBandedStream(300, 16, seed);
    auto archived =
        ArchiveWithIndexes(scratch_, stream, "s" + std::to_string(seed));
    RegularQuery query = FixedQuery(6, 7);
    auto scan = RunScanMethod(archived.get(), query);
    ASSERT_TRUE(scan.ok());
    for (size_t k : {1u, 3u, 10u}) {
      auto topk = RunTopKMethod(archived.get(), query, k);
      ASSERT_TRUE(topk.ok()) << topk.status().ToString();
      ExpectTopKEquals(topk->signal, ReferenceTopK(scan->signal, k));
    }
  }
}

TEST_F(TopKTest, KLargerThanMatchCountReturnsAll) {
  MarkovianStream stream = test::MakeBandedStream(150, 16, 4);
  auto archived = ArchiveWithIndexes(scratch_, stream);
  RegularQuery query = FixedQuery(2, 3);
  auto scan = RunScanMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  auto topk = RunTopKMethod(archived.get(), query, 100000);
  ASSERT_TRUE(topk.ok());
  ExpectTopKEquals(topk->signal, ReferenceTopK(scan->signal, 100000));
}

TEST_F(TopKTest, SetPredicateTopK) {
  MarkovianStream stream = test::MakeBandedStream(250, 16, 5);
  auto archived = ArchiveWithIndexes(scratch_, stream);
  RegularQuery query = RegularQuery::Sequence(
      "set", {Predicate::In(0, {4, 5}, "a"), Predicate::In(0, {6, 7}, "b")});
  auto scan = RunScanMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  auto topk = RunTopKMethod(archived.get(), query, 5);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ExpectTopKEquals(topk->signal, ReferenceTopK(scan->signal, 5));
}

TEST_F(TopKTest, ThreeLinkTopK) {
  MarkovianStream stream = test::MakeBandedStream(300, 12, 6);
  auto archived = ArchiveWithIndexes(scratch_, stream);
  RegularQuery query = RegularQuery::Sequence(
      "three",
      {Predicate::Equality(0, 4, "s4"), Predicate::Equality(0, 5, "s5"),
       Predicate::Equality(0, 6, "s6")});
  auto scan = RunScanMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  auto topk = RunTopKMethod(archived.get(), query, 3);
  ASSERT_TRUE(topk.ok());
  ExpectTopKEquals(topk->signal, ReferenceTopK(scan->signal, 3));
}

TEST_F(TopKTest, PrunesOnPeakySignals) {
  // Snippet workload with matches: the top-1 search must terminate without
  // evaluating every candidate interval.
  SnippetStreamSpec spec;
  spec.num_snippets = 40;
  spec.density = 1.0;
  spec.match_rate = 1.0;
  spec.seed = 7;
  auto workload = MakeSnippetStream(spec);
  ASSERT_TRUE(workload.ok());
  auto archived = ArchiveWithIndexes(scratch_, workload->stream);
  RegularQuery query = workload->EnteredRoomFixed();

  auto scan = RunScanMethod(archived.get(), query);
  ASSERT_TRUE(scan.ok());
  auto topk = RunTopKMethod(archived.get(), query, 1);
  ASSERT_TRUE(topk.ok());
  ExpectTopKEquals(topk->signal, ReferenceTopK(scan->signal, 1), 1e-7);

  // Candidate count strictly below the total number of index entries (each
  // entry of either link's cursor can spawn one candidate): the threshold
  // test cut the walk short.
  uint64_t total_entries = 0;
  for (uint64_t t = 0; t < workload->stream.length(); ++t) {
    if (workload->stream.marginal(t).ProbabilityOf(workload->target_room) >
        0) {
      ++total_entries;
    }
    if (workload->stream.marginal(t).ProbabilityOf(workload->target_hall) >
        0) {
      ++total_entries;
    }
  }
  EXPECT_LT(topk->stats.relevant_timesteps + topk->stats.pruned_candidates,
            total_entries);
}

TEST_F(TopKTest, RejectsUnsupportedQueries) {
  MarkovianStream stream = test::MakeBandedStream(50, 8, 8);
  auto archived = ArchiveWithIndexes(scratch_, stream);
  // Variable-length.
  Predicate t = Predicate::Equality(0, 2, "s2");
  RegularQuery variable(
      "v", {QueryLink{std::nullopt, Predicate::Equality(0, 1, "s1")},
            QueryLink{Predicate::Not(t), t}});
  EXPECT_EQ(RunTopKMethod(archived.get(), variable, 1).status().code(),
            StatusCode::kFailedPrecondition);
  // Range predicate (unsupported by the top-k method, Section 3.4.1).
  RegularQuery range = RegularQuery::Sequence(
      "r", {Predicate::Range(0, 0, 3, "r"), Predicate::Equality(0, 5, "s5")});
  EXPECT_EQ(RunTopKMethod(archived.get(), range, 1).status().code(),
            StatusCode::kFailedPrecondition);
  // k = 0.
  EXPECT_EQ(RunTopKMethod(archived.get(), FixedQuery(1, 2), 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TopKTest, WorksWhenNoMatchExists) {
  SnippetStreamSpec spec;
  spec.num_snippets = 10;
  spec.density = 0.0;  // Target room never supported.
  spec.seed = 9;
  auto workload = MakeSnippetStream(spec);
  ASSERT_TRUE(workload.ok());
  auto archived = ArchiveWithIndexes(scratch_, workload->stream);
  auto topk =
      RunTopKMethod(archived.get(), workload->EnteredRoomFixed(), 5);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  EXPECT_TRUE(topk->signal.empty());
}

}  // namespace
}  // namespace caldera
