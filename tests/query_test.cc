#include <gtest/gtest.h>

#include "query/nfa.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "query/regular_query.h"

namespace caldera {
namespace {

StreamSchema TestSchema() {
  return SingleAttributeSchema(
      "loc", {"H0", "H1", "H2", "Office", "Coffee", "Lounge"});
}

TEST(PredicateTest, EqualityMatches) {
  StreamSchema schema = TestSchema();
  Predicate p = Predicate::Equality(0, 3, "Office");
  EXPECT_TRUE(p.Matches(schema, 3));
  EXPECT_FALSE(p.Matches(schema, 4));
  EXPECT_TRUE(p.indexable());
  EXPECT_EQ(p.MatchedAttributeValues(schema), std::vector<uint32_t>{3});
  EXPECT_TRUE(p.ValidateAgainst(schema).ok());
}

TEST(PredicateTest, SetMatchesAndDedups) {
  StreamSchema schema = TestSchema();
  Predicate p = Predicate::In(0, {4, 1, 4}, "pair");
  EXPECT_TRUE(p.Matches(schema, 1));
  EXPECT_TRUE(p.Matches(schema, 4));
  EXPECT_FALSE(p.Matches(schema, 0));
  EXPECT_EQ(p.MatchedAttributeValues(schema),
            (std::vector<uint32_t>{1, 4}));
}

TEST(PredicateTest, RangeMatches) {
  StreamSchema schema = TestSchema();
  Predicate p = Predicate::Range(0, 1, 3, "range");
  EXPECT_FALSE(p.Matches(schema, 0));
  EXPECT_TRUE(p.Matches(schema, 1));
  EXPECT_TRUE(p.Matches(schema, 3));
  EXPECT_FALSE(p.Matches(schema, 4));
  EXPECT_EQ(p.MatchedAttributeValues(schema),
            (std::vector<uint32_t>{1, 2, 3}));
}

TEST(PredicateTest, NegationInvertsAndExposesBase) {
  StreamSchema schema = TestSchema();
  Predicate p = Predicate::Not(Predicate::Equality(0, 4, "Coffee"));
  EXPECT_TRUE(p.is_negation());
  EXPECT_FALSE(p.indexable());
  EXPECT_FALSE(p.Matches(schema, 4));
  EXPECT_TRUE(p.Matches(schema, 0));
  EXPECT_EQ(p.name(), "!Coffee");
  EXPECT_EQ(p.base().name(), "Coffee");
}

TEST(PredicateTest, AnyMatchesEverything) {
  StreamSchema schema = TestSchema();
  Predicate p = Predicate::Any();
  for (ValueId v = 0; v < schema.state_count(); ++v) {
    EXPECT_TRUE(p.Matches(schema, v));
  }
  EXPECT_FALSE(p.indexable());
}

TEST(PredicateTest, ValidationCatchesBadValues) {
  StreamSchema schema = TestSchema();
  EXPECT_FALSE(
      Predicate::Equality(0, 99, "bogus").ValidateAgainst(schema).ok());
  EXPECT_FALSE(Predicate::Equality(3, 0, "bogus").ValidateAgainst(schema).ok());
  EXPECT_FALSE(Predicate::Range(0, 4, 2, "empty").ValidateAgainst(schema).ok());
  EXPECT_FALSE(
      Predicate::In(0, {}, "empty").ValidateAgainst(schema).ok());
}

TEST(PredicateTest, MultiAttributePredicates) {
  StreamSchema schema;
  schema.AddAttribute("loc", {"A", "B", "C"});
  schema.AddAttribute("mode", {"idle", "busy"});
  Predicate on_b = Predicate::Equality(0, 1, "B");
  Predicate busy = Predicate::Equality(1, 1, "busy");
  ValueId b_busy = schema.EncodeState({1, 1});
  ValueId b_idle = schema.EncodeState({1, 0});
  ValueId c_busy = schema.EncodeState({2, 1});
  EXPECT_TRUE(on_b.Matches(schema, b_busy));
  EXPECT_TRUE(on_b.Matches(schema, b_idle));
  EXPECT_FALSE(on_b.Matches(schema, c_busy));
  EXPECT_TRUE(busy.Matches(schema, b_busy));
  EXPECT_FALSE(busy.Matches(schema, b_idle));
  EXPECT_TRUE(busy.Matches(schema, c_busy));
}

TEST(DimensionTableTest, LookupAndPredicate) {
  DimensionTable table("LocationType", 0);
  table.AddColumn("type", {"Corridor", "Corridor", "Corridor", "Office",
                           "CoffeeRoom", "Lounge"});
  auto ids = table.Lookup("type", "Corridor");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<uint32_t>{0, 1, 2}));
  auto pred = table.MakePredicate("type", "CoffeeRoom");
  ASSERT_TRUE(pred.ok());
  StreamSchema schema = TestSchema();
  EXPECT_TRUE(pred->Matches(schema, 4));
  EXPECT_FALSE(pred->Matches(schema, 3));
  EXPECT_FALSE(table.Lookup("bogus", "x").ok());
  auto missing = table.MakePredicate("type", "Pool");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto distinct = table.DistinctValues("type");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->size(), 4u);
}

TEST(RegularQueryTest, FixedVsVariableClassification) {
  StreamSchema schema = TestSchema();
  RegularQuery fixed = RegularQuery::Sequence(
      "f", {Predicate::Equality(0, 0, "H0"), Predicate::Equality(0, 3, "Office")});
  EXPECT_TRUE(fixed.fixed_length());
  EXPECT_FALSE(fixed.HasPositiveLoop());

  Predicate coffee = Predicate::Equality(0, 4, "Coffee");
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H0")});
  links.push_back(QueryLink{Predicate::Not(coffee), coffee});
  RegularQuery variable("v", links);
  EXPECT_FALSE(variable.fixed_length());
  EXPECT_FALSE(variable.HasPositiveLoop());

  links[1].loop = Predicate::Equality(0, 4, "Coffee");
  RegularQuery positive_loop("p", links);
  EXPECT_TRUE(positive_loop.HasPositiveLoop());
}

TEST(RegularQueryTest, CursorPredicatesUseBases) {
  Predicate coffee = Predicate::Equality(0, 4, "Coffee");
  Predicate hall = Predicate::Equality(0, 0, "H0");
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, hall});
  links.push_back(QueryLink{Predicate::Not(coffee), coffee});
  RegularQuery query("q", links);
  auto cursors = query.CursorPredicates();
  ASSERT_EQ(cursors.size(), 3u);
  EXPECT_EQ(cursors[0]->name(), "H0");
  EXPECT_EQ(cursors[1]->name(), "Coffee");  // Primary.
  EXPECT_EQ(cursors[2]->name(), "Coffee");  // Base of the negated loop.
}

TEST(RegularQueryTest, ValidateRejectsBadQueries) {
  StreamSchema schema = TestSchema();
  RegularQuery empty("e", {});
  EXPECT_FALSE(empty.ValidateAgainst(schema).ok());
  RegularQuery any_primary(
      "a", {QueryLink{std::nullopt, Predicate::Any()}});
  EXPECT_FALSE(any_primary.ValidateAgainst(schema).ok());
  RegularQuery bad_value = RegularQuery::Sequence(
      "b", {Predicate::Equality(0, 77, "bogus")});
  EXPECT_FALSE(bad_value.ValidateAgainst(schema).ok());
}

TEST(RegularQueryTest, ToStringMatchesPaperSyntax) {
  Predicate coffee = Predicate::Equality(0, 4, "Coffee");
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H0")});
  links.push_back(QueryLink{Predicate::Not(coffee), coffee});
  RegularQuery query("q", links);
  EXPECT_EQ(query.ToString(), "Q(H0, !Coffee*, Coffee)");
}

// ---------------------------------------------------------------------------
// QueryAutomaton
// ---------------------------------------------------------------------------

TEST(QueryAutomatonTest, FixedQueryAcceptsExactSequence) {
  StreamSchema schema = TestSchema();
  RegularQuery query = RegularQuery::Sequence(
      "f",
      {Predicate::Equality(0, 0, "H0"), Predicate::Equality(0, 3, "Office")});
  QueryAutomaton automaton(query, schema);

  int d = automaton.start_state();
  d = automaton.Transition(d, automaton.AtomOf(0));  // H0
  EXPECT_FALSE(automaton.IsAccepting(d));
  d = automaton.Transition(d, automaton.AtomOf(3));  // Office
  EXPECT_TRUE(automaton.IsAccepting(d));
  // Another Office does not re-accept without a preceding H0.
  d = automaton.Transition(d, automaton.AtomOf(3));
  EXPECT_FALSE(automaton.IsAccepting(d));
}

TEST(QueryAutomatonTest, RestartAllowsLaterMatches) {
  StreamSchema schema = TestSchema();
  RegularQuery query = RegularQuery::Sequence(
      "f",
      {Predicate::Equality(0, 0, "H0"), Predicate::Equality(0, 3, "Office")});
  QueryAutomaton automaton(query, schema);
  int d = automaton.start_state();
  for (ValueId v : {1u, 2u, 0u, 3u}) {  // noise, noise, H0, Office
    d = automaton.Transition(d, automaton.AtomOf(v));
  }
  EXPECT_TRUE(automaton.IsAccepting(d));
}

TEST(QueryAutomatonTest, KleeneWaitsThroughLoop) {
  StreamSchema schema = TestSchema();
  Predicate coffee = Predicate::Equality(0, 4, "Coffee");
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H0")});
  links.push_back(QueryLink{Predicate::Not(coffee), coffee});
  RegularQuery query("v", links);
  QueryAutomaton automaton(query, schema);
  int d = automaton.start_state();
  d = automaton.Transition(d, automaton.AtomOf(0));  // H0
  d = automaton.Transition(d, automaton.AtomOf(1));  // wander (!Coffee)
  d = automaton.Transition(d, automaton.AtomOf(2));  // wander (!Coffee)
  EXPECT_FALSE(automaton.IsAccepting(d));
  d = automaton.Transition(d, automaton.AtomOf(4));  // Coffee
  EXPECT_TRUE(automaton.IsAccepting(d));
}

TEST(QueryAutomatonTest, FixedLinkDiesWithoutAdvance) {
  StreamSchema schema = TestSchema();
  RegularQuery query = RegularQuery::Sequence(
      "f",
      {Predicate::Equality(0, 0, "H0"), Predicate::Equality(0, 3, "Office")});
  QueryAutomaton automaton(query, schema);
  int d = automaton.start_state();
  d = automaton.Transition(d, automaton.AtomOf(0));  // H0: state 1 live.
  d = automaton.Transition(d, automaton.AtomOf(1));  // H1: state 1 dies.
  d = automaton.Transition(d, automaton.AtomOf(3));  // Office alone: no match.
  EXPECT_FALSE(automaton.IsAccepting(d));
}

TEST(QueryAutomatonTest, NullAtomAndIdempotence) {
  StreamSchema schema = TestSchema();
  Predicate coffee = Predicate::Equality(0, 4, "Coffee");
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H0")});
  links.push_back(QueryLink{Predicate::Not(coffee), coffee});
  RegularQuery query("v", links);
  QueryAutomaton automaton(query, schema);

  // Null atom: negated loop bit set, positive primary bits clear.
  // A state matching neither H0 nor Coffee has exactly the null atom.
  EXPECT_EQ(automaton.AtomOf(1), automaton.null_atom());
  EXPECT_EQ(automaton.AtomOf(2), automaton.null_atom());
  EXPECT_NE(automaton.AtomOf(0), automaton.null_atom());
  EXPECT_NE(automaton.AtomOf(4), automaton.null_atom());

  // Idempotence of the null transition on every reachable state.
  for (int d = 0; d < automaton.num_dfa_states(); ++d) {
    int once = automaton.NullTransition(d);
    EXPECT_EQ(automaton.NullTransition(once), once);
  }
}

TEST(QueryAutomatonTest, PositiveLoopWaits) {
  StreamSchema schema = TestSchema();
  // Q(H0, (Office*, Coffee)): wait inside the office, then coffee.
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "H0")});
  links.push_back(
      QueryLink{Predicate::Equality(0, 3, "Office"),
                Predicate::Equality(0, 4, "Coffee")});
  RegularQuery query("p", links);
  QueryAutomaton automaton(query, schema);
  int d = automaton.start_state();
  d = automaton.Transition(d, automaton.AtomOf(0));  // H0.
  d = automaton.Transition(d, automaton.AtomOf(3));  // Office: waits.
  d = automaton.Transition(d, automaton.AtomOf(3));  // Office: waits.
  d = automaton.Transition(d, automaton.AtomOf(4));  // Coffee: accept.
  EXPECT_TRUE(automaton.IsAccepting(d));
  // But breaking the loop kills the wait.
  d = automaton.start_state();
  d = automaton.Transition(d, automaton.AtomOf(0));  // H0.
  d = automaton.Transition(d, automaton.AtomOf(1));  // H1: loop broken.
  d = automaton.Transition(d, automaton.AtomOf(4));  // Coffee: no match.
  EXPECT_FALSE(automaton.IsAccepting(d));
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesFixedQuery) {
  StreamSchema schema = TestSchema();
  SchemaResolver resolver(&schema);
  auto query = ParseQuery("Q(H0, Office)", resolver);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->num_links(), 2u);
  EXPECT_TRUE(query->fixed_length());
  EXPECT_EQ(query->link(0).primary.name(), "H0");
  EXPECT_EQ(query->link(1).primary.name(), "Office");
}

TEST(ParserTest, ParsesKleeneLink) {
  StreamSchema schema = TestSchema();
  SchemaResolver resolver(&schema);
  auto query = ParseQuery("Q(H0, (!Coffee*, Coffee))", resolver);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->num_links(), 2u);
  EXPECT_FALSE(query->fixed_length());
  ASSERT_TRUE(query->link(1).is_kleene());
  EXPECT_TRUE(query->link(1).loop->is_negation());
  EXPECT_EQ(query->ToString(), "Q(H0, !Coffee*, Coffee)");
}

TEST(ParserTest, ResolvesDimensionTableNames) {
  StreamSchema schema = TestSchema();
  DimensionTable table("LocationType", 0);
  table.AddColumn("type", {"Corridor", "Corridor", "Corridor", "Office",
                           "CoffeeRoom", "Lounge"});
  SchemaResolver resolver(&schema);
  resolver.AddDimension(&table, "type");
  auto query = ParseQuery("Q(Corridor, (!CoffeeRoom*, CoffeeRoom))", resolver);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(query->link(0).primary.Matches(schema, 1));
  EXPECT_FALSE(query->link(0).primary.Matches(schema, 3));
  EXPECT_TRUE(query->link(1).primary.Matches(schema, 4));
}

TEST(ParserTest, RejectsMalformedQueries) {
  StreamSchema schema = TestSchema();
  SchemaResolver resolver(&schema);
  EXPECT_FALSE(ParseQuery("", resolver).ok());
  EXPECT_FALSE(ParseQuery("Q()", resolver).ok());
  EXPECT_FALSE(ParseQuery("Q(H0", resolver).ok());
  EXPECT_FALSE(ParseQuery("Q(H0,)", resolver).ok());
  EXPECT_FALSE(ParseQuery("Q(Narnia)", resolver).ok());
  EXPECT_FALSE(ParseQuery("Q(H0) trailing", resolver).ok());
  EXPECT_FALSE(ParseQuery("Q((H0, Office))", resolver).ok());  // Missing *.
}

}  // namespace
}  // namespace caldera
