// Differential tests for the cursor-based execution pipeline: the file
// keeps compact copies of the five pre-refactor monolithic access methods
// (the seed implementations) and asserts that the pipeline produces
// BIT-IDENTICAL signals and matching core stats — with prefetch off and on,
// and under fault injection. Plus regression tests for the planner edge
// cases and the EXPLAIN plumbing that shipped with the pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "caldera/btree_method.h"
#include "caldera/cursor.h"
#include "caldera/executor.h"
#include "caldera/intersection.h"
#include "caldera/mc_method.h"
#include "caldera/planner.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "caldera/system.h"
#include "caldera/topk_method.h"
#include "common/rng.h"
#include "index/btp_index.h"
#include "reg/reg_operator.h"
#include "storage/fault_injection_file.h"
#include "test_util.h"

namespace caldera {
namespace {

// ---------------------------------------------------------------------------
// Legacy reference implementations (verbatim logic of the pre-pipeline
// monolithic methods). Deliberately NOT refactored to share code with the
// pipeline: they are the independent implementation the differential tests
// compare against.
// ---------------------------------------------------------------------------

Result<QueryResult> LegacyScan(ArchivedStream* archived,
                               const RegularQuery& query) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  StoredStream* stream = archived->stream();
  if (stream->length() == 0) {
    return Status::FailedPrecondition("empty stream");
  }
  archived->ResetStats();
  QueryResult result;
  result.method = AccessMethodKind::kScan;
  RegOperator reg(query, archived->schema());
  Distribution marginal;
  CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(0, &marginal));
  result.signal.push_back({0, reg.Initialize(marginal)});
  Cpt transition;
  for (uint64_t t = 1; t < stream->length(); ++t) {
    CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
    result.signal.push_back({t, reg.Update(transition)});
  }
  result.stats.reg_updates = reg.num_updates();
  result.stats.relevant_timesteps = stream->length();
  result.stats.intervals = 1;
  return result;
}

Result<QueryResult> LegacyBTree(ArchivedStream* archived,
                                const RegularQuery& query) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  if (!query.fixed_length()) {
    return Status::FailedPrecondition("fixed-length only");
  }
  StoredStream* stream = archived->stream();
  const uint64_t n = query.num_links();
  if (stream->length() < n) {
    QueryResult empty;
    empty.method = AccessMethodKind::kBTree;
    return empty;
  }
  archived->ResetStats();
  std::vector<PredicateCursor> cursors;
  std::vector<uint64_t> offsets;
  for (size_t i = 0; i < query.num_links(); ++i) {
    const Predicate& primary = query.link(i).primary;
    if (!primary.indexable()) continue;
    CALDERA_ASSIGN_OR_RETURN(PredicateCursor cursor,
                             MakePredicateCursor(archived, primary));
    cursors.push_back(std::move(cursor));
    offsets.push_back(i);
  }
  if (cursors.empty()) {
    return Status::FailedPrecondition("no indexable link");
  }
  QueryResult result;
  result.method = AccessMethodKind::kBTree;
  RegOperator reg(query, archived->schema());
  IntervalIntersector intersector(std::move(cursors), std::move(offsets));
  IntervalMerger merger(n);
  uint64_t reg_updates = 0;

  auto run_interval = [&](IntervalMerger::Interval iv) -> Status {
    if (iv.first >= stream->length()) return Status::Ok();
    iv.last = std::min<uint64_t>(iv.last, stream->length() - 1);
    reg.Reset();
    Distribution marginal;
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(iv.first, &marginal));
    result.signal.push_back({iv.first, reg.Initialize(marginal)});
    Cpt transition;
    for (uint64_t t = iv.first + 1; t <= iv.last; ++t) {
      CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
      result.signal.push_back({t, reg.Update(transition)});
    }
    reg_updates += reg.num_updates();
    ++result.stats.intervals;
    return Status::Ok();
  };

  for (;;) {
    CALDERA_ASSIGN_OR_RETURN(std::optional<uint64_t> start,
                             intersector.Next());
    if (!start.has_value()) break;
    if (*start + n > stream->length()) break;
    ++result.stats.relevant_timesteps;
    if (std::optional<IntervalMerger::Interval> done = merger.Add(*start)) {
      CALDERA_RETURN_IF_ERROR(run_interval(*done));
    }
  }
  if (std::optional<IntervalMerger::Interval> done = merger.Flush()) {
    CALDERA_RETURN_IF_ERROR(run_interval(*done));
  }
  result.stats.reg_updates = reg_updates;
  return result;
}

Result<QueryResult> LegacyMcOrSemi(ArchivedStream* archived,
                                   const RegularQuery& query, bool exact) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  StoredStream* stream = archived->stream();
  McIndex* mc = archived->mc();
  if (exact && mc == nullptr) {
    return Status::FailedPrecondition("no MC index");
  }
  archived->ResetStats();
  std::vector<PredicateCursor> cursors;
  for (const Predicate* pred : query.CursorPredicates()) {
    CALDERA_ASSIGN_OR_RETURN(PredicateCursor cursor,
                             MakePredicateCursor(archived, *pred));
    cursors.push_back(std::move(cursor));
  }
  if (cursors.empty()) {
    return Status::FailedPrecondition("no indexable predicate bases");
  }
  QueryResult result;
  result.method =
      exact ? AccessMethodKind::kMcIndex : AccessMethodKind::kSemiIndependent;
  RegOperator reg(query, archived->schema());
  UnionCursor relevant(std::move(cursors));
  Distribution marginal;
  Cpt transition;
  uint64_t t_prev = 0;
  while (relevant.valid()) {
    uint64_t t = relevant.time();
    ++result.stats.relevant_timesteps;
    if (!reg.initialized()) {
      CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
      result.signal.push_back({t, reg.Initialize(marginal)});
    } else if (t == t_prev + 1) {
      CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
      result.signal.push_back({t, reg.Update(transition)});
    } else if (exact) {
      CALDERA_ASSIGN_OR_RETURN(std::shared_ptr<const Cpt> span,
                               mc->GetSpanCpt(t_prev, t));
      result.signal.push_back({t, reg.UpdateSpanning(*span, t - t_prev)});
    } else {
      CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
      result.signal.push_back({t, reg.UpdateIndependent(marginal)});
    }
    t_prev = t;
    CALDERA_RETURN_IF_ERROR(relevant.Next());
  }
  result.stats.reg_updates = reg.num_updates();
  result.stats.intervals = result.stats.relevant_timesteps;
  return result;
}

constexpr size_t kUnbounded = SIZE_MAX;

class LegacyBestMatches {
 public:
  LegacyBestMatches(size_t k, double threshold)
      : k_(k), threshold_(threshold) {}
  double Floor() const {
    double kth = (k_ != kUnbounded && matches_.size() >= k_)
                     ? matches_.back().prob
                     : 0.0;
    return std::max(threshold_, kth);
  }
  bool CanStop(double unseen_bound) const {
    double floor = Floor();
    return floor > 0.0 && unseen_bound <= floor;
  }
  void Evaluate(uint64_t time, double prob) {
    if (prob <= threshold_ || prob <= 0.0) return;
    TimestepProbability entry{time, prob};
    auto pos = std::lower_bound(
        matches_.begin(), matches_.end(), entry,
        [](const TimestepProbability& a, const TimestepProbability& b) {
          if (a.prob != b.prob) return a.prob > b.prob;
          return a.time < b.time;
        });
    matches_.insert(pos, entry);
    if (k_ != kUnbounded && matches_.size() > k_) matches_.pop_back();
  }
  QuerySignal Take() { return std::move(matches_); }

 private:
  size_t k_;
  double threshold_;
  QuerySignal matches_;
};

Result<QueryResult> LegacyTaWalk(ArchivedStream* archived,
                                 const RegularQuery& query, size_t k,
                                 double threshold) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  if (!query.fixed_length()) {
    return Status::FailedPrecondition("fixed-length only");
  }
  StoredStream* stream = archived->stream();
  const uint64_t n = query.num_links();
  const StreamSchema& schema = archived->schema();
  archived->ResetStats();
  std::vector<TopProbCursor> cursors;
  for (size_t i = 0; i < n; ++i) {
    const Predicate& primary = query.link(i).primary;
    if (!primary.indexable() ||
        primary.kind() == Predicate::Kind::kRange ||
        archived->btp(primary.attribute()) == nullptr) {
      return Status::FailedPrecondition("not top-k indexable");
    }
    CALDERA_ASSIGN_OR_RETURN(
        TopProbCursor cursor,
        TopProbCursor::Create(archived->btp(primary.attribute()),
                              primary.MatchedAttributeValues(schema)));
    cursors.push_back(std::move(cursor));
  }
  QueryResult result;
  result.method = AccessMethodKind::kTopK;
  LegacyBestMatches best(k, threshold);
  std::unordered_set<uint64_t> evaluated;
  RegOperator reg(query, schema);
  uint64_t reg_updates = 0;
  Distribution marginal;
  auto predicate_prob = [&](size_t link, uint64_t t) -> Result<double> {
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
    const Predicate& p = query.link(link).primary;
    return marginal.MassWhere(
        [&](ValueId state) { return p.Matches(schema, state); });
  };
  for (;;) {
    double unseen_bound = 1.0;
    size_t best_cursor = SIZE_MAX;
    double best_head = -1.0;
    for (size_t i = 0; i < n; ++i) {
      double bound = cursors[i].valid() ? cursors[i].UpperBound() : 0.0;
      unseen_bound = std::min(unseen_bound, bound);
      double head = cursors[i].valid() ? cursors[i].prob() : -1.0;
      if (head > best_head) {
        best_head = head;
        best_cursor = i;
      }
    }
    if (best_cursor == SIZE_MAX) break;
    if (best.CanStop(unseen_bound)) break;
    uint64_t entry_time = cursors[best_cursor].time();
    CALDERA_RETURN_IF_ERROR(cursors[best_cursor].Next());
    if (entry_time < best_cursor) continue;
    uint64_t s = entry_time - best_cursor;
    if (s + n > stream->length()) continue;
    if (!evaluated.insert(s).second) continue;
    double floor = best.Floor();
    bool prune = false;
    for (size_t i = 0; i < n && !prune; ++i) {
      CALDERA_ASSIGN_OR_RETURN(double p, predicate_prob(i, s + i));
      if (p <= 0.0 || p <= floor) prune = true;
    }
    if (prune) {
      ++result.stats.pruned_candidates;
      continue;
    }
    reg.Reset();
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(s, &marginal));
    double p = reg.Initialize(marginal);
    Cpt transition;
    for (uint64_t t = s + 1; t < s + n; ++t) {
      CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
      p = reg.Update(transition);
    }
    reg_updates += reg.num_updates();
    ++result.stats.intervals;
    best.Evaluate(s + n - 1, p);
  }
  result.signal = best.Take();
  result.stats.reg_updates = reg_updates;
  result.stats.relevant_timesteps = evaluated.size();
  return result;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void ExpectIdenticalSignal(const QuerySignal& got, const QuerySignal& want,
                           const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, want[i].time) << what << " entry " << i;
    // Bit-identical, not approximately equal: the pipeline must execute the
    // exact same Reg update sequence as the monolithic code did.
    EXPECT_EQ(got[i].prob, want[i].prob) << what << " entry " << i;
  }
}

void ExpectSameCoreStats(const ExecStats& got, const ExecStats& want,
                         const std::string& what) {
  EXPECT_EQ(got.reg_updates, want.reg_updates) << what;
  EXPECT_EQ(got.relevant_timesteps, want.relevant_timesteps) << what;
  EXPECT_EQ(got.intervals, want.intervals) << what;
  EXPECT_EQ(got.pruned_candidates, want.pruned_candidates) << what;
}

void ExpectMatchesScan(const QuerySignal& indexed, const QuerySignal& scan,
                       const std::string& what) {
  std::map<uint64_t, double> by_time;
  for (const TimestepProbability& e : indexed) by_time[e.time] = e.prob;
  for (const TimestepProbability& e : scan) {
    auto it = by_time.find(e.time);
    if (it != by_time.end()) {
      EXPECT_NEAR(it->second, e.prob, 1e-9) << what << " t=" << e.time;
    } else {
      EXPECT_NEAR(e.prob, 0.0, 1e-9)
          << what << " skipped a nonzero timestep t=" << e.time;
    }
  }
}

RegularQuery RandomQuery(Rng* rng, uint32_t domain) {
  size_t num_links = 1 + rng->NextBelow(4);
  std::vector<QueryLink> links;
  auto random_predicate = [&](const std::string& tag) {
    uint32_t kind = static_cast<uint32_t>(rng->NextBelow(3));
    if (kind == 0) {
      uint32_t v = static_cast<uint32_t>(rng->NextBelow(domain));
      return Predicate::Equality(0, v, tag + "=" + std::to_string(v));
    }
    if (kind == 1) {
      std::vector<uint32_t> values;
      size_t count = 1 + rng->NextBelow(3);
      for (size_t i = 0; i < count; ++i) {
        values.push_back(static_cast<uint32_t>(rng->NextBelow(domain)));
      }
      return Predicate::In(0, values, tag + "-set");
    }
    uint32_t lo = static_cast<uint32_t>(rng->NextBelow(domain));
    uint32_t hi =
        std::min<uint32_t>(domain - 1,
                           lo + static_cast<uint32_t>(rng->NextBelow(3)));
    return Predicate::Range(0, lo, hi, tag + "-range");
  };
  for (size_t i = 0; i < num_links; ++i) {
    Predicate primary = random_predicate("p" + std::to_string(i));
    std::optional<Predicate> loop;
    if (rng->NextBool(0.4)) {
      if (rng->NextBool(0.7)) {
        loop = Predicate::Not(primary);
      } else {
        loop = random_predicate("l" + std::to_string(i));
      }
    }
    links.push_back(QueryLink{std::move(loop), std::move(primary)});
  }
  return RegularQuery("random", std::move(links));
}

// A small deterministic stream over a 4-value domain where value 3 never
// has marginal mass (for zero-posting regression tests).
MarkovianStream ThreeOfFourValuesStream(uint64_t length) {
  MarkovianStream stream(
      SingleAttributeSchema("v", {"a", "b", "c", "d"}));
  Distribution current = Distribution::Point(0);
  stream.Append(current, Cpt());
  for (uint64_t t = 1; t < length; ++t) {
    ValueId from = static_cast<ValueId>((t - 1) % 3);
    ValueId to = static_cast<ValueId>(t % 3);
    Cpt cpt;
    cpt.SetRow(from, {{to, 1.0}});
    current = Distribution::Point(to);
    stream.Append(current, cpt);
  }
  return stream;
}

// ---------------------------------------------------------------------------
// Randomized differential: pipeline == legacy, bit for bit.
// ---------------------------------------------------------------------------

class PipelineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineDifferentialTest, PipelineMatchesLegacyBitForBit) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 104729 + 7);
  test::ScratchDir scratch("pipeline_" + std::to_string(seed));

  const uint32_t domain = 6 + static_cast<uint32_t>(rng.NextBelow(10));
  const uint64_t length = 100 + rng.NextBelow(180);
  MarkovianStream stream =
      rng.NextBool(0.5)
          ? test::MakeBandedStream(length, domain, seed)
          : test::MakeValidStream(length, domain, seed, 0.4);
  ASSERT_TRUE(stream.Validate(1e-6).ok());

  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream,
                                   rng.NextBool(0.5)
                                       ? DiskLayout::kSeparated
                                       : DiskLayout::kCoClustered)
                  .ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 0).ok());
  ASSERT_TRUE(archive.BuildMc("s", {}).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  ArchivedStream* handle = archived->get();

  for (int q = 0; q < 5; ++q) {
    RegularQuery query = RandomQuery(&rng, domain);
    const std::string tag = query.ToString();

    auto legacy_scan = LegacyScan(handle, query);
    ASSERT_TRUE(legacy_scan.ok());
    auto scan = RunScanMethod(handle, query);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ExpectIdenticalSignal(scan->signal, legacy_scan->signal,
                          "scan[" + tag + "]");
    ExpectSameCoreStats(scan->stats, legacy_scan->stats, "scan[" + tag + "]");

    auto legacy_mc = LegacyMcOrSemi(handle, query, /*exact=*/true);
    ASSERT_TRUE(legacy_mc.ok()) << legacy_mc.status().ToString();
    auto mc = RunMcMethod(handle, query);
    ASSERT_TRUE(mc.ok()) << mc.status().ToString();
    ExpectIdenticalSignal(mc->signal, legacy_mc->signal, "mc[" + tag + "]");
    ExpectSameCoreStats(mc->stats, legacy_mc->stats, "mc[" + tag + "]");

    auto legacy_semi = LegacyMcOrSemi(handle, query, /*exact=*/false);
    ASSERT_TRUE(legacy_semi.ok());
    auto semi = RunSemiIndependentMethod(handle, query);
    ASSERT_TRUE(semi.ok());
    ExpectIdenticalSignal(semi->signal, legacy_semi->signal,
                          "semi[" + tag + "]");
    ExpectSameCoreStats(semi->stats, legacy_semi->stats,
                        "semi[" + tag + "]");

    if (query.fixed_length()) {
      auto legacy_btree = LegacyBTree(handle, query);
      ASSERT_TRUE(legacy_btree.ok());
      auto btree = RunBTreeMethod(handle, query);
      ASSERT_TRUE(btree.ok()) << btree.status().ToString();
      ExpectIdenticalSignal(btree->signal, legacy_btree->signal,
                            "btree[" + tag + "]");
      ExpectSameCoreStats(btree->stats, legacy_btree->stats,
                          "btree[" + tag + "]");

      bool topk_supported = true;
      for (const QueryLink& link : query.links()) {
        if (link.primary.kind() == Predicate::Kind::kRange) {
          topk_supported = false;
        }
      }
      if (topk_supported) {
        auto legacy_topk = LegacyTaWalk(handle, query, 4, 0.0);
        ASSERT_TRUE(legacy_topk.ok());
        auto topk = RunTopKMethod(handle, query, 4);
        ASSERT_TRUE(topk.ok()) << topk.status().ToString();
        ExpectIdenticalSignal(topk->signal, legacy_topk->signal,
                              "topk[" + tag + "]");
        ExpectSameCoreStats(topk->stats, legacy_topk->stats,
                            "topk[" + tag + "]");

        auto legacy_tau = LegacyTaWalk(handle, query, kUnbounded, 0.25);
        ASSERT_TRUE(legacy_tau.ok());
        auto tau = RunThresholdMethod(handle, query, 0.25);
        ASSERT_TRUE(tau.ok());
        ExpectIdenticalSignal(tau->signal, legacy_tau->signal,
                              "threshold[" + tag + "]");
        ExpectSameCoreStats(tau->stats, legacy_tau->stats,
                            "threshold[" + tag + "]");
      }
    }

    // Prefetch determinism: with any batch size the pipeline must produce
    // the bit-identical signal and the same non-timing stats.
    for (AccessMethodKind method :
         {AccessMethodKind::kScan, AccessMethodKind::kMcIndex,
          AccessMethodKind::kSemiIndependent}) {
      auto base = RunPipeline(handle, query, method);
      ASSERT_TRUE(base.ok());
      for (size_t batch : {size_t{1}, size_t{3}, size_t{64}}) {
        PipelineOptions options;
        options.prefetch_batch = batch;
        auto prefetched = RunPipeline(handle, query, method, options);
        ASSERT_TRUE(prefetched.ok()) << prefetched.status().ToString();
        ExpectIdenticalSignal(
            prefetched->signal, base->signal,
            "prefetch=" + std::to_string(batch) + "[" + tag + "]");
        ExpectSameCoreStats(
            prefetched->stats, base->stats,
            "prefetch=" + std::to_string(batch) + "[" + tag + "]");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Pipeline-specific behavior
// ---------------------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : scratch_("pipeline_fixture") {}

  void BuildArchive(const MarkovianStream& stream, bool btp = true,
                    bool mc = true) {
    archive_ = std::make_unique<StreamArchive>(scratch_.Path("archive"));
    ASSERT_TRUE(archive_->CreateStream("s", stream).ok());
    ASSERT_TRUE(archive_->BuildBtc("s", 0).ok());
    if (btp) {
      ASSERT_TRUE(archive_->BuildBtp("s", 0).ok());
    }
    if (mc) {
      ASSERT_TRUE(archive_->BuildMc("s", {}).ok());
    }
    auto archived = archive_->OpenStream("s");
    ASSERT_TRUE(archived.ok());
    handle_ = std::move(*archived);
  }

  RegularQuery SparseTwoStep() {
    std::vector<QueryLink> links;
    links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 1, "b")});
    links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 2, "c")});
    return RegularQuery("two-step", std::move(links));
  }

  test::ScratchDir scratch_;
  std::unique_ptr<StreamArchive> archive_;
  std::unique_ptr<ArchivedStream> handle_;
};

TEST_F(PipelineTest, ScanThroughGapPolicyIsExact) {
  MarkovianStream stream = test::MakeBandedStream(150, 8, 42);
  BuildArchive(stream, /*btp=*/false, /*mc=*/false);
  RegularQuery query = SparseTwoStep();

  auto scan = RunScanMethod(handle_.get(), query);
  ASSERT_TRUE(scan.ok());

  // The scan-through policy reads interior transitions instead of composed
  // span CPTs: exact results from a BT_C union plan with no MC index.
  auto factory = [](ArchivedStream* a, const RegularQuery& q) {
    return MakeUnionPlan(a, q, GapPolicy::kScanThrough);
  };
  auto hybrid = RunCursorPipeline(handle_.get(), query, factory,
                                  AccessMethodKind::kMcIndex);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  ExpectMatchesScan(hybrid->signal, scan->signal, "scan-through");
  EXPECT_NE(hybrid->stats.plan_summary.find("gap=scan-through"),
            std::string::npos)
      << hybrid->stats.plan_summary;

  // Prefetch composes with custom plans too.
  PipelineOptions options;
  options.prefetch_batch = 8;
  auto prefetched = RunCursorPipeline(handle_.get(), query, factory,
                                      AccessMethodKind::kMcIndex, options);
  ASSERT_TRUE(prefetched.ok());
  ExpectIdenticalSignal(prefetched->signal, hybrid->signal,
                        "scan-through prefetch");
}

TEST_F(PipelineTest, ThresholdCursorRunsSynchronouslyUnderPrefetch) {
  MarkovianStream stream = test::MakeBandedStream(120, 8, 7);
  BuildArchive(stream);
  RegularQuery query = SparseTwoStep();

  auto base = RunTopKMethod(handle_.get(), query, 3);
  ASSERT_TRUE(base.ok());
  PipelineOptions options;
  options.k = 3;
  options.prefetch_batch = 16;  // Must be ignored: TA consumes feedback.
  auto prefetched = RunPipeline(handle_.get(), query,
                                AccessMethodKind::kTopK, options);
  ASSERT_TRUE(prefetched.ok());
  ExpectIdenticalSignal(prefetched->signal, base->signal, "topk prefetch");
  ExpectSameCoreStats(prefetched->stats, base->stats, "topk prefetch");
  EXPECT_NE(prefetched->stats.plan_summary.find("prefetch=off"),
            std::string::npos)
      << prefetched->stats.plan_summary;
}

TEST_F(PipelineTest, EmptyPlanForShortStreamsReportsEmptyResult) {
  MarkovianStream stream = ThreeOfFourValuesStream(2);
  BuildArchive(stream, /*btp=*/false, /*mc=*/false);
  std::vector<QueryLink> links;
  for (int i = 0; i < 3; ++i) {
    links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 0, "a")});
  }
  RegularQuery query("longer-than-stream", std::move(links));
  auto result = RunBTreeMethod(handle_.get(), query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->method, AccessMethodKind::kBTree);
  EXPECT_TRUE(result->signal.empty());
  EXPECT_EQ(result->stats.reg_updates, 0u);
}

TEST_F(PipelineTest, PrefetchUnderFaultInjectionNeverYieldsWrongSignal) {
  MarkovianStream stream = test::MakeBandedStream(100, 10, 17);
  Caldera system(scratch_.Path("chaos"));
  ASSERT_TRUE(system.archive()->CreateStream("s", stream).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  RegularQuery query = SparseTwoStep();

  ExecOptions scan_only;
  scan_only.method = AccessMethodKind::kScan;
  auto reference_scan = system.Execute("s", query, scan_only);
  ASSERT_TRUE(reference_scan.ok());
  ExecOptions btree_only;
  btree_only.method = AccessMethodKind::kBTree;
  auto reference_btree = system.Execute("s", query, btree_only);
  ASSERT_TRUE(reference_btree.ok());

  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FaultInjectionOptions fault_options;
    fault_options.seed = seed;
    fault_options.read_error_prob = 0.2;
    ScopedFaultInjection fault("btc.attr0.bt", fault_options);
    system.InvalidateStreams();
    ExecOptions rescue;
    rescue.fallback_to_scan = true;
    rescue.prefetch_batch = 4;  // The producer stage hits the faults.
    auto result = system.Execute("s", query, rescue);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kIoError);
    } else if (result->method == AccessMethodKind::kScan) {
      // Degradation can happen at open, plan, or mid-query time; all paths
      // must yield the pristine scan signal.
      ExpectIdenticalSignal(result->signal, reference_scan->signal,
                            "rescued scan");
    } else {
      ASSERT_EQ(result->method, AccessMethodKind::kBTree);
      ExpectIdenticalSignal(result->signal, reference_btree->signal,
                            "surviving btree");
    }
  }
}

// ---------------------------------------------------------------------------
// Planner regressions (satellites): density edge cases + EXPLAIN plumbing.
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, ZeroPostingPredicateHasZeroDensityAndCleanPlan) {
  MarkovianStream stream = ThreeOfFourValuesStream(30);
  BuildArchive(stream, /*btp=*/false, /*mc=*/false);

  // Value 3 ("d") never carries marginal mass: its BT_C posting list is
  // empty. Density must be 0 with a clean status — and execution must
  // return an empty signal, not an error.
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Equality(0, 3, "d")});
  RegularQuery query("never-matches", std::move(links));

  auto density = EstimateDensity(handle_.get(), query);
  ASSERT_TRUE(density.ok()) << density.status().ToString();
  EXPECT_EQ(*density, 0.0);

  auto decision = PlanQuery(handle_.get(), query, /*want_topk=*/false,
                            /*approximation_ok=*/false);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->method, AccessMethodKind::kBTree);
  EXPECT_EQ(decision->estimated_density, 0.0);

  auto result = RunBTreeMethod(handle_.get(), query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->signal.empty());
}

TEST_F(PipelineTest, NonIndexableQueryPlansScanInsteadOfFailing) {
  MarkovianStream stream = ThreeOfFourValuesStream(30);
  BuildArchive(stream, /*btp=*/false, /*mc=*/false);

  // PlanQuery does not validate the query (the access methods do); handed
  // a query whose predicate has no indexable base — impossible to build
  // via the factories, but reachable through the planner's contract — it
  // must pick the scan deliberately (with a reason), not plan a doomed
  // index method or propagate a density-estimation failure.
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, Predicate::Any()});
  RegularQuery query("anything", std::move(links));

  auto decision = PlanQuery(handle_.get(), query, /*want_topk=*/false,
                            /*approximation_ok=*/false);
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision->method, AccessMethodKind::kScan);
  EXPECT_NE(decision->reason.find("no indexable"), std::string::npos)
      << decision->reason;

  // Density estimation on the same query is likewise a clean zero, not an
  // index error.
  auto density = EstimateDensity(handle_.get(), query);
  ASSERT_TRUE(density.ok()) << density.status().ToString();
  EXPECT_EQ(*density, 0.0);
}

TEST_F(PipelineTest, ExplainThreadsPlannerDecisionIntoResults) {
  MarkovianStream stream = test::MakeBandedStream(100, 8, 3);
  Caldera system(scratch_.Path("explain"));
  ASSERT_TRUE(system.archive()->CreateStream("s", stream).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  RegularQuery query = SparseTwoStep();

  // kAuto: the decision's reason and density land in the result.
  ExecOptions auto_plan;
  auto plan = system.Plan("s", query, auto_plan);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->cursor.empty());
  EXPECT_FALSE(plan->gap_policy.empty());
  std::string explain = plan->Explain();
  EXPECT_NE(explain.find("method="), std::string::npos) << explain;
  EXPECT_NE(explain.find("cursor="), std::string::npos) << explain;
  EXPECT_NE(explain.find("gap="), std::string::npos) << explain;
  EXPECT_NE(explain.find("density="), std::string::npos) << explain;

  auto result = system.Execute("s", query, auto_plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan_reason, plan->reason);
  const std::string& summary = result->stats.plan_summary;
  EXPECT_NE(summary.find("method="), std::string::npos) << summary;
  EXPECT_NE(summary.find("cursor="), std::string::npos) << summary;
  EXPECT_NE(summary.find("gap="), std::string::npos) << summary;
  EXPECT_NE(summary.find("density="), std::string::npos) << summary;
  EXPECT_NE(summary.find("reason="), std::string::npos) << summary;

  // Explicit method: no planner run, reason says so, no density reported.
  ExecOptions explicit_scan;
  explicit_scan.method = AccessMethodKind::kScan;
  auto scan_result = system.Execute("s", query, explicit_scan);
  ASSERT_TRUE(scan_result.ok());
  EXPECT_EQ(scan_result->plan_reason, "explicitly requested");
  EXPECT_EQ(scan_result->stats.plan_summary.find("density="),
            std::string::npos)
      << scan_result->stats.plan_summary;
}

}  // namespace
}  // namespace caldera
