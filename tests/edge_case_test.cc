// Edge-case tests for the cursor-intersection machinery, the interval
// merger, signal helpers, and Reg-operator numerics.

#include <gtest/gtest.h>

#include <cmath>

#include "caldera/access_method.h"
#include "caldera/btree_method.h"
#include "caldera/intersection.h"
#include "caldera/scan_method.h"
#include "common/logging.h"
#include "index/btc_index.h"
#include "reg/reg_operator.h"
#include "test_util.h"

namespace caldera {
namespace {

// ---------------------------------------------------------------------------
// IntervalMerger
// ---------------------------------------------------------------------------

TEST(IntervalMergerTest, SingleCandidate) {
  IntervalMerger merger(3);
  EXPECT_FALSE(merger.Add(10).has_value());
  auto last = merger.Flush();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->first, 10u);
  EXPECT_EQ(last->last, 12u);
  EXPECT_FALSE(merger.Flush().has_value());
}

TEST(IntervalMergerTest, OverlappingCandidatesMerge) {
  IntervalMerger merger(3);
  EXPECT_FALSE(merger.Add(10).has_value());
  EXPECT_FALSE(merger.Add(11).has_value());  // Overlaps [10,12].
  EXPECT_FALSE(merger.Add(13).has_value());  // Abuts [10,13].
  auto out = merger.Flush();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->first, 10u);
  EXPECT_EQ(out->last, 15u);
}

TEST(IntervalMergerTest, DisjointCandidatesSplit) {
  IntervalMerger merger(2);
  EXPECT_FALSE(merger.Add(5).has_value());
  auto first = merger.Add(100);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 5u);
  EXPECT_EQ(first->last, 6u);
  auto second = merger.Flush();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, 100u);
  EXPECT_EQ(second->last, 101u);
}

TEST(IntervalMergerTest, GapOfOneMergesGapOfTwoDoesNot) {
  IntervalMerger merger(1);
  EXPECT_FALSE(merger.Add(5).has_value());
  EXPECT_FALSE(merger.Add(6).has_value());  // Abutting.
  auto out = merger.Add(8);                 // Gap.
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->last, 6u);
}

// ---------------------------------------------------------------------------
// IntervalIntersector against a brute-force reference
// ---------------------------------------------------------------------------

std::vector<uint64_t> BruteForceIntersections(
    const MarkovianStream& stream, const std::vector<uint32_t>& values,
    const std::vector<uint64_t>& offsets) {
  std::vector<uint64_t> out;
  for (uint64_t s = 0; s + offsets.back() < stream.length(); ++s) {
    bool all = true;
    for (size_t i = 0; i < values.size(); ++i) {
      if (stream.marginal(s + offsets[i]).ProbabilityOf(values[i]) <= 0) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(s);
  }
  return out;
}

TEST(IntervalIntersectorTest, MatchesBruteForceEnumeration) {
  test::ScratchDir scratch("intersector_test");
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    MarkovianStream stream = test::MakeBandedStream(200, 12, seed);
    auto tree = BuildBtcIndex(stream, 0, scratch.Path("btc" +
                                                      std::to_string(seed)));
    ASSERT_TRUE(tree.ok());

    std::vector<uint32_t> values = {3, 4, 6};
    std::vector<uint64_t> offsets = {0, 1, 2};
    std::vector<PredicateCursor> cursors;
    for (uint32_t v : values) {
      auto cursor = PredicateCursor::Create(tree->get(), {v});
      ASSERT_TRUE(cursor.ok());
      cursors.push_back(std::move(*cursor));
    }
    IntervalIntersector intersector(std::move(cursors), offsets);
    std::vector<uint64_t> produced;
    for (;;) {
      auto next = intersector.Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      produced.push_back(**next);
    }
    EXPECT_EQ(produced, BruteForceIntersections(stream, values, offsets))
        << "seed=" << seed;
  }
}

TEST(IntervalIntersectorTest, NonContiguousOffsets) {
  // Cursors at offsets {0, 3}: models a relaxed intersection where middle
  // links are unindexed.
  test::ScratchDir scratch("intersector_offsets");
  MarkovianStream stream = test::MakeBandedStream(200, 12, 5);
  auto tree = BuildBtcIndex(stream, 0, scratch.Path("btc"));
  ASSERT_TRUE(tree.ok());
  std::vector<uint32_t> values = {2, 5};
  std::vector<uint64_t> offsets = {0, 3};
  std::vector<PredicateCursor> cursors;
  for (uint32_t v : values) {
    auto cursor = PredicateCursor::Create(tree->get(), {v});
    ASSERT_TRUE(cursor.ok());
    cursors.push_back(std::move(*cursor));
  }
  IntervalIntersector intersector(std::move(cursors), offsets);
  std::vector<uint64_t> produced;
  for (;;) {
    auto next = intersector.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    produced.push_back(**next);
  }
  EXPECT_EQ(produced, BruteForceIntersections(stream, values, offsets));
}

TEST(IntervalIntersectorTest, EmptyCursorSetYieldsNothing) {
  IntervalIntersector intersector({}, {});
  auto next = intersector.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

// ---------------------------------------------------------------------------
// Signal helpers
// ---------------------------------------------------------------------------

TEST(SignalHelpersTest, FilterSignal) {
  QuerySignal signal = {{0, 0.5}, {1, 0.1}, {2, 0.0}, {3, 0.9}};
  QuerySignal filtered = FilterSignal(signal, 0.1);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].time, 0u);
  EXPECT_EQ(filtered[1].time, 3u);
}

TEST(SignalHelpersTest, TopKOfSignalSortsAndTruncates) {
  QuerySignal signal = {{0, 0.5}, {1, 0.1}, {2, 0.9}, {3, 0.5}};
  QuerySignal top = TopKOfSignal(signal, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].time, 2u);
  // Ties broken by time.
  EXPECT_EQ(top[1].time, 0u);
  EXPECT_EQ(top[2].time, 3u);
  EXPECT_TRUE(TopKOfSignal({}, 5).empty());
}

// ---------------------------------------------------------------------------
// Reg operator numerics
// ---------------------------------------------------------------------------

TEST(RegNumericsTest, LongStreamsStayNormalized) {
  // 5000 steps of a dense query: accepting mass every step must remain a
  // probability despite accumulated floating-point work.
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b", "c"});
  MarkovianStream stream(schema);
  Rng rng(1);
  Distribution current =
      Distribution::FromPairs({{0, 0.4}, {1, 0.3}, {2, 0.3}});
  stream.Append(current, Cpt());
  for (int t = 1; t < 5000; ++t) {
    Cpt cpt;
    for (const Distribution::Entry& e : current.entries()) {
      double a = rng.NextDouble() + 0.1;
      double b = rng.NextDouble() + 0.1;
      double c = rng.NextDouble() + 0.1;
      double sum = a + b + c;
      cpt.SetRow(e.value, {{0, a / sum}, {1, b / sum}, {2, c / sum}});
    }
    current = cpt.Propagate(current);
    stream.Append(current, std::move(cpt));
  }
  RegularQuery query = RegularQuery::Sequence(
      "ab", {Predicate::Equality(0, 0, "a"), Predicate::Equality(0, 1, "b")});
  RegOperator reg(query, schema);
  reg.Initialize(stream.marginal(0));
  for (uint64_t t = 1; t < stream.length(); ++t) {
    double p = reg.Update(stream.transition(t));
    ASSERT_GE(p, -1e-12) << "t=" << t;
    ASSERT_LE(p, 1.0 + 1e-9) << "t=" << t;
  }
  // Total marginal mass carried by the operator must still be ~1: the
  // restart state always holds the full distribution.
  EXPECT_NEAR(stream.marginal(stream.length() - 1).Mass(), 1.0, 1e-6);
}

TEST(RegNumericsTest, ZeroProbabilityPredicatesGiveZeroSignal) {
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b", "c"});
  MarkovianStream stream = test::MakeBandedStream(50, 3, 2);
  // Query on values that never co-occur in sequence because value ids 0 and
  // 2 are two band-steps apart: (0 then 2) requires a jump of 2.
  RegularQuery query = RegularQuery::Sequence(
      "jump",
      {Predicate::Equality(0, 0, "a"), Predicate::Equality(0, 2, "c")});
  std::vector<double> signal = RunRegOverStream(query, stream);
  for (uint64_t t = 0; t < stream.length(); ++t) {
    // A banded walk can only move +-1 per step, so P(0 then 2) == 0.
    EXPECT_NEAR(signal[t], 0.0, 1e-12);
  }
}

TEST(RegNumericsTest, SubStochasticSpansStayBounded) {
  // UpdateSpanning with a sub-stochastic (conditioned) CPT must yield
  // probabilities in [0, 1] and never inflate mass.
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b", "c", "d"});
  RegularQuery query = RegularQuery::Sequence(
      "ab", {Predicate::Equality(0, 0, "a"), Predicate::Equality(0, 1, "b")});
  RegOperator reg(query, schema);
  reg.Initialize(Distribution::FromPairs({{0, 0.5}, {3, 0.5}}));
  Cpt sub;  // Rows sum to < 1.
  sub.SetRow(0, {{0, 0.4}, {1, 0.3}});
  sub.SetRow(3, {{3, 0.5}});
  double p = reg.UpdateSpanning(sub, 3);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(RegNumericsTest, EmptyMarginalInitializeIsHarmless) {
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b"});
  RegularQuery query =
      RegularQuery::Sequence("a", {Predicate::Equality(0, 0, "a")});
  RegOperator reg(query, schema);
  double p = reg.Initialize(Distribution());
  EXPECT_DOUBLE_EQ(p, 0.0);
  EXPECT_TRUE(reg.initialized());
}

// ---------------------------------------------------------------------------
// B+Tree method: boundary intervals
// ---------------------------------------------------------------------------

TEST(BoundaryTest, MatchesAtStreamEdgesAreFound) {
  // Construct a stream whose only matches sit at t=0..1 and at the last
  // two timesteps.
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b", "x"});
  MarkovianStream stream(schema);
  stream.Append(Distribution::Point(0), Cpt());  // t0: a.
  Cpt to_b;
  to_b.SetRow(0, {{1, 1.0}});
  stream.Append(Distribution::Point(1), to_b);  // t1: b (match at t1).
  Cpt to_x;
  to_x.SetRow(1, {{2, 1.0}});
  stream.Append(Distribution::Point(2), to_x);  // t2..: x.
  Cpt stay_x;
  stay_x.SetRow(2, {{2, 1.0}});
  for (int t = 3; t < 20; ++t) stream.Append(Distribution::Point(2), stay_x);
  Cpt to_a;
  to_a.SetRow(2, {{0, 1.0}});
  stream.Append(Distribution::Point(0), to_a);  // t20: a.
  to_b = Cpt();
  to_b.SetRow(0, {{1, 1.0}});
  stream.Append(Distribution::Point(1), to_b);  // t21: b (match at end).
  ASSERT_TRUE(stream.Validate().ok());

  test::ScratchDir scratch("boundary_test");
  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  RegularQuery query = RegularQuery::Sequence(
      "ab", {Predicate::Equality(0, 0, "a"), Predicate::Equality(0, 1, "b")});
  auto result = RunBTreeMethod(archived->get(), query);
  ASSERT_TRUE(result.ok());
  double p_first = 0, p_last = 0;
  for (const TimestepProbability& e : result->signal) {
    if (e.time == 1) p_first = e.prob;
    if (e.time == stream.length() - 1) p_last = e.prob;
  }
  EXPECT_DOUBLE_EQ(p_first, 1.0);
  EXPECT_DOUBLE_EQ(p_last, 1.0);
}

TEST(BoundaryTest, QueryLongerThanStream) {
  MarkovianStream stream = test::MakeBandedStream(3, 6, 3);
  test::ScratchDir scratch("boundary_short");
  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  std::vector<Predicate> predicates;
  for (int i = 0; i < 5; ++i) {
    predicates.push_back(Predicate::Equality(0, i, "s" + std::to_string(i)));
  }
  RegularQuery query = RegularQuery::Sequence("long", predicates);
  auto result = RunBTreeMethod(archived->get(), query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->signal.empty());
}

}  // namespace
}  // namespace caldera
