// Tests for features beyond the paper's core algorithms: threshold
// retrieval, archive verification, the streaming (Lahar-style) processor,
// the predicate-conditioned MC index, and multi-attribute streams.

#include <gtest/gtest.h>

#include <cmath>

#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/system.h"
#include "caldera/topk_method.h"
#include "caldera/verify.h"
#include "common/logging.h"
#include "index/mc_index.h"
#include "reg/streaming.h"
#include "rfid/workload.h"
#include "storage/file.h"
#include "test_util.h"

namespace caldera {
namespace {

std::unique_ptr<ArchivedStream> ArchiveAll(const test::ScratchDir& scratch,
                                           const MarkovianStream& stream,
                                           const std::string& name) {
  StreamArchive archive(scratch.Path("archive"));
  CALDERA_CHECK_OK(archive.CreateStream(name, stream, DiskLayout::kSeparated));
  CALDERA_CHECK_OK(archive.BuildBtc(name, 0));
  CALDERA_CHECK_OK(archive.BuildBtp(name, 0));
  CALDERA_CHECK_OK(archive.BuildMc(name, {}));
  auto opened = archive.OpenStream(name);
  CALDERA_CHECK_OK(opened.status());
  return std::move(*opened);
}

RegularQuery Fixed(uint32_t a, uint32_t b) {
  return RegularQuery::Sequence(
      "f", {Predicate::Equality(0, a, "a"), Predicate::Equality(0, b, "b")});
}

// ---------------------------------------------------------------------------
// Threshold retrieval
// ---------------------------------------------------------------------------

class ThresholdTest : public ::testing::Test {
 protected:
  ThresholdTest() : scratch_("threshold_test") {}
  test::ScratchDir scratch_;
};

TEST_F(ThresholdTest, ReturnsExactlyTheMatchesAboveThreshold) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    MarkovianStream stream = test::MakeBandedStream(300, 16, seed);
    auto archived =
        ArchiveAll(scratch_, stream, "s" + std::to_string(seed));
    RegularQuery query = Fixed(6, 7);
    auto scan = RunScanMethod(archived.get(), query);
    ASSERT_TRUE(scan.ok());
    for (double tau : {0.05, 0.2, 0.5}) {
      auto result = RunThresholdMethod(archived.get(), query, tau);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      // Reference: scan entries above tau.
      QuerySignal expected = FilterSignal(scan->signal, tau);
      EXPECT_EQ(result->signal.size(), expected.size()) << "tau=" << tau;
      // Probabilities sorted descending and all above tau.
      for (size_t i = 0; i < result->signal.size(); ++i) {
        EXPECT_GT(result->signal[i].prob, tau);
        if (i > 0) {
          EXPECT_GE(result->signal[i - 1].prob, result->signal[i].prob);
        }
      }
      // Every expected match present with the right probability.
      for (const TimestepProbability& e : expected) {
        bool found = false;
        for (const TimestepProbability& r : result->signal) {
          if (r.time == e.time) {
            EXPECT_NEAR(r.prob, e.prob, 1e-9);
            found = true;
          }
        }
        EXPECT_TRUE(found) << "missing t=" << e.time;
      }
    }
  }
}

TEST_F(ThresholdTest, HighThresholdPrunesAggressively) {
  SnippetStreamSpec spec;
  spec.num_snippets = 60;
  spec.density = 1.0;
  spec.seed = 4;
  auto workload = MakeSnippetStream(spec);
  ASSERT_TRUE(workload.ok());
  auto archived = ArchiveAll(scratch_, workload->stream, "s");
  RegularQuery query = workload->EnteredRoomFixed();

  auto strict = RunThresholdMethod(archived.get(), query, 0.9);
  auto loose = RunThresholdMethod(archived.get(), query, 0.01);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(strict->signal.size(), loose->signal.size());
  EXPECT_LE(strict->stats.intervals, loose->stats.intervals);
}

TEST_F(ThresholdTest, RejectsBadThresholds) {
  MarkovianStream stream = test::MakeBandedStream(50, 8, 5);
  auto archived = ArchiveAll(scratch_, stream, "s");
  EXPECT_EQ(RunThresholdMethod(archived.get(), Fixed(1, 2), 0.0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunThresholdMethod(archived.get(), Fixed(1, 2), 1.0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ThresholdTest, FacadeRoutesThresholdQueries) {
  MarkovianStream stream = test::MakeBandedStream(150, 12, 6);
  Caldera system(scratch_.Path("facade"));
  ASSERT_TRUE(system.archive()->CreateStream("s", stream).ok());
  ASSERT_TRUE(system.archive()->BuildBtc("s", 0).ok());
  ASSERT_TRUE(system.archive()->BuildBtp("s", 0).ok());
  ExecOptions options;
  options.method = AccessMethodKind::kTopK;
  options.threshold = 0.1;
  auto result = system.Execute("s", Fixed(4, 5), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const TimestepProbability& e : result->signal) {
    EXPECT_GT(e.prob, 0.1);
  }
  // Threshold also filters other methods' signals.
  options.method = AccessMethodKind::kScan;
  auto scan = system.Execute("s", Fixed(4, 5), options);
  ASSERT_TRUE(scan.ok());
  for (const TimestepProbability& e : scan->signal) {
    EXPECT_GT(e.prob, 0.1);
  }
}

// ---------------------------------------------------------------------------
// Archive verification
// ---------------------------------------------------------------------------

class VerifyTest : public ::testing::Test {
 protected:
  VerifyTest() : scratch_("verify_test") {}
  test::ScratchDir scratch_;
};

TEST_F(VerifyTest, CleanArchivePasses) {
  MarkovianStream stream = test::MakeBandedStream(120, 10, 7);
  auto archived = ArchiveAll(scratch_, stream, "s");
  VerifyReport report;
  Status st = VerifyArchivedStream(archived.get(), {}, &report);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.timesteps_checked, 120u);
  EXPECT_GT(report.btc_entries_checked, 0u);
  EXPECT_GT(report.btp_entries_checked, 0u);
  EXPECT_GT(report.mc_entries_checked, 0u);
}

TEST_F(VerifyTest, DetectsIndexStreamMismatch) {
  MarkovianStream stream = test::MakeBandedStream(120, 10, 8);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  // Corrupt one BT_C value byte (a probability) without breaking the tree
  // structure: delete an entry instead, which is structurally clean but
  // inconsistent with the stream.
  {
    auto tree = BTree::Open(archive.StreamDir("s") + "/btc.attr0.bt");
    ASSERT_TRUE(tree.ok());
    auto cursor = (*tree)->SeekFirst();
    ASSERT_TRUE(cursor.ok());
    ASSERT_TRUE(cursor->valid());
    std::string victim(cursor->key());
    ASSERT_TRUE((*tree)->Delete(victim).ok());
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  VerifyReport report;
  Status st = VerifyArchivedStream(archived->get(), {}, &report);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST_F(VerifyTest, DetectsStaleIndexAfterStreamSwap) {
  // Archive stream A, build indexes, then swap in stream B's data files:
  // the indexes no longer match.
  MarkovianStream a = test::MakeBandedStream(100, 10, 9);
  MarkovianStream b = test::MakeBandedStream(100, 10, 10);
  StreamArchive archive(scratch_.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", a).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(
      WriteStream(archive.StreamDir("s"), b, DiskLayout::kSeparated).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  VerifyReport report;
  Status st = VerifyArchivedStream(archived->get(), {}, &report);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Streaming (Lahar-style) processor
// ---------------------------------------------------------------------------

TEST(StreamingTest, MatchesBatchSignal) {
  MarkovianStream stream = test::MakeBandedStream(80, 10, 11);
  RegularQuery query = Fixed(3, 4);
  std::vector<double> batch = RunRegOverStream(query, stream);

  StreamingQueryProcessor processor(query, stream.schema(), /*window=*/16);
  for (uint64_t t = 0; t < stream.length(); ++t) {
    auto p = processor.Consume(stream.marginal(t),
                               t == 0 ? Cpt() : stream.transition(t));
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    EXPECT_NEAR(*p, batch[t], 1e-12) << "t=" << t;
  }
  EXPECT_EQ(processor.timesteps(), stream.length());
  EXPECT_EQ(processor.recent().size(), 16u);
  // Window peak equals the best of the last 16 batch values.
  double best = 0;
  uint64_t best_t = 0;
  for (uint64_t t = stream.length() - 16; t < stream.length(); ++t) {
    if (batch[t] > best) {
      best = batch[t];
      best_t = t;
    }
  }
  if (best > 0) {
    EXPECT_EQ(processor.WindowPeak().time, best_t);
    EXPECT_NEAR(processor.WindowPeak().prob, best, 1e-12);
  }
}

TEST(StreamingTest, ValidatesInput) {
  MarkovianStream stream = test::MakeBandedStream(10, 6, 12);
  RegularQuery query = Fixed(1, 2);
  StreamingQueryProcessor processor(query, stream.schema());
  // First timestep with a CPT is rejected.
  EXPECT_FALSE(
      processor.Consume(stream.marginal(0), stream.transition(1)).ok());
  ASSERT_TRUE(processor.Consume(stream.marginal(0), Cpt()).ok());
  // Later timestep without a CPT is rejected.
  EXPECT_FALSE(processor.Consume(stream.marginal(1), Cpt()).ok());
}

TEST(StreamingTest, ResetStartsFresh) {
  MarkovianStream stream = test::MakeBandedStream(20, 6, 13);
  RegularQuery query = Fixed(1, 2);
  StreamingQueryProcessor processor(query, stream.schema());
  ASSERT_TRUE(processor.Consume(stream.marginal(0), Cpt()).ok());
  ASSERT_TRUE(
      processor.Consume(stream.marginal(1), stream.transition(1)).ok());
  processor.Reset();
  EXPECT_EQ(processor.timesteps(), 0u);
  EXPECT_TRUE(processor.recent().empty());
  EXPECT_TRUE(processor.Consume(stream.marginal(0), Cpt()).ok());
}

// ---------------------------------------------------------------------------
// Predicate-conditioned MC index (Section 3.3.2)
// ---------------------------------------------------------------------------

TEST(ConditionedMcTest, EntriesEqualConditionedProducts) {
  test::ScratchDir scratch("cond_mc_test");
  MarkovianStream stream = test::MakeValidStream(64, 6, 14);
  ASSERT_TRUE(WriteStream(scratch.Path("s"), stream).ok());
  auto stored = StoredStream::Open(scratch.Path("s"));
  ASSERT_TRUE(stored.ok());
  StoredStream* raw = stored->get();

  // Condition: "stays in {1, 2}".
  auto matcher = [](ValueId v) { return v == 1 || v == 2; };
  ASSERT_TRUE(
      McIndex::BuildConditioned(stream, scratch.Path("mc"), {}, matcher)
          .ok());
  TransitionSource source = ConditionSource(
      [raw](uint64_t t, Cpt* out) { return raw->ReadTransition(t, out); },
      matcher);
  auto index = McIndex::Open(scratch.Path("mc"), source);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  for (auto [from, to] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 5}, {3, 17}, {0, 63}, {10, 11}, {7, 40}}) {
    Cpt computed;
    ASSERT_TRUE((*index)->ComputeCpt(from, to, &computed).ok());
    // Direct conditioned product.
    Cpt direct =
        stream.transition(from + 1).ConditionDestination(matcher);
    for (uint64_t t = from + 2; t <= to; ++t) {
      direct = ComposeCpts(direct,
                           stream.transition(t).ConditionDestination(matcher),
                           stream.schema().state_count());
    }
    for (const Cpt::Row& row : direct.rows()) {
      for (const Cpt::RowEntry& e : row.entries) {
        EXPECT_NEAR(computed.Probability(row.src, e.dst), e.prob, 1e-9);
      }
    }
    // Conditioned products are sub-stochastic: entries only where every
    // intermediate step stays inside the predicate.
    for (const Cpt::Row& row : computed.rows()) {
      double mass = 0;
      for (const Cpt::RowEntry& e : row.entries) {
        EXPECT_TRUE(matcher(e.dst));
        mass += e.prob;
      }
      EXPECT_LE(mass, 1.0 + 1e-9);
    }
  }
}

TEST(ConditionedMcTest, ConditionedMassMatchesBruteForceStayProbability) {
  // P(X_1..X_5 all in P | X_0 = x) from the conditioned index equals the
  // brute-force sum over in-P trajectories.
  test::ScratchDir scratch("cond_mc_brute");
  MarkovianStream stream = test::MakeValidStream(8, 4, 15, 0.8);
  auto matcher = [](ValueId v) { return v <= 1; };  // P = {0, 1}.
  ASSERT_TRUE(
      McIndex::BuildConditioned(stream, scratch.Path("mc"), {}, matcher)
          .ok());
  ASSERT_TRUE(WriteStream(scratch.Path("s"), stream).ok());
  auto stored = StoredStream::Open(scratch.Path("s"));
  ASSERT_TRUE(stored.ok());
  StoredStream* raw = stored->get();
  auto index = McIndex::Open(
      scratch.Path("mc"),
      ConditionSource(
          [raw](uint64_t t, Cpt* out) { return raw->ReadTransition(t, out); },
          matcher));
  ASSERT_TRUE(index.ok());

  Cpt span;
  ASSERT_TRUE((*index)->ComputeCpt(0, 5, &span).ok());
  for (const Distribution::Entry& start : stream.marginal(0).entries()) {
    // Brute force over trajectories staying in P.
    std::vector<std::pair<ValueId, double>> frontier{{start.value, 1.0}};
    for (uint64_t t = 1; t <= 5; ++t) {
      std::vector<std::pair<ValueId, double>> next;
      for (const auto& [v, p] : frontier) {
        const Cpt::Row* row = stream.transition(t).FindRow(v);
        if (row == nullptr) continue;
        for (const Cpt::RowEntry& e : row->entries) {
          if (matcher(e.dst)) next.emplace_back(e.dst, p * e.prob);
        }
      }
      frontier = std::move(next);
    }
    double brute = 0;
    for (const auto& [v, p] : frontier) brute += p;
    double indexed = 0;
    const Cpt::Row* row = span.FindRow(start.value);
    if (row != nullptr) {
      for (const Cpt::RowEntry& e : row->entries) indexed += e.prob;
    }
    EXPECT_NEAR(indexed, brute, 1e-9) << "start=" << start.value;
  }
}

// ---------------------------------------------------------------------------
// Multi-attribute streams
// ---------------------------------------------------------------------------

MarkovianStream MakeTwoAttributeStream(uint64_t length, uint64_t seed) {
  StreamSchema schema;
  schema.AddAttribute("loc", {"H", "O", "C"});
  schema.AddAttribute("mode", {"idle", "busy"});
  // Random valid stream over the 6 composite states.
  MarkovianStream flat = test::MakeValidStream(length, 6, seed, 0.6);
  MarkovianStream stream(schema);
  for (uint64_t t = 0; t < flat.length(); ++t) {
    stream.Append(flat.marginal(t), flat.transition(t));
  }
  return stream;
}

TEST(MultiAttributeTest, PerAttributeIndexesAndCrossAttributeQueries) {
  test::ScratchDir scratch("multi_attr_test");
  MarkovianStream stream = MakeTwoAttributeStream(150, 16);
  ASSERT_TRUE(stream.Validate().ok());

  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 1).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 0).ok());
  ASSERT_TRUE(archive.BuildBtp("s", 1).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  EXPECT_NE((*archived)->btc(0), nullptr);
  EXPECT_NE((*archived)->btc(1), nullptr);

  // Cross-attribute fixed query: location O, then mode busy.
  RegularQuery query = RegularQuery::Sequence(
      "cross",
      {Predicate::Equality(0, 1, "O"), Predicate::Equality(1, 1, "busy")});
  auto scan = RunScanMethod(archived->get(), query);
  auto btree = RunBTreeMethod(archived->get(), query);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(btree.ok()) << btree.status().ToString();
  // Every nonzero scan probability appears identically in the B+Tree
  // method's output.
  for (const TimestepProbability& e : scan->signal) {
    if (e.prob <= 0) continue;
    bool found = false;
    for (const TimestepProbability& o : btree->signal) {
      if (o.time == e.time) {
        EXPECT_NEAR(o.prob, e.prob, 1e-9);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "t=" << e.time;
  }

  // Verification covers both attributes' indexes.
  VerifyReport report;
  Status st = VerifyArchivedStream(archived->get(), {}, &report);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(MultiAttributeTest, MissingAttributeIndexFailsVariableMethod) {
  test::ScratchDir scratch("multi_attr_missing");
  MarkovianStream stream = MakeTwoAttributeStream(80, 17);
  StreamArchive archive(scratch.Path("archive"));
  ASSERT_TRUE(archive.CreateStream("s", stream).ok());
  ASSERT_TRUE(archive.BuildBtc("s", 0).ok());  // Attribute 1 NOT indexed.
  ASSERT_TRUE(archive.BuildMc("s", {}).ok());
  auto archived = archive.OpenStream("s");
  ASSERT_TRUE(archived.ok());
  Predicate busy = Predicate::Equality(1, 1, "busy");
  RegularQuery query(
      "v", {QueryLink{std::nullopt, Predicate::Equality(0, 0, "H")},
            QueryLink{Predicate::Not(busy), busy}});
  auto result = RunMcMethod(archived->get(), query);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace caldera
