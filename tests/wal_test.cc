// Unit tests for the ingest write-ahead log: frame roundtrips, torn-tail
// truncation, sequence-chain validation, rollback, and fault injection on
// the log file itself.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include "storage/fault_injection_file.h"
#include "test_util.h"

namespace caldera {
namespace {

TEST(WalTest, AppendSyncReopenRoundtrip) {
  test::ScratchDir scratch("wal_roundtrip");
  const std::string path = scratch.Path("ingest.wal");
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE((*wal)->recovered().empty());
    EXPECT_FALSE((*wal)->truncated_tail());
    auto s1 = (*wal)->Append(1, "hello");
    auto s2 = (*wal)->Append(2, std::string(3000, 'x'));
    auto s3 = (*wal)->Append(7, "");  // Empty payloads are legal.
    ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
    EXPECT_EQ(*s1, 1u);
    EXPECT_EQ(*s2, 2u);
    EXPECT_EQ(*s3, 3u);
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE((*wal)->truncated_tail());
  const auto& records = (*wal)->recovered();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].payload, "hello");
  EXPECT_EQ(records[1].payload.size(), 3000u);
  EXPECT_EQ(records[2].type, 7);
  EXPECT_EQ(records[2].payload, "");
  // Sequence numbering continues where the scan left off.
  EXPECT_EQ((*wal)->next_seq(), 4u);
}

TEST(WalTest, TornTailIsTruncated) {
  test::ScratchDir scratch("wal_torn");
  const std::string path = scratch.Path("ingest.wal");
  uint64_t good_size = 0;
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "first").ok());
    ASSERT_TRUE((*wal)->Append(1, "second").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    good_size = (*wal)->size_bytes();
    // A frame whose tail never reached disk: append then chop mid-payload.
    ASSERT_TRUE((*wal)->Append(1, "torn-away-payload").ok());
  }
  {
    auto f = File::Open(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Truncate(good_size + 9).ok());
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE((*wal)->truncated_tail());
  ASSERT_EQ((*wal)->recovered().size(), 2u);
  EXPECT_EQ((*wal)->recovered()[1].payload, "second");
  EXPECT_EQ((*wal)->size_bytes(), good_size);
  // The log is writable again and reopens cleanly.
  ASSERT_TRUE((*wal)->Append(1, "third").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  auto again = Wal::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)->truncated_tail());
  ASSERT_EQ((*again)->recovered().size(), 3u);
}

TEST(WalTest, CorruptMiddleFrameDropsItAndEverythingAfter) {
  test::ScratchDir scratch("wal_corrupt");
  const std::string path = scratch.Path("ingest.wal");
  uint64_t first_frame_end = 0;
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "aaaa").ok());
    first_frame_end = (*wal)->size_bytes();
    ASSERT_TRUE((*wal)->Append(1, "bbbb").ok());
    ASSERT_TRUE((*wal)->Append(1, "cccc").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    // Flip one payload byte of the middle frame.
    auto f = File::Open(path);
    ASSERT_TRUE(f.ok());
    char byte = 0;
    const uint64_t at = first_frame_end + 17;  // Frame header is 17 bytes.
    ASSERT_TRUE((*f)->ReadAt(at, 1, &byte).ok());
    byte ^= 0x40;
    ASSERT_TRUE((*f)->WriteAt(at, std::string_view(&byte, 1)).ok());
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE((*wal)->truncated_tail());
  ASSERT_EQ((*wal)->recovered().size(), 1u);
  EXPECT_EQ((*wal)->recovered()[0].payload, "aaaa");
}

TEST(WalTest, ResetEmptiesTheLogAndRestartsSequencing) {
  test::ScratchDir scratch("wal_reset");
  const std::string path = scratch.Path("ingest.wal");
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "payload").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->next_seq(), 1u);
  ASSERT_TRUE((*wal)->Append(1, "fresh").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  auto reopened = Wal::Open(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->recovered().size(), 1u);
  EXPECT_EQ((*reopened)->recovered()[0].payload, "fresh");
  EXPECT_EQ((*reopened)->recovered()[0].seq, 1u);
}

TEST(WalTest, RollbackUndoesSpeculativeAppends) {
  test::ScratchDir scratch("wal_rollback");
  const std::string path = scratch.Path("ingest.wal");
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "keep").ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  const Wal::Mark mark = (*wal)->mark();
  ASSERT_TRUE((*wal)->Append(1, "discard-1").ok());
  ASSERT_TRUE((*wal)->Append(1, "discard-2").ok());
  ASSERT_TRUE((*wal)->RollbackTo(mark).ok());
  EXPECT_EQ((*wal)->size_bytes(), mark.size);
  // The rolled-back sequence numbers are reused, keeping the chain intact.
  auto seq = (*wal)->Append(1, "replacement");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 2u);
  ASSERT_TRUE((*wal)->Sync().ok());
  auto reopened = Wal::Open(path);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->recovered().size(), 2u);
  EXPECT_EQ((*reopened)->recovered()[1].payload, "replacement");
}

TEST(WalTest, FailedSyncSurfacesAsError) {
  test::ScratchDir scratch("wal_failsync");
  FaultInjectionOptions options;
  options.fail_sync = true;
  ScopedFaultInjection inject("ingest.wal", options);
  auto wal = Wal::Open(scratch.Path("ingest.wal"));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "doomed").ok());
  EXPECT_FALSE((*wal)->Sync().ok());
}

TEST(WalTest, TornWriteOfAFrameIsInvisibleAfterReopen) {
  test::ScratchDir scratch("wal_tornwrite");
  const std::string path = scratch.Path("ingest.wal");
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, "durable").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    // The next writer's first frame write tears mid-way.
    FaultInjectionOptions options;
    options.fail_writes_from = 0;
    options.torn_writes = true;
    ScopedFaultInjection inject("ingest.wal", options);
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_FALSE((*wal)->Append(1, "never-acknowledged").ok());
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ((*wal)->recovered().size(), 1u);
  EXPECT_EQ((*wal)->recovered()[0].payload, "durable");
}

TEST(WalTest, BadMagicIsCorruption) {
  test::ScratchDir scratch("wal_magic");
  const std::string path = scratch.Path("ingest.wal");
  {
    auto f = File::OpenOrCreate(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->WriteAt(0, "NOTAWAL0xxxx").ok());
  }
  auto wal = Wal::Open(path);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace caldera
