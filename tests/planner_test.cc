#include <gtest/gtest.h>

#include "caldera/planner.h"
#include "common/logging.h"
#include "rfid/workload.h"
#include "test_util.h"

namespace caldera {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : scratch_("planner_test") {}

  std::unique_ptr<ArchivedStream> Archive(const MarkovianStream& stream,
                                          bool btc, bool btp, bool mc) {
    StreamArchive archive(scratch_.Path("archive"));
    CALDERA_CHECK_OK(
        archive.CreateStream("s", stream, DiskLayout::kSeparated));
    if (btc) CALDERA_CHECK_OK(archive.BuildBtc("s", 0));
    if (btp) CALDERA_CHECK_OK(archive.BuildBtp("s", 0));
    if (mc) CALDERA_CHECK_OK(archive.BuildMc("s", {}));
    auto opened = archive.OpenStream("s");
    CALDERA_CHECK_OK(opened.status());
    return std::move(*opened);
  }

  test::ScratchDir scratch_;
};

RegularQuery Fixed(uint32_t a, uint32_t b) {
  return RegularQuery::Sequence(
      "f", {Predicate::Equality(0, a, "a"), Predicate::Equality(0, b, "b")});
}

RegularQuery Variable(uint32_t a, uint32_t b) {
  Predicate t = Predicate::Equality(0, b, "b");
  return RegularQuery(
      "v", {QueryLink{std::nullopt, Predicate::Equality(0, a, "a")},
            QueryLink{Predicate::Not(t), t}});
}

TEST_F(PlannerTest, DensityEstimateTracksActualDensity) {
  SnippetStreamSpec spec;
  spec.num_snippets = 20;
  spec.density = 0.2;
  spec.seed = 3;
  auto workload = MakeSnippetStream(spec);
  ASSERT_TRUE(workload.ok());
  auto archived = Archive(workload->stream, true, true, false);
  // Density is defined by the MOST relevant predicate; the hallway of the
  // target room is touched by every snippet, so expect a high estimate for
  // the fixed query but a small one for a room-only query.
  RegularQuery room_only = RegularQuery::Sequence(
      "room", {Predicate::Equality(0, workload->target_room, "room")});
  auto density = EstimateDensity(archived.get(), room_only);
  ASSERT_TRUE(density.ok());
  EXPECT_LT(*density, 0.4);
}

TEST_F(PlannerTest, SparseFixedQueryUsesBTree) {
  // Low-density snippet workload: both the target room and its hallway are
  // rare, so the planner must choose the B+Tree method.
  SnippetStreamSpec spec;
  spec.num_snippets = 25;
  spec.density = 0.15;
  spec.seed = 4;
  auto workload = MakeSnippetStream(spec);
  ASSERT_TRUE(workload.ok());
  auto archived = Archive(workload->stream, true, true, true);
  auto plan =
      PlanQuery(archived.get(), workload->EnteredRoomFixed(), false, false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, AccessMethodKind::kBTree);
  EXPECT_LT(plan->estimated_density, 0.8);
}

TEST_F(PlannerTest, DenseFixedQueryFallsBackToScan) {
  // Every timestep has support on both values.
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b"});
  MarkovianStream stream(schema);
  Distribution current = Distribution::FromPairs({{0, 0.5}, {1, 0.5}});
  stream.Append(current, Cpt());
  for (int t = 1; t < 100; ++t) {
    Cpt cpt;
    cpt.SetRow(0, {{0, 0.5}, {1, 0.5}});
    cpt.SetRow(1, {{0, 0.5}, {1, 0.5}});
    current = cpt.Propagate(current);
    stream.Append(current, std::move(cpt));
  }
  auto archived = Archive(stream, true, true, false);
  auto plan = PlanQuery(archived.get(), Fixed(0, 1), false, false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, AccessMethodKind::kScan);
  EXPECT_GT(plan->estimated_density, 0.9);
}

TEST_F(PlannerTest, DenseTopKQueryUsesTopK) {
  StreamSchema schema = SingleAttributeSchema("loc", {"a", "b"});
  MarkovianStream stream(schema);
  Distribution current = Distribution::FromPairs({{0, 0.5}, {1, 0.5}});
  stream.Append(current, Cpt());
  for (int t = 1; t < 100; ++t) {
    Cpt cpt;
    cpt.SetRow(0, {{0, 0.5}, {1, 0.5}});
    cpt.SetRow(1, {{0, 0.5}, {1, 0.5}});
    current = cpt.Propagate(current);
    stream.Append(current, std::move(cpt));
  }
  auto archived = Archive(stream, true, true, false);
  auto plan = PlanQuery(archived.get(), Fixed(0, 1), /*want_topk=*/true,
                        false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, AccessMethodKind::kTopK);
}

TEST_F(PlannerTest, VariableQueryPrefersMcIndex) {
  MarkovianStream stream = test::MakeBandedStream(200, 16, 5);
  auto archived = Archive(stream, true, true, true);
  auto plan = PlanQuery(archived.get(), Variable(3, 12), false, false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, AccessMethodKind::kMcIndex);
}

TEST_F(PlannerTest, VariableQueryApproximationAllowed) {
  MarkovianStream stream = test::MakeBandedStream(200, 16, 6);
  auto archived = Archive(stream, true, true, true);
  auto plan = PlanQuery(archived.get(), Variable(3, 12), false, true);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, AccessMethodKind::kSemiIndependent);
}

TEST_F(PlannerTest, VariableQueryWithoutMcFallsBackToScan) {
  MarkovianStream stream = test::MakeBandedStream(200, 16, 7);
  auto archived = Archive(stream, true, true, false);
  auto plan = PlanQuery(archived.get(), Variable(3, 12), false, false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, AccessMethodKind::kScan);
}

TEST_F(PlannerTest, MissingBtcForcesScan) {
  MarkovianStream stream = test::MakeBandedStream(100, 16, 8);
  auto archived = Archive(stream, false, false, false);
  auto plan = PlanQuery(archived.get(), Fixed(2, 3), false, false);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->method, AccessMethodKind::kScan);
}

}  // namespace
}  // namespace caldera
