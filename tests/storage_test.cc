#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/encoding.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/file.h"
#include "storage/pager.h"
#include "storage/record_file.h"

namespace caldera {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("caldera_storage_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(StorageTest, FileWriteReadRoundTrip) {
  auto file = File::OpenOrCreate(Path("f"));
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  EXPECT_EQ((*file)->size(), 11u);
  char buf[11];
  ASSERT_TRUE((*file)->ReadAt(0, 11, buf).ok());
  EXPECT_EQ(std::string(buf, 11), "hello world");
  ASSERT_TRUE((*file)->ReadAt(6, 5, buf).ok());
  EXPECT_EQ(std::string(buf, 5), "world");
}

TEST_F(StorageTest, FileShortReadIsError) {
  auto file = File::OpenOrCreate(Path("f"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("abc").ok());
  char buf[10];
  Status st = (*file)->ReadAt(0, 10, buf);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST_F(StorageTest, OpenReadOnlyMissingIsNotFound) {
  auto file = File::OpenReadOnly(Path("missing"));
  EXPECT_EQ(file.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, FileTruncateShrinksAndGrows) {
  auto file = File::OpenOrCreate(Path("f"));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  ASSERT_TRUE((*file)->Truncate(4).ok());
  EXPECT_EQ((*file)->size(), 4u);
  ASSERT_TRUE((*file)->Truncate(8).ok());
  char buf[8];
  ASSERT_TRUE((*file)->ReadAt(0, 8, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "0123");
  EXPECT_EQ(std::string(buf + 4, 4), std::string(4, '\0'));
}

TEST_F(StorageTest, PagerAllocateReadWrite) {
  auto pager = Pager::Create(Path("p"), 512);
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  EXPECT_EQ((*pager)->page_count(), 1u);  // Header page.
  EXPECT_EQ((*pager)->physical_page_size(), 512u);
  EXPECT_EQ((*pager)->page_size(), 512u - kPageTrailerSize);
  auto p1 = (*pager)->AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  const size_t payload = (*pager)->page_size();
  std::string data(payload, 'x');
  ASSERT_TRUE((*pager)->WritePage(*p1, data.data()).ok());
  std::vector<char> buf(payload);
  ASSERT_TRUE((*pager)->ReadPage(*p1, buf.data()).ok());
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), payload), 0);
}

TEST_F(StorageTest, PagerRejectsBadPageSize) {
  EXPECT_EQ(Pager::Create(Path("p"), 100).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Pager::Create(Path("p"), 1000).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StorageTest, PagerRejectsOutOfRangeAccess) {
  auto pager = Pager::Create(Path("p"), 512);
  ASSERT_TRUE(pager.ok());
  char buf[512];
  EXPECT_EQ((*pager)->ReadPage(5, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*pager)->WritePage(0, buf).code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, PagerPersistsAcrossReopen) {
  {
    auto pager = Pager::Create(Path("p"), 1024);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::string data(1024, 'z');
    ASSERT_TRUE((*pager)->WritePage(*id, data.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  EXPECT_EQ((*pager)->physical_page_size(), 1024u);
  EXPECT_EQ((*pager)->page_size(), 1024u - kPageTrailerSize);
  EXPECT_EQ((*pager)->format_version(), 2u);
  EXPECT_EQ((*pager)->page_count(), 2u);
  char buf[1024];
  ASSERT_TRUE((*pager)->ReadPage(1, buf).ok());
  EXPECT_EQ(buf[17], 'z');
}

TEST_F(StorageTest, PagerOpenRejectsGarbage) {
  {
    auto file = File::OpenOrCreate(Path("p"));
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(std::string(2048, 'g')).ok());
  }
  EXPECT_EQ(Pager::Open(Path("p")).status().code(), StatusCode::kCorruption);
}

TEST_F(StorageTest, PagerOpenMissingIsNotFoundAndDoesNotCreate) {
  EXPECT_EQ(Pager::Open(Path("missing")).status().code(),
            StatusCode::kNotFound);
  // Regression: Open used to create a zero-byte junk file before failing.
  EXPECT_FALSE(FileExists(Path("missing")));
}

TEST_F(StorageTest, PagerOpenRejectsOverflowingPageCount) {
  // A v1 header whose page_count * page_size wraps to 0 mod 2^64. The
  // truncation check must use division so the wrap cannot slip past it.
  {
    auto file = File::OpenOrCreate(Path("p"));
    ASSERT_TRUE(file.ok());
    std::string header = "CLDRPGR1";
    PutFixed32(512, &header);
    PutFixed64(uint64_t{1} << 55, &header);  // 2^55 * 512 == 2^64 == 0.
    header.resize(1024, '\0');
    ASSERT_TRUE((*file)->Append(header).ok());
  }
  EXPECT_EQ(Pager::Open(Path("p")).status().code(), StatusCode::kCorruption);
}

TEST_F(StorageTest, PagerDetectsAnySingleBitFlipInDataPage) {
  {
    auto pager = Pager::Create(Path("p"), 512);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    std::string data(504, '\0');
    for (size_t i = 0; i < data.size(); ++i) data[i] = char('a' + i % 26);
    ASSERT_TRUE((*pager)->WritePage(1, data.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  // Flip every bit position (byte b, bit b%8) across the whole physical
  // page — payload, CRC, and zero padding alike — and require Corruption
  // naming the page.
  char buf[512];
  for (size_t byte = 0; byte < 512; ++byte) {
    auto file = File::OpenOrCreate(Path("p"));
    ASSERT_TRUE(file.ok());
    char c;
    ASSERT_TRUE((*file)->ReadAt(512 + byte, 1, &c).ok());
    c = char(c ^ (1u << (byte % 8)));
    ASSERT_TRUE((*file)->WriteAt(512 + byte, {&c, 1}).ok());

    auto pager = Pager::Open(Path("p"));
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    Status st = (*pager)->ReadPage(1, buf);
    ASSERT_EQ(st.code(), StatusCode::kCorruption) << "byte " << byte;
    EXPECT_NE(st.message().find("page 1"), std::string::npos) << st.message();

    c = char(c ^ (1u << (byte % 8)));  // Restore for the next iteration.
    ASSERT_TRUE((*file)->WriteAt(512 + byte, {&c, 1}).ok());
  }
}

TEST_F(StorageTest, PagerDetectsBitFlipInHeaderPage) {
  {
    auto pager = Pager::Create(Path("p"), 512);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  // The header page is checksummed too: flips in its zero padding or
  // trailer (beyond the magic/size/count fields, which have their own
  // sanity checks) must fail the open.
  for (size_t byte : {25u, 200u, 504u, 508u, 511u}) {
    auto file = File::OpenOrCreate(Path("p"));
    ASSERT_TRUE(file.ok());
    char c;
    ASSERT_TRUE((*file)->ReadAt(byte, 1, &c).ok());
    char flipped = char(c ^ 1);
    ASSERT_TRUE((*file)->WriteAt(byte, {&flipped, 1}).ok());
    EXPECT_EQ(Pager::Open(Path("p")).status().code(), StatusCode::kCorruption)
        << "byte " << byte;
    ASSERT_TRUE((*file)->WriteAt(byte, {&c, 1}).ok());
  }
}

TEST_F(StorageTest, PagerChecksumBindsPageId) {
  // A misdirected write — page content landing at the wrong offset — is
  // caught because the CRC covers the page id, not just the payload.
  {
    auto pager = Pager::Create(Path("p"), 512);
    ASSERT_TRUE(pager.ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    ASSERT_TRUE((*pager)->AllocatePage().ok());
    std::string one(504, '1');
    std::string two(504, '2');
    ASSERT_TRUE((*pager)->WritePage(1, one.data()).ok());
    ASSERT_TRUE((*pager)->WritePage(2, two.data()).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  {
    auto file = File::OpenOrCreate(Path("p"));
    ASSERT_TRUE(file.ok());
    char p1[512], p2[512];
    ASSERT_TRUE((*file)->ReadAt(512, 512, p1).ok());
    ASSERT_TRUE((*file)->ReadAt(1024, 512, p2).ok());
    ASSERT_TRUE((*file)->WriteAt(512, {p2, 512}).ok());
    ASSERT_TRUE((*file)->WriteAt(1024, {p1, 512}).ok());
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok());
  char buf[504];
  EXPECT_EQ((*pager)->ReadPage(1, buf).code(), StatusCode::kCorruption);
  EXPECT_EQ((*pager)->ReadPage(2, buf).code(), StatusCode::kCorruption);
}

TEST_F(StorageTest, PagerReadsLegacyV1Files) {
  // Hand-build a v1 file: 20-byte header in page 0, one raw data page.
  {
    auto file = File::OpenOrCreate(Path("p"));
    ASSERT_TRUE(file.ok());
    std::string image = "CLDRPGR1";
    PutFixed32(512, &image);
    PutFixed64(2, &image);
    image.resize(512, '\0');
    image.append(std::string(512, 'v'));
    ASSERT_TRUE((*file)->Append(image).ok());
  }
  auto pager = Pager::Open(Path("p"));
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  EXPECT_EQ((*pager)->format_version(), 1u);
  // v1 has no trailer: the full physical page is payload.
  EXPECT_EQ((*pager)->page_size(), 512u);
  EXPECT_EQ((*pager)->physical_page_size(), 512u);
  char buf[512];
  ASSERT_TRUE((*pager)->ReadPage(1, buf).ok());
  EXPECT_EQ(std::string(buf, 512), std::string(512, 'v'));
  // v1 files stay writable (raw, no checksum stamping).
  std::string updated(512, 'w');
  ASSERT_TRUE((*pager)->WritePage(1, updated.data()).ok());
  auto grown = (*pager)->AllocatePage();
  ASSERT_TRUE(grown.ok());
  ASSERT_TRUE((*pager)->Sync().ok());
  auto reopened = Pager::Open(Path("p"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 3u);
  ASSERT_TRUE((*reopened)->ReadPage(1, buf).ok());
  EXPECT_EQ(buf[0], 'w');
}

TEST_F(StorageTest, BufferPoolCachesPages) {
  auto pager = Pager::Create(Path("p"), 512);
  ASSERT_TRUE(pager.ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*pager)->AllocatePage().ok());
  BufferPool pool(pager->get(), 8);
  for (int round = 0; round < 3; ++round) {
    for (PageId id = 1; id <= 4; ++id) {
      auto handle = pool.Fetch(id);
      ASSERT_TRUE(handle.ok());
      EXPECT_EQ(handle->page_id(), id);
    }
  }
  EXPECT_EQ(pool.stats().fetches, 12u);
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pool.stats().hits, 8u);
}

TEST_F(StorageTest, BufferPoolEvictsLru) {
  auto pager = Pager::Create(Path("p"), 512);
  ASSERT_TRUE(pager.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE((*pager)->AllocatePage().ok());
  BufferPool pool(pager->get(), 2);
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(2).ok());
  ASSERT_TRUE(pool.Fetch(3).ok());  // Evicts page 1.
  EXPECT_EQ(pool.stats().evictions, 1u);
  ASSERT_TRUE(pool.Fetch(2).ok());  // Still resident.
  EXPECT_EQ(pool.stats().hits, 1u);
  ASSERT_TRUE(pool.Fetch(1).ok());  // Miss again.
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST_F(StorageTest, BufferPoolWritesBackDirtyPages) {
  auto pager = Pager::Create(Path("p"), 512);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->AllocatePage().ok());
  {
    BufferPool pool(pager->get(), 2);
    auto handle = pool.Fetch(1);
    ASSERT_TRUE(handle.ok());
    handle->data()[0] = 'D';
    handle->MarkDirty();
    handle->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  char buf[512];
  ASSERT_TRUE((*pager)->ReadPage(1, buf).ok());
  EXPECT_EQ(buf[0], 'D');
}

TEST_F(StorageTest, BufferPoolExhaustionWhenAllPinned) {
  auto pager = Pager::Create(Path("p"), 512);
  ASSERT_TRUE(pager.ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE((*pager)->AllocatePage().ok());
  BufferPool pool(pager->get(), 2);
  auto h1 = pool.Fetch(1);
  auto h2 = pool.Fetch(2);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  auto h3 = pool.Fetch(3);
  EXPECT_EQ(h3.status().code(), StatusCode::kResourceExhausted);
  h1->Release();
  auto h3b = pool.Fetch(3);
  EXPECT_TRUE(h3b.ok());
}

TEST_F(StorageTest, BufferPoolNewPageOnFullyPinnedPoolDoesNotOrphanPage) {
  auto pager = Pager::Create(Path("p"), 512);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 2);
  auto h1 = pool.NewPage();
  auto h2 = pool.NewPage();
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  ASSERT_EQ((*pager)->page_count(), 3u);  // Header + two new pages.
  // Regression: NewPage used to allocate the page before grabbing a frame,
  // so a fully-pinned pool leaked an orphaned page into the file.
  auto h3 = pool.NewPage();
  EXPECT_EQ(h3.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*pager)->page_count(), 3u);
  h1->Release();
  auto h4 = pool.NewPage();
  ASSERT_TRUE(h4.ok());
  EXPECT_EQ(h4->page_id(), 3u);
  EXPECT_EQ((*pager)->page_count(), 4u);
}

TEST_F(StorageTest, RecordFileRoundTrip) {
  {
    auto writer = RecordFileWriter::Create(Path("r"), 512);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int i = 0; i < 100; ++i) {
      std::string record = "record-" + std::to_string(i) + "-" +
                           std::string(i % 37, 'x');
      auto id = (*writer)->Append(record);
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, static_cast<uint64_t>(i));
    }
    ASSERT_TRUE((*writer)->Finalize().ok());
  }
  auto reader = RecordFileReader::Open(Path("r"));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_records(), 100u);
  std::string out;
  for (int i : {0, 1, 50, 99, 7}) {
    ASSERT_TRUE((*reader)->Get(i, &out).ok());
    EXPECT_EQ(out, "record-" + std::to_string(i) + "-" +
                       std::string(i % 37, 'x'));
  }
}

TEST_F(StorageTest, RecordFileHandlesEmptyRecordsAndSpanningRecords) {
  {
    auto writer = RecordFileWriter::Create(Path("r"), 512);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("").ok());
    ASSERT_TRUE((*writer)->Append(std::string(5000, 'b')).ok());  // ~10 pages
    ASSERT_TRUE((*writer)->Append("tail").ok());
    ASSERT_TRUE((*writer)->Finalize().ok());
  }
  auto reader = RecordFileReader::Open(Path("r"));
  ASSERT_TRUE(reader.ok());
  std::string out;
  ASSERT_TRUE((*reader)->Get(0, &out).ok());
  EXPECT_EQ(out, "");
  ASSERT_TRUE((*reader)->Get(1, &out).ok());
  EXPECT_EQ(out, std::string(5000, 'b'));
  ASSERT_TRUE((*reader)->Get(2, &out).ok());
  EXPECT_EQ(out, "tail");
}

TEST_F(StorageTest, RecordFileGetOutOfRange) {
  {
    auto writer = RecordFileWriter::Create(Path("r"), 512);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("x").ok());
    ASSERT_TRUE((*writer)->Finalize().ok());
  }
  auto reader = RecordFileReader::Open(Path("r"));
  ASSERT_TRUE(reader.ok());
  std::string out;
  EXPECT_EQ((*reader)->Get(1, &out).code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, RecordFileEmptyFile) {
  {
    auto writer = RecordFileWriter::Create(Path("r"), 512);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Finalize().ok());
  }
  auto reader = RecordFileReader::Open(Path("r"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_records(), 0u);
}

TEST_F(StorageTest, RecordFileAppendAfterFinalizeFails) {
  auto writer = RecordFileWriter::Create(Path("r"), 512);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Finalize().ok());
  EXPECT_EQ((*writer)->Append("late").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(StorageTest, RecordFileSequentialScanIsPageEfficient) {
  const int kRecords = 256;
  {
    auto writer = RecordFileWriter::Create(Path("r"), 4096);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE((*writer)->Append(std::string(64, 'a' + (i % 26))).ok());
    }
    ASSERT_TRUE((*writer)->Finalize().ok());
  }
  auto reader = RecordFileReader::Open(Path("r"), /*pool_pages=*/8);
  ASSERT_TRUE(reader.ok());
  std::string out;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE((*reader)->Get(i, &out).ok());
  }
  // 256 * 64B = 16KiB of data = 4 pages; sequential scan should miss only
  // ~once per page, not once per record.
  EXPECT_LE((*reader)->stats().misses, 8u);
  EXPECT_GE((*reader)->stats().hits, 240u);
}

TEST_F(StorageTest, RecordFileDetectsTruncatedDirectory) {
  {
    auto writer = RecordFileWriter::Create(Path("r"), 512);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*writer)->Append(std::string(100, 'q')).ok());
    }
    ASSERT_TRUE((*writer)->Finalize().ok());
  }
  // Corrupt the meta page's record count.
  {
    auto file = File::OpenOrCreate(Path("r"));
    ASSERT_TRUE(file.ok());
    std::string bogus;
    PutFixed64(999999, &bogus);
    ASSERT_TRUE((*file)->WriteAt(512 + 8, bogus).ok());
  }
  auto reader = RecordFileReader::Open(Path("r"));
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace caldera
