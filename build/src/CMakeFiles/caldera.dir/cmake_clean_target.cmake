file(REMOVE_RECURSE
  "libcaldera.a"
)
