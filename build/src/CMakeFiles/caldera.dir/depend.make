# Empty dependencies file for caldera.
# This may be replaced when dependencies are built.
