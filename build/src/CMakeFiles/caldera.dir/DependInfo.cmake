
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/caldera.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/caldera.dir/btree/btree.cc.o.d"
  "/root/repo/src/caldera/access_method.cc" "src/CMakeFiles/caldera.dir/caldera/access_method.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/access_method.cc.o.d"
  "/root/repo/src/caldera/archive.cc" "src/CMakeFiles/caldera.dir/caldera/archive.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/archive.cc.o.d"
  "/root/repo/src/caldera/batch.cc" "src/CMakeFiles/caldera.dir/caldera/batch.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/batch.cc.o.d"
  "/root/repo/src/caldera/btree_method.cc" "src/CMakeFiles/caldera.dir/caldera/btree_method.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/btree_method.cc.o.d"
  "/root/repo/src/caldera/intersection.cc" "src/CMakeFiles/caldera.dir/caldera/intersection.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/intersection.cc.o.d"
  "/root/repo/src/caldera/mc_method.cc" "src/CMakeFiles/caldera.dir/caldera/mc_method.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/mc_method.cc.o.d"
  "/root/repo/src/caldera/planner.cc" "src/CMakeFiles/caldera.dir/caldera/planner.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/planner.cc.o.d"
  "/root/repo/src/caldera/scan_method.cc" "src/CMakeFiles/caldera.dir/caldera/scan_method.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/scan_method.cc.o.d"
  "/root/repo/src/caldera/semi_independent_method.cc" "src/CMakeFiles/caldera.dir/caldera/semi_independent_method.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/semi_independent_method.cc.o.d"
  "/root/repo/src/caldera/system.cc" "src/CMakeFiles/caldera.dir/caldera/system.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/system.cc.o.d"
  "/root/repo/src/caldera/topk_method.cc" "src/CMakeFiles/caldera.dir/caldera/topk_method.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/topk_method.cc.o.d"
  "/root/repo/src/caldera/verify.cc" "src/CMakeFiles/caldera.dir/caldera/verify.cc.o" "gcc" "src/CMakeFiles/caldera.dir/caldera/verify.cc.o.d"
  "/root/repo/src/common/encoding.cc" "src/CMakeFiles/caldera.dir/common/encoding.cc.o" "gcc" "src/CMakeFiles/caldera.dir/common/encoding.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/caldera.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/caldera.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/caldera.dir/common/status.cc.o" "gcc" "src/CMakeFiles/caldera.dir/common/status.cc.o.d"
  "/root/repo/src/hmm/hmm.cc" "src/CMakeFiles/caldera.dir/hmm/hmm.cc.o" "gcc" "src/CMakeFiles/caldera.dir/hmm/hmm.cc.o.d"
  "/root/repo/src/hmm/particle_smoother.cc" "src/CMakeFiles/caldera.dir/hmm/particle_smoother.cc.o" "gcc" "src/CMakeFiles/caldera.dir/hmm/particle_smoother.cc.o.d"
  "/root/repo/src/hmm/smoother.cc" "src/CMakeFiles/caldera.dir/hmm/smoother.cc.o" "gcc" "src/CMakeFiles/caldera.dir/hmm/smoother.cc.o.d"
  "/root/repo/src/hmm/viterbi.cc" "src/CMakeFiles/caldera.dir/hmm/viterbi.cc.o" "gcc" "src/CMakeFiles/caldera.dir/hmm/viterbi.cc.o.d"
  "/root/repo/src/index/btc_index.cc" "src/CMakeFiles/caldera.dir/index/btc_index.cc.o" "gcc" "src/CMakeFiles/caldera.dir/index/btc_index.cc.o.d"
  "/root/repo/src/index/btp_index.cc" "src/CMakeFiles/caldera.dir/index/btp_index.cc.o" "gcc" "src/CMakeFiles/caldera.dir/index/btp_index.cc.o.d"
  "/root/repo/src/index/join_index.cc" "src/CMakeFiles/caldera.dir/index/join_index.cc.o" "gcc" "src/CMakeFiles/caldera.dir/index/join_index.cc.o.d"
  "/root/repo/src/index/mc_index.cc" "src/CMakeFiles/caldera.dir/index/mc_index.cc.o" "gcc" "src/CMakeFiles/caldera.dir/index/mc_index.cc.o.d"
  "/root/repo/src/markov/cpt.cc" "src/CMakeFiles/caldera.dir/markov/cpt.cc.o" "gcc" "src/CMakeFiles/caldera.dir/markov/cpt.cc.o.d"
  "/root/repo/src/markov/distribution.cc" "src/CMakeFiles/caldera.dir/markov/distribution.cc.o" "gcc" "src/CMakeFiles/caldera.dir/markov/distribution.cc.o.d"
  "/root/repo/src/markov/schema.cc" "src/CMakeFiles/caldera.dir/markov/schema.cc.o" "gcc" "src/CMakeFiles/caldera.dir/markov/schema.cc.o.d"
  "/root/repo/src/markov/stream.cc" "src/CMakeFiles/caldera.dir/markov/stream.cc.o" "gcc" "src/CMakeFiles/caldera.dir/markov/stream.cc.o.d"
  "/root/repo/src/markov/stream_io.cc" "src/CMakeFiles/caldera.dir/markov/stream_io.cc.o" "gcc" "src/CMakeFiles/caldera.dir/markov/stream_io.cc.o.d"
  "/root/repo/src/markov/synthetic.cc" "src/CMakeFiles/caldera.dir/markov/synthetic.cc.o" "gcc" "src/CMakeFiles/caldera.dir/markov/synthetic.cc.o.d"
  "/root/repo/src/query/nfa.cc" "src/CMakeFiles/caldera.dir/query/nfa.cc.o" "gcc" "src/CMakeFiles/caldera.dir/query/nfa.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/caldera.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/caldera.dir/query/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/caldera.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/caldera.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/regular_query.cc" "src/CMakeFiles/caldera.dir/query/regular_query.cc.o" "gcc" "src/CMakeFiles/caldera.dir/query/regular_query.cc.o.d"
  "/root/repo/src/reg/reg_operator.cc" "src/CMakeFiles/caldera.dir/reg/reg_operator.cc.o" "gcc" "src/CMakeFiles/caldera.dir/reg/reg_operator.cc.o.d"
  "/root/repo/src/reg/streaming.cc" "src/CMakeFiles/caldera.dir/reg/streaming.cc.o" "gcc" "src/CMakeFiles/caldera.dir/reg/streaming.cc.o.d"
  "/root/repo/src/rfid/layout.cc" "src/CMakeFiles/caldera.dir/rfid/layout.cc.o" "gcc" "src/CMakeFiles/caldera.dir/rfid/layout.cc.o.d"
  "/root/repo/src/rfid/simulator.cc" "src/CMakeFiles/caldera.dir/rfid/simulator.cc.o" "gcc" "src/CMakeFiles/caldera.dir/rfid/simulator.cc.o.d"
  "/root/repo/src/rfid/workload.cc" "src/CMakeFiles/caldera.dir/rfid/workload.cc.o" "gcc" "src/CMakeFiles/caldera.dir/rfid/workload.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/caldera.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/caldera.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/file.cc" "src/CMakeFiles/caldera.dir/storage/file.cc.o" "gcc" "src/CMakeFiles/caldera.dir/storage/file.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/caldera.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/caldera.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/record_file.cc" "src/CMakeFiles/caldera.dir/storage/record_file.cc.o" "gcc" "src/CMakeFiles/caldera.dir/storage/record_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
