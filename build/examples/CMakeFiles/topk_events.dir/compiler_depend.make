# Empty compiler generated dependencies file for topk_events.
# This may be replaced when dependencies are built.
