file(REMOVE_RECURSE
  "CMakeFiles/topk_events.dir/topk_events.cpp.o"
  "CMakeFiles/topk_events.dir/topk_events.cpp.o.d"
  "topk_events"
  "topk_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
