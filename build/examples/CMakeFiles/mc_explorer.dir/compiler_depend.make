# Empty compiler generated dependencies file for mc_explorer.
# This may be replaced when dependencies are built.
