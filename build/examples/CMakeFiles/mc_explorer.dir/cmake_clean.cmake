file(REMOVE_RECURSE
  "CMakeFiles/mc_explorer.dir/mc_explorer.cpp.o"
  "CMakeFiles/mc_explorer.dir/mc_explorer.cpp.o.d"
  "mc_explorer"
  "mc_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
