# Empty dependencies file for smoothing_comparison.
# This may be replaced when dependencies are built.
