file(REMOVE_RECURSE
  "CMakeFiles/smoothing_comparison.dir/smoothing_comparison.cpp.o"
  "CMakeFiles/smoothing_comparison.dir/smoothing_comparison.cpp.o.d"
  "smoothing_comparison"
  "smoothing_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
