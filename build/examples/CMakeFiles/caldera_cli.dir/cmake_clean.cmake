file(REMOVE_RECURSE
  "CMakeFiles/caldera_cli.dir/caldera_cli.cpp.o"
  "CMakeFiles/caldera_cli.dir/caldera_cli.cpp.o.d"
  "caldera_cli"
  "caldera_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caldera_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
