# Empty compiler generated dependencies file for caldera_cli.
# This may be replaced when dependencies are built.
