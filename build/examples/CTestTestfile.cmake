# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "/root/repo/build/examples/smoke_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smoothing_comparison "/root/repo/build/examples/smoothing_comparison")
set_tests_properties(example_smoothing_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mc_explorer "/root/repo/build/examples/mc_explorer" "/root/repo/build/examples/smoke_mc")
set_tests_properties(example_mc_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rfid_tracking "/root/repo/build/examples/rfid_tracking" "/root/repo/build/examples/smoke_rfid")
set_tests_properties(example_rfid_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
