file(REMOVE_RECURSE
  "CMakeFiles/mc_index_test.dir/mc_index_test.cc.o"
  "CMakeFiles/mc_index_test.dir/mc_index_test.cc.o.d"
  "mc_index_test"
  "mc_index_test.pdb"
  "mc_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
