# Empty dependencies file for mc_index_test.
# This may be replaced when dependencies are built.
