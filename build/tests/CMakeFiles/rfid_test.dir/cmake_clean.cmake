file(REMOVE_RECURSE
  "CMakeFiles/rfid_test.dir/rfid_test.cc.o"
  "CMakeFiles/rfid_test.dir/rfid_test.cc.o.d"
  "rfid_test"
  "rfid_test.pdb"
  "rfid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
