# Empty compiler generated dependencies file for rfid_test.
# This may be replaced when dependencies are built.
