# Empty dependencies file for reg_test.
# This may be replaced when dependencies are built.
