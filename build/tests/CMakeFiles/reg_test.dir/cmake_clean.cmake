file(REMOVE_RECURSE
  "CMakeFiles/reg_test.dir/reg_test.cc.o"
  "CMakeFiles/reg_test.dir/reg_test.cc.o.d"
  "reg_test"
  "reg_test.pdb"
  "reg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
