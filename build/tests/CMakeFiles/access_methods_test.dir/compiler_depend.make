# Empty compiler generated dependencies file for access_methods_test.
# This may be replaced when dependencies are built.
