file(REMOVE_RECURSE
  "CMakeFiles/access_methods_test.dir/access_methods_test.cc.o"
  "CMakeFiles/access_methods_test.dir/access_methods_test.cc.o.d"
  "access_methods_test"
  "access_methods_test.pdb"
  "access_methods_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
