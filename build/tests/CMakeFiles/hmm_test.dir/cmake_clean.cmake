file(REMOVE_RECURSE
  "CMakeFiles/hmm_test.dir/hmm_test.cc.o"
  "CMakeFiles/hmm_test.dir/hmm_test.cc.o.d"
  "hmm_test"
  "hmm_test.pdb"
  "hmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
