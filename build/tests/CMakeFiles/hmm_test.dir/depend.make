# Empty dependencies file for hmm_test.
# This may be replaced when dependencies are built.
