# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/markov_test[1]_include.cmake")
include("/root/repo/build/tests/stream_io_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/reg_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/mc_index_test[1]_include.cmake")
include("/root/repo/build/tests/hmm_test[1]_include.cmake")
include("/root/repo/build/tests/rfid_test[1]_include.cmake")
include("/root/repo/build/tests/access_methods_test[1]_include.cmake")
include("/root/repo/build/tests/topk_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/fleet_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
