file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8c.dir/bench_fig8c.cc.o"
  "CMakeFiles/bench_fig8c.dir/bench_fig8c.cc.o.d"
  "bench_fig8c"
  "bench_fig8c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
