#include "ingest/ingestor.h"

#include <cstdio>
#include <filesystem>
#include <mutex>

#include "btree/btree.h"
#include "common/encoding.h"
#include "common/logging.h"
#include "index/btc_index.h"
#include "index/btp_index.h"
#include "storage/record_file.h"

namespace caldera {

namespace {

// WAL record types. One committed batch occupies the whole log: a batch
// frame followed by its undo journal, dropped by Reset once applied.
constexpr uint8_t kBatchFrame = 1;
/// Raw physical pre-image: {path, u64 offset, bytes}.
constexpr uint8_t kUndoRange = 2;
/// Restore the file to this size: {path, u64 size}.
constexpr uint8_t kUndoTruncate = 3;
/// Whole-file pre-image (small metadata files): {path, bytes}.
constexpr uint8_t kUndoSnapshot = 4;
/// The file did not exist before the apply: {path}.
constexpr uint8_t kUndoAbsent = 5;

void PutPath(const std::string& rel, std::string* out) {
  PutFixed32(static_cast<uint32_t>(rel.size()), out);
  out->append(rel);
}

Status GetPath(std::string_view payload, size_t* offset, std::string* rel) {
  if (payload.size() < *offset + 4) {
    return Status::Corruption("truncated undo record path");
  }
  const uint32_t len = GetFixed32(payload.data() + *offset);
  *offset += 4;
  if (payload.size() < *offset + len) {
    return Status::Corruption("truncated undo record path");
  }
  rel->assign(payload.data() + *offset, len);
  *offset += len;
  return Status::Ok();
}

std::string BtcFile(size_t attr) {
  return "btc.attr" + std::to_string(attr) + ".bt";
}
std::string BtpFile(size_t attr) {
  return "btp.attr" + std::to_string(attr) + ".bt";
}

/// The BT_C / BT_P files present in `dir`, discovered by name exactly like
/// StreamArchive::RebuildIndexes does.
Status ListTreeFiles(const std::string& dir,
                     std::vector<std::pair<size_t, bool>>* out) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string file = entry.path().filename().string();
    size_t attr = 0;
    if (std::sscanf(file.c_str(), "btc.attr%zu.bt", &attr) == 1) {
      out->emplace_back(attr, /*is_btc=*/true);
    } else if (std::sscanf(file.c_str(), "btp.attr%zu.bt", &attr) == 1) {
      out->emplace_back(attr, /*is_btc=*/false);
    }
  }
  if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());
  return Status::Ok();
}

}  // namespace

std::string StreamIngestor::WalPath(const std::string& dir) {
  return dir + "/ingest.wal";
}

std::string StreamIngestor::EncodeBatch(
    uint64_t base, const std::vector<IngestTimestep>& batch) {
  std::string payload;
  PutFixed64(base, &payload);
  PutFixed32(static_cast<uint32_t>(batch.size()), &payload);
  for (const IngestTimestep& ts : batch) {
    ts.marginal.AppendTo(&payload);
    ts.transition.AppendTo(&payload);
  }
  return payload;
}

Result<std::vector<IngestTimestep>> StreamIngestor::DecodeBatch(
    std::string_view payload, uint64_t* base) {
  if (payload.size() < 12) {
    return Status::Corruption("truncated ingest batch frame");
  }
  *base = GetFixed64(payload.data());
  const uint32_t count = GetFixed32(payload.data() + 8);
  size_t offset = 12;
  std::vector<IngestTimestep> batch(count);
  for (uint32_t i = 0; i < count; ++i) {
    CALDERA_ASSIGN_OR_RETURN(batch[i].marginal,
                             Distribution::Parse(payload, &offset));
    CALDERA_ASSIGN_OR_RETURN(batch[i].transition,
                             Cpt::Parse(payload, &offset));
  }
  if (offset != payload.size()) {
    return Status::Corruption("trailing bytes in ingest batch frame");
  }
  return batch;
}

Result<std::unique_ptr<StreamIngestor>> StreamIngestor::Open(
    const std::string& dir) {
  return Open(dir, Options());
}

Result<std::unique_ptr<StreamIngestor>> StreamIngestor::Open(
    const std::string& dir, Options options) {
  auto ingestor = std::unique_ptr<StreamIngestor>(
      new StreamIngestor(dir, std::move(options)));
  CALDERA_ASSIGN_OR_RETURN(ingestor->wal_, Wal::Open(WalPath(dir)));
  ingestor->wal_torn_tail_ = ingestor->wal_->truncated_tail();
  if (!ingestor->wal_->recovered().empty()) {
    std::unique_lock<std::shared_mutex> guard;
    if (ingestor->options_.apply_mutex != nullptr) {
      guard = std::unique_lock<std::shared_mutex>(
          *ingestor->options_.apply_mutex);
    }
    CALDERA_RETURN_IF_ERROR(ingestor->Recover());
  }
  CALDERA_ASSIGN_OR_RETURN(StreamMetaInfo info, ReadStreamMeta(dir));
  ingestor->layout_ = info.layout;
  ingestor->length_ = info.length;
  ingestor->schema_ = std::move(info.schema);
  // Open-and-discard the stream to validate that the record files agree
  // with the metadata before accepting appends.
  CALDERA_RETURN_IF_ERROR(StoredStream::Open(dir, /*pool_pages=*/4).status());
  if (ingestor->stats_.batches_recovered > 0 &&
      ingestor->options_.on_commit != nullptr) {
    ingestor->options_.on_commit(ingestor->length_);
  }
  return ingestor;
}

Status StreamIngestor::Recover() {
  // The log holds one committed batch (Reset drops it after a successful
  // apply) plus however much of its undo journal reached disk. Restore the
  // undo records newest-first — data files return bit-for-bit to their
  // pre-batch state — then re-run the apply from the batch frame.
  const std::vector<WalRecord>& records = wal_->recovered();
  for (size_t i = records.size(); i > 0; --i) {
    const WalRecord& record = records[i - 1];
    if (record.type == kBatchFrame) continue;
    CALDERA_RETURN_IF_ERROR(RestoreUndoRecord(record));
  }

  CALDERA_ASSIGN_OR_RETURN(StreamMetaInfo info, ReadStreamMeta(dir_));
  layout_ = info.layout;
  length_ = info.length;
  schema_ = info.schema;

  // The B+ trees are deliberately not undo-protected (inserts are
  // idempotent); a torn page from the interrupted apply is repaired by
  // rebuilding the tree from the restored stream.
  CALDERA_RETURN_IF_ERROR(VerifyOrRebuildTrees());

  for (const WalRecord& record : records) {
    if (record.type != kBatchFrame) continue;
    uint64_t base = 0;
    CALDERA_ASSIGN_OR_RETURN(std::vector<IngestTimestep> batch,
                             DecodeBatch(record.payload, &base));
    if (base != length_) {
      return Status::Corruption(
          "WAL batch expects stream length " + std::to_string(base) +
          " but " + dir_ + " has " + std::to_string(length_));
    }
    CALDERA_RETURN_IF_ERROR(ApplyBatch(base, batch));
    length_ = base + batch.size();
    ++stats_.batches_recovered;
    stats_.timesteps_appended += batch.size();
  }
  return wal_->Reset();
}

Status StreamIngestor::RestoreUndoRecord(const WalRecord& record) {
  std::string rel;
  size_t offset = 0;
  CALDERA_RETURN_IF_ERROR(GetPath(record.payload, &offset, &rel));
  const std::string abs = dir_ + "/" + rel;
  switch (record.type) {
    case kUndoRange: {
      if (record.payload.size() < offset + 8) {
        return Status::Corruption("truncated undo range record");
      }
      const uint64_t at = GetFixed64(record.payload.data() + offset);
      offset += 8;
      CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                               File::OpenOrCreate(abs));
      CALDERA_RETURN_IF_ERROR(f->WriteAt(
          at, std::string_view(record.payload).substr(offset)));
      return f->Sync();
    }
    case kUndoTruncate: {
      if (record.payload.size() < offset + 8) {
        return Status::Corruption("truncated undo truncate record");
      }
      const uint64_t size = GetFixed64(record.payload.data() + offset);
      CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                               File::OpenOrCreate(abs));
      CALDERA_RETURN_IF_ERROR(f->Truncate(size));
      return f->Sync();
    }
    case kUndoSnapshot: {
      CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                               File::OpenOrCreate(abs));
      CALDERA_RETURN_IF_ERROR(f->Truncate(0));
      CALDERA_RETURN_IF_ERROR(f->WriteAt(
          0, std::string_view(record.payload).substr(offset)));
      return f->Sync();
    }
    case kUndoAbsent:
      return RemoveFileIfExists(abs);
    default:
      return Status::Corruption("unknown WAL record type " +
                                std::to_string(record.type));
  }
}

Status StreamIngestor::VerifyOrRebuildTrees() {
  std::vector<std::pair<size_t, bool>> trees;
  CALDERA_RETURN_IF_ERROR(ListTreeFiles(dir_, &trees));
  std::unique_ptr<StoredStream> stored;  // Opened on first rebuild.
  for (const auto& [attr, is_btc] : trees) {
    const std::string path =
        dir_ + "/" + (is_btc ? BtcFile(attr) : BtpFile(attr));
    bool healthy = false;
    {
      Result<std::unique_ptr<BTree>> tree = BTree::Open(path);
      Status invariants =
          tree.ok() ? (*tree)->CheckInvariants() : tree.status();
      if (invariants.ok()) {
        healthy = true;
      } else {
        CALDERA_LOG_WARNING << "rebuilding " << path
                            << " after interrupted ingest: "
                            << invariants.ToString();
      }
    }
    if (healthy) continue;
    if (stored == nullptr) {
      CALDERA_ASSIGN_OR_RETURN(stored, StoredStream::Open(dir_));
    }
    CALDERA_RETURN_IF_ERROR(RemoveFileIfExists(path));
    if (is_btc) {
      CALDERA_RETURN_IF_ERROR(
          BuildBtcIndexFromStored(stored.get(), attr, path).status());
    } else {
      CALDERA_RETURN_IF_ERROR(
          BuildBtpIndexFromStored(stored.get(), attr, path).status());
    }
  }
  return Status::Ok();
}

Status StreamIngestor::JournalRange(const File& file, const std::string& rel,
                                    uint64_t offset, uint64_t len) {
  std::string payload;
  PutPath(rel, &payload);
  PutFixed64(offset, &payload);
  const size_t head = payload.size();
  payload.resize(head + len);
  CALDERA_RETURN_IF_ERROR(file.ReadAt(offset, len, payload.data() + head));
  return wal_->Append(kUndoRange, payload).status();
}

Status StreamIngestor::JournalTruncate(const std::string& rel,
                                       uint64_t size) {
  std::string payload;
  PutPath(rel, &payload);
  PutFixed64(size, &payload);
  return wal_->Append(kUndoTruncate, payload).status();
}

Status StreamIngestor::JournalSnapshot(const std::string& rel) {
  const std::string abs = dir_ + "/" + rel;
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f, File::OpenReadOnly(abs));
  std::string payload;
  PutPath(rel, &payload);
  const size_t head = payload.size();
  const uint64_t size = f->size();
  payload.resize(head + size);
  CALDERA_RETURN_IF_ERROR(f->ReadAt(0, size, payload.data() + head));
  return wal_->Append(kUndoSnapshot, payload).status();
}

Status StreamIngestor::JournalAbsent(const std::string& rel) {
  std::string payload;
  PutPath(rel, &payload);
  return wal_->Append(kUndoAbsent, payload).status();
}

Status StreamIngestor::JournalRecordFileUndo(const std::string& rel) {
  const std::string abs = dir_ + "/" + rel;
  uint32_t payload_size = 0;
  uint64_t pages = 0;
  uint64_t data_bytes = 0;
  {
    CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<RecordFileReader> reader,
                             RecordFileReader::Open(abs, /*pool_pages=*/2));
    payload_size = reader->page_size();
    pages = reader->file_pages();
    data_bytes = reader->data_bytes();
  }
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f, File::OpenReadOnly(abs));
  const uint64_t size = f->size();
  if (pages == 0 || size % pages != 0) {
    return Status::Corruption("ragged pager file " + abs);
  }
  const uint64_t stride = size / pages;  // Physical page size.
  // The append rewrites the pager header (page count), the record-file meta
  // page, the zero padding of the partial tail data page, and everything
  // after it (the old directory, overwritten by new data). Bytes of
  // complete data pages before the tail are never touched.
  CALDERA_RETURN_IF_ERROR(JournalRange(*f, rel, 0, 2 * stride));
  const uint64_t dirty_from =
      (kRecordFileFirstDataPage + data_bytes / payload_size) * stride;
  if (dirty_from < size) {
    CALDERA_RETURN_IF_ERROR(JournalRange(*f, rel, dirty_from,
                                         size - dirty_from));
  }
  return JournalTruncate(rel, size);
}

Status StreamIngestor::JournalMcUndo(uint64_t new_length) {
  const std::string mc_dir = dir_ + "/mc";
  if (!FileExists(mc_dir + "/mc.meta")) return Status::Ok();
  CALDERA_ASSIGN_OR_RETURN(McMetaSummary meta, McIndex::ReadMeta(mc_dir));
  CALDERA_RETURN_IF_ERROR(JournalSnapshot("mc/mc.meta"));
  // Mirror McIndex::Extend's level walk to journal exactly the level files
  // that will gain right-spine entries.
  const uint64_t num_transitions = new_length - 1;
  const uint64_t max_span =
      meta.options.max_span == 0
          ? num_transitions
          : std::min(meta.options.max_span, num_transitions);
  uint32_t level = 1;
  uint64_t span = meta.options.alpha;
  while (span <= max_span) {
    const uint64_t new_count = num_transitions / span;
    if (new_count == 0) break;
    const uint64_t old_count =
        level <= meta.level_counts.size() ? meta.level_counts[level - 1] : 0;
    if (new_count > old_count) {
      const std::string rel = "mc/L" + std::to_string(level) + ".rec";
      if (level <= meta.level_counts.size()) {
        CALDERA_RETURN_IF_ERROR(JournalRecordFileUndo(rel));
      } else {
        CALDERA_RETURN_IF_ERROR(JournalAbsent(rel));
      }
    }
    ++level;
    span *= meta.options.alpha;
  }
  return Status::Ok();
}

Status StreamIngestor::CommitToWal(const std::vector<IngestTimestep>& batch) {
  const Wal::Mark mark = wal_->mark();
  Status committed = [&]() -> Status {
    CALDERA_RETURN_IF_ERROR(
        wal_->Append(kBatchFrame, EncodeBatch(length_, batch)).status());
    // Undo journal: captured before any mutation, so a crash at any later
    // point finds a complete journal behind the batch frame.
    CALDERA_RETURN_IF_ERROR(JournalSnapshot("meta.bin"));
    if (layout_ == DiskLayout::kSeparated) {
      CALDERA_RETURN_IF_ERROR(JournalRecordFileUndo("marginals.rec"));
      CALDERA_RETURN_IF_ERROR(JournalRecordFileUndo("cpts.rec"));
    } else {
      CALDERA_RETURN_IF_ERROR(JournalRecordFileUndo("stream.rec"));
    }
    CALDERA_RETURN_IF_ERROR(JournalMcUndo(length_ + batch.size()));
    return wal_->Sync();
  }();
  if (!committed.ok()) {
    // Not committed: unwind the speculative frames so the log never
    // presents an unacknowledged batch. If even that fails, poison the
    // handle — the open-time scan will discard the tail.
    Status rolled_back = wal_->RollbackTo(mark);
    if (!rolled_back.ok()) {
      broken_ = true;
      CALDERA_LOG_WARNING << "WAL rollback failed after " << committed.ToString()
                          << ": " << rolled_back.ToString();
    }
    return committed;
  }
  stats_.wal_bytes += wal_->size_bytes() - mark.size;
  return Status::Ok();
}

Status StreamIngestor::ApplyBatch(uint64_t base,
                                  const std::vector<IngestTimestep>& batch) {
  const uint64_t new_length = base + batch.size();
  std::string record;

  // 1. Stream record files.
  auto append_records =
      [&](const std::string& path,
          const std::function<void(const IngestTimestep&, std::string*)>&
              serialize) -> Status {
    CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<RecordFileWriter> writer,
                             RecordFileWriter::OpenForAppend(path));
    if (writer->num_records() != base) {
      return Status::Corruption(path + " holds " +
                                std::to_string(writer->num_records()) +
                                " records, expected " + std::to_string(base));
    }
    for (const IngestTimestep& ts : batch) {
      record.clear();
      serialize(ts, &record);
      CALDERA_RETURN_IF_ERROR(writer->Append(record).status());
    }
    return writer->Finalize();
  };
  if (layout_ == DiskLayout::kSeparated) {
    CALDERA_RETURN_IF_ERROR(append_records(
        StreamMarginalsPath(dir_),
        [](const IngestTimestep& ts, std::string* out) {
          ts.marginal.AppendTo(out);
        }));
    CALDERA_RETURN_IF_ERROR(append_records(
        StreamCptsPath(dir_), [](const IngestTimestep& ts, std::string* out) {
          ts.transition.AppendTo(out);
        }));
  } else {
    CALDERA_RETURN_IF_ERROR(append_records(
        StreamCombinedPath(dir_),
        [](const IngestTimestep& ts, std::string* out) {
          ts.marginal.AppendTo(out);
          ts.transition.AppendTo(out);
        }));
  }

  // 2. Stream metadata.
  CALDERA_RETURN_IF_ERROR(UpdateStreamLength(dir_, new_length));

  // 3. Secondary B+ tree indexes.
  std::vector<std::pair<size_t, bool>> trees;
  CALDERA_RETURN_IF_ERROR(ListTreeFiles(dir_, &trees));
  for (const auto& [attr, is_btc] : trees) {
    const std::string path =
        dir_ + "/" + (is_btc ? BtcFile(attr) : BtpFile(attr));
    CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree, BTree::Open(path));
    for (size_t i = 0; i < batch.size(); ++i) {
      if (is_btc) {
        CALDERA_RETURN_IF_ERROR(InsertBtcTimestep(
            tree.get(), batch[i].marginal, schema_, attr, base + i));
      } else {
        CALDERA_RETURN_IF_ERROR(InsertBtpTimestep(
            tree.get(), batch[i].marginal, schema_, attr, base + i));
      }
      ++stats_.btree_inserts;
    }
    CALDERA_RETURN_IF_ERROR(tree->Sync());
  }

  // 4. MC index: extend along the right spine, composing from the freshly
  // finalized stream files.
  if (FileExists(dir_ + "/mc/mc.meta")) {
    CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                             StoredStream::Open(dir_));
    StoredStream* raw = stored.get();
    McExtendStats extend_stats;
    CALDERA_RETURN_IF_ERROR(McIndex::Extend(
        dir_ + "/mc",
        [raw](uint64_t t, Cpt* out) { return raw->ReadTransition(t, out); },
        new_length, &extend_stats));
    stats_.mc.nodes_recomputed += extend_stats.nodes_recomputed;
    stats_.mc.levels_touched += extend_stats.levels_touched;
    stats_.mc.levels_added += extend_stats.levels_added;
  }
  return Status::Ok();
}

Status StreamIngestor::Append(const std::vector<IngestTimestep>& batch) {
  if (broken_) {
    return Status::FailedPrecondition(
        "ingestor for " + dir_ +
        " is poisoned by an earlier failure; reopen to recover");
  }
  if (batch.empty()) return Status::Ok();
  CALDERA_RETURN_IF_ERROR(CommitToWal(batch));

  // Committed: from here the batch is applied either below or by the next
  // Open's recovery.
  std::unique_lock<std::shared_mutex> guard;
  if (options_.apply_mutex != nullptr) {
    guard = std::unique_lock<std::shared_mutex>(*options_.apply_mutex);
  }
  Status applied = ApplyBatch(length_, batch);
  if (applied.ok()) applied = wal_->Reset();
  if (!applied.ok()) {
    broken_ = true;
    return applied;
  }
  length_ += batch.size();
  ++stats_.batches_committed;
  stats_.timesteps_appended += batch.size();
  if (options_.on_commit != nullptr) options_.on_commit(length_);
  return Status::Ok();
}

Status StreamIngestor::CommitWithoutApply(
    const std::vector<IngestTimestep>& batch) {
  if (broken_) {
    return Status::FailedPrecondition("ingestor for " + dir_ +
                                      " is poisoned; reopen to recover");
  }
  if (batch.empty()) return Status::Ok();
  CALDERA_RETURN_IF_ERROR(CommitToWal(batch));
  broken_ = true;  // The batch is durable but unapplied: exactly a crash.
  return Status::Ok();
}

}  // namespace caldera
