#ifndef CALDERA_INGEST_INGESTOR_H_
#define CALDERA_INGEST_INGESTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/mc_index.h"
#include "markov/cpt.h"
#include "markov/distribution.h"
#include "markov/stream_io.h"
#include "storage/wal.h"

namespace caldera {

/// One new timestep for StreamIngestor::Append: the marginal distribution
/// of the stream's new last timestep plus the CPT from the previous
/// timestep into it.
struct IngestTimestep {
  Distribution marginal;
  Cpt transition;
};

/// Counters accumulated across the life of one StreamIngestor.
struct IngestStats {
  uint64_t batches_committed = 0;
  uint64_t timesteps_appended = 0;
  /// Bytes of WAL frames written (batch records + undo journal).
  uint64_t wal_bytes = 0;
  /// Batches replayed from the WAL by Open after a crash.
  uint64_t batches_recovered = 0;
  /// BT_C / BT_P key insertions performed.
  uint64_t btree_inserts = 0;
  /// Cumulative incremental MC index maintenance work. The right-spine
  /// property makes nodes_recomputed O(B/(alpha-1) + log_alpha n) for B
  /// appended timesteps — the ingest tests assert on exactly this.
  McExtendStats mc;
};

/// The live-ingestion pipeline (the "growing stream" counterpart of the
/// paper's archived streams): durable batch appends to a stream directory
/// with incremental maintenance of every index built for it.
///
/// Commit protocol, per Append(batch):
///   1. A batch frame (the new timesteps, serialized) is appended to the
///      stream's WAL and fsynced — the commit point. From here the batch
///      survives any crash.
///   2. Physical undo records are journaled behind it: pre-image pages of
///      every region the apply will overwrite in place (record-file header/
///      meta/tail/directory pages, mc level files), whole-file snapshots of
///      the small metadata files, and absent-markers for files the apply
///      will create. Synced again.
///   3. The mutation runs: snippets are appended to the record files, the
///      stream length is patched, BT_C/BT_P trees receive the new keys, and
///      the MC index is extended along its right spine.
///   4. The WAL is reset — the batch is fully applied and durable.
///
/// A crash anywhere in 2-3 is repaired by the next Open: undo records are
/// restored in reverse order (returning data files bit-for-bit to their
/// pre-batch state), B+ trees are invariant-checked and rebuilt from the
/// stream if a torn page broke one, and the batch is re-applied from its
/// WAL frame. A crash in 1 leaves a torn frame the WAL truncates away: the
/// batch was never acknowledged, so the stream simply stays at its old
/// length. Either way, readers observe base or base+batch — never a mix.
///
/// Snapshot safety: record-file readers cache their directory in memory and
/// appends never move committed record bytes, so handles opened before a
/// commit keep serving their snapshot. B+ trees mutate in place, so `Options
/// ::apply_mutex` (exclusive here, shared around queries — the Caldera
/// facade wires this up) serializes tree readers against the apply.
class StreamIngestor {
 public:
  struct Options {
    /// Called after every durably applied batch — including batches
    /// replayed by Open during crash recovery — with the new stream length.
    /// The Caldera facade hooks its handle-epoch bump and span-cache
    /// invalidation here. Invoked while the apply lock (if any) is held.
    std::function<void(uint64_t new_length)> on_commit;
    /// When set, recovery and every batch apply hold this exclusively while
    /// mutating on-disk state. Readers of the same stream must hold it
    /// shared (Caldera::Execute does).
    std::shared_mutex* apply_mutex = nullptr;
  };

  /// Opens an ingestor for the stream archived in `dir`, replaying the WAL
  /// first if a previous writer crashed mid-commit.
  static Result<std::unique_ptr<StreamIngestor>> Open(const std::string& dir,
                                                      Options options);
  static Result<std::unique_ptr<StreamIngestor>> Open(const std::string& dir);

  /// Appends `batch` to the stream. On Ok the batch is fully applied and
  /// durable. On error, either the batch never reached the WAL commit point
  /// (state unchanged, Append may be retried on a fresh ingestor) or it is
  /// committed but incompletely applied — the ingestor is then poisoned
  /// (every later call fails FailedPrecondition) and the next Open finishes
  /// the batch via recovery.
  Status Append(const std::vector<IngestTimestep>& batch);

  /// Test/crash hook: runs the commit protocol through the WAL fsync (steps
  /// 1-2) and then stops, leaving exactly the state a crash at the start of
  /// the apply leaves behind. The ingestor is poisoned afterwards; the next
  /// Open replays the batch. The live-append example uses this to simulate
  /// a writer dying mid-batch for the CI recovery smoke test.
  Status CommitWithoutApply(const std::vector<IngestTimestep>& batch);

  /// Current (committed) stream length.
  uint64_t length() const { return length_; }
  const StreamSchema& schema() const { return schema_; }
  DiskLayout layout() const { return layout_; }
  const std::string& dir() const { return dir_; }
  const IngestStats& stats() const { return stats_; }
  /// True once a failed apply poisoned this handle (see Append).
  bool broken() const { return broken_; }
  /// True when Open truncated a torn WAL tail (an unacknowledged Append).
  bool wal_had_torn_tail() const { return wal_torn_tail_; }

  /// WAL file name inside a stream directory.
  static std::string WalPath(const std::string& dir);

 private:
  StreamIngestor(std::string dir, Options options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  /// Serializes the commit frame / re-applies one from the WAL.
  static std::string EncodeBatch(uint64_t base,
                                 const std::vector<IngestTimestep>& batch);
  static Result<std::vector<IngestTimestep>> DecodeBatch(
      std::string_view payload, uint64_t* base);

  /// WAL commit: batch frame + undo journal + fsync (steps 1-2).
  Status CommitToWal(const std::vector<IngestTimestep>& batch);

  /// The in-place mutation (step 3). Deterministic, and restartable after
  /// an undo restore.
  Status ApplyBatch(uint64_t base, const std::vector<IngestTimestep>& batch);

  /// Crash recovery: undo-restore, B+ tree verification, batch redo.
  Status Recover();

  // Undo journaling (frames appended to the WAL before the mutation).
  Status JournalRange(const File& file, const std::string& rel,
                      uint64_t offset, uint64_t len);
  Status JournalTruncate(const std::string& rel, uint64_t size);
  Status JournalSnapshot(const std::string& rel);
  Status JournalAbsent(const std::string& rel);
  /// Journals everything an append to record file `rel` can overwrite:
  /// pager header + meta pages, the partial tail data page, and the old
  /// directory pages, plus a truncate record restoring the old size.
  Status JournalRecordFileUndo(const std::string& rel);
  /// Journals mc.meta and every MC level file the extension to
  /// `new_length` will touch (absent-markers for brand-new levels).
  Status JournalMcUndo(uint64_t new_length);
  Status RestoreUndoRecord(const WalRecord& record);

  /// Re-checks every BT_C/BT_P file and rebuilds any that an interrupted
  /// apply left structurally broken (stream files must already be restored
  /// to a consistent state).
  Status VerifyOrRebuildTrees();

  std::string dir_;
  Options options_;
  std::unique_ptr<Wal> wal_;
  DiskLayout layout_ = DiskLayout::kSeparated;
  uint64_t length_ = 0;
  StreamSchema schema_;
  IngestStats stats_;
  bool broken_ = false;
  bool wal_torn_tail_ = false;
};

}  // namespace caldera

#endif  // CALDERA_INGEST_INGESTOR_H_
