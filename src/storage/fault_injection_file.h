#ifndef CALDERA_STORAGE_FAULT_INJECTION_FILE_H_
#define CALDERA_STORAGE_FAULT_INJECTION_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/file.h"

namespace caldera {

/// Deterministic fault plan for a FaultInjectionFile. All counters are
/// per-file and 0-based; randomness comes from `seed` only, so a failing
/// test reproduces exactly.
struct FaultInjectionOptions {
  uint64_t seed = 1;

  /// ReadAt calls with index >= this fail with IoError (-1 = never).
  int64_t fail_reads_from = -1;

  /// WriteAt calls with index >= this fail with IoError (-1 = never).
  int64_t fail_writes_from = -1;

  /// When a write fails, first persist a seeded prefix of the data (a torn
  /// write) instead of dropping it entirely.
  bool torn_writes = false;

  /// Sync fails with IoError.
  bool fail_sync = false;

  /// Absolute bit offsets (byte * 8 + bit) flipped in data returned by
  /// ReadAt. The file itself is untouched: this models silent media
  /// corruption that only checksums can catch.
  std::vector<uint64_t> flip_bits;

  /// Seeded Bernoulli probability that any given ReadAt fails with IoError.
  double read_error_prob = 0.0;
};

/// Shared, observable tally of what a fault-injection file actually did.
/// Lives in a shared_ptr so tests can read it after the wrapped file (owned
/// by the code under test) has been destroyed.
struct FaultInjectionCounters {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t injected_read_errors = 0;
  uint64_t injected_write_errors = 0;
  uint64_t flipped_bits = 0;
};

/// A File wrapper that injects deterministic faults: read errors, silent
/// bit flips on the read path, failed or torn writes, failed syncs.
/// Everything else forwards to the wrapped file.
class FaultInjectionFile final : public File {
 public:
  FaultInjectionFile(std::unique_ptr<File> base, FaultInjectionOptions options,
                     std::shared_ptr<FaultInjectionCounters> counters = {});

  Status ReadAt(uint64_t offset, size_t n, char* buf) const override;
  Status WriteAt(uint64_t offset, std::string_view data) override;
  Status Truncate(uint64_t size) override;
  Status Sync() override;
  uint64_t size() const override;
  const std::string& path() const override;

  const FaultInjectionCounters& counters() const { return *counters_; }

 private:
  std::unique_ptr<File> base_;
  FaultInjectionOptions options_;
  std::shared_ptr<FaultInjectionCounters> counters_;
  mutable Rng rng_;
};

/// RAII test helper: installs a File wrap hook so every file whose path
/// contains `path_substring` is opened through a FaultInjectionFile with
/// `options`. The destructor uninstalls the hook. Counters aggregate across
/// all matched files.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::string path_substring,
                       FaultInjectionOptions options);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  const FaultInjectionCounters& counters() const { return *counters_; }

 private:
  std::shared_ptr<FaultInjectionCounters> counters_;
};

}  // namespace caldera

#endif  // CALDERA_STORAGE_FAULT_INJECTION_FILE_H_
