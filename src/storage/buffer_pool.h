#ifndef CALDERA_STORAGE_BUFFER_POOL_H_
#define CALDERA_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/pager.h"

namespace caldera {

/// Counters exposed by every BufferPool. Access methods report these so
/// experiments can separate CPU cost from (simulated) disk traffic.
struct BufferPoolStats {
  uint64_t fetches = 0;      ///< Total page requests.
  uint64_t hits = 0;         ///< Requests served from cache.
  uint64_t misses = 0;       ///< Requests that went to the pager.
  uint64_t evictions = 0;    ///< Pages evicted to make room.
  uint64_t pages_written = 0;///< Dirty pages flushed to the pager.

  BufferPoolStats& operator+=(const BufferPoolStats& o) {
    fetches += o.fetches;
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    pages_written += o.pages_written;
    return *this;
  }
};

class BufferPool;

/// RAII pin on a cached page. While a PageHandle is alive the frame cannot
/// be evicted. Call MarkDirty() after mutating data().
class PageHandle {
 public:
  PageHandle() : pool_(nullptr), frame_(SIZE_MAX) {}
  PageHandle(PageHandle&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_) {
    other.pool_ = nullptr;
    other.frame_ = SIZE_MAX;
  }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle();

  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  char* data();
  const char* data() const;
  PageId page_id() const;
  void MarkDirty();

  /// Explicitly unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_;
  size_t frame_;
};

/// A fixed-capacity LRU page cache in front of a Pager. Single-threaded by
/// design (Caldera queries are single-threaded; benchmarks run one pool per
/// stream file).
class BufferPool {
 public:
  /// `capacity` is the number of page frames held in memory (>= 1).
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, reading it from the pager on a miss.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page in the pager and returns a pinned handle to its
  /// (zeroed, dirty) frame.
  Result<PageHandle> NewPage();

  /// Writes back all dirty pages.
  Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }
  size_t capacity() const { return capacity_; }
  uint32_t page_size() const { return pager_->page_size(); }
  Pager* pager() { return pager_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool in_use = false;
    // Position in lru_ when unpinned and resident.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame);
  void TouchLru(size_t frame);
  Result<size_t> GrabFrame();
  Status EvictFrame(size_t frame);

  Pager* pager_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  std::list<size_t> lru_;          // Front = most recently used.
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

}  // namespace caldera

#endif  // CALDERA_STORAGE_BUFFER_POOL_H_
