#include "storage/record_file.h"

#include <algorithm>
#include <cstring>

#include "common/encoding.h"
#include "common/logging.h"

namespace caldera {

namespace {
constexpr char kRecMagic[8] = {'C', 'L', 'D', 'R', 'R', 'E', 'C', '1'};
constexpr PageId kMetaPage = 1;
constexpr PageId kFirstDataPage = kRecordFileFirstDataPage;
}  // namespace

RecordFileWriter::RecordFileWriter(std::unique_ptr<Pager> pager)
    : pager_(std::move(pager)) {}

Result<std::unique_ptr<RecordFileWriter>> RecordFileWriter::Create(
    const std::string& path, uint32_t page_size) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                           Pager::Create(path, page_size));
  // Reserve the meta page (page 1).
  CALDERA_ASSIGN_OR_RETURN(PageId meta, pager->AllocatePage());
  if (meta != kMetaPage) {
    return Status::Internal("meta page allocated at unexpected id");
  }
  return std::unique_ptr<RecordFileWriter>(
      new RecordFileWriter(std::move(pager)));
}

Result<std::unique_ptr<RecordFileWriter>> RecordFileWriter::OpenForAppend(
    const std::string& path) {
  // Reuse the reader's (checksum-verified) meta + directory parsing, then
  // rewind the pager past the directory so appends continue where the data
  // ends.
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<RecordFileReader> reader,
                           RecordFileReader::Open(path, /*pool_pages=*/4));
  std::vector<uint64_t> offsets;
  offsets.reserve(reader->num_records());
  uint64_t off = 0;
  for (uint64_t id = 0; id < reader->num_records(); ++id) {
    offsets.push_back(off);
    CALDERA_ASSIGN_OR_RETURN(uint64_t size, reader->RecordSize(id));
    off += size;
  }
  const uint64_t data_bytes = reader->data_bytes();
  reader.reset();  // Release the read handle before reopening to write.

  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager, Pager::Open(path));
  const uint32_t page_size = pager->page_size();
  auto writer =
      std::unique_ptr<RecordFileWriter>(new RecordFileWriter(std::move(pager)));
  writer->offsets_ = std::move(offsets);
  writer->data_bytes_ = data_bytes;

  // Reload the partial tail (record bytes past the last full page) into the
  // in-memory staging buffer, then drop that page and everything after it
  // (the directory): the next full page rewrites the tail in place.
  const uint64_t full_pages = data_bytes / page_size;
  const uint64_t tail_bytes = data_bytes % page_size;
  if (tail_bytes > 0) {
    std::vector<char> page(page_size);
    CALDERA_RETURN_IF_ERROR(
        writer->pager_->ReadPage(kFirstDataPage + full_pages, page.data()));
    writer->partial_.assign(page.data(), tail_bytes);
  }
  CALDERA_RETURN_IF_ERROR(
      writer->pager_->Truncate(kFirstDataPage + full_pages));
  return writer;
}

Status RecordFileWriter::AppendRaw(std::string_view bytes) {
  const uint32_t page_size = pager_->page_size();
  size_t consumed = 0;
  while (consumed < bytes.size()) {
    size_t room = page_size - partial_.size();
    size_t take = std::min(room, bytes.size() - consumed);
    partial_.append(bytes.data() + consumed, take);
    consumed += take;
    if (partial_.size() == page_size) {
      CALDERA_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
      CALDERA_RETURN_IF_ERROR(pager_->WritePage(id, partial_.data()));
      partial_.clear();
    }
  }
  data_bytes_ += bytes.size();
  return Status::Ok();
}

Result<uint64_t> RecordFileWriter::Append(std::string_view record) {
  if (finalized_) {
    return Status::FailedPrecondition("record file already finalized");
  }
  uint64_t id = offsets_.size();
  offsets_.push_back(data_bytes_);
  CALDERA_RETURN_IF_ERROR(AppendRaw(record));
  return id;
}

Status RecordFileWriter::FlushPartialPage() {
  if (partial_.empty()) return Status::Ok();
  partial_.resize(pager_->page_size(), '\0');
  CALDERA_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  CALDERA_RETURN_IF_ERROR(pager_->WritePage(id, partial_.data()));
  partial_.clear();
  return Status::Ok();
}

Status RecordFileWriter::Finalize() {
  if (finalized_) return Status::Ok();
  CALDERA_RETURN_IF_ERROR(FlushPartialPage());
  const PageId dir_page = pager_->page_count();

  // Directory: (n + 1) delimiting offsets, the last being total data bytes.
  std::string dir;
  dir.reserve((offsets_.size() + 1) * 8);
  for (uint64_t off : offsets_) PutFixed64(off, &dir);
  PutFixed64(data_bytes_, &dir);
  CALDERA_RETURN_IF_ERROR(AppendRaw(dir));  // Reuses page-chunked writes.
  data_bytes_ -= dir.size();                // Directory is not record data.
  CALDERA_RETURN_IF_ERROR(FlushPartialPage());

  // Meta page.
  std::string meta(kRecMagic, 8);
  PutFixed64(offsets_.size(), &meta);
  PutFixed64(dir_page, &meta);
  PutFixed64(data_bytes_, &meta);
  meta.resize(pager_->page_size(), '\0');
  CALDERA_RETURN_IF_ERROR(pager_->WritePage(kMetaPage, meta.data()));
  CALDERA_RETURN_IF_ERROR(pager_->Sync());
  finalized_ = true;
  return Status::Ok();
}

Result<std::unique_ptr<RecordFileReader>> RecordFileReader::Open(
    const std::string& path, size_t pool_pages) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager, Pager::Open(path));
  auto reader = std::unique_ptr<RecordFileReader>(
      new RecordFileReader(std::move(pager), pool_pages));

  const uint32_t page_size = reader->pager_->page_size();
  std::vector<char> page(page_size);
  CALDERA_RETURN_IF_ERROR(reader->pager_->ReadPage(kMetaPage, page.data()));
  if (std::memcmp(page.data(), kRecMagic, 8) != 0) {
    return Status::Corruption("bad record-file magic in " + path);
  }
  reader->num_records_ = GetFixed64(page.data() + 8);
  uint64_t dir_page = GetFixed64(page.data() + 16);
  uint64_t data_bytes = GetFixed64(page.data() + 24);
  if (dir_page < kFirstDataPage || dir_page >= reader->pager_->page_count()) {
    return Status::Corruption("bad directory page in " + path);
  }

  // Load the directory (one-time metadata read; bypasses the pool so query
  // stats reflect only record accesses).
  // The directory must physically fit between dir_page and EOF.
  uint64_t dir_capacity_bytes =
      (reader->pager_->page_count() - dir_page) * uint64_t{page_size};
  if (reader->num_records_ + 1 > dir_capacity_bytes / 8) {
    return Status::Corruption("record count exceeds directory size in " +
                              path);
  }
  uint64_t n_entries = reader->num_records_ + 1;
  reader->offsets_.resize(n_entries);
  uint64_t bytes_needed = n_entries * 8;
  std::string dir_bytes;
  dir_bytes.reserve(bytes_needed);
  for (PageId p = dir_page; dir_bytes.size() < bytes_needed; ++p) {
    if (p >= reader->pager_->page_count()) {
      return Status::Corruption("directory truncated in " + path);
    }
    CALDERA_RETURN_IF_ERROR(reader->pager_->ReadPage(p, page.data()));
    dir_bytes.append(page.data(), page_size);
  }
  for (uint64_t i = 0; i < n_entries; ++i) {
    reader->offsets_[i] = GetFixed64(dir_bytes.data() + i * 8);
  }
  if (reader->offsets_.back() != data_bytes) {
    return Status::Corruption("directory/meta mismatch in " + path);
  }
  for (uint64_t i = 0; i + 1 < n_entries; ++i) {
    if (reader->offsets_[i] > reader->offsets_[i + 1]) {
      return Status::Corruption("non-monotone directory in " + path);
    }
  }
  return reader;
}

Result<uint64_t> RecordFileReader::RecordSize(uint64_t id) const {
  if (id >= num_records_) {
    return Status::OutOfRange("record " + std::to_string(id) + " >= " +
                              std::to_string(num_records_));
  }
  return offsets_[id + 1] - offsets_[id];
}

Status RecordFileReader::Get(uint64_t id, std::string* out) {
  CALDERA_ASSIGN_OR_RETURN(uint64_t size, RecordSize(id));
  out->clear();
  out->reserve(size);
  const uint32_t page_size = pager_->page_size();
  uint64_t off = offsets_[id];
  uint64_t remaining = size;
  while (remaining > 0) {
    PageId page = kFirstDataPage + off / page_size;
    uint64_t in_page = off % page_size;
    uint64_t take = std::min<uint64_t>(remaining, page_size - in_page);
    CALDERA_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(page));
    out->append(handle.data() + in_page, take);
    off += take;
    remaining -= take;
  }
  return Status::Ok();
}

void RecordFileReader::ResizePool(size_t pool_pages) {
  pool_pages_ = pool_pages;
  pool_ = std::make_unique<BufferPool>(pager_.get(), pool_pages);
}

}  // namespace caldera
