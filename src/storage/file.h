#ifndef CALDERA_STORAGE_FILE_H_
#define CALDERA_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace caldera {

/// Thin RAII wrapper around a POSIX file descriptor providing positional
/// reads/writes. All Caldera on-disk structures (pager files, record files,
/// index files) sit on top of this class.
class File {
 public:
  /// Opens (or creates) `path` for reading and writing.
  static Result<std::unique_ptr<File>> OpenOrCreate(const std::string& path);

  /// Opens an existing file read-only; NotFound if it does not exist.
  static Result<std::unique_ptr<File>> OpenReadOnly(const std::string& path);

  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Reads exactly `n` bytes at `offset` into `buf`. Fails with IoError on a
  /// short read (reading past EOF is an error, not a partial result).
  Status ReadAt(uint64_t offset, size_t n, char* buf) const;

  /// Writes all of `data` at `offset`, extending the file if needed.
  Status WriteAt(uint64_t offset, std::string_view data);

  /// Appends `data` at the current logical end of file.
  Status Append(std::string_view data);

  /// Truncates/extends the file to `size` bytes.
  Status Truncate(uint64_t size);

  /// Flushes data to stable storage.
  Status Sync();

  /// Current size in bytes.
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  File(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
};

/// Removes a file if it exists; OK if missing.
Status RemoveFileIfExists(const std::string& path);

/// True if `path` exists.
bool FileExists(const std::string& path);

/// Creates a directory (and parents); OK if it already exists.
Status CreateDirectories(const std::string& path);

}  // namespace caldera

#endif  // CALDERA_STORAGE_FILE_H_
