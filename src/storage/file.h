#ifndef CALDERA_STORAGE_FILE_H_
#define CALDERA_STORAGE_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace caldera {

/// Positional-I/O file interface. All Caldera on-disk structures (pager
/// files, record files, index files) sit on top of this class. The default
/// implementation wraps a POSIX file descriptor; tests substitute
/// fault-injecting wrappers via SetWrapHookForTesting to prove that every
/// layer above converts I/O faults into Status.
class File {
 public:
  virtual ~File() = default;

  /// Opens (or creates) `path` for reading and writing.
  static Result<std::unique_ptr<File>> OpenOrCreate(const std::string& path);

  /// Opens an existing file for reading and writing; NotFound if it does
  /// not exist (never creates).
  static Result<std::unique_ptr<File>> Open(const std::string& path);

  /// Opens an existing file read-only; NotFound if it does not exist.
  static Result<std::unique_ptr<File>> OpenReadOnly(const std::string& path);

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Reads exactly `n` bytes at `offset` into `buf`. Fails with IoError on a
  /// short read (reading past EOF is an error, not a partial result).
  virtual Status ReadAt(uint64_t offset, size_t n, char* buf) const = 0;

  /// Writes all of `data` at `offset`, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, std::string_view data) = 0;

  /// Appends `data` at the current logical end of file.
  virtual Status Append(std::string_view data) { return WriteAt(size(), data); }

  /// Truncates/extends the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Flushes data to stable storage.
  virtual Status Sync() = 0;

  /// Current size in bytes.
  virtual uint64_t size() const = 0;

  virtual const std::string& path() const = 0;

  /// Test hook: every file returned by the static factories is passed
  /// through `hook` (when set), letting tests substitute fault-injecting
  /// wrappers without touching production call sites. Pass nullptr to
  /// uninstall. Not thread-safe; install before opening files.
  using WrapHook =
      std::function<std::unique_ptr<File>(std::unique_ptr<File>)>;
  static void SetWrapHookForTesting(WrapHook hook);

 protected:
  File() = default;
};

/// Removes a file if it exists; OK if missing.
Status RemoveFileIfExists(const std::string& path);

/// True if `path` exists.
bool FileExists(const std::string& path);

/// Creates a directory (and parents); OK if it already exists.
Status CreateDirectories(const std::string& path);

}  // namespace caldera

#endif  // CALDERA_STORAGE_FILE_H_
