#ifndef CALDERA_STORAGE_RECORD_FILE_H_
#define CALDERA_STORAGE_RECORD_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace caldera {

// A RecordFile stores an append-once / read-many sequence of variable-length
// records addressed by dense record id (0..n-1). Markovian stream archives
// are write-once, so the format is split into a writer (sequential append,
// finalized with a directory) and a reader (page-cached random access).
//
// On-disk layout (a valid pager file):
//   page 0: pager header
//   page 1: record-file meta (magic, record count, directory page, ...)
//   pages 2..d-1: record bytes, packed back-to-back across pages
//   pages d.. : directory = (n+1) u64 byte offsets delimiting records

/// Page index of the first data page (pages 0 and 1 hold the pager header
/// and the record-file meta). Exposed for the ingest WAL, which journals
/// pre-images of the pages an append will overwrite.
inline constexpr PageId kRecordFileFirstDataPage = 2;

/// Sequentially builds a record file. Records become visible to readers only
/// after Finalize() succeeds.
class RecordFileWriter {
 public:
  static Result<std::unique_ptr<RecordFileWriter>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Reopens a *finalized* record file so more records can be appended (the
  /// live-ingestion path). The old directory pages are dropped — new data
  /// grows from the end of the existing records and Finalize writes a fresh
  /// directory + meta. Readers opened before the next Finalize keep serving
  /// their snapshot: old record bytes are never moved or modified, only the
  /// zero padding of the final partial page and the (reader-cached)
  /// directory region are overwritten. NOT crash-atomic on its own — the
  /// ingest WAL journals the overwritten pages first.
  static Result<std::unique_ptr<RecordFileWriter>> OpenForAppend(
      const std::string& path);

  /// Appends a record; returns its id.
  Result<uint64_t> Append(std::string_view record);

  /// Writes the directory + meta page and syncs. No appends afterwards.
  Status Finalize();

  uint64_t num_records() const { return offsets_.size(); }
  uint64_t data_bytes() const { return data_bytes_; }
  uint32_t page_size() const { return pager_->page_size(); }

 private:
  explicit RecordFileWriter(std::unique_ptr<Pager> pager);

  Status FlushPartialPage();
  Status AppendRaw(std::string_view bytes);

  std::unique_ptr<Pager> pager_;
  std::vector<uint64_t> offsets_;  // Start offset of each record.
  uint64_t data_bytes_ = 0;        // Logical bytes appended so far.
  std::string partial_;            // Buffered tail < one page.
  bool finalized_ = false;
};

/// Reads a finalized record file through an LRU buffer pool. Page traffic is
/// visible via stats().
class RecordFileReader {
 public:
  static Result<std::unique_ptr<RecordFileReader>> Open(
      const std::string& path, size_t pool_pages = 64);

  /// Reads record `id` into *out (replacing its contents).
  Status Get(uint64_t id, std::string* out);

  /// Size in bytes of record `id`.
  Result<uint64_t> RecordSize(uint64_t id) const;

  uint64_t num_records() const { return num_records_; }
  uint64_t data_bytes() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  /// Total on-disk size in pages (data + directory + meta).
  uint64_t file_pages() const { return pager_->page_count(); }
  uint32_t page_size() const { return pager_->page_size(); }

  const BufferPoolStats& stats() const { return pool_->stats(); }
  void ResetStats() { pool_->ResetStats(); }

  /// Re-sizes the buffer pool (drops cached pages). Used by benchmarks.
  void ResizePool(size_t pool_pages);

 private:
  RecordFileReader(std::unique_ptr<Pager> pager, size_t pool_pages)
      : pager_(std::move(pager)),
        pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)),
        pool_pages_(pool_pages) {}

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  size_t pool_pages_;
  uint64_t num_records_ = 0;
  std::vector<uint64_t> offsets_;  // n+1 delimiting offsets.
};

}  // namespace caldera

#endif  // CALDERA_STORAGE_RECORD_FILE_H_
