#ifndef CALDERA_STORAGE_WAL_H_
#define CALDERA_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/file.h"

namespace caldera {

// A write-ahead log of CRC32C-framed records, the durability backbone of the
// live-ingestion path (src/ingest/). The format is deliberately minimal:
//
//   offset 0: 8-byte magic "CLDRWAL1"
//   then frames, back to back:
//     u32  payload length
//     u8   record type (opaque to this layer)
//     u64  sequence number (strictly increasing from 1)
//     u32  CRC-32C over (type byte || seq bytes || payload)
//     payload bytes
//
// A crash can leave a torn frame at the tail (a partially persisted
// Append). Open scans forward validating every frame and truncates the file
// at the first frame that does not check out — the classic torn-tail rule:
// everything before the tear was synced by a successful Commit, everything
// at/after it was never acknowledged.

struct WalRecord {
  uint8_t type = 0;
  uint64_t seq = 0;
  std::string payload;
};

/// An open write-ahead log. Single-threaded, like the rest of the storage
/// layer; the ingest pipeline serializes access.
class Wal {
 public:
  /// Opens (creating if absent) the log at `path`, scans the existing
  /// frames, and truncates any torn tail. The surviving records are
  /// available via recovered() until the next Reset.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);

  /// Records that survived the open-time scan (in sequence order).
  const std::vector<WalRecord>& recovered() const { return recovered_; }

  /// True when Open found (and truncated) a torn tail.
  bool truncated_tail() const { return truncated_tail_; }

  /// Appends one frame; returns its sequence number. The frame is NOT
  /// durable until Sync succeeds.
  Result<uint64_t> Append(uint8_t type, std::string_view payload);

  /// Flushes all appended frames to stable storage (the commit point).
  Status Sync();

  /// Drops every frame (magic header is preserved) and syncs: called once a
  /// batch is fully applied to the stream and its indexes, so the log stays
  /// one batch long in steady state.
  Status Reset();

  /// A resumable position in the log: capture before a speculative Append,
  /// roll back if its Sync fails.
  struct Mark {
    uint64_t size = 0;
    uint64_t next_seq = 1;
  };
  Mark mark() const { return Mark{size_, next_seq_}; }

  /// Undoes Appends made after `mark` (truncate + seq rewind). Best-effort:
  /// if this also fails the caller must treat the log as poisoned and rely
  /// on the open-time torn-tail scan.
  Status RollbackTo(const Mark& mark);

  /// Current log size in bytes (header included).
  uint64_t size_bytes() const { return size_; }

  uint64_t next_seq() const { return next_seq_; }
  const std::string& path() const { return path_; }

 private:
  Wal(std::unique_ptr<File> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  std::unique_ptr<File> file_;
  std::string path_;
  uint64_t size_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<WalRecord> recovered_;
  bool truncated_tail_ = false;
};

}  // namespace caldera

#endif  // CALDERA_STORAGE_WAL_H_
