#include "storage/fault_injection_file.h"

#include <algorithm>
#include <utility>

namespace caldera {

FaultInjectionFile::FaultInjectionFile(
    std::unique_ptr<File> base, FaultInjectionOptions options,
    std::shared_ptr<FaultInjectionCounters> counters)
    : base_(std::move(base)),
      options_(std::move(options)),
      counters_(counters ? std::move(counters)
                         : std::make_shared<FaultInjectionCounters>()),
      rng_(options_.seed) {}

Status FaultInjectionFile::ReadAt(uint64_t offset, size_t n, char* buf) const {
  uint64_t index = counters_->reads++;
  if (options_.fail_reads_from >= 0 &&
      index >= static_cast<uint64_t>(options_.fail_reads_from)) {
    ++counters_->injected_read_errors;
    return Status::IoError("injected read error at offset " +
                           std::to_string(offset) + " in " + base_->path());
  }
  if (options_.read_error_prob > 0 && rng_.NextBool(options_.read_error_prob)) {
    ++counters_->injected_read_errors;
    return Status::IoError("injected (seeded) read error at offset " +
                           std::to_string(offset) + " in " + base_->path());
  }
  CALDERA_RETURN_IF_ERROR(base_->ReadAt(offset, n, buf));
  for (uint64_t bit : options_.flip_bits) {
    uint64_t byte = bit / 8;
    if (byte >= offset && byte < offset + n) {
      buf[byte - offset] ^= static_cast<char>(1u << (bit % 8));
      ++counters_->flipped_bits;
    }
  }
  return Status::Ok();
}

Status FaultInjectionFile::WriteAt(uint64_t offset, std::string_view data) {
  uint64_t index = counters_->writes++;
  if (options_.fail_writes_from >= 0 &&
      index >= static_cast<uint64_t>(options_.fail_writes_from)) {
    ++counters_->injected_write_errors;
    if (options_.torn_writes && !data.empty()) {
      // Persist a seeded strict prefix, then report failure — the on-disk
      // state is the torn page a crash mid-write would leave behind.
      size_t keep = 1 + rng_.NextBelow(data.size());
      if (keep == data.size()) keep = data.size() / 2;
      if (keep > 0) {
        CALDERA_RETURN_IF_ERROR(base_->WriteAt(offset, data.substr(0, keep)));
      }
    }
    return Status::IoError("injected write error at offset " +
                           std::to_string(offset) + " in " + base_->path());
  }
  return base_->WriteAt(offset, data);
}

Status FaultInjectionFile::Truncate(uint64_t size) {
  return base_->Truncate(size);
}

Status FaultInjectionFile::Sync() {
  if (options_.fail_sync) {
    return Status::IoError("injected sync error in " + base_->path());
  }
  return base_->Sync();
}

uint64_t FaultInjectionFile::size() const { return base_->size(); }

const std::string& FaultInjectionFile::path() const { return base_->path(); }

ScopedFaultInjection::ScopedFaultInjection(std::string path_substring,
                                           FaultInjectionOptions options)
    : counters_(std::make_shared<FaultInjectionCounters>()) {
  File::SetWrapHookForTesting(
      [substring = std::move(path_substring), options,
       counters = counters_](std::unique_ptr<File> file)
          -> std::unique_ptr<File> {
        if (file->path().find(substring) == std::string::npos) return file;
        return std::make_unique<FaultInjectionFile>(std::move(file), options,
                                                    counters);
      });
}

ScopedFaultInjection::~ScopedFaultInjection() {
  File::SetWrapHookForTesting(nullptr);
}

}  // namespace caldera
