#ifndef CALDERA_STORAGE_PAGER_H_
#define CALDERA_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/file.h"

namespace caldera {

/// Identifies a page within one pager file. Page 0 is the pager header;
/// user data lives in pages >= 1.
using PageId = uint64_t;

inline constexpr uint32_t kDefaultPageSize = 4096;
inline constexpr PageId kInvalidPageId = 0;

/// A Pager exposes a file as an array of fixed-size pages. It owns page
/// allocation and the on-disk header (magic, page size, page count); callers
/// are responsible for the contents of data pages. Access normally goes
/// through a BufferPool rather than directly through the Pager.
class Pager {
 public:
  /// Creates a new pager file at `path` (truncating any existing file).
  static Result<std::unique_ptr<Pager>> Create(const std::string& path,
                                               uint32_t page_size);

  /// Opens an existing pager file, validating the header.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads page `id` into `buf` (page_size bytes).
  Status ReadPage(PageId id, char* buf) const;

  /// Writes page `id` from `buf` (page_size bytes).
  Status WritePage(PageId id, const char* buf);

  /// Allocates a fresh zeroed page at the end of the file.
  Result<PageId> AllocatePage();

  /// Persists the header and fsyncs the file.
  Status Sync();

  uint32_t page_size() const { return page_size_; }
  /// Number of pages including the header page.
  uint64_t page_count() const { return page_count_; }
  const std::string& path() const { return file_->path(); }

 private:
  Pager(std::unique_ptr<File> file, uint32_t page_size, uint64_t page_count)
      : file_(std::move(file)),
        page_size_(page_size),
        page_count_(page_count) {}

  Status WriteHeader();

  std::unique_ptr<File> file_;
  uint32_t page_size_;
  uint64_t page_count_;
};

}  // namespace caldera

#endif  // CALDERA_STORAGE_PAGER_H_
