#ifndef CALDERA_STORAGE_PAGER_H_
#define CALDERA_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/file.h"

namespace caldera {

/// Identifies a page within one pager file. Page 0 is the pager header;
/// user data lives in pages >= 1.
using PageId = uint64_t;

inline constexpr uint32_t kDefaultPageSize = 4096;
inline constexpr PageId kInvalidPageId = 0;

/// Bytes per page reserved for the v2 integrity trailer (CRC-32C + zero
/// padding). Callers see pages of page_size() = physical - trailer bytes.
inline constexpr uint32_t kPageTrailerSize = 8;

/// A Pager exposes a file as an array of fixed-size pages. It owns page
/// allocation and the on-disk header (magic, page size, page count); callers
/// are responsible for the contents of data pages. Access normally goes
/// through a BufferPool rather than directly through the Pager.
///
/// Two on-disk formats exist:
///   v1 ("CLDRPGR1") — raw pages, no integrity metadata. Still readable
///     (and writable) for archives created before checksums existed.
///   v2 ("CLDRPGR2") — every physical page ends in an 8-byte trailer
///     holding the CRC-32C of (payload || page id) plus zero padding. The
///     checksum is stamped on every write and verified on every read, so a
///     flipped bit, torn page, or misdirected write surfaces as
///     Status::Corruption naming the file and page instead of propagating
///     garbage into query results.
/// Create always writes v2; Open auto-detects the version.
class Pager {
 public:
  /// Creates a new pager file at `path` (truncating any existing file).
  /// `page_size` is the physical page size; page_size() reports the usable
  /// payload (physical minus the integrity trailer).
  static Result<std::unique_ptr<Pager>> Create(const std::string& path,
                                               uint32_t page_size);

  /// Opens an existing pager file, validating the header (and, for v2, its
  /// checksum). NotFound if `path` does not exist — never creates.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads page `id` into `buf` (page_size() bytes), verifying its checksum
  /// on v2 files.
  Status ReadPage(PageId id, char* buf) const;

  /// Writes page `id` from `buf` (page_size() bytes), stamping its checksum
  /// on v2 files.
  Status WritePage(PageId id, const char* buf);

  /// Allocates a fresh zeroed page at the end of the file.
  Result<PageId> AllocatePage();

  /// Shrinks the file to `new_page_count` pages (header included), releasing
  /// every page at or beyond the new count. Used by the ingest path to
  /// reopen a finalized record file for appending: the old directory pages
  /// are dropped and re-grown after the new data. Growing is not supported —
  /// use AllocatePage.
  Status Truncate(uint64_t new_page_count);

  /// Persists the header (only if this handle changed it — a handle that
  /// never allocated must not clobber a header another writer has since
  /// advanced) and fsyncs the file.
  Status Sync();

  /// Usable bytes per page (physical page minus the v2 trailer).
  uint32_t page_size() const { return payload_size_; }
  /// On-disk bytes per page.
  uint32_t physical_page_size() const { return page_size_; }
  /// On-disk format version (1 = unchecksummed legacy, 2 = CRC-32C).
  uint32_t format_version() const { return version_; }
  /// Number of pages including the header page.
  uint64_t page_count() const { return page_count_; }
  const std::string& path() const { return file_->path(); }

 private:
  Pager(std::unique_ptr<File> file, uint32_t page_size, uint64_t page_count,
        uint32_t version);

  Status WriteHeader();
  uint32_t PageCrc(const char* payload, PageId id) const;
  Status VerifyPage(const char* physical, PageId id) const;
  void StampPage(char* physical, PageId id) const;

  std::unique_ptr<File> file_;
  uint32_t page_size_;     // Physical bytes per page.
  uint32_t payload_size_;  // page_size_ minus the v2 trailer.
  uint64_t page_count_;
  uint32_t version_;
  // True while the in-memory page_count_ is ahead of the on-disk header
  // (pages allocated since the last WriteHeader). Sync persists the header
  // only then: read-only consumers (buffer pools flush-syncing on
  // destruction) must never write their — possibly stale — view of the
  // header back over a file a live-ingest append has since extended.
  bool header_dirty_ = false;
  // Physical-page staging buffer for v2 reads/writes; mutable because
  // ReadPage is logically const. Pagers are single-threaded by design (one
  // per stream partition), so a single scratch buffer is safe.
  mutable std::vector<char> scratch_;
};

}  // namespace caldera

#endif  // CALDERA_STORAGE_PAGER_H_
