#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace caldera {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = SIZE_MAX;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = SIZE_MAX;
  }
}

char* PageHandle::data() {
  CALDERA_DCHECK(valid());
  return pool_->frames_[frame_].data.get();
}

const char* PageHandle::data() const {
  CALDERA_DCHECK(valid());
  return pool_->frames_[frame_].data.get();
}

PageId PageHandle::page_id() const {
  CALDERA_DCHECK(valid());
  return pool_->frames_[frame_].page_id;
}

void PageHandle::MarkDirty() {
  CALDERA_DCHECK(valid());
  pool_->frames_[frame_].dirty = true;
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(pager_->page_size());
    free_frames_.push_back(capacity_ - 1 - i);
  }
}

BufferPool::~BufferPool() {
  Status st = FlushAll();
  if (!st.ok()) {
    CALDERA_LOG_ERROR << "BufferPool flush on destruction failed: "
                      << st.ToString();
  }
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  CALDERA_DCHECK(f.pin_count > 0);
  --f.pin_count;
  if (f.pin_count == 0) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferPool::TouchLru(size_t frame) {
  Frame& f = frames_[frame];
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
}

Status BufferPool::EvictFrame(size_t frame) {
  Frame& f = frames_[frame];
  if (f.dirty) {
    CALDERA_RETURN_IF_ERROR(pager_->WritePage(f.page_id, f.data.get()));
    ++stats_.pages_written;
    f.dirty = false;
  }
  page_table_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  f.in_use = false;
  ++stats_.evictions;
  return Status::Ok();
}

Result<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all " + std::to_string(capacity_) +
        " frames pinned");
  }
  size_t victim = lru_.back();
  lru_.pop_back();
  frames_[victim].in_lru = false;
  CALDERA_RETURN_IF_ERROR(EvictFrame(victim));
  return victim;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  ++stats_.fetches;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    size_t frame = it->second;
    TouchLru(frame);
    ++frames_[frame].pin_count;
    return PageHandle(this, frame);
  }
  ++stats_.misses;
  CALDERA_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Frame& f = frames_[frame];
  Status st = pager_->ReadPage(id, f.data.get());
  if (!st.ok()) {
    free_frames_.push_back(frame);
    return st;
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_use = true;
  page_table_[id] = frame;
  return PageHandle(this, frame);
}

Result<PageHandle> BufferPool::NewPage() {
  // Grab the frame before touching the pager: if the pool is exhausted, the
  // file must not have been extended, or the freshly allocated page would be
  // permanently orphaned.
  ++stats_.fetches;
  ++stats_.misses;
  CALDERA_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Result<PageId> allocated = pager_->AllocatePage();
  if (!allocated.ok()) {
    free_frames_.push_back(frame);
    return allocated.status();
  }
  PageId id = *allocated;
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, pager_->page_size());
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_use = true;
  page_table_[id] = frame;
  return PageHandle(this, frame);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      CALDERA_RETURN_IF_ERROR(pager_->WritePage(f.page_id, f.data.get()));
      ++stats_.pages_written;
      f.dirty = false;
    }
  }
  return pager_->Sync();
}

}  // namespace caldera
