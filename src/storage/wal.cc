#include "storage/wal.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/encoding.h"

namespace caldera {

namespace {
constexpr char kWalMagic[8] = {'C', 'L', 'D', 'R', 'W', 'A', 'L', '1'};
constexpr size_t kFrameHeaderSize = 4 /*len*/ + 1 /*type*/ + 8 /*seq*/ +
                                    4 /*crc*/;
// A frame length beyond this is treated as a tear, not an allocation
// request: no legitimate ingest batch serializes anywhere near it.
constexpr uint32_t kMaxFramePayload = 1u << 30;

uint32_t FrameCrc(uint8_t type, uint64_t seq, std::string_view payload) {
  char head[9];
  head[0] = static_cast<char>(type);
  std::memcpy(head + 1, &seq, 8);
  uint32_t crc = Crc32c(head, sizeof(head));
  return Crc32cExtend(crc, payload.data(), payload.size());
}
}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                           File::OpenOrCreate(path));
  auto wal = std::unique_ptr<Wal>(new Wal(std::move(file), path));

  if (wal->file_->size() < sizeof(kWalMagic)) {
    // Fresh (or torn-before-the-magic) log: start over.
    CALDERA_RETURN_IF_ERROR(wal->file_->Truncate(0));
    CALDERA_RETURN_IF_ERROR(wal->file_->WriteAt(0, {kWalMagic, 8}));
    wal->size_ = sizeof(kWalMagic);
    return wal;
  }
  char magic[8];
  CALDERA_RETURN_IF_ERROR(wal->file_->ReadAt(0, 8, magic));
  if (std::memcmp(magic, kWalMagic, 8) != 0) {
    return Status::Corruption("bad WAL magic in " + path);
  }

  // Scan frames; stop at the first one that fails to validate.
  const uint64_t file_size = wal->file_->size();
  uint64_t offset = sizeof(kWalMagic);
  std::string frame;
  while (offset + kFrameHeaderSize <= file_size) {
    char header[kFrameHeaderSize];
    CALDERA_RETURN_IF_ERROR(
        wal->file_->ReadAt(offset, kFrameHeaderSize, header));
    const uint32_t len = GetFixed32(header);
    const uint8_t type = static_cast<uint8_t>(header[4]);
    const uint64_t seq = GetFixed64(header + 5);
    const uint32_t crc = GetFixed32(header + 13);
    if (len > kMaxFramePayload ||
        offset + kFrameHeaderSize + len > file_size) {
      break;  // Torn tail: length field itself is part of the tear.
    }
    frame.resize(len);
    CALDERA_RETURN_IF_ERROR(
        wal->file_->ReadAt(offset + kFrameHeaderSize, len, frame.data()));
    if (FrameCrc(type, seq, frame) != crc || seq != wal->next_seq_) {
      break;
    }
    wal->recovered_.push_back(WalRecord{type, seq, frame});
    wal->next_seq_ = seq + 1;
    offset += kFrameHeaderSize + len;
  }
  if (offset < file_size) {
    CALDERA_RETURN_IF_ERROR(wal->file_->Truncate(offset));
    CALDERA_RETURN_IF_ERROR(wal->file_->Sync());
    wal->truncated_tail_ = true;
  }
  wal->size_ = offset;
  return wal;
}

Result<uint64_t> Wal::Append(uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("WAL frame too large");
  }
  const uint64_t seq = next_seq_;
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutFixed32(static_cast<uint32_t>(payload.size()), &frame);
  frame.push_back(static_cast<char>(type));
  PutFixed64(seq, &frame);
  PutFixed32(FrameCrc(type, seq, payload), &frame);
  frame.append(payload);
  CALDERA_RETURN_IF_ERROR(file_->WriteAt(size_, frame));
  size_ += frame.size();
  ++next_seq_;
  return seq;
}

Status Wal::Sync() { return file_->Sync(); }

Status Wal::Reset() {
  CALDERA_RETURN_IF_ERROR(file_->Truncate(sizeof(kWalMagic)));
  CALDERA_RETURN_IF_ERROR(file_->Sync());
  size_ = sizeof(kWalMagic);
  next_seq_ = 1;
  recovered_.clear();
  truncated_tail_ = false;
  return Status::Ok();
}

Status Wal::RollbackTo(const Mark& mark) {
  if (mark.size < sizeof(kWalMagic) || mark.size > size_ ||
      mark.next_seq > next_seq_) {
    return Status::InvalidArgument("bad WAL rollback mark");
  }
  CALDERA_RETURN_IF_ERROR(file_->Truncate(mark.size));
  size_ = mark.size;
  next_seq_ = mark.next_seq;
  return Status::Ok();
}

}  // namespace caldera
