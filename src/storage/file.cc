#include "storage/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace caldera {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}
}  // namespace

Result<std::unique_ptr<File>> File::OpenOrCreate(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::IoError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(Errno("fstat", path));
  }
  return std::unique_ptr<File>(
      new File(path, fd, static_cast<uint64_t>(st.st_size)));
}

Result<std::unique_ptr<File>> File::OpenReadOnly(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(Errno("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(Errno("fstat", path));
  }
  return std::unique_ptr<File>(
      new File(path, fd, static_cast<uint64_t>(st.st_size)));
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Status File::ReadAt(uint64_t offset, size_t n, char* buf) const {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, buf + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("pread", path_));
    }
    if (r == 0) {
      return Status::IoError("short read at offset " + std::to_string(offset) +
                             " (" + std::to_string(done) + "/" +
                             std::to_string(n) + " bytes) in " + path_);
    }
    done += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status File::WriteAt(uint64_t offset, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                         static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("pwrite", path_));
    }
    done += static_cast<size_t>(w);
  }
  if (offset + data.size() > size_) size_ = offset + data.size();
  return Status::Ok();
}

Status File::Append(std::string_view data) { return WriteAt(size_, data); }

Status File::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IoError(Errno("ftruncate", path_));
  }
  size_ = size;
  return Status::Ok();
}

Status File::Sync() {
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync", path_));
  return Status::Ok();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IoError("remove '" + path + "': " + ec.message());
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status CreateDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir '" + path + "': " + ec.message());
  return Status::Ok();
}

}  // namespace caldera
