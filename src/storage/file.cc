#include "storage/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace caldera {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}

/// The production File: a thin RAII wrapper around a POSIX fd.
class PosixFile final : public File {
 public:
  PosixFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, size_t n, char* buf) const override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, buf + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(Errno("pread", path_));
      }
      if (r == 0) {
        return Status::IoError("short read at offset " +
                               std::to_string(offset) + " (" +
                               std::to_string(done) + "/" + std::to_string(n) +
                               " bytes) in " + path_);
      }
      done += static_cast<size_t>(r);
    }
    return Status::Ok();
  }

  Status WriteAt(uint64_t offset, std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(Errno("pwrite", path_));
      }
      done += static_cast<size_t>(w);
    }
    if (offset + data.size() > size_) size_ = offset + data.size();
    return Status::Ok();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IoError(Errno("ftruncate", path_));
    }
    size_ = size;
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync", path_));
    return Status::Ok();
  }

  uint64_t size() const override { return size_; }
  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
  uint64_t size_;
};

File::WrapHook& WrapHookSlot() {
  static File::WrapHook hook;
  return hook;
}

Result<std::unique_ptr<File>> Finish(std::unique_ptr<File> file) {
  File::WrapHook& hook = WrapHookSlot();
  if (hook) return hook(std::move(file));
  return file;
}

Result<std::unique_ptr<File>> OpenWithFlags(const std::string& path,
                                            int flags) {
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(Errno("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(Errno("fstat", path));
  }
  return Finish(std::make_unique<PosixFile>(path, fd,
                                            static_cast<uint64_t>(st.st_size)));
}

}  // namespace

Result<std::unique_ptr<File>> File::OpenOrCreate(const std::string& path) {
  return OpenWithFlags(path, O_RDWR | O_CREAT);
}

Result<std::unique_ptr<File>> File::Open(const std::string& path) {
  return OpenWithFlags(path, O_RDWR);
}

Result<std::unique_ptr<File>> File::OpenReadOnly(const std::string& path) {
  return OpenWithFlags(path, O_RDONLY);
}

void File::SetWrapHookForTesting(WrapHook hook) {
  WrapHookSlot() = std::move(hook);
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return Status::IoError("remove '" + path + "': " + ec.message());
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status CreateDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir '" + path + "': " + ec.message());
  return Status::Ok();
}

}  // namespace caldera
