#include "storage/pager.h"

#include <cstring>
#include <vector>

#include "common/encoding.h"

namespace caldera {

namespace {
constexpr char kMagic[8] = {'C', 'L', 'D', 'R', 'P', 'G', 'R', '1'};
constexpr size_t kHeaderSize = 8 /*magic*/ + 4 /*page_size*/ + 8 /*pages*/;
}  // namespace

Result<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                             uint32_t page_size) {
  if (page_size < 512 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two >= 512");
  }
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                           File::OpenOrCreate(path));
  CALDERA_RETURN_IF_ERROR(file->Truncate(0));
  auto pager = std::unique_ptr<Pager>(
      new Pager(std::move(file), page_size, /*page_count=*/1));
  // Materialize the header page.
  std::vector<char> zero(page_size, 0);
  CALDERA_RETURN_IF_ERROR(pager->file_->WriteAt(0, {zero.data(), zero.size()}));
  CALDERA_RETURN_IF_ERROR(pager->WriteHeader());
  return pager;
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                           File::OpenOrCreate(path));
  if (file->size() < kHeaderSize) {
    return Status::Corruption("pager file too small: " + path);
  }
  char header[kHeaderSize];
  CALDERA_RETURN_IF_ERROR(file->ReadAt(0, kHeaderSize, header));
  if (std::memcmp(header, kMagic, 8) != 0) {
    return Status::Corruption("bad pager magic in " + path);
  }
  uint32_t page_size = GetFixed32(header + 8);
  uint64_t page_count = GetFixed64(header + 12);
  if (page_size < 512 || (page_size & (page_size - 1)) != 0) {
    return Status::Corruption("bad page size in " + path);
  }
  if (file->size() < page_count * static_cast<uint64_t>(page_size)) {
    return Status::Corruption("pager file truncated: " + path);
  }
  return std::unique_ptr<Pager>(
      new Pager(std::move(file), page_size, page_count));
}

Status Pager::WriteHeader() {
  std::string header(kMagic, 8);
  PutFixed32(page_size_, &header);
  PutFixed64(page_count_, &header);
  return file_->WriteAt(0, header);
}

Status Pager::ReadPage(PageId id, char* buf) const {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " >= count " +
                              std::to_string(page_count_));
  }
  return file_->ReadAt(id * page_size_, page_size_, buf);
}

Status Pager::WritePage(PageId id, const char* buf) {
  if (id == 0 || id >= page_count_) {
    return Status::OutOfRange("cannot write page " + std::to_string(id));
  }
  return file_->WriteAt(id * page_size_, {buf, page_size_});
}

Result<PageId> Pager::AllocatePage() {
  PageId id = page_count_;
  std::vector<char> zero(page_size_, 0);
  CALDERA_RETURN_IF_ERROR(
      file_->WriteAt(id * page_size_, {zero.data(), zero.size()}));
  ++page_count_;
  return id;
}

Status Pager::Sync() {
  CALDERA_RETURN_IF_ERROR(WriteHeader());
  return file_->Sync();
}

}  // namespace caldera
