#include "storage/pager.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/encoding.h"

namespace caldera {

namespace {
constexpr char kMagicV1[8] = {'C', 'L', 'D', 'R', 'P', 'G', 'R', '1'};
constexpr char kMagicV2[8] = {'C', 'L', 'D', 'R', 'P', 'G', 'R', '2'};
constexpr size_t kHeaderSize = 8 /*magic*/ + 4 /*page_size*/ + 8 /*pages*/;
}  // namespace

Pager::Pager(std::unique_ptr<File> file, uint32_t page_size,
             uint64_t page_count, uint32_t version)
    : file_(std::move(file)),
      page_size_(page_size),
      payload_size_(version >= 2 ? page_size - kPageTrailerSize : page_size),
      page_count_(page_count),
      version_(version) {
  if (version_ >= 2) scratch_.resize(page_size_);
}

uint32_t Pager::PageCrc(const char* payload, PageId id) const {
  uint32_t crc = Crc32c(payload, payload_size_);
  char id_bytes[8];
  std::memcpy(id_bytes, &id, 8);
  return Crc32cExtend(crc, id_bytes, 8);
}

void Pager::StampPage(char* physical, PageId id) const {
  uint32_t crc = PageCrc(physical, id);
  std::memcpy(physical + payload_size_, &crc, 4);
  std::memset(physical + payload_size_ + 4, 0, kPageTrailerSize - 4);
}

Status Pager::VerifyPage(const char* physical, PageId id) const {
  uint32_t stored = GetFixed32(physical + payload_size_);
  uint32_t padding = GetFixed32(physical + payload_size_ + 4);
  if (stored != PageCrc(physical, id) || padding != 0) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id) + " of " + file_->path());
  }
  return Status::Ok();
}

Result<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                             uint32_t page_size) {
  if (page_size < 512 || (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two >= 512");
  }
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                           File::OpenOrCreate(path));
  CALDERA_RETURN_IF_ERROR(file->Truncate(0));
  auto pager = std::unique_ptr<Pager>(
      new Pager(std::move(file), page_size, /*page_count=*/1, /*version=*/2));
  // Materialize the (checksummed) header page.
  CALDERA_RETURN_IF_ERROR(pager->WriteHeader());
  return pager;
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  // Non-creating open: a missing archive must surface as NotFound, not as a
  // zero-byte junk file plus a Corruption error.
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> file, File::Open(path));
  if (file->size() < kHeaderSize) {
    return Status::Corruption("pager file too small: " + path);
  }
  char header[kHeaderSize];
  CALDERA_RETURN_IF_ERROR(file->ReadAt(0, kHeaderSize, header));
  uint32_t version;
  if (std::memcmp(header, kMagicV2, 8) == 0) {
    version = 2;
  } else if (std::memcmp(header, kMagicV1, 8) == 0) {
    version = 1;
  } else {
    return Status::Corruption("bad pager magic in " + path);
  }
  uint32_t page_size = GetFixed32(header + 8);
  uint64_t page_count = GetFixed64(header + 12);
  if (page_size < 512 || (page_size & (page_size - 1)) != 0) {
    return Status::Corruption("bad page size in " + path);
  }
  // Division, not multiplication: a corrupt header with a huge page_count
  // must not wrap the product and slip past validation.
  if (page_count == 0 || page_count > file->size() / page_size) {
    return Status::Corruption("pager file truncated: " + path);
  }
  auto pager = std::unique_ptr<Pager>(
      new Pager(std::move(file), page_size, page_count, version));
  if (version >= 2) {
    // Verify the header page end-to-end so corrupt header fields (beyond
    // the sanity checks above) cannot steer reads.
    CALDERA_RETURN_IF_ERROR(
        pager->file_->ReadAt(0, page_size, pager->scratch_.data()));
    CALDERA_RETURN_IF_ERROR(pager->VerifyPage(pager->scratch_.data(), 0));
  }
  return pager;
}

Status Pager::WriteHeader() {
  std::string header;
  header.append(version_ >= 2 ? kMagicV2 : kMagicV1, 8);
  PutFixed32(page_size_, &header);
  PutFixed64(page_count_, &header);
  if (version_ < 2) {
    CALDERA_RETURN_IF_ERROR(file_->WriteAt(0, header));
    header_dirty_ = false;
    return Status::Ok();
  }
  // v2: the header page is checksummed like any other page — build the full
  // physical image (header fields, zero padding, trailer) and write it.
  std::memset(scratch_.data(), 0, page_size_);
  std::memcpy(scratch_.data(), header.data(), header.size());
  StampPage(scratch_.data(), 0);
  CALDERA_RETURN_IF_ERROR(file_->WriteAt(0, {scratch_.data(), page_size_}));
  header_dirty_ = false;
  return Status::Ok();
}

Status Pager::ReadPage(PageId id, char* buf) const {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " >= count " +
                              std::to_string(page_count_));
  }
  if (version_ < 2) {
    return file_->ReadAt(id * page_size_, page_size_, buf);
  }
  CALDERA_RETURN_IF_ERROR(
      file_->ReadAt(id * page_size_, page_size_, scratch_.data()));
  CALDERA_RETURN_IF_ERROR(VerifyPage(scratch_.data(), id));
  std::memcpy(buf, scratch_.data(), payload_size_);
  return Status::Ok();
}

Status Pager::WritePage(PageId id, const char* buf) {
  if (id == 0 || id >= page_count_) {
    return Status::OutOfRange("cannot write page " + std::to_string(id));
  }
  if (version_ < 2) {
    return file_->WriteAt(id * page_size_, {buf, page_size_});
  }
  std::memcpy(scratch_.data(), buf, payload_size_);
  StampPage(scratch_.data(), id);
  return file_->WriteAt(id * page_size_, {scratch_.data(), page_size_});
}

Result<PageId> Pager::AllocatePage() {
  PageId id = page_count_;
  if (version_ < 2) {
    std::vector<char> zero(page_size_, 0);
    CALDERA_RETURN_IF_ERROR(
        file_->WriteAt(id * page_size_, {zero.data(), zero.size()}));
  } else {
    std::memset(scratch_.data(), 0, page_size_);
    StampPage(scratch_.data(), id);
    CALDERA_RETURN_IF_ERROR(
        file_->WriteAt(id * page_size_, {scratch_.data(), page_size_}));
  }
  ++page_count_;
  header_dirty_ = true;
  return id;
}

Status Pager::Truncate(uint64_t new_page_count) {
  if (new_page_count == 0 || new_page_count > page_count_) {
    return Status::InvalidArgument("cannot truncate to " +
                                   std::to_string(new_page_count) + " pages");
  }
  CALDERA_RETURN_IF_ERROR(
      file_->Truncate(new_page_count * uint64_t{page_size_}));
  page_count_ = new_page_count;
  return WriteHeader();
}

Status Pager::Sync() {
  if (header_dirty_) CALDERA_RETURN_IF_ERROR(WriteHeader());
  return file_->Sync();
}

}  // namespace caldera
