#ifndef CALDERA_REG_STREAMING_H_
#define CALDERA_REG_STREAMING_H_

#include <cstdint>
#include <deque>

#include "caldera/access_method.h"
#include "common/status.h"
#include "reg/reg_operator.h"

namespace caldera {

/// Lahar-style *real-time* Regular query processing (the predecessor system
/// the paper builds on): consume a Markovian stream timestep by timestep as
/// it is produced — e.g. straight out of an online smoother — and emit the
/// match probability after each step. This is the streaming complement of
/// Caldera's archived access methods; it necessarily touches every
/// timestep.
///
/// A bounded window of recent results is retained for applications that
/// need short lookback (e.g. debouncing event detection).
class StreamingQueryProcessor {
 public:
  /// `window` bounds the retained recent results (0 keeps none).
  StreamingQueryProcessor(const RegularQuery& query,
                          const StreamSchema& schema, size_t window = 64);

  /// Consumes the next timestep. The first call must carry an empty
  /// `transition`; subsequent calls the CPT from the previous timestep.
  /// Returns the match probability at the consumed timestep.
  Result<double> Consume(const Distribution& marginal, const Cpt& transition);

  /// Timesteps consumed so far.
  uint64_t timesteps() const { return timesteps_; }

  /// Probability reported for the most recent timestep.
  double last_probability() const { return reg_.last_probability(); }

  /// The retained (time, probability) window, oldest first.
  const std::deque<TimestepProbability>& recent() const { return recent_; }

  /// Highest-probability entry currently in the window; time 0 / prob 0
  /// when the window is empty.
  TimestepProbability WindowPeak() const;

  /// Forgets all state and starts a fresh stream.
  void Reset();

 private:
  RegOperator reg_;
  size_t window_;
  uint64_t timesteps_ = 0;
  std::deque<TimestepProbability> recent_;
};

}  // namespace caldera

#endif  // CALDERA_REG_STREAMING_H_
