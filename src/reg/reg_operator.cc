#include "reg/reg_operator.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace caldera {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

RegOperator::RegOperator(const RegularQuery& query,
                         const StreamSchema& schema)
    : automaton_(query, schema) {}

void RegOperator::Reset() {
  mass_.clear();
  propagated_.clear();
  initialized_ = false;
  last_prob_ = 0.0;
  num_updates_ = 0;
  kernel_seconds_ = 0.0;
}

double RegOperator::ApplyAtoms(
    std::vector<std::pair<int, Distribution>>& propagated) {
  // Route every (state, value) mass through the DFA transition for the
  // value's atom, then merge distributions landing in the same DFA state.
  // Each bucket tracks whether its entries still form one strictly
  // ascending run — true whenever a single source distribution feeds it,
  // the common case — so the merge below can skip the sort entirely.
  struct Bucket {
    int dfa;
    std::vector<Distribution::Entry> entries;
    bool sorted = true;
  };
  std::vector<Bucket> buckets;
  auto bucket_for = [&buckets](int dfa) -> Bucket& {
    for (Bucket& b : buckets) {
      if (b.dfa == dfa) return b;
    }
    buckets.push_back(Bucket{dfa, {}, true});
    return buckets.back();
  };

  for (auto& [dfa, dist] : propagated) {
    for (const Distribution::Entry& e : dist.entries()) {
      if (e.prob == 0.0) continue;
      int next = automaton_.Transition(dfa, automaton_.AtomOf(e.value));
      Bucket& b = bucket_for(next);
      if (!b.entries.empty() && b.entries.back().value >= e.value) {
        b.sorted = false;
      }
      b.entries.push_back(e);
    }
  }
  propagated.clear();

  mass_.clear();
  double accept = 0.0;
  for (Bucket& b : buckets) {
    Distribution dist = b.sorted ? Distribution::FromSorted(std::move(b.entries))
                                 : Distribution::FromPairs(std::move(b.entries));
    if (automaton_.IsAccepting(b.dfa)) accept += dist.Mass();
    mass_.emplace_back(b.dfa, std::move(dist));
  }
  std::sort(mass_.begin(), mass_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return accept;
}

void RegOperator::CollapseNull() {
  std::vector<std::pair<int, Distribution>> collapsed;
  for (auto& [dfa, dist] : mass_) {
    int next = automaton_.NullTransition(dfa);
    auto it = std::find_if(collapsed.begin(), collapsed.end(),
                           [next](const auto& p) { return p.first == next; });
    if (it == collapsed.end()) {
      collapsed.emplace_back(next, std::move(dist));
    } else {
      // Merge the two distributions.
      std::vector<Distribution::Entry> entries = it->second.entries();
      const auto& more = dist.entries();
      entries.insert(entries.end(), more.begin(), more.end());
      it->second = Distribution::FromPairs(std::move(entries));
    }
  }
  std::sort(collapsed.begin(), collapsed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  mass_ = std::move(collapsed);
}

double RegOperator::Initialize(const Distribution& marginal) {
  CALDERA_CHECK(!initialized_) << "Reg operator already initialized";
  initialized_ = true;
  ++num_updates_;
  propagated_.clear();
  propagated_.emplace_back(automaton_.start_state(), marginal);
  last_prob_ = ApplyAtoms(propagated_);
  return last_prob_;
}

double RegOperator::Update(const Cpt& transition) {
  CALDERA_CHECK(initialized_) << "Reg operator not initialized";
  ++num_updates_;
  propagated_.clear();
  propagated_.reserve(mass_.size());
  const auto start = Clock::now();
  for (auto& [dfa, dist] : mass_) {
    propagated_.emplace_back(dfa,
                             kernels::Propagate(transition, dist, &workspace_));
  }
  kernel_seconds_ += SecondsSince(start);
  last_prob_ = ApplyAtoms(propagated_);
  return last_prob_;
}

double RegOperator::UpdateSpanning(const Cpt& span, uint64_t gap) {
  CALDERA_CHECK(initialized_) << "Reg operator not initialized";
  CALDERA_CHECK(gap >= 1);
  ++num_updates_;
  // Interior timesteps (gap - 1 of them) all read as the null atom; the
  // null transition is idempotent and commutes with value propagation, so
  // a single collapse is exact.
  if (gap >= 2) CollapseNull();
  propagated_.clear();
  propagated_.reserve(mass_.size());
  const auto start = Clock::now();
  for (auto& [dfa, dist] : mass_) {
    propagated_.emplace_back(dfa, kernels::Propagate(span, dist, &workspace_));
  }
  kernel_seconds_ += SecondsSince(start);
  last_prob_ = ApplyAtoms(propagated_);
  return last_prob_;
}

double RegOperator::UpdateIndependent(const Distribution& marginal) {
  CALDERA_CHECK(initialized_) << "Reg operator not initialized";
  ++num_updates_;
  CollapseNull();
  propagated_.clear();
  propagated_.reserve(mass_.size());
  for (auto& [dfa, dist] : mass_) {
    double scale = dist.Mass();
    if (scale == 0.0) continue;
    // Scaling preserves the marginal's sorted order, so build directly.
    std::vector<Distribution::Entry> entries;
    entries.reserve(marginal.support_size());
    for (const Distribution::Entry& e : marginal.entries()) {
      entries.push_back({e.value, e.prob * scale});
    }
    propagated_.emplace_back(dfa,
                             Distribution::FromSorted(std::move(entries)));
  }
  last_prob_ = ApplyAtoms(propagated_);
  return last_prob_;
}

std::vector<double> RunRegOverStream(const RegularQuery& query,
                                     const MarkovianStream& stream) {
  std::vector<double> signal;
  signal.reserve(stream.length());
  if (stream.empty()) return signal;
  RegOperator reg(query, stream.schema());
  signal.push_back(reg.Initialize(stream.marginal(0)));
  for (uint64_t t = 1; t < stream.length(); ++t) {
    signal.push_back(reg.Update(stream.transition(t)));
  }
  return signal;
}

}  // namespace caldera
