#ifndef CALDERA_REG_REG_OPERATOR_H_
#define CALDERA_REG_REG_OPERATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "markov/cpt.h"
#include "markov/distribution.h"
#include "markov/kernels.h"
#include "markov/schema.h"
#include "markov/stream.h"
#include "query/nfa.h"
#include "query/regular_query.h"

namespace caldera {

/// The Lahar-style Reg operator (Section 3, Figure 5(a)): consumes a
/// Markovian stream timestep by timestep and emits, after each step, the
/// probability that the query is satisfied (a match ends) at that step.
///
/// Internally it maintains the joint distribution
///     mass[d][x] = P(prefix drives the query DFA to state d AND X_t = x)
/// over (DFA state, stream value) pairs. Because the DFA state is a
/// deterministic function of the value trajectory, this joint is exact, and
/// the match probability is the total mass in accepting DFA states.
///
/// All five access methods drive the same operator through four entry
/// points:
///   Initialize(marginal)        first (or first relevant) timestep
///   Update(cpt)                 exact adjacent step (scan / B+Tree methods)
///   UpdateSpanning(cpt, gap)    MC-index step across a skipped span
///   UpdateIndependent(marginal) semi-independent step across a gap
class RegOperator {
 public:
  RegOperator(const RegularQuery& query, const StreamSchema& schema);

  bool initialized() const { return initialized_; }

  /// Seeds the operator with the marginal of the current timestep and
  /// returns the match probability at that timestep.
  double Initialize(const Distribution& marginal);

  /// Advances one timestep using the CPT from the previous timestep; exact.
  double Update(const Cpt& transition);

  /// Advances across `gap` timesteps (gap >= 1) using a single composed CPT
  /// spanning them (from the MC index). Exact when the skipped interior
  /// timesteps carry no mass on any positive query predicate: their symbols
  /// all read as the null atom, whose DFA transition is idempotent, so one
  /// application before propagating through the composed CPT suffices.
  double UpdateSpanning(const Cpt& span, uint64_t gap);

  /// Advances across a gap assuming independence between the previous
  /// relevant timestep and this one (Algorithm 5). Approximate: correlation
  /// across the gap is discarded, but the null-atom collapse (which is
  /// exact) is still applied.
  double UpdateIndependent(const Distribution& marginal);

  /// Forgets all state.
  void Reset();

  /// Match probability emitted by the last Initialize/Update* call.
  double last_probability() const { return last_prob_; }

  /// Number of Update* calls since construction/Reset (the paper's cost
  /// driver: Reg slows exponentially with query links, so skipped updates
  /// dominate the speedups).
  uint64_t num_updates() const { return num_updates_; }

  /// Wall-clock seconds spent inside the CPT propagation kernels (the
  /// per-state propagate loops of Update/UpdateSpanning) since
  /// construction/Reset.
  double kernel_seconds() const { return kernel_seconds_; }

  QueryAutomaton* automaton() { return &automaton_; }

 private:
  /// Applies the DFA transition on each value's atom to the per-state
  /// distributions in `propagated` (consumed and cleared), accumulating
  /// into mass_; returns the accepting-state mass.
  double ApplyAtoms(std::vector<std::pair<int, Distribution>>& propagated);

  /// Merges states of `mass_` through the null-atom transition.
  void CollapseNull();

  QueryAutomaton automaton_;
  // Live DFA states and their value distributions, sorted by DFA id.
  std::vector<std::pair<int, Distribution>> mass_;
  // Dense-scratch workspace shared by every propagation this operator
  // performs; sized once per domain, so steady-state updates allocate only
  // the output distributions.
  kernels::PropagationWorkspace workspace_;
  // Staging buffer for propagated (DFA state, distribution) pairs, reused
  // across timesteps.
  std::vector<std::pair<int, Distribution>> propagated_;
  bool initialized_ = false;
  double last_prob_ = 0.0;
  uint64_t num_updates_ = 0;
  double kernel_seconds_ = 0.0;
};

/// Convenience: runs a full scan of an in-memory stream and returns the
/// match probability at every timestep. Reference implementation used by
/// tests and the example programs.
std::vector<double> RunRegOverStream(const RegularQuery& query,
                                     const MarkovianStream& stream);

}  // namespace caldera

#endif  // CALDERA_REG_REG_OPERATOR_H_
