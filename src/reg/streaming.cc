#include "reg/streaming.h"

namespace caldera {

StreamingQueryProcessor::StreamingQueryProcessor(const RegularQuery& query,
                                                 const StreamSchema& schema,
                                                 size_t window)
    : reg_(query, schema), window_(window) {}

Result<double> StreamingQueryProcessor::Consume(const Distribution& marginal,
                                                const Cpt& transition) {
  if (timesteps_ == 0) {
    if (!transition.empty()) {
      return Status::InvalidArgument(
          "the first timestep has no incoming transition");
    }
    if (!marginal.IsNormalized(1e-6)) {
      return Status::InvalidArgument("marginal is not normalized");
    }
  } else if (transition.empty()) {
    return Status::InvalidArgument(
        "timesteps after the first need a transition CPT");
  }

  double p = timesteps_ == 0 ? reg_.Initialize(marginal)
                             : reg_.Update(transition);
  if (window_ > 0) {
    recent_.push_back({timesteps_, p});
    if (recent_.size() > window_) recent_.pop_front();
  }
  ++timesteps_;
  return p;
}

TimestepProbability StreamingQueryProcessor::WindowPeak() const {
  TimestepProbability peak{0, 0.0};
  for (const TimestepProbability& e : recent_) {
    if (e.prob > peak.prob) peak = e;
  }
  return peak;
}

void StreamingQueryProcessor::Reset() {
  reg_.Reset();
  timesteps_ = 0;
  recent_.clear();
}

}  // namespace caldera
