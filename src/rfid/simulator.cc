#include "rfid/simulator.h"

namespace caldera {

Result<std::vector<uint32_t>> PersonSimulator::SimulateRoutine(
    uint32_t start, const std::vector<Stop>& stops, double pause_prob) {
  std::vector<uint32_t> truth{start};
  uint32_t current = start;
  for (const Stop& stop : stops) {
    CALDERA_ASSIGN_OR_RETURN(std::vector<uint32_t> path,
                             layout_->ShortestPath(current, stop.location));
    for (size_t i = 1; i < path.size(); ++i) {
      truth.push_back(path[i]);
      // Occasional hesitation while walking.
      while (rng_.NextBool(pause_prob)) truth.push_back(path[i]);
    }
    for (uint32_t d = 0; d < stop.dwell; ++d) truth.push_back(stop.location);
    current = stop.location;
  }
  return truth;
}

std::vector<uint32_t> PersonSimulator::RandomWalk(uint32_t start,
                                                  uint64_t steps,
                                                  double stay_prob) {
  std::vector<uint32_t> truth;
  truth.reserve(steps);
  uint32_t current = start;
  for (uint64_t t = 0; t < steps; ++t) {
    truth.push_back(current);
    const std::vector<uint32_t>& next = layout_->neighbors(current);
    if (!next.empty() && !rng_.NextBool(stay_prob)) {
      current = next[rng_.NextBelow(next.size())];
    }
  }
  return truth;
}

Result<std::vector<uint32_t>> PersonSimulator::Observe(
    const std::vector<uint32_t>& truth, const Hmm& hmm) {
  std::vector<uint32_t> observations;
  CALDERA_RETURN_IF_ERROR(hmm.EmitObservations(truth, &rng_, &observations));
  return observations;
}

}  // namespace caldera
