#include "rfid/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "hmm/smoother.h"
#include "rfid/simulator.h"

namespace caldera {

Cpt IndependenceBridge(const Distribution& from, const Distribution& to) {
  Cpt bridge;
  std::vector<Cpt::RowEntry> row;
  row.reserve(to.support_size());
  for (const Distribution::Entry& e : to.entries()) {
    row.push_back({e.value, e.prob});
  }
  for (const Distribution::Entry& src : from.entries()) {
    bridge.SetRow(src.value, row);
  }
  return bridge;
}

namespace {

/// Identity permutation with the given pairs swapped.
std::vector<ValueId> SwapPermutation(
    uint32_t domain, const std::vector<std::pair<ValueId, ValueId>>& swaps) {
  std::vector<ValueId> perm(domain);
  for (uint32_t i = 0; i < domain; ++i) perm[i] = i;
  for (const auto& [a, b] : swaps) std::swap(perm[a], perm[b]);
  return perm;
}

}  // namespace

RegularQuery SnippetWorkload::EnteredRoomFixed() const {
  Predicate hall = Predicate::Equality(
      0, target_hall, schema.label(0, target_hall));
  Predicate room = Predicate::Equality(
      0, target_room, schema.label(0, target_room));
  return RegularQuery::Sequence("EnteredRoomFixed", {hall, room});
}

RegularQuery SnippetWorkload::EnteredRoomVariable() const {
  Predicate hall = Predicate::Equality(
      0, target_hall, schema.label(0, target_hall));
  Predicate room = Predicate::Equality(
      0, target_room, schema.label(0, target_room));
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, hall});
  links.push_back(QueryLink{Predicate::Not(room), room});
  return RegularQuery("EnteredRoomVariable", std::move(links));
}

Result<SnippetWorkload> MakeSnippetStream(const SnippetStreamSpec& spec) {
  if (spec.corridor_segments < 8) {
    return Status::InvalidArgument(
        "snippet streams need >= 8 corridor segments");
  }
  if (spec.density < 0 || spec.density > 1 || spec.match_rate < 0 ||
      spec.match_rate > 1) {
    return Status::InvalidArgument("density/match_rate must be in [0,1]");
  }

  SnippetWorkload workload;
  BuildingLayout::CorridorSpec corridor;
  corridor.segments = spec.corridor_segments;
  corridor.rooms_per_segment = 1;
  corridor.detect_prob = spec.detect_prob;
  workload.layout = BuildingLayout::MakeCorridor(corridor);
  workload.schema = workload.layout.MakeSchema();

  const uint32_t m = spec.corridor_segments / 2;
  CALDERA_ASSIGN_OR_RETURN(
      uint32_t target_room,
      workload.layout.LocationByName("Room" + std::to_string(m) + "_0"));
  CALDERA_ASSIGN_OR_RETURN(
      uint32_t target_hall,
      workload.layout.LocationByName("H" + std::to_string(m)));
  workload.target_room = target_room;
  workload.target_hall = target_hall;

  // Swap partners live in the corridor tail the walk never visits, so a
  // relabeled snippet carries no support on the swapped-away location.
  CALDERA_ASSIGN_OR_RETURN(
      uint32_t tail_hall,
      workload.layout.LocationByName(
          "H" + std::to_string(spec.corridor_segments - 1)));
  CALDERA_ASSIGN_OR_RETURN(
      uint32_t tail_room,
      workload.layout.LocationByName(
          "Room" + std::to_string(spec.corridor_segments - 2) + "_0"));

  Hmm hmm = workload.layout.MakeHmm({});
  CALDERA_ASSIGN_OR_RETURN(uint32_t start,
                           workload.layout.LocationByName("H0"));
  hmm.SetInitial(Distribution::Point(start));

  PersonSimulator simulator(&workload.layout, spec.seed);
  Rng type_rng(spec.seed ^ 0x5eed);
  SmootherOptions smoother;
  smoother.truncate_eps = spec.truncate_eps;

  MarkovianStream stream(workload.schema);
  const uint32_t domain = workload.schema.state_count();
  for (uint32_t i = 0; i < spec.num_snippets; ++i) {
    // Walk to the target room, dwell ~15 steps, walk back.
    std::vector<PersonSimulator::Stop> stops = {
        {target_room, 15},
        {start, 0},
    };
    CALDERA_ASSIGN_OR_RETURN(std::vector<uint32_t> truth,
                             simulator.SimulateRoutine(start, stops,
                                                       /*pause_prob=*/0.1));
    CALDERA_ASSIGN_OR_RETURN(std::vector<uint32_t> obs,
                             simulator.Observe(truth, hmm));
    CALDERA_ASSIGN_OR_RETURN(
        MarkovianStream snippet,
        SmoothToMarkovianStream(hmm, obs, workload.schema, smoother));

    const bool relevant = type_rng.NextBool(spec.density);
    const bool match = relevant && type_rng.NextBool(spec.match_rate);
    if (relevant && !match) {
      // Keep the room's support but move the fronting hallway away so the
      // fixed-length intersection cannot fire.
      snippet.RelabelValues(
          SwapPermutation(domain, {{target_hall, tail_hall}}));
    } else if (!relevant) {
      // Move both the room and the hallway away.
      snippet.RelabelValues(SwapPermutation(
          domain, {{target_room, tail_room}, {target_hall, tail_hall}}));
    }

    if (stream.empty()) {
      stream = std::move(snippet);
    } else {
      Cpt bridge = IndependenceBridge(stream.marginal(stream.length() - 1),
                                      snippet.marginal(0));
      CALDERA_RETURN_IF_ERROR(stream.Concatenate(snippet, bridge));
    }
  }
  workload.stream = std::move(stream);
  return workload;
}

Result<RegularQuery> RoutineWorkload::EnteredRoom(uint32_t room,
                                                  size_t num_links,
                                                  bool variable) const {
  if (num_links < 2 || num_links > 8) {
    return Status::InvalidArgument("Entered-Room queries use 2..8 links");
  }
  if (layout.location(room).type == LocationType::kCorridor) {
    return Status::InvalidArgument("Entered-Room target must be a room");
  }
  // The room's fronting corridor cell.
  uint32_t front = UINT32_MAX;
  for (uint32_t n : layout.neighbors(room)) {
    if (layout.location(n).type == LocationType::kCorridor) {
      front = n;
      break;
    }
  }
  if (front == UINT32_MAX) {
    return Status::InvalidArgument("room has no corridor access");
  }
  // Walk the corridor chain away from the room to pick the approach cells
  // (deterministically toward lower ids, falling back to higher).
  std::vector<uint32_t> halls{front};
  uint32_t prev = room;
  uint32_t cur = front;
  while (halls.size() < num_links - 1) {
    uint32_t next = UINT32_MAX;
    for (uint32_t n : layout.neighbors(cur)) {
      if (n == prev || layout.location(n).type != LocationType::kCorridor) {
        continue;
      }
      if (next == UINT32_MAX || n < next) next = n;
    }
    if (next == UINT32_MAX) {
      return Status::InvalidArgument("corridor too short for " +
                                     std::to_string(num_links) + " links");
    }
    halls.push_back(next);
    prev = cur;
    cur = next;
  }
  std::reverse(halls.begin(), halls.end());  // Approach order.

  std::vector<QueryLink> links;
  for (uint32_t h : halls) {
    links.push_back(QueryLink{
        std::nullopt, Predicate::Equality(0, h, schema.label(0, h))});
  }
  Predicate room_pred = Predicate::Equality(0, room, schema.label(0, room));
  if (variable) {
    links.push_back(QueryLink{Predicate::Not(room_pred), room_pred});
  } else {
    links.push_back(QueryLink{std::nullopt, room_pred});
  }
  std::string name = "EnteredRoom(" + schema.label(0, room) + "," +
                     std::to_string(num_links) + (variable ? ",var)" : ")");
  return RegularQuery(std::move(name), std::move(links));
}

Result<RegularQuery> RoutineWorkload::CoffeeBreak() const {
  CALDERA_ASSIGN_OR_RETURN(Predicate corridor,
                           types.MakePredicate("type", "Corridor"));
  CALDERA_ASSIGN_OR_RETURN(Predicate coffee,
                           types.MakePredicate("type", "CoffeeRoom"));
  std::vector<QueryLink> links;
  links.push_back(QueryLink{std::nullopt, corridor});
  links.push_back(QueryLink{Predicate::Not(coffee), coffee});
  return RegularQuery("CoffeeBreak", std::move(links));
}

std::vector<uint32_t> RoutineWorkload::QueryRooms(size_t count) const {
  std::vector<uint32_t> rooms;
  rooms.push_back(own_office);
  for (uint32_t r : excursion_rooms) {
    if (rooms.size() < count) rooms.push_back(r);
  }
  for (uint32_t r : decoy_rooms) {
    if (rooms.size() < count) rooms.push_back(r);
  }
  return rooms;
}

Result<RoutineWorkload> MakeRoutineStream(const RoutineSpec& spec) {
  RoutineWorkload workload;
  if (spec.paper_building) {
    workload.layout = BuildingLayout::MakePaperBuilding();
  } else {
    BuildingLayout::CorridorSpec corridor;
    corridor.segments = 12;
    corridor.rooms_per_segment = 3;
    corridor.detect_prob = spec.detect_prob;
    workload.layout = BuildingLayout::MakeCorridor(corridor);
    // Give the small building a coffee room for CoffeeBreak queries.
    // (Room at segment 9.)
  }
  workload.schema = workload.layout.MakeSchema();
  workload.types = workload.layout.MakeTypeDimension();

  std::vector<uint32_t> offices =
      workload.layout.LocationsOfType(LocationType::kOffice);
  if (offices.size() < 2) {
    return Status::InvalidArgument("building has too few offices");
  }
  Rng rng(spec.seed);
  workload.own_office = offices[offices.size() / 3];

  // Candidate excursion targets: offices plus special rooms.
  std::vector<uint32_t> candidates;
  for (LocationType type :
       {LocationType::kOffice, LocationType::kCoffeeRoom,
        LocationType::kLounge, LocationType::kConferenceRoom,
        LocationType::kLab}) {
    for (uint32_t r : workload.layout.LocationsOfType(type)) {
      if (r != workload.own_office) candidates.push_back(r);
    }
  }
  std::vector<uint32_t> excursions;
  for (uint32_t i = 0; i < spec.num_excursions && !candidates.empty(); ++i) {
    size_t pick = rng.NextBelow(candidates.size());
    excursions.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + pick);
  }
  workload.excursion_rooms = excursions;
  // Decoys: rooms never visited.
  for (uint32_t r : candidates) {
    if (workload.decoy_rooms.size() >= 32) break;
    workload.decoy_rooms.push_back(r);
  }

  // Routine: office -> excursion -> office -> ...
  std::vector<PersonSimulator::Stop> stops;
  uint32_t office_dwell = 60;
  stops.push_back({workload.own_office, office_dwell});
  for (uint32_t room : excursions) {
    stops.push_back({room, spec.excursion_dwell});
    stops.push_back({workload.own_office, office_dwell});
  }

  PersonSimulator simulator(&workload.layout, spec.seed);
  CALDERA_ASSIGN_OR_RETURN(
      std::vector<uint32_t> truth,
      simulator.SimulateRoutine(workload.own_office, stops));
  // Pad or trim to the requested length (pad = keep sitting in the office).
  while (truth.size() < spec.length) truth.push_back(workload.own_office);
  if (truth.size() > spec.length) truth.resize(spec.length);

  // Person-specific model: this person disproportionately enters their own
  // office and their habitual rooms (Section 2.1).
  BuildingLayout::HmmParams params;
  params.entry_bias.emplace_back(workload.own_office, 8.0);
  for (uint32_t room : excursions) params.entry_bias.emplace_back(room, 3.0);
  Hmm hmm = workload.layout.MakeHmm(params);
  hmm.SetInitial(Distribution::Point(workload.own_office));
  CALDERA_ASSIGN_OR_RETURN(std::vector<uint32_t> obs,
                           simulator.Observe(truth, hmm));
  SmootherOptions smoother;
  smoother.truncate_eps = spec.truncate_eps;
  CALDERA_ASSIGN_OR_RETURN(
      workload.stream,
      SmoothToMarkovianStream(hmm, obs, workload.schema, smoother));
  return workload;
}

}  // namespace caldera
