#ifndef CALDERA_RFID_WORKLOAD_H_
#define CALDERA_RFID_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "markov/stream.h"
#include "query/regular_query.h"
#include "rfid/layout.h"

namespace caldera {

/// A bridging CPT mapping every source in `from`'s support to the `to`
/// distribution (i.e. an independence boundary). Used to concatenate
/// independently smoothed stream snippets (Section 4.1.1).
Cpt IndependenceBridge(const Distribution& from, const Distribution& to);

// --------------------------------------------------------------------------
// Synthetic snippet streams (Section 4.1.1): long streams built by
// concatenating ~30-second smoothed snippets in which a simulated person
// walks down a corridor, enters a room, dwells, and walks back. Room labels
// are permuted per snippet to control, with respect to the target
// Entered-Room query:
//   * data density    — fraction of snippets whose room segment carries the
//                       target room in its marginal support, and
//   * match rate      — fraction of *relevant* snippets in which the target
//                       hallway precedes the room (forming a candidate
//                       interval for the fixed-length query).
// --------------------------------------------------------------------------

struct SnippetStreamSpec {
  uint32_t corridor_segments = 10;
  /// Number of snippets to concatenate (~30 timesteps each).
  uint32_t num_snippets = 100;
  /// Fraction of snippets relevant to the target query.
  double density = 1.0;
  /// Fraction of relevant snippets forming a candidate match.
  double match_rate = 1.0;
  double detect_prob = 0.85;
  double truncate_eps = 1e-3;
  uint64_t seed = 1;
};

struct SnippetWorkload {
  BuildingLayout layout;
  StreamSchema schema;
  MarkovianStream stream;
  uint32_t target_room;  ///< Value id of the queried room.
  uint32_t target_hall;  ///< Value id of the hallway fronting it.

  /// Q(TargetHall, TargetRoom) — the paper's 2-link Entered-Room query.
  RegularQuery EnteredRoomFixed() const;
  /// Q(TargetHall, (!TargetRoom*, TargetRoom)) — its variable-length form.
  RegularQuery EnteredRoomVariable() const;
};

Result<SnippetWorkload> MakeSnippetStream(const SnippetStreamSpec& spec);

// --------------------------------------------------------------------------
// Routine streams (Section 4.1.2): analogs of the paper's real volunteer
// traces. A person spends most of the day in their own office (data density
// near 1 for queries about it) with a few excursions to other rooms (density
// near 0 for those) — reproducing the bimodal density the paper reports.
// --------------------------------------------------------------------------

struct RoutineSpec {
  /// Stream length in timesteps (1 step ~ 1 second; the paper's real
  /// streams are 7.6-28 minutes).
  uint64_t length = 1680;
  /// Dwell per excursion (timesteps).
  uint32_t excursion_dwell = 30;
  /// Number of excursions to other rooms.
  uint32_t num_excursions = 6;
  double detect_prob = 0.8;
  double truncate_eps = 1e-3;
  uint64_t seed = 7;
  /// Use the full 352-location paper building; false = a small corridor
  /// building (faster for tests).
  bool paper_building = true;
};

struct RoutineWorkload {
  BuildingLayout layout;
  StreamSchema schema;
  DimensionTable types;
  MarkovianStream stream;
  uint32_t own_office;                  ///< Office where most time is spent.
  std::vector<uint32_t> excursion_rooms;///< Rooms actually visited.
  std::vector<uint32_t> decoy_rooms;    ///< Rooms never visited.

  /// An Entered-Room query with `num_links` links: the room preceded by
  /// `num_links - 1` specific hallway segments on its approach path
  /// (Section 4.2.4). `variable` adds a Kleene link before the room.
  Result<RegularQuery> EnteredRoom(uint32_t room, size_t num_links = 2,
                                   bool variable = false) const;

  /// A Coffee-Room query via the LocationType dimension table:
  /// Q(Hallway-of-room, (!CoffeeRoom*, CoffeeRoom)).
  Result<RegularQuery> CoffeeBreak() const;

  /// The mixed room set used for the 22-query experiment of Figure 8(b).
  std::vector<uint32_t> QueryRooms(size_t count = 22) const;
};

Result<RoutineWorkload> MakeRoutineStream(const RoutineSpec& spec);

}  // namespace caldera

#endif  // CALDERA_RFID_WORKLOAD_H_
