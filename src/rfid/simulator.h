#ifndef CALDERA_RFID_SIMULATOR_H_
#define CALDERA_RFID_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rfid/layout.h"

namespace caldera {

/// Simulates a person carrying an RFID tag through a building: scripted
/// routines (visit these rooms, dwell so long) or random wandering, plus
/// the noisy antenna observations the deployment would log.
class PersonSimulator {
 public:
  PersonSimulator(const BuildingLayout* layout, uint64_t seed)
      : layout_(layout), rng_(seed) {}

  /// One stop of a routine: walk to `location`, stay `dwell` timesteps.
  struct Stop {
    uint32_t location;
    uint32_t dwell;
  };

  /// Ground-truth trajectory: shortest paths between stops, with small
  /// random pauses while walking (one timestep per location cell).
  Result<std::vector<uint32_t>> SimulateRoutine(
      uint32_t start, const std::vector<Stop>& stops,
      double pause_prob = 0.2);

  /// Ground-truth random walk of `steps` timesteps.
  std::vector<uint32_t> RandomWalk(uint32_t start, uint64_t steps,
                                   double stay_prob = 0.5);

  /// Samples the noisy observation sequence for a trajectory using the
  /// layout's HMM emission model.
  Result<std::vector<uint32_t>> Observe(const std::vector<uint32_t>& truth,
                                        const Hmm& hmm);

  Rng* rng() { return &rng_; }

 private:
  const BuildingLayout* layout_;
  Rng rng_;
};

}  // namespace caldera

#endif  // CALDERA_RFID_SIMULATOR_H_
