#include "rfid/layout.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace caldera {

const char* LocationTypeName(LocationType type) {
  switch (type) {
    case LocationType::kCorridor:
      return "Corridor";
    case LocationType::kOffice:
      return "Office";
    case LocationType::kCoffeeRoom:
      return "CoffeeRoom";
    case LocationType::kLounge:
      return "Lounge";
    case LocationType::kLab:
      return "Lab";
    case LocationType::kConferenceRoom:
      return "ConferenceRoom";
  }
  return "Unknown";
}

uint32_t BuildingLayout::AddLocation(std::string name, LocationType type) {
  locations_.push_back({std::move(name), type});
  adjacency_.emplace_back();
  return static_cast<uint32_t>(locations_.size() - 1);
}

void BuildingLayout::AddEdge(uint32_t a, uint32_t b) {
  CALDERA_CHECK(a < locations_.size() && b < locations_.size() && a != b);
  if (std::find(adjacency_[a].begin(), adjacency_[a].end(), b) ==
      adjacency_[a].end()) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
}

uint32_t BuildingLayout::AddAntenna(std::string name, uint32_t location,
                                    double detect_prob) {
  CALDERA_CHECK(location < locations_.size());
  antennas_.push_back({std::move(name), location, detect_prob});
  return static_cast<uint32_t>(antennas_.size() - 1);
}

Result<uint32_t> BuildingLayout::LocationByName(
    const std::string& name) const {
  for (uint32_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].name == name) return i;
  }
  return Status::NotFound("no location named '" + name + "'");
}

std::vector<uint32_t> BuildingLayout::LocationsOfType(
    LocationType type) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].type == type) out.push_back(i);
  }
  return out;
}

Result<std::vector<uint32_t>> BuildingLayout::ShortestPath(
    uint32_t from, uint32_t to) const {
  if (from >= locations_.size() || to >= locations_.size()) {
    return Status::InvalidArgument("location id out of range");
  }
  std::vector<int64_t> parent(locations_.size(), -1);
  std::deque<uint32_t> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    uint32_t cur = queue.front();
    queue.pop_front();
    if (cur == to) break;
    for (uint32_t next : adjacency_[cur]) {
      if (parent[next] < 0) {
        parent[next] = cur;
        queue.push_back(next);
      }
    }
  }
  if (parent[to] < 0) {
    return Status::NotFound("no path between locations");
  }
  std::vector<uint32_t> path;
  for (uint32_t cur = to;; cur = static_cast<uint32_t>(parent[cur])) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

StreamSchema BuildingLayout::MakeSchema() const {
  std::vector<std::string> labels;
  labels.reserve(locations_.size());
  for (const Location& l : locations_) labels.push_back(l.name);
  return SingleAttributeSchema("loc", std::move(labels));
}

DimensionTable BuildingLayout::MakeTypeDimension() const {
  DimensionTable table("LocationType", /*key_attribute=*/0);
  std::vector<std::string> types;
  types.reserve(locations_.size());
  for (const Location& l : locations_) {
    types.push_back(LocationTypeName(l.type));
  }
  table.AddColumn("type", std::move(types));
  return table;
}

Hmm BuildingLayout::MakeHmm(const HmmParams& params) const {
  const uint32_t n = num_locations();
  // Symbol 0 = silence; symbol i+1 = antenna i.
  Hmm hmm(n, static_cast<uint32_t>(antennas_.size()) + 1);

  // Uniform initial distribution.
  {
    std::vector<Distribution::Entry> init;
    init.reserve(n);
    for (uint32_t i = 0; i < n; ++i) init.push_back({i, 1.0 / n});
    hmm.SetInitial(Distribution::FromPairs(std::move(init)));
  }

  // Transitions: lazy random walk over the adjacency graph, with sticky
  // rooms and person-specific entry biases.
  auto bias_of = [&params](uint32_t location) {
    for (const auto& [loc, weight] : params.entry_bias) {
      if (loc == location) return weight;
    }
    return 1.0;
  };
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<Cpt::RowEntry> row;
    if (adjacency_[i].empty()) {
      row.push_back({i, 1.0});
    } else {
      double stay = locations_[i].type == LocationType::kCorridor
                        ? params.stay_prob
                        : params.room_stay_prob;
      double move_mass = 1.0 - stay;
      double total_weight = 0;
      for (uint32_t next : adjacency_[i]) total_weight += bias_of(next);
      row.push_back({i, stay});
      for (uint32_t next : adjacency_[i]) {
        row.push_back({next, move_mass * bias_of(next) / total_weight});
      }
    }
    hmm.SetTransitionRow(i, std::move(row));
  }

  // Emissions: an antenna reads a tag at its own location with
  // detect_prob, and at adjacent locations with false_read_prob.
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<Cpt::RowEntry> row;
    double total = 0;
    for (uint32_t a = 0; a < antennas_.size(); ++a) {
      const Antenna& antenna = antennas_[a];
      double p = 0;
      if (antenna.location == i) {
        p = antenna.detect_prob;
      } else if (std::find(adjacency_[i].begin(), adjacency_[i].end(),
                           antenna.location) != adjacency_[i].end()) {
        p = params.false_read_prob;
      }
      if (p > 0) {
        row.push_back({a + 1, p});
        total += p;
      }
    }
    if (total > 0.95) {
      // Keep at least 5% silence so every state can explain a missed read.
      for (Cpt::RowEntry& e : row) e.prob *= 0.95 / total;
      total = 0.95;
    }
    row.push_back({0, 1.0 - total});
    hmm.SetEmissionRow(i, std::move(row));
  }
  return hmm;
}

BuildingLayout BuildingLayout::MakeCorridor(const CorridorSpec& spec) {
  BuildingLayout layout;
  std::vector<uint32_t> corridor;
  for (uint32_t i = 0; i < spec.segments; ++i) {
    corridor.push_back(
        layout.AddLocation("H" + std::to_string(i), LocationType::kCorridor));
    if (i > 0) layout.AddEdge(corridor[i - 1], corridor[i]);
    layout.AddAntenna("A" + std::to_string(i), corridor[i],
                      spec.detect_prob);
  }
  for (uint32_t i = 0; i < spec.segments; ++i) {
    for (uint32_t j = 0; j < spec.rooms_per_segment; ++j) {
      uint32_t room = layout.AddLocation(
          "Room" + std::to_string(i) + "_" + std::to_string(j),
          LocationType::kOffice);
      layout.AddEdge(corridor[i], room);
    }
  }
  return layout;
}

BuildingLayout BuildingLayout::MakePaperBuilding() {
  BuildingLayout layout;
  // Two floors; per floor: 26 corridor segments in a chain, 150 rooms
  // spread across them (2 floors x 176 = 352 locations), 19 antennas per
  // floor (38 total), all in corridors.
  std::vector<uint32_t> stairs;
  for (uint32_t floor = 0; floor < 2; ++floor) {
    std::string prefix = "F" + std::to_string(floor + 1) + "_";
    std::vector<uint32_t> corridor;
    for (uint32_t i = 0; i < 26; ++i) {
      corridor.push_back(layout.AddLocation(prefix + "H" + std::to_string(i),
                                            LocationType::kCorridor));
      if (i > 0) layout.AddEdge(corridor[i - 1], corridor[i]);
    }
    // 19 antennas spaced along the 26 segments.
    for (uint32_t a = 0; a < 19; ++a) {
      uint32_t seg = (a * 26) / 19;
      layout.AddAntenna(prefix + "A" + std::to_string(a), corridor[seg],
                        0.8);
    }
    // 150 rooms: mostly offices, with a few special rooms.
    for (uint32_t r = 0; r < 150; ++r) {
      LocationType type = LocationType::kOffice;
      std::string name;
      if (r % 50 == 10) {
        type = LocationType::kCoffeeRoom;
        name = prefix + "Coffee" + std::to_string(r);
      } else if (r % 50 == 25) {
        type = LocationType::kLounge;
        name = prefix + "Lounge" + std::to_string(r);
      } else if (r % 50 == 40) {
        type = LocationType::kConferenceRoom;
        name = prefix + "Conf" + std::to_string(r);
      } else if (r % 50 == 45) {
        type = LocationType::kLab;
        name = prefix + "Lab" + std::to_string(r);
      } else {
        name = prefix + "Office" + std::to_string(r);
      }
      uint32_t room = layout.AddLocation(name, type);
      layout.AddEdge(corridor[(r * 26) / 150], room);
    }
    stairs.push_back(corridor[0]);
  }
  layout.AddEdge(stairs[0], stairs[1]);
  return layout;
}

}  // namespace caldera
