#ifndef CALDERA_RFID_LAYOUT_H_
#define CALDERA_RFID_LAYOUT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hmm/hmm.h"
#include "markov/schema.h"
#include "query/predicate.h"

namespace caldera {

/// Coarse location categories, mirroring the paper's dimension table
/// LocationType(locationID, locationType).
enum class LocationType : uint8_t {
  kCorridor = 0,
  kOffice,
  kCoffeeRoom,
  kLounge,
  kLab,
  kConferenceRoom,
};

const char* LocationTypeName(LocationType type);

/// The physical substrate of the RFID domain: discretized locations,
/// walkability edges, and corridor-mounted antennas. Mirrors the paper's
/// deployment (Section 4.1.2): antennas live only in corridors, so rooms
/// are never observed directly and smoothing must infer room presence.
class BuildingLayout {
 public:
  struct Location {
    std::string name;
    LocationType type;
  };
  struct Antenna {
    std::string name;
    uint32_t location;
    double detect_prob;
  };

  uint32_t AddLocation(std::string name, LocationType type);
  void AddEdge(uint32_t a, uint32_t b);
  uint32_t AddAntenna(std::string name, uint32_t location,
                      double detect_prob);

  uint32_t num_locations() const {
    return static_cast<uint32_t>(locations_.size());
  }
  const Location& location(uint32_t id) const { return locations_[id]; }
  const std::vector<uint32_t>& neighbors(uint32_t id) const {
    return adjacency_[id];
  }
  const std::vector<Antenna>& antennas() const { return antennas_; }

  Result<uint32_t> LocationByName(const std::string& name) const;
  std::vector<uint32_t> LocationsOfType(LocationType type) const;

  /// BFS shortest path (inclusive of both endpoints).
  Result<std::vector<uint32_t>> ShortestPath(uint32_t from, uint32_t to) const;

  /// Single-attribute schema ("loc") whose labels are the location names.
  StreamSchema MakeSchema() const;

  /// Dimension table LocationType with column "type".
  DimensionTable MakeTypeDimension() const;

  /// Parameters of the location HMM derived from the layout.
  struct HmmParams {
    /// Probability of staying put each second while in a corridor.
    double stay_prob = 0.6;
    /// Probability of staying put each second while inside a room (people
    /// dwell in rooms far longer than in corridors).
    double room_stay_prob = 0.9;
    /// Probability that an antenna adjacent to (but not at) the tag's
    /// location produces a spurious read.
    double false_read_prob = 0.01;
    /// Person-specific statistical likelihoods (Section 2.1: "it is more
    /// likely that Bob will enter his own office"): multiplicative weights
    /// on transitions INTO the given locations.
    std::vector<std::pair<uint32_t, double>> entry_bias;
  };

  /// Builds the location-tracking HMM: states = locations, transitions =
  /// lazy random walk on the adjacency graph, emissions = antenna
  /// detections (symbol 0 is silence; symbol i+1 is antenna i).
  Hmm MakeHmm(const HmmParams& params) const;

  // Factories. -------------------------------------------------------------

  /// A single corridor of `segments` chained corridor cells, each with
  /// `rooms_per_segment` attached rooms and one antenna. Room j of segment
  /// i is named "Room<i>_<j>"; corridors are "H<i>".
  struct CorridorSpec {
    uint32_t segments = 10;
    uint32_t rooms_per_segment = 1;
    double detect_prob = 0.85;
  };
  static BuildingLayout MakeCorridor(const CorridorSpec& spec);

  /// A two-floor building patterned on the paper's deployment: ~352
  /// locations across two floors, 38 corridor antennas, rooms typed as
  /// offices with a few coffee rooms, lounges, labs and conference rooms.
  static BuildingLayout MakePaperBuilding();

 private:
  std::vector<Location> locations_;
  std::vector<std::vector<uint32_t>> adjacency_;
  std::vector<Antenna> antennas_;
};

}  // namespace caldera

#endif  // CALDERA_RFID_LAYOUT_H_
