#include "caldera/archive.h"

#include <filesystem>

#include "index/btc_index.h"
#include "index/btp_index.h"

namespace caldera {

namespace {
std::string BtcPath(const std::string& dir, size_t attr) {
  return dir + "/btc.attr" + std::to_string(attr) + ".bt";
}
std::string BtpPath(const std::string& dir, size_t attr) {
  return dir + "/btp.attr" + std::to_string(attr) + ".bt";
}
std::string McDir(const std::string& dir) { return dir + "/mc"; }
std::string JoinPrefix(const std::string& dir, const std::string& column) {
  return dir + "/join." + column;
}
}  // namespace

Result<std::unique_ptr<ArchivedStream>> ArchivedStream::Open(
    const std::string& dir, size_t pool_pages) {
  auto archived = std::unique_ptr<ArchivedStream>(new ArchivedStream(dir));
  CALDERA_ASSIGN_OR_RETURN(archived->stream_,
                           StoredStream::Open(dir, pool_pages));
  const size_t num_attrs = archived->stream_->schema().num_attributes();
  archived->btc_.resize(num_attrs);
  archived->btp_.resize(num_attrs);
  for (size_t attr = 0; attr < num_attrs; ++attr) {
    if (FileExists(BtcPath(dir, attr))) {
      CALDERA_ASSIGN_OR_RETURN(archived->btc_[attr],
                               BTree::Open(BtcPath(dir, attr), pool_pages));
    }
    if (FileExists(BtpPath(dir, attr))) {
      CALDERA_ASSIGN_OR_RETURN(archived->btp_[attr],
                               BTree::Open(BtpPath(dir, attr), pool_pages));
    }
  }
  if (FileExists(McDir(dir) + "/mc.meta")) {
    StoredStream* raw = archived->stream_.get();
    CALDERA_ASSIGN_OR_RETURN(
        archived->mc_,
        McIndex::Open(
            McDir(dir),
            [raw](uint64_t t, Cpt* out) { return raw->ReadTransition(t, out); },
            pool_pages));
  }
  // Join indexes: join.<column>.meta files.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("join.", 0) == 0 &&
        name.size() > 10 &&
        name.substr(name.size() - 5) == ".meta") {
      std::string column = name.substr(5, name.size() - 10);
      CALDERA_ASSIGN_OR_RETURN(
          archived->join_indexes_[column],
          JoinIndex::Open(JoinPrefix(dir, column), pool_pages));
    }
  }
  return archived;
}

JoinIndex* ArchivedStream::join_index(const std::string& column) {
  auto it = join_indexes_.find(column);
  return it == join_indexes_.end() ? nullptr : it->second.get();
}

BufferPoolStats ArchivedStream::IndexIoStats() const {
  BufferPoolStats total;
  for (const auto& tree : btc_) {
    if (tree != nullptr) total += tree->stats();
  }
  for (const auto& tree : btp_) {
    if (tree != nullptr) total += tree->stats();
  }
  if (mc_ != nullptr) total += mc_->IoStats();
  for (const auto& [column, index] : join_indexes_) total += index->stats();
  return total;
}

void ArchivedStream::ResetStats() {
  stream_->ResetStats();
  for (const auto& tree : btc_) {
    if (tree != nullptr) tree->ResetStats();
  }
  for (const auto& tree : btp_) {
    if (tree != nullptr) tree->ResetStats();
  }
  if (mc_ != nullptr) mc_->ResetStats();
  for (const auto& [column, index] : join_indexes_) index->ResetStats();
}

Status StreamArchive::CreateStream(const std::string& name,
                                   const MarkovianStream& stream,
                                   DiskLayout layout, uint32_t page_size) {
  if (HasStream(name)) {
    return Status::AlreadyExists("stream '" + name + "' already archived");
  }
  CALDERA_RETURN_IF_ERROR(Init());
  return WriteStream(StreamDir(name), stream, layout, page_size);
}

Status StreamArchive::BuildBtc(const std::string& name, size_t attr,
                               uint32_t page_size) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  return BuildBtcIndexFromStored(stored.get(), attr,
                                 BtcPath(StreamDir(name), attr), page_size)
      .status();
}

Status StreamArchive::BuildBtp(const std::string& name, size_t attr,
                               uint32_t page_size) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  return BuildBtpIndexFromStored(stored.get(), attr,
                                 BtpPath(StreamDir(name), attr), page_size)
      .status();
}

Status StreamArchive::BuildMc(const std::string& name,
                              const McIndexOptions& options) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  CALDERA_ASSIGN_OR_RETURN(MarkovianStream stream, LoadStream(stored.get()));
  return McIndex::Build(stream, McDir(StreamDir(name)), options);
}

Status StreamArchive::BuildJoinIndex(const std::string& name,
                                     const DimensionTable& table,
                                     const std::string& column,
                                     uint32_t page_size) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  CALDERA_ASSIGN_OR_RETURN(MarkovianStream stream, LoadStream(stored.get()));
  return JoinIndex::Build(stream, table, column,
                          JoinPrefix(StreamDir(name), column), page_size)
      .status();
}

Result<std::unique_ptr<ArchivedStream>> StreamArchive::OpenStream(
    const std::string& name, size_t pool_pages) {
  if (!HasStream(name)) {
    return Status::NotFound("no stream named '" + name + "' in archive");
  }
  return ArchivedStream::Open(StreamDir(name), pool_pages);
}

Result<std::vector<std::string>> StreamArchive::ListStreams() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_directory() && FileExists(entry.path() / "meta.bin")) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) return Status::IoError("cannot list archive: " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

bool StreamArchive::HasStream(const std::string& name) const {
  return FileExists(StreamDir(name) + "/meta.bin");
}

}  // namespace caldera
