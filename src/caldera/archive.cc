#include "caldera/archive.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/encoding.h"
#include "common/logging.h"
#include "index/btc_index.h"
#include "index/btp_index.h"

namespace caldera {

namespace {
std::string BtcPath(const std::string& dir, size_t attr) {
  return dir + "/btc.attr" + std::to_string(attr) + ".bt";
}
std::string BtpPath(const std::string& dir, size_t attr) {
  return dir + "/btp.attr" + std::to_string(attr) + ".bt";
}
std::string McDir(const std::string& dir) { return dir + "/mc"; }
std::string JoinPrefix(const std::string& dir, const std::string& column) {
  return dir + "/join." + column;
}
}  // namespace

Result<std::unique_ptr<ArchivedStream>> ArchivedStream::Open(
    const std::string& dir, const OpenStreamOptions& options) {
  const size_t pool_pages = options.pool_pages;
  auto archived = std::unique_ptr<ArchivedStream>(new ArchivedStream(dir));
  // The stream data files are non-negotiable: without them there is nothing
  // to fall back to, so their errors always propagate.
  CALDERA_ASSIGN_OR_RETURN(archived->stream_,
                           StoredStream::Open(dir, pool_pages));

  // With tolerate_corrupt_indexes, an index that fails to open is recorded
  // and skipped — the handle behaves as if the index was never built, and
  // the planner degrades to methods that do not need it.
  auto admit = [&](const std::string& index_name,
                   const Status& error) -> Status {
    if (!options.tolerate_corrupt_indexes) return error;
    CALDERA_LOG_WARNING << "skipping index " << index_name << " of " << dir
                        << ": " << error.ToString();
    archived->skipped_indexes_.push_back({index_name, error});
    return Status::Ok();
  };

  const size_t num_attrs = archived->stream_->schema().num_attributes();
  archived->btc_.resize(num_attrs);
  archived->btp_.resize(num_attrs);
  for (size_t attr = 0; attr < num_attrs; ++attr) {
    if (FileExists(BtcPath(dir, attr))) {
      Result<std::unique_ptr<BTree>> tree =
          BTree::Open(BtcPath(dir, attr), pool_pages);
      if (tree.ok()) {
        archived->btc_[attr] = std::move(*tree);
      } else {
        CALDERA_RETURN_IF_ERROR(
            admit("btc.attr" + std::to_string(attr) + ".bt", tree.status()));
      }
    }
    if (FileExists(BtpPath(dir, attr))) {
      Result<std::unique_ptr<BTree>> tree =
          BTree::Open(BtpPath(dir, attr), pool_pages);
      if (tree.ok()) {
        archived->btp_[attr] = std::move(*tree);
      } else {
        CALDERA_RETURN_IF_ERROR(
            admit("btp.attr" + std::to_string(attr) + ".bt", tree.status()));
      }
    }
  }
  if (FileExists(McDir(dir) + "/mc.meta")) {
    StoredStream* raw = archived->stream_.get();
    Result<std::unique_ptr<McIndex>> mc = McIndex::Open(
        McDir(dir),
        [raw](uint64_t t, Cpt* out) { return raw->ReadTransition(t, out); },
        pool_pages);
    if (mc.ok()) {
      archived->mc_ = std::move(*mc);
      // Private per-handle cache so span memoization works even outside
      // the Caldera facade; the facade rebinds its shared cache on open.
      archived->AttachSpanCache(
          std::make_shared<SpanCptCache>(kDefaultSpanCacheBytes),
          /*epoch=*/0);
    } else {
      CALDERA_RETURN_IF_ERROR(admit("mc", mc.status()));
    }
  }
  // Join indexes: join.<column>.meta files.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("join.", 0) == 0 &&
        name.size() > 10 &&
        name.substr(name.size() - 5) == ".meta") {
      std::string column = name.substr(5, name.size() - 10);
      Result<std::unique_ptr<JoinIndex>> join =
          JoinIndex::Open(JoinPrefix(dir, column), pool_pages);
      if (join.ok()) {
        archived->join_indexes_[column] = std::move(*join);
      } else {
        CALDERA_RETURN_IF_ERROR(admit(name, join.status()));
      }
    }
  }
  return archived;
}

void ArchivedStream::AttachSpanCache(std::shared_ptr<SpanCptCache> cache,
                                     uint64_t epoch) {
  if (mc_ == nullptr || cache == nullptr) return;
  span_cache_ = std::move(cache);
  SpanCacheBinding binding;
  binding.cache = span_cache_;
  binding.stream_id = FingerprintString(dir_);
  binding.epoch = epoch;
  binding.condition_fp = 0;  // The archived MC index is unconditioned.
  mc_->AttachSpanCache(std::move(binding));
}

JoinIndex* ArchivedStream::join_index(const std::string& column) {
  auto it = join_indexes_.find(column);
  return it == join_indexes_.end() ? nullptr : it->second.get();
}

BufferPoolStats ArchivedStream::IndexIoStats() const {
  BufferPoolStats total;
  for (const auto& tree : btc_) {
    if (tree != nullptr) total += tree->stats();
  }
  for (const auto& tree : btp_) {
    if (tree != nullptr) total += tree->stats();
  }
  if (mc_ != nullptr) total += mc_->IoStats();
  for (const auto& [column, index] : join_indexes_) total += index->stats();
  return total;
}

void ArchivedStream::ResetStats() {
  stream_->ResetStats();
  for (const auto& tree : btc_) {
    if (tree != nullptr) tree->ResetStats();
  }
  for (const auto& tree : btp_) {
    if (tree != nullptr) tree->ResetStats();
  }
  if (mc_ != nullptr) mc_->ResetStats();
  for (const auto& [column, index] : join_indexes_) index->ResetStats();
}

Status StreamArchive::CreateStream(const std::string& name,
                                   const MarkovianStream& stream,
                                   DiskLayout layout, uint32_t page_size) {
  if (HasStream(name)) {
    return Status::AlreadyExists("stream '" + name + "' already archived");
  }
  CALDERA_RETURN_IF_ERROR(Init());
  return WriteStream(StreamDir(name), stream, layout, page_size);
}

Status StreamArchive::BuildBtc(const std::string& name, size_t attr,
                               uint32_t page_size) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  return BuildBtcIndexFromStored(stored.get(), attr,
                                 BtcPath(StreamDir(name), attr), page_size)
      .status();
}

Status StreamArchive::BuildBtp(const std::string& name, size_t attr,
                               uint32_t page_size) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  return BuildBtpIndexFromStored(stored.get(), attr,
                                 BtpPath(StreamDir(name), attr), page_size)
      .status();
}

Status StreamArchive::BuildMc(const std::string& name,
                              const McIndexOptions& options) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  CALDERA_ASSIGN_OR_RETURN(MarkovianStream stream, LoadStream(stored.get()));
  return McIndex::Build(stream, McDir(StreamDir(name)), options);
}

Status StreamArchive::BuildJoinIndex(const std::string& name,
                                     const DimensionTable& table,
                                     const std::string& column,
                                     uint32_t page_size) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<StoredStream> stored,
                           StoredStream::Open(StreamDir(name)));
  CALDERA_ASSIGN_OR_RETURN(MarkovianStream stream, LoadStream(stored.get()));
  return JoinIndex::Build(stream, table, column,
                          JoinPrefix(StreamDir(name), column), page_size)
      .status();
}

Result<std::unique_ptr<ArchivedStream>> StreamArchive::OpenStream(
    const std::string& name, size_t pool_pages) {
  return OpenStream(name, OpenStreamOptions{.pool_pages = pool_pages});
}

Result<std::unique_ptr<ArchivedStream>> StreamArchive::OpenStream(
    const std::string& name, const OpenStreamOptions& options) {
  if (!HasStream(name)) {
    return Status::NotFound("no stream named '" + name + "' in archive");
  }
  return ArchivedStream::Open(StreamDir(name), options);
}

Status StreamArchive::RebuildIndexes(const std::string& name) {
  if (!HasStream(name)) {
    return Status::NotFound("no stream named '" + name + "' in archive");
  }
  const std::string dir = StreamDir(name);

  // Discover what was built from the file names alone — the files
  // themselves may be arbitrarily damaged.
  std::vector<size_t> btc_attrs;
  std::vector<size_t> btp_attrs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::string file = entry.path().filename().string();
    size_t attr = 0;
    if (std::sscanf(file.c_str(), "btc.attr%zu.bt", &attr) == 1) {
      btc_attrs.push_back(attr);
    } else if (std::sscanf(file.c_str(), "btp.attr%zu.bt", &attr) == 1) {
      btp_attrs.push_back(attr);
    }
  }
  if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());

  // The MC index's build parameters live in mc/mc.meta; recover the full
  // option set when the metadata is still readable, otherwise rebuild with
  // defaults.
  const bool had_mc = FileExists(McDir(dir) + "/mc.meta");
  McIndexOptions mc_options;
  if (had_mc) {
    Result<McIndexOptions> recovered = McIndex::ReadBuildOptions(McDir(dir));
    if (recovered.ok()) mc_options = *recovered;
  }

  for (size_t attr : btc_attrs) {
    CALDERA_RETURN_IF_ERROR(RemoveFileIfExists(BtcPath(dir, attr)));
    CALDERA_RETURN_IF_ERROR(BuildBtc(name, attr));
  }
  for (size_t attr : btp_attrs) {
    CALDERA_RETURN_IF_ERROR(RemoveFileIfExists(BtpPath(dir, attr)));
    CALDERA_RETURN_IF_ERROR(BuildBtp(name, attr));
  }
  if (had_mc) {
    std::filesystem::remove_all(McDir(dir), ec);
    if (ec) {
      return Status::IoError("cannot remove " + McDir(dir) + ": " +
                             ec.message());
    }
    CALDERA_RETURN_IF_ERROR(BuildMc(name, mc_options));
  }
  return Status::Ok();
}

Result<std::vector<std::string>> StreamArchive::ListStreams() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_directory() && FileExists(entry.path() / "meta.bin")) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) return Status::IoError("cannot list archive: " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

bool StreamArchive::HasStream(const std::string& name) const {
  return FileExists(StreamDir(name) + "/meta.bin");
}

}  // namespace caldera
