#include "caldera/topk_method.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "index/btp_index.h"
#include "reg/reg_operator.h"

namespace caldera {

namespace {

constexpr size_t kUnbounded = SIZE_MAX;

/// The result set of the Threshold-Algorithm walk ("bestMatches" of
/// Algorithm 3). Two modes share it:
///   top-k:     k bounded, threshold 0  -> keep the k most probable.
///   threshold: k unbounded, tau > 0    -> keep everything above tau.
class BestMatches {
 public:
  BestMatches(size_t k, double threshold) : k_(k), threshold_(threshold) {}

  /// The probability an unseen candidate must beat to matter. Zero means
  /// "cannot stop yet" (top-k not yet full).
  double Floor() const {
    double kth = (k_ != kUnbounded && matches_.size() >= k_)
                     ? matches_.back().prob
                     : 0.0;
    return std::max(threshold_, kth);
  }

  /// True once the termination condition may fire against Floor().
  bool CanStop(double unseen_bound) const {
    double floor = Floor();
    return floor > 0.0 && unseen_bound <= floor;
  }

  void Evaluate(uint64_t time, double prob) {
    if (prob <= threshold_ || prob <= 0.0) return;
    TimestepProbability entry{time, prob};
    auto pos = std::lower_bound(
        matches_.begin(), matches_.end(), entry,
        [](const TimestepProbability& a, const TimestepProbability& b) {
          if (a.prob != b.prob) return a.prob > b.prob;
          return a.time < b.time;
        });
    matches_.insert(pos, entry);
    if (k_ != kUnbounded && matches_.size() > k_) matches_.pop_back();
  }

  QuerySignal Take() { return std::move(matches_); }

 private:
  size_t k_;
  double threshold_;
  QuerySignal matches_;  // Sorted by prob desc.
};

// Shared Threshold-Algorithm walk (Algorithm 3 and its threshold variant).
Result<QueryResult> RunTaWalk(ArchivedStream* archived,
                              const RegularQuery& query, size_t k,
                              double threshold) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  if (!query.fixed_length()) {
    return Status::FailedPrecondition(
        "the top-k/threshold B+Tree access method handles fixed-length "
        "queries only");
  }
  StoredStream* stream = archived->stream();
  const uint64_t n = query.num_links();
  const StreamSchema& schema = archived->schema();

  auto start_clock = std::chrono::steady_clock::now();
  archived->ResetStats();

  // One BT_P cursor per link. Every link must be indexable: the TA needs
  // sorted access to every link's marginals.
  std::vector<TopProbCursor> cursors;
  for (size_t i = 0; i < n; ++i) {
    const Predicate& primary = query.link(i).primary;
    if (!primary.indexable()) {
      return Status::FailedPrecondition(
          "top-k method requires every link predicate to be indexable");
    }
    if (primary.kind() == Predicate::Kind::kRange) {
      return Status::FailedPrecondition(
          "top-k method does not support range predicates (Section 3.4.1)");
    }
    BTree* tree = archived->btp(primary.attribute());
    if (tree == nullptr) {
      return Status::FailedPrecondition(
          "no BT_P index on attribute " +
          std::to_string(primary.attribute()));
    }
    CALDERA_ASSIGN_OR_RETURN(
        TopProbCursor cursor,
        TopProbCursor::Create(tree,
                              primary.MatchedAttributeValues(schema)));
    cursors.push_back(std::move(cursor));
  }

  QueryResult result;
  result.method = AccessMethodKind::kTopK;
  BestMatches best(k, threshold);
  std::unordered_set<uint64_t> evaluated;
  RegOperator reg(query, schema);
  uint64_t reg_updates = 0;
  double kernel_seconds = 0.0;

  // Predicate marginal probe (line 9 of Algorithm 3) against the stream.
  Distribution marginal;
  auto predicate_prob = [&](size_t link, uint64_t t) -> Result<double> {
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
    const Predicate& p = query.link(link).primary;
    return marginal.MassWhere(
        [&](ValueId state) { return p.Matches(schema, state); });
  };

  for (;;) {
    // Termination (lines 5-6): no unseen interval can beat the floor once
    // the min over links of the per-link upper bound drops to it. Exhausted
    // cursors bound their link by 0.
    double unseen_bound = 1.0;
    size_t best_cursor = SIZE_MAX;
    double best_head = -1.0;
    for (size_t i = 0; i < n; ++i) {
      double bound = cursors[i].valid() ? cursors[i].UpperBound() : 0.0;
      unseen_bound = std::min(unseen_bound, bound);
      double head = cursors[i].valid() ? cursors[i].prob() : -1.0;
      if (head > best_head) {
        best_head = head;
        best_cursor = i;
      }
    }
    if (best_cursor == SIZE_MAX) break;  // All cursors exhausted.
    if (best.CanStop(unseen_bound)) break;

    // Sorted access: pop the globally most probable remaining entry.
    uint64_t entry_time = cursors[best_cursor].time();
    CALDERA_RETURN_IF_ERROR(cursors[best_cursor].Next());

    // The candidate interval places this link at its offset.
    if (entry_time < best_cursor) continue;
    uint64_t s = entry_time - best_cursor;
    if (s + n > stream->length()) continue;
    if (!evaluated.insert(s).second) continue;

    // Line 9: prune when any link's marginal is zero at its offset, or
    // (since marginals bound the match) at or below the current floor.
    double floor = best.Floor();
    bool prune = false;
    for (size_t i = 0; i < n && !prune; ++i) {
      CALDERA_ASSIGN_OR_RETURN(double p, predicate_prob(i, s + i));
      if (p <= 0.0 || p <= floor) prune = true;
    }
    if (prune) {
      ++result.stats.pruned_candidates;
      continue;
    }

    // Lines 10-12: run Reg over the interval; its probability at the final
    // timestep is the match probability of this candidate.
    reg.Reset();
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(s, &marginal));
    double p = reg.Initialize(marginal);
    Cpt transition;
    for (uint64_t t = s + 1; t < s + n; ++t) {
      CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
      p = reg.Update(transition);
    }
    reg_updates += reg.num_updates();
    kernel_seconds += reg.kernel_seconds();
    ++result.stats.intervals;
    best.Evaluate(s + n - 1, p);
  }

  result.signal = best.Take();
  result.stats.reg_updates = reg_updates;
  result.stats.relevant_timesteps = evaluated.size();
  result.stats.kernel_seconds = kernel_seconds;
  result.stats.stream_io = stream->IoStats();
  result.stats.index_io = archived->IndexIoStats();
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_clock)
          .count();
  return result;
}

}  // namespace

Result<QueryResult> RunTopKMethod(ArchivedStream* archived,
                                  const RegularQuery& query, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  return RunTaWalk(archived, query, k, /*threshold=*/0.0);
}

Result<QueryResult> RunThresholdMethod(ArchivedStream* archived,
                                       const RegularQuery& query,
                                       double threshold) {
  if (threshold <= 0.0 || threshold >= 1.0) {
    return Status::InvalidArgument("threshold must be in (0, 1)");
  }
  return RunTaWalk(archived, query, kUnbounded, threshold);
}

}  // namespace caldera
