#include "caldera/topk_method.h"

#include "caldera/executor.h"

namespace caldera {

// Algorithm 3 is a plan, not a loop: the BT_P threshold cursor under the
// restart gap policy. The cursor runs the Threshold-Algorithm walk itself
// (it needs Reg's probabilities fed back to tighten its pruning floor); the
// shared executor owns the Reg loop and all stats accounting.

Result<QueryResult> RunTopKMethod(ArchivedStream* archived,
                                  const RegularQuery& query, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  PipelineOptions options;
  options.k = k;
  return RunPipeline(archived, query, AccessMethodKind::kTopK, options);
}

Result<QueryResult> RunThresholdMethod(ArchivedStream* archived,
                                       const RegularQuery& query,
                                       double threshold) {
  if (threshold <= 0.0 || threshold >= 1.0) {
    return Status::InvalidArgument("threshold must be in (0, 1)");
  }
  PipelineOptions options;
  options.threshold = threshold;
  return RunPipeline(archived, query, AccessMethodKind::kTopK, options);
}

}  // namespace caldera
