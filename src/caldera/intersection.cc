#include "caldera/intersection.h"

#include <string>

namespace caldera {

Result<PredicateCursor> MakePredicateCursor(ArchivedStream* archived,
                                            const Predicate& pred) {
  const Predicate* base = pred.is_negation() ? &pred.base() : &pred;
  if (!base->indexable()) {
    return Status::FailedPrecondition("predicate '" + pred.name() +
                                      "' is not indexable");
  }
  BTree* tree = archived->btc(base->attribute());
  if (tree == nullptr) {
    return Status::FailedPrecondition(
        "no BT_C index on attribute " + std::to_string(base->attribute()) +
        " of stream " + archived->dir());
  }
  return PredicateCursor::Create(
      tree, base->MatchedAttributeValues(archived->schema()));
}

}  // namespace caldera
