#include "caldera/intersection.h"

#include <algorithm>

namespace caldera {

Result<PredicateCursor> MakePredicateCursor(ArchivedStream* archived,
                                            const Predicate& pred) {
  const Predicate* base = pred.is_negation() ? &pred.base() : &pred;
  if (!base->indexable()) {
    return Status::FailedPrecondition("predicate '" + pred.name() +
                                      "' is not indexable");
  }
  BTree* tree = archived->btc(base->attribute());
  if (tree == nullptr) {
    return Status::FailedPrecondition(
        "no BT_C index on attribute " + std::to_string(base->attribute()) +
        " of stream " + archived->dir());
  }
  return PredicateCursor::Create(
      tree, base->MatchedAttributeValues(archived->schema()));
}

Result<std::optional<uint64_t>> IntervalIntersector::Next() {
  const size_t n = cursors_.size();
  if (n == 0) return std::optional<uint64_t>();
  for (;;) {
    // Re-seek every cursor to the current lower bound and compute the
    // implied start of each cursor's current entry.
    uint64_t max_start = next_start_min_;
    for (size_t i = 0; i < n; ++i) {
      CALDERA_RETURN_IF_ERROR(
          cursors_[i].SeekTime(next_start_min_ + offsets_[i]));
      if (!cursors_[i].valid()) return std::optional<uint64_t>();
      // cursors_[i].time() >= next_start_min_ + offsets_[i], so this cannot
      // underflow.
      uint64_t implied_start = cursors_[i].time() - offsets_[i];
      max_start = std::max(max_start, implied_start);
    }
    // Check whether every cursor has an entry exactly at max_start+offset.
    bool aligned = true;
    for (size_t i = 0; i < n; ++i) {
      CALDERA_RETURN_IF_ERROR(cursors_[i].SeekTime(max_start + offsets_[i]));
      if (!cursors_[i].valid()) return std::optional<uint64_t>();
      if (cursors_[i].time() != max_start + offsets_[i]) {
        // This cursor jumped past; restart from its implied start.
        next_start_min_ = cursors_[i].time() - offsets_[i];
        aligned = false;
        break;
      }
    }
    if (aligned) {
      next_start_min_ = max_start + 1;
      return std::optional<uint64_t>(max_start);
    }
  }
}

std::optional<IntervalMerger::Interval> IntervalMerger::Add(uint64_t start) {
  uint64_t last = start + interval_length_ - 1;
  if (!has_pending_) {
    pending_ = {start, last};
    has_pending_ = true;
    return std::nullopt;
  }
  if (start <= pending_.last + 1) {
    pending_.last = std::max(pending_.last, last);
    return std::nullopt;
  }
  Interval done = pending_;
  pending_ = {start, last};
  return done;
}

std::optional<IntervalMerger::Interval> IntervalMerger::Flush() {
  if (!has_pending_) return std::nullopt;
  has_pending_ = false;
  return pending_;
}

UnionCursor::UnionCursor(std::vector<PredicateCursor> cursors)
    : cursors_(std::move(cursors)) {
  RecomputeMin();
}

void UnionCursor::RecomputeMin() {
  min_time_ = UINT64_MAX;
  for (const PredicateCursor& c : cursors_) {
    if (c.valid()) min_time_ = std::min(min_time_, c.time());
  }
}

bool UnionCursor::valid() const { return min_time_ != UINT64_MAX; }

uint64_t UnionCursor::time() const { return min_time_; }

Status UnionCursor::Next() {
  for (PredicateCursor& c : cursors_) {
    if (c.valid() && c.time() == min_time_) {
      CALDERA_RETURN_IF_ERROR(c.Next());
    }
  }
  RecomputeMin();
  return Status::Ok();
}

}  // namespace caldera
