#ifndef CALDERA_CALDERA_SYSTEM_H_
#define CALDERA_CALDERA_SYSTEM_H_

#include <map>
#include <memory>
#include <string>

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "caldera/planner.h"
#include "query/regular_query.h"

namespace caldera {

/// Execution knobs for Caldera::Execute.
struct ExecOptions {
  /// Access method; kAuto lets the planner choose.
  AccessMethodKind method = AccessMethodKind::kAuto;
  /// For top-k execution: number of matches (0 = full signal).
  size_t k = 0;
  /// For threshold execution: return only matches with probability above
  /// this (0 = disabled). Used with method kTopK or kAuto on fixed-length
  /// queries; other methods filter their signal.
  double threshold = 0.0;
  /// Allow the approximate semi-independent method in auto planning.
  bool approximation_ok = false;
  /// Buffer-pool pages per opened file.
  size_t pool_pages = 256;
};

/// The Caldera system facade (Figure 1): an archive of smoothed Markovian
/// streams plus Regular-query execution over them.
///
/// Typical use:
///   Caldera system("/data/archive");
///   system.archive()->CreateStream("bob", stream);
///   system.archive()->BuildBtc("bob", 0);
///   auto result = system.Execute("bob", query, {});
class Caldera {
 public:
  explicit Caldera(std::string archive_root)
      : archive_(std::move(archive_root)) {}

  StreamArchive* archive() { return &archive_; }

  /// Runs `query` against stream `stream_name` using the requested (or
  /// planned) access method. With options.k > 0 and a fixed-length query
  /// the result holds the top-k matches; otherwise the full signal.
  Result<QueryResult> Execute(const std::string& stream_name,
                              const RegularQuery& query,
                              const ExecOptions& options = {});

  /// The plan Execute would choose, without running it.
  Result<PlanDecision> Plan(const std::string& stream_name,
                            const RegularQuery& query,
                            const ExecOptions& options = {});

  /// Opens (and caches) a stream handle.
  Result<ArchivedStream*> GetStream(const std::string& name,
                                    size_t pool_pages = 256);

  /// Drops cached stream handles (e.g. after building new indexes).
  void InvalidateCache() { open_streams_.clear(); }

 private:
  StreamArchive archive_;
  std::map<std::string, std::unique_ptr<ArchivedStream>> open_streams_;
};

}  // namespace caldera

#endif  // CALDERA_CALDERA_SYSTEM_H_
