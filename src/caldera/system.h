#ifndef CALDERA_CALDERA_SYSTEM_H_
#define CALDERA_CALDERA_SYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "caldera/planner.h"
#include "ingest/ingestor.h"
#include "query/regular_query.h"

namespace caldera {

/// Execution knobs for Caldera::Execute.
struct ExecOptions {
  /// Access method; kAuto lets the planner choose.
  AccessMethodKind method = AccessMethodKind::kAuto;
  /// For top-k execution: number of matches (0 = full signal).
  size_t k = 0;
  /// For threshold execution: return only matches with probability above
  /// this (0 = disabled). Used with method kTopK or kAuto on fixed-length
  /// queries; other methods filter their signal.
  double threshold = 0.0;
  /// Allow the approximate semi-independent method in auto planning.
  bool approximation_ok = false;
  /// Buffer-pool pages per opened file.
  size_t pool_pages = 256;
  /// Graceful degradation: when an index fails to open or a non-scan method
  /// fails mid-query with Corruption / IoError / FailedPrecondition, retry
  /// with the always-available naive scan (Algorithm 1) instead of failing.
  /// Rescued executions report stats.scan_fallbacks = 1 and count the
  /// corrupt artifacts in stats.corruption_events. Errors from the scan
  /// itself (i.e. the stream data is damaged too) always propagate.
  bool fallback_to_scan = false;
  /// Lets the semi-independent method consult the shared span-CPT cache on
  /// gap steps: a cached span upgrades the step from the independence
  /// approximation to an exact spanning update, at hash-lookup cost. Off by
  /// default because results then depend on what earlier (MC-method)
  /// queries happened to cache — e.g. batch runs would lose their
  /// thread-count-independent determinism.
  bool use_cached_spans = false;
  /// Pipeline prefetch: when > 0, a background stage decodes the next
  /// `prefetch_batch` relevant timesteps (index probes, record reads, CPT
  /// decode) while the Reg operator processes the current batch. Purely a
  /// latency knob — the signal and all non-timing stats are identical for
  /// every value, and methods whose cursors consume result feedback
  /// (top-k/threshold) always run synchronously. 0 = off.
  size_t prefetch_batch = 0;
};

/// The Caldera system facade (Figure 1): an archive of smoothed Markovian
/// streams plus Regular-query execution over them.
///
/// Stream handles are shared-ownership (std::shared_ptr) and come from a
/// mutex-guarded, epoch-versioned cache: GetStream may be called from any
/// thread, and InvalidateStreams never dangles an outstanding handle — it
/// only prevents the cache from serving stale ones. A single ArchivedStream
/// object is still single-threaded (its buffer pools are not locked), so at
/// most one thread may *use* a given handle at a time; ExecuteBatch
/// (caldera/batch.h) parallelizes across distinct streams for exactly this
/// reason.
///
/// Typical use:
///   Caldera system("/data/archive");
///   system.archive()->CreateStream("bob", stream);
///   system.archive()->BuildBtc("bob", 0);
///   system.InvalidateStreams();  // new index ⇒ refresh cached handles
///   auto result = system.Execute("bob", query, {});
class Caldera {
 public:
  explicit Caldera(std::string archive_root)
      : archive_(std::move(archive_root)),
        span_cache_(std::make_shared<SpanCptCache>(kSpanCacheBytes)) {}

  StreamArchive* archive() { return &archive_; }

  /// The process-wide cache of composed span CPTs, shared by every stream
  /// handle this facade opens (keys carry stream id + epoch, so entries
  /// never collide across streams and epoch bumps orphan stale ones).
  const std::shared_ptr<SpanCptCache>& span_cache() const {
    return span_cache_;
  }

  /// Byte budget of the facade's shared span-CPT cache.
  static constexpr size_t kSpanCacheBytes = 64u << 20;

  /// Runs `query` against stream `stream_name` using the requested (or
  /// planned) access method. With options.k > 0 and a fixed-length query
  /// the result holds the top-k matches; otherwise the full signal.
  Result<QueryResult> Execute(const std::string& stream_name,
                              const RegularQuery& query,
                              const ExecOptions& options = {});

  /// The plan Execute would choose, without running it.
  Result<PlanDecision> Plan(const std::string& stream_name,
                            const RegularQuery& query,
                            const ExecOptions& options = {});

  /// Opens (and caches) a stream handle. Thread-safe. The returned handle
  /// shares ownership with the cache: it stays valid for as long as the
  /// caller holds it, across any number of InvalidateStreams calls.
  Result<std::shared_ptr<ArchivedStream>> GetStream(const std::string& name,
                                                    size_t pool_pages = 256);

  /// Starts a new handle epoch (e.g. after building new indexes): cached
  /// handles are dropped and opens racing with this call are not admitted
  /// to the cache. Outstanding shared_ptr handles remain valid — they see
  /// the archive as of their open. Returns the new epoch. Thread-safe.
  uint64_t InvalidateStreams();

  /// The current handle-cache epoch (starts at 0, bumped by
  /// InvalidateStreams). Thread-safe.
  uint64_t stream_epoch() const;

  /// Recovery after index corruption: rebuilds every rebuildable index of
  /// `stream_name` from the (checksum-verified) stream data files and
  /// invalidates cached handles so the next query sees the fresh indexes.
  Status RebuildIndexes(const std::string& stream_name);

  /// Opens a live-append handle for `stream_name` (the growing-stream
  /// ingestion pipeline, src/ingest/). The open replays the stream's WAL if
  /// a previous writer crashed mid-commit, and every committed batch runs
  /// under the stream's writer lock and ends in NotifyStreamMutation, so
  /// concurrent queries see either the pre- or post-append stream — never a
  /// mix — and new queries see the appended timesteps immediately. At most
  /// one live ingestor per stream at a time (not enforced).
  Result<std::unique_ptr<StreamIngestor>> OpenForIngest(
      const std::string& stream_name);

  /// The single epoch-bump/invalidation point behind every in-place stream
  /// mutation (index rebuild, ingest commit): drops cached handles (next
  /// GetStream reopens against the new on-disk state) and clears the span-
  /// CPT cache. The epoch bump alone already orphans span entries logically
  /// — fresh handles stamp the new epoch into their cache keys — and the
  /// Clear reclaims the bytes instead of waiting for LRU pressure.
  void NotifyStreamMutation();

  /// The per-stream reader/writer lock that serializes in-place mutation
  /// (ingest apply, index rebuild — exclusive) against query execution
  /// (shared). Stable address for the life of the facade. B+ trees mutate
  /// in place, so unlike the snapshot-safe record files they need this
  /// exclusion.
  std::shared_mutex* StreamMutationLock(const std::string& stream_name);

 private:
  struct CachedHandle {
    uint64_t epoch = 0;  // Epoch the handle was opened under.
    std::shared_ptr<ArchivedStream> stream;
  };

  StreamArchive archive_;
  std::shared_ptr<SpanCptCache> span_cache_;
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  std::map<std::string, CachedHandle> open_streams_;
  // Lock order: a stream's mutation lock is always acquired BEFORE mu_
  // (Execute: stream lock -> GetStream -> mu_; ingest commit: stream lock
  // -> NotifyStreamMutation -> mu_). mu_ is never held while acquiring a
  // stream lock. unique_ptr keeps addresses stable across map growth.
  std::map<std::string, std::unique_ptr<std::shared_mutex>> stream_locks_;
};

}  // namespace caldera

#endif  // CALDERA_CALDERA_SYSTEM_H_
