#ifndef CALDERA_CALDERA_INTERSECTION_H_
#define CALDERA_CALDERA_INTERSECTION_H_

#include "caldera/archive.h"
#include "common/status.h"
#include "index/btc_index.h"
// IntervalIntersector, IntervalMerger, and UnionCursor moved to the index
// layer with the cursor pipeline; re-exported here for existing includers.
#include "index/timestep_cursor.h"
#include "query/regular_query.h"

namespace caldera {

/// Opens a chronological cursor over the timesteps relevant to `pred` (its
/// positive base for negations) using the stream's BT_C index on the
/// predicate's attribute. FailedPrecondition when that index is missing.
Result<PredicateCursor> MakePredicateCursor(ArchivedStream* archived,
                                            const Predicate& pred);

}  // namespace caldera

#endif  // CALDERA_CALDERA_INTERSECTION_H_
