#ifndef CALDERA_CALDERA_INTERSECTION_H_
#define CALDERA_CALDERA_INTERSECTION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "caldera/archive.h"
#include "common/status.h"
#include "index/btc_index.h"
#include "query/regular_query.h"

namespace caldera {

/// Opens a chronological cursor over the timesteps relevant to `pred` (its
/// positive base for negations) using the stream's BT_C index on the
/// predicate's attribute. FailedPrecondition when that index is missing.
Result<PredicateCursor> MakePredicateCursor(ArchivedStream* archived,
                                            const Predicate& pred);

/// The temporally-aware index join of Section 3.1: given cursors with link
/// offsets (cursor j covers the predicate of link offset_j), enumerates, in
/// increasing order, the interval start times s such that cursor j holds an
/// entry at time s + offset_j for every j. Links without an indexable
/// predicate simply contribute no cursor (the paper's "relaxed"
/// intersection).
///
/// This is a merge-join-style walk: each round computes the maximal
/// candidate start implied by the current cursor positions and re-seeks all
/// cursors to it; cost is linear in the index entries touched.
class IntervalIntersector {
 public:
  IntervalIntersector(std::vector<PredicateCursor> cursors,
                      std::vector<uint64_t> offsets)
      : cursors_(std::move(cursors)), offsets_(std::move(offsets)) {}

  /// Returns the next intersection start time, or nullopt when exhausted.
  Result<std::optional<uint64_t>> Next();

 private:
  std::vector<PredicateCursor> cursors_;
  std::vector<uint64_t> offsets_;
  uint64_t next_start_min_ = 0;
};

/// Merges a sorted sequence of candidate starts (for an n-link query) into
/// maximal processing intervals [first, last]: candidates whose intervals
/// overlap or abut are combined so the Reg operator processes each timestep
/// at most once (Section 3.1's overlapping-interval optimization).
class IntervalMerger {
 public:
  explicit IntervalMerger(uint64_t interval_length)
      : interval_length_(interval_length) {}

  struct Interval {
    uint64_t first;
    uint64_t last;  // Inclusive.
  };

  /// Feeds the next candidate start (strictly increasing); returns a
  /// completed interval if this start cannot extend the pending one.
  std::optional<Interval> Add(uint64_t start);

  /// Returns the final pending interval, if any.
  std::optional<Interval> Flush();

 private:
  uint64_t interval_length_;
  bool has_pending_ = false;
  Interval pending_{0, 0};
};

/// Iterates the union of several predicate cursors in increasing time order
/// — the "timesteps referenced by any C_i" loop of Algorithms 4 and 5.
class UnionCursor {
 public:
  explicit UnionCursor(std::vector<PredicateCursor> cursors);

  bool valid() const;
  uint64_t time() const;
  Status Next();

 private:
  std::vector<PredicateCursor> cursors_;
  uint64_t min_time_ = 0;
  void RecomputeMin();
};

}  // namespace caldera

#endif  // CALDERA_CALDERA_INTERSECTION_H_
