#include "caldera/cursor.h"

#include <string>
#include <utility>
#include <vector>

#include "caldera/intersection.h"

namespace caldera {

const char* GapPolicyName(GapPolicy policy) {
  switch (policy) {
    case GapPolicy::kAdjacentOnly:
      return "adjacent-only";
    case GapPolicy::kRestart:
      return "restart";
    case GapPolicy::kExactSpan:
      return "exact-span";
    case GapPolicy::kIndependent:
      return "independent";
    case GapPolicy::kScanThrough:
      return "scan-through";
  }
  return "unknown";
}

Result<CursorPlan> MakeFullScanPlan(ArchivedStream* archived,
                                    const RegularQuery& query) {
  (void)query;
  if (archived->length() == 0) {
    return Status::FailedPrecondition("empty stream");
  }
  CursorPlan plan;
  plan.cursor = std::make_unique<FullScanCursor>(archived->length());
  plan.gap_policy = GapPolicy::kAdjacentOnly;
  return plan;
}

Result<CursorPlan> MakeMergeJoinPlan(ArchivedStream* archived,
                                     const RegularQuery& query) {
  if (!query.fixed_length()) {
    return Status::FailedPrecondition(
        "the B+Tree access method handles fixed-length queries only; use "
        "the MC-index or semi-independent method");
  }
  const uint64_t n = query.num_links();
  if (archived->length() < n) {
    // No room for a full match anywhere: an a-priori-empty plan (the
    // executor returns an empty signal without touching the indexes).
    CursorPlan plan;
    plan.gap_policy = GapPolicy::kRestart;
    return plan;
  }

  // One cursor per link whose primary predicate is indexable; unindexed
  // links relax the intersection (Section 3.1).
  std::vector<PredicateCursor> cursors;
  std::vector<uint64_t> offsets;
  for (size_t i = 0; i < query.num_links(); ++i) {
    const Predicate& primary = query.link(i).primary;
    if (!primary.indexable()) continue;
    CALDERA_ASSIGN_OR_RETURN(PredicateCursor cursor,
                             MakePredicateCursor(archived, primary));
    cursors.push_back(std::move(cursor));
    offsets.push_back(i);
  }
  if (cursors.empty()) {
    return Status::FailedPrecondition(
        "no link of query '" + query.name() +
        "' is indexable; use the naive scan");
  }

  CursorPlan plan;
  plan.cursor = std::make_unique<MergeJoinCursor>(
      std::move(cursors), std::move(offsets), n, archived->length());
  plan.gap_policy = GapPolicy::kRestart;
  return plan;
}

Result<CursorPlan> MakeUnionPlan(ArchivedStream* archived,
                                 const RegularQuery& query,
                                 GapPolicy gap_policy) {
  if (gap_policy == GapPolicy::kExactSpan && archived->mc() == nullptr) {
    return Status::FailedPrecondition("stream has no MC index: " +
                                      archived->dir());
  }
  // Cursors on the positive base of every query predicate (primary and
  // loop): this makes "skipped" timesteps provably null-atom steps.
  std::vector<PredicateCursor> cursors;
  for (const Predicate* pred : query.CursorPredicates()) {
    CALDERA_ASSIGN_OR_RETURN(PredicateCursor cursor,
                             MakePredicateCursor(archived, *pred));
    cursors.push_back(std::move(cursor));
  }
  if (cursors.empty()) {
    return Status::FailedPrecondition(
        "query '" + query.name() + "' has no indexable predicate bases");
  }
  CursorPlan plan;
  plan.cursor = std::make_unique<UnionGapCursor>(std::move(cursors));
  plan.gap_policy = gap_policy;
  return plan;
}

Result<CursorPlan> MakeThresholdPlan(ArchivedStream* archived,
                                     const RegularQuery& query, size_t k,
                                     double threshold) {
  if (!query.fixed_length()) {
    return Status::FailedPrecondition(
        "the top-k/threshold B+Tree access method handles fixed-length "
        "queries only");
  }
  const uint64_t n = query.num_links();
  const StreamSchema& schema = archived->schema();

  // One BT_P cursor per link. Every link must be indexable: the TA needs
  // sorted access to every link's marginals.
  std::vector<TopProbCursor> cursors;
  for (size_t i = 0; i < n; ++i) {
    const Predicate& primary = query.link(i).primary;
    if (!primary.indexable()) {
      return Status::FailedPrecondition(
          "top-k method requires every link predicate to be indexable");
    }
    if (primary.kind() == Predicate::Kind::kRange) {
      return Status::FailedPrecondition(
          "top-k method does not support range predicates (Section 3.4.1)");
    }
    BTree* tree = archived->btp(primary.attribute());
    if (tree == nullptr) {
      return Status::FailedPrecondition(
          "no BT_P index on attribute " +
          std::to_string(primary.attribute()));
    }
    CALDERA_ASSIGN_OR_RETURN(
        TopProbCursor cursor,
        TopProbCursor::Create(tree, primary.MatchedAttributeValues(schema)));
    cursors.push_back(std::move(cursor));
  }

  // Predicate marginal probe (line 9 of Algorithm 3) against the stream.
  StoredStream* stream = archived->stream();
  const StreamSchema* schema_ptr = &archived->schema();
  const RegularQuery* query_ptr = &query;
  ThresholdCursor::LinkProbe probe =
      [stream, schema_ptr, query_ptr,
       marginal = Distribution()](size_t link,
                                  uint64_t t) mutable -> Result<double> {
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
    const Predicate& p = query_ptr->link(link).primary;
    return marginal.MassWhere(
        [&](ValueId state) { return p.Matches(*schema_ptr, state); });
  };

  CursorPlan plan;
  plan.cursor = std::make_unique<ThresholdCursor>(
      std::move(cursors), k, threshold, archived->length(), std::move(probe));
  plan.gap_policy = GapPolicy::kRestart;
  return plan;
}

const char* PipelineCursorName(AccessMethodKind method) {
  switch (method) {
    case AccessMethodKind::kScan:
      return "full-scan";
    case AccessMethodKind::kBTree:
      return "btc-merge-join";
    case AccessMethodKind::kTopK:
      return "btp-threshold";
    case AccessMethodKind::kMcIndex:
    case AccessMethodKind::kSemiIndependent:
      return "btc-union";
    case AccessMethodKind::kAuto:
      break;
  }
  return "";
}

GapPolicy PipelineGapPolicy(AccessMethodKind method) {
  switch (method) {
    case AccessMethodKind::kScan:
      return GapPolicy::kAdjacentOnly;
    case AccessMethodKind::kBTree:
    case AccessMethodKind::kTopK:
      return GapPolicy::kRestart;
    case AccessMethodKind::kMcIndex:
      return GapPolicy::kExactSpan;
    case AccessMethodKind::kSemiIndependent:
      return GapPolicy::kIndependent;
    case AccessMethodKind::kAuto:
      break;
  }
  return GapPolicy::kAdjacentOnly;
}

}  // namespace caldera
