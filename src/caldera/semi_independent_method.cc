#include "caldera/semi_independent_method.h"

#include "caldera/executor.h"

namespace caldera {

// Algorithm 5 is a plan, not a loop: the BT_C union cursor under the
// independence gap policy (optionally upgraded to exact spans from the
// shared cache). The shared executor owns the Reg loop and all stats
// accounting.
Result<QueryResult> RunSemiIndependentMethod(ArchivedStream* archived,
                                             const RegularQuery& query,
                                             bool use_cached_spans) {
  PipelineOptions options;
  options.use_cached_spans = use_cached_spans;
  return RunPipeline(archived, query, AccessMethodKind::kSemiIndependent,
                     options);
}

}  // namespace caldera
