#include "caldera/semi_independent_method.h"

#include <chrono>

#include "caldera/intersection.h"
#include "reg/reg_operator.h"

namespace caldera {

Result<QueryResult> RunSemiIndependentMethod(ArchivedStream* archived,
                                             const RegularQuery& query,
                                             bool use_cached_spans) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  StoredStream* stream = archived->stream();
  McIndex* mc = use_cached_spans ? archived->mc() : nullptr;

  auto start_clock = std::chrono::steady_clock::now();
  archived->ResetStats();

  std::vector<PredicateCursor> cursors;
  for (const Predicate* pred : query.CursorPredicates()) {
    CALDERA_ASSIGN_OR_RETURN(PredicateCursor cursor,
                             MakePredicateCursor(archived, *pred));
    cursors.push_back(std::move(cursor));
  }
  if (cursors.empty()) {
    return Status::FailedPrecondition(
        "query '" + query.name() + "' has no indexable predicate bases");
  }

  QueryResult result;
  result.method = AccessMethodKind::kSemiIndependent;
  RegOperator reg(query, archived->schema());
  UnionCursor relevant(std::move(cursors));

  Distribution marginal;
  Cpt transition;
  uint64_t t_prev = 0;
  while (relevant.valid()) {
    uint64_t t = relevant.time();
    ++result.stats.relevant_timesteps;
    if (!reg.initialized()) {
      CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
      result.signal.push_back({t, reg.Initialize(marginal)});
    } else if (t == t_prev + 1) {
      // Adjacent: the raw CPT costs the same access as the marginal, so
      // keep the exact correlation (line 9 of Algorithm 5).
      CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
      result.signal.push_back({t, reg.Update(transition)});
    } else if (std::shared_ptr<const Cpt> span =
                   mc != nullptr ? mc->TryCachedSpan(t_prev, t) : nullptr) {
      // Opportunistic exactness: another query already composed this span,
      // so the spanning update costs only the cache lookup.
      result.signal.push_back({t, reg.UpdateSpanning(*span, t - t_prev)});
    } else {
      // Gap: approximate with independence (line 11).
      CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
      result.signal.push_back({t, reg.UpdateIndependent(marginal)});
    }
    t_prev = t;
    CALDERA_RETURN_IF_ERROR(relevant.Next());
  }

  result.stats.reg_updates = reg.num_updates();
  result.stats.intervals = result.stats.relevant_timesteps;
  if (mc != nullptr) {
    result.stats.span_cache_hits = mc->span_cache_hits();
    result.stats.span_cache_misses = mc->span_cache_misses();
  }
  result.stats.kernel_seconds = reg.kernel_seconds();
  result.stats.stream_io = stream->IoStats();
  result.stats.index_io = archived->IndexIoStats();
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_clock)
          .count();
  return result;
}

}  // namespace caldera
