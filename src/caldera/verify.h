#ifndef CALDERA_CALDERA_VERIFY_H_
#define CALDERA_CALDERA_VERIFY_H_

#include <cstdint>
#include <string>

#include "caldera/archive.h"
#include "common/status.h"

namespace caldera {

/// Knobs for VerifyArchivedStream.
struct VerifyOptions {
  /// Numeric tolerance for stochasticity/consistency checks.
  double tolerance = 1e-6;
  /// Check BT_C entries against stream marginals (both directions).
  bool check_btc = true;
  /// Check BT_P entries against stream marginals.
  bool check_btp = true;
  /// Check MC-index entries against freshly composed raw CPTs on a sample
  /// of entries per level (0 disables; exact indexes only).
  uint32_t mc_samples_per_level = 8;
  /// Validate the stream's Markovian invariants (marginal/CPT consistency).
  bool check_stream = true;
};

/// What the verifier covered.
struct VerifyReport {
  uint64_t timesteps_checked = 0;
  uint64_t btc_entries_checked = 0;
  uint64_t btp_entries_checked = 0;
  uint64_t mc_entries_checked = 0;

  std::string ToString() const;
};

/// Deep-checks an archived stream and every index built for it:
///   * the stream parses end-to-end, marginals are normalized, CPT rows are
///     stochastic, marginal(t) == marginal(t-1) * cpt(t);
///   * every BT_C/BT_P tree satisfies its structural invariants, contains
///     exactly one entry per (attribute value, timestep) of the marginal
///     support, with the correct probability — and nothing else;
///   * sampled MC-index entries equal the product of the raw CPTs they
///     claim to span.
/// Returns the first corruption found as a Status; on success fills
/// `report`.
Status VerifyArchivedStream(ArchivedStream* archived,
                            const VerifyOptions& options,
                            VerifyReport* report);

}  // namespace caldera

#endif  // CALDERA_CALDERA_VERIFY_H_
