#include "caldera/scan_method.h"

#include <chrono>

#include "reg/reg_operator.h"

namespace caldera {

Result<QueryResult> RunScanMethod(ArchivedStream* archived,
                                  const RegularQuery& query) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  StoredStream* stream = archived->stream();
  if (stream->length() == 0) {
    return Status::FailedPrecondition("empty stream");
  }
  auto start = std::chrono::steady_clock::now();
  archived->ResetStats();

  QueryResult result;
  result.method = AccessMethodKind::kScan;
  result.signal.reserve(stream->length());

  RegOperator reg(query, archived->schema());
  Distribution marginal;
  CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(0, &marginal));
  result.signal.push_back({0, reg.Initialize(marginal)});

  Cpt transition;
  for (uint64_t t = 1; t < stream->length(); ++t) {
    CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
    result.signal.push_back({t, reg.Update(transition)});
  }

  result.stats.reg_updates = reg.num_updates();
  result.stats.relevant_timesteps = stream->length();
  result.stats.intervals = 1;
  result.stats.kernel_seconds = reg.kernel_seconds();
  result.stats.stream_io = stream->IoStats();
  result.stats.index_io = archived->IndexIoStats();
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace caldera
