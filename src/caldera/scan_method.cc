#include "caldera/scan_method.h"

#include "caldera/executor.h"

namespace caldera {

// Algorithm 1 is a plan, not a loop: the full-scan cursor under the
// adjacent-only gap policy. The shared executor owns the Reg loop and all
// stats accounting.
Result<QueryResult> RunScanMethod(ArchivedStream* archived,
                                  const RegularQuery& query) {
  return RunPipeline(archived, query, AccessMethodKind::kScan);
}

}  // namespace caldera
