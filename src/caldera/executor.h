#ifndef CALDERA_CALDERA_EXECUTOR_H_
#define CALDERA_CALDERA_EXECUTOR_H_

#include <functional>

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "caldera/cursor.h"
#include "caldera/system.h"
#include "query/regular_query.h"

namespace caldera {

/// Knobs of the shared two-stage execution pipeline.
struct PipelineOptions {
  /// For the top-k method: number of matches to keep (>= 1), or
  /// ThresholdCursor::kUnbounded with a threshold.
  size_t k = 0;
  /// For the top-k method in threshold mode: keep matches above this.
  double threshold = 0.0;
  /// Semi-independent only: consult the shared span-CPT cache on gap steps
  /// (see ExecOptions::use_cached_spans).
  bool use_cached_spans = false;
  /// Double-buffered prefetch: while Reg processes the current batch of
  /// decoded snippets, a background stage decodes the next `prefetch_batch`
  /// cursor items (index probes + record reads + CPT decode). 0 = off
  /// (fully synchronous). The emitted signal and all counters other than
  /// wall-clock time are identical for every value: batching never reorders
  /// the Reg update sequence, and cursors that consume result feedback
  /// (top-k) opt out of prefetching entirely.
  size_t prefetch_batch = 0;
};

/// Builds a CursorPlan for a (stream, query) pair. Deferred so the
/// executor can reset IO counters before the factory probes any index —
/// cursor creation cost is part of the measured execution.
using PlanFactory =
    std::function<Result<CursorPlan>(ArchivedStream*, const RegularQuery&)>;

/// The consumer half of the pipeline, shared by all five access methods:
/// validates the query, builds the plan, runs its cursor through the Reg
/// operator (applying the plan's gap policy on every jump), and owns all
/// ExecStats accounting. `label` is reported as QueryResult::method. A
/// factory may return a plan with a null cursor: an a-priori-empty query
/// (e.g. a stream shorter than the match interval), answered with an empty
/// signal and zero cost.
Result<QueryResult> RunCursorPipeline(ArchivedStream* archived,
                                      const RegularQuery& query,
                                      const PlanFactory& factory,
                                      AccessMethodKind label,
                                      const PipelineOptions& options = {});

/// Builds the standard plan for `method` (Figure 5(b)'s five algorithms)
/// and runs it through the pipeline.
Result<QueryResult> RunPipeline(ArchivedStream* archived,
                                const RegularQuery& query,
                                AccessMethodKind method,
                                const PipelineOptions& options = {});

/// Facade-level execution on an open handle: maps ExecOptions to pipeline
/// options, applies threshold/top-k post-filters, and performs the
/// mid-query rescue — when a non-scan method fails with a rescuable status
/// and options.fallback_to_scan is set, the query reruns through the
/// always-available full-scan plan (stats.scan_fallbacks = 1, plus a
/// corruption_events tick when the failure was a Corruption).
Result<QueryResult> ExecutePipelineMethod(ArchivedStream* archived,
                                          const RegularQuery& query,
                                          AccessMethodKind method,
                                          const ExecOptions& options);

/// Errors the scan rescue can fix: damaged or missing index artifacts.
/// NotFound (no such stream) and InvalidArgument (bad query) are not
/// rescuable — the scan would fail identically.
bool ScanFallbackApplies(const Status& st);

}  // namespace caldera

#endif  // CALDERA_CALDERA_EXECUTOR_H_
