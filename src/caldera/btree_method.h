#ifndef CALDERA_CALDERA_BTREE_METHOD_H_
#define CALDERA_CALDERA_BTREE_METHOD_H_

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "query/regular_query.h"

namespace caldera {

/// Algorithm 2 — the B+Tree access method for fixed-length queries: one
/// BT_C cursor per (indexable) link predicate, advanced in a temporally-
/// aware merge join; only intersecting length-n intervals (merged when they
/// overlap) are fetched from disk and pushed through Reg.
///
/// Exact: probabilities at reported timesteps equal the naive scan's, and
/// every timestep with nonzero match probability is reported.
Result<QueryResult> RunBTreeMethod(ArchivedStream* archived,
                                   const RegularQuery& query);

}  // namespace caldera

#endif  // CALDERA_CALDERA_BTREE_METHOD_H_
