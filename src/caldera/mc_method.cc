#include "caldera/mc_method.h"

#include "caldera/executor.h"

namespace caldera {

// Algorithm 4 is a plan, not a loop: the BT_C union cursor under the
// exact-span gap policy (gaps bridged through the MC index's composed
// CPTs). The shared executor owns the Reg loop and all stats accounting.
Result<QueryResult> RunMcMethod(ArchivedStream* archived,
                                const RegularQuery& query) {
  return RunPipeline(archived, query, AccessMethodKind::kMcIndex);
}

}  // namespace caldera
