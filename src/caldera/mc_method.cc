#include "caldera/mc_method.h"

#include <chrono>

#include "caldera/intersection.h"
#include "reg/reg_operator.h"

namespace caldera {

Result<QueryResult> RunMcMethod(ArchivedStream* archived,
                                const RegularQuery& query) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  StoredStream* stream = archived->stream();
  McIndex* mc = archived->mc();
  if (mc == nullptr) {
    return Status::FailedPrecondition("stream has no MC index: " +
                                      archived->dir());
  }

  auto start_clock = std::chrono::steady_clock::now();
  archived->ResetStats();

  // Cursors on the positive base of every query predicate (primary and
  // loop): this makes "skipped" timesteps provably null-atom steps.
  std::vector<PredicateCursor> cursors;
  for (const Predicate* pred : query.CursorPredicates()) {
    CALDERA_ASSIGN_OR_RETURN(PredicateCursor cursor,
                             MakePredicateCursor(archived, *pred));
    cursors.push_back(std::move(cursor));
  }
  if (cursors.empty()) {
    return Status::FailedPrecondition(
        "query '" + query.name() + "' has no indexable predicate bases");
  }

  QueryResult result;
  result.method = AccessMethodKind::kMcIndex;
  RegOperator reg(query, archived->schema());
  UnionCursor relevant(std::move(cursors));

  Distribution marginal;
  Cpt transition;
  uint64_t t_prev = 0;
  while (relevant.valid()) {
    uint64_t t = relevant.time();
    ++result.stats.relevant_timesteps;
    if (!reg.initialized()) {
      CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
      result.signal.push_back({t, reg.Initialize(marginal)});
    } else if (t == t_prev + 1) {
      CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
      result.signal.push_back({t, reg.Update(transition)});
    } else {
      // Spans are resolved through the shared span-CPT cache: repeated
      // variable-length queries over the same stream skip the composition
      // chain entirely on a hit, and the shared Cpt carries its CSR kernel
      // view across queries.
      CALDERA_ASSIGN_OR_RETURN(std::shared_ptr<const Cpt> span,
                               mc->GetSpanCpt(t_prev, t));
      result.signal.push_back({t, reg.UpdateSpanning(*span, t - t_prev)});
    }
    t_prev = t;
    CALDERA_RETURN_IF_ERROR(relevant.Next());
  }

  result.stats.reg_updates = reg.num_updates();
  result.stats.intervals = result.stats.relevant_timesteps;
  result.stats.mc_entry_fetches = mc->entry_fetches();
  result.stats.mc_raw_fetches = mc->raw_fetches();
  result.stats.span_cache_hits = mc->span_cache_hits();
  result.stats.span_cache_misses = mc->span_cache_misses();
  result.stats.kernel_seconds = reg.kernel_seconds() + mc->compose_seconds();
  result.stats.stream_io = stream->IoStats();
  result.stats.index_io = archived->IndexIoStats();
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_clock)
          .count();
  return result;
}

}  // namespace caldera
