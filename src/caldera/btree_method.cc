#include "caldera/btree_method.h"

#include <chrono>

#include "caldera/intersection.h"
#include "reg/reg_operator.h"

namespace caldera {

namespace {

// Streams the merged interval [first, last] through `reg` (freshly
// initialized), appending one signal entry per timestep.
Status ProcessInterval(StoredStream* stream, RegOperator* reg,
                       uint64_t first, uint64_t last, QuerySignal* signal) {
  Distribution marginal;
  CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(first, &marginal));
  signal->push_back({first, reg->Initialize(marginal)});
  Cpt transition;
  for (uint64_t t = first + 1; t <= last; ++t) {
    CALDERA_RETURN_IF_ERROR(stream->ReadTransition(t, &transition));
    signal->push_back({t, reg->Update(transition)});
  }
  return Status::Ok();
}

}  // namespace

Result<QueryResult> RunBTreeMethod(ArchivedStream* archived,
                                   const RegularQuery& query) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  if (!query.fixed_length()) {
    return Status::FailedPrecondition(
        "the B+Tree access method handles fixed-length queries only; use "
        "the MC-index or semi-independent method");
  }
  StoredStream* stream = archived->stream();
  const uint64_t n = query.num_links();
  if (stream->length() < n) {
    QueryResult empty;
    empty.method = AccessMethodKind::kBTree;
    return empty;
  }

  auto start_clock = std::chrono::steady_clock::now();
  archived->ResetStats();

  // One cursor per link whose primary predicate is indexable; unindexed
  // links relax the intersection (Section 3.1).
  std::vector<PredicateCursor> cursors;
  std::vector<uint64_t> offsets;
  for (size_t i = 0; i < query.num_links(); ++i) {
    const Predicate& primary = query.link(i).primary;
    if (!primary.indexable()) continue;
    CALDERA_ASSIGN_OR_RETURN(PredicateCursor cursor,
                             MakePredicateCursor(archived, primary));
    cursors.push_back(std::move(cursor));
    offsets.push_back(i);
  }
  if (cursors.empty()) {
    return Status::FailedPrecondition(
        "no link of query '" + query.name() +
        "' is indexable; use the naive scan");
  }

  QueryResult result;
  result.method = AccessMethodKind::kBTree;
  RegOperator reg(query, archived->schema());
  IntervalIntersector intersector(std::move(cursors), std::move(offsets));
  IntervalMerger merger(n);
  uint64_t reg_updates = 0;
  double kernel_seconds = 0.0;

  auto run_interval = [&](IntervalMerger::Interval iv) -> Status {
    // Clamp to the stream (an intersection near the end may imply an
    // interval past the last timestep when some links are unindexed).
    if (iv.first >= stream->length()) return Status::Ok();
    iv.last = std::min<uint64_t>(iv.last, stream->length() - 1);
    reg.Reset();
    CALDERA_RETURN_IF_ERROR(
        ProcessInterval(stream, &reg, iv.first, iv.last, &result.signal));
    reg_updates += reg.num_updates();
    kernel_seconds += reg.kernel_seconds();
    ++result.stats.intervals;
    return Status::Ok();
  };

  for (;;) {
    CALDERA_ASSIGN_OR_RETURN(std::optional<uint64_t> start,
                             intersector.Next());
    if (!start.has_value()) break;
    if (*start + n > stream->length()) break;  // No room for a full match.
    ++result.stats.relevant_timesteps;
    if (std::optional<IntervalMerger::Interval> done = merger.Add(*start)) {
      CALDERA_RETURN_IF_ERROR(run_interval(*done));
    }
  }
  if (std::optional<IntervalMerger::Interval> done = merger.Flush()) {
    CALDERA_RETURN_IF_ERROR(run_interval(*done));
  }

  result.stats.reg_updates = reg_updates;
  result.stats.kernel_seconds = kernel_seconds;
  result.stats.stream_io = stream->IoStats();
  result.stats.index_io = archived->IndexIoStats();
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_clock)
          .count();
  return result;
}

}  // namespace caldera
