#include "caldera/btree_method.h"

#include "caldera/executor.h"

namespace caldera {

// Algorithm 2 is a plan, not a loop: the BT_C merge-join cursor under the
// restart gap policy (no match can span the space between merged
// intervals). The shared executor owns the Reg loop and all stats
// accounting.
Result<QueryResult> RunBTreeMethod(ArchivedStream* archived,
                                   const RegularQuery& query) {
  return RunPipeline(archived, query, AccessMethodKind::kBTree);
}

}  // namespace caldera
