#include "caldera/executor.h"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "reg/reg_operator.h"

namespace caldera {

namespace {

// One decoded unit of work for the Reg operator: a cursor item with its
// payload (marginal / transition CPT / composed span CPT) already read from
// storage. Decoding is the producer stage of the pipeline — it performs all
// index and record IO — so a Snippet can be consumed without touching disk.
struct Snippet {
  enum class Kind : uint8_t {
    kInitialize,   // First segment: Initialize(marginal).
    kRestart,      // New segment: Reset, then Initialize(marginal).
    kUpdate,       // Adjacent step: Update(transition).
    kSpanning,     // Gap bridged exactly: UpdateSpanning(span, gap).
    kIndependent,  // Gap approximated: UpdateIndependent(marginal).
  };

  Kind kind = Kind::kUpdate;
  uint64_t time = 0;
  uint64_t gap = 1;
  bool emit = true;
  bool observe = false;
  Distribution marginal;
  Cpt transition;
  std::shared_ptr<const Cpt> span;
};

// Producer stage: pulls cursor items and decodes them under the plan's gap
// policy. Owns the previous-timestep state, so it must be driven from one
// thread at a time (the prefetch path hands it to the background worker
// between Wait() calls).
class SnippetDecoder {
 public:
  SnippetDecoder(RelevantTimestepCursor* cursor, GapPolicy policy,
                 StoredStream* stream, McIndex* mc)
      : cursor_(cursor), policy_(policy), stream_(stream), mc_(mc) {}

  // Decodes up to `max_items` cursor items into `batch` (cleared first; one
  // item may decode to several snippets under scan-through). Returns false
  // once the cursor is exhausted. On error the batch contents are
  // meaningless and the whole execution aborts, matching the monolithic
  // methods (which interleaved reads and updates and bailed on the first
  // failed read).
  Result<bool> FillBatch(std::vector<Snippet>* batch, size_t max_items) {
    batch->clear();
    for (size_t i = 0; i < max_items; ++i) {
      CALDERA_ASSIGN_OR_RETURN(std::optional<CursorItem> item,
                               cursor_->Next());
      if (!item.has_value()) return false;
      ++items_;
      CALDERA_RETURN_IF_ERROR(Decode(*item, batch));
    }
    return true;
  }

  // Cursor items pulled so far (the default relevant-timestep count).
  uint64_t items() const { return items_; }

 private:
  Status Decode(const CursorItem& item, std::vector<Snippet>* out) {
    Snippet s;
    s.time = item.time;
    s.emit = item.emit;
    s.observe = item.observe;
    if (!started_ || item.restart) {
      s.kind = started_ ? Snippet::Kind::kRestart : Snippet::Kind::kInitialize;
      CALDERA_RETURN_IF_ERROR(stream_->ReadMarginal(item.time, &s.marginal));
      started_ = true;
      prev_ = item.time;
      out->push_back(std::move(s));
      return Status::Ok();
    }
    if (item.time <= prev_) {
      return Status::Internal(
          "cursor violated its contract: non-restart items must strictly "
          "increase in time");
    }
    const uint64_t gap = item.time - prev_;
    prev_ = item.time;
    if (gap == 1) {
      s.kind = Snippet::Kind::kUpdate;
      CALDERA_RETURN_IF_ERROR(
          stream_->ReadTransition(item.time, &s.transition));
      out->push_back(std::move(s));
      return Status::Ok();
    }
    switch (policy_) {
      case GapPolicy::kAdjacentOnly:
        return Status::Internal(
            "cursor produced a gap under the adjacent-only gap policy");
      case GapPolicy::kRestart:
        // No match can span the gap; start a fresh segment.
        s.kind = Snippet::Kind::kRestart;
        CALDERA_RETURN_IF_ERROR(stream_->ReadMarginal(item.time, &s.marginal));
        break;
      case GapPolicy::kExactSpan: {
        s.kind = Snippet::Kind::kSpanning;
        s.gap = gap;
        CALDERA_ASSIGN_OR_RETURN(s.span,
                                 mc_->GetSpanCpt(item.time - gap, item.time));
        break;
      }
      case GapPolicy::kIndependent: {
        // Opportunistic exactness: another query may already have composed
        // this span, making the exact update as cheap as the approximation.
        std::shared_ptr<const Cpt> span =
            mc_ != nullptr ? mc_->TryCachedSpan(item.time - gap, item.time)
                           : nullptr;
        if (span != nullptr) {
          s.kind = Snippet::Kind::kSpanning;
          s.gap = gap;
          s.span = std::move(span);
        } else {
          s.kind = Snippet::Kind::kIndependent;
          CALDERA_RETURN_IF_ERROR(
              stream_->ReadMarginal(item.time, &s.marginal));
        }
        break;
      }
      case GapPolicy::kScanThrough: {
        // Exact without an MC index: apply every interior transition. The
        // interior timesteps are processed exactly, so they emit too.
        for (uint64_t t = item.time - gap + 1; t < item.time; ++t) {
          Snippet interior;
          interior.kind = Snippet::Kind::kUpdate;
          interior.time = t;
          CALDERA_RETURN_IF_ERROR(
              stream_->ReadTransition(t, &interior.transition));
          out->push_back(std::move(interior));
        }
        s.kind = Snippet::Kind::kUpdate;
        CALDERA_RETURN_IF_ERROR(
            stream_->ReadTransition(item.time, &s.transition));
        break;
      }
    }
    out->push_back(std::move(s));
    return Status::Ok();
  }

  RelevantTimestepCursor* cursor_;
  GapPolicy policy_;
  StoredStream* stream_;
  McIndex* mc_;
  bool started_ = false;
  uint64_t prev_ = 0;
  uint64_t items_ = 0;
};

}  // namespace

Result<QueryResult> RunCursorPipeline(ArchivedStream* archived,
                                      const RegularQuery& query,
                                      const PlanFactory& factory,
                                      AccessMethodKind label,
                                      const PipelineOptions& options) {
  CALDERA_RETURN_IF_ERROR(query.ValidateAgainst(archived->schema()));
  auto start_clock = std::chrono::steady_clock::now();
  archived->ResetStats();

  CALDERA_ASSIGN_OR_RETURN(CursorPlan plan, factory(archived, query));

  QueryResult result;
  result.method = label;
  if (plan.cursor == nullptr) {
    // An a-priori-empty plan (e.g. stream shorter than the match interval).
    result.stats.plan_summary = "cursor=none (a-priori empty)";
    return result;
  }

  StoredStream* stream = archived->stream();
  McIndex* mc = nullptr;
  if (plan.gap_policy == GapPolicy::kExactSpan ||
      (plan.gap_policy == GapPolicy::kIndependent &&
       options.use_cached_spans)) {
    mc = archived->mc();
  }

  RelevantTimestepCursor* cursor = plan.cursor.get();
  RegOperator reg(query, archived->schema());
  uint64_t reg_updates = 0;
  double reg_kernel_seconds = 0.0;
  uint64_t segments = 0;  // Initialize calls == processing segments.

  // Consumer stage: feeds one decoded snippet to Reg. Touches only the
  // snippet payload and the cursor's feedback hook — never storage — so it
  // can safely overlap with the producer decoding the next batch.
  auto consume = [&](Snippet& s) {
    double p = 0.0;
    switch (s.kind) {
      case Snippet::Kind::kRestart:
        // num_updates/kernel_seconds reset with the operator; bank them.
        reg_updates += reg.num_updates();
        reg_kernel_seconds += reg.kernel_seconds();
        reg.Reset();
        [[fallthrough]];
      case Snippet::Kind::kInitialize:
        ++segments;
        p = reg.Initialize(s.marginal);
        break;
      case Snippet::Kind::kUpdate:
        p = reg.Update(s.transition);
        break;
      case Snippet::Kind::kSpanning:
        p = reg.UpdateSpanning(*s.span, s.gap);
        break;
      case Snippet::Kind::kIndependent:
        p = reg.UpdateIndependent(s.marginal);
        break;
    }
    if (s.emit) result.signal.push_back({s.time, p});
    if (s.observe) cursor->Observe(s.time, p);
  };

  SnippetDecoder decoder(cursor, plan.gap_policy, stream, mc);
  const size_t prefetch =
      cursor->prefetch_safe() ? options.prefetch_batch : 0;

  if (prefetch == 0) {
    // Synchronous: decode one item, consume it, repeat — the exact
    // read/update interleaving of the monolithic methods.
    std::vector<Snippet> batch;
    for (;;) {
      CALDERA_ASSIGN_OR_RETURN(bool more, decoder.FillBatch(&batch, 1));
      for (Snippet& s : batch) consume(s);
      if (!more) break;
    }
  } else {
    // Double-buffered: a single background worker decodes batch k+1 (all
    // storage IO) while this thread consumes batch k (all Reg work). The
    // ThreadPool's queue mutex orders every handoff, and between Wait() and
    // the next Submit() only this thread touches the decoder, `next`,
    // `fill_status`, and `more`, so there are no concurrent accesses. The
    // consumer applies the identical update sequence as the synchronous
    // path — batch boundaries never reorder it — so the output is
    // bit-identical for every prefetch_batch value.
    ThreadPool pool(1);
    std::vector<Snippet> current;
    std::vector<Snippet> next;
    Status fill_status = Status::Ok();
    bool more = true;
    auto submit_fill = [&] {
      pool.Submit([&] {
        Result<bool> filled = decoder.FillBatch(&next, prefetch);
        if (filled.ok()) {
          more = *filled;
        } else {
          fill_status = filled.status();
          more = false;
        }
      });
    };
    submit_fill();
    for (;;) {
      pool.Wait();
      if (!fill_status.ok()) return fill_status;
      std::swap(current, next);
      const bool had_more = more;
      if (had_more) submit_fill();
      for (Snippet& s : current) consume(s);
      if (!had_more) break;
    }
  }

  reg_updates += reg.num_updates();
  reg_kernel_seconds += reg.kernel_seconds();

  if (cursor->collects_signal()) {
    for (const auto& [time, prob] : cursor->TakeCollected()) {
      result.signal.push_back({time, prob});
    }
  }

  CursorStats cursor_stats;
  cursor->ContributeStats(decoder.items(), &cursor_stats);
  result.stats.reg_updates = reg_updates;
  result.stats.relevant_timesteps = cursor_stats.relevant_timesteps;
  result.stats.pruned_candidates = cursor_stats.pruned_candidates;
  switch (plan.gap_policy) {
    case GapPolicy::kAdjacentOnly:
    case GapPolicy::kRestart:
      // Segmented execution: one interval per Initialize.
      result.stats.intervals = segments;
      break;
    case GapPolicy::kExactSpan:
    case GapPolicy::kIndependent:
    case GapPolicy::kScanThrough:
      // Single-segment execution: the paper counts each relevant timestep.
      result.stats.intervals = cursor_stats.relevant_timesteps;
      break;
  }
  result.stats.kernel_seconds = reg_kernel_seconds;
  if (plan.gap_policy == GapPolicy::kExactSpan && mc != nullptr) {
    result.stats.mc_entry_fetches = mc->entry_fetches();
    result.stats.mc_raw_fetches = mc->raw_fetches();
    result.stats.kernel_seconds += mc->compose_seconds();
  }
  if (mc != nullptr) {
    result.stats.span_cache_hits = mc->span_cache_hits();
    result.stats.span_cache_misses = mc->span_cache_misses();
  }
  result.stats.stream_io = stream->IoStats();
  result.stats.index_io = archived->IndexIoStats();
  result.stats.plan_summary =
      std::string("cursor=") + cursor->name() +
      " gap=" + GapPolicyName(plan.gap_policy) +
      (prefetch > 0 ? " prefetch=" + std::to_string(prefetch)
                    : " prefetch=off");
  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_clock)
          .count();
  return result;
}

Result<QueryResult> RunPipeline(ArchivedStream* archived,
                                const RegularQuery& query,
                                AccessMethodKind method,
                                const PipelineOptions& options) {
  switch (method) {
    case AccessMethodKind::kScan:
      return RunCursorPipeline(archived, query, MakeFullScanPlan, method,
                               options);
    case AccessMethodKind::kBTree:
      return RunCursorPipeline(archived, query, MakeMergeJoinPlan, method,
                               options);
    case AccessMethodKind::kTopK: {
      size_t k = options.k;
      double threshold = options.threshold;
      if (threshold > 0) {
        if (threshold >= 1.0) {
          return Status::InvalidArgument("threshold must be in (0, 1)");
        }
        k = ThresholdCursor::kUnbounded;
      } else if (k == 0) {
        return Status::InvalidArgument("k must be >= 1");
      }
      auto factory = [k, threshold](ArchivedStream* a,
                                    const RegularQuery& q) {
        return MakeThresholdPlan(a, q, k, threshold);
      };
      return RunCursorPipeline(archived, query, factory, method, options);
    }
    case AccessMethodKind::kMcIndex: {
      auto factory = [](ArchivedStream* a, const RegularQuery& q) {
        return MakeUnionPlan(a, q, GapPolicy::kExactSpan);
      };
      return RunCursorPipeline(archived, query, factory, method, options);
    }
    case AccessMethodKind::kSemiIndependent: {
      auto factory = [](ArchivedStream* a, const RegularQuery& q) {
        return MakeUnionPlan(a, q, GapPolicy::kIndependent);
      };
      return RunCursorPipeline(archived, query, factory, method, options);
    }
    case AccessMethodKind::kAuto:
      break;
  }
  return Status::Internal("planner returned kAuto");
}

bool ScanFallbackApplies(const Status& st) {
  return st.code() == StatusCode::kCorruption ||
         st.code() == StatusCode::kIoError ||
         st.code() == StatusCode::kFailedPrecondition;
}

Result<QueryResult> ExecutePipelineMethod(ArchivedStream* archived,
                                          const RegularQuery& query,
                                          AccessMethodKind method,
                                          const ExecOptions& options) {
  PipelineOptions popts;
  popts.k = options.k;
  popts.threshold = options.threshold;
  popts.use_cached_spans = options.use_cached_spans;
  popts.prefetch_batch = options.prefetch_batch;
  if (method == AccessMethodKind::kTopK && popts.threshold <= 0 &&
      popts.k == 0) {
    popts.k = 1;  // The facade's top-k default.
  }

  auto run = [&](AccessMethodKind m) -> Result<QueryResult> {
    CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                             RunPipeline(archived, query, m, popts));
    // The top-k/threshold cursor already produced its final result set; for
    // every other method the facade applies the requested post-filters.
    if (m != AccessMethodKind::kTopK) {
      if (options.threshold > 0) {
        result.signal = FilterSignal(result.signal, options.threshold);
      }
      if (options.k > 0) {
        result.signal = TopKOfSignal(result.signal, options.k);
      }
    }
    return result;
  };

  Result<QueryResult> result = run(method);
  if (!result.ok() && method != AccessMethodKind::kScan &&
      options.fallback_to_scan && ScanFallbackApplies(result.status())) {
    const bool was_corruption =
        result.status().code() == StatusCode::kCorruption;
    result = run(AccessMethodKind::kScan);
    if (result.ok()) {
      ++result->stats.scan_fallbacks;
      if (was_corruption) ++result->stats.corruption_events;
    }
  }
  return result;
}

}  // namespace caldera
