#ifndef CALDERA_CALDERA_SEMI_INDEPENDENT_METHOD_H_
#define CALDERA_CALDERA_SEMI_INDEPENDENT_METHOD_H_

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "query/regular_query.h"

namespace caldera {

/// Algorithm 5 — the approximate semi-independent access method: like the
/// MC-index method it visits only relevant timesteps, but across a gap it
/// reads just the marginal and assumes independence from the previous
/// relevant timestep instead of fetching the composed CPT. Adjacent
/// relevant timesteps still use the true CPT ("semi"-independent): the cost
/// of reading it equals the cost of reading the marginal, so the extra
/// correlation is free.
///
/// No accuracy guarantee (Section 3.4.3); Figure 9(c) quantifies the error.
///
/// With `use_cached_spans`, a gap step first probes the MC index's span-CPT
/// cache (never composing): a hit upgrades the step to an exact spanning
/// update at hash-lookup cost, a miss falls back to the independence
/// approximation. Off by default — the signal then depends on what earlier
/// queries happened to cache, which breaks batch determinism guarantees.
Result<QueryResult> RunSemiIndependentMethod(ArchivedStream* archived,
                                             const RegularQuery& query,
                                             bool use_cached_spans = false);

}  // namespace caldera

#endif  // CALDERA_CALDERA_SEMI_INDEPENDENT_METHOD_H_
