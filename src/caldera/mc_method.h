#ifndef CALDERA_CALDERA_MC_METHOD_H_
#define CALDERA_CALDERA_MC_METHOD_H_

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "query/regular_query.h"

namespace caldera {

/// Algorithm 4 — the MC-index access method for variable-length (or any)
/// Regular queries: advances one BT_C cursor per positive base predicate in
/// parallel; between consecutive relevant timesteps the Markov-chain index
/// supplies the composed CPT spanning the gap, so the skipped interior is
/// never read while its correlations are fully preserved.
///
/// Exact: skipped timesteps provably carry zero marginal mass on every
/// positive query predicate, so their automaton symbols are the (idempotent)
/// null atom and the collapsed update equals the step-by-step one.
Result<QueryResult> RunMcMethod(ArchivedStream* archived,
                                const RegularQuery& query);

}  // namespace caldera

#endif  // CALDERA_CALDERA_MC_METHOD_H_
