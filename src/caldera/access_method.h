#ifndef CALDERA_CALDERA_ACCESS_METHOD_H_
#define CALDERA_CALDERA_ACCESS_METHOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace caldera {

/// One output tuple of a Regular query: the probability that the query is
/// satisfied (a match ends) at `time` (Section 2.2).
struct TimestepProbability {
  uint64_t time;
  double prob;

  bool operator==(const TimestepProbability&) const = default;
};

/// The query signal. Exact access methods report every processed timestep;
/// timesteps they provably skipped have probability zero.
using QuerySignal = std::vector<TimestepProbability>;

/// Which Ex implementation ran (Figure 5(b)).
enum class AccessMethodKind : uint8_t {
  kAuto = 0,
  kScan,             ///< Algorithm 1: naive full stream scan.
  kBTree,            ///< Algorithm 2: BT_C cursor intersection.
  kTopK,             ///< Algorithm 3: TA over BT_P.
  kMcIndex,          ///< Algorithm 4: MC-index span skipping.
  kSemiIndependent,  ///< Algorithm 5: approximate gap independence.
};

const char* AccessMethodName(AccessMethodKind kind);

/// Cost counters reported by every access method.
struct ExecStats {
  uint64_t reg_updates = 0;        ///< Reg operator initialize/update calls.
  uint64_t relevant_timesteps = 0; ///< Index-reported relevant timesteps.
  uint64_t intervals = 0;          ///< Candidate intervals processed.
  uint64_t pruned_candidates = 0;  ///< Top-k candidates pruned before Reg.
  uint64_t mc_entry_fetches = 0;   ///< MC-index entries fetched.
  uint64_t mc_raw_fetches = 0;     ///< Raw CPTs fetched for MC residues.
  uint64_t corruption_events = 0;  ///< Corrupt pages/indexes encountered.
  uint64_t scan_fallbacks = 0;     ///< Executions rescued by a scan fallback.
  uint64_t span_cache_hits = 0;    ///< Composed span CPTs served from cache.
  uint64_t span_cache_misses = 0;  ///< Span lookups that had to compose.
  BufferPoolStats stream_io;       ///< Page traffic on the stream files.
  BufferPoolStats index_io;        ///< Page traffic on index files.
  double kernel_seconds = 0.0;     ///< Wall seconds in propagate/compose kernels.
  double elapsed_seconds = 0.0;    ///< Wall-clock execution time.
  /// EXPLAIN line for this execution: chosen method, producer cursor, gap
  /// policy, prefetch setting, and (through the facade) the planner's
  /// density estimate and decision reason.
  std::string plan_summary;

  /// Field-wise accumulation, used to roll up per-stream stats into batch
  /// totals (elapsed_seconds sums too: it is aggregate work, not makespan).
  ExecStats& operator+=(const ExecStats& o) {
    reg_updates += o.reg_updates;
    relevant_timesteps += o.relevant_timesteps;
    intervals += o.intervals;
    pruned_candidates += o.pruned_candidates;
    mc_entry_fetches += o.mc_entry_fetches;
    mc_raw_fetches += o.mc_raw_fetches;
    corruption_events += o.corruption_events;
    scan_fallbacks += o.scan_fallbacks;
    span_cache_hits += o.span_cache_hits;
    span_cache_misses += o.span_cache_misses;
    stream_io += o.stream_io;
    index_io += o.index_io;
    kernel_seconds += o.kernel_seconds;
    elapsed_seconds += o.elapsed_seconds;
    // Aggregates keep the first summary seen (batch roll-ups span methods).
    if (plan_summary.empty()) plan_summary = o.plan_summary;
    return *this;
  }
};

/// Result of one query execution.
struct QueryResult {
  AccessMethodKind method = AccessMethodKind::kAuto;
  QuerySignal signal;
  ExecStats stats;
  /// Why this method ran: the planner's decision reason for kAuto,
  /// "explicitly requested" otherwise. Set by the Caldera facade; empty
  /// when a method runner is called directly.
  std::string plan_reason;
};

/// Returns the entries of `signal` with prob > threshold, useful for event
/// detection (Figure 4: "Bob is entering an office if p > 0.3").
QuerySignal FilterSignal(const QuerySignal& signal, double threshold);

/// Returns the top-k entries of `signal` by probability, descending.
QuerySignal TopKOfSignal(const QuerySignal& signal, size_t k);

}  // namespace caldera

#endif  // CALDERA_CALDERA_ACCESS_METHOD_H_
