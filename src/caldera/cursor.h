#ifndef CALDERA_CALDERA_CURSOR_H_
#define CALDERA_CALDERA_CURSOR_H_

#include <memory>

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "index/timestep_cursor.h"
#include "query/regular_query.h"

namespace caldera {

/// How the shared executor advances Reg across a gap (previous relevant
/// timestep p, next relevant timestep t, gap = t - p > 1).
enum class GapPolicy : uint8_t {
  /// Gaps cannot occur: the cursor yields adjacent timesteps only
  /// (full scan). A gap is an internal error.
  kAdjacentOnly,
  /// Reset Reg and re-Initialize at t: no match can span the gap (the
  /// merge-join cursor's merged intervals, top-k candidate intervals).
  kRestart,
  /// Exact spanning update through the MC index's composed CPT
  /// (Algorithm 4).
  kExactSpan,
  /// Independence approximation from the marginal at t (Algorithm 5),
  /// opportunistically upgraded to an exact spanning update when the shared
  /// span cache already holds the span and the caller opted in.
  kIndependent,
  /// Exact without an MC index: read and apply every interior transition
  /// p+1 .. t, emitting each processed timestep (a scan restricted to the
  /// cursor's neighborhoods — the hybrid the pipeline enables).
  kScanThrough,
};

const char* GapPolicyName(GapPolicy policy);

/// The producer half of an execution plan: a relevant-timestep cursor plus
/// the gap policy the executor applies between its items.
struct CursorPlan {
  std::unique_ptr<RelevantTimestepCursor> cursor;
  GapPolicy gap_policy = GapPolicy::kAdjacentOnly;
};

/// Cursor factories — one per access method. Each validates the
/// index/query preconditions its algorithm needs and reports the same
/// FailedPrecondition errors the monolithic methods did.

/// Algorithm 1: every timestep. FailedPrecondition on an empty stream.
Result<CursorPlan> MakeFullScanPlan(ArchivedStream* archived,
                                    const RegularQuery& query);

/// Algorithm 2: BT_C merge-join over the indexable links, restart per
/// merged interval. Fixed-length queries only.
Result<CursorPlan> MakeMergeJoinPlan(ArchivedStream* archived,
                                     const RegularQuery& query);

/// Algorithms 4/5: BT_C union over all predicate bases. The caller picks
/// the gap policy (exact span vs. independence vs. scan-through).
Result<CursorPlan> MakeUnionPlan(ArchivedStream* archived,
                                 const RegularQuery& query,
                                 GapPolicy gap_policy);

/// Algorithm 3: Threshold-Algorithm walk over per-link BT_P cursors.
/// Top-k mode (k >= 1, threshold 0) or threshold mode
/// (k = ThresholdCursor::kUnbounded, threshold in (0,1)).
Result<CursorPlan> MakeThresholdPlan(ArchivedStream* archived,
                                     const RegularQuery& query, size_t k,
                                     double threshold);

/// EXPLAIN helpers: the cursor / gap policy the standard plan for `method`
/// uses ("" / kAdjacentOnly for kAuto).
const char* PipelineCursorName(AccessMethodKind method);
GapPolicy PipelineGapPolicy(AccessMethodKind method);

}  // namespace caldera

#endif  // CALDERA_CALDERA_CURSOR_H_
