#ifndef CALDERA_CALDERA_PLANNER_H_
#define CALDERA_CALDERA_PLANNER_H_

#include <string>

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "query/regular_query.h"

namespace caldera {

/// What the planner decided and why.
struct PlanDecision {
  AccessMethodKind method = AccessMethodKind::kScan;
  /// Estimated data density: fraction of stream timesteps relevant to the
  /// query (Section 4.1.2). Drives method selection.
  double estimated_density = 1.0;
  std::string reason;
  /// EXPLAIN: the producer cursor the chosen method's pipeline plan uses
  /// (e.g. "btc-merge-join") and its gap policy (e.g. "restart").
  std::string cursor;
  std::string gap_policy;

  /// One-line EXPLAIN rendering:
  ///   "method=btree cursor=btc-merge-join gap=restart density=0.1250
  ///    reason=fixed-length on sparse data: cursor intersection"
  std::string Explain() const;
};

/// Estimates the data density of `query` on `archived` by counting BT_C
/// index entries for the query's cursor predicates (capped at
/// `sample_limit` entries per predicate for constant-time planning).
Result<double> EstimateDensity(ArchivedStream* archived,
                               const RegularQuery& query,
                               uint64_t sample_limit = 4096);

/// Chooses an access method per the paper's guidance:
///   fixed-length + top-k wanted + dense data  -> top-k B+Tree (4.2.2)
///   fixed-length + sparse data                -> B+Tree
///   fixed-length + dense data                 -> scan (B+Tree degenerates)
///   variable-length + MC index available      -> MC index
///   variable-length + approximation allowed   -> semi-independent
///   otherwise                                 -> scan
Result<PlanDecision> PlanQuery(ArchivedStream* archived,
                               const RegularQuery& query, bool want_topk,
                               bool approximation_ok);

}  // namespace caldera

#endif  // CALDERA_CALDERA_PLANNER_H_
