#include "caldera/planner.h"

#include <algorithm>

#include "caldera/intersection.h"

namespace caldera {

namespace {
// Above this density the B+Tree method degenerates into a scan with B+ tree
// overhead (Section 4.2.1), so the planner prefers the scan.
constexpr double kDenseCutoff = 0.8;
// Above this density a top-k query benefits from TA pruning (Section 4.2.2).
constexpr double kTopkDensityCutoff = 0.5;
}  // namespace

Result<double> EstimateDensity(ArchivedStream* archived,
                               const RegularQuery& query,
                               uint64_t sample_limit) {
  const uint64_t length = archived->length();
  if (length == 0) return 0.0;
  double max_density = 0.0;
  for (const Predicate* pred : query.CursorPredicates()) {
    Result<PredicateCursor> cursor = MakePredicateCursor(archived, *pred);
    if (!cursor.ok()) return cursor.status();
    uint64_t count = 0;
    while (cursor->valid() && count < sample_limit) {
      ++count;
      CALDERA_RETURN_IF_ERROR(cursor->Next());
    }
    double density = cursor->valid()
                         ? 1.0  // Hit the cap: assume dense.
                         : static_cast<double>(count) / length;
    max_density = std::max(max_density, density);
  }
  return max_density;
}

Result<PlanDecision> PlanQuery(ArchivedStream* archived,
                               const RegularQuery& query, bool want_topk,
                               bool approximation_ok) {
  PlanDecision decision;

  bool has_btc = true;
  for (const Predicate* pred : query.CursorPredicates()) {
    const Predicate* base = pred->is_negation() ? &pred->base() : pred;
    if (archived->btc(base->attribute()) == nullptr) has_btc = false;
  }
  if (!has_btc) {
    decision.method = AccessMethodKind::kScan;
    decision.reason = "missing BT_C index: full scan is the only option";
    return decision;
  }

  CALDERA_ASSIGN_OR_RETURN(decision.estimated_density,
                           EstimateDensity(archived, query));

  if (query.fixed_length()) {
    bool has_btp = true;
    for (size_t i = 0; i < query.num_links(); ++i) {
      const Predicate& primary = query.link(i).primary;
      if (!primary.indexable() ||
          primary.kind() == Predicate::Kind::kRange ||
          archived->btp(primary.attribute()) == nullptr) {
        has_btp = false;
      }
    }
    if (want_topk && has_btp &&
        decision.estimated_density >= kTopkDensityCutoff) {
      decision.method = AccessMethodKind::kTopK;
      decision.reason = "fixed-length top-k on dense data: TA pruning pays";
      return decision;
    }
    if (decision.estimated_density <= kDenseCutoff) {
      decision.method = AccessMethodKind::kBTree;
      decision.reason = "fixed-length on sparse data: cursor intersection";
    } else {
      decision.method = AccessMethodKind::kScan;
      decision.reason =
          "fixed-length on dense data: B+Tree degenerates to a scan";
    }
    return decision;
  }

  // Variable-length.
  if (approximation_ok) {
    decision.method = AccessMethodKind::kSemiIndependent;
    decision.reason = "variable-length, approximation allowed";
    return decision;
  }
  if (archived->mc() != nullptr) {
    decision.method = AccessMethodKind::kMcIndex;
    decision.reason = "variable-length with MC index";
    return decision;
  }
  decision.method = AccessMethodKind::kScan;
  decision.reason = "variable-length without MC index: full scan";
  return decision;
}

}  // namespace caldera
