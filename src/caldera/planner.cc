#include "caldera/planner.h"

#include <algorithm>
#include <cstdio>

#include "caldera/cursor.h"
#include "caldera/intersection.h"

namespace caldera {

namespace {
// Above this density the B+Tree method degenerates into a scan with B+ tree
// overhead (Section 4.2.1), so the planner prefers the scan.
constexpr double kDenseCutoff = 0.8;
// Above this density a top-k query benefits from TA pruning (Section 4.2.2).
constexpr double kTopkDensityCutoff = 0.5;

// Stamps the EXPLAIN fields implied by the decided method.
PlanDecision Finish(PlanDecision decision) {
  decision.cursor = PipelineCursorName(decision.method);
  decision.gap_policy = GapPolicyName(PipelineGapPolicy(decision.method));
  return decision;
}
}  // namespace

std::string PlanDecision::Explain() const {
  char density_buf[32];
  std::snprintf(density_buf, sizeof(density_buf), "%.4f", estimated_density);
  std::string out = std::string("method=") + AccessMethodName(method);
  if (!cursor.empty()) out += " cursor=" + cursor;
  if (!gap_policy.empty()) out += " gap=" + gap_policy;
  out += std::string(" density=") + density_buf;
  if (!reason.empty()) out += " reason=" + reason;
  return out;
}

Result<double> EstimateDensity(ArchivedStream* archived,
                               const RegularQuery& query,
                               uint64_t sample_limit) {
  const uint64_t length = archived->length();
  // Empty stream: nothing is relevant, and count/length below must never
  // divide by zero. Zero-posting predicates fall out of the loop naturally:
  // their cursor starts exhausted, so count stays 0 and density is 0.
  if (length == 0) return 0.0;
  double max_density = 0.0;
  for (const Predicate* pred : query.CursorPredicates()) {
    Result<PredicateCursor> cursor = MakePredicateCursor(archived, *pred);
    if (!cursor.ok()) return cursor.status();
    uint64_t count = 0;
    while (cursor->valid() && count < sample_limit) {
      ++count;
      CALDERA_RETURN_IF_ERROR(cursor->Next());
    }
    double density = cursor->valid()
                         ? 1.0  // Hit the cap: assume dense.
                         : static_cast<double>(count) / length;
    max_density = std::max(max_density, density);
  }
  return max_density;
}

Result<PlanDecision> PlanQuery(ArchivedStream* archived,
                               const RegularQuery& query, bool want_topk,
                               bool approximation_ok) {
  PlanDecision decision;

  const std::vector<const Predicate*> preds = query.CursorPredicates();
  // A predicate base that is not indexable (e.g. the '*' under a Not)
  // breaks every index method and even density estimation; don't plan one
  // silently, and don't let EstimateDensity fail the whole plan.
  bool indexable = !preds.empty();
  bool has_btc = true;
  for (const Predicate* pred : preds) {
    const Predicate* base = pred->is_negation() ? &pred->base() : pred;
    if (!base->indexable()) indexable = false;
    if (archived->btc(base->attribute()) == nullptr) has_btc = false;
  }
  if (!indexable) {
    decision.method = AccessMethodKind::kScan;
    decision.reason =
        "no indexable predicate bases: full scan is the only option";
    return Finish(std::move(decision));
  }
  if (!has_btc) {
    decision.method = AccessMethodKind::kScan;
    decision.reason = "missing BT_C index: full scan is the only option";
    return Finish(std::move(decision));
  }

  CALDERA_ASSIGN_OR_RETURN(decision.estimated_density,
                           EstimateDensity(archived, query));

  if (query.fixed_length()) {
    bool has_btp = true;
    for (size_t i = 0; i < query.num_links(); ++i) {
      const Predicate& primary = query.link(i).primary;
      if (!primary.indexable() ||
          primary.kind() == Predicate::Kind::kRange ||
          archived->btp(primary.attribute()) == nullptr) {
        has_btp = false;
      }
    }
    if (want_topk && has_btp &&
        decision.estimated_density >= kTopkDensityCutoff) {
      decision.method = AccessMethodKind::kTopK;
      decision.reason = "fixed-length top-k on dense data: TA pruning pays";
      return Finish(std::move(decision));
    }
    if (decision.estimated_density <= kDenseCutoff) {
      decision.method = AccessMethodKind::kBTree;
      decision.reason = "fixed-length on sparse data: cursor intersection";
    } else {
      decision.method = AccessMethodKind::kScan;
      decision.reason =
          "fixed-length on dense data: B+Tree degenerates to a scan";
    }
    return Finish(std::move(decision));
  }

  // Variable-length.
  if (approximation_ok) {
    decision.method = AccessMethodKind::kSemiIndependent;
    decision.reason = "variable-length, approximation allowed";
    return Finish(std::move(decision));
  }
  if (archived->mc() != nullptr) {
    decision.method = AccessMethodKind::kMcIndex;
    decision.reason = "variable-length with MC index";
    return Finish(std::move(decision));
  }
  decision.method = AccessMethodKind::kScan;
  decision.reason = "variable-length without MC index: full scan";
  return Finish(std::move(decision));
}

}  // namespace caldera
