#include "caldera/verify.h"

#include <cmath>
#include <map>

#include "common/encoding.h"
#include "index/btc_index.h"
#include "index/btp_index.h"
#include "markov/stream_io.h"

namespace caldera {

namespace {

Status Fail(const std::string& what) { return Status::Corruption(what); }

/// Aggregates one timestep's state marginal into per-attribute-value
/// probabilities (the quantity both index types store).
std::map<uint32_t, double> AttributeMarginal(const Distribution& marginal,
                                             const StreamSchema& schema,
                                             size_t attr) {
  std::map<uint32_t, double> out;
  for (const Distribution::Entry& e : marginal.entries()) {
    out[schema.AttributeValue(e.value, attr)] += e.prob;
  }
  return out;
}

Status VerifyBtc(ArchivedStream* archived, const MarkovianStream& stream,
                 size_t attr, double tol, uint64_t* checked) {
  BTree* tree = archived->btc(attr);
  CALDERA_RETURN_IF_ERROR(tree->CheckInvariants());

  // Expected entry multiset.
  uint64_t expected = 0;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    for (const auto& [value, prob] :
         AttributeMarginal(stream.marginal(t), stream.schema(), attr)) {
      auto got = tree->Get(EncodeBtcKey(value, t));
      CALDERA_RETURN_IF_ERROR(got.status());
      if (!got->has_value()) {
        return Fail("BT_C missing entry (value=" + std::to_string(value) +
                    ", t=" + std::to_string(t) + ")");
      }
      double stored = GetDouble(got->value().data());
      if (std::fabs(stored - std::min(prob, 1.0)) > tol) {
        return Fail("BT_C probability mismatch at t=" + std::to_string(t));
      }
      ++expected;
    }
  }
  if (tree->num_entries() != expected) {
    return Fail("BT_C has " + std::to_string(tree->num_entries()) +
                " entries, expected " + std::to_string(expected));
  }
  *checked += expected;
  return Status::Ok();
}

Status VerifyBtp(ArchivedStream* archived, const MarkovianStream& stream,
                 size_t attr, double tol, uint64_t* checked) {
  BTree* tree = archived->btp(attr);
  CALDERA_RETURN_IF_ERROR(tree->CheckInvariants());
  uint64_t expected = 0;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    for (const auto& [value, prob] :
         AttributeMarginal(stream.marginal(t), stream.schema(), attr)) {
      auto got = tree->Get(EncodeBtpKey(value, std::min(prob, 1.0), t));
      CALDERA_RETURN_IF_ERROR(got.status());
      if (!got->has_value()) {
        return Fail("BT_P missing entry (value=" + std::to_string(value) +
                    ", t=" + std::to_string(t) + ")");
      }
      ++expected;
    }
  }
  if (tree->num_entries() != expected) {
    return Fail("BT_P has " + std::to_string(tree->num_entries()) +
                " entries, expected " + std::to_string(expected));
  }
  *checked += expected;
  return Status::Ok();
}

Status VerifyMc(ArchivedStream* archived, const MarkovianStream& stream,
                uint32_t samples_per_level, double tol, uint64_t* checked) {
  McIndex* mc = archived->mc();
  const uint32_t domain = stream.schema().state_count();
  uint64_t span = 1;
  for (uint32_t level = 1; level <= mc->num_levels(); ++level) {
    span *= mc->alpha();
    uint64_t blocks = (stream.length() - 1) / span;
    if (blocks == 0) break;
    uint64_t step = std::max<uint64_t>(1, blocks / samples_per_level);
    for (uint64_t block = 0; block < blocks; block += step) {
      // The index entry spans [block*span, (block+1)*span]; because min
      // levels are all present, ComputeCpt over that exact range returns
      // the stored entry itself.
      Cpt entry;
      CALDERA_RETURN_IF_ERROR(
          mc->ComputeCpt(block * span, (block + 1) * span, &entry));
      Cpt direct = stream.transition(block * span + 1);
      for (uint64_t t = block * span + 2; t <= (block + 1) * span; ++t) {
        direct = ComposeCpts(direct, stream.transition(t), domain);
      }
      for (const Cpt::Row& row : direct.rows()) {
        for (const Cpt::RowEntry& e : row.entries) {
          if (std::fabs(entry.Probability(row.src, e.dst) - e.prob) > tol) {
            return Fail("MC index entry mismatch at level " +
                        std::to_string(level) + " block " +
                        std::to_string(block));
          }
        }
      }
      ++(*checked);
    }
  }
  return Status::Ok();
}

}  // namespace

std::string VerifyReport::ToString() const {
  return "verified " + std::to_string(timesteps_checked) + " timesteps, " +
         std::to_string(btc_entries_checked) + " BT_C entries, " +
         std::to_string(btp_entries_checked) + " BT_P entries, " +
         std::to_string(mc_entries_checked) + " MC entries";
}

Status VerifyArchivedStream(ArchivedStream* archived,
                            const VerifyOptions& options,
                            VerifyReport* report) {
  *report = VerifyReport{};
  // Load the stream once (also exercises every record's parse path).
  CALDERA_ASSIGN_OR_RETURN(MarkovianStream stream,
                           LoadStream(archived->stream()));
  report->timesteps_checked = stream.length();

  if (options.check_stream) {
    CALDERA_RETURN_IF_ERROR(stream.Validate(options.tolerance));
  }

  for (size_t attr = 0; attr < stream.schema().num_attributes(); ++attr) {
    if (options.check_btc && archived->btc(attr) != nullptr) {
      CALDERA_RETURN_IF_ERROR(VerifyBtc(archived, stream, attr,
                                        options.tolerance,
                                        &report->btc_entries_checked));
    }
    if (options.check_btp && archived->btp(attr) != nullptr) {
      CALDERA_RETURN_IF_ERROR(VerifyBtp(archived, stream, attr,
                                        options.tolerance,
                                        &report->btp_entries_checked));
    }
  }
  if (options.mc_samples_per_level > 0 && archived->mc() != nullptr) {
    CALDERA_RETURN_IF_ERROR(VerifyMc(archived, stream,
                                     options.mc_samples_per_level,
                                     options.tolerance,
                                     &report->mc_entries_checked));
  }
  return Status::Ok();
}

}  // namespace caldera
