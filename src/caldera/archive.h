#ifndef CALDERA_CALDERA_ARCHIVE_H_
#define CALDERA_CALDERA_ARCHIVE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/status.h"
#include "index/join_index.h"
#include "index/mc_index.h"
#include "index/span_cache.h"
#include "markov/stream_io.h"
#include "query/predicate.h"

namespace caldera {

/// How ArchivedStream::Open treats an index that fails to open.
struct OpenStreamOptions {
  size_t pool_pages = 256;
  /// When true, an index file that fails to open (corrupt, truncated, bad
  /// checksum) is skipped — recorded in skipped_indexes() and left nullptr,
  /// exactly like an index that was never built — instead of failing the
  /// whole open. The stream data files themselves must always open. This
  /// is what lets the facade degrade to the naive scan (Algorithm 1) when
  /// an index partition is damaged.
  bool tolerate_corrupt_indexes = false;
};

/// One archived Markovian stream plus whatever indexes have been built for
/// it. Indexes are discovered on Open; absent indexes are simply nullptr
/// and access methods report FailedPrecondition when they need one.
class ArchivedStream {
 public:
  static Result<std::unique_ptr<ArchivedStream>> Open(
      const std::string& dir, size_t pool_pages = 256) {
    return Open(dir, OpenStreamOptions{.pool_pages = pool_pages});
  }
  static Result<std::unique_ptr<ArchivedStream>> Open(
      const std::string& dir, const OpenStreamOptions& options);

  /// One index this handle skipped because it failed to open (only
  /// populated under OpenStreamOptions::tolerate_corrupt_indexes).
  struct SkippedIndex {
    std::string name;  ///< e.g. "btc.attr0.bt", "mc".
    Status error;
  };
  const std::vector<SkippedIndex>& skipped_indexes() const {
    return skipped_indexes_;
  }

  StoredStream* stream() { return stream_.get(); }
  const StreamSchema& schema() const { return stream_->schema(); }
  uint64_t length() const { return stream_->length(); }
  const std::string& dir() const { return dir_; }

  /// BT_C / BT_P over one attribute; nullptr when not built.
  BTree* btc(size_t attr) {
    return attr < btc_.size() ? btc_[attr].get() : nullptr;
  }
  BTree* btp(size_t attr) {
    return attr < btp_.size() ? btp_[attr].get() : nullptr;
  }
  McIndex* mc() { return mc_.get(); }
  JoinIndex* join_index(const std::string& column);

  /// Rebinds the MC index's span-CPT cache. Open installs a small private
  /// cache (kDefaultSpanCacheBytes, epoch 0); the Caldera facade replaces
  /// it with its process-wide shared cache stamped with the handle-cache
  /// epoch, so epoch bumps logically invalidate old entries. stream_id is
  /// derived from the stream directory. No-op when the stream has no MC
  /// index.
  void AttachSpanCache(std::shared_ptr<SpanCptCache> cache, uint64_t epoch);
  /// The attached cache (never null once Open succeeds with an MC index;
  /// null for MC-less streams).
  const std::shared_ptr<SpanCptCache>& span_cache() const {
    return span_cache_;
  }

  /// Budget of the private per-handle cache installed by Open.
  static constexpr size_t kDefaultSpanCacheBytes = 32u << 20;

  /// Aggregated index-page traffic since ResetStats.
  BufferPoolStats IndexIoStats() const;
  void ResetStats();

 private:
  explicit ArchivedStream(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  std::unique_ptr<StoredStream> stream_;
  std::vector<std::unique_ptr<BTree>> btc_;
  std::vector<std::unique_ptr<BTree>> btp_;
  std::unique_ptr<McIndex> mc_;
  std::shared_ptr<SpanCptCache> span_cache_;
  std::map<std::string, std::unique_ptr<JoinIndex>> join_indexes_;
  std::vector<SkippedIndex> skipped_indexes_;
};

/// The on-disk catalog: a root directory with one subdirectory per stream.
/// Streams are written once, then indexed; queries run against
/// ArchivedStream handles.
class StreamArchive {
 public:
  explicit StreamArchive(std::string root) : root_(std::move(root)) {}

  Status Init() { return CreateDirectories(root_); }

  /// Archives `stream` under `name` with the chosen disk layout
  /// (Section 3.4.2).
  Status CreateStream(const std::string& name, const MarkovianStream& stream,
                      DiskLayout layout = DiskLayout::kSeparated,
                      uint32_t page_size = kDefaultPageSize);

  /// Builds the chronological B+ tree index on one attribute.
  Status BuildBtc(const std::string& name, size_t attr,
                  uint32_t page_size = kDefaultPageSize);

  /// Builds the probability-ordered B+ tree index on one attribute.
  Status BuildBtp(const std::string& name, size_t attr,
                  uint32_t page_size = kDefaultPageSize);

  /// Builds the Markov-chain index.
  Status BuildMc(const std::string& name, const McIndexOptions& options = {});

  /// Builds a join index for `column` of `table`.
  Status BuildJoinIndex(const std::string& name, const DimensionTable& table,
                        const std::string& column,
                        uint32_t page_size = kDefaultPageSize);

  /// Opens an archived stream and its indexes.
  Result<std::unique_ptr<ArchivedStream>> OpenStream(
      const std::string& name, size_t pool_pages = 256);
  Result<std::unique_ptr<ArchivedStream>> OpenStream(
      const std::string& name, const OpenStreamOptions& options);

  /// Regenerates every rebuildable index of `name` from the (checksum
  /// verified) stream data files: existing BT_C / BT_P files are rebuilt
  /// for their attributes, and the MC index is rebuilt preserving its alpha
  /// when the old metadata is still readable. Join indexes are left
  /// untouched (rebuilding them needs the dimension table). This is the
  /// recovery path after a Corruption report against an index file.
  Status RebuildIndexes(const std::string& name);

  /// Names of all archived streams, sorted.
  Result<std::vector<std::string>> ListStreams() const;

  bool HasStream(const std::string& name) const;

  std::string StreamDir(const std::string& name) const {
    return root_ + "/" + name;
  }
  const std::string& root() const { return root_; }

 private:
  std::string root_;
};

}  // namespace caldera

#endif  // CALDERA_CALDERA_ARCHIVE_H_
