#include "caldera/batch.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/thread_pool.h"

namespace caldera {

ExecStats BatchResult::TotalStats() const {
  ExecStats total;
  for (const BatchStreamResult& s : streams) total += s.result.stats;
  return total;
}

std::vector<std::pair<std::string, TimestepProbability>>
BatchResult::TopMatches(size_t k, double threshold) const {
  std::vector<std::pair<std::string, TimestepProbability>> all;
  for (const BatchStreamResult& s : streams) {
    for (const TimestepProbability& e : s.result.signal) {
      if (e.prob > threshold) all.emplace_back(s.stream, e);
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second.prob != b.second.prob) return a.second.prob > b.second.prob;
    if (a.first != b.first) return a.first < b.first;
    return a.second.time < b.second.time;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

namespace {

// One stream's execution. Fallback (missing index, corrupt index or page)
// is handled inside Caldera::Execute; the batch flag simply opts every
// stream in.
Result<QueryResult> ExecuteOne(Caldera* system, const std::string& name,
                               const RegularQuery& query,
                               const BatchOptions& options) {
  ExecOptions exec = options.exec;
  exec.fallback_to_scan = exec.fallback_to_scan || options.fallback_to_scan;
  return system->Execute(name, query, exec);
}

Status WrapStreamError(const std::string& name, const Status& st) {
  return Status(st.code(), "stream '" + name + "': " + st.message());
}

}  // namespace

Result<BatchResult> ExecuteBatch(Caldera* system, const RegularQuery& query,
                                 const BatchOptions& options) {
  std::vector<std::string> streams = options.streams;
  if (streams.empty()) {
    CALDERA_ASSIGN_OR_RETURN(streams, system->archive()->ListStreams());
  }

  size_t num_threads = options.num_threads != 0
                           ? options.num_threads
                           : ThreadPool::DefaultThreadCount();
  num_threads = std::min(num_threads, streams.size());

  if (num_threads <= 1) {
    // Sequential path: identical to the pre-parallel engine, including its
    // stop-at-first-error behavior.
    BatchResult batch;
    batch.streams.reserve(streams.size());
    for (const std::string& name : streams) {
      Result<QueryResult> result = ExecuteOne(system, name, query, options);
      if (!result.ok()) return WrapStreamError(name, result.status());
      batch.streams.push_back({name, std::move(*result)});
    }
    return batch;
  }

  // Parallel fan-out, one worker per stream. Each ArchivedStream owns its
  // partition's files and buffer pools, so per-stream state needs no
  // locking — but it is single-threaded, so a name appearing several times
  // in the request is executed by exactly one task (sequentially within
  // it) rather than by racing workers. Slots are preallocated per request
  // index; workers never touch shared batch state.
  std::map<std::string, std::vector<size_t>> indices_by_name;
  for (size_t i = 0; i < streams.size(); ++i) {
    indices_by_name[streams[i]].push_back(i);
  }
  std::vector<Result<QueryResult>> slots(
      streams.size(), Result<QueryResult>(Status::Internal("not executed")));

  {
    ThreadPool pool(num_threads);
    for (const auto& [name, indices] : indices_by_name) {
      const std::string* name_ptr = &name;
      const std::vector<size_t>* indices_ptr = &indices;
      pool.Submit([system, &query, &options, &slots, name_ptr, indices_ptr] {
        for (size_t index : *indices_ptr) {
          slots[index] = ExecuteOne(system, *name_ptr, query, options);
        }
      });
    }
    pool.Wait();
  }

  // Deterministic aggregation: request order for results, and on failure
  // the error of the earliest failing stream — exactly what the sequential
  // run would have reported.
  BatchResult batch;
  batch.streams.reserve(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    if (!slots[i].ok()) return WrapStreamError(streams[i], slots[i].status());
    batch.streams.push_back({streams[i], std::move(*slots[i])});
  }
  return batch;
}

}  // namespace caldera
