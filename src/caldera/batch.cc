#include "caldera/batch.h"

#include <algorithm>

namespace caldera {

double BatchResult::TotalSeconds() const {
  double total = 0;
  for (const BatchStreamResult& s : streams) {
    total += s.result.stats.elapsed_seconds;
  }
  return total;
}

uint64_t BatchResult::TotalRegUpdates() const {
  uint64_t total = 0;
  for (const BatchStreamResult& s : streams) {
    total += s.result.stats.reg_updates;
  }
  return total;
}

std::vector<std::pair<std::string, TimestepProbability>>
BatchResult::TopMatches(size_t k, double threshold) const {
  std::vector<std::pair<std::string, TimestepProbability>> all;
  for (const BatchStreamResult& s : streams) {
    for (const TimestepProbability& e : s.result.signal) {
      if (e.prob > threshold) all.emplace_back(s.stream, e);
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second.prob != b.second.prob) return a.second.prob > b.second.prob;
    if (a.first != b.first) return a.first < b.first;
    return a.second.time < b.second.time;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

Result<BatchResult> ExecuteBatch(Caldera* system, const RegularQuery& query,
                                 const BatchOptions& options) {
  std::vector<std::string> streams = options.streams;
  if (streams.empty()) {
    CALDERA_ASSIGN_OR_RETURN(streams, system->archive()->ListStreams());
  }
  BatchResult batch;
  batch.streams.reserve(streams.size());
  for (const std::string& name : streams) {
    Result<QueryResult> result = system->Execute(name, query, options.exec);
    if (!result.ok() &&
        result.status().code() == StatusCode::kFailedPrecondition &&
        options.fallback_to_scan) {
      ExecOptions scan_options = options.exec;
      scan_options.method = AccessMethodKind::kScan;
      result = system->Execute(name, query, scan_options);
    }
    if (!result.ok()) {
      return Status(result.status().code(),
                    "stream '" + name + "': " + result.status().message());
    }
    batch.streams.push_back({name, std::move(*result)});
  }
  return batch;
}

}  // namespace caldera
