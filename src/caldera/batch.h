#ifndef CALDERA_CALDERA_BATCH_H_
#define CALDERA_CALDERA_BATCH_H_

#include <string>
#include <vector>

#include "caldera/system.h"

namespace caldera {

/// Result of one stream within a batch execution.
struct BatchStreamResult {
  std::string stream;
  QueryResult result;
};

/// Aggregate over a batch execution. `streams` is always in request order
/// (or ListStreams order), independent of how many threads executed it.
struct BatchResult {
  std::vector<BatchStreamResult> streams;

  /// Field-wise sum of the per-stream ExecStats (elapsed_seconds is total
  /// work across streams, not wall-clock makespan of a parallel run).
  ExecStats TotalStats() const;
  /// Sum of per-stream wall-clock execution times.
  double TotalSeconds() const { return TotalStats().elapsed_seconds; }
  /// Sum of per-stream Reg updates.
  uint64_t TotalRegUpdates() const { return TotalStats().reg_updates; }
  /// All matches across streams above `threshold`, tagged with their
  /// stream, sorted by decreasing probability.
  std::vector<std::pair<std::string, TimestepProbability>> TopMatches(
      size_t k, double threshold = 0.0) const;
};

/// Runs one Regular query against every stream in the archive (or a chosen
/// subset). This is the paper's deployment setting — one Markovian stream
/// per tag, partitioned on disk by stream (Section 3.4.2) — so each
/// execution touches only its own partition's files, the total cost is the
/// sum of per-stream costs, and the streams are embarrassingly parallel:
/// with num_threads > 1 a fixed-size thread pool fans one worker out per
/// stream. Output ordering, per-stream results, and error reporting are
/// deterministic and identical to the sequential run.
///
/// Streams that cannot run the requested method (e.g. a missing index)
/// surface as an error unless `fallback_to_scan` allows falling back.
struct BatchOptions {
  ExecOptions exec;
  /// Restrict to these streams (empty = all archived streams).
  std::vector<std::string> streams;
  /// On a missing index (FailedPrecondition) or a damaged one (Corruption /
  /// IoError), retry the stream with the naive scan instead of failing the
  /// batch. Equivalent to setting exec.fallback_to_scan; rescued streams
  /// report stats.scan_fallbacks / stats.corruption_events.
  bool fallback_to_scan = false;
  /// Worker threads for the fan-out. 0 = hardware concurrency, 1 = run
  /// sequentially on the calling thread (the pre-parallel behavior).
  size_t num_threads = 0;
};

Result<BatchResult> ExecuteBatch(Caldera* system, const RegularQuery& query,
                                 const BatchOptions& options = {});

}  // namespace caldera

#endif  // CALDERA_CALDERA_BATCH_H_
