#include "caldera/access_method.h"

#include <algorithm>

namespace caldera {

const char* AccessMethodName(AccessMethodKind kind) {
  switch (kind) {
    case AccessMethodKind::kAuto:
      return "auto";
    case AccessMethodKind::kScan:
      return "scan";
    case AccessMethodKind::kBTree:
      return "btree";
    case AccessMethodKind::kTopK:
      return "topk-btree";
    case AccessMethodKind::kMcIndex:
      return "mc-index";
    case AccessMethodKind::kSemiIndependent:
      return "semi-independent";
  }
  return "unknown";
}

QuerySignal FilterSignal(const QuerySignal& signal, double threshold) {
  QuerySignal out;
  for (const TimestepProbability& e : signal) {
    if (e.prob > threshold) out.push_back(e);
  }
  return out;
}

QuerySignal TopKOfSignal(const QuerySignal& signal, size_t k) {
  QuerySignal out = signal;
  std::sort(out.begin(), out.end(),
            [](const TimestepProbability& a, const TimestepProbability& b) {
              if (a.prob != b.prob) return a.prob > b.prob;
              return a.time < b.time;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace caldera
