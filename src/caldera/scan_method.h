#ifndef CALDERA_CALDERA_SCAN_METHOD_H_
#define CALDERA_CALDERA_SCAN_METHOD_H_

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "query/regular_query.h"

namespace caldera {

/// Algorithm 1 — the naive access method: initializes Reg with the first
/// marginal and streams every CPT on disk through it. The baseline every
/// optimized method is compared against; also the only option when no
/// suitable index exists.
Result<QueryResult> RunScanMethod(ArchivedStream* archived,
                                  const RegularQuery& query);

}  // namespace caldera

#endif  // CALDERA_CALDERA_SCAN_METHOD_H_
