#ifndef CALDERA_CALDERA_TOPK_METHOD_H_
#define CALDERA_CALDERA_TOPK_METHOD_H_

#include "caldera/access_method.h"
#include "caldera/archive.h"
#include "query/regular_query.h"

namespace caldera {

/// Algorithm 3 — the top-k B+Tree access method for fixed-length queries:
/// adapts the Threshold Algorithm to Markovian streams. Candidate intervals
/// are generated in decreasing order of per-link marginal probability via
/// BT_P cursors; because a link's marginal upper-bounds the interval's
/// match probability, the walk terminates as soon as no unseen interval can
/// beat the current k-th best match.
///
/// Returns the k best matches in `signal`, sorted by decreasing
/// probability (ties broken by time). Equality and set predicates only (the
/// paper's top-k method does not support range predicates).
Result<QueryResult> RunTopKMethod(ArchivedStream* archived,
                                  const RegularQuery& query, size_t k);

/// The threshold variant of Section 3.2: returns every match with
/// probability strictly above `threshold`, using the same sorted access and
/// marginal upper bounds — the walk stops as soon as no unseen interval can
/// clear the threshold. Signal is sorted by decreasing probability.
Result<QueryResult> RunThresholdMethod(ArchivedStream* archived,
                                       const RegularQuery& query,
                                       double threshold);

}  // namespace caldera

#endif  // CALDERA_CALDERA_TOPK_METHOD_H_
