#include "caldera/system.h"

#include <cstdio>

#include "caldera/executor.h"

namespace caldera {

Result<std::shared_ptr<ArchivedStream>> Caldera::GetStream(
    const std::string& name, size_t pool_pages) {
  uint64_t open_epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_streams_.find(name);
    if (it != open_streams_.end() && it->second.epoch == epoch_) {
      return it->second.stream;
    }
    open_epoch = epoch_;
  }
  // Open outside the lock: concurrent opens of *different* streams must not
  // serialize on each other (ExecuteBatch opens one stream per worker).
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<ArchivedStream> opened,
                           archive_.OpenStream(name, pool_pages));
  // Rebind the facade's shared span cache under the epoch of this open, so
  // composed span CPTs are reused across queries, handles, and batch
  // workers — and orphaned wholesale when the epoch advances.
  opened->AttachSpanCache(span_cache_, open_epoch);
  std::shared_ptr<ArchivedStream> stream = std::move(opened);
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ != open_epoch) return stream;  // Invalidated mid-open: serve
                                            // the handle, don't cache it.
  auto it = open_streams_.find(name);
  if (it != open_streams_.end() && it->second.epoch == epoch_) {
    return it->second.stream;  // A racing open won; share its handle.
  }
  open_streams_[name] = CachedHandle{epoch_, stream};
  return stream;
}

uint64_t Caldera::InvalidateStreams() {
  std::lock_guard<std::mutex> lock(mu_);
  open_streams_.clear();
  return ++epoch_;
}

void Caldera::NotifyStreamMutation() {
  InvalidateStreams();
  span_cache_->Clear();
}

std::shared_mutex* Caldera::StreamMutationLock(
    const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<std::shared_mutex>& slot = stream_locks_[stream_name];
  if (slot == nullptr) slot = std::make_unique<std::shared_mutex>();
  return slot.get();
}

Result<std::unique_ptr<StreamIngestor>> Caldera::OpenForIngest(
    const std::string& stream_name) {
  if (!archive_.HasStream(stream_name)) {
    return Status::NotFound("no stream named '" + stream_name +
                            "' in archive");
  }
  StreamIngestor::Options options;
  options.apply_mutex = StreamMutationLock(stream_name);
  // Epoch-bump on every commit (and on the recovery replay inside Open):
  // queries in flight finish against their snapshot handles; the next
  // GetStream reopens and sees the appended timesteps.
  options.on_commit = [this](uint64_t) { NotifyStreamMutation(); };
  return StreamIngestor::Open(archive_.StreamDir(stream_name),
                              std::move(options));
}

uint64_t Caldera::stream_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Result<PlanDecision> Caldera::Plan(const std::string& stream_name,
                                   const RegularQuery& query,
                                   const ExecOptions& options) {
  std::shared_lock<std::shared_mutex> read_guard(
      *StreamMutationLock(stream_name));
  CALDERA_ASSIGN_OR_RETURN(std::shared_ptr<ArchivedStream> archived,
                           GetStream(stream_name, options.pool_pages));
  if (options.method != AccessMethodKind::kAuto) {
    PlanDecision decision;
    decision.method = options.method;
    decision.reason = "explicitly requested";
    decision.cursor = PipelineCursorName(options.method);
    decision.gap_policy = GapPolicyName(PipelineGapPolicy(options.method));
    return decision;
  }
  return PlanQuery(archived.get(), query,
                   options.k > 0 || options.threshold > 0,
                   options.approximation_ok);
}

Result<QueryResult> Caldera::Execute(const std::string& stream_name,
                                     const RegularQuery& query,
                                     const ExecOptions& options) {
  // Shared hold on the stream's mutation lock for the whole execution: an
  // ingest apply or index rebuild (exclusive holders) cannot mutate the
  // B+ trees this query is reading mid-flight, so the query sees either the
  // pre- or post-mutation stream, never a mix. The shared_ptr additionally
  // keeps the handle alive if the cache is invalidated mid-query.
  std::shared_lock<std::shared_mutex> read_guard(
      *StreamMutationLock(stream_name));
  std::shared_ptr<ArchivedStream> handle;
  uint64_t corruption_events = 0;
  {
    Result<std::shared_ptr<ArchivedStream>> opened =
        GetStream(stream_name, options.pool_pages);
    if (opened.ok()) {
      handle = std::move(*opened);
    } else if (options.fallback_to_scan &&
               ScanFallbackApplies(opened.status())) {
      // An index refused to open (bad checksum, truncation, ...). Re-open
      // in degraded mode: unopenable indexes are skipped, so the planner
      // sees them as never built and picks a method that works without
      // them. Degraded handles are deliberately not admitted to the cache.
      OpenStreamOptions degraded;
      degraded.pool_pages = options.pool_pages;
      degraded.tolerate_corrupt_indexes = true;
      CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<ArchivedStream> tolerant,
                               archive_.OpenStream(stream_name, degraded));
      corruption_events = tolerant->skipped_indexes().size();
      handle = std::move(tolerant);
    } else {
      return opened.status();
    }
  }

  AccessMethodKind method = options.method;
  std::string reason = "explicitly requested";
  double density = -1.0;  // < 0: the planner did not run.
  if (method == AccessMethodKind::kAuto) {
    Result<PlanDecision> decision =
        PlanQuery(handle.get(), query, options.k > 0 || options.threshold > 0,
                  options.approximation_ok);
    if (decision.ok()) {
      method = decision->method;
      reason = decision->reason;
      density = decision->estimated_density;
    } else if (options.fallback_to_scan &&
               ScanFallbackApplies(decision.status())) {
      // Planning itself touches indexes (density estimation); a corrupt
      // page there degrades to the scan as well.
      if (decision.status().code() == StatusCode::kCorruption) {
        ++corruption_events;
      }
      method = AccessMethodKind::kScan;
      reason = "planning failed (" + decision.status().message() +
               "): degraded to scan";
    } else {
      return decision.status();
    }
  }

  // The executor owns the method dispatch, the threshold/top-k
  // post-filters, and the mid-query scan rescue.
  Result<QueryResult> result =
      ExecutePipelineMethod(handle.get(), query, method, options);
  if (!result.ok()) return result.status();
  result->stats.corruption_events += corruption_events;
  if (corruption_events > 0 && method == AccessMethodKind::kScan &&
      options.method != AccessMethodKind::kScan) {
    // The scan was forced by damage discovered at open/plan time.
    ++result->stats.scan_fallbacks;
  }

  // EXPLAIN plumbing: prepend the decided method and append the planner's
  // view to the executor's cursor/gap/prefetch summary. result->method can
  // differ from `method` after a mid-query rescue.
  result->plan_reason = reason;
  std::string summary =
      std::string("method=") + AccessMethodName(result->method);
  if (!result->stats.plan_summary.empty()) {
    summary += " " + result->stats.plan_summary;
  }
  if (density >= 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " density=%.4f", density);
    summary += buf;
  }
  summary += " reason=" + reason;
  result->stats.plan_summary = std::move(summary);
  return result;
}

Status Caldera::RebuildIndexes(const std::string& stream_name) {
  // Exclusive: rebuild rewrites index files that open handles read in
  // place. Queries (shared holders) drain first, and the mutation
  // notification lands before any of them can reopen.
  std::unique_lock<std::shared_mutex> guard(
      *StreamMutationLock(stream_name));
  CALDERA_RETURN_IF_ERROR(archive_.RebuildIndexes(stream_name));
  NotifyStreamMutation();
  return Status::Ok();
}

}  // namespace caldera
