#include "caldera/system.h"

#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "caldera/topk_method.h"

namespace caldera {

Result<std::shared_ptr<ArchivedStream>> Caldera::GetStream(
    const std::string& name, size_t pool_pages) {
  uint64_t open_epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_streams_.find(name);
    if (it != open_streams_.end() && it->second.epoch == epoch_) {
      return it->second.stream;
    }
    open_epoch = epoch_;
  }
  // Open outside the lock: concurrent opens of *different* streams must not
  // serialize on each other (ExecuteBatch opens one stream per worker).
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<ArchivedStream> opened,
                           archive_.OpenStream(name, pool_pages));
  std::shared_ptr<ArchivedStream> stream = std::move(opened);
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ != open_epoch) return stream;  // Invalidated mid-open: serve
                                            // the handle, don't cache it.
  auto it = open_streams_.find(name);
  if (it != open_streams_.end() && it->second.epoch == epoch_) {
    return it->second.stream;  // A racing open won; share its handle.
  }
  open_streams_[name] = CachedHandle{epoch_, stream};
  return stream;
}

uint64_t Caldera::InvalidateStreams() {
  std::lock_guard<std::mutex> lock(mu_);
  open_streams_.clear();
  return ++epoch_;
}

uint64_t Caldera::stream_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Result<PlanDecision> Caldera::Plan(const std::string& stream_name,
                                   const RegularQuery& query,
                                   const ExecOptions& options) {
  CALDERA_ASSIGN_OR_RETURN(std::shared_ptr<ArchivedStream> archived,
                           GetStream(stream_name, options.pool_pages));
  if (options.method != AccessMethodKind::kAuto) {
    PlanDecision decision;
    decision.method = options.method;
    decision.reason = "explicitly requested";
    return decision;
  }
  return PlanQuery(archived.get(), query,
                   options.k > 0 || options.threshold > 0,
                   options.approximation_ok);
}

Result<QueryResult> Caldera::Execute(const std::string& stream_name,
                                     const RegularQuery& query,
                                     const ExecOptions& options) {
  // The shared_ptr keeps the stream alive for the whole execution even if
  // another thread invalidates the cache mid-query.
  CALDERA_ASSIGN_OR_RETURN(std::shared_ptr<ArchivedStream> handle,
                           GetStream(stream_name, options.pool_pages));
  ArchivedStream* archived = handle.get();
  CALDERA_ASSIGN_OR_RETURN(PlanDecision decision,
                           Plan(stream_name, query, options));

  auto finalize = [&options](QueryResult result) {
    if (options.threshold > 0) {
      result.signal = FilterSignal(result.signal, options.threshold);
    }
    if (options.k > 0) result.signal = TopKOfSignal(result.signal, options.k);
    return result;
  };

  switch (decision.method) {
    case AccessMethodKind::kScan: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunScanMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kBTree: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunBTreeMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kTopK:
      if (options.threshold > 0) {
        return RunThresholdMethod(archived, query, options.threshold);
      }
      return RunTopKMethod(archived, query,
                           options.k > 0 ? options.k : size_t{1});
    case AccessMethodKind::kMcIndex: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunMcMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kSemiIndependent: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunSemiIndependentMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kAuto:
      break;
  }
  return Status::Internal("planner returned kAuto");
}

}  // namespace caldera
