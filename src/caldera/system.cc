#include "caldera/system.h"

#include "caldera/btree_method.h"
#include "caldera/mc_method.h"
#include "caldera/scan_method.h"
#include "caldera/semi_independent_method.h"
#include "caldera/topk_method.h"

namespace caldera {

Result<ArchivedStream*> Caldera::GetStream(const std::string& name,
                                           size_t pool_pages) {
  auto it = open_streams_.find(name);
  if (it != open_streams_.end()) return it->second.get();
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<ArchivedStream> stream,
                           archive_.OpenStream(name, pool_pages));
  ArchivedStream* raw = stream.get();
  open_streams_[name] = std::move(stream);
  return raw;
}

Result<PlanDecision> Caldera::Plan(const std::string& stream_name,
                                   const RegularQuery& query,
                                   const ExecOptions& options) {
  CALDERA_ASSIGN_OR_RETURN(ArchivedStream* archived,
                           GetStream(stream_name, options.pool_pages));
  if (options.method != AccessMethodKind::kAuto) {
    PlanDecision decision;
    decision.method = options.method;
    decision.reason = "explicitly requested";
    return decision;
  }
  return PlanQuery(archived, query, options.k > 0 || options.threshold > 0,
                   options.approximation_ok);
}

Result<QueryResult> Caldera::Execute(const std::string& stream_name,
                                     const RegularQuery& query,
                                     const ExecOptions& options) {
  CALDERA_ASSIGN_OR_RETURN(ArchivedStream* archived,
                           GetStream(stream_name, options.pool_pages));
  CALDERA_ASSIGN_OR_RETURN(PlanDecision decision,
                           Plan(stream_name, query, options));

  auto finalize = [&options](QueryResult result) {
    if (options.threshold > 0) {
      result.signal = FilterSignal(result.signal, options.threshold);
    }
    if (options.k > 0) result.signal = TopKOfSignal(result.signal, options.k);
    return result;
  };

  switch (decision.method) {
    case AccessMethodKind::kScan: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunScanMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kBTree: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunBTreeMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kTopK:
      if (options.threshold > 0) {
        return RunThresholdMethod(archived, query, options.threshold);
      }
      return RunTopKMethod(archived, query,
                           options.k > 0 ? options.k : size_t{1});
    case AccessMethodKind::kMcIndex: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunMcMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kSemiIndependent: {
      CALDERA_ASSIGN_OR_RETURN(QueryResult result,
                               RunSemiIndependentMethod(archived, query));
      return finalize(std::move(result));
    }
    case AccessMethodKind::kAuto:
      break;
  }
  return Status::Internal("planner returned kAuto");
}

}  // namespace caldera
