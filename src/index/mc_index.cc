#include "index/mc_index.h"

#include <algorithm>
#include <chrono>

#include "common/encoding.h"
#include "common/logging.h"
#include "storage/file.h"

namespace caldera {

namespace {
constexpr char kMcMagic[8] = {'C', 'L', 'D', 'R', 'M', 'C', 'I', '1'};

std::string LevelPath(const std::string& dir, uint32_t level) {
  return dir + "/L" + std::to_string(level) + ".rec";
}

void TruncateCptRows(Cpt* cpt, double eps) {
  if (eps <= 0) return;
  Cpt out;
  for (const Cpt::Row& row : cpt->rows()) {
    std::vector<Cpt::RowEntry> kept;
    kept.reserve(row.entries.size());
    for (const Cpt::RowEntry& e : row.entries) {
      if (e.prob >= eps) kept.push_back(e);
    }
    if (!kept.empty()) out.SetRow(row.src, std::move(kept));
  }
  *cpt = std::move(out);
}

// Fixed metadata prefix: magic, alpha, num_levels, stream_length, domain.
constexpr size_t kMetaPrefixSize = 28;
// Build options appended after the level counts (newer files only):
// truncate_eps f64, max_span u64, page_size u32.
constexpr size_t kMetaOptionsSize = 20;

// Writes mc.meta atomically enough for our purposes (the ingest WAL
// snapshots the old contents before any in-place mutation).
Status WriteMcMeta(const std::string& dir, uint64_t stream_length,
                   uint32_t domain, const std::vector<uint64_t>& level_counts,
                   const McIndexOptions& options) {
  std::string meta(kMcMagic, 8);
  PutFixed32(options.alpha, &meta);
  PutFixed32(static_cast<uint32_t>(level_counts.size()), &meta);
  PutFixed64(stream_length, &meta);
  PutFixed32(domain, &meta);
  for (uint64_t count : level_counts) PutFixed64(count, &meta);
  PutDouble(options.truncate_eps, &meta);
  PutFixed64(options.max_span, &meta);
  PutFixed32(options.page_size, &meta);
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::OpenOrCreate(dir + "/mc.meta"));
  CALDERA_RETURN_IF_ERROR(f->Truncate(0));
  CALDERA_RETURN_IF_ERROR(f->Append(meta));
  return f->Sync();
}

Result<McMetaSummary> ReadMcMeta(const std::string& dir) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::OpenReadOnly(dir + "/mc.meta"));
  std::string meta(f->size(), '\0');
  CALDERA_RETURN_IF_ERROR(f->ReadAt(0, meta.size(), meta.data()));
  if (meta.size() < kMetaPrefixSize ||
      meta.compare(0, 8, kMcMagic, 8) != 0) {
    return Status::Corruption("bad MC index meta in " + dir);
  }
  McMetaSummary out;
  const uint32_t alpha = GetFixed32(meta.data() + 8);
  const uint32_t num_levels = GetFixed32(meta.data() + 12);
  out.stream_length = GetFixed64(meta.data() + 16);
  out.domain = GetFixed32(meta.data() + 24);
  if (alpha < 2) return Status::Corruption("bad MC alpha in " + dir);
  size_t offset = kMetaPrefixSize;
  if (meta.size() < offset + 8 * uint64_t{num_levels}) {
    return Status::Corruption("truncated MC level counts in " + dir);
  }
  out.level_counts.reserve(num_levels);
  for (uint32_t i = 0; i < num_levels; ++i, offset += 8) {
    out.level_counts.push_back(GetFixed64(meta.data() + offset));
  }
  out.options.alpha = alpha;
  if (meta.size() >= offset + kMetaOptionsSize) {
    out.options.truncate_eps = GetDouble(meta.data() + offset);
    out.options.max_span = GetFixed64(meta.data() + offset + 8);
    out.options.page_size = GetFixed32(meta.data() + offset + 16);
  }
  return out;
}

}  // namespace

Status McIndex::Build(const MarkovianStream& stream, const std::string& dir,
                      const McIndexOptions& options) {
  if (options.alpha < 2) {
    return Status::InvalidArgument("MC index alpha must be >= 2");
  }
  if (stream.length() < 2) {
    return Status::InvalidArgument("stream too short for an MC index");
  }
  CALDERA_RETURN_IF_ERROR(CreateDirectories(dir));

  const uint64_t num_transitions = stream.length() - 1;
  const uint32_t domain = stream.schema().state_count();
  uint64_t max_span = options.max_span == 0
                          ? num_transitions
                          : std::min(options.max_span, num_transitions);

  // Level 1 entries composed from raw transitions; level i from level i-1.
  // `prev` holds the previous level's entries in memory (halving each
  // level, so peak memory is ~2x level 1).
  std::vector<Cpt> prev;
  std::vector<uint64_t> level_counts;
  uint32_t level = 1;
  uint64_t span = options.alpha;
  std::string record;
  while (span <= max_span) {
    uint64_t count = num_transitions / span;
    if (count == 0) break;
    std::vector<Cpt> current;
    current.reserve(count);
    CALDERA_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordFileWriter> writer,
        RecordFileWriter::Create(LevelPath(dir, level), options.page_size));
    for (uint64_t k = 0; k < count; ++k) {
      Cpt entry;
      if (level == 1) {
        // Compose raw transitions k*alpha+1 .. (k+1)*alpha.
        entry = stream.transition(k * span + 1);
        for (uint64_t s = 2; s <= span; ++s) {
          entry = ComposeCpts(entry, stream.transition(k * span + s), domain);
        }
      } else {
        entry = prev[k * options.alpha];
        for (uint32_t j = 1; j < options.alpha; ++j) {
          entry = ComposeCpts(entry, prev[k * options.alpha + j], domain);
        }
      }
      TruncateCptRows(&entry, options.truncate_eps);
      record.clear();
      entry.AppendTo(&record);
      CALDERA_RETURN_IF_ERROR(writer->Append(record).status());
      current.push_back(std::move(entry));
    }
    CALDERA_RETURN_IF_ERROR(writer->Finalize());
    level_counts.push_back(count);
    prev = std::move(current);
    ++level;
    span *= options.alpha;
  }

  return WriteMcMeta(dir, stream.length(), domain, level_counts, options);
}

Result<McIndexOptions> McIndex::ReadBuildOptions(const std::string& dir) {
  CALDERA_ASSIGN_OR_RETURN(McMetaSummary meta, ReadMcMeta(dir));
  return meta.options;
}

Result<McMetaSummary> McIndex::ReadMeta(const std::string& dir) {
  return ReadMcMeta(dir);
}

Status McIndex::Extend(const std::string& dir, TransitionSource transitions,
                       uint64_t new_length, McExtendStats* stats) {
  CALDERA_ASSIGN_OR_RETURN(McMetaSummary meta, ReadMcMeta(dir));
  const McIndexOptions& options = meta.options;
  if (new_length < meta.stream_length) {
    return Status::InvalidArgument("MC index extends forward only (" +
                                   std::to_string(meta.stream_length) +
                                   " -> " + std::to_string(new_length) + ")");
  }
  if (new_length == meta.stream_length) return Status::Ok();

  const uint64_t num_transitions = new_length - 1;
  const uint64_t max_span =
      options.max_span == 0 ? num_transitions
                            : std::min(options.max_span, num_transitions);

  // Walk the levels bottom-up exactly as Build does, but only compose the
  // newly completed blocks of each level's right spine. Level i composes
  // from level i-1's *stored* (already truncated) entries, so the result is
  // byte-identical to a from-scratch build.
  std::vector<uint64_t> new_counts;
  uint32_t level = 1;
  uint64_t span = options.alpha;
  std::string record;
  Cpt entry;
  Cpt part;
  while (span <= max_span) {
    const uint64_t new_count = num_transitions / span;
    if (new_count == 0) break;
    const uint64_t old_count =
        level <= meta.level_counts.size() ? meta.level_counts[level - 1] : 0;
    if (new_count > old_count) {
      std::unique_ptr<RecordFileWriter> writer;
      if (level <= meta.level_counts.size()) {
        CALDERA_ASSIGN_OR_RETURN(
            writer, RecordFileWriter::OpenForAppend(LevelPath(dir, level)));
        if (writer->num_records() != old_count) {
          return Status::Corruption(
              "MC level " + std::to_string(level) + " holds " +
              std::to_string(writer->num_records()) + " entries but meta says " +
              std::to_string(old_count));
        }
      } else {
        CALDERA_ASSIGN_OR_RETURN(
            writer,
            RecordFileWriter::Create(LevelPath(dir, level), options.page_size));
        if (stats != nullptr) ++stats->levels_added;
      }
      // Source for compositions: raw transitions at level 1, the previous
      // level's record file (extended and finalized on the prior iteration)
      // above that.
      std::unique_ptr<RecordFileReader> prev;
      if (level > 1) {
        CALDERA_ASSIGN_OR_RETURN(
            prev, RecordFileReader::Open(LevelPath(dir, level - 1),
                                         /*pool_pages=*/4));
      }
      for (uint64_t k = old_count; k < new_count; ++k) {
        if (level == 1) {
          CALDERA_RETURN_IF_ERROR(transitions(k * span + 1, &entry));
          for (uint64_t s = 2; s <= span; ++s) {
            CALDERA_RETURN_IF_ERROR(transitions(k * span + s, &part));
            entry = ComposeCpts(entry, part, meta.domain);
          }
        } else {
          CALDERA_RETURN_IF_ERROR(prev->Get(k * options.alpha, &record));
          size_t offset = 0;
          CALDERA_ASSIGN_OR_RETURN(entry, Cpt::Parse(record, &offset));
          for (uint32_t j = 1; j < options.alpha; ++j) {
            CALDERA_RETURN_IF_ERROR(
                prev->Get(k * options.alpha + j, &record));
            offset = 0;
            CALDERA_ASSIGN_OR_RETURN(part, Cpt::Parse(record, &offset));
            entry = ComposeCpts(entry, part, meta.domain);
          }
        }
        TruncateCptRows(&entry, options.truncate_eps);
        record.clear();
        entry.AppendTo(&record);
        CALDERA_RETURN_IF_ERROR(writer->Append(record).status());
        if (stats != nullptr) ++stats->nodes_recomputed;
      }
      CALDERA_RETURN_IF_ERROR(writer->Finalize());
      if (stats != nullptr) ++stats->levels_touched;
    }
    new_counts.push_back(new_count);
    ++level;
    span *= options.alpha;
  }
  return WriteMcMeta(dir, new_length, meta.domain, new_counts, options);
}

Result<std::unique_ptr<McIndex>> McIndex::Open(const std::string& dir,
                                               TransitionSource transitions,
                                               size_t pool_pages) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::OpenReadOnly(dir + "/mc.meta"));
  std::string meta(f->size(), '\0');
  CALDERA_RETURN_IF_ERROR(f->ReadAt(0, meta.size(), meta.data()));
  if (meta.size() < 28 || meta.compare(0, 8, kMcMagic, 8) != 0) {
    return Status::Corruption("bad MC index meta in " + dir);
  }
  auto index = std::unique_ptr<McIndex>(new McIndex());
  index->dir_ = dir;
  index->alpha_ = GetFixed32(meta.data() + 8);
  uint32_t num_levels = GetFixed32(meta.data() + 12);
  index->stream_length_ = GetFixed64(meta.data() + 16);
  index->domain_size_ = GetFixed32(meta.data() + 24);
  index->transitions_ = std::move(transitions);
  if (index->alpha_ < 2) return Status::Corruption("bad MC alpha");

  index->levels_.resize(num_levels + 1);  // [0] unused (raw stream).
  index->level_spans_.resize(num_levels + 1);
  index->level_spans_[0] = 1;
  uint64_t span = 1;
  for (uint32_t level = 1; level <= num_levels; ++level) {
    span *= index->alpha_;
    index->level_spans_[level] = span;
    CALDERA_ASSIGN_OR_RETURN(
        index->levels_[level],
        RecordFileReader::Open(LevelPath(dir, level), pool_pages));
  }
  return index;
}

Status McIndex::SetMinLevel(uint32_t level) {
  if (level < 1 || level > levels_.size()) {
    return Status::InvalidArgument("min level must be in [1, num_levels+1]");
  }
  min_level_ = level;
  return Status::Ok();
}

Status McIndex::FetchEntry(uint32_t level, uint64_t block, Cpt* out) {
  ++entry_fetches_;
  CALDERA_RETURN_IF_ERROR(levels_[level]->Get(block, &scratch_));
  size_t offset = 0;
  CALDERA_ASSIGN_OR_RETURN(*out, Cpt::Parse(scratch_, &offset));
  return Status::Ok();
}

Status McIndex::ComputeCpt(uint64_t from, uint64_t to, Cpt* out) {
  if (from >= to || to >= stream_length_) {
    return Status::InvalidArgument("ComputeCpt requires from < to < length");
  }
  bool have_result = false;
  Cpt result;
  Cpt block;
  uint64_t cur = from;
  const uint32_t max_level = static_cast<uint32_t>(levels_.size()) - 1;
  while (cur < to) {
    // Pick the largest stored level whose aligned block fits in [cur, to);
    // fall back to a raw transition when none (or below min_level_) does.
    uint32_t chosen = 0;
    for (uint32_t level = max_level; level >= min_level_ && level >= 1;
         --level) {
      uint64_t span = level_spans_[level];
      if (cur % span == 0 && cur + span <= to &&
          cur / span < levels_[level]->num_records()) {
        chosen = level;
        break;
      }
    }
    if (chosen == 0) {
      ++raw_fetches_;
      CALDERA_RETURN_IF_ERROR(transitions_(cur + 1, &block));
      cur += 1;
    } else {
      CALDERA_RETURN_IF_ERROR(
          FetchEntry(chosen, cur / level_spans_[chosen], &block));
      cur += level_spans_[chosen];
    }
    if (!have_result) {
      result = std::move(block);
      have_result = true;
    } else {
      ++compositions_;
      const auto start = std::chrono::steady_clock::now();
      result = ComposeCpts(result, block, domain_size_);
      compose_seconds_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    }
  }
  *out = std::move(result);
  return Status::Ok();
}

SpanKey McIndex::CacheKey(uint64_t from, uint64_t to) const {
  SpanKey key = span_cache_.KeyFor(from, to);
  // With truncation the composed span depends on which levels supplied it,
  // so a non-default min level must hash to a different entry.
  if (min_level_ != 1) {
    key.condition_fp = FingerprintCombine(key.condition_fp, min_level_);
  }
  return key;
}

Result<std::shared_ptr<const Cpt>> McIndex::GetSpanCpt(uint64_t from,
                                                       uint64_t to) {
  if (span_cache_.valid() && to >= from + 2) {
    const SpanKey key = CacheKey(from, to);
    if (std::shared_ptr<const Cpt> cached = span_cache_.cache->Get(key)) {
      ++span_cache_hits_;
      return cached;
    }
    ++span_cache_misses_;
    Cpt composed;
    CALDERA_RETURN_IF_ERROR(ComputeCpt(from, to, &composed));
    auto shared = std::make_shared<const Cpt>(std::move(composed));
    // Build the CSR kernel view before publishing so every consumer of
    // this cache entry propagates through the one flattened copy.
    shared->csr();
    span_cache_.cache->Put(key, shared);
    return shared;
  }
  Cpt composed;
  CALDERA_RETURN_IF_ERROR(ComputeCpt(from, to, &composed));
  return std::make_shared<const Cpt>(std::move(composed));
}

std::shared_ptr<const Cpt> McIndex::TryCachedSpan(uint64_t from, uint64_t to) {
  if (!span_cache_.valid() || to < from + 2) return nullptr;
  std::shared_ptr<const Cpt> cached = span_cache_.cache->Get(CacheKey(from, to));
  if (cached != nullptr) {
    ++span_cache_hits_;
  } else {
    ++span_cache_misses_;
  }
  return cached;
}

uint64_t McIndex::StoredBytes() const {
  uint64_t total = 0;
  for (uint32_t level = std::max(1u, min_level_); level < levels_.size();
       ++level) {
    total += levels_[level]->data_bytes();
  }
  return total;
}

void McIndex::ResetStats() {
  entry_fetches_ = 0;
  raw_fetches_ = 0;
  compositions_ = 0;
  span_cache_hits_ = 0;
  span_cache_misses_ = 0;
  compose_seconds_ = 0.0;
  for (auto& reader : levels_) {
    if (reader != nullptr) reader->ResetStats();
  }
}

BufferPoolStats McIndex::IoStats() const {
  BufferPoolStats total;
  for (const auto& reader : levels_) {
    if (reader != nullptr) total += reader->stats();
  }
  return total;
}

}  // namespace caldera
