#include "index/mc_index.h"

#include <algorithm>
#include <chrono>

#include "common/encoding.h"
#include "common/logging.h"
#include "storage/file.h"

namespace caldera {

namespace {
constexpr char kMcMagic[8] = {'C', 'L', 'D', 'R', 'M', 'C', 'I', '1'};

std::string LevelPath(const std::string& dir, uint32_t level) {
  return dir + "/L" + std::to_string(level) + ".rec";
}

void TruncateCptRows(Cpt* cpt, double eps) {
  if (eps <= 0) return;
  Cpt out;
  for (const Cpt::Row& row : cpt->rows()) {
    std::vector<Cpt::RowEntry> kept;
    kept.reserve(row.entries.size());
    for (const Cpt::RowEntry& e : row.entries) {
      if (e.prob >= eps) kept.push_back(e);
    }
    if (!kept.empty()) out.SetRow(row.src, std::move(kept));
  }
  *cpt = std::move(out);
}

}  // namespace

Status McIndex::Build(const MarkovianStream& stream, const std::string& dir,
                      const McIndexOptions& options) {
  if (options.alpha < 2) {
    return Status::InvalidArgument("MC index alpha must be >= 2");
  }
  if (stream.length() < 2) {
    return Status::InvalidArgument("stream too short for an MC index");
  }
  CALDERA_RETURN_IF_ERROR(CreateDirectories(dir));

  const uint64_t num_transitions = stream.length() - 1;
  const uint32_t domain = stream.schema().state_count();
  uint64_t max_span = options.max_span == 0
                          ? num_transitions
                          : std::min(options.max_span, num_transitions);

  // Level 1 entries composed from raw transitions; level i from level i-1.
  // `prev` holds the previous level's entries in memory (halving each
  // level, so peak memory is ~2x level 1).
  std::vector<Cpt> prev;
  std::vector<uint64_t> level_counts;
  uint32_t level = 1;
  uint64_t span = options.alpha;
  std::string record;
  while (span <= max_span) {
    uint64_t count = num_transitions / span;
    if (count == 0) break;
    std::vector<Cpt> current;
    current.reserve(count);
    CALDERA_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordFileWriter> writer,
        RecordFileWriter::Create(LevelPath(dir, level), options.page_size));
    for (uint64_t k = 0; k < count; ++k) {
      Cpt entry;
      if (level == 1) {
        // Compose raw transitions k*alpha+1 .. (k+1)*alpha.
        entry = stream.transition(k * span + 1);
        for (uint64_t s = 2; s <= span; ++s) {
          entry = ComposeCpts(entry, stream.transition(k * span + s), domain);
        }
      } else {
        entry = prev[k * options.alpha];
        for (uint32_t j = 1; j < options.alpha; ++j) {
          entry = ComposeCpts(entry, prev[k * options.alpha + j], domain);
        }
      }
      TruncateCptRows(&entry, options.truncate_eps);
      record.clear();
      entry.AppendTo(&record);
      CALDERA_RETURN_IF_ERROR(writer->Append(record).status());
      current.push_back(std::move(entry));
    }
    CALDERA_RETURN_IF_ERROR(writer->Finalize());
    level_counts.push_back(count);
    prev = std::move(current);
    ++level;
    span *= options.alpha;
  }

  // Metadata.
  std::string meta(kMcMagic, 8);
  PutFixed32(options.alpha, &meta);
  PutFixed32(static_cast<uint32_t>(level_counts.size()), &meta);
  PutFixed64(stream.length(), &meta);
  PutFixed32(domain, &meta);
  for (uint64_t count : level_counts) PutFixed64(count, &meta);
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::OpenOrCreate(dir + "/mc.meta"));
  CALDERA_RETURN_IF_ERROR(f->Truncate(0));
  CALDERA_RETURN_IF_ERROR(f->Append(meta));
  return f->Sync();
}

Result<std::unique_ptr<McIndex>> McIndex::Open(const std::string& dir,
                                               TransitionSource transitions,
                                               size_t pool_pages) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::OpenReadOnly(dir + "/mc.meta"));
  std::string meta(f->size(), '\0');
  CALDERA_RETURN_IF_ERROR(f->ReadAt(0, meta.size(), meta.data()));
  if (meta.size() < 28 || meta.compare(0, 8, kMcMagic, 8) != 0) {
    return Status::Corruption("bad MC index meta in " + dir);
  }
  auto index = std::unique_ptr<McIndex>(new McIndex());
  index->dir_ = dir;
  index->alpha_ = GetFixed32(meta.data() + 8);
  uint32_t num_levels = GetFixed32(meta.data() + 12);
  index->stream_length_ = GetFixed64(meta.data() + 16);
  index->domain_size_ = GetFixed32(meta.data() + 24);
  index->transitions_ = std::move(transitions);
  if (index->alpha_ < 2) return Status::Corruption("bad MC alpha");

  index->levels_.resize(num_levels + 1);  // [0] unused (raw stream).
  index->level_spans_.resize(num_levels + 1);
  index->level_spans_[0] = 1;
  uint64_t span = 1;
  for (uint32_t level = 1; level <= num_levels; ++level) {
    span *= index->alpha_;
    index->level_spans_[level] = span;
    CALDERA_ASSIGN_OR_RETURN(
        index->levels_[level],
        RecordFileReader::Open(LevelPath(dir, level), pool_pages));
  }
  return index;
}

Status McIndex::SetMinLevel(uint32_t level) {
  if (level < 1 || level > levels_.size()) {
    return Status::InvalidArgument("min level must be in [1, num_levels+1]");
  }
  min_level_ = level;
  return Status::Ok();
}

Status McIndex::FetchEntry(uint32_t level, uint64_t block, Cpt* out) {
  ++entry_fetches_;
  CALDERA_RETURN_IF_ERROR(levels_[level]->Get(block, &scratch_));
  size_t offset = 0;
  CALDERA_ASSIGN_OR_RETURN(*out, Cpt::Parse(scratch_, &offset));
  return Status::Ok();
}

Status McIndex::ComputeCpt(uint64_t from, uint64_t to, Cpt* out) {
  if (from >= to || to >= stream_length_) {
    return Status::InvalidArgument("ComputeCpt requires from < to < length");
  }
  bool have_result = false;
  Cpt result;
  Cpt block;
  uint64_t cur = from;
  const uint32_t max_level = static_cast<uint32_t>(levels_.size()) - 1;
  while (cur < to) {
    // Pick the largest stored level whose aligned block fits in [cur, to);
    // fall back to a raw transition when none (or below min_level_) does.
    uint32_t chosen = 0;
    for (uint32_t level = max_level; level >= min_level_ && level >= 1;
         --level) {
      uint64_t span = level_spans_[level];
      if (cur % span == 0 && cur + span <= to &&
          cur / span < levels_[level]->num_records()) {
        chosen = level;
        break;
      }
    }
    if (chosen == 0) {
      ++raw_fetches_;
      CALDERA_RETURN_IF_ERROR(transitions_(cur + 1, &block));
      cur += 1;
    } else {
      CALDERA_RETURN_IF_ERROR(
          FetchEntry(chosen, cur / level_spans_[chosen], &block));
      cur += level_spans_[chosen];
    }
    if (!have_result) {
      result = std::move(block);
      have_result = true;
    } else {
      ++compositions_;
      const auto start = std::chrono::steady_clock::now();
      result = ComposeCpts(result, block, domain_size_);
      compose_seconds_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    }
  }
  *out = std::move(result);
  return Status::Ok();
}

SpanKey McIndex::CacheKey(uint64_t from, uint64_t to) const {
  SpanKey key = span_cache_.KeyFor(from, to);
  // With truncation the composed span depends on which levels supplied it,
  // so a non-default min level must hash to a different entry.
  if (min_level_ != 1) {
    key.condition_fp = FingerprintCombine(key.condition_fp, min_level_);
  }
  return key;
}

Result<std::shared_ptr<const Cpt>> McIndex::GetSpanCpt(uint64_t from,
                                                       uint64_t to) {
  if (span_cache_.valid() && to >= from + 2) {
    const SpanKey key = CacheKey(from, to);
    if (std::shared_ptr<const Cpt> cached = span_cache_.cache->Get(key)) {
      ++span_cache_hits_;
      return cached;
    }
    ++span_cache_misses_;
    Cpt composed;
    CALDERA_RETURN_IF_ERROR(ComputeCpt(from, to, &composed));
    auto shared = std::make_shared<const Cpt>(std::move(composed));
    // Build the CSR kernel view before publishing so every consumer of
    // this cache entry propagates through the one flattened copy.
    shared->csr();
    span_cache_.cache->Put(key, shared);
    return shared;
  }
  Cpt composed;
  CALDERA_RETURN_IF_ERROR(ComputeCpt(from, to, &composed));
  return std::make_shared<const Cpt>(std::move(composed));
}

std::shared_ptr<const Cpt> McIndex::TryCachedSpan(uint64_t from, uint64_t to) {
  if (!span_cache_.valid() || to < from + 2) return nullptr;
  std::shared_ptr<const Cpt> cached = span_cache_.cache->Get(CacheKey(from, to));
  if (cached != nullptr) {
    ++span_cache_hits_;
  } else {
    ++span_cache_misses_;
  }
  return cached;
}

uint64_t McIndex::StoredBytes() const {
  uint64_t total = 0;
  for (uint32_t level = std::max(1u, min_level_); level < levels_.size();
       ++level) {
    total += levels_[level]->data_bytes();
  }
  return total;
}

void McIndex::ResetStats() {
  entry_fetches_ = 0;
  raw_fetches_ = 0;
  compositions_ = 0;
  span_cache_hits_ = 0;
  span_cache_misses_ = 0;
  compose_seconds_ = 0.0;
  for (auto& reader : levels_) {
    if (reader != nullptr) reader->ResetStats();
  }
}

BufferPoolStats McIndex::IoStats() const {
  BufferPoolStats total;
  for (const auto& reader : levels_) {
    if (reader != nullptr) total += reader->stats();
  }
  return total;
}

}  // namespace caldera
