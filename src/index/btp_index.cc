#include "index/btp_index.h"

#include <algorithm>

#include "common/encoding.h"
#include "common/logging.h"

namespace caldera {

std::string EncodeBtpKey(uint32_t value, double prob, uint64_t time) {
  std::string key;
  key.reserve(kBtpKeySize);
  EncodeU32(value, &key);
  EncodeProbDescending(prob, &key);
  EncodeU64(time, &key);
  return key;
}

void DecodeBtpKey(std::string_view key, uint32_t* value, double* prob,
                  uint64_t* time) {
  CALDERA_DCHECK(key.size() == kBtpKeySize);
  *value = DecodeU32(key.data());
  *prob = DecodeProbDescending(key.data() + 4);
  *time = DecodeU64(key.data() + 12);
}

namespace {

struct IndexEntry {
  uint32_t value;
  double prob;
  uint64_t time;
};

void AppendAttributeEntries(const Distribution& marginal,
                            const StreamSchema& schema, size_t attr,
                            uint64_t t, std::vector<IndexEntry>* out) {
  std::vector<std::pair<uint32_t, double>> local;
  local.reserve(marginal.support_size());
  for (const Distribution::Entry& e : marginal.entries()) {
    local.emplace_back(schema.AttributeValue(e.value, attr), e.prob);
  }
  // Stable sort on the attribute value only: summation stays in state-id
  // order, so rebuilt probabilities are bit-identical to any other code
  // (e.g. the verifier) that accumulates in state order.
  std::stable_sort(local.begin(), local.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (size_t i = 0; i < local.size();) {
    double sum = 0;
    size_t j = i;
    while (j < local.size() && local[j].first == local[i].first) {
      sum += local[j].second;
      ++j;
    }
    // Clamp tiny floating-point overshoots so the order-preserving prob
    // encoding (which requires p <= 1) never aborts.
    out->push_back({local[i].first, std::min(sum, 1.0), t});
    i = j;
  }
}

Result<std::unique_ptr<BTree>> BuildFromEntries(
    std::vector<IndexEntry> entries, const std::string& path,
    uint32_t page_size) {
  std::vector<std::string> keys;
  keys.reserve(entries.size());
  for (const IndexEntry& e : entries) {
    keys.push_back(EncodeBtpKey(e.value, e.prob, e.time));
  }
  std::sort(keys.begin(), keys.end());
  BTreeOptions options;
  options.key_size = kBtpKeySize;
  options.value_size = kBtpValueSize;
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<BTreeBuilder> builder,
                           BTreeBuilder::Create(path, options, page_size));
  for (const std::string& key : keys) {
    CALDERA_RETURN_IF_ERROR(builder->Add(key, {}));
  }
  return std::move(*builder).Finish();
}

}  // namespace

Result<std::unique_ptr<BTree>> BuildBtpIndex(const MarkovianStream& stream,
                                             size_t attr,
                                             const std::string& path,
                                             uint32_t page_size) {
  if (attr >= stream.schema().num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<IndexEntry> entries;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    AppendAttributeEntries(stream.marginal(t), stream.schema(), attr, t,
                           &entries);
  }
  return BuildFromEntries(std::move(entries), path, page_size);
}

Result<std::unique_ptr<BTree>> BuildBtpIndexFromStored(
    StoredStream* stream, size_t attr, const std::string& path,
    uint32_t page_size) {
  if (attr >= stream->schema().num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<IndexEntry> entries;
  Distribution marginal;
  for (uint64_t t = 0; t < stream->length(); ++t) {
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
    AppendAttributeEntries(marginal, stream->schema(), attr, t, &entries);
  }
  return BuildFromEntries(std::move(entries), path, page_size);
}

Status InsertBtpTimestep(BTree* tree, const Distribution& marginal,
                         const StreamSchema& schema, size_t attr,
                         uint64_t t) {
  if (tree->options().key_size != kBtpKeySize) {
    return Status::InvalidArgument("tree is not a BT_P index");
  }
  std::vector<IndexEntry> entries;
  AppendAttributeEntries(marginal, schema, attr, t, &entries);
  for (const IndexEntry& e : entries) {
    Status inserted = tree->Insert(EncodeBtpKey(e.value, e.prob, e.time), {});
    if (!inserted.ok() && inserted.code() != StatusCode::kAlreadyExists) {
      return inserted;
    }
  }
  return Status::Ok();
}

Result<TopProbCursor> TopProbCursor::Create(BTree* tree,
                                            std::vector<uint32_t> values) {
  if (tree->options().key_size != kBtpKeySize) {
    return Status::InvalidArgument("tree is not a BT_P index");
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  TopProbCursor cursor(tree);
  cursor.num_values_ = values.size();
  cursor.heads_.reserve(values.size());
  for (uint32_t v : values) {
    Head head;
    head.value = v;
    // Seek to the run start: highest probability first.
    CALDERA_ASSIGN_OR_RETURN(head.cursor,
                             tree->Seek(EncodeBtpKey(v, 1.0, 0)));
    cursor.heads_.push_back(std::move(head));
    cursor.LoadHead(cursor.heads_.size() - 1);
  }
  cursor.RecomputeBest();
  return cursor;
}

void TopProbCursor::LoadHead(size_t i) {
  Head& head = heads_[i];
  if (!head.cursor.valid()) {
    head.prob = -1.0;
    return;
  }
  uint32_t value;
  double prob;
  uint64_t time;
  DecodeBtpKey(head.cursor.key(), &value, &prob, &time);
  if (value != head.value) {
    head.prob = -1.0;
    return;
  }
  head.prob = prob;
  head.time = time;
}

void TopProbCursor::RecomputeBest() {
  best_ = SIZE_MAX;
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (heads_[i].prob < 0) continue;
    if (best_ == SIZE_MAX || heads_[i].prob > heads_[best_].prob) best_ = i;
  }
}

uint64_t TopProbCursor::time() const {
  CALDERA_DCHECK(valid());
  return heads_[best_].time;
}

double TopProbCursor::prob() const {
  CALDERA_DCHECK(valid());
  return heads_[best_].prob;
}

uint32_t TopProbCursor::value() const {
  CALDERA_DCHECK(valid());
  return heads_[best_].value;
}

double TopProbCursor::UpperBound() const {
  if (!valid()) return 0.0;
  return std::min(1.0, static_cast<double>(num_values_) * prob());
}

Status TopProbCursor::Next() {
  CALDERA_DCHECK(valid());
  CALDERA_RETURN_IF_ERROR(heads_[best_].cursor.Next());
  LoadHead(best_);
  RecomputeBest();
  return Status::Ok();
}

}  // namespace caldera
