#ifndef CALDERA_INDEX_BTP_INDEX_H_
#define CALDERA_INDEX_BTP_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/status.h"
#include "markov/stream.h"
#include "markov/stream_io.h"

namespace caldera {

// BT_P — the probability-ordered secondary index of Section 3.2.
//
// One BT_P indexes one stream attribute. Entries (no payload):
//   key = (attribute value : u32 BE,
//          1 - prob        : f64 order-preserving,   <- higher prob first
//          time            : u64 BE)
// Within one attribute value, a forward scan visits timesteps in
// decreasing order of marginal probability — the access order of the
// Threshold Algorithm.

inline constexpr uint32_t kBtpKeySize = 20;
inline constexpr uint32_t kBtpValueSize = 0;

std::string EncodeBtpKey(uint32_t value, double prob, uint64_t time);
void DecodeBtpKey(std::string_view key, uint32_t* value, double* prob,
                  uint64_t* time);

/// Builds a BT_P index over attribute `attr` of an in-memory stream.
Result<std::unique_ptr<BTree>> BuildBtpIndex(
    const MarkovianStream& stream, size_t attr, const std::string& path,
    uint32_t page_size = kDefaultPageSize);

/// Builds a BT_P index over attribute `attr` of an archived stream.
Result<std::unique_ptr<BTree>> BuildBtpIndexFromStored(
    StoredStream* stream, size_t attr, const std::string& path,
    uint32_t page_size = kDefaultPageSize);

/// Live-ingestion path: inserts the BT_P entries of one new timestep's
/// marginal into an existing tree, aggregated exactly as the bulk build
/// does. AlreadyExists is tolerated for idempotent recovery replay.
Status InsertBtpTimestep(BTree* tree, const Distribution& marginal,
                         const StreamSchema& schema, size_t attr, uint64_t t);

/// Iterates the (time, probability) entries of one predicate in decreasing
/// probability order, merging the per-value runs of a BT_P tree.
///
/// For single-value (equality) predicates the reported probability IS the
/// predicate's marginal. For multi-value predicates it is a per-value
/// probability; UpperBound() converts it into a sound bound on the
/// predicate probability of all unseen timesteps.
class TopProbCursor {
 public:
  static Result<TopProbCursor> Create(BTree* tree,
                                      std::vector<uint32_t> values);

  bool valid() const { return best_ != SIZE_MAX; }

  uint64_t time() const;
  double prob() const;
  uint32_t value() const;

  /// A sound upper bound on the predicate's marginal probability at any
  /// timestep not yet emitted: min(1, num_values * max remaining per-value
  /// probability).
  double UpperBound() const;

  /// Advances past the current entry.
  Status Next();

 private:
  struct Head {
    uint32_t value;
    uint64_t time;
    double prob;
    BTree::Cursor cursor;
  };

  explicit TopProbCursor(BTree* tree) : tree_(tree) {}

  void LoadHead(size_t i);
  void RecomputeBest();

  BTree* tree_;
  std::vector<Head> heads_;
  size_t num_values_ = 0;
  size_t best_ = SIZE_MAX;  // Index of the max-probability head.
};

}  // namespace caldera

#endif  // CALDERA_INDEX_BTP_INDEX_H_
