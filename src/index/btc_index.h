#ifndef CALDERA_INDEX_BTC_INDEX_H_
#define CALDERA_INDEX_BTC_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/status.h"
#include "markov/stream.h"
#include "markov/stream_io.h"

namespace caldera {

// BT_C — the chronological secondary index of Section 3.1.
//
// One BT_C indexes one stream attribute. Entries:
//   key   = (attribute value : u32 big-endian, time : u64 big-endian)
//   value = marginal probability of that attribute value at that time (f64)
// A timestep appears once per attribute value in its marginal support, so a
// cursor over a predicate's values visits exactly the timesteps where the
// predicate has nonzero probability.

inline constexpr uint32_t kBtcKeySize = 12;
inline constexpr uint32_t kBtcValueSize = 8;

/// Encodes a BT_C key.
std::string EncodeBtcKey(uint32_t value, uint64_t time);

/// Decodes a BT_C key into (value, time).
void DecodeBtcKey(std::string_view key, uint32_t* value, uint64_t* time);

/// Builds a BT_C index over attribute `attr` of an in-memory stream.
Result<std::unique_ptr<BTree>> BuildBtcIndex(
    const MarkovianStream& stream, size_t attr, const std::string& path,
    uint32_t page_size = kDefaultPageSize);

/// Builds a BT_C index over attribute `attr` of an archived stream
/// (streaming, one timestep at a time).
Result<std::unique_ptr<BTree>> BuildBtcIndexFromStored(
    StoredStream* stream, size_t attr, const std::string& path,
    uint32_t page_size = kDefaultPageSize);

/// Live-ingestion path: inserts the BT_C entries of one new timestep's
/// marginal into an existing tree. Probabilities are aggregated exactly as
/// the bulk build does (stable sort, state-id summation order), so the tree
/// content matches a from-scratch rebuild bit for bit. AlreadyExists from
/// an individual insert is tolerated — a recovery replay re-applies a
/// half-applied batch idempotently.
Status InsertBtcTimestep(BTree* tree, const Distribution& marginal,
                         const StreamSchema& schema, size_t attr, uint64_t t);

/// Iterates, in strictly increasing time order, the timesteps at which ANY
/// of a set of attribute values has nonzero marginal probability — i.e. the
/// timesteps relevant to one predicate. Implemented as a k-way merge of the
/// per-value runs of a BT_C tree.
class PredicateCursor {
 public:
  /// `values` are the attribute values matched by the predicate.
  static Result<PredicateCursor> Create(BTree* tree,
                                        std::vector<uint32_t> values);

  bool valid() const { return !heads_.empty(); }

  /// Current timestep.
  uint64_t time() const;

  /// Predicate marginal probability at the current timestep (sum over the
  /// predicate's values present at this time).
  double prob() const;

  /// Advances to the next relevant timestep (strictly greater time).
  Status Next();

  /// Advances to the first relevant timestep with time >= t (no-op if
  /// already there).
  Status SeekTime(uint64_t t);

 private:
  struct Head {
    uint32_t value;
    uint64_t time;
    double prob;
    BTree::Cursor cursor;
  };

  explicit PredicateCursor(BTree* tree) : tree_(tree) {}

  /// Refreshes head `i` from its B+ tree cursor; drops it when its value
  /// run is exhausted.
  void LoadHead(size_t i);
  void RecomputeMin();

  BTree* tree_;
  std::vector<Head> heads_;
  uint64_t min_time_ = 0;
};

}  // namespace caldera

#endif  // CALDERA_INDEX_BTC_INDEX_H_
