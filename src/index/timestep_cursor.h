#ifndef CALDERA_INDEX_TIMESTEP_CURSOR_H_
#define CALDERA_INDEX_TIMESTEP_CURSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/btc_index.h"
#include "index/btp_index.h"

namespace caldera {

// The producer half of the cursor-based execution pipeline: every access
// method is "a cursor that yields the query-relevant timesteps in the order
// Reg must visit them, plus a gap policy" (Algorithms 1-5 share this shape).
// Cursors live at the index layer — they touch B+ trees and postings, never
// the Reg operator — and the shared executor (caldera/executor.h) turns the
// yielded items into Reg updates.

/// One yielded pipeline item.
struct CursorItem {
  uint64_t time = 0;
  /// Reset the Reg operator and Initialize at this timestep (interval
  /// starts of the merge-join cursor, candidate starts of the threshold
  /// cursor, and the very first item of every cursor).
  bool restart = false;
  /// Append Reg's probability at this timestep to the output signal. The
  /// threshold cursor sets false everywhere: its signal is the collected
  /// best-matches set, not the per-timestep trace.
  bool emit = true;
  /// Feed the probability back to the cursor via Observe() — the Threshold
  /// Algorithm's result feedback (tightens the pruning floor).
  bool observe = false;
};

/// Counters a cursor contributes to ExecStats (the executor owns the rest).
struct CursorStats {
  uint64_t relevant_timesteps = 0;
  uint64_t pruned_candidates = 0;
};

/// Pull-based producer of query-relevant timesteps.
///
/// Contract: Next() yields items whose non-restart times strictly increase
/// by exactly 1 from the previous item (an adjacent step); any jump must be
/// flagged `restart` or left to the executor's gap policy (which sees
/// gap = time - previous time > 1). Restart items may move backwards in
/// time (overlapping top-k candidate intervals do).
class RelevantTimestepCursor {
 public:
  virtual ~RelevantTimestepCursor() = default;

  /// Yields the next item, or nullopt when exhausted.
  virtual Result<std::optional<CursorItem>> Next() = 0;

  /// Result feedback for items with observe = true. Cursors that consume
  /// feedback must also return false from prefetch_safe().
  virtual void Observe(uint64_t time, double prob) {
    (void)time;
    (void)prob;
  }

  /// False when the cursor's production depends on Observe() feedback; the
  /// executor then runs it strictly synchronously (no prefetch) so results
  /// cannot depend on batch boundaries.
  virtual bool prefetch_safe() const { return true; }

  /// Fills the cursor-owned counters. `items_yielded` is how many items the
  /// executor pulled; by default that is the relevant-timestep count.
  virtual void ContributeStats(uint64_t items_yielded,
                               CursorStats* stats) const {
    stats->relevant_timesteps = items_yielded;
  }

  /// True when the cursor collects its own result set instead of emitting
  /// per-timestep entries; the executor then builds the signal from
  /// TakeCollected() (the threshold cursor's best-matches set).
  virtual bool collects_signal() const { return false; }

  /// For cursors that collect their own result set (threshold cursor):
  /// the (time, probability) entries to report, already ordered.
  virtual std::vector<std::pair<uint64_t, double>> TakeCollected() {
    return {};
  }

  /// Short name for EXPLAIN output, e.g. "btc-merge-join".
  virtual const char* name() const = 0;
};

// ---------------------------------------------------------------------------
// Index-probing building blocks (the temporally-aware join of Section 3.1).
// ---------------------------------------------------------------------------

/// The temporally-aware index join of Section 3.1: given cursors with link
/// offsets (cursor j covers the predicate of link offset_j), enumerates, in
/// increasing order, the interval start times s such that cursor j holds an
/// entry at time s + offset_j for every j. Links without an indexable
/// predicate simply contribute no cursor (the paper's "relaxed"
/// intersection).
///
/// This is a merge-join-style walk: each round computes the maximal
/// candidate start implied by the current cursor positions and re-seeks all
/// cursors to it; cost is linear in the index entries touched.
class IntervalIntersector {
 public:
  IntervalIntersector(std::vector<PredicateCursor> cursors,
                      std::vector<uint64_t> offsets)
      : cursors_(std::move(cursors)), offsets_(std::move(offsets)) {}

  /// Returns the next intersection start time, or nullopt when exhausted.
  Result<std::optional<uint64_t>> Next();

 private:
  std::vector<PredicateCursor> cursors_;
  std::vector<uint64_t> offsets_;
  uint64_t next_start_min_ = 0;
};

/// Merges a sorted sequence of candidate starts (for an n-link query) into
/// maximal processing intervals [first, last]: candidates whose intervals
/// overlap or abut are combined so the Reg operator processes each timestep
/// at most once (Section 3.1's overlapping-interval optimization).
class IntervalMerger {
 public:
  explicit IntervalMerger(uint64_t interval_length)
      : interval_length_(interval_length) {}

  struct Interval {
    uint64_t first;
    uint64_t last;  // Inclusive.
  };

  /// Feeds the next candidate start (strictly increasing); returns a
  /// completed interval if this start cannot extend the pending one.
  std::optional<Interval> Add(uint64_t start);

  /// Returns the final pending interval, if any.
  std::optional<Interval> Flush();

 private:
  uint64_t interval_length_;
  bool has_pending_ = false;
  Interval pending_{0, 0};
};

/// Iterates the union of several predicate cursors in increasing time order
/// — the "timesteps referenced by any C_i" loop of Algorithms 4 and 5.
class UnionCursor {
 public:
  explicit UnionCursor(std::vector<PredicateCursor> cursors);

  bool valid() const;
  uint64_t time() const;
  Status Next();

 private:
  std::vector<PredicateCursor> cursors_;
  uint64_t min_time_ = 0;
  void RecomputeMin();
};

// ---------------------------------------------------------------------------
// The per-index RelevantTimestepCursor implementations.
// ---------------------------------------------------------------------------

/// Algorithm 1's producer: every timestep of the stream, in order.
class FullScanCursor final : public RelevantTimestepCursor {
 public:
  explicit FullScanCursor(uint64_t stream_length)
      : stream_length_(stream_length) {}

  Result<std::optional<CursorItem>> Next() override;
  const char* name() const override { return "full-scan"; }

 private:
  uint64_t stream_length_;
  uint64_t next_ = 0;
};

/// Algorithm 2's producer: BT_C merge-join of the per-link predicate
/// cursors, with overlapping candidate intervals merged. Yields every
/// timestep of each merged interval; interval starts carry restart = true,
/// so the (restart) gap policy reproduces the per-interval Reg resets.
class MergeJoinCursor final : public RelevantTimestepCursor {
 public:
  /// `interval_length` is the query's link count n; candidate starts whose
  /// interval would extend past `stream_length` end the enumeration (starts
  /// are increasing, so no later start can fit either).
  MergeJoinCursor(std::vector<PredicateCursor> cursors,
                  std::vector<uint64_t> offsets, uint64_t interval_length,
                  uint64_t stream_length);

  Result<std::optional<CursorItem>> Next() override;
  void ContributeStats(uint64_t items_yielded,
                       CursorStats* stats) const override;
  const char* name() const override { return "btc-merge-join"; }

  /// Number of merged intervals completed so far (executor reads it after
  /// exhaustion for the `intervals` stat).
  uint64_t intervals() const { return intervals_; }

 private:
  /// Loads the next merged, clamped interval into position_/interval_end_.
  Result<bool> PullInterval();

  IntervalIntersector intersector_;
  IntervalMerger merger_;
  uint64_t interval_length_;
  uint64_t stream_length_;
  uint64_t candidates_ = 0;  // Admitted intersection starts.
  uint64_t intervals_ = 0;
  bool in_interval_ = false;
  bool at_interval_start_ = false;
  bool exhausted_ = false;
  uint64_t position_ = 0;
  uint64_t interval_end_ = 0;
};

/// Algorithms 4 and 5's producer: the chronological union of the query's
/// predicate cursors. Only the first item restarts; every later jump is a
/// gap the executor resolves through its gap policy (exact MC span,
/// independence approximation, or scan-through).
class UnionGapCursor final : public RelevantTimestepCursor {
 public:
  explicit UnionGapCursor(std::vector<PredicateCursor> cursors)
      : union_(std::move(cursors)) {}

  Result<std::optional<CursorItem>> Next() override;
  const char* name() const override { return "btc-union"; }

 private:
  UnionCursor union_;
  bool first_ = true;
};

/// Algorithm 3's producer: the Threshold-Algorithm walk over per-link BT_P
/// cursors. Yields candidate intervals (restart at the candidate start,
/// observe at its final timestep, emit nowhere); consumes Reg's final
/// probability through Observe() to tighten the pruning floor, and collects
/// the best matches itself. Not prefetch-safe: production depends on the
/// feedback.
class ThresholdCursor final : public RelevantTimestepCursor {
 public:
  /// Reads the predicate marginal probability of link `link` at time `t`
  /// (line 9 of Algorithm 3); bound to the stream by the caldera layer.
  using LinkProbe = std::function<Result<double>(size_t link, uint64_t t)>;

  static constexpr size_t kUnbounded = SIZE_MAX;

  /// Top-k mode: k bounded, threshold 0. Threshold mode: k = kUnbounded,
  /// threshold in (0, 1).
  ThresholdCursor(std::vector<TopProbCursor> cursors, size_t k,
                  double threshold, uint64_t stream_length, LinkProbe probe)
      : cursors_(std::move(cursors)),
        num_links_(cursors_.size()),
        stream_length_(stream_length),
        probe_(std::move(probe)),
        k_(k),
        threshold_(threshold) {}

  Result<std::optional<CursorItem>> Next() override;
  void Observe(uint64_t time, double prob) override;
  bool prefetch_safe() const override { return false; }
  bool collects_signal() const override { return true; }
  void ContributeStats(uint64_t items_yielded,
                       CursorStats* stats) const override;
  std::vector<std::pair<uint64_t, double>> TakeCollected() override;
  const char* name() const override { return "btp-threshold"; }

 private:
  /// The probability an unseen candidate must beat to matter. Zero means
  /// "cannot stop yet" (top-k not yet full).
  double Floor() const;
  /// True once the TA termination condition may fire against Floor().
  bool CanStop(double unseen_bound) const;
  /// Inserts (time, prob) into the sorted best-matches set.
  void Evaluate(uint64_t time, double prob);

  /// Runs the sorted-access walk until a candidate survives pruning;
  /// returns its start, or nullopt on termination.
  Result<std::optional<uint64_t>> NextCandidate();

  std::vector<TopProbCursor> cursors_;
  size_t num_links_;
  uint64_t stream_length_;
  LinkProbe probe_;
  size_t k_;
  double threshold_;

  std::vector<std::pair<uint64_t, double>> matches_;  // Sorted by prob desc.
  std::unordered_set<uint64_t> evaluated_;  // Candidate starts seen.
  uint64_t pruned_ = 0;

  bool in_candidate_ = false;
  uint64_t position_ = 0;
  uint64_t candidate_end_ = 0;
};

}  // namespace caldera

#endif  // CALDERA_INDEX_TIMESTEP_CURSOR_H_
