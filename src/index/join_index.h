#ifndef CALDERA_INDEX_JOIN_INDEX_H_
#define CALDERA_INDEX_JOIN_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/status.h"
#include "index/btc_index.h"
#include "index/btp_index.h"
#include "markov/stream.h"
#include "query/predicate.h"

namespace caldera {

/// A star-schema join index (Section 3.4.1): conceptually the stream joined
/// with a dimension table and indexed on a dimension column. Physically, a
/// BT_C-shaped tree keyed by (dense dimension-value id, time) — so queries
/// like "When was Bob in *a* coffee room?" position one cursor instead of
/// one per location.
///
/// Both key forms of the paper are supported: (D.a, M.time) via
/// TimeCursor() and (D.a, M.prob) via ProbCursor().
class JoinIndex {
 public:
  /// Builds both trees for `column` of `table` over attribute
  /// `table->key_attribute()` of `stream`. Files are created at
  /// `path_prefix` + ".time.bt" / ".prob.bt" / ".meta".
  static Result<std::unique_ptr<JoinIndex>> Build(
      const MarkovianStream& stream, const DimensionTable& table,
      const std::string& column, const std::string& path_prefix,
      uint32_t page_size = kDefaultPageSize);

  /// Reopens a previously built join index.
  static Result<std::unique_ptr<JoinIndex>> Open(
      const std::string& path_prefix, size_t pool_pages = 64);

  /// Chronological cursor over the timesteps where `column_value` has
  /// nonzero probability.
  Result<PredicateCursor> TimeCursor(const std::string& column_value);

  /// Decreasing-probability cursor for `column_value`.
  Result<TopProbCursor> ProbCursor(const std::string& column_value);

  /// Dense id of a column value; NotFound if never seen at build time.
  Result<uint32_t> IdOf(const std::string& column_value) const;

  const std::string& column() const { return column_; }
  uint64_t num_entries() const { return time_tree_->num_entries(); }
  BufferPoolStats stats() const;
  void ResetStats();

 private:
  JoinIndex() = default;

  std::string column_;
  std::vector<std::string> value_names_;  // id -> column value.
  std::unique_ptr<BTree> time_tree_;
  std::unique_ptr<BTree> prob_tree_;
};

}  // namespace caldera

#endif  // CALDERA_INDEX_JOIN_INDEX_H_
