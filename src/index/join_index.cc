#include "index/join_index.h"

#include <algorithm>

#include "common/encoding.h"
#include "storage/file.h"

namespace caldera {

namespace {
constexpr char kJoinMagic[8] = {'C', 'L', 'D', 'R', 'J', 'I', 'X', '1'};

struct TimeEntry {
  uint32_t id;
  uint64_t time;
  double prob;
};

}  // namespace

Result<std::unique_ptr<JoinIndex>> JoinIndex::Build(
    const MarkovianStream& stream, const DimensionTable& table,
    const std::string& column, const std::string& path_prefix,
    uint32_t page_size) {
  const size_t attr = table.key_attribute();
  if (attr >= stream.schema().num_attributes()) {
    return Status::InvalidArgument("dimension key attribute out of range");
  }
  CALDERA_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           table.DistinctValues(column));

  // Map each attribute value to its dense dimension-value id.
  const uint32_t domain = stream.schema().domain_size(attr);
  std::vector<uint32_t> dim_id_of(domain, 0);
  for (uint32_t v = 0; v < domain; ++v) {
    CALDERA_ASSIGN_OR_RETURN(std::string cv, table.ColumnValue(column, v));
    auto it = std::find(names.begin(), names.end(), cv);
    dim_id_of[v] = static_cast<uint32_t>(it - names.begin());
  }

  // Aggregate per-timestep probabilities per dimension value.
  std::vector<TimeEntry> entries;
  std::vector<double> scratch(names.size(), 0.0);
  for (uint64_t t = 0; t < stream.length(); ++t) {
    for (const Distribution::Entry& e : stream.marginal(t).entries()) {
      uint32_t av = stream.schema().AttributeValue(e.value, attr);
      scratch[dim_id_of[av]] += e.prob;
    }
    for (size_t id = 0; id < scratch.size(); ++id) {
      if (scratch[id] > 0.0) {
        entries.push_back({static_cast<uint32_t>(id), t,
                           std::min(scratch[id], 1.0)});
        scratch[id] = 0.0;
      }
    }
  }

  auto index = std::unique_ptr<JoinIndex>(new JoinIndex());
  index->column_ = column;
  index->value_names_ = names;

  // Time-keyed tree.
  {
    std::sort(entries.begin(), entries.end(),
              [](const TimeEntry& a, const TimeEntry& b) {
                if (a.id != b.id) return a.id < b.id;
                return a.time < b.time;
              });
    BTreeOptions options{kBtcKeySize, kBtcValueSize};
    CALDERA_ASSIGN_OR_RETURN(
        std::unique_ptr<BTreeBuilder> builder,
        BTreeBuilder::Create(path_prefix + ".time.bt", options, page_size));
    std::string value_buf;
    for (const TimeEntry& e : entries) {
      value_buf.clear();
      PutDouble(e.prob, &value_buf);
      CALDERA_RETURN_IF_ERROR(
          builder->Add(EncodeBtcKey(e.id, e.time), value_buf));
    }
    CALDERA_ASSIGN_OR_RETURN(index->time_tree_, builder->Finish());
  }

  // Probability-keyed tree.
  {
    std::vector<std::string> keys;
    keys.reserve(entries.size());
    for (const TimeEntry& e : entries) {
      keys.push_back(EncodeBtpKey(e.id, e.prob, e.time));
    }
    std::sort(keys.begin(), keys.end());
    BTreeOptions options{kBtpKeySize, kBtpValueSize};
    CALDERA_ASSIGN_OR_RETURN(
        std::unique_ptr<BTreeBuilder> builder,
        BTreeBuilder::Create(path_prefix + ".prob.bt", options, page_size));
    for (const std::string& key : keys) {
      CALDERA_RETURN_IF_ERROR(builder->Add(key, {}));
    }
    CALDERA_ASSIGN_OR_RETURN(index->prob_tree_, builder->Finish());
  }

  // Metadata: column name + dimension value names.
  std::string meta(kJoinMagic, 8);
  PutLengthPrefixed(column, &meta);
  PutFixed32(static_cast<uint32_t>(names.size()), &meta);
  for (const std::string& name : names) PutLengthPrefixed(name, &meta);
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::OpenOrCreate(path_prefix + ".meta"));
  CALDERA_RETURN_IF_ERROR(f->Truncate(0));
  CALDERA_RETURN_IF_ERROR(f->Append(meta));
  CALDERA_RETURN_IF_ERROR(f->Sync());
  return index;
}

Result<std::unique_ptr<JoinIndex>> JoinIndex::Open(
    const std::string& path_prefix, size_t pool_pages) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::OpenReadOnly(path_prefix + ".meta"));
  std::string meta(f->size(), '\0');
  CALDERA_RETURN_IF_ERROR(f->ReadAt(0, meta.size(), meta.data()));
  if (meta.size() < 8 || meta.compare(0, 8, kJoinMagic, 8) != 0) {
    return Status::Corruption("bad join-index meta at " + path_prefix);
  }
  auto index = std::unique_ptr<JoinIndex>(new JoinIndex());
  size_t offset = 8;
  std::string_view column;
  if (!GetLengthPrefixed(meta, &offset, &column)) {
    return Status::Corruption("truncated join-index meta");
  }
  index->column_ = std::string(column);
  if (offset + 4 > meta.size()) {
    return Status::Corruption("truncated join-index meta");
  }
  uint32_t count = GetFixed32(meta.data() + offset);
  offset += 4;
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(meta, &offset, &name)) {
      return Status::Corruption("truncated join-index meta");
    }
    index->value_names_.emplace_back(name);
  }
  CALDERA_ASSIGN_OR_RETURN(index->time_tree_,
                           BTree::Open(path_prefix + ".time.bt", pool_pages));
  CALDERA_ASSIGN_OR_RETURN(index->prob_tree_,
                           BTree::Open(path_prefix + ".prob.bt", pool_pages));
  return index;
}

Result<uint32_t> JoinIndex::IdOf(const std::string& column_value) const {
  auto it = std::find(value_names_.begin(), value_names_.end(), column_value);
  if (it == value_names_.end()) {
    return Status::NotFound("join index has no value '" + column_value + "'");
  }
  return static_cast<uint32_t>(it - value_names_.begin());
}

Result<PredicateCursor> JoinIndex::TimeCursor(
    const std::string& column_value) {
  CALDERA_ASSIGN_OR_RETURN(uint32_t id, IdOf(column_value));
  return PredicateCursor::Create(time_tree_.get(), {id});
}

Result<TopProbCursor> JoinIndex::ProbCursor(const std::string& column_value) {
  CALDERA_ASSIGN_OR_RETURN(uint32_t id, IdOf(column_value));
  return TopProbCursor::Create(prob_tree_.get(), {id});
}

BufferPoolStats JoinIndex::stats() const {
  BufferPoolStats total;
  total += time_tree_->stats();
  total += prob_tree_->stats();
  return total;
}

void JoinIndex::ResetStats() {
  time_tree_->ResetStats();
  prob_tree_->ResetStats();
}

}  // namespace caldera
