#include "index/span_cache.h"

#include <algorithm>

namespace caldera {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

// Bookkeeping overhead per cache entry (list node + map slot + key),
// counted against the byte budget so a cache full of tiny CPTs does not
// balloon past its nominal size.
constexpr size_t kEntryOverhead = 128;

}  // namespace

uint64_t FingerprintString(std::string_view s) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  // Avoid 0 so callers can use 0 as "no fingerprint".
  return h == 0 ? kFnvPrime : h;
}

uint64_t FingerprintCombine(uint64_t fp, uint64_t value) {
  uint64_t h = FnvMix(fp == 0 ? kFnvOffset : fp, value);
  return h == 0 ? kFnvPrime : h;
}

size_t SpanKeyHash::operator()(const SpanKey& k) const {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, k.stream_id);
  h = FnvMix(h, k.epoch);
  h = FnvMix(h, k.lo);
  h = FnvMix(h, k.hi);
  h = FnvMix(h, k.condition_fp);
  return static_cast<size_t>(h);
}

SpanCptCache::SpanCptCache(size_t byte_budget, size_t num_shards)
    : byte_budget_(byte_budget) {
  num_shards = std::max<size_t>(1, num_shards);
  shard_budget_ = std::max<size_t>(1, byte_budget_ / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SpanCptCache::Shard& SpanCptCache::ShardFor(const SpanKey& key) {
  return *shards_[SpanKeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const Cpt> SpanCptCache::Get(const SpanKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->cpt;
}

void SpanCptCache::Put(const SpanKey& key, std::shared_ptr<const Cpt> cpt) {
  if (cpt == nullptr) return;
  size_t bytes = cpt->ByteSize() + kEntryOverhead;
  if (bytes > shard_budget_) return;  // Would evict the whole shard: skip.
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, std::move(cpt), bytes});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.insertions;
}

void SpanCptCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

SpanCacheStats SpanCptCache::stats() const {
  SpanCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.insertions += shard->insertions;
    out.evictions += shard->evictions;
    out.bytes += shard->bytes;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace caldera
