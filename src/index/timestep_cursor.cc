#include "index/timestep_cursor.h"

#include <algorithm>

namespace caldera {

// ---------------------------------------------------------------------------
// IntervalIntersector / IntervalMerger / UnionCursor
// ---------------------------------------------------------------------------

Result<std::optional<uint64_t>> IntervalIntersector::Next() {
  const size_t n = cursors_.size();
  if (n == 0) return std::optional<uint64_t>();
  for (;;) {
    // Re-seek every cursor to the current lower bound and compute the
    // implied start of each cursor's current entry.
    uint64_t max_start = next_start_min_;
    for (size_t i = 0; i < n; ++i) {
      CALDERA_RETURN_IF_ERROR(
          cursors_[i].SeekTime(next_start_min_ + offsets_[i]));
      if (!cursors_[i].valid()) return std::optional<uint64_t>();
      // cursors_[i].time() >= next_start_min_ + offsets_[i], so this cannot
      // underflow.
      uint64_t implied_start = cursors_[i].time() - offsets_[i];
      max_start = std::max(max_start, implied_start);
    }
    // Check whether every cursor has an entry exactly at max_start+offset.
    bool aligned = true;
    for (size_t i = 0; i < n; ++i) {
      CALDERA_RETURN_IF_ERROR(cursors_[i].SeekTime(max_start + offsets_[i]));
      if (!cursors_[i].valid()) return std::optional<uint64_t>();
      if (cursors_[i].time() != max_start + offsets_[i]) {
        // This cursor jumped past; restart from its implied start.
        next_start_min_ = cursors_[i].time() - offsets_[i];
        aligned = false;
        break;
      }
    }
    if (aligned) {
      next_start_min_ = max_start + 1;
      return std::optional<uint64_t>(max_start);
    }
  }
}

std::optional<IntervalMerger::Interval> IntervalMerger::Add(uint64_t start) {
  uint64_t last = start + interval_length_ - 1;
  if (!has_pending_) {
    pending_ = {start, last};
    has_pending_ = true;
    return std::nullopt;
  }
  if (start <= pending_.last + 1) {
    pending_.last = std::max(pending_.last, last);
    return std::nullopt;
  }
  Interval done = pending_;
  pending_ = {start, last};
  return done;
}

std::optional<IntervalMerger::Interval> IntervalMerger::Flush() {
  if (!has_pending_) return std::nullopt;
  has_pending_ = false;
  return pending_;
}

UnionCursor::UnionCursor(std::vector<PredicateCursor> cursors)
    : cursors_(std::move(cursors)) {
  RecomputeMin();
}

void UnionCursor::RecomputeMin() {
  min_time_ = UINT64_MAX;
  for (const PredicateCursor& c : cursors_) {
    if (c.valid()) min_time_ = std::min(min_time_, c.time());
  }
}

bool UnionCursor::valid() const { return min_time_ != UINT64_MAX; }

uint64_t UnionCursor::time() const { return min_time_; }

Status UnionCursor::Next() {
  for (PredicateCursor& c : cursors_) {
    if (c.valid() && c.time() == min_time_) {
      CALDERA_RETURN_IF_ERROR(c.Next());
    }
  }
  RecomputeMin();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// FullScanCursor
// ---------------------------------------------------------------------------

Result<std::optional<CursorItem>> FullScanCursor::Next() {
  if (next_ >= stream_length_) return std::optional<CursorItem>();
  CursorItem item;
  item.time = next_;
  item.restart = next_ == 0;
  ++next_;
  return std::optional<CursorItem>(item);
}

// ---------------------------------------------------------------------------
// MergeJoinCursor
// ---------------------------------------------------------------------------

MergeJoinCursor::MergeJoinCursor(std::vector<PredicateCursor> cursors,
                                 std::vector<uint64_t> offsets,
                                 uint64_t interval_length,
                                 uint64_t stream_length)
    : intersector_(std::move(cursors), std::move(offsets)),
      merger_(interval_length),
      interval_length_(interval_length),
      stream_length_(stream_length) {}

Result<bool> MergeJoinCursor::PullInterval() {
  for (;;) {
    std::optional<IntervalMerger::Interval> done;
    while (!done.has_value() && !exhausted_) {
      CALDERA_ASSIGN_OR_RETURN(std::optional<uint64_t> start,
                               intersector_.Next());
      // An absent start, or one whose interval cannot fit before the end of
      // the stream (starts are increasing, so neither can any later one),
      // ends the enumeration.
      if (!start.has_value() || *start + interval_length_ > stream_length_) {
        exhausted_ = true;
        done = merger_.Flush();
        break;
      }
      ++candidates_;
      done = merger_.Add(*start);
    }
    if (!done.has_value()) return false;
    // Clamp to the stream (an intersection near the end may imply an
    // interval past the last timestep when some links are unindexed).
    if (done->first >= stream_length_) {
      if (exhausted_) return false;
      continue;
    }
    position_ = done->first;
    interval_end_ = std::min<uint64_t>(done->last, stream_length_ - 1);
    in_interval_ = true;
    at_interval_start_ = true;
    ++intervals_;
    return true;
  }
}

Result<std::optional<CursorItem>> MergeJoinCursor::Next() {
  if (!in_interval_) {
    if (exhausted_) return std::optional<CursorItem>();
    CALDERA_ASSIGN_OR_RETURN(bool more, PullInterval());
    if (!more) return std::optional<CursorItem>();
  }
  CursorItem item;
  item.time = position_;
  item.restart = at_interval_start_;
  at_interval_start_ = false;
  if (position_ == interval_end_) {
    in_interval_ = false;
  } else {
    ++position_;
  }
  return std::optional<CursorItem>(item);
}

void MergeJoinCursor::ContributeStats(uint64_t items_yielded,
                                      CursorStats* stats) const {
  (void)items_yielded;
  // The paper counts index-reported candidates, not processed timesteps.
  stats->relevant_timesteps = candidates_;
}

// ---------------------------------------------------------------------------
// UnionGapCursor
// ---------------------------------------------------------------------------

Result<std::optional<CursorItem>> UnionGapCursor::Next() {
  if (!union_.valid()) return std::optional<CursorItem>();
  CursorItem item;
  item.time = union_.time();
  item.restart = first_;
  first_ = false;
  CALDERA_RETURN_IF_ERROR(union_.Next());
  return std::optional<CursorItem>(item);
}

// ---------------------------------------------------------------------------
// ThresholdCursor
// ---------------------------------------------------------------------------

double ThresholdCursor::Floor() const {
  double kth = (k_ != kUnbounded && matches_.size() >= k_)
                   ? matches_.back().second
                   : 0.0;
  return std::max(threshold_, kth);
}

bool ThresholdCursor::CanStop(double unseen_bound) const {
  double floor = Floor();
  return floor > 0.0 && unseen_bound <= floor;
}

void ThresholdCursor::Evaluate(uint64_t time, double prob) {
  if (prob <= threshold_ || prob <= 0.0) return;
  std::pair<uint64_t, double> entry{time, prob};
  auto pos = std::lower_bound(
      matches_.begin(), matches_.end(), entry,
      [](const std::pair<uint64_t, double>& a,
         const std::pair<uint64_t, double>& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
      });
  matches_.insert(pos, entry);
  if (k_ != kUnbounded && matches_.size() > k_) matches_.pop_back();
}

Result<std::optional<uint64_t>> ThresholdCursor::NextCandidate() {
  const size_t n = num_links_;
  for (;;) {
    // Termination (lines 5-6 of Algorithm 3): no unseen interval can beat
    // the floor once the min over links of the per-link upper bound drops
    // to it. Exhausted cursors bound their link by 0.
    double unseen_bound = 1.0;
    size_t best_cursor = SIZE_MAX;
    double best_head = -1.0;
    for (size_t i = 0; i < n; ++i) {
      double bound = cursors_[i].valid() ? cursors_[i].UpperBound() : 0.0;
      unseen_bound = std::min(unseen_bound, bound);
      double head = cursors_[i].valid() ? cursors_[i].prob() : -1.0;
      if (head > best_head) {
        best_head = head;
        best_cursor = i;
      }
    }
    if (best_cursor == SIZE_MAX) return std::optional<uint64_t>();
    if (CanStop(unseen_bound)) return std::optional<uint64_t>();

    // Sorted access: pop the globally most probable remaining entry.
    uint64_t entry_time = cursors_[best_cursor].time();
    CALDERA_RETURN_IF_ERROR(cursors_[best_cursor].Next());

    // The candidate interval places this link at its offset.
    if (entry_time < best_cursor) continue;
    uint64_t s = entry_time - best_cursor;
    if (s + n > stream_length_) continue;
    if (!evaluated_.insert(s).second) continue;

    // Line 9: prune when any link's marginal is zero at its offset, or
    // (since marginals bound the match) at or below the current floor.
    double floor = Floor();
    bool prune = false;
    for (size_t i = 0; i < n && !prune; ++i) {
      CALDERA_ASSIGN_OR_RETURN(double p, probe_(i, s + i));
      if (p <= 0.0 || p <= floor) prune = true;
    }
    if (prune) {
      ++pruned_;
      continue;
    }
    return std::optional<uint64_t>(s);
  }
}

Result<std::optional<CursorItem>> ThresholdCursor::Next() {
  if (!in_candidate_) {
    CALDERA_ASSIGN_OR_RETURN(std::optional<uint64_t> start, NextCandidate());
    if (!start.has_value()) return std::optional<CursorItem>();
    position_ = *start;
    candidate_end_ = *start + num_links_ - 1;
    in_candidate_ = true;
    CursorItem item;
    item.time = position_;
    item.restart = true;
    item.emit = false;
    item.observe = position_ == candidate_end_;  // Single-link query.
    if (position_ == candidate_end_) in_candidate_ = false;
    return std::optional<CursorItem>(item);
  }
  ++position_;
  CursorItem item;
  item.time = position_;
  item.emit = false;
  item.observe = position_ == candidate_end_;
  if (position_ == candidate_end_) in_candidate_ = false;
  return std::optional<CursorItem>(item);
}

void ThresholdCursor::Observe(uint64_t time, double prob) {
  Evaluate(time, prob);
}

void ThresholdCursor::ContributeStats(uint64_t items_yielded,
                                      CursorStats* stats) const {
  (void)items_yielded;
  stats->relevant_timesteps = evaluated_.size();
  stats->pruned_candidates = pruned_;
}

std::vector<std::pair<uint64_t, double>> ThresholdCursor::TakeCollected() {
  return std::move(matches_);
}

}  // namespace caldera
