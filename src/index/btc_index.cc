#include "index/btc_index.h"

#include <algorithm>

#include "common/encoding.h"
#include "common/logging.h"

namespace caldera {

std::string EncodeBtcKey(uint32_t value, uint64_t time) {
  std::string key;
  key.reserve(kBtcKeySize);
  EncodeU32(value, &key);
  EncodeU64(time, &key);
  return key;
}

void DecodeBtcKey(std::string_view key, uint32_t* value, uint64_t* time) {
  CALDERA_DCHECK(key.size() == kBtcKeySize);
  *value = DecodeU32(key.data());
  *time = DecodeU64(key.data() + 4);
}

namespace {

struct IndexEntry {
  uint32_t value;
  uint64_t time;
  double prob;
};

// Aggregates a timestep's state marginal into per-attribute-value masses
// (Section 3.4.1: tuples sharing a timestamp are disjoint, so predicate /
// attribute-value probabilities are sums).
void AppendAttributeEntries(const Distribution& marginal,
                            const StreamSchema& schema, size_t attr,
                            uint64_t t, std::vector<IndexEntry>* out) {
  // Collect (attr value, prob) pairs; values of a sorted state list are not
  // sorted per attribute, so aggregate via a small sorted buffer.
  std::vector<std::pair<uint32_t, double>> local;
  local.reserve(marginal.support_size());
  for (const Distribution::Entry& e : marginal.entries()) {
    local.emplace_back(schema.AttributeValue(e.value, attr), e.prob);
  }
  // Stable sort on the attribute value only: summation stays in state-id
  // order, so rebuilt probabilities are bit-identical to any other code
  // (e.g. the verifier) that accumulates in state order.
  std::stable_sort(local.begin(), local.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (size_t i = 0; i < local.size();) {
    double sum = 0;
    size_t j = i;
    while (j < local.size() && local[j].first == local[i].first) {
      sum += local[j].second;
      ++j;
    }
    out->push_back({local[i].first, t, sum});
    i = j;
  }
}

Result<std::unique_ptr<BTree>> BuildFromEntries(
    std::vector<IndexEntry> entries, const std::string& path,
    uint32_t page_size) {
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.time < b.time;
            });
  BTreeOptions options;
  options.key_size = kBtcKeySize;
  options.value_size = kBtcValueSize;
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<BTreeBuilder> builder,
                           BTreeBuilder::Create(path, options, page_size));
  std::string value_buf;
  for (const IndexEntry& e : entries) {
    value_buf.clear();
    PutDouble(e.prob, &value_buf);
    CALDERA_RETURN_IF_ERROR(
        builder->Add(EncodeBtcKey(e.value, e.time), value_buf));
  }
  return std::move(*builder).Finish();
}

}  // namespace

Result<std::unique_ptr<BTree>> BuildBtcIndex(const MarkovianStream& stream,
                                             size_t attr,
                                             const std::string& path,
                                             uint32_t page_size) {
  if (attr >= stream.schema().num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<IndexEntry> entries;
  for (uint64_t t = 0; t < stream.length(); ++t) {
    AppendAttributeEntries(stream.marginal(t), stream.schema(), attr, t,
                           &entries);
  }
  return BuildFromEntries(std::move(entries), path, page_size);
}

Result<std::unique_ptr<BTree>> BuildBtcIndexFromStored(
    StoredStream* stream, size_t attr, const std::string& path,
    uint32_t page_size) {
  if (attr >= stream->schema().num_attributes()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  std::vector<IndexEntry> entries;
  Distribution marginal;
  for (uint64_t t = 0; t < stream->length(); ++t) {
    CALDERA_RETURN_IF_ERROR(stream->ReadMarginal(t, &marginal));
    AppendAttributeEntries(marginal, stream->schema(), attr, t, &entries);
  }
  return BuildFromEntries(std::move(entries), path, page_size);
}

Status InsertBtcTimestep(BTree* tree, const Distribution& marginal,
                         const StreamSchema& schema, size_t attr,
                         uint64_t t) {
  if (tree->options().key_size != kBtcKeySize) {
    return Status::InvalidArgument("tree is not a BT_C index");
  }
  std::vector<IndexEntry> entries;
  AppendAttributeEntries(marginal, schema, attr, t, &entries);
  std::string value_buf;
  for (const IndexEntry& e : entries) {
    value_buf.clear();
    PutDouble(e.prob, &value_buf);
    Status inserted = tree->Insert(EncodeBtcKey(e.value, e.time), value_buf);
    if (!inserted.ok() && inserted.code() != StatusCode::kAlreadyExists) {
      return inserted;
    }
  }
  return Status::Ok();
}

Result<PredicateCursor> PredicateCursor::Create(BTree* tree,
                                                std::vector<uint32_t> values) {
  if (tree->options().key_size != kBtcKeySize) {
    return Status::InvalidArgument("tree is not a BT_C index");
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  PredicateCursor cursor(tree);
  cursor.heads_.reserve(values.size());
  for (uint32_t v : values) {
    Head head;
    head.value = v;
    CALDERA_ASSIGN_OR_RETURN(head.cursor, tree->Seek(EncodeBtcKey(v, 0)));
    cursor.heads_.push_back(std::move(head));
    cursor.LoadHead(cursor.heads_.size() - 1);
    if (cursor.heads_.size() > 0 && !cursor.heads_.back().cursor.valid() &&
        cursor.heads_.back().time == UINT64_MAX) {
      cursor.heads_.pop_back();
    }
  }
  cursor.RecomputeMin();
  return cursor;
}

void PredicateCursor::LoadHead(size_t i) {
  Head& head = heads_[i];
  if (!head.cursor.valid()) {
    head.time = UINT64_MAX;
    return;
  }
  uint32_t value;
  uint64_t time;
  DecodeBtcKey(head.cursor.key(), &value, &time);
  if (value != head.value) {
    // Ran off the end of this value's run.
    head.time = UINT64_MAX;
    return;
  }
  head.time = time;
  head.prob = GetDouble(head.cursor.value().data());
}

void PredicateCursor::RecomputeMin() {
  // Drop exhausted heads and find the minimum time.
  heads_.erase(std::remove_if(heads_.begin(), heads_.end(),
                              [](const Head& h) { return h.time == UINT64_MAX; }),
               heads_.end());
  min_time_ = UINT64_MAX;
  for (const Head& h : heads_) min_time_ = std::min(min_time_, h.time);
}

uint64_t PredicateCursor::time() const {
  CALDERA_DCHECK(valid());
  return min_time_;
}

double PredicateCursor::prob() const {
  CALDERA_DCHECK(valid());
  double sum = 0;
  for (const Head& h : heads_) {
    if (h.time == min_time_) sum += h.prob;
  }
  return sum;
}

Status PredicateCursor::Next() {
  CALDERA_DCHECK(valid());
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (heads_[i].time == min_time_) {
      CALDERA_RETURN_IF_ERROR(heads_[i].cursor.Next());
      LoadHead(i);
    }
  }
  RecomputeMin();
  return Status::Ok();
}

Status PredicateCursor::SeekTime(uint64_t t) {
  if (!valid() || min_time_ >= t) return Status::Ok();
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (heads_[i].time < t) {
      CALDERA_ASSIGN_OR_RETURN(heads_[i].cursor,
                               tree_->Seek(EncodeBtcKey(heads_[i].value, t)));
      LoadHead(i);
    }
  }
  RecomputeMin();
  return Status::Ok();
}

}  // namespace caldera
