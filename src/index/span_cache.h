#ifndef CALDERA_INDEX_SPAN_CACHE_H_
#define CALDERA_INDEX_SPAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "markov/cpt.h"

namespace caldera {

/// Stable 64-bit fingerprint (FNV-1a) used for span-cache key components:
/// stream directories and predicate-conditioning descriptions.
uint64_t FingerprintString(std::string_view s);

/// Mixes a second value into an existing fingerprint (order-sensitive).
uint64_t FingerprintCombine(uint64_t fp, uint64_t value);

/// Identity of one composed span CPT. Every component participates in
/// equality, so one cache instance can safely be shared across streams,
/// handle epochs, and predicate-conditioned MC indexes:
///   stream_id     fingerprint of the stream directory
///   epoch         handle-cache epoch the stream was opened under — bumping
///                 it (Caldera::InvalidateStreams) logically invalidates
///                 every entry of the old epoch without touching the cache
///   lo, hi        the span: the CPT relating timesteps lo -> hi
///   condition_fp  fingerprint of the destination-conditioning predicate
///                 (Section 3.3.2); 0 for the plain MC index
struct SpanKey {
  uint64_t stream_id = 0;
  uint64_t epoch = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint64_t condition_fp = 0;

  bool operator==(const SpanKey&) const = default;
};

struct SpanKeyHash {
  size_t operator()(const SpanKey& k) const;
};

/// Aggregate counters across all shards since construction (Clear resets
/// bytes/entries but preserves the traffic counters).
struct SpanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;    ///< Resident CPT payload bytes.
  uint64_t entries = 0;  ///< Resident entry count.
};

/// A byte-budgeted, sharded-mutex LRU cache of composed span CPTs, shared
/// across queries and batch workers. The MC-index access method re-composes
/// the same span CPTs for every query over a stream; memoizing them turns
/// the dominant cost of repeated variable-length queries into a hash
/// lookup. Values are shared_ptr<const Cpt>, so a hit also reuses the CPT's
/// cached CSR view across queries.
///
/// Thread-safe. Each shard has its own mutex and an equal slice of the byte
/// budget; an entry larger than its shard's slice is simply not cached.
class SpanCptCache {
 public:
  explicit SpanCptCache(size_t byte_budget, size_t num_shards = 8);

  SpanCptCache(const SpanCptCache&) = delete;
  SpanCptCache& operator=(const SpanCptCache&) = delete;

  /// Returns the cached CPT for `key`, refreshing its LRU position, or
  /// nullptr (counted as a miss).
  std::shared_ptr<const Cpt> Get(const SpanKey& key);

  /// Inserts (or replaces) `key`, evicting least-recently-used entries of
  /// the shard until its budget slice is respected.
  void Put(const SpanKey& key, std::shared_ptr<const Cpt> cpt);

  /// Drops every entry (hard invalidation: index rebuilds). Traffic
  /// counters are preserved; bytes/entries drop to zero.
  void Clear();

  SpanCacheStats stats() const;

  size_t byte_budget() const { return byte_budget_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    SpanKey key;
    std::shared_ptr<const Cpt> cpt;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<SpanKey, std::list<Entry>::iterator, SpanKeyHash> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const SpanKey& key);

  size_t byte_budget_;
  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Binding of a cache to one opened stream: the cache plus the fixed key
/// components of that stream. Attached to ArchivedStream / McIndex so the
/// hot path only fills in (lo, hi).
struct SpanCacheBinding {
  std::shared_ptr<SpanCptCache> cache;
  uint64_t stream_id = 0;
  uint64_t epoch = 0;
  uint64_t condition_fp = 0;

  bool valid() const { return cache != nullptr; }
  SpanKey KeyFor(uint64_t lo, uint64_t hi) const {
    return SpanKey{stream_id, epoch, lo, hi, condition_fp};
  }
};

}  // namespace caldera

#endif  // CALDERA_INDEX_SPAN_CACHE_H_
