#ifndef CALDERA_INDEX_MC_INDEX_H_
#define CALDERA_INDEX_MC_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/span_cache.h"
#include "markov/cpt.h"
#include "markov/stream.h"
#include "markov/stream_io.h"
#include "storage/record_file.h"

namespace caldera {

/// Options for building a Markov-chain index (Section 3.3.1).
struct McIndexOptions {
  /// Branching factor: level i stores CPT products spanning alpha^i steps.
  /// Larger alpha = less storage, more multiplications per lookup.
  uint32_t alpha = 2;

  /// Largest span materialized (caps the level count; spans beyond this are
  /// covered by chaining top-level entries). 0 = up to the stream length.
  uint64_t max_span = 0;

  /// Entries with probability below this are dropped (and rows left
  /// sub-stochastic). 0 = exact index. A small epsilon trades exactness for
  /// much smaller high-level (near-dense) entries.
  double truncate_eps = 0.0;

  uint32_t page_size = kDefaultPageSize;
};

/// Source of raw (level-0) transitions: returns the CPT *into* timestep t.
/// Usually bound to StoredStream::ReadTransition.
using TransitionSource = std::function<Status(uint64_t t, Cpt* out)>;

/// Wraps a transition source so every CPT it yields is restricted to
/// destinations satisfying `matcher` — the level-0 counterpart of
/// McIndex::BuildConditioned.
template <typename Matcher>
TransitionSource ConditionSource(TransitionSource source, Matcher matcher) {
  return [source = std::move(source), matcher = std::move(matcher)](
             uint64_t t, Cpt* out) -> Status {
    CALDERA_RETURN_IF_ERROR(source(t, out));
    *out = out->ConditionDestination(matcher);
    return Status::Ok();
  };
}

/// What one McIndex::Extend call actually recomputed — the incremental
/// maintenance counters the ingest tests assert on: appending B timesteps
/// completes at most one block per level per timestep, so nodes_recomputed
/// is bounded by B / (alpha - 1) + log_alpha(n) overall and by the level
/// count for a single-timestep append. Entries left of the right spine are
/// never touched.
/// Decoded mc.meta: what the ingest path needs to plan an incremental
/// extension (which level files will gain entries) before touching disk.
struct McMetaSummary {
  uint64_t stream_length = 0;
  uint32_t domain = 0;
  /// Entry count per stored level (level 1 first).
  std::vector<uint64_t> level_counts;
  /// The options the index was built with; defaults (exact, unbounded span,
  /// default page size) for indexes that predate persisted options.
  McIndexOptions options;
};

struct McExtendStats {
  /// Index entries (internal product nodes) composed and appended.
  uint64_t nodes_recomputed = 0;
  /// Level files that gained entries.
  uint64_t levels_touched = 0;
  /// Brand-new level files created (the tree grew in height).
  uint64_t levels_added = 0;
};

/// The Markov-chain index: a tree of precomputed CPT products that yields
/// the conditional probability table relating ANY two stream timesteps in
/// O(2 log_alpha(gap)) lookups instead of a full scan (Figure 7).
///
/// Level i (i >= 1) holds floor((T-1)/alpha^i) entries; entry k spans
/// timesteps [k*alpha^i, (k+1)*alpha^i]. Level 0 is the raw stream itself
/// and is never duplicated.
class McIndex {
 public:
  /// Builds the index for `stream` into directory `dir` (one record file
  /// per level plus a metadata file).
  static Status Build(const MarkovianStream& stream, const std::string& dir,
                      const McIndexOptions& options = {});

  /// Builds a *predicate-conditioned* MC index (Section 3.3.2): every raw
  /// CPT is first restricted to destinations satisfying `matcher`, so a
  /// composed entry spanning (a, b] is the sub-stochastic table
  ///   P(X_b = y AND X_t in P for all t in (a, b] | X_a = x).
  /// This summarizes stream intervals that continuously satisfy a positive
  /// Kleene loop predicate (e.g. O2 in Q(H2, (O2*, O2))), which the plain
  /// index cannot skip. Open such an index with a ConditionSource-wrapped
  /// transition source so level-0 residues are conditioned identically.
  template <typename Matcher>
  static Status BuildConditioned(const MarkovianStream& stream,
                                 const std::string& dir,
                                 const McIndexOptions& options,
                                 const Matcher& matcher) {
    MarkovianStream conditioned = stream;
    for (uint64_t t = 1; t < conditioned.length(); ++t) {
      *conditioned.mutable_transition(t) =
          stream.transition(t).ConditionDestination(matcher);
    }
    return Build(conditioned, dir, options);
  }

  /// Opens a previously built index. `transitions` supplies level-0 CPTs
  /// for spans the stored levels cannot cover.
  static Result<std::unique_ptr<McIndex>> Open(const std::string& dir,
                                               TransitionSource transitions,
                                               size_t pool_pages = 64);

  /// Recovers the options the on-disk index was built with. Indexes built
  /// before the options were persisted report the alpha from the metadata
  /// and defaults for the rest (exact index, unbounded span, default page
  /// size).
  static Result<McIndexOptions> ReadBuildOptions(const std::string& dir);

  /// Reads and decodes the on-disk metadata without opening the level files.
  static Result<McMetaSummary> ReadMeta(const std::string& dir);

  /// Incremental maintenance for the live-ingestion path: extends the index
  /// on disk from its recorded stream length to `new_length` without
  /// rebuilding. Because entry k of level i is the immutable product over
  /// timesteps [k*alpha^i, (k+1)*alpha^i], growing the stream only ever
  /// *appends* newly completed blocks along the right spine — this
  /// recomputes exactly those entries (composing them the same way Build
  /// does, so the resulting files are byte-identical to a full build) and
  /// rewrites the metadata. `transitions` must serve raw CPTs up to
  /// new_length. Open handles on the index keep serving their snapshot and
  /// must be reopened to see the growth.
  static Status Extend(const std::string& dir, TransitionSource transitions,
                       uint64_t new_length, McExtendStats* stats = nullptr);

  /// Computes CPT(from -> to), i.e. the product of the per-step transitions
  /// into from+1 .. to. Requires from < to.
  Status ComputeCpt(uint64_t from, uint64_t to, Cpt* out);

  /// Binds a (usually shared) span-CPT cache to this index. The binding's
  /// condition_fp must describe any destination conditioning baked into
  /// this index (0 for the plain index); min_level is mixed into the key
  /// on lookup because with truncation the composed span depends on which
  /// levels were used.
  void AttachSpanCache(SpanCacheBinding binding) {
    span_cache_ = std::move(binding);
  }
  const SpanCacheBinding& span_cache_binding() const { return span_cache_; }

  /// ComputeCpt through the attached span cache: spans of gap >= 2 are
  /// served from the cache when present (hit) or composed once and
  /// inserted (miss). Gap-1 spans and cacheless indexes fall through to a
  /// plain ComputeCpt. The returned CPT is shared, so its lazily built CSR
  /// kernel view is also reused across queries.
  Result<std::shared_ptr<const Cpt>> GetSpanCpt(uint64_t from, uint64_t to);

  /// Cache-only probe: returns the cached span CPT or nullptr, never
  /// composing. Used by the semi-independent method to opportunistically
  /// upgrade a gap step to an exact spanning update at lookup cost.
  std::shared_ptr<const Cpt> TryCachedSpan(uint64_t from, uint64_t to);

  /// Restricts lookups to levels >= `level` (level-0 residues still come
  /// from the raw stream). Models the paper's "omit lower index levels"
  /// experiment (Figure 11(a)); also lowers effective storage.
  Status SetMinLevel(uint32_t level);

  uint32_t alpha() const { return alpha_; }
  /// Number of stored levels (level 0, the raw stream, is not counted).
  uint32_t num_levels() const {
    return static_cast<uint32_t>(levels_.size()) - 1;
  }
  uint64_t stream_length() const { return stream_length_; }
  uint32_t min_level() const { return min_level_; }

  /// Bytes of CPT payload stored at levels >= min_level.
  uint64_t StoredBytes() const;

  /// Count of index-entry fetches (any level >= 1) since ResetStats.
  uint64_t entry_fetches() const { return entry_fetches_; }
  /// Count of raw (level-0) transition fetches since ResetStats.
  uint64_t raw_fetches() const { return raw_fetches_; }
  /// Count of CPT compositions since ResetStats.
  uint64_t compositions() const { return compositions_; }
  /// Span-cache traffic through this index since ResetStats.
  uint64_t span_cache_hits() const { return span_cache_hits_; }
  uint64_t span_cache_misses() const { return span_cache_misses_; }
  /// Wall seconds spent composing CPTs in ComputeCpt since ResetStats.
  double compose_seconds() const { return compose_seconds_; }
  void ResetStats();

  BufferPoolStats IoStats() const;

 private:
  McIndex() = default;

  Status FetchEntry(uint32_t level, uint64_t block, Cpt* out);

  /// Full cache key for a span, folding in min_level when non-default.
  SpanKey CacheKey(uint64_t from, uint64_t to) const;

  std::string dir_;
  uint32_t alpha_ = 2;
  uint64_t stream_length_ = 0;
  uint32_t domain_size_ = 0;
  uint32_t min_level_ = 1;
  TransitionSource transitions_;
  std::vector<std::unique_ptr<RecordFileReader>> levels_;  // [0] unused.
  std::vector<uint64_t> level_spans_;  // alpha^i per level.
  SpanCacheBinding span_cache_;
  uint64_t entry_fetches_ = 0;
  uint64_t raw_fetches_ = 0;
  uint64_t compositions_ = 0;
  uint64_t span_cache_hits_ = 0;
  uint64_t span_cache_misses_ = 0;
  double compose_seconds_ = 0.0;
  std::string scratch_;
};

}  // namespace caldera

#endif  // CALDERA_INDEX_MC_INDEX_H_
