#include "hmm/smoother.h"

#include <algorithm>
#include <cmath>

namespace caldera {

Result<MarkovianStream> SmoothToMarkovianStream(
    const Hmm& hmm, const std::vector<uint32_t>& observations,
    StreamSchema schema, const SmootherOptions& options) {
  CALDERA_RETURN_IF_ERROR(hmm.Validate());
  const uint64_t T = observations.size();
  const uint32_t N = hmm.num_states();
  if (T == 0) return Status::InvalidArgument("no observations to smooth");
  if (schema.state_count() != N) {
    return Status::InvalidArgument("schema state count " +
                                   std::to_string(schema.state_count()) +
                                   " != HMM state count " +
                                   std::to_string(N));
  }
  for (uint32_t o : observations) {
    if (o >= hmm.num_symbols()) {
      return Status::InvalidArgument("observation symbol out of range");
    }
  }

  // Forward pass (normalized filtering distributions).
  std::vector<std::vector<double>> alpha(T, std::vector<double>(N, 0.0));
  {
    double sum = 0;
    for (const Distribution::Entry& e : hmm.initial().entries()) {
      double v = e.prob * hmm.EmissionProb(e.value, observations[0]);
      alpha[0][e.value] = v;
      sum += v;
    }
    if (sum <= 0) {
      return Status::InvalidArgument(
          "observation sequence impossible under the HMM (t=0)");
    }
    for (double& v : alpha[0]) v /= sum;
  }
  for (uint64_t t = 1; t < T; ++t) {
    std::vector<double>& cur = alpha[t];
    const std::vector<double>& prev = alpha[t - 1];
    for (uint32_t x = 0; x < N; ++x) {
      if (prev[x] == 0.0) continue;
      const Cpt::Row* row = hmm.transition().FindRow(x);
      for (const Cpt::RowEntry& e : row->entries) {
        cur[e.dst] += prev[x] * e.prob;
      }
    }
    double sum = 0;
    for (uint32_t y = 0; y < N; ++y) {
      cur[y] *= hmm.EmissionProb(y, observations[t]);
      sum += cur[y];
    }
    if (sum <= 0) {
      return Status::InvalidArgument(
          "observation sequence impossible under the HMM (t=" +
          std::to_string(t) + ")");
    }
    for (double& v : cur) v /= sum;
  }

  // Backward pass (rescaled each step; only ratios matter).
  std::vector<std::vector<double>> beta(T, std::vector<double>(N, 0.0));
  std::fill(beta[T - 1].begin(), beta[T - 1].end(), 1.0);
  for (uint64_t t = T - 1; t-- > 0;) {
    const std::vector<double>& next = beta[t + 1];
    std::vector<double>& cur = beta[t];
    double sum = 0;
    for (uint32_t x = 0; x < N; ++x) {
      const Cpt::Row* row = hmm.transition().FindRow(x);
      double v = 0;
      for (const Cpt::RowEntry& e : row->entries) {
        v += e.prob * hmm.EmissionProb(e.dst, observations[t + 1]) *
             next[e.dst];
      }
      cur[x] = v;
      sum += v;
    }
    if (sum <= 0) {
      return Status::InvalidArgument(
          "observation sequence impossible under the HMM (backward)");
    }
    for (double& v : cur) v /= sum;
  }

  // Smoothed marginals gamma_t ~ alpha_t .* beta_t, with support
  // truncation.
  const double eps = options.truncate_eps;
  auto truncated_support = [&](const std::vector<double>& gamma) {
    std::vector<Distribution::Entry> entries;
    double sum = 0;
    for (uint32_t x = 0; x < N; ++x) sum += gamma[x];
    uint32_t argmax = 0;
    for (uint32_t x = 1; x < N; ++x) {
      if (gamma[x] > gamma[argmax]) argmax = x;
    }
    for (uint32_t x = 0; x < N; ++x) {
      double p = gamma[x] / sum;
      if (p >= eps && p > 0) entries.push_back({x, p});
    }
    if (entries.empty()) entries.push_back({argmax, 1.0});
    Distribution d = Distribution::FromPairs(std::move(entries));
    d.Normalize();
    return d;
  };

  MarkovianStream stream(std::move(schema));
  std::vector<double> gamma(N);
  for (uint32_t x = 0; x < N; ++x) gamma[x] = alpha[0][x] * beta[0][x];
  Distribution mu = truncated_support(gamma);
  stream.Append(mu, Cpt());

  for (uint64_t t = 1; t < T; ++t) {
    for (uint32_t y = 0; y < N; ++y) gamma[y] = alpha[t][y] * beta[t][y];
    Distribution support_t = truncated_support(gamma);

    // Smoothed conditional row for source x:
    //   P(X_t = y | X_{t-1} = x, o_1..T) ~ Tr(x,y) E(y,o_t) beta_t(y).
    auto full_row = [&](uint32_t x) {
      std::vector<Cpt::RowEntry> out;
      const Cpt::Row* row = hmm.transition().FindRow(x);
      for (const Cpt::RowEntry& e : row->entries) {
        double v =
            e.prob * hmm.EmissionProb(e.dst, observations[t]) * beta[t][e.dst];
        if (v > 0) out.push_back({e.dst, v});
      }
      return out;
    };

    // First pass: rescue sources whose restricted row would be empty by
    // widening the destination support with the row's best destination.
    std::vector<ValueId> extra;
    for (const Distribution::Entry& src : mu.entries()) {
      std::vector<Cpt::RowEntry> row = full_row(src.value);
      if (row.empty()) {
        return Status::Internal("dead-end source in smoothing");
      }
      bool any = false;
      for (const Cpt::RowEntry& e : row) {
        if (support_t.ProbabilityOf(e.dst) > 0) {
          any = true;
          break;
        }
      }
      if (!any) {
        const Cpt::RowEntry* best = &row[0];
        for (const Cpt::RowEntry& e : row) {
          if (e.prob > best->prob) best = &e;
        }
        extra.push_back(best->dst);
      }
    }
    if (!extra.empty()) {
      std::vector<Distribution::Entry> widened = support_t.entries();
      for (ValueId v : extra) {
        if (support_t.ProbabilityOf(v) == 0) widened.push_back({v, 0.0});
      }
      support_t = Distribution::FromPairs(std::move(widened));
    }

    // Second pass: build the truncated, renormalized CPT.
    Cpt cpt;
    for (const Distribution::Entry& src : mu.entries()) {
      std::vector<Cpt::RowEntry> restricted;
      double sum = 0;
      for (const Cpt::RowEntry& e : full_row(src.value)) {
        // Membership in the (possibly widened) support set; stored probs in
        // support_t are irrelevant here.
        bool in_support = false;
        for (const Distribution::Entry& s : support_t.entries()) {
          if (s.value == e.dst) {
            in_support = true;
            break;
          }
        }
        if (in_support) {
          restricted.push_back(e);
          sum += e.prob;
        }
      }
      if (restricted.empty() || sum <= 0) {
        return Status::Internal("empty restricted row after rescue");
      }
      for (Cpt::RowEntry& e : restricted) e.prob /= sum;
      cpt.SetRow(src.value, std::move(restricted));
    }

    // Recompute the marginal by propagation so the stream is exactly
    // self-consistent.
    mu = cpt.Propagate(mu);
    mu.Normalize();
    stream.Append(mu, std::move(cpt));
  }
  return stream;
}

}  // namespace caldera
