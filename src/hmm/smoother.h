#ifndef CALDERA_HMM_SMOOTHER_H_
#define CALDERA_HMM_SMOOTHER_H_

#include <vector>

#include "common/status.h"
#include "hmm/hmm.h"
#include "markov/stream.h"

namespace caldera {

/// Options for forward-backward smoothing.
struct SmootherOptions {
  /// Marginal entries below this are dropped from each timestep's support.
  /// Mirrors the finite particle count of sample-based inference (the
  /// paper's smoothing pipeline): exact Bayesian smoothing yields full
  /// supports and therefore data density 1.0 everywhere, which is neither
  /// realistic nor index-friendly. 0 disables truncation.
  double truncate_eps = 1e-3;
};

/// Exact Bayesian (forward-backward) smoothing: turns an HMM and an
/// observation sequence into a Markovian stream with per-timestep smoothed
/// marginals P(X_t | o_1..o_T) and pairwise conditionals
/// P(X_t | X_{t-1}, o_1..o_T) (Section 2.1).
///
/// After truncation, marginals are *recomputed* by propagating the initial
/// truncated marginal through the truncated CPTs, so the resulting stream
/// exactly satisfies MarkovianStream::Validate.
Result<MarkovianStream> SmoothToMarkovianStream(
    const Hmm& hmm, const std::vector<uint32_t>& observations,
    StreamSchema schema, const SmootherOptions& options = {});

}  // namespace caldera

#endif  // CALDERA_HMM_SMOOTHER_H_
