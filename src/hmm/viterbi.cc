#include "hmm/viterbi.h"

#include <cmath>
#include <limits>

namespace caldera {

Result<ViterbiResult> ViterbiDecode(
    const Hmm& hmm, const std::vector<uint32_t>& observations) {
  CALDERA_RETURN_IF_ERROR(hmm.Validate());
  const uint64_t T = observations.size();
  const uint32_t N = hmm.num_states();
  if (T == 0) return Status::InvalidArgument("no observations to decode");
  for (uint32_t o : observations) {
    if (o >= hmm.num_symbols()) {
      return Status::InvalidArgument("observation symbol out of range");
    }
  }

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> score(T, std::vector<double>(N, kNegInf));
  std::vector<std::vector<int64_t>> back(T, std::vector<int64_t>(N, -1));

  for (const Distribution::Entry& e : hmm.initial().entries()) {
    double emit = hmm.EmissionProb(e.value, observations[0]);
    if (e.prob > 0 && emit > 0) {
      score[0][e.value] = std::log(e.prob) + std::log(emit);
    }
  }

  for (uint64_t t = 1; t < T; ++t) {
    for (uint32_t x = 0; x < N; ++x) {
      if (score[t - 1][x] == kNegInf) continue;
      const Cpt::Row* row = hmm.transition().FindRow(x);
      for (const Cpt::RowEntry& e : row->entries) {
        double emit = hmm.EmissionProb(e.dst, observations[t]);
        if (e.prob <= 0 || emit <= 0) continue;
        double candidate =
            score[t - 1][x] + std::log(e.prob) + std::log(emit);
        if (candidate > score[t][e.dst]) {
          score[t][e.dst] = candidate;
          back[t][e.dst] = x;
        }
      }
    }
  }

  uint32_t best = 0;
  for (uint32_t x = 1; x < N; ++x) {
    if (score[T - 1][x] > score[T - 1][best]) best = x;
  }
  if (score[T - 1][best] == kNegInf) {
    return Status::InvalidArgument(
        "observation sequence impossible under the HMM");
  }

  ViterbiResult result;
  result.log_probability = score[T - 1][best];
  result.states.resize(T);
  result.states[T - 1] = best;
  for (uint64_t t = T - 1; t-- > 0;) {
    result.states[t] =
        static_cast<uint32_t>(back[t + 1][result.states[t + 1]]);
  }
  return result;
}

}  // namespace caldera
