#include "hmm/hmm.h"

#include <cmath>

namespace caldera {

Status Hmm::Validate(double tol) const {
  if (num_states_ == 0) return Status::InvalidArgument("HMM has no states");
  if (num_symbols_ == 0) return Status::InvalidArgument("HMM has no symbols");
  if (!initial_.IsNormalized(tol)) {
    return Status::InvalidArgument("HMM initial distribution not normalized");
  }
  for (const Distribution::Entry& e : initial_.entries()) {
    if (e.value >= num_states_) {
      return Status::InvalidArgument("initial mass on unknown state");
    }
  }
  CALDERA_RETURN_IF_ERROR(transition_.ValidateStochastic(tol));
  CALDERA_RETURN_IF_ERROR(emission_.ValidateStochastic(tol));
  for (uint32_t s = 0; s < num_states_; ++s) {
    if (transition_.FindRow(s) == nullptr) {
      return Status::InvalidArgument("state " + std::to_string(s) +
                                     " has no transition row");
    }
    if (emission_.FindRow(s) == nullptr) {
      return Status::InvalidArgument("state " + std::to_string(s) +
                                     " has no emission row");
    }
  }
  for (const Cpt::Row& row : transition_.rows()) {
    for (const Cpt::RowEntry& e : row.entries) {
      if (e.dst >= num_states_) {
        return Status::InvalidArgument("transition to unknown state");
      }
    }
  }
  for (const Cpt::Row& row : emission_.rows()) {
    for (const Cpt::RowEntry& e : row.entries) {
      if (e.dst >= num_symbols_) {
        return Status::InvalidArgument("emission of unknown symbol");
      }
    }
  }
  return Status::Ok();
}

uint32_t Hmm::SampleRow(const Cpt::Row& row, Rng* rng) const {
  double u = rng->NextDouble();
  double acc = 0;
  for (const Cpt::RowEntry& e : row.entries) {
    acc += e.prob;
    if (u < acc) return e.dst;
  }
  return row.entries.back().dst;
}

Status Hmm::Sample(uint64_t length, Rng* rng, std::vector<uint32_t>* states,
                   std::vector<uint32_t>* observations) const {
  if (length == 0) return Status::InvalidArgument("length must be >= 1");
  states->clear();
  states->reserve(length);
  // Draw the initial state.
  double u = rng->NextDouble();
  double acc = 0;
  uint32_t state = initial_.entries().back().value;
  for (const Distribution::Entry& e : initial_.entries()) {
    acc += e.prob;
    if (u < acc) {
      state = e.value;
      break;
    }
  }
  states->push_back(state);
  for (uint64_t t = 1; t < length; ++t) {
    const Cpt::Row* row = transition_.FindRow(state);
    if (row == nullptr || row->entries.empty()) {
      return Status::FailedPrecondition("state " + std::to_string(state) +
                                        " has no transition row");
    }
    state = SampleRow(*row, rng);
    states->push_back(state);
  }
  return EmitObservations(*states, rng, observations);
}

Status Hmm::EmitObservations(const std::vector<uint32_t>& states, Rng* rng,
                             std::vector<uint32_t>* observations) const {
  observations->clear();
  observations->reserve(states.size());
  for (uint32_t state : states) {
    const Cpt::Row* row = emission_.FindRow(state);
    if (row == nullptr || row->entries.empty()) {
      return Status::FailedPrecondition("state " + std::to_string(state) +
                                        " has no emission row");
    }
    observations->push_back(SampleRow(*row, rng));
  }
  return Status::Ok();
}

}  // namespace caldera
