#ifndef CALDERA_HMM_HMM_H_
#define CALDERA_HMM_HMM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "markov/cpt.h"
#include "markov/distribution.h"

namespace caldera {

/// A Hidden Markov Model (Section 2.1): the generative model used to smooth
/// noisy sensor streams into Markovian streams. Hidden states are e.g.
/// locations; observation symbols are e.g. "antenna A fired" with a
/// dedicated silence symbol for timesteps with no reading.
class Hmm {
 public:
  Hmm(uint32_t num_states, uint32_t num_symbols)
      : num_states_(num_states), num_symbols_(num_symbols) {}

  uint32_t num_states() const { return num_states_; }
  uint32_t num_symbols() const { return num_symbols_; }

  void SetInitial(Distribution initial) { initial_ = std::move(initial); }
  const Distribution& initial() const { return initial_; }

  /// Sets P(next | state) as a sparse row.
  void SetTransitionRow(uint32_t state, std::vector<Cpt::RowEntry> row) {
    transition_.SetRow(state, std::move(row));
  }
  const Cpt& transition() const { return transition_; }

  /// Sets P(symbol | state) as a sparse row (must sum to 1).
  void SetEmissionRow(uint32_t state, std::vector<Cpt::RowEntry> row) {
    emission_.SetRow(state, std::move(row));
  }
  double EmissionProb(uint32_t state, uint32_t symbol) const {
    return emission_.Probability(state, symbol);
  }
  const Cpt& emission() const { return emission_; }

  /// Checks stochasticity of initial, transition and emission tables and
  /// that every state has both rows.
  Status Validate(double tol = 1e-6) const;

  /// Samples a hidden trajectory and its observation sequence.
  Status Sample(uint64_t length, Rng* rng, std::vector<uint32_t>* states,
                std::vector<uint32_t>* observations) const;

  /// Samples the observation sequence for a GIVEN hidden trajectory (used
  /// by the RFID simulator, whose walks are scripted rather than drawn from
  /// the transition model).
  Status EmitObservations(const std::vector<uint32_t>& states, Rng* rng,
                          std::vector<uint32_t>* observations) const;

 private:
  uint32_t SampleRow(const Cpt::Row& row, Rng* rng) const;

  uint32_t num_states_;
  uint32_t num_symbols_;
  Distribution initial_;
  Cpt transition_;
  Cpt emission_;
};

}  // namespace caldera

#endif  // CALDERA_HMM_HMM_H_
