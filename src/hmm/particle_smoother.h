#ifndef CALDERA_HMM_PARTICLE_SMOOTHER_H_
#define CALDERA_HMM_PARTICLE_SMOOTHER_H_

#include <vector>

#include "common/status.h"
#include "hmm/hmm.h"
#include "markov/stream.h"

namespace caldera {

/// Options for sample-based (particle) smoothing.
struct ParticleSmootherOptions {
  /// Particles in the forward filter.
  size_t num_particles = 1024;
  /// Trajectories drawn by backward simulation; marginals and CPTs are
  /// estimated by counting over these (Figure 2 of the paper).
  size_t num_trajectories = 512;
  uint64_t seed = 42;
};

/// Sample-based smoothing (forward filtering / backward simulation): the
/// inference style illustrated in Figure 2 of the paper. Produces a
/// Markovian stream whose marginals and CPTs are trajectory counts — and
/// are therefore exactly self-consistent by construction.
Result<MarkovianStream> ParticleSmoothToMarkovianStream(
    const Hmm& hmm, const std::vector<uint32_t>& observations,
    StreamSchema schema, const ParticleSmootherOptions& options = {});

}  // namespace caldera

#endif  // CALDERA_HMM_PARTICLE_SMOOTHER_H_
