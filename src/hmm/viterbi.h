#ifndef CALDERA_HMM_VITERBI_H_
#define CALDERA_HMM_VITERBI_H_

#include <vector>

#include "common/status.h"
#include "hmm/hmm.h"

namespace caldera {

/// Result of Viterbi decoding.
struct ViterbiResult {
  /// The maximum a-posteriori hidden trajectory.
  std::vector<uint32_t> states;
  /// log P(states, observations) under the model.
  double log_probability = 0.0;
};

/// Viterbi decoding: the single most likely hidden trajectory explaining an
/// observation sequence. Complements the smoothers: where
/// SmoothToMarkovianStream yields per-timestep *distributions* (what
/// Caldera archives and queries), Viterbi yields one hard trajectory — the
/// deterministic-cleaning baseline the paper's related work contrasts
/// against, useful for diagnostics and simulator validation.
Result<ViterbiResult> ViterbiDecode(const Hmm& hmm,
                                    const std::vector<uint32_t>& observations);

}  // namespace caldera

#endif  // CALDERA_HMM_VITERBI_H_
