#include "hmm/particle_smoother.h"

#include <algorithm>
#include <map>

namespace caldera {

namespace {

/// Draws an index from unnormalized weights.
size_t SampleWeighted(const std::vector<double>& weights, double total,
                      Rng* rng) {
  double u = rng->NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace

Result<MarkovianStream> ParticleSmoothToMarkovianStream(
    const Hmm& hmm, const std::vector<uint32_t>& observations,
    StreamSchema schema, const ParticleSmootherOptions& options) {
  CALDERA_RETURN_IF_ERROR(hmm.Validate());
  const uint64_t T = observations.size();
  if (T == 0) return Status::InvalidArgument("no observations to smooth");
  if (schema.state_count() != hmm.num_states()) {
    return Status::InvalidArgument("schema/HMM state count mismatch");
  }
  if (options.num_particles == 0 || options.num_trajectories == 0) {
    return Status::InvalidArgument("particle counts must be positive");
  }
  Rng rng(options.seed);

  // Forward filter with per-step resampling. particles[t] are equally
  // weighted after resampling.
  const size_t P = options.num_particles;
  std::vector<std::vector<uint32_t>> particles(T);
  {
    // t = 0: draw from the initial distribution, weight by emission.
    std::vector<uint32_t> drawn(P);
    std::vector<double> weights(P);
    double total = 0;
    for (size_t i = 0; i < P; ++i) {
      double u = rng.NextDouble();
      double acc = 0;
      uint32_t state = hmm.initial().entries().back().value;
      for (const Distribution::Entry& e : hmm.initial().entries()) {
        acc += e.prob;
        if (u < acc) {
          state = e.value;
          break;
        }
      }
      drawn[i] = state;
      weights[i] = hmm.EmissionProb(state, observations[0]);
      total += weights[i];
    }
    if (total <= 0) {
      return Status::InvalidArgument("all particles died at t=0");
    }
    particles[0].resize(P);
    for (size_t i = 0; i < P; ++i) {
      particles[0][i] = drawn[SampleWeighted(weights, total, &rng)];
    }
  }
  for (uint64_t t = 1; t < T; ++t) {
    std::vector<uint32_t> drawn(P);
    std::vector<double> weights(P);
    double total = 0;
    for (size_t i = 0; i < P; ++i) {
      uint32_t prev = particles[t - 1][i];
      const Cpt::Row* row = hmm.transition().FindRow(prev);
      double u = rng.NextDouble();
      double acc = 0;
      uint32_t state = row->entries.back().dst;
      for (const Cpt::RowEntry& e : row->entries) {
        acc += e.prob;
        if (u < acc) {
          state = e.dst;
          break;
        }
      }
      drawn[i] = state;
      weights[i] = hmm.EmissionProb(state, observations[t]);
      total += weights[i];
    }
    if (total <= 0) {
      return Status::InvalidArgument("all particles died at t=" +
                                     std::to_string(t));
    }
    particles[t].resize(P);
    for (size_t i = 0; i < P; ++i) {
      particles[t][i] = drawn[SampleWeighted(weights, total, &rng)];
    }
  }

  // Backward simulation: draw M smoothed trajectories. For speed, reduce
  // each filtered particle set to per-state counts first.
  const size_t M = options.num_trajectories;
  std::vector<std::map<uint32_t, double>> filtered(T);
  for (uint64_t t = 0; t < T; ++t) {
    for (uint32_t s : particles[t]) filtered[t][s] += 1.0;
  }

  std::vector<std::vector<uint32_t>> trajectories(
      M, std::vector<uint32_t>(T, 0));
  for (size_t j = 0; j < M; ++j) {
    // x_{T-1} ~ filtered[T-1].
    {
      std::vector<double> w;
      std::vector<uint32_t> states;
      double total = 0;
      for (const auto& [s, c] : filtered[T - 1]) {
        states.push_back(s);
        w.push_back(c);
        total += c;
      }
      trajectories[j][T - 1] = states[SampleWeighted(w, total, &rng)];
    }
    for (uint64_t t = T - 1; t-- > 0;) {
      uint32_t next = trajectories[j][t + 1];
      std::vector<double> w;
      std::vector<uint32_t> states;
      double total = 0;
      for (const auto& [s, c] : filtered[t]) {
        double p = c * hmm.transition().Probability(s, next);
        if (p > 0) {
          states.push_back(s);
          w.push_back(p);
          total += p;
        }
      }
      if (states.empty()) {
        // Degenerate (filter collapse): fall back to the filtered marginal.
        for (const auto& [s, c] : filtered[t]) {
          states.push_back(s);
          w.push_back(c);
          total += c;
        }
      }
      trajectories[j][t] = states[SampleWeighted(w, total, &rng)];
    }
  }

  // Count trajectories into marginals and CPTs; counts are exactly
  // self-consistent (marginal(t) == marginal(t-1) * cpt(t)).
  MarkovianStream stream(std::move(schema));
  std::map<uint32_t, double> state_counts;
  for (uint64_t t = 0; t < T; ++t) {
    state_counts.clear();
    for (size_t j = 0; j < M; ++j) state_counts[trajectories[j][t]] += 1.0;
    std::vector<Distribution::Entry> entries;
    for (const auto& [s, c] : state_counts) {
      entries.push_back({s, c / static_cast<double>(M)});
    }
    Distribution marginal = Distribution::FromPairs(std::move(entries));

    Cpt cpt;
    if (t > 0) {
      std::map<uint32_t, std::map<uint32_t, double>> pair_counts;
      std::map<uint32_t, double> src_counts;
      for (size_t j = 0; j < M; ++j) {
        pair_counts[trajectories[j][t - 1]][trajectories[j][t]] += 1.0;
        src_counts[trajectories[j][t - 1]] += 1.0;
      }
      for (const auto& [src, dsts] : pair_counts) {
        std::vector<Cpt::RowEntry> row;
        for (const auto& [dst, c] : dsts) {
          row.push_back({dst, c / src_counts[src]});
        }
        cpt.SetRow(src, std::move(row));
      }
    }
    stream.Append(std::move(marginal), std::move(cpt));
  }
  return stream;
}

}  // namespace caldera
