#ifndef CALDERA_COMMON_STATUS_H_
#define CALDERA_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace caldera {

// Error categories used throughout Caldera. The library does not throw
// exceptions; every fallible operation returns a Status or Result<T>.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIoError,
  kFailedPrecondition,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "IO_ERROR", ...).
const char* StatusCodeName(StatusCode code);

/// A Status carries either success (OK) or an error code plus message.
/// Cheap to copy in the OK case; error messages are heap-allocated.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value of type T or an error Status.
/// Modeled on absl::StatusOr; accessors CHECK-fail on misuse.
template <typename T>
class Result {
 public:
  // Implicit construction from values and from error Statuses keeps call
  // sites terse: `return 42;` / `return Status::NotFound("...")`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::move(std::get<T>(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates a non-OK Status from an expression.
#define CALDERA_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::caldera::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (0)

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// moves the value into `lhs`.
#define CALDERA_ASSIGN_OR_RETURN(lhs, expr)           \
  CALDERA_ASSIGN_OR_RETURN_IMPL_(                     \
      CALDERA_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define CALDERA_CONCAT_INNER_(a, b) a##b
#define CALDERA_CONCAT_(a, b) CALDERA_CONCAT_INNER_(a, b)
#define CALDERA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace caldera

#endif  // CALDERA_COMMON_STATUS_H_
