#include "common/encoding.h"

#include "common/logging.h"

namespace caldera {

void EncodeU32(uint32_t value, std::string* out) {
  char buf[4];
  buf[0] = static_cast<char>((value >> 24) & 0xff);
  buf[1] = static_cast<char>((value >> 16) & 0xff);
  buf[2] = static_cast<char>((value >> 8) & 0xff);
  buf[3] = static_cast<char>(value & 0xff);
  out->append(buf, 4);
}

void EncodeU64(uint64_t value, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (56 - 8 * i)) & 0xff);
  }
  out->append(buf, 8);
}

uint32_t DecodeU32(const char* data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t DecodeU64(const char* data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void EncodeDoubleAscending(double v, std::string* out) {
  CALDERA_DCHECK(v >= 0.0);
  // For non-negative IEEE754 doubles, the raw bit pattern interpreted as an
  // unsigned integer is monotone in the value.
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  EncodeU64(bits, out);
}

double DecodeDoubleAscending(const char* data) {
  uint64_t bits = DecodeU64(data);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void EncodeProbDescending(double p, std::string* out) {
  CALDERA_DCHECK(p >= 0.0 && p <= 1.0);
  EncodeDoubleAscending(1.0 - p, out);
}

double DecodeProbDescending(const char* data) {
  return 1.0 - DecodeDoubleAscending(data);
}

void PutLengthPrefixed(std::string_view s, std::string* out) {
  PutFixed32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view data, size_t* offset,
                       std::string_view* result) {
  if (*offset + 4 > data.size()) return false;
  uint32_t len = GetFixed32(data.data() + *offset);
  *offset += 4;
  if (*offset + len > data.size()) return false;
  *result = data.substr(*offset, len);
  *offset += len;
  return true;
}

}  // namespace caldera
