#ifndef CALDERA_COMMON_CRC32C_H_
#define CALDERA_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace caldera {

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum used by the v2 pager page format. Software path is slice-by-8;
// on x86-64 the SSE4.2 CRC32 instruction is selected at runtime when the
// CPU supports it. Incremental use:
//   uint32_t crc = Crc32c(payload, n);
//   crc = Crc32cExtend(crc, more, m);    // crc of payload||more

/// CRC-32C of `data[0, n)`.
uint32_t Crc32c(const char* data, size_t n);

/// Extends `crc` (a value previously returned by Crc32c/Crc32cExtend) with
/// `data[0, n)`.
uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n);

/// True when the hardware (SSE4.2) implementation is in use. Exposed so
/// benchmarks can report which path they measured.
bool Crc32cHardwareEnabled();

namespace internal {
/// The portable slice-by-8 implementation, bypassing dispatch. Exposed so
/// tests can validate it even on machines where the hardware path wins.
uint32_t Crc32cExtendSoftware(uint32_t crc, const char* data, size_t n);
}  // namespace internal

}  // namespace caldera

#endif  // CALDERA_COMMON_CRC32C_H_
