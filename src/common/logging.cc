#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace caldera {

namespace {
std::atomic<bool> g_verbose{true};
}  // namespace

void SetLogVerbose(bool verbose) { g_verbose.store(verbose); }
bool LogVerbose() { return g_verbose.load(); }

namespace internal_logging {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool quiet = !LogVerbose() &&
                     (level_ == LogLevel::kInfo || level_ == LogLevel::kWarning);
  if (!quiet) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace caldera
