#ifndef CALDERA_COMMON_THREAD_POOL_H_
#define CALDERA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace caldera {

/// A fixed-size thread pool with a single shared FIFO queue (no work
/// stealing — Caldera's parallel workloads are one coarse task per stream,
/// so a central queue is contention-free in practice).
///
/// Tasks must not throw; the library is exception-free and a throwing task
/// would terminate. Submit/Wait may be called from any thread, but tasks
/// themselves must not Submit to the pool they run on while another thread
/// is in Wait (Wait only waits for tasks submitted before it observed an
/// empty queue).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker.
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;  // Workers sleep on this.
  std::condition_variable all_done_;        // Wait() sleeps on this.
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Tasks popped but not yet finished.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace caldera

#endif  // CALDERA_COMMON_THREAD_POOL_H_
