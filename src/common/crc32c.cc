#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <cpuid.h>
#include <nmmintrin.h>
#define CALDERA_CRC32C_X86 1
#endif

namespace caldera {

namespace {

// Slice-by-8 lookup tables for the reflected Castagnoli polynomial.
// table[0] is the classic byte-at-a-time table; table[k][b] is the CRC of
// byte b followed by k zero bytes, letting the loop fold 8 input bytes per
// iteration.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

uint32_t ExtendSoftware(uint32_t crc, const char* data, size_t n) {
  const auto& t = Tables().t;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  crc = ~crc;
  // Align to 8 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // Little-endian: low 4 bytes fold the running CRC.
    crc = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
          t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
          t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
          t[1][(word >> 48) & 0xff] ^ t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

#ifdef CALDERA_CRC32C_X86

__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const char* data,
                                                          size_t n) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}

bool DetectSse42() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & bit_SSE4_2) != 0;
}

#endif  // CALDERA_CRC32C_X86

using ExtendFn = uint32_t (*)(uint32_t, const char*, size_t);

ExtendFn ChooseExtend() {
#ifdef CALDERA_CRC32C_X86
  if (DetectSse42()) return &ExtendHardware;
#endif
  return &ExtendSoftware;
}

ExtendFn ResolvedExtend() {
  static const ExtendFn fn = ChooseExtend();
  return fn;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  return ResolvedExtend()(0, data, n);
}

uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  return ResolvedExtend()(crc, data, n);
}

bool Crc32cHardwareEnabled() {
#ifdef CALDERA_CRC32C_X86
  return ResolvedExtend() == &ExtendHardware;
#else
  return false;
#endif
}

namespace internal {
uint32_t Crc32cExtendSoftware(uint32_t crc, const char* data, size_t n) {
  return ExtendSoftware(crc, data, n);
}
}  // namespace internal

}  // namespace caldera
