#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace caldera {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  }
}

}  // namespace caldera
