#ifndef CALDERA_COMMON_LOGGING_H_
#define CALDERA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace caldera {
namespace internal_logging {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Sink for a single log statement; flushes (and aborts for kFatal) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Globally silences LOG(INFO)/LOG(WARNING) (used by benchmarks).
void SetLogVerbose(bool verbose);
bool LogVerbose();

#define CALDERA_LOG_INFO                                        \
  ::caldera::internal_logging::LogMessage(                      \
      ::caldera::internal_logging::LogLevel::kInfo, __FILE__, __LINE__)
#define CALDERA_LOG_WARNING                                     \
  ::caldera::internal_logging::LogMessage(                      \
      ::caldera::internal_logging::LogLevel::kWarning, __FILE__, __LINE__)
#define CALDERA_LOG_ERROR                                       \
  ::caldera::internal_logging::LogMessage(                      \
      ::caldera::internal_logging::LogLevel::kError, __FILE__, __LINE__)
#define CALDERA_LOG_FATAL                                       \
  ::caldera::internal_logging::LogMessage(                      \
      ::caldera::internal_logging::LogLevel::kFatal, __FILE__, __LINE__)

// CHECK macros abort with a message when the condition fails. They guard
// internal invariants (programming errors), not user input — user input
// errors surface as Status.
#define CALDERA_CHECK(cond)                                     \
  if (!(cond))                                                  \
  CALDERA_LOG_FATAL << "Check failed: " #cond " "

#define CALDERA_CHECK_OK(expr)                                  \
  do {                                                          \
    const ::caldera::Status _st = (expr);                       \
    if (!_st.ok())                                              \
      CALDERA_LOG_FATAL << "Status not OK: " << _st.ToString(); \
  } while (0)

#define CALDERA_DCHECK(cond) CALDERA_CHECK(cond)

}  // namespace caldera

#endif  // CALDERA_COMMON_LOGGING_H_
