#ifndef CALDERA_COMMON_ENCODING_H_
#define CALDERA_COMMON_ENCODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace caldera {

// Order-preserving binary key encoding.
//
// Caldera's B+ trees compare keys with memcmp, so composite keys
// (value, time) and (value, 1-prob, time) are built by concatenating
// order-preserving encodings of each component:
//   * unsigned ints  -> big-endian bytes
//   * probabilities  -> big-endian IEEE754 bits of (1.0 - p), so that higher
//     probabilities sort first (descending-probability scans are forward
//     scans)

/// Appends a big-endian u32 to `out`; lexicographic order == numeric order.
void EncodeU32(uint32_t value, std::string* out);

/// Appends a big-endian u64 to `out`.
void EncodeU64(uint64_t value, std::string* out);

/// Appends an order-preserving encoding of a non-negative double in [0, 1]
/// such that LARGER probabilities compare SMALLER (descending order).
void EncodeProbDescending(double p, std::string* out);

/// Appends an order-preserving encoding of a non-negative finite double
/// (ascending order).
void EncodeDoubleAscending(double v, std::string* out);

/// Decodes a big-endian u32 from data (must have >= 4 bytes).
uint32_t DecodeU32(const char* data);

/// Decodes a big-endian u64 from data (must have >= 8 bytes).
uint64_t DecodeU64(const char* data);

/// Inverse of EncodeProbDescending (8 bytes).
double DecodeProbDescending(const char* data);

/// Inverse of EncodeDoubleAscending (8 bytes).
double DecodeDoubleAscending(const char* data);

// Fixed-width little-endian value (de)serialization helpers for on-disk
// record formats (not order-preserving; do not use for keys).

inline void PutFixed32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutFixed64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void PutDouble(double v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline uint32_t GetFixed32(const char* data) {
  uint32_t v;
  std::memcpy(&v, data, 4);
  return v;
}

inline uint64_t GetFixed64(const char* data) {
  uint64_t v;
  std::memcpy(&v, data, 8);
  return v;
}

inline double GetDouble(const char* data) {
  double v;
  std::memcpy(&v, data, 8);
  return v;
}

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string_view s, std::string* out);

/// Reads a length-prefixed string starting at data[*offset]; advances
/// *offset. Returns false if truncated.
bool GetLengthPrefixed(std::string_view data, size_t* offset,
                       std::string_view* result);

}  // namespace caldera

#endif  // CALDERA_COMMON_ENCODING_H_
