#ifndef CALDERA_COMMON_RNG_H_
#define CALDERA_COMMON_RNG_H_

#include <cstdint>

namespace caldera {

/// Deterministic, fast PRNG (xoshiro256**). Used by the RFID simulator,
/// synthetic workload generators, and property tests so experiments are
/// exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : NextU64() % n; }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace caldera

#endif  // CALDERA_COMMON_RNG_H_
