#ifndef CALDERA_QUERY_PREDICATE_H_
#define CALDERA_QUERY_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "markov/schema.h"

namespace caldera {

/// A Boolean function on one stream attribute (Section 2.2). Regular query
/// NFAs transition when predicates are satisfied by the stream state.
///
/// Indexable predicates (equality / set / range) expose the attribute values
/// they match so access methods can position B+ tree cursors; negations are
/// evaluated against their positive base (whose values ARE indexed).
class Predicate {
 public:
  enum class Kind : uint8_t { kAny, kEquality, kSet, kRange, kNegation };

  Predicate() : kind_(Kind::kAny) {}

  /// Matches every state (the implicit Sigma of the restart loop).
  static Predicate Any();

  /// attribute == value.
  static Predicate Equality(size_t attr, uint32_t value, std::string name);

  /// attribute in {values}.
  static Predicate In(size_t attr, std::vector<uint32_t> values,
                      std::string name);

  /// lo <= attribute <= hi.
  static Predicate Range(size_t attr, uint32_t lo, uint32_t hi,
                         std::string name);

  /// Logical negation of an indexable predicate.
  static Predicate Not(Predicate base);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  size_t attribute() const { return attr_; }

  /// True when the encoded stream state satisfies this predicate.
  bool Matches(const StreamSchema& schema, ValueId state) const;

  /// True for equality/set/range (predicates whose matching values can be
  /// enumerated for index lookups).
  bool indexable() const {
    return kind_ == Kind::kEquality || kind_ == Kind::kSet ||
           kind_ == Kind::kRange;
  }

  bool is_negation() const { return kind_ == Kind::kNegation; }
  bool is_any() const { return kind_ == Kind::kAny; }

  /// For negations: the positive base predicate. Undefined otherwise.
  const Predicate& base() const { return *base_; }

  /// The attribute values this (indexable) predicate matches, ascending.
  std::vector<uint32_t> MatchedAttributeValues(
      const StreamSchema& schema) const;

  /// Validates the predicate against a schema (attribute index and value
  /// bounds).
  Status ValidateAgainst(const StreamSchema& schema) const;

 private:
  Kind kind_;
  size_t attr_ = 0;
  std::vector<uint32_t> values_;        // kEquality (1 value) / kSet.
  uint32_t lo_ = 0, hi_ = 0;            // kRange.
  std::shared_ptr<const Predicate> base_;  // kNegation.
  std::string name_;
};

/// A star-schema dimension table (Section 3.4.1): maps values of one stream
/// attribute to descriptive columns, e.g. LocationType(locationID ->
/// locationType). Used to build predicates like "location is a CoffeeRoom"
/// and to build join indexes.
class DimensionTable {
 public:
  DimensionTable() : key_attribute_(0) {}
  DimensionTable(std::string name, size_t key_attribute)
      : name_(std::move(name)), key_attribute_(key_attribute) {}

  /// Adds a column; `values[v]` is the column value for attribute value v.
  /// Column length must equal the attribute's domain size at query time.
  void AddColumn(std::string column, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  size_t key_attribute() const { return key_attribute_; }

  /// All attribute values whose `column` equals `value`, ascending.
  Result<std::vector<uint32_t>> Lookup(const std::string& column,
                                       const std::string& value) const;

  /// Column value for one attribute value.
  Result<std::string> ColumnValue(const std::string& column,
                                  uint32_t attr_value) const;

  /// Distinct values of `column`, in first-appearance order.
  Result<std::vector<std::string>> DistinctValues(
      const std::string& column) const;

  /// Builds the set predicate "key_attribute joins to a row whose `column`
  /// equals `value`" — the conceptual star-schema join of the paper,
  /// resolved to stream attribute values at plan time.
  Result<Predicate> MakePredicate(const std::string& column,
                                  const std::string& value) const;

 private:
  std::string name_;
  size_t key_attribute_;
  std::vector<std::pair<std::string, std::vector<std::string>>> columns_;
};

}  // namespace caldera

#endif  // CALDERA_QUERY_PREDICATE_H_
