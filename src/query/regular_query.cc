#include "query/regular_query.h"

namespace caldera {

RegularQuery RegularQuery::Sequence(std::string name,
                                    std::vector<Predicate> predicates) {
  std::vector<QueryLink> links;
  links.reserve(predicates.size());
  for (Predicate& p : predicates) {
    links.push_back(QueryLink{std::nullopt, std::move(p)});
  }
  return RegularQuery(std::move(name), std::move(links));
}

bool RegularQuery::fixed_length() const {
  for (const QueryLink& link : links_) {
    if (link.is_kleene()) return false;
  }
  return true;
}

bool RegularQuery::HasPositiveLoop() const {
  for (const QueryLink& link : links_) {
    if (link.is_kleene() && !link.loop->is_negation() && !link.loop->is_any()) {
      return true;
    }
  }
  return false;
}

std::vector<const Predicate*> RegularQuery::CursorPredicates() const {
  std::vector<const Predicate*> out;
  for (const QueryLink& link : links_) {
    if (link.primary.indexable()) {
      out.push_back(&link.primary);
    } else if (link.primary.is_negation()) {
      out.push_back(&link.primary.base());
    }
    if (link.is_kleene()) {
      if (link.loop->indexable()) {
        out.push_back(&*link.loop);
      } else if (link.loop->is_negation()) {
        out.push_back(&link.loop->base());
      }
    }
  }
  return out;
}

Status RegularQuery::ValidateAgainst(const StreamSchema& schema) const {
  if (links_.empty()) {
    return Status::InvalidArgument("query '" + name_ + "' has no links");
  }
  if (links_.size() > 16) {
    return Status::InvalidArgument("query '" + name_ +
                                   "' exceeds 16 links");
  }
  for (const QueryLink& link : links_) {
    CALDERA_RETURN_IF_ERROR(link.primary.ValidateAgainst(schema));
    if (link.primary.is_any()) {
      return Status::InvalidArgument(
          "query '" + name_ + "' uses '*' as a primary predicate");
    }
    if (link.is_kleene()) {
      CALDERA_RETURN_IF_ERROR(link.loop->ValidateAgainst(schema));
    }
  }
  return Status::Ok();
}

std::string RegularQuery::ToString() const {
  std::string out = "Q(";
  for (size_t i = 0; i < links_.size(); ++i) {
    if (i > 0) out += ", ";
    if (links_[i].is_kleene()) {
      out += links_[i].loop->name();
      out += "*, ";
    }
    out += links_[i].primary.name();
  }
  out += ")";
  return out;
}

}  // namespace caldera
