#include "query/predicate.h"

#include <algorithm>

#include "common/logging.h"

namespace caldera {

Predicate Predicate::Any() {
  Predicate p;
  p.kind_ = Kind::kAny;
  p.name_ = "*";
  return p;
}

Predicate Predicate::Equality(size_t attr, uint32_t value, std::string name) {
  Predicate p;
  p.kind_ = Kind::kEquality;
  p.attr_ = attr;
  p.values_ = {value};
  p.name_ = std::move(name);
  return p;
}

Predicate Predicate::In(size_t attr, std::vector<uint32_t> values,
                        std::string name) {
  Predicate p;
  p.kind_ = Kind::kSet;
  p.attr_ = attr;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  p.values_ = std::move(values);
  p.name_ = std::move(name);
  return p;
}

Predicate Predicate::Range(size_t attr, uint32_t lo, uint32_t hi,
                           std::string name) {
  Predicate p;
  p.kind_ = Kind::kRange;
  p.attr_ = attr;
  p.lo_ = lo;
  p.hi_ = hi;
  p.name_ = std::move(name);
  return p;
}

Predicate Predicate::Not(Predicate base) {
  CALDERA_CHECK(base.indexable()) << "only indexable predicates can be negated";
  Predicate p;
  p.kind_ = Kind::kNegation;
  p.attr_ = base.attribute();
  p.name_ = "!" + base.name();
  p.base_ = std::make_shared<const Predicate>(std::move(base));
  return p;
}

bool Predicate::Matches(const StreamSchema& schema, ValueId state) const {
  switch (kind_) {
    case Kind::kAny:
      return true;
    case Kind::kNegation:
      return !base_->Matches(schema, state);
    case Kind::kEquality: {
      uint32_t v = schema.AttributeValue(state, attr_);
      return v == values_[0];
    }
    case Kind::kSet: {
      uint32_t v = schema.AttributeValue(state, attr_);
      return std::binary_search(values_.begin(), values_.end(), v);
    }
    case Kind::kRange: {
      uint32_t v = schema.AttributeValue(state, attr_);
      return v >= lo_ && v <= hi_;
    }
  }
  return false;
}

std::vector<uint32_t> Predicate::MatchedAttributeValues(
    const StreamSchema& schema) const {
  CALDERA_CHECK(indexable()) << "predicate '" << name_ << "' is not indexable";
  switch (kind_) {
    case Kind::kEquality:
    case Kind::kSet:
      return values_;
    case Kind::kRange: {
      std::vector<uint32_t> out;
      uint32_t hi = std::min(hi_, schema.domain_size(attr_) - 1);
      for (uint32_t v = lo_; v <= hi; ++v) out.push_back(v);
      return out;
    }
    default:
      return {};
  }
}

Status Predicate::ValidateAgainst(const StreamSchema& schema) const {
  if (kind_ == Kind::kAny) return Status::Ok();
  if (kind_ == Kind::kNegation) return base_->ValidateAgainst(schema);
  if (attr_ >= schema.num_attributes()) {
    return Status::InvalidArgument("predicate '" + name_ +
                                   "' references attribute " +
                                   std::to_string(attr_) + " of " +
                                   std::to_string(schema.num_attributes()));
  }
  uint32_t domain = schema.domain_size(attr_);
  if (kind_ == Kind::kRange) {
    if (lo_ > hi_) {
      return Status::InvalidArgument("predicate '" + name_ +
                                     "' has an empty range");
    }
    if (lo_ >= domain) {
      return Status::InvalidArgument("predicate '" + name_ +
                                     "' range below domain");
    }
    return Status::Ok();
  }
  if (values_.empty()) {
    return Status::InvalidArgument("predicate '" + name_ + "' has no values");
  }
  for (uint32_t v : values_) {
    if (v >= domain) {
      return Status::InvalidArgument(
          "predicate '" + name_ + "' value " + std::to_string(v) +
          " outside domain of size " + std::to_string(domain));
    }
  }
  return Status::Ok();
}

void DimensionTable::AddColumn(std::string column,
                               std::vector<std::string> values) {
  columns_.emplace_back(std::move(column), std::move(values));
}

Result<std::vector<uint32_t>> DimensionTable::Lookup(
    const std::string& column, const std::string& value) const {
  for (const auto& [name, values] : columns_) {
    if (name != column) continue;
    std::vector<uint32_t> out;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] == value) out.push_back(static_cast<uint32_t>(i));
    }
    return out;
  }
  return Status::NotFound("no column '" + column + "' in dimension table " +
                          name_);
}

Result<std::string> DimensionTable::ColumnValue(const std::string& column,
                                                uint32_t attr_value) const {
  for (const auto& [name, values] : columns_) {
    if (name != column) continue;
    if (attr_value >= values.size()) {
      return Status::OutOfRange("attribute value " +
                                std::to_string(attr_value) +
                                " outside dimension table " + name_);
    }
    return values[attr_value];
  }
  return Status::NotFound("no column '" + column + "' in dimension table " +
                          name_);
}

Result<std::vector<std::string>> DimensionTable::DistinctValues(
    const std::string& column) const {
  for (const auto& [name, values] : columns_) {
    if (name != column) continue;
    std::vector<std::string> out;
    for (const std::string& v : values) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
    return out;
  }
  return Status::NotFound("no column '" + column + "' in dimension table " +
                          name_);
}

Result<Predicate> DimensionTable::MakePredicate(const std::string& column,
                                                const std::string& value) const {
  CALDERA_ASSIGN_OR_RETURN(std::vector<uint32_t> values,
                           Lookup(column, value));
  if (values.empty()) {
    return Status::NotFound("no rows with " + column + "='" + value +
                            "' in dimension table " + name_);
  }
  return Predicate::In(key_attribute_, std::move(values), value);
}

}  // namespace caldera
