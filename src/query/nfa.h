#ifndef CALDERA_QUERY_NFA_H_
#define CALDERA_QUERY_NFA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "markov/schema.h"
#include "query/regular_query.h"

namespace caldera {

/// The runtime automaton of one Regular query against one schema.
///
/// The query's linear NFA (states 0..n, state i = "links 0..i-1 consumed")
/// is prefixed with an implicit Sigma* self-loop on state 0 so matches may
/// begin at any timestep; the automaton then accepts a prefix x_1..x_t iff
/// some match ends exactly at t. Because the Reg operator needs
/// *probabilities of runs*, the NFA is determinized lazily by subset
/// construction over "atoms" — bitmasks recording which query predicates a
/// stream state satisfies — making the accept probability exact even for
/// ambiguous queries.
///
/// Atom bit layout: primary predicate of link i -> bit 2i; loop predicate of
/// link i -> bit 2i+1 (hence the 16-link limit).
class QueryAutomaton {
 public:
  /// The query must already validate against the schema.
  QueryAutomaton(const RegularQuery& query, const StreamSchema& schema);

  /// Atom (predicate bitmask) of an encoded stream state. Precomputed for
  /// the whole domain at construction.
  uint32_t AtomOf(ValueId state) const { return atoms_[state]; }

  /// The atom of any state carrying zero mass on every cursor predicate —
  /// what "skipped" timesteps look like to the automaton (negation and Any
  /// bits set, positive bits clear).
  uint32_t null_atom() const { return null_atom_; }

  /// Initial DFA state ({NFA state 0}).
  int start_state() const { return 0; }

  /// DFA transition (lazily constructed).
  int Transition(int dfa_state, uint32_t atom);

  /// Transition on the null atom; idempotent (delta(delta(S,0),0) ==
  /// delta(S,0)), which is what lets the MC access method collapse an
  /// arbitrarily long skipped span into a single application.
  int NullTransition(int dfa_state) {
    return Transition(dfa_state, null_atom_);
  }

  bool IsAccepting(int dfa_state) const { return accepting_[dfa_state]; }

  int num_dfa_states() const { return static_cast<int>(subsets_.size()); }
  size_t num_links() const { return query_.num_links(); }
  const RegularQuery& query() const { return query_; }

 private:
  uint64_t SubsetTransition(uint64_t subset, uint32_t atom) const;
  int Intern(uint64_t subset);

  RegularQuery query_;
  size_t n_;                       // Number of links.
  std::vector<uint32_t> atoms_;    // Per encoded state.
  uint32_t null_atom_ = 0;
  std::vector<bool> has_loop_;     // Per link.
  std::vector<uint64_t> subsets_;  // DFA id -> NFA subset bitmask.
  std::unordered_map<uint64_t, int> subset_ids_;
  std::vector<std::unordered_map<uint32_t, int>> delta_;
  std::vector<bool> accepting_;
};

}  // namespace caldera

#endif  // CALDERA_QUERY_NFA_H_
