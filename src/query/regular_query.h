#ifndef CALDERA_QUERY_REGULAR_QUERY_H_
#define CALDERA_QUERY_REGULAR_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"

namespace caldera {

/// One link of a Regular query (Section 2.2): either a single predicate
/// ("the stream satisfies `primary` at this step") or a Kleene pair
/// "(loop*, primary)" ("wait while `loop` holds, then `primary`").
struct QueryLink {
  std::optional<Predicate> loop;
  Predicate primary;

  bool is_kleene() const { return loop.has_value(); }
};

/// A Regular query: a linear NFA expressed as a concatenation of links.
/// Queries whose NFAs are loop-free (`no Kleene links`) are *fixed-length*:
/// an n-link query matches only length-n stream intervals. Queries with
/// Kleene links are *variable-length*. The distinction drives access-method
/// selection (Figure 5(b)).
class RegularQuery {
 public:
  RegularQuery() = default;
  RegularQuery(std::string name, std::vector<QueryLink> links)
      : name_(std::move(name)), links_(std::move(links)) {}

  /// Convenience: a fixed-length query from a plain predicate sequence.
  static RegularQuery Sequence(std::string name,
                               std::vector<Predicate> predicates);

  const std::string& name() const { return name_; }
  size_t num_links() const { return links_.size(); }
  const QueryLink& link(size_t i) const { return links_[i]; }
  const std::vector<QueryLink>& links() const { return links_; }

  bool fixed_length() const;

  /// True if some Kleene loop predicate is positive (non-negated); such
  /// queries need the predicate-conditioned MC index variant for exact
  /// skipped-span processing (Section 3.3.2).
  bool HasPositiveLoop() const;

  /// The positive base predicates that must drive index cursors: for every
  /// predicate in the query, itself if indexable, or its base if a
  /// negation. Order: link order, primary before loop.
  std::vector<const Predicate*> CursorPredicates() const;

  /// Validates all predicates against the schema and checks structural
  /// constraints (at least one link, <= 16 links).
  Status ValidateAgainst(const StreamSchema& schema) const;

  /// Written syntax rendering, e.g. "Q(Hallway, !CoffeeRoom*, CoffeeRoom)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<QueryLink> links_;
};

}  // namespace caldera

#endif  // CALDERA_QUERY_REGULAR_QUERY_H_
