#include "query/nfa.h"

#include "common/logging.h"

namespace caldera {

QueryAutomaton::QueryAutomaton(const RegularQuery& query,
                               const StreamSchema& schema)
    : query_(query), n_(query.num_links()) {
  CALDERA_CHECK(n_ >= 1 && n_ <= 16) << "query must have 1..16 links";

  has_loop_.resize(n_);
  for (size_t i = 0; i < n_; ++i) has_loop_[i] = query_.link(i).is_kleene();

  // Precompute atoms for the whole (flat) domain.
  const uint32_t domain = schema.state_count();
  atoms_.resize(domain);
  for (ValueId state = 0; state < domain; ++state) {
    uint32_t atom = 0;
    for (size_t i = 0; i < n_; ++i) {
      const QueryLink& link = query_.link(i);
      if (link.primary.Matches(schema, state)) atom |= 1u << (2 * i);
      if (link.is_kleene() && link.loop->Matches(schema, state)) {
        atom |= 1u << (2 * i + 1);
      }
    }
    atoms_[state] = atom;
  }

  // Null atom: the atom of a state satisfying no positive predicate.
  null_atom_ = 0;
  for (size_t i = 0; i < n_; ++i) {
    const QueryLink& link = query_.link(i);
    if (link.primary.is_negation() || link.primary.is_any()) {
      null_atom_ |= 1u << (2 * i);
    }
    if (link.is_kleene() &&
        (link.loop->is_negation() || link.loop->is_any())) {
      null_atom_ |= 1u << (2 * i + 1);
    }
  }

  // Intern the start state {0}.
  Intern(1);
}

uint64_t QueryAutomaton::SubsetTransition(uint64_t subset,
                                          uint32_t atom) const {
  // State 0 is always present after a transition (Sigma* restart loop).
  uint64_t out = 1;
  for (size_t i = 0; i <= n_; ++i) {
    if ((subset & (1ull << i)) == 0) continue;
    if (i < n_) {
      // Advance i -> i+1 when link i's primary holds.
      if (atom & (1u << (2 * i))) out |= 1ull << (i + 1);
      // Wait in state i when link i's Kleene loop holds (i > 0; state 0's
      // Sigma loop is unconditional and already handled).
      if (i > 0 && has_loop_[i] && (atom & (1u << (2 * i + 1)))) {
        out |= 1ull << i;
      }
    }
    // State n (accept) has no outgoing edges: mass leaves unless a new
    // match also ends here (covered by the advances above).
  }
  return out;
}

int QueryAutomaton::Intern(uint64_t subset) {
  auto it = subset_ids_.find(subset);
  if (it != subset_ids_.end()) return it->second;
  int id = static_cast<int>(subsets_.size());
  subsets_.push_back(subset);
  subset_ids_.emplace(subset, id);
  delta_.emplace_back();
  accepting_.push_back((subset & (1ull << n_)) != 0);
  return id;
}

int QueryAutomaton::Transition(int dfa_state, uint32_t atom) {
  CALDERA_DCHECK(dfa_state >= 0 && dfa_state < num_dfa_states());
  auto& row = delta_[dfa_state];
  auto it = row.find(atom);
  if (it != row.end()) return it->second;
  uint64_t next = SubsetTransition(subsets_[dfa_state], atom);
  int id = Intern(next);
  // Note: Intern may reallocate delta_, so re-index.
  delta_[dfa_state].emplace(atom, id);
  return id;
}

}  // namespace caldera
