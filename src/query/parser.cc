#include "query/parser.h"

#include <cctype>

namespace caldera {

Result<Predicate> SchemaResolver::Resolve(std::string_view name) const {
  // 1. Attribute-domain labels.
  for (size_t attr = 0; attr < schema_->num_attributes(); ++attr) {
    Result<uint32_t> value = schema_->ValueOf(attr, name);
    if (value.ok()) {
      return Predicate::Equality(attr, *value, std::string(name));
    }
  }
  // 2. Dimension-table columns.
  for (const auto& [table, column] : dimensions_) {
    Result<Predicate> pred = table->MakePredicate(column, std::string(name));
    if (pred.ok()) return pred;
  }
  return Status::NotFound("cannot resolve predicate '" + std::string(name) +
                          "'");
}

namespace {

/// Minimal recursive-descent parser over the written query syntax.
class Parser {
 public:
  Parser(std::string_view text, const PredicateResolver& resolver)
      : text_(text), resolver_(resolver) {}

  Result<std::vector<QueryLink>> Parse() {
    SkipSpace();
    if (!ConsumeKeyword("Q")) return Err("expected 'Q'");
    if (!Consume('(')) return Err("expected '('");
    std::vector<QueryLink> links;
    for (;;) {
      SkipSpace();
      CALDERA_ASSIGN_OR_RETURN(QueryLink link, ParseLink());
      links.push_back(std::move(link));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(')')) break;
      return Err("expected ',' or ')'");
    }
    SkipSpace();
    if (pos_ != text_.size()) return Err("trailing characters");
    if (links.empty()) return Err("empty query");
    return links;
  }

 private:
  Result<QueryLink> ParseLink() {
    SkipSpace();
    if (Consume('(')) {
      // Kleene pair: (loop*, primary).
      CALDERA_ASSIGN_OR_RETURN(Predicate loop, ParsePredicate());
      SkipSpace();
      if (!Consume('*')) return Err("expected '*' after loop predicate");
      SkipSpace();
      if (!Consume(',')) return Err("expected ',' in Kleene pair");
      CALDERA_ASSIGN_OR_RETURN(Predicate primary, ParsePredicate());
      SkipSpace();
      if (!Consume(')')) return Err("expected ')' closing Kleene pair");
      return QueryLink{std::move(loop), std::move(primary)};
    }
    CALDERA_ASSIGN_OR_RETURN(Predicate primary, ParsePredicate());
    return QueryLink{std::nullopt, std::move(primary)};
  }

  Result<Predicate> ParsePredicate() {
    SkipSpace();
    bool negated = Consume('!');
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected predicate name");
    std::string_view name = text_.substr(start, pos_ - start);
    CALDERA_ASSIGN_OR_RETURN(Predicate pred, resolver_.Resolve(name));
    if (negated) {
      if (!pred.indexable()) {
        return Err("cannot negate non-indexable predicate");
      }
      return Predicate::Not(std::move(pred));
    }
    return pred;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) == kw) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument("query parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  std::string_view text_;
  const PredicateResolver& resolver_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegularQuery> ParseQuery(std::string_view text,
                                const PredicateResolver& resolver,
                                std::string name) {
  Parser parser(text, resolver);
  CALDERA_ASSIGN_OR_RETURN(std::vector<QueryLink> links, parser.Parse());
  if (name.empty()) name = std::string(text);
  return RegularQuery(std::move(name), std::move(links));
}

}  // namespace caldera
