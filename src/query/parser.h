#ifndef CALDERA_QUERY_PARSER_H_
#define CALDERA_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/regular_query.h"

namespace caldera {

/// Resolves bare predicate identifiers in query text to Predicates.
class PredicateResolver {
 public:
  virtual ~PredicateResolver() = default;
  virtual Result<Predicate> Resolve(std::string_view name) const = 0;
};

/// Resolver that tries, in order:
///   1. attribute-domain labels ("Office300" -> equality on that attribute),
///   2. dimension-table column values ("CoffeeRoom" -> set predicate over
///      all locations whose type column is CoffeeRoom).
class SchemaResolver : public PredicateResolver {
 public:
  explicit SchemaResolver(const StreamSchema* schema) : schema_(schema) {}

  /// Registers a dimension table column for identifier resolution.
  void AddDimension(const DimensionTable* table, std::string column) {
    dimensions_.emplace_back(table, std::move(column));
  }

  Result<Predicate> Resolve(std::string_view name) const override;

 private:
  const StreamSchema* schema_;
  std::vector<std::pair<const DimensionTable*, std::string>> dimensions_;
};

/// Parses the paper's written query syntax (Figure 3), e.g.
///   Q(Hallway, Office300)                      -- fixed-length
///   Q(Hallway, (!CoffeeRoom*, CoffeeRoom))     -- variable-length
/// Kleene links are parenthesized pairs "(loop*, primary)"; `!` negates.
Result<RegularQuery> ParseQuery(std::string_view text,
                                const PredicateResolver& resolver,
                                std::string name = "");

}  // namespace caldera

#endif  // CALDERA_QUERY_PARSER_H_
