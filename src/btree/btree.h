#ifndef CALDERA_BTREE_BTREE_H_
#define CALDERA_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace caldera {

/// Static configuration of one B+ tree. Keys and values are fixed-width byte
/// strings; keys compare with memcmp, so callers encode composite keys with
/// the order-preserving helpers in common/encoding.h.
struct BTreeOptions {
  uint32_t key_size = 0;
  uint32_t value_size = 0;
};

/// A disk-resident B+ tree over a paged file with an LRU buffer pool.
///
/// Caldera instantiates this three ways (Section 3 of the paper):
///   BT_C        key = (value_id:u32, time:u64),            value = prob:f64
///   BT_P        key = (value_id:u32, 1-prob:f64, time:u64), value = empty
///   join index  key = (dim_value:u32, time:u64),           value = prob:f64
///
/// Single-threaded. Deletes are "lazy": the entry is removed from its leaf
/// but nodes are never rebalanced — appropriate for Caldera's write-once
/// archival workload, where indexes are bulk-built and rarely mutated.
class BTree {
 public:
  /// Creates an empty tree file at `path` (truncating any existing file).
  static Result<std::unique_ptr<BTree>> Create(
      const std::string& path, const BTreeOptions& options,
      uint32_t page_size = kDefaultPageSize, size_t pool_pages = 64);

  /// Opens an existing tree file.
  static Result<std::unique_ptr<BTree>> Open(const std::string& path,
                                             size_t pool_pages = 64);

  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a key/value pair; AlreadyExists if the key is present.
  Status Insert(std::string_view key, std::string_view value);

  /// Returns the value for `key`, or nullopt.
  Result<std::optional<std::string>> Get(std::string_view key);

  /// Removes `key`; NotFound if absent.
  Status Delete(std::string_view key);

  /// Forward iterator over leaf entries. Invalidated by writes to the tree.
  class Cursor {
   public:
    Cursor() = default;

    bool valid() const { return tree_ != nullptr; }
    std::string_view key() const;
    std::string_view value() const;

    /// Advances to the next entry; the cursor becomes invalid at the end.
    Status Next();

   private:
    friend class BTree;
    BTree* tree_ = nullptr;
    PageId leaf_ = kInvalidPageId;
    uint32_t slot_ = 0;
    std::string entry_;  // Cached key+value bytes of the current slot.

    Status Load();
  };

  /// Positions a cursor at the first entry with key >= `key` (invalid cursor
  /// if no such entry).
  Result<Cursor> Seek(std::string_view key);

  /// Positions a cursor at the smallest entry.
  Result<Cursor> SeekFirst();

  /// Writes back dirty pages and the tree meta page.
  Status Flush();

  /// Flush + fsync: makes every insert so far durable. Used by the ingest
  /// path after applying a committed batch.
  Status Sync();

  uint64_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }
  const BTreeOptions& options() const { return options_; }
  uint64_t file_pages() const { return pager_->page_count(); }
  uint32_t page_size() const { return pager_->page_size(); }
  const BufferPoolStats& stats() const { return pool_->stats(); }
  void ResetStats() { pool_->ResetStats(); }

  /// Checks structural invariants (key order within nodes, separator bounds,
  /// leaf chain order). Test/debug helper; O(n).
  Status CheckInvariants();

 private:
  friend class Cursor;
  friend class BTreeBuilder;

  BTree(std::unique_ptr<Pager> pager, size_t pool_pages)
      : pager_(std::move(pager)),
        pool_(std::make_unique<BufferPool>(pager_.get(), pool_pages)) {}

  uint32_t leaf_entry_size() const {
    return options_.key_size + options_.value_size;
  }
  uint32_t internal_entry_size() const { return options_.key_size + 8; }
  uint32_t leaf_capacity() const;
  uint32_t internal_capacity() const;

  Status WriteMeta();
  Result<PageId> FindLeaf(std::string_view key,
                          std::vector<PageId>* path_out);
  Status InsertIntoParent(std::vector<PageId>& path, size_t level,
                          std::string_view sep_key, PageId right_child);
  Status CheckNode(PageId id, std::string_view lower, std::string_view upper,
                   uint32_t depth, uint64_t* entries, PageId* leftmost_leaf);

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  BTreeOptions options_;
  PageId root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint32_t height_ = 1;
};

/// Builds a B+ tree from strictly-increasing (key, value) pairs, packing
/// leaves sequentially and constructing internal levels bottom-up. An order
/// of magnitude faster than repeated Insert and yields ~full pages.
class BTreeBuilder {
 public:
  static Result<std::unique_ptr<BTreeBuilder>> Create(
      const std::string& path, const BTreeOptions& options,
      uint32_t page_size = kDefaultPageSize,
      double fill_factor = 0.9);

  /// Adds the next pair; keys must be strictly increasing.
  Status Add(std::string_view key, std::string_view value);

  /// Finishes the build and returns the opened tree.
  Result<std::unique_ptr<BTree>> Finish(size_t pool_pages = 64);

 private:
  BTreeBuilder(std::unique_ptr<BTree> tree, double fill_factor);

  Status FlushLeaf();

  std::unique_ptr<BTree> tree_;
  double fill_factor_;
  std::string leaf_buf_;              // Packed entries of the current leaf.
  uint32_t leaf_count_ = 0;
  uint32_t max_leaf_entries_ = 0;
  std::string last_key_;
  // first_key -> page id per completed node, one vector per level.
  std::vector<std::vector<std::pair<std::string, PageId>>> levels_;
  PageId prev_leaf_ = kInvalidPageId;
  uint64_t total_entries_ = 0;
  bool finished_ = false;
};

}  // namespace caldera

#endif  // CALDERA_BTREE_BTREE_H_
