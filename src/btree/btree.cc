#include "btree/btree.h"

#include <algorithm>
#include <cstring>

#include "common/encoding.h"
#include "common/logging.h"

namespace caldera {

namespace {

constexpr char kBTreeMagic[8] = {'C', 'L', 'D', 'R', 'B', 'T', 'R', '1'};
constexpr PageId kMetaPage = 1;

constexpr uint8_t kLeafNode = 1;
constexpr uint8_t kInternalNode = 2;
constexpr uint32_t kNodeHeaderSize = 16;

uint8_t NodeType(const char* page) {
  return static_cast<uint8_t>(page[0]);
}
void SetNodeType(char* page, uint8_t type) {
  page[0] = static_cast<char>(type);
}
uint16_t NodeCount(const char* page) {
  uint16_t v;
  std::memcpy(&v, page + 1, 2);
  return v;
}
void SetNodeCount(char* page, uint16_t count) {
  std::memcpy(page + 1, &count, 2);
}
PageId LeafNext(const char* page) { return GetFixed64(page + 4); }
void SetLeafNext(char* page, PageId next) {
  char buf[8];
  std::memcpy(buf, &next, 8);
  std::memcpy(page + 4, buf, 8);
}
PageId InternalChild0(const char* page) { return GetFixed64(page + 8); }
void SetInternalChild0(char* page, PageId child) {
  std::memcpy(page + 8, &child, 8);
}

}  // namespace

uint32_t BTree::leaf_capacity() const {
  return (pager_->page_size() - kNodeHeaderSize) / leaf_entry_size();
}

uint32_t BTree::internal_capacity() const {
  return (pager_->page_size() - kNodeHeaderSize) / internal_entry_size();
}

// Rejects on-disk node headers whose entry count exceeds what the page can
// physically hold (defense against corrupted pages).
static Status ValidateNodeCount(uint16_t count, uint32_t capacity,
                                PageId id) {
  if (count > capacity) {
    return Status::Corruption("node " + std::to_string(id) + " claims " +
                              std::to_string(count) + " entries, capacity " +
                              std::to_string(capacity));
  }
  return Status::Ok();
}

Result<std::unique_ptr<BTree>> BTree::Create(const std::string& path,
                                             const BTreeOptions& options,
                                             uint32_t page_size,
                                             size_t pool_pages) {
  if (options.key_size == 0 || options.key_size > 256) {
    return Status::InvalidArgument("key_size must be in [1, 256]");
  }
  if (options.value_size > 1024) {
    return Status::InvalidArgument("value_size must be <= 1024");
  }
  uint32_t entry = options.key_size + options.value_size;
  // Capacity math runs on the pager payload (physical page minus the
  // integrity trailer), not the raw physical page size.
  if (page_size < kPageTrailerSize + kNodeHeaderSize ||
      entry * 4 > page_size - kPageTrailerSize - kNodeHeaderSize) {
    return Status::InvalidArgument("page too small for 4 entries per node");
  }
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                           Pager::Create(path, page_size));
  CALDERA_ASSIGN_OR_RETURN(PageId meta, pager->AllocatePage());
  if (meta != kMetaPage) return Status::Internal("unexpected meta page id");

  auto tree = std::unique_ptr<BTree>(new BTree(std::move(pager), pool_pages));
  tree->options_ = options;
  // Root starts as an empty leaf.
  CALDERA_ASSIGN_OR_RETURN(PageHandle root, tree->pool_->NewPage());
  SetNodeType(root.data(), kLeafNode);
  SetNodeCount(root.data(), 0);
  SetLeafNext(root.data(), kInvalidPageId);
  root.MarkDirty();
  tree->root_ = root.page_id();
  tree->height_ = 1;
  root.Release();
  CALDERA_RETURN_IF_ERROR(tree->Flush());
  return tree;
}

Result<std::unique_ptr<BTree>> BTree::Open(const std::string& path,
                                           size_t pool_pages) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager, Pager::Open(path));
  auto tree = std::unique_ptr<BTree>(new BTree(std::move(pager), pool_pages));
  std::vector<char> meta(tree->pager_->page_size());
  CALDERA_RETURN_IF_ERROR(tree->pager_->ReadPage(kMetaPage, meta.data()));
  if (std::memcmp(meta.data(), kBTreeMagic, 8) != 0) {
    return Status::Corruption("bad btree magic in " + path);
  }
  tree->options_.key_size = GetFixed32(meta.data() + 8);
  tree->options_.value_size = GetFixed32(meta.data() + 12);
  tree->root_ = GetFixed64(meta.data() + 16);
  tree->num_entries_ = GetFixed64(meta.data() + 24);
  tree->height_ = GetFixed32(meta.data() + 32);
  if (tree->root_ == kInvalidPageId ||
      tree->root_ >= tree->pager_->page_count()) {
    return Status::Corruption("bad btree root in " + path);
  }
  return tree;
}

BTree::~BTree() {
  Status st = Flush();
  if (!st.ok()) {
    CALDERA_LOG_ERROR << "BTree flush on destruction failed: "
                      << st.ToString();
  }
}

Status BTree::WriteMeta() {
  std::string meta(kBTreeMagic, 8);
  PutFixed32(options_.key_size, &meta);
  PutFixed32(options_.value_size, &meta);
  PutFixed64(root_, &meta);
  PutFixed64(num_entries_, &meta);
  PutFixed32(height_, &meta);
  meta.resize(pager_->page_size(), '\0');
  return pager_->WritePage(kMetaPage, meta.data());
}

Status BTree::Flush() {
  CALDERA_RETURN_IF_ERROR(WriteMeta());
  return pool_->FlushAll();
}

Status BTree::Sync() {
  CALDERA_RETURN_IF_ERROR(Flush());
  return pager_->Sync();
}

// Descends from the root to the leaf that should contain `key`. If
// `path_out` is non-null it receives the internal pages visited, root first.
Result<PageId> BTree::FindLeaf(std::string_view key,
                               std::vector<PageId>* path_out) {
  const uint32_t ks = options_.key_size;
  PageId current = root_;
  for (;;) {
    CALDERA_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(current));
    const char* data = page.data();
    if (NodeType(data) == kLeafNode) return current;
    if (NodeType(data) != kInternalNode) {
      return Status::Corruption("bad node type on page " +
                                std::to_string(current));
    }
    if (path_out != nullptr) path_out->push_back(current);
    uint16_t count = NodeCount(data);
    CALDERA_RETURN_IF_ERROR(
        ValidateNodeCount(count, internal_capacity(), current));
    // Find the largest separator <= key; its child covers the key.
    // Separator i lives at kNodeHeaderSize + i*(ks+8).
    uint32_t lo = 0, hi = count;  // First separator strictly > key.
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      const char* sep = data + kNodeHeaderSize + mid * (ks + 8);
      if (std::memcmp(sep, key.data(), ks) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) {
      current = InternalChild0(data);
    } else {
      const char* entry = data + kNodeHeaderSize + (lo - 1) * (ks + 8);
      current = GetFixed64(entry + ks);
    }
    if (current == kInvalidPageId) {
      return Status::Corruption("invalid child pointer");
    }
  }
}

Result<std::optional<std::string>> BTree::Get(std::string_view key) {
  if (key.size() != options_.key_size) {
    return Status::InvalidArgument("key size mismatch");
  }
  CALDERA_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, nullptr));
  CALDERA_ASSIGN_OR_RETURN(PageHandle leaf, pool_->Fetch(leaf_id));
  const char* data = leaf.data();
  const uint32_t ks = options_.key_size;
  const uint32_t es = leaf_entry_size();
  uint16_t count = NodeCount(data);
  CALDERA_RETURN_IF_ERROR(ValidateNodeCount(count, leaf_capacity(), leaf_id));
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    const char* entry = data + kNodeHeaderSize + mid * es;
    if (std::memcmp(entry, key.data(), ks) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < count) {
    const char* entry = data + kNodeHeaderSize + lo * es;
    if (std::memcmp(entry, key.data(), ks) == 0) {
      return std::optional<std::string>(
          std::string(entry + ks, options_.value_size));
    }
  }
  return std::optional<std::string>();
}

Status BTree::InsertIntoParent(std::vector<PageId>& path, size_t level,
                               std::string_view sep_key, PageId right_child) {
  const uint32_t ks = options_.key_size;
  const uint32_t es = internal_entry_size();

  if (level == 0) {
    // Split reached the root: grow the tree by one level.
    CALDERA_ASSIGN_OR_RETURN(PageHandle new_root, pool_->NewPage());
    char* data = new_root.data();
    SetNodeType(data, kInternalNode);
    SetNodeCount(data, 1);
    SetInternalChild0(data, root_);
    char* entry = data + kNodeHeaderSize;
    std::memcpy(entry, sep_key.data(), ks);
    std::memcpy(entry + ks, &right_child, 8);
    new_root.MarkDirty();
    root_ = new_root.page_id();
    ++height_;
    return Status::Ok();
  }

  PageId parent_id = path[level - 1];
  CALDERA_ASSIGN_OR_RETURN(PageHandle parent, pool_->Fetch(parent_id));
  char* data = parent.data();
  uint16_t count = NodeCount(data);

  // Find insert position for the separator (first separator > sep_key).
  uint32_t pos = 0;
  while (pos < count &&
         std::memcmp(data + kNodeHeaderSize + pos * es, sep_key.data(), ks) <
             0) {
    ++pos;
  }

  if (count < internal_capacity()) {
    char* base = data + kNodeHeaderSize;
    std::memmove(base + (pos + 1) * es, base + pos * es,
                 (count - pos) * static_cast<size_t>(es));
    std::memcpy(base + pos * es, sep_key.data(), ks);
    std::memcpy(base + pos * es + ks, &right_child, 8);
    SetNodeCount(data, count + 1);
    parent.MarkDirty();
    return Status::Ok();
  }

  // Parent is full: materialize the separator list, insert, split.
  struct Sep {
    std::string key;
    PageId child;
  };
  std::vector<Sep> seps;
  seps.reserve(count + 1);
  for (uint32_t i = 0; i < count; ++i) {
    const char* e = data + kNodeHeaderSize + i * es;
    seps.push_back({std::string(e, ks), GetFixed64(e + ks)});
  }
  seps.insert(seps.begin() + pos,
              {std::string(sep_key.data(), ks), right_child});
  PageId child0 = InternalChild0(data);

  uint32_t mid = static_cast<uint32_t>(seps.size()) / 2;
  // seps[mid] is promoted; left keeps [0, mid), right gets (mid, end) with
  // child0 = seps[mid].child.
  CALDERA_ASSIGN_OR_RETURN(PageHandle right, pool_->NewPage());
  char* rdata = right.data();
  SetNodeType(rdata, kInternalNode);
  SetInternalChild0(rdata, seps[mid].child);
  uint16_t rcount = 0;
  for (uint32_t i = mid + 1; i < seps.size(); ++i) {
    char* e = rdata + kNodeHeaderSize + rcount * es;
    std::memcpy(e, seps[i].key.data(), ks);
    std::memcpy(e + ks, &seps[i].child, 8);
    ++rcount;
  }
  SetNodeCount(rdata, rcount);
  right.MarkDirty();

  SetNodeType(data, kInternalNode);
  SetInternalChild0(data, child0);
  for (uint32_t i = 0; i < mid; ++i) {
    char* e = data + kNodeHeaderSize + i * es;
    std::memcpy(e, seps[i].key.data(), ks);
    std::memcpy(e + ks, &seps[i].child, 8);
  }
  SetNodeCount(data, static_cast<uint16_t>(mid));
  parent.MarkDirty();

  std::string promoted = seps[mid].key;
  PageId right_id = right.page_id();
  parent.Release();
  right.Release();
  return InsertIntoParent(path, level - 1, promoted, right_id);
}

Status BTree::Insert(std::string_view key, std::string_view value) {
  if (key.size() != options_.key_size) {
    return Status::InvalidArgument("key size mismatch");
  }
  if (value.size() != options_.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  std::vector<PageId> path;
  CALDERA_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, &path));
  CALDERA_ASSIGN_OR_RETURN(PageHandle leaf, pool_->Fetch(leaf_id));
  char* data = leaf.data();
  const uint32_t ks = options_.key_size;
  const uint32_t es = leaf_entry_size();
  uint16_t count = NodeCount(data);
  CALDERA_RETURN_IF_ERROR(ValidateNodeCount(count, leaf_capacity(), leaf_id));

  uint32_t pos = 0, hi = count;
  while (pos < hi) {
    uint32_t mid = (pos + hi) / 2;
    if (std::memcmp(data + kNodeHeaderSize + mid * es, key.data(), ks) < 0) {
      pos = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (pos < count &&
      std::memcmp(data + kNodeHeaderSize + pos * es, key.data(), ks) == 0) {
    return Status::AlreadyExists("duplicate key");
  }

  if (count < leaf_capacity()) {
    char* base = data + kNodeHeaderSize;
    std::memmove(base + (pos + 1) * es, base + pos * es,
                 (count - pos) * static_cast<size_t>(es));
    std::memcpy(base + pos * es, key.data(), ks);
    // Empty values (BT_P) come in as default string_views with a null
    // data(); passing that to memcpy is UB even at length zero.
    if (!value.empty()) {
      std::memcpy(base + pos * es + ks, value.data(), options_.value_size);
    }
    SetNodeCount(data, count + 1);
    leaf.MarkDirty();
    ++num_entries_;
    return Status::Ok();
  }

  // Leaf is full: split. Materialize entries, insert, redistribute.
  std::vector<std::string> entries;
  entries.reserve(count + 1);
  for (uint32_t i = 0; i < count; ++i) {
    entries.emplace_back(data + kNodeHeaderSize + i * es, es);
  }
  std::string new_entry(key.data(), ks);
  if (!value.empty()) new_entry.append(value.data(), options_.value_size);
  entries.insert(entries.begin() + pos, std::move(new_entry));

  uint32_t mid = static_cast<uint32_t>(entries.size()) / 2;
  CALDERA_ASSIGN_OR_RETURN(PageHandle right, pool_->NewPage());
  char* rdata = right.data();
  SetNodeType(rdata, kLeafNode);
  SetLeafNext(rdata, LeafNext(data));
  uint16_t rcount = 0;
  for (uint32_t i = mid; i < entries.size(); ++i) {
    std::memcpy(rdata + kNodeHeaderSize + rcount * es, entries[i].data(), es);
    ++rcount;
  }
  SetNodeCount(rdata, rcount);
  right.MarkDirty();

  for (uint32_t i = 0; i < mid; ++i) {
    std::memcpy(data + kNodeHeaderSize + i * es, entries[i].data(), es);
  }
  SetNodeCount(data, static_cast<uint16_t>(mid));
  SetLeafNext(data, right.page_id());
  leaf.MarkDirty();

  std::string sep = entries[mid].substr(0, ks);
  PageId right_id = right.page_id();
  leaf.Release();
  right.Release();
  ++num_entries_;
  return InsertIntoParent(path, path.size(), sep, right_id);
}

Status BTree::Delete(std::string_view key) {
  if (key.size() != options_.key_size) {
    return Status::InvalidArgument("key size mismatch");
  }
  CALDERA_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, nullptr));
  CALDERA_ASSIGN_OR_RETURN(PageHandle leaf, pool_->Fetch(leaf_id));
  char* data = leaf.data();
  const uint32_t ks = options_.key_size;
  const uint32_t es = leaf_entry_size();
  uint16_t count = NodeCount(data);
  CALDERA_RETURN_IF_ERROR(ValidateNodeCount(count, leaf_capacity(), leaf_id));
  for (uint32_t i = 0; i < count; ++i) {
    char* entry = data + kNodeHeaderSize + i * es;
    if (std::memcmp(entry, key.data(), ks) == 0) {
      std::memmove(entry, entry + es, (count - i - 1) * static_cast<size_t>(es));
      SetNodeCount(data, count - 1);
      leaf.MarkDirty();
      --num_entries_;
      return Status::Ok();
    }
  }
  return Status::NotFound("key not in tree");
}

std::string_view BTree::Cursor::key() const {
  CALDERA_DCHECK(valid());
  return std::string_view(entry_.data(), tree_->options_.key_size);
}

std::string_view BTree::Cursor::value() const {
  CALDERA_DCHECK(valid());
  return std::string_view(entry_.data() + tree_->options_.key_size,
                          tree_->options_.value_size);
}

// Loads the entry at (leaf_, slot_), skipping forward across empty or
// exhausted leaves. Invalidates the cursor at the end of the tree.
Status BTree::Cursor::Load() {
  const uint32_t es = tree_->leaf_entry_size();
  while (leaf_ != kInvalidPageId) {
    CALDERA_ASSIGN_OR_RETURN(PageHandle page, tree_->pool_->Fetch(leaf_));
    const char* data = page.data();
    if (NodeType(data) != kLeafNode) {
      return Status::Corruption("cursor on non-leaf page");
    }
    uint16_t count = NodeCount(data);
    CALDERA_RETURN_IF_ERROR(
        ValidateNodeCount(count, tree_->leaf_capacity(), leaf_));
    if (slot_ < count) {
      entry_.assign(data + kNodeHeaderSize + slot_ * es, es);
      return Status::Ok();
    }
    leaf_ = LeafNext(data);
    slot_ = 0;
  }
  tree_ = nullptr;
  return Status::Ok();
}

Status BTree::Cursor::Next() {
  CALDERA_DCHECK(valid());
  ++slot_;
  return Load();
}

Result<BTree::Cursor> BTree::Seek(std::string_view key) {
  if (key.size() != options_.key_size) {
    return Status::InvalidArgument("key size mismatch");
  }
  CALDERA_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key, nullptr));
  CALDERA_ASSIGN_OR_RETURN(PageHandle leaf, pool_->Fetch(leaf_id));
  const char* data = leaf.data();
  const uint32_t ks = options_.key_size;
  const uint32_t es = leaf_entry_size();
  uint16_t count = NodeCount(data);
  CALDERA_RETURN_IF_ERROR(ValidateNodeCount(count, leaf_capacity(), leaf_id));
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (std::memcmp(data + kNodeHeaderSize + mid * es, key.data(), ks) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  Cursor cursor;
  cursor.tree_ = this;
  cursor.leaf_ = leaf_id;
  cursor.slot_ = lo;
  leaf.Release();
  CALDERA_RETURN_IF_ERROR(cursor.Load());
  return cursor;
}

Result<BTree::Cursor> BTree::SeekFirst() {
  PageId current = root_;
  for (;;) {
    CALDERA_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(current));
    const char* data = page.data();
    if (NodeType(data) == kLeafNode) break;
    current = InternalChild0(data);
  }
  Cursor cursor;
  cursor.tree_ = this;
  cursor.leaf_ = current;
  cursor.slot_ = 0;
  CALDERA_RETURN_IF_ERROR(cursor.Load());
  return cursor;
}

Status BTree::CheckNode(PageId id, std::string_view lower,
                        std::string_view upper, uint32_t depth,
                        uint64_t* entries, PageId* leftmost_leaf) {
  CALDERA_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(id));
  const char* data = page.data();
  const uint32_t ks = options_.key_size;
  uint16_t count = NodeCount(data);
  CALDERA_RETURN_IF_ERROR(ValidateNodeCount(
      count,
      NodeType(data) == kLeafNode ? leaf_capacity() : internal_capacity(),
      id));

  auto in_bounds = [&](const char* key) {
    if (!lower.empty() && std::memcmp(key, lower.data(), ks) < 0) return false;
    if (!upper.empty() && std::memcmp(key, upper.data(), ks) >= 0) return false;
    return true;
  };

  if (NodeType(data) == kLeafNode) {
    if (depth + 1 != height_) {
      return Status::Corruption("leaf at depth " + std::to_string(depth) +
                                " but height is " + std::to_string(height_));
    }
    if (leftmost_leaf != nullptr && *leftmost_leaf == kInvalidPageId) {
      *leftmost_leaf = id;
    }
    const uint32_t es = leaf_entry_size();
    for (uint32_t i = 0; i < count; ++i) {
      const char* key = data + kNodeHeaderSize + i * es;
      if (!in_bounds(key)) return Status::Corruption("leaf key out of bounds");
      if (i > 0 &&
          std::memcmp(data + kNodeHeaderSize + (i - 1) * es, key, ks) >= 0) {
        return Status::Corruption("unsorted leaf keys");
      }
    }
    *entries += count;
    return Status::Ok();
  }

  if (NodeType(data) != kInternalNode) {
    return Status::Corruption("unknown node type");
  }
  if (count == 0) return Status::Corruption("empty internal node");
  const uint32_t es = internal_entry_size();
  std::vector<std::string> seps;
  std::vector<PageId> children;
  children.push_back(InternalChild0(data));
  for (uint32_t i = 0; i < count; ++i) {
    const char* e = data + kNodeHeaderSize + i * es;
    if (!in_bounds(e)) return Status::Corruption("separator out of bounds");
    if (i > 0 && seps.back().compare(0, ks, e, ks) >= 0) {
      return Status::Corruption("unsorted separators");
    }
    seps.emplace_back(e, ks);
    children.push_back(GetFixed64(e + ks));
  }
  page.Release();
  for (size_t i = 0; i < children.size(); ++i) {
    std::string_view lo = (i == 0) ? lower : std::string_view(seps[i - 1]);
    std::string_view hi = (i == seps.size()) ? upper
                                             : std::string_view(seps[i]);
    CALDERA_RETURN_IF_ERROR(
        CheckNode(children[i], lo, hi, depth + 1, entries, leftmost_leaf));
  }
  return Status::Ok();
}

Status BTree::CheckInvariants() {
  uint64_t entries = 0;
  PageId leftmost = kInvalidPageId;
  CALDERA_RETURN_IF_ERROR(CheckNode(root_, {}, {}, 0, &entries, &leftmost));
  if (entries != num_entries_) {
    return Status::Corruption(
        "entry count mismatch: counted " + std::to_string(entries) +
        " vs meta " + std::to_string(num_entries_));
  }
  // Walk the leaf chain and verify global key order.
  std::string prev;
  const uint32_t ks = options_.key_size;
  const uint32_t es = leaf_entry_size();
  uint64_t chained = 0;
  for (PageId leaf = leftmost; leaf != kInvalidPageId;) {
    CALDERA_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(leaf));
    const char* data = page.data();
    if (NodeType(data) != kLeafNode) {
      return Status::Corruption("leaf chain reaches non-leaf");
    }
    uint16_t count = NodeCount(data);
    CALDERA_RETURN_IF_ERROR(ValidateNodeCount(count, leaf_capacity(), leaf));
    for (uint32_t i = 0; i < count; ++i) {
      const char* key = data + kNodeHeaderSize + i * es;
      if (!prev.empty() && prev.compare(0, ks, key, ks) >= 0) {
        return Status::Corruption("leaf chain out of order");
      }
      prev.assign(key, ks);
      ++chained;
    }
    leaf = LeafNext(data);
  }
  if (chained != num_entries_) {
    return Status::Corruption("leaf chain entry count mismatch");
  }
  return Status::Ok();
}

BTreeBuilder::BTreeBuilder(std::unique_ptr<BTree> tree, double fill_factor)
    : tree_(std::move(tree)), fill_factor_(fill_factor) {
  uint32_t cap = tree_->leaf_capacity();
  max_leaf_entries_ =
      std::max<uint32_t>(1, static_cast<uint32_t>(cap * fill_factor_));
  levels_.resize(1);
}

Result<std::unique_ptr<BTreeBuilder>> BTreeBuilder::Create(
    const std::string& path, const BTreeOptions& options, uint32_t page_size,
    double fill_factor) {
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                           BTree::Create(path, options, page_size,
                                         /*pool_pages=*/64));
  return std::unique_ptr<BTreeBuilder>(
      new BTreeBuilder(std::move(tree), fill_factor));
}

Status BTreeBuilder::FlushLeaf() {
  if (leaf_count_ == 0) return Status::Ok();
  CALDERA_ASSIGN_OR_RETURN(PageHandle page, tree_->pool_->NewPage());
  char* data = page.data();
  SetNodeType(data, kLeafNode);
  SetNodeCount(data, static_cast<uint16_t>(leaf_count_));
  SetLeafNext(data, kInvalidPageId);
  std::memcpy(data + kNodeHeaderSize, leaf_buf_.data(), leaf_buf_.size());
  page.MarkDirty();
  PageId id = page.page_id();
  page.Release();

  if (prev_leaf_ != kInvalidPageId) {
    CALDERA_ASSIGN_OR_RETURN(PageHandle prev, tree_->pool_->Fetch(prev_leaf_));
    SetLeafNext(prev.data(), id);
    prev.MarkDirty();
  }
  prev_leaf_ = id;
  levels_[0].emplace_back(leaf_buf_.substr(0, tree_->options_.key_size), id);
  leaf_buf_.clear();
  leaf_count_ = 0;
  return Status::Ok();
}

Status BTreeBuilder::Add(std::string_view key, std::string_view value) {
  if (finished_) return Status::FailedPrecondition("builder finished");
  if (key.size() != tree_->options_.key_size ||
      value.size() != tree_->options_.value_size) {
    return Status::InvalidArgument("key/value size mismatch");
  }
  if (!last_key_.empty() && last_key_.compare(0, key.size(), key.data(),
                                              key.size()) >= 0) {
    return Status::InvalidArgument("bulk-load keys must strictly increase");
  }
  last_key_.assign(key.data(), key.size());
  leaf_buf_.append(key.data(), key.size());
  if (!value.empty()) leaf_buf_.append(value.data(), value.size());
  ++leaf_count_;
  ++total_entries_;
  if (leaf_count_ >= max_leaf_entries_) CALDERA_RETURN_IF_ERROR(FlushLeaf());
  return Status::Ok();
}

Result<std::unique_ptr<BTree>> BTreeBuilder::Finish(size_t pool_pages) {
  if (finished_) return Status::FailedPrecondition("builder finished");
  finished_ = true;
  CALDERA_RETURN_IF_ERROR(FlushLeaf());

  if (levels_[0].empty()) {
    // Empty tree: keep the pre-allocated empty root leaf.
    CALDERA_RETURN_IF_ERROR(tree_->Flush());
    return std::move(tree_);
  }

  const uint32_t ks = tree_->options_.key_size;
  const uint32_t es = tree_->internal_entry_size();
  uint32_t max_internal = std::max<uint32_t>(
      2, static_cast<uint32_t>(tree_->internal_capacity() * fill_factor_));

  size_t level = 0;
  while (levels_[level].size() > 1) {
    levels_.emplace_back();
    auto& children = levels_[level];
    auto& parents = levels_[level + 1];
    size_t i = 0;
    while (i < children.size()) {
      // Each internal node takes child0 plus up to max_internal keyed
      // children.
      size_t group = std::min<size_t>(children.size() - i,
                                      static_cast<size_t>(max_internal) + 1);
      // Avoid a trailing single-child internal node (it would have zero
      // separators): steal one from this group.
      if (children.size() - (i + group) == 1) --group;
      CALDERA_ASSIGN_OR_RETURN(PageHandle page, tree_->pool_->NewPage());
      char* data = page.data();
      SetNodeType(data, kInternalNode);
      SetInternalChild0(data, children[i].second);
      uint16_t count = 0;
      for (size_t j = 1; j < group; ++j) {
        char* e = data + kNodeHeaderSize + count * es;
        std::memcpy(e, children[i + j].first.data(), ks);
        PageId child = children[i + j].second;
        std::memcpy(e + ks, &child, 8);
        ++count;
      }
      SetNodeCount(data, count);
      page.MarkDirty();
      parents.emplace_back(children[i].first, page.page_id());
      i += group;
    }
    ++level;
  }

  tree_->root_ = levels_[level][0].second;
  tree_->height_ = static_cast<uint32_t>(level + 1);
  tree_->num_entries_ = total_entries_;
  CALDERA_RETURN_IF_ERROR(tree_->Flush());
  std::unique_ptr<BTree> out = std::move(tree_);
  return out;
}

}  // namespace caldera
