#include "markov/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define CALDERA_KERNELS_X86 1
#endif

namespace caldera {
namespace kernels {

CsrCpt CsrCpt::From(const Cpt& cpt) {
  CsrCpt out;
  const std::vector<Cpt::Row>& rows = cpt.rows();
  size_t nnz = 0;
  for (const Cpt::Row& row : rows) nnz += row.entries.size();
  out.srcs.reserve(rows.size());
  out.offsets.reserve(rows.size() + 1);
  out.dsts.reserve(nnz);
  out.probs.reserve(nnz);
  out.offsets.push_back(0);
  ValueId lo = ~ValueId{0};
  ValueId hi = 0;
  for (const Cpt::Row& row : rows) {
    out.srcs.push_back(row.src);
    for (const Cpt::RowEntry& e : row.entries) {
      out.dsts.push_back(e.dst);
      out.probs.push_back(e.prob);
    }
    if (!row.entries.empty()) {
      // Row entries are sorted by dst, so front/back bound the row.
      lo = std::min(lo, row.entries.front().dst);
      hi = std::max(hi, row.entries.back().dst);
    }
    out.offsets.push_back(static_cast<uint32_t>(out.dsts.size()));
  }
  if (!out.dsts.empty()) {
    out.dst_begin = lo;
    out.dst_end = hi + 1;
  }
  return out;
}

void PropagationWorkspace::EnsureDomain(uint32_t domain) {
  if (dense.size() < domain) {
    dense.resize(domain, 0.0);
    mark.resize(domain, 0);
  }
}

namespace {

// When the estimated number of scattered contributions is below span/kDenseScanFraction
// the kernels track touched slots explicitly (mark bytes + sort) instead of
// scanning the whole [dst_begin, dst_end) range to re-sparsify. This keeps
// tiny propagations on huge domains output-sensitive.
constexpr size_t kDenseScanFraction = 4;

// ---------------------------------------------------------------------------
// Shared scalar building blocks.
// ---------------------------------------------------------------------------

// dense[dsts[j]] += w * probs[j] for one CSR row slice. Destinations within
// a row are strictly ascending (SetRow merges duplicates), so slots are
// distinct and the updates are order-independent.
inline void ScatterRowScalar(double* dense, const ValueId* dsts,
                             const double* probs, size_t n, double w) {
  for (size_t j = 0; j < n; ++j) dense[dsts[j]] += w * probs[j];
}

// Same, recording first-touched slots via mark bytes (sparse mode).
inline void ScatterRowTracked(double* dense, uint8_t* mark,
                              std::vector<ValueId>* touched,
                              const ValueId* dsts, const double* probs,
                              size_t n, double w) {
  for (size_t j = 0; j < n; ++j) {
    ValueId d = dsts[j];
    if (!mark[d]) {
      mark[d] = 1;
      touched->push_back(d);
    }
    dense[d] += w * probs[j];
  }
}

// Drains the touched slots (sparse mode): sorts them, emits nonzero slots
// into `out`, and restores the dense/mark zero invariant.
inline void DrainTouched(PropagationWorkspace* ws,
                         std::vector<Distribution::Entry>* out) {
  std::sort(ws->touched.begin(), ws->touched.end());
  for (ValueId d : ws->touched) {
    double p = ws->dense[d];
    if (p != 0.0) out->push_back({d, p});
    ws->dense[d] = 0.0;
    ws->mark[d] = 0;
  }
  ws->touched.clear();
}

// Scans dense[begin, end) (dense mode): emits nonzero slots into `out` and
// zeroes them, restoring the workspace invariant.
inline void DrainScanScalar(double* dense, ValueId begin, ValueId end,
                            std::vector<Distribution::Entry>* out) {
  for (ValueId i = begin; i < end; ++i) {
    if (dense[i] != 0.0) {
      out->push_back({i, dense[i]});
      dense[i] = 0.0;
    }
  }
}

// Variants of the drains emitting Cpt::RowEntry (compose kernels).
inline void DrainTouchedRow(PropagationWorkspace* ws,
                            std::vector<Cpt::RowEntry>* out) {
  std::sort(ws->touched.begin(), ws->touched.end());
  for (ValueId d : ws->touched) {
    double p = ws->dense[d];
    if (p != 0.0) out->push_back({d, p});
    ws->dense[d] = 0.0;
    ws->mark[d] = 0;
  }
  ws->touched.clear();
}

inline void DrainScanRowScalar(double* dense, ValueId begin, ValueId end,
                               std::vector<Cpt::RowEntry>* out) {
  for (ValueId i = begin; i < end; ++i) {
    if (dense[i] != 0.0) {
      out->push_back({i, dense[i]});
      dense[i] = 0.0;
    }
  }
}

// Average entries per row, used to estimate scatter volume before choosing
// between touched-tracking and dense-scan re-sparsification.
inline size_t AvgRowLen(const CsrCpt& cpt) {
  return cpt.num_rows() == 0 ? 0 : cpt.nnz() / cpt.num_rows() + 1;
}

// ---------------------------------------------------------------------------
// Scalar kernels (the reference implementation).
// ---------------------------------------------------------------------------

Distribution PropagateScalarImpl(const CsrCpt& cpt, const Distribution& in,
                                 PropagationWorkspace* ws) {
  if (cpt.empty() || in.empty()) return Distribution();
  ws->EnsureDomain(cpt.dst_end);
  const size_t span = cpt.dst_end - cpt.dst_begin;
  const size_t est = std::min(in.support_size(), cpt.num_rows()) * AvgRowLen(cpt);
  const bool sparse_mode = est * kDenseScanFraction < span;

  double* dense = ws->dense.data();
  // Two-pointer merge: input entries and CSR rows are both sorted by id.
  size_t ri = 0;
  const size_t num_rows = cpt.num_rows();
  for (const Distribution::Entry& e : in.entries()) {
    while (ri < num_rows && cpt.srcs[ri] < e.value) ++ri;
    if (ri == num_rows) break;
    if (cpt.srcs[ri] != e.value) continue;
    const uint32_t b = cpt.offsets[ri];
    const uint32_t n = cpt.offsets[ri + 1] - b;
    if (sparse_mode) {
      ScatterRowTracked(dense, ws->mark.data(), &ws->touched, &cpt.dsts[b],
                        &cpt.probs[b], n, e.prob);
    } else {
      ScatterRowScalar(dense, &cpt.dsts[b], &cpt.probs[b], n, e.prob);
    }
  }

  if (sparse_mode) {
    ws->entries.clear();
    DrainTouched(ws, &ws->entries);
    return Distribution::FromSorted(ws->entries);
  }
  return Distribution::FromDenseScratch(ws->dense, cpt.dst_begin, cpt.dst_end);
}

Cpt ComposeScalarImpl(const CsrCpt& first, const CsrCpt& second,
                      uint32_t domain_size, PropagationWorkspace* ws) {
  Cpt out;
  if (first.empty() || second.empty()) return out;
  ws->EnsureDomain(std::max(domain_size, second.dst_end));
  const size_t span = second.dst_end - second.dst_begin;
  const size_t avg = AvgRowLen(second);
  double* dense = ws->dense.data();
  const size_t second_rows = second.num_rows();

  for (size_t r = 0; r < first.num_rows(); ++r) {
    const uint32_t mb = first.offsets[r];
    const uint32_t me = first.offsets[r + 1];
    const bool sparse_mode = (me - mb) * avg * kDenseScanFraction < span;
    // Mids of this row are sorted, as are second's row sources: merge.
    size_t si = 0;
    for (uint32_t m = mb; m < me; ++m) {
      const ValueId mid = first.dsts[m];
      while (si < second_rows && second.srcs[si] < mid) ++si;
      if (si == second_rows) break;
      if (second.srcs[si] != mid) continue;
      const uint32_t b = second.offsets[si];
      const uint32_t n = second.offsets[si + 1] - b;
      if (sparse_mode) {
        ScatterRowTracked(dense, ws->mark.data(), &ws->touched, &second.dsts[b],
                          &second.probs[b], n, first.probs[m]);
      } else {
        ScatterRowScalar(dense, &second.dsts[b], &second.probs[b], n,
                         first.probs[m]);
      }
    }
    ws->row_entries.clear();
    if (sparse_mode) {
      DrainTouchedRow(ws, &ws->row_entries);
    } else {
      DrainScanRowScalar(dense, second.dst_begin, second.dst_end,
                         &ws->row_entries);
    }
    if (!ws->row_entries.empty()) {
      out.AppendRowSorted(first.srcs[r], ws->row_entries);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// AVX2+FMA kernels.
// ---------------------------------------------------------------------------

#ifdef CALDERA_KERNELS_X86

// dense[dsts[j]] += w * probs[j], four lanes at a time: gather the current
// dense values, FMA, write the lanes back individually (AVX2 has gathers
// but no scatter). Within-row destinations are unique, so lanes never
// collide.
__attribute__((target("avx2,fma"))) void ScatterRowAvx2(
    double* dense, const ValueId* dsts, const double* probs, size_t n,
    double w) {
  const __m256d vw = _mm256_set1_pd(w);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dsts + j));
    __m256d p = _mm256_loadu_pd(probs + j);
    // Masked gather with an explicit zero source: the all-ones mask makes
    // it identical to the plain gather, but the plain intrinsic's
    // uninitialized pass-through operand trips GCC's -Wmaybe-uninitialized.
    const __m256d ones_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(int64_t{-1}));
    __m256d cur = _mm256_mask_i32gather_pd(_mm256_setzero_pd(), dense, idx,
                                           ones_mask, 8);
    __m256d res = _mm256_fmadd_pd(vw, p, cur);
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, res);
    dense[dsts[j + 0]] = lanes[0];
    dense[dsts[j + 1]] = lanes[1];
    dense[dsts[j + 2]] = lanes[2];
    dense[dsts[j + 3]] = lanes[3];
  }
  for (; j < n; ++j) dense[dsts[j]] += w * probs[j];
}

// Vectorized re-sparsify: compare four slots against zero at once and emit
// only the set lanes (movemask + ctz). NEQ_UQ so a NaN slot is still
// drained rather than silently left behind.
__attribute__((target("avx2,fma"))) void DrainScanAvx2(
    double* dense, ValueId begin, ValueId end,
    std::vector<Distribution::Entry>* out) {
  const __m256d zero = _mm256_setzero_pd();
  ValueId i = begin;
  for (; i + 4 <= end; i += 4) {
    __m256d v = _mm256_loadu_pd(dense + i);
    int m = _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_NEQ_UQ));
    while (m != 0) {
      int k = __builtin_ctz(static_cast<unsigned>(m));
      m &= m - 1;
      ValueId d = i + static_cast<ValueId>(k);
      out->push_back({d, dense[d]});
      dense[d] = 0.0;
    }
  }
  for (; i < end; ++i) {
    if (dense[i] != 0.0) {
      out->push_back({i, dense[i]});
      dense[i] = 0.0;
    }
  }
}

__attribute__((target("avx2,fma"))) void DrainScanRowAvx2(
    double* dense, ValueId begin, ValueId end,
    std::vector<Cpt::RowEntry>* out) {
  const __m256d zero = _mm256_setzero_pd();
  ValueId i = begin;
  for (; i + 4 <= end; i += 4) {
    __m256d v = _mm256_loadu_pd(dense + i);
    int m = _mm256_movemask_pd(_mm256_cmp_pd(v, zero, _CMP_NEQ_UQ));
    while (m != 0) {
      int k = __builtin_ctz(static_cast<unsigned>(m));
      m &= m - 1;
      ValueId d = i + static_cast<ValueId>(k);
      out->push_back({d, dense[d]});
      dense[d] = 0.0;
    }
  }
  for (; i < end; ++i) {
    if (dense[i] != 0.0) {
      out->push_back({i, dense[i]});
      dense[i] = 0.0;
    }
  }
}

Distribution PropagateSimdImpl(const CsrCpt& cpt, const Distribution& in,
                               PropagationWorkspace* ws) {
  if (cpt.empty() || in.empty()) return Distribution();
  ws->EnsureDomain(cpt.dst_end);
  const size_t span = cpt.dst_end - cpt.dst_begin;
  const size_t est =
      std::min(in.support_size(), cpt.num_rows()) * AvgRowLen(cpt);
  const bool sparse_mode = est * kDenseScanFraction < span;

  double* dense = ws->dense.data();
  size_t ri = 0;
  const size_t num_rows = cpt.num_rows();
  for (const Distribution::Entry& e : in.entries()) {
    while (ri < num_rows && cpt.srcs[ri] < e.value) ++ri;
    if (ri == num_rows) break;
    if (cpt.srcs[ri] != e.value) continue;
    const uint32_t b = cpt.offsets[ri];
    const uint32_t n = cpt.offsets[ri + 1] - b;
    if (sparse_mode) {
      // Sparse outputs are dominated by bookkeeping, not arithmetic: the
      // tracked scalar scatter is the right tool.
      ScatterRowTracked(dense, ws->mark.data(), &ws->touched, &cpt.dsts[b],
                        &cpt.probs[b], n, e.prob);
    } else {
      ScatterRowAvx2(dense, &cpt.dsts[b], &cpt.probs[b], n, e.prob);
    }
  }

  ws->entries.clear();
  if (sparse_mode) {
    DrainTouched(ws, &ws->entries);
  } else {
    DrainScanAvx2(dense, cpt.dst_begin, cpt.dst_end, &ws->entries);
  }
  return Distribution::FromSorted(ws->entries);
}

Cpt ComposeSimdImpl(const CsrCpt& first, const CsrCpt& second,
                    uint32_t domain_size, PropagationWorkspace* ws) {
  Cpt out;
  if (first.empty() || second.empty()) return out;
  ws->EnsureDomain(std::max(domain_size, second.dst_end));
  const size_t span = second.dst_end - second.dst_begin;
  const size_t avg = AvgRowLen(second);
  double* dense = ws->dense.data();
  const size_t second_rows = second.num_rows();

  for (size_t r = 0; r < first.num_rows(); ++r) {
    const uint32_t mb = first.offsets[r];
    const uint32_t me = first.offsets[r + 1];
    const bool sparse_mode = (me - mb) * avg * kDenseScanFraction < span;
    size_t si = 0;
    for (uint32_t m = mb; m < me; ++m) {
      const ValueId mid = first.dsts[m];
      while (si < second_rows && second.srcs[si] < mid) ++si;
      if (si == second_rows) break;
      if (second.srcs[si] != mid) continue;
      const uint32_t b = second.offsets[si];
      const uint32_t n = second.offsets[si + 1] - b;
      if (sparse_mode) {
        ScatterRowTracked(dense, ws->mark.data(), &ws->touched,
                          &second.dsts[b], &second.probs[b], n,
                          first.probs[m]);
      } else {
        ScatterRowAvx2(dense, &second.dsts[b], &second.probs[b], n,
                       first.probs[m]);
      }
    }
    ws->row_entries.clear();
    if (sparse_mode) {
      DrainTouchedRow(ws, &ws->row_entries);
    } else {
      DrainScanRowAvx2(dense, second.dst_begin, second.dst_end,
                       &ws->row_entries);
    }
    if (!ws->row_entries.empty()) {
      out.AppendRowSorted(first.srcs[r], ws->row_entries);
    }
  }
  return out;
}

bool DetectAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // CALDERA_KERNELS_X86

// ---------------------------------------------------------------------------
// Runtime dispatch, following the common/crc32c pattern: resolved once per
// process, with an environment (CALDERA_FORCE_SCALAR_KERNELS=1) and test
// (ForceScalar) override.
// ---------------------------------------------------------------------------

struct Dispatch {
  Distribution (*propagate)(const CsrCpt&, const Distribution&,
                            PropagationWorkspace*);
  Cpt (*compose)(const CsrCpt&, const CsrCpt&, uint32_t,
                 PropagationWorkspace*);
  const char* name;
};

constexpr Dispatch kScalarDispatch = {&PropagateScalarImpl,
                                      &ComposeScalarImpl, "scalar"};
#ifdef CALDERA_KERNELS_X86
constexpr Dispatch kSimdDispatch = {&PropagateSimdImpl, &ComposeSimdImpl,
                                    "avx2+fma"};
#endif

bool SimdSupportedImpl() {
#ifdef CALDERA_KERNELS_X86
  static const bool supported = DetectAvx2Fma();
  return supported;
#else
  return false;
#endif
}

const Dispatch* AutoDispatch() {
#ifdef CALDERA_KERNELS_X86
  if (SimdSupportedImpl()) {
    const char* force = std::getenv("CALDERA_FORCE_SCALAR_KERNELS");
    if (force == nullptr || force[0] == '\0' || force[0] == '0') {
      return &kSimdDispatch;
    }
  }
#endif
  return &kScalarDispatch;
}

std::atomic<const Dispatch*> g_dispatch{nullptr};

const Dispatch* Resolved() {
  const Dispatch* d = g_dispatch.load(std::memory_order_acquire);
  if (d == nullptr) {
    d = AutoDispatch();
    g_dispatch.store(d, std::memory_order_release);
  }
  return d;
}

}  // namespace

Distribution Propagate(const Cpt& cpt, const Distribution& in,
                       PropagationWorkspace* ws) {
  return Resolved()->propagate(cpt.csr(), in, ws);
}

Cpt Compose(const Cpt& first, const Cpt& second, uint32_t domain_size,
            PropagationWorkspace* ws) {
  return Resolved()->compose(first.csr(), second.csr(), domain_size, ws);
}

const char* Backend() { return Resolved()->name; }

bool SimdEnabled() { return Resolved() != &kScalarDispatch; }

namespace internal {

bool SimdSupported() { return SimdSupportedImpl(); }

void ForceScalar(bool force) {
  g_dispatch.store(force ? &kScalarDispatch : AutoDispatch(),
                   std::memory_order_release);
}

Distribution PropagateScalar(const CsrCpt& cpt, const Distribution& in,
                             PropagationWorkspace* ws) {
  return PropagateScalarImpl(cpt, in, ws);
}

Cpt ComposeScalar(const CsrCpt& first, const CsrCpt& second,
                  uint32_t domain_size, PropagationWorkspace* ws) {
  return ComposeScalarImpl(first, second, domain_size, ws);
}

Distribution PropagateSimd(const CsrCpt& cpt, const Distribution& in,
                           PropagationWorkspace* ws) {
#ifdef CALDERA_KERNELS_X86
  return PropagateSimdImpl(cpt, in, ws);
#else
  (void)cpt;
  (void)in;
  (void)ws;
  return Distribution();
#endif
}

Cpt ComposeSimd(const CsrCpt& first, const CsrCpt& second,
                uint32_t domain_size, PropagationWorkspace* ws) {
#ifdef CALDERA_KERNELS_X86
  return ComposeSimdImpl(first, second, domain_size, ws);
#else
  (void)first;
  (void)second;
  (void)domain_size;
  (void)ws;
  return Cpt();
#endif
}

}  // namespace internal
}  // namespace kernels
}  // namespace caldera
