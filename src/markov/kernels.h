#ifndef CALDERA_MARKOV_KERNELS_H_
#define CALDERA_MARKOV_KERNELS_H_

#include <cstdint>
#include <vector>

#include "markov/cpt.h"
#include "markov/distribution.h"

namespace caldera {
namespace kernels {

/// A CSR-style flattened view of a Cpt: the sparse stochastic matrix as
/// three contiguous arrays (row sources, row offsets, and the interleaved
/// dst/prob payload split into two parallel arrays). Built once per Cpt —
/// lazily, via Cpt::csr() — and reused by every kernel invocation; the
/// AoS vector<Row>/vector<RowEntry> layout stays the (de)serialization and
/// mutation format.
struct CsrCpt {
  std::vector<ValueId> srcs;      ///< Row sources, ascending.
  std::vector<uint32_t> offsets;  ///< srcs.size() + 1 offsets into dsts.
  std::vector<ValueId> dsts;      ///< Destinations, ascending within a row.
  std::vector<double> probs;      ///< Parallel to dsts.
  ValueId dst_begin = 0;          ///< Smallest destination in the table.
  ValueId dst_end = 0;            ///< Largest destination + 1 (0 if empty).

  static CsrCpt From(const Cpt& cpt);

  size_t num_rows() const { return srcs.size(); }
  size_t nnz() const { return dsts.size(); }
  bool empty() const { return srcs.empty(); }
};

/// Reusable dense scratch for the propagate/compose kernels. The dense and
/// mark arrays are an invariant-zero workspace: every kernel call leaves
/// them fully zeroed again, so a workspace can be shared across any number
/// of calls (but not across threads) without re-clearing. Owning one per
/// operator (RegOperator) or per build/query loop eliminates the
/// per-timestep allocation the AoS path paid.
class PropagationWorkspace {
 public:
  /// Grows the scratch to cover destination ids < `domain`. Cheap when
  /// already large enough.
  void EnsureDomain(uint32_t domain);

  uint32_t domain() const { return static_cast<uint32_t>(dense.size()); }

  // Kernel-internal buffers; all zeroed (dense, mark) or contents-unspecified
  // (touched, entries, row_entries) between calls.
  std::vector<double> dense;
  std::vector<uint8_t> mark;
  std::vector<ValueId> touched;
  std::vector<Distribution::Entry> entries;
  std::vector<Cpt::RowEntry> row_entries;
};

/// out[y] = sum_x in[x] * P(y|x), the Reg operator's inner loop. Identical
/// semantics to Cpt::Propagate but runs over the CSR view with a dense
/// scatter/accumulate/re-sparsify instead of sparse gather + sort; entries
/// of the result are sorted by value. Dispatches to the AVX2+FMA kernel
/// when the CPU supports it (see Backend()).
Distribution Propagate(const Cpt& cpt, const Distribution& in,
                       PropagationWorkspace* ws);

/// Chain-rule composition with the same semantics as ComposeCpts: returns
/// CPT(a -> b) with P(z|x) = sum_y first(y|x) * second(z|y). The dense
/// scratch is hoisted across all source rows (and across calls, via `ws`).
Cpt Compose(const Cpt& first, const Cpt& second, uint32_t domain_size,
            PropagationWorkspace* ws);

/// Which kernel implementation is live: "avx2+fma" or "scalar". Resolved
/// once per process; CALDERA_FORCE_SCALAR_KERNELS=1 in the environment
/// forces "scalar" regardless of CPU support (CI runs the differential
/// tests under both).
const char* Backend();

/// True when Backend() is a SIMD implementation.
bool SimdEnabled();

namespace internal {

/// True when this build/CPU pair can run the AVX2+FMA kernels at all
/// (independent of the force-scalar override).
bool SimdSupported();

/// Test hook: force (or stop forcing) the scalar kernels for subsequent
/// dispatched calls. Not thread-safe; tests restore the previous value.
void ForceScalar(bool force);

// The concrete kernels, bypassing dispatch, for differential tests and
// benchmarks. The scalar variants are the reference implementation (the
// two-pointer merge + dense scratch described in the design doc); the Simd
// variants must only be called when SimdSupported().
Distribution PropagateScalar(const CsrCpt& cpt, const Distribution& in,
                             PropagationWorkspace* ws);
Distribution PropagateSimd(const CsrCpt& cpt, const Distribution& in,
                           PropagationWorkspace* ws);
Cpt ComposeScalar(const CsrCpt& first, const CsrCpt& second,
                  uint32_t domain_size, PropagationWorkspace* ws);
Cpt ComposeSimd(const CsrCpt& first, const CsrCpt& second,
                uint32_t domain_size, PropagationWorkspace* ws);

}  // namespace internal
}  // namespace kernels
}  // namespace caldera

#endif  // CALDERA_MARKOV_KERNELS_H_
