#ifndef CALDERA_MARKOV_SCHEMA_H_
#define CALDERA_MARKOV_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "markov/distribution.h"

namespace caldera {

/// Describes the value attributes A_1..A_k of a Markovian stream
/// (Section 2.1). Each attribute has a finite labeled domain; a full stream
/// state is one value per attribute, encoded into a single dense ValueId via
/// mixed-radix encoding so the rest of the system can treat the state space
/// as a flat domain.
class StreamSchema {
 public:
  StreamSchema() = default;

  /// Adds an attribute with the given domain labels; returns its index.
  size_t AddAttribute(std::string name, std::vector<std::string> labels);

  size_t num_attributes() const { return attributes_.size(); }
  const std::string& attribute_name(size_t attr) const {
    return attributes_[attr].name;
  }
  uint32_t domain_size(size_t attr) const {
    return static_cast<uint32_t>(attributes_[attr].labels.size());
  }
  const std::string& label(size_t attr, uint32_t value) const {
    return attributes_[attr].labels[value];
  }

  /// Looks up an attribute index by name; NotFound otherwise.
  Result<size_t> AttributeIndex(std::string_view name) const;

  /// Looks up a value by label within an attribute; NotFound otherwise.
  Result<uint32_t> ValueOf(size_t attr, std::string_view label) const;

  /// Total number of encoded states (product of domain sizes; 0 if no
  /// attributes).
  uint32_t state_count() const { return state_count_; }

  /// Encodes one value per attribute into a flat state id.
  ValueId EncodeState(const std::vector<uint32_t>& attr_values) const;

  /// Extracts attribute `attr`'s value from an encoded state id.
  uint32_t AttributeValue(ValueId state, size_t attr) const;

  /// Human-readable rendering of a state, e.g. "loc=Office300".
  std::string StateLabel(ValueId state) const;

  bool operator==(const StreamSchema&) const = default;

  // Binary serialization.
  void AppendTo(std::string* out) const;
  static Result<StreamSchema> Parse(std::string_view data, size_t* offset);

 private:
  struct Attribute {
    std::string name;
    std::vector<std::string> labels;
    uint32_t radix = 1;  ///< Product of later attributes' domain sizes.

    bool operator==(const Attribute&) const = default;
  };

  void RecomputeRadices();

  std::vector<Attribute> attributes_;
  uint32_t state_count_ = 0;
};

/// Convenience: a single-attribute schema (the common case in the paper).
StreamSchema SingleAttributeSchema(std::string name,
                                   std::vector<std::string> labels);

}  // namespace caldera

#endif  // CALDERA_MARKOV_SCHEMA_H_
