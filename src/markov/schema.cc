#include "markov/schema.h"

#include "common/encoding.h"
#include "common/logging.h"

namespace caldera {

size_t StreamSchema::AddAttribute(std::string name,
                                  std::vector<std::string> labels) {
  attributes_.push_back(
      Attribute{std::move(name), std::move(labels), /*radix=*/1});
  RecomputeRadices();
  return attributes_.size() - 1;
}

void StreamSchema::RecomputeRadices() {
  uint32_t radix = 1;
  for (size_t i = attributes_.size(); i-- > 0;) {
    attributes_[i].radix = radix;
    radix *= static_cast<uint32_t>(attributes_[i].labels.size());
  }
  state_count_ = attributes_.empty() ? 0 : radix;
}

Result<size_t> StreamSchema::AttributeIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + std::string(name) + "'");
}

Result<uint32_t> StreamSchema::ValueOf(size_t attr,
                                       std::string_view label) const {
  const Attribute& a = attributes_[attr];
  for (size_t i = 0; i < a.labels.size(); ++i) {
    if (a.labels[i] == label) return static_cast<uint32_t>(i);
  }
  return Status::NotFound("no value labeled '" + std::string(label) +
                          "' in attribute " + a.name);
}

ValueId StreamSchema::EncodeState(
    const std::vector<uint32_t>& attr_values) const {
  CALDERA_CHECK(attr_values.size() == attributes_.size())
      << "expected " << attributes_.size() << " attribute values";
  ValueId state = 0;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    CALDERA_CHECK(attr_values[i] < attributes_[i].labels.size());
    state += attr_values[i] * attributes_[i].radix;
  }
  return state;
}

uint32_t StreamSchema::AttributeValue(ValueId state, size_t attr) const {
  const Attribute& a = attributes_[attr];
  return (state / a.radix) % static_cast<uint32_t>(a.labels.size());
}

std::string StreamSchema::StateLabel(ValueId state) const {
  std::string out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ",";
    out += attributes_[i].name;
    out += "=";
    out += attributes_[i].labels[AttributeValue(state, i)];
  }
  return out;
}

void StreamSchema::AppendTo(std::string* out) const {
  PutFixed32(static_cast<uint32_t>(attributes_.size()), out);
  for (const Attribute& a : attributes_) {
    PutLengthPrefixed(a.name, out);
    PutFixed32(static_cast<uint32_t>(a.labels.size()), out);
    for (const std::string& label : a.labels) PutLengthPrefixed(label, out);
  }
}

Result<StreamSchema> StreamSchema::Parse(std::string_view data,
                                         size_t* offset) {
  if (*offset + 4 > data.size()) return Status::Corruption("truncated schema");
  uint32_t num_attrs = GetFixed32(data.data() + *offset);
  *offset += 4;
  // Each attribute needs at least 8 bytes (name length + label count).
  if (*offset + static_cast<uint64_t>(num_attrs) * 8 > data.size()) {
    return Status::Corruption("schema attribute count exceeds bytes");
  }
  StreamSchema schema;
  for (uint32_t i = 0; i < num_attrs; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(data, offset, &name)) {
      return Status::Corruption("truncated schema attribute name");
    }
    if (*offset + 4 > data.size()) {
      return Status::Corruption("truncated schema label count");
    }
    uint32_t num_labels = GetFixed32(data.data() + *offset);
    *offset += 4;
    // Each label needs at least a 4-byte length prefix.
    if (*offset + static_cast<uint64_t>(num_labels) * 4 > data.size()) {
      return Status::Corruption("schema label count exceeds bytes");
    }
    std::vector<std::string> labels;
    labels.reserve(num_labels);
    for (uint32_t j = 0; j < num_labels; ++j) {
      std::string_view label;
      if (!GetLengthPrefixed(data, offset, &label)) {
        return Status::Corruption("truncated schema label");
      }
      labels.emplace_back(label);
    }
    schema.AddAttribute(std::string(name), std::move(labels));
  }
  return schema;
}

StreamSchema SingleAttributeSchema(std::string name,
                                   std::vector<std::string> labels) {
  StreamSchema schema;
  schema.AddAttribute(std::move(name), std::move(labels));
  return schema;
}

}  // namespace caldera
