#include "markov/stream_io.h"

#include "common/encoding.h"
#include "storage/file.h"

namespace caldera {

namespace {
constexpr char kMetaMagic[8] = {'C', 'L', 'D', 'R', 'M', 'K', 'V', '1'};
constexpr const char* kMetaFile = "meta.bin";
constexpr const char* kMarginalsFile = "marginals.rec";
constexpr const char* kCptsFile = "cpts.rec";
constexpr const char* kCombinedFile = "stream.rec";
}  // namespace

std::string StreamMetaPath(const std::string& dir) {
  return dir + "/" + kMetaFile;
}
std::string StreamMarginalsPath(const std::string& dir) {
  return dir + "/" + kMarginalsFile;
}
std::string StreamCptsPath(const std::string& dir) {
  return dir + "/" + kCptsFile;
}
std::string StreamCombinedPath(const std::string& dir) {
  return dir + "/" + kCombinedFile;
}

Result<StreamMetaInfo> ReadStreamMeta(const std::string& dir) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> meta_file,
                           File::OpenReadOnly(StreamMetaPath(dir)));
  std::string meta(meta_file->size(), '\0');
  CALDERA_RETURN_IF_ERROR(meta_file->ReadAt(0, meta.size(), meta.data()));
  if (meta.size() < 17 || meta.compare(0, 8, kMetaMagic, 8) != 0) {
    return Status::Corruption("bad stream metadata in " + dir);
  }
  StreamMetaInfo info;
  info.layout = static_cast<DiskLayout>(meta[8]);
  if (info.layout != DiskLayout::kSeparated &&
      info.layout != DiskLayout::kCoClustered) {
    return Status::Corruption("bad layout byte in " + dir);
  }
  info.length = GetFixed64(meta.data() + 9);
  size_t offset = 17;
  CALDERA_ASSIGN_OR_RETURN(info.schema, StreamSchema::Parse(meta, &offset));
  return info;
}

Status UpdateStreamLength(const std::string& dir, uint64_t new_length) {
  // Validate before patching so a stray call cannot stamp a length into an
  // arbitrary file.
  CALDERA_RETURN_IF_ERROR(ReadStreamMeta(dir).status());
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                           File::Open(StreamMetaPath(dir)));
  std::string field;
  PutFixed64(new_length, &field);
  CALDERA_RETURN_IF_ERROR(f->WriteAt(9, field));
  return f->Sync();
}

const char* DiskLayoutName(DiskLayout layout) {
  switch (layout) {
    case DiskLayout::kSeparated:
      return "separated";
    case DiskLayout::kCoClustered:
      return "co-clustered";
  }
  return "unknown";
}

Status WriteStream(const std::string& dir, const MarkovianStream& stream,
                   DiskLayout layout, uint32_t page_size) {
  CALDERA_RETURN_IF_ERROR(CreateDirectories(dir));

  // Metadata.
  std::string meta(kMetaMagic, 8);
  meta.push_back(static_cast<char>(layout));
  PutFixed64(stream.length(), &meta);
  stream.schema().AppendTo(&meta);
  {
    CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> f,
                             File::OpenOrCreate(dir + "/" + kMetaFile));
    CALDERA_RETURN_IF_ERROR(f->Truncate(0));
    CALDERA_RETURN_IF_ERROR(f->Append(meta));
    CALDERA_RETURN_IF_ERROR(f->Sync());
  }

  std::string record;
  if (layout == DiskLayout::kSeparated) {
    CALDERA_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordFileWriter> marginals,
        RecordFileWriter::Create(dir + "/" + kMarginalsFile, page_size));
    CALDERA_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordFileWriter> cpts,
        RecordFileWriter::Create(dir + "/" + kCptsFile, page_size));
    for (uint64_t t = 0; t < stream.length(); ++t) {
      record.clear();
      stream.marginal(t).AppendTo(&record);
      CALDERA_RETURN_IF_ERROR(marginals->Append(record).status());
      record.clear();
      stream.transition(t).AppendTo(&record);
      CALDERA_RETURN_IF_ERROR(cpts->Append(record).status());
    }
    CALDERA_RETURN_IF_ERROR(marginals->Finalize());
    CALDERA_RETURN_IF_ERROR(cpts->Finalize());
    return Status::Ok();
  }

  CALDERA_ASSIGN_OR_RETURN(
      std::unique_ptr<RecordFileWriter> combined,
      RecordFileWriter::Create(dir + "/" + kCombinedFile, page_size));
  for (uint64_t t = 0; t < stream.length(); ++t) {
    record.clear();
    stream.marginal(t).AppendTo(&record);
    stream.transition(t).AppendTo(&record);
    CALDERA_RETURN_IF_ERROR(combined->Append(record).status());
  }
  return combined->Finalize();
}

Result<std::unique_ptr<StoredStream>> StoredStream::Open(
    const std::string& dir, size_t pool_pages) {
  CALDERA_ASSIGN_OR_RETURN(std::unique_ptr<File> meta_file,
                           File::OpenReadOnly(dir + "/" + kMetaFile));
  std::string meta(meta_file->size(), '\0');
  CALDERA_RETURN_IF_ERROR(meta_file->ReadAt(0, meta.size(), meta.data()));
  if (meta.size() < 17 || meta.compare(0, 8, kMetaMagic, 8) != 0) {
    return Status::Corruption("bad stream metadata in " + dir);
  }
  auto layout = static_cast<DiskLayout>(meta[8]);
  if (layout != DiskLayout::kSeparated && layout != DiskLayout::kCoClustered) {
    return Status::Corruption("bad layout byte in " + dir);
  }
  uint64_t length = GetFixed64(meta.data() + 9);
  size_t offset = 17;
  CALDERA_ASSIGN_OR_RETURN(StreamSchema schema,
                           StreamSchema::Parse(meta, &offset));

  auto stream = std::unique_ptr<StoredStream>(
      new StoredStream(dir, layout, length, std::move(schema)));
  if (layout == DiskLayout::kSeparated) {
    CALDERA_ASSIGN_OR_RETURN(
        stream->marginals_,
        RecordFileReader::Open(dir + "/" + kMarginalsFile, pool_pages));
    CALDERA_ASSIGN_OR_RETURN(
        stream->cpts_,
        RecordFileReader::Open(dir + "/" + kCptsFile, pool_pages));
    if (stream->marginals_->num_records() != length ||
        stream->cpts_->num_records() != length) {
      return Status::Corruption("record count mismatch in " + dir);
    }
  } else {
    CALDERA_ASSIGN_OR_RETURN(
        stream->combined_,
        RecordFileReader::Open(dir + "/" + kCombinedFile, pool_pages));
    if (stream->combined_->num_records() != length) {
      return Status::Corruption("record count mismatch in " + dir);
    }
  }
  return stream;
}

Status StoredStream::ReadCoClustered(uint64_t t, Distribution* marginal,
                                     Cpt* transition) {
  CALDERA_RETURN_IF_ERROR(combined_->Get(t, &scratch_));
  size_t offset = 0;
  CALDERA_ASSIGN_OR_RETURN(Distribution m,
                           Distribution::Parse(scratch_, &offset));
  CALDERA_ASSIGN_OR_RETURN(Cpt c, Cpt::Parse(scratch_, &offset));
  if (marginal != nullptr) *marginal = std::move(m);
  if (transition != nullptr) *transition = std::move(c);
  return Status::Ok();
}

Status StoredStream::ReadMarginal(uint64_t t, Distribution* out) {
  if (t >= length_) {
    return Status::OutOfRange("timestep " + std::to_string(t) +
                              " >= length " + std::to_string(length_));
  }
  if (layout_ == DiskLayout::kCoClustered) {
    return ReadCoClustered(t, out, nullptr);
  }
  CALDERA_RETURN_IF_ERROR(marginals_->Get(t, &scratch_));
  size_t offset = 0;
  CALDERA_ASSIGN_OR_RETURN(*out, Distribution::Parse(scratch_, &offset));
  return Status::Ok();
}

Status StoredStream::ReadTransition(uint64_t t, Cpt* out) {
  if (t == 0 || t >= length_) {
    return Status::OutOfRange("no transition into timestep " +
                              std::to_string(t));
  }
  if (layout_ == DiskLayout::kCoClustered) {
    return ReadCoClustered(t, nullptr, out);
  }
  CALDERA_RETURN_IF_ERROR(cpts_->Get(t, &scratch_));
  size_t offset = 0;
  CALDERA_ASSIGN_OR_RETURN(*out, Cpt::Parse(scratch_, &offset));
  return Status::Ok();
}

Status StoredStream::ReadTimestep(uint64_t t, Distribution* marginal,
                                  Cpt* transition) {
  if (t >= length_) {
    return Status::OutOfRange("timestep " + std::to_string(t) +
                              " >= length " + std::to_string(length_));
  }
  if (layout_ == DiskLayout::kCoClustered) {
    return ReadCoClustered(t, marginal, transition);
  }
  CALDERA_RETURN_IF_ERROR(ReadMarginal(t, marginal));
  if (t == 0) {
    *transition = Cpt();
    return Status::Ok();
  }
  return ReadTransition(t, transition);
}

uint64_t StoredStream::DataFilePages() const {
  uint64_t pages = 0;
  if (marginals_ != nullptr) pages += marginals_->file_pages();
  if (cpts_ != nullptr) pages += cpts_->file_pages();
  if (combined_ != nullptr) pages += combined_->file_pages();
  return pages;
}

BufferPoolStats StoredStream::IoStats() const {
  BufferPoolStats total;
  if (marginals_ != nullptr) total += marginals_->stats();
  if (cpts_ != nullptr) total += cpts_->stats();
  if (combined_ != nullptr) total += combined_->stats();
  return total;
}

void StoredStream::ResetStats() {
  if (marginals_ != nullptr) marginals_->ResetStats();
  if (cpts_ != nullptr) cpts_->ResetStats();
  if (combined_ != nullptr) combined_->ResetStats();
}

Result<MarkovianStream> LoadStream(StoredStream* stored) {
  MarkovianStream stream(stored->schema());
  Distribution marginal;
  Cpt transition;
  for (uint64_t t = 0; t < stored->length(); ++t) {
    CALDERA_RETURN_IF_ERROR(stored->ReadTimestep(t, &marginal, &transition));
    stream.Append(std::move(marginal), std::move(transition));
    marginal = Distribution();
    transition = Cpt();
  }
  return stream;
}

}  // namespace caldera
