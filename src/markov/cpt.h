#ifndef CALDERA_MARKOV_CPT_H_
#define CALDERA_MARKOV_CPT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "markov/distribution.h"

namespace caldera {

namespace kernels {
struct CsrCpt;
}  // namespace kernels

/// A conditional probability table (CPT): the sparse stochastic matrix
/// relating consecutive (or, via the MC index, distant) Markovian stream
/// timesteps. Row `src` holds P(X_next = dst | X_prev = src).
///
/// Rows are stored sparsely and sorted by source id; each row's entries are
/// sorted by destination id. Sources outside the previous timestep's support
/// need no row.
class Cpt {
 public:
  struct RowEntry {
    ValueId dst;
    double prob;

    bool operator==(const RowEntry&) const = default;
  };
  struct Row {
    ValueId src;
    std::vector<RowEntry> entries;

    bool operator==(const Row&) const = default;
  };

  Cpt() = default;
  // Copies share the (immutable) cached CSR view when one has been built;
  // the copy is taken atomically so concurrent readers of the source are
  // safe. Mutation is single-threaded, like every other Cpt writer path.
  Cpt(const Cpt& other) : rows_(other.rows_), csr_(other.LoadCsr()) {}
  Cpt& operator=(const Cpt& other) {
    if (this != &other) {
      rows_ = other.rows_;
      csr_ = other.LoadCsr();
    }
    return *this;
  }
  Cpt(Cpt&&) = default;
  Cpt& operator=(Cpt&&) = default;

  /// Sets the row for `src`; entries need not be sorted. Replaces any
  /// existing row.
  void SetRow(ValueId src, std::vector<RowEntry> entries);

  /// Builder fast path used by the compose kernels: appends a row whose
  /// `src` is greater than every existing row and whose entries are already
  /// sorted by destination with no duplicates. O(1) amortized, no re-sort.
  void AppendRowSorted(ValueId src, std::vector<RowEntry> entries);

  /// Returns the row for `src`, or nullptr.
  const Row* FindRow(ValueId src) const;

  /// P(dst | src); 0 if the pair is absent.
  double Probability(ValueId src, ValueId dst) const;

  /// Propagates a (possibly sub-stochastic) distribution through this CPT:
  /// out[y] = sum_x in[x] * P(y|x). Mass on sources without a row is
  /// dropped (those sources are outside the stream's support).
  Distribution Propagate(const Distribution& in) const;

  /// Verifies every row sums to 1 within `tol`.
  Status ValidateStochastic(double tol = 1e-6) const;

  /// Keeps only transition entries whose destination satisfies `matcher`,
  /// producing the sub-stochastic matrix used by predicate-conditioned MC
  /// indexes (Section 3.3.2): P(X_next = dst AND dst in P | src).
  template <typename Matcher>
  Cpt ConditionDestination(const Matcher& matcher) const {
    Cpt out;
    out.rows_.reserve(rows_.size());
    for (const Row& row : rows_) {
      std::vector<RowEntry> kept;
      for (const RowEntry& e : row.entries) {
        if (matcher(e.dst)) kept.push_back(e);
      }
      if (!kept.empty()) out.rows_.push_back({row.src, std::move(kept)});
    }
    return out;
  }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Total number of nonzero transition entries.
  size_t nnz() const;

  /// Approximate in-memory/on-disk footprint in bytes.
  size_t ByteSize() const;

  /// The flattened CSR view of this table (markov/kernels.h), built lazily
  /// on first use and cached until the next mutation; copies made after it
  /// exists share it. Concurrent first calls on the same object are safe
  /// (the losing builder adopts the winner's view); mutation while another
  /// thread reads is not, matching the rest of the class.
  const kernels::CsrCpt& csr() const;

  bool operator==(const Cpt& other) const { return rows_ == other.rows_; }

  // Binary serialization:
  //   u32 num_rows, then per row: u32 src, u32 count, count*(u32 dst,f64 p).
  void AppendTo(std::string* out) const;
  static Result<Cpt> Parse(std::string_view data, size_t* offset);

 private:
  std::shared_ptr<const kernels::CsrCpt> LoadCsr() const;

  std::vector<Row> rows_;
  mutable std::shared_ptr<const kernels::CsrCpt> csr_;
};

/// Chain-rule composition (Section 3.3.1): given `first` = CPT(a -> m) and
/// `second` = CPT(m -> b), returns CPT(a -> b) with
/// P(z|x) = sum_y first(y|x) * second(z|y).
/// `domain_size` bounds the destination ids (dense scratch space).
/// Runs on the dispatched compute kernel (markov/kernels.h) with a
/// thread-local workspace, so the dense scratch is reused across rows and
/// across calls — MC index builds compose thousands of CPTs through here.
Cpt ComposeCpts(const Cpt& first, const Cpt& second, uint32_t domain_size);

/// The identity CPT on the given support (used as the composition seed).
Cpt IdentityCpt(const std::vector<ValueId>& support);

}  // namespace caldera

#endif  // CALDERA_MARKOV_CPT_H_
