#ifndef CALDERA_MARKOV_SYNTHETIC_H_
#define CALDERA_MARKOV_SYNTHETIC_H_

#include <cstdint>

#include "markov/stream.h"

namespace caldera {

/// Synthetic Markovian-stream generators used by tests and benchmarks.
/// Both always produce streams satisfying MarkovianStream::Validate.

/// A fully random stream: each timestep's CPT rows pick random sparse
/// stochastic successors anywhere in the domain; marginals are propagated
/// from a random point mass. Supports tend toward the full domain, so
/// query relevance is dense — good for stressing exactness, bad for
/// modelling sparse sensors.
MarkovianStream MakeRandomStream(uint64_t length, uint32_t domain,
                                 uint64_t seed, double edge_prob = 0.5);

/// A "banded" random walk: transitions move only between neighboring value
/// ids and supports are truncated each step (like sample-based smoothing),
/// so supports stay local and value-specific predicates have realistic
/// gaps. Long-span CPT products are genuinely wide (bandwidth grows with
/// the span), which exercises the MC index's composition cost.
MarkovianStream MakeBandedRandomWalkStream(uint64_t length, uint32_t domain,
                                           uint64_t seed,
                                           double truncate_eps = 1e-3);

}  // namespace caldera

#endif  // CALDERA_MARKOV_SYNTHETIC_H_
