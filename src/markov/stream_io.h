#ifndef CALDERA_MARKOV_STREAM_IO_H_
#define CALDERA_MARKOV_STREAM_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "markov/stream.h"
#include "storage/record_file.h"

namespace caldera {

/// Physical organization of a stream on disk (Section 3.4.2).
enum class DiskLayout : uint8_t {
  /// Marginal and CPT sequences in separate files; an access touching only
  /// one sequence reads fewer pages.
  kSeparated = 1,
  /// Marginal+CPT of each timestep co-located in one record; an access
  /// needing both for a timestep pays one lookup.
  kCoClustered = 2,
};

const char* DiskLayoutName(DiskLayout layout);

/// Archives `stream` into directory `dir` using `layout`. Creates
///   dir/meta.bin                      stream metadata + schema
///   dir/marginals.rec + dir/cpts.rec  (separated)
///   dir/stream.rec                    (co-clustered)
Status WriteStream(const std::string& dir, const MarkovianStream& stream,
                   DiskLayout layout = DiskLayout::kSeparated,
                   uint32_t page_size = kDefaultPageSize);

/// File names inside a stream directory — shared with the ingest/WAL
/// machinery, which journals pre-images of these files before mutating
/// them.
std::string StreamMetaPath(const std::string& dir);
std::string StreamMarginalsPath(const std::string& dir);
std::string StreamCptsPath(const std::string& dir);
std::string StreamCombinedPath(const std::string& dir);

/// The decoded header of dir/meta.bin. Unlike StoredStream::Open this does
/// not open or validate the data files, so it works mid-recovery when the
/// record files are still being repaired.
struct StreamMetaInfo {
  DiskLayout layout = DiskLayout::kSeparated;
  uint64_t length = 0;
  StreamSchema schema;
};
Result<StreamMetaInfo> ReadStreamMeta(const std::string& dir);

/// Rewrites the length field of dir/meta.bin in place and syncs (the
/// live-ingestion commit path; layout and schema are untouched).
Status UpdateStreamLength(const std::string& dir, uint64_t new_length);

/// Read-only handle to an archived Markovian stream. All reads go through
/// per-file LRU buffer pools; IoStats() aggregates their counters so access
/// methods can report page traffic.
class StoredStream {
 public:
  static Result<std::unique_ptr<StoredStream>> Open(const std::string& dir,
                                                    size_t pool_pages = 256);

  /// Reads the marginal distribution of timestep `t`.
  Status ReadMarginal(uint64_t t, Distribution* out);

  /// Reads the CPT into timestep `t` (defined for t in [1, length)).
  Status ReadTransition(uint64_t t, Cpt* out);

  /// Reads both (one record in the co-clustered layout). `transition` is
  /// left empty for t == 0.
  Status ReadTimestep(uint64_t t, Distribution* marginal, Cpt* transition);

  uint64_t length() const { return length_; }
  const StreamSchema& schema() const { return schema_; }
  DiskLayout layout() const { return layout_; }
  const std::string& dir() const { return dir_; }

  /// Total on-disk pages across the stream's data files.
  uint64_t DataFilePages() const;

  BufferPoolStats IoStats() const;
  void ResetStats();

 private:
  StoredStream(std::string dir, DiskLayout layout, uint64_t length,
               StreamSchema schema)
      : dir_(std::move(dir)),
        layout_(layout),
        length_(length),
        schema_(std::move(schema)) {}

  Status ReadCoClustered(uint64_t t, Distribution* marginal, Cpt* transition);

  std::string dir_;
  DiskLayout layout_;
  uint64_t length_;
  StreamSchema schema_;
  // Separated layout:
  std::unique_ptr<RecordFileReader> marginals_;
  std::unique_ptr<RecordFileReader> cpts_;
  // Co-clustered layout:
  std::unique_ptr<RecordFileReader> combined_;
  std::string scratch_;
};

/// Loads an entire archived stream back into memory (used for index
/// building and validation; archived streams are modest by in-memory
/// standards).
Result<MarkovianStream> LoadStream(StoredStream* stored);

}  // namespace caldera

#endif  // CALDERA_MARKOV_STREAM_IO_H_
