#include "markov/synthetic.h"

#include <string>
#include <vector>

#include "common/rng.h"

namespace caldera {

namespace {

StreamSchema FlatSchema(uint32_t domain) {
  std::vector<std::string> labels;
  labels.reserve(domain);
  for (uint32_t i = 0; i < domain; ++i) {
    labels.push_back("s" + std::to_string(i));
  }
  return SingleAttributeSchema("loc", std::move(labels));
}

}  // namespace

MarkovianStream MakeRandomStream(uint64_t length, uint32_t domain,
                                 uint64_t seed, double edge_prob) {
  MarkovianStream stream(FlatSchema(domain));
  Rng rng(seed);
  Distribution current = Distribution::Point(rng.NextBelow(domain));
  stream.Append(current, Cpt());
  for (uint64_t t = 1; t < length; ++t) {
    Cpt cpt;
    for (const Distribution::Entry& e : current.entries()) {
      std::vector<Cpt::RowEntry> row;
      double sum = 0;
      for (uint32_t j = 0; j < domain; ++j) {
        if (rng.NextBool(edge_prob)) {
          double v = rng.NextDouble() + 0.05;
          row.push_back({j, v});
          sum += v;
        }
      }
      if (row.empty()) {
        row.push_back({e.value, 1.0});
        sum = 1.0;
      }
      for (auto& re : row) re.prob /= sum;
      cpt.SetRow(e.value, std::move(row));
    }
    current = cpt.Propagate(current);
    stream.Append(current, std::move(cpt));
  }
  return stream;
}

MarkovianStream MakeBandedRandomWalkStream(uint64_t length, uint32_t domain,
                                           uint64_t seed,
                                           double truncate_eps) {
  MarkovianStream stream(FlatSchema(domain));
  Rng rng(seed);
  Distribution current = Distribution::Point(rng.NextBelow(domain));
  stream.Append(current, Cpt());
  for (uint64_t t = 1; t < length; ++t) {
    Cpt cpt;
    for (const Distribution::Entry& e : current.entries()) {
      std::vector<Cpt::RowEntry> row;
      double sum = 0;
      for (int d = -1; d <= 1; ++d) {
        int64_t v = static_cast<int64_t>(e.value) + d;
        if (v < 0 || v >= static_cast<int64_t>(domain)) continue;
        double w = rng.NextDouble() + 0.1;
        row.push_back({static_cast<ValueId>(v), w});
        sum += w;
      }
      for (auto& re : row) re.prob /= sum;
      cpt.SetRow(e.value, std::move(row));
    }
    current = cpt.Propagate(current);
    // Keep supports genuinely sparse, as sample-based smoothing would,
    // then restrict the CPT to the surviving support so the stream stays
    // exactly consistent.
    current.Truncate(truncate_eps);
    Cpt restricted;
    for (const Cpt::Row& cpt_row : cpt.rows()) {
      std::vector<Cpt::RowEntry> kept;
      double sum = 0;
      for (const Cpt::RowEntry& e : cpt_row.entries) {
        if (current.ProbabilityOf(e.dst) > 0) {
          kept.push_back(e);
          sum += e.prob;
        }
      }
      if (kept.empty()) {
        // Rescue: keep the row's best destination so every supported
        // source retains a row (support widens accordingly below).
        const Cpt::RowEntry* best = &cpt_row.entries[0];
        for (const Cpt::RowEntry& e : cpt_row.entries) {
          if (e.prob > best->prob) best = &e;
        }
        kept.push_back({best->dst, 1.0});
        sum = 1.0;
      }
      for (auto& e : kept) e.prob /= sum;
      restricted.SetRow(cpt_row.src, std::move(kept));
    }
    Distribution prev = stream.marginal(t - 1);
    current = restricted.Propagate(prev);
    current.Normalize();
    stream.Append(current, std::move(restricted));
  }
  return stream;
}

}  // namespace caldera
