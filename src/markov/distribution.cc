#include "markov/distribution.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/encoding.h"

namespace caldera {

Distribution Distribution::FromPairs(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.value < b.value; });
  Distribution d;
  for (const Entry& e : entries) {
    if (!d.entries_.empty() && d.entries_.back().value == e.value) {
      d.entries_.back().prob += e.prob;
    } else {
      d.entries_.push_back(e);
    }
  }
  return d;
}

Distribution Distribution::FromDense(const std::vector<double>& probs) {
  Distribution d;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] != 0.0) {
      d.entries_.push_back({static_cast<ValueId>(i), probs[i]});
    }
  }
  return d;
}

Distribution Distribution::FromSorted(std::vector<Entry> entries) {
#ifndef NDEBUG
  for (size_t i = 1; i < entries.size(); ++i) {
    assert(entries[i - 1].value < entries[i].value &&
           "FromSorted entries must be strictly ascending");
  }
#endif
  Distribution d;
  d.entries_ = std::move(entries);
  return d;
}

Distribution Distribution::FromDenseScratch(std::vector<double>& dense,
                                            ValueId begin, ValueId end) {
  size_t count = 0;
  for (ValueId i = begin; i < end; ++i) count += dense[i] != 0.0 ? 1 : 0;
  Distribution d;
  d.entries_.reserve(count);
  for (ValueId i = begin; i < end; ++i) {
    if (dense[i] != 0.0) {
      d.entries_.push_back({i, dense[i]});
      dense[i] = 0.0;
    }
  }
  return d;
}

Distribution Distribution::Point(ValueId value) {
  Distribution d;
  d.entries_.push_back({value, 1.0});
  return d;
}

void Distribution::Add(ValueId value, double prob) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), value,
      [](const Entry& e, ValueId v) { return e.value < v; });
  if (it != entries_.end() && it->value == value) {
    it->prob += prob;
  } else {
    entries_.insert(it, {value, prob});
  }
}

double Distribution::ProbabilityOf(ValueId value) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), value,
      [](const Entry& e, ValueId v) { return e.value < v; });
  if (it != entries_.end() && it->value == value) return it->prob;
  return 0.0;
}

double Distribution::Mass() const {
  double total = 0;
  for (const Entry& e : entries_) total += e.prob;
  return total;
}

void Distribution::Normalize() {
  double mass = Mass();
  if (mass <= 0) return;
  for (Entry& e : entries_) e.prob /= mass;
}

void Distribution::Truncate(double eps) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [eps](const Entry& e) { return e.prob < eps; }),
                 entries_.end());
  Normalize();
}

bool Distribution::IsNormalized(double tol) const {
  return std::fabs(Mass() - 1.0) <= tol;
}

void Distribution::AppendTo(std::string* out) const {
  PutFixed32(static_cast<uint32_t>(entries_.size()), out);
  for (const Entry& e : entries_) {
    PutFixed32(e.value, out);
    PutDouble(e.prob, out);
  }
}

Result<Distribution> Distribution::Parse(std::string_view data,
                                         size_t* offset) {
  if (*offset + 4 > data.size()) {
    return Status::Corruption("truncated distribution header");
  }
  uint32_t count = GetFixed32(data.data() + *offset);
  *offset += 4;
  if (*offset + count * 12ull > data.size()) {
    return Status::Corruption("truncated distribution entries");
  }
  Distribution d;
  d.entries_.reserve(count);
  ValueId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    ValueId value = GetFixed32(data.data() + *offset);
    double prob = GetDouble(data.data() + *offset + 4);
    *offset += 12;
    if (i > 0 && value <= prev) {
      return Status::Corruption("distribution entries out of order");
    }
    prev = value;
    d.entries_.push_back({value, prob});
  }
  return d;
}

}  // namespace caldera
