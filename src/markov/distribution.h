#ifndef CALDERA_MARKOV_DISTRIBUTION_H_
#define CALDERA_MARKOV_DISTRIBUTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace caldera {

/// Identifier of one state of a Markovian stream (e.g. one location in the
/// RFID domain, or a mixed-radix encoding of a multi-attribute state).
using ValueId = uint32_t;

/// A sparse probability vector over stream states: the marginal distribution
/// of one timestep. Entries are sorted by value id; values absent from the
/// support have probability zero.
class Distribution {
 public:
  struct Entry {
    ValueId value;
    double prob;

    bool operator==(const Entry&) const = default;
  };

  Distribution() = default;

  /// Builds from (value, prob) pairs; pairs need not be sorted and repeated
  /// values are summed.
  static Distribution FromPairs(std::vector<Entry> entries);

  /// Builds from a dense probability vector (zeros dropped).
  static Distribution FromDense(const std::vector<double>& probs);

  /// Builds from entries already sorted by value with no duplicates —
  /// the move-friendly fast path for kernel outputs and merges of a single
  /// sorted run (no re-sort, no merge pass). Checked in debug builds.
  static Distribution FromSorted(std::vector<Entry> entries);

  /// Drains the nonzero slots of `dense[begin, end)` into a distribution
  /// and zeroes them, restoring the all-zero scratch invariant of a
  /// kernels::PropagationWorkspace. One exact-sized allocation.
  static Distribution FromDenseScratch(std::vector<double>& dense,
                                       ValueId begin, ValueId end);

  /// Point mass on `value`.
  static Distribution Point(ValueId value);

  /// Adds `prob` to the mass of `value` (build helper; keeps order).
  void Add(ValueId value, double prob);

  /// Probability of `value` (0 if outside the support).
  double ProbabilityOf(ValueId value) const;

  /// Sum of the probability mass of all values matched by `matcher`.
  template <typename Matcher>
  double MassWhere(const Matcher& matcher) const {
    double total = 0;
    for (const Entry& e : entries_) {
      if (matcher(e.value)) total += e.prob;
    }
    return total;
  }

  /// Total mass (1.0 for a normalized distribution; access methods also use
  /// sub-stochastic vectors internally).
  double Mass() const;

  /// Scales entries so Mass() == 1. No-op on an empty distribution.
  void Normalize();

  /// Drops entries with prob < eps and renormalizes. Models the finite
  /// sample count of sample-based smoothing (Section 2.1 of the paper).
  void Truncate(double eps);

  bool IsNormalized(double tol = 1e-9) const;

  bool empty() const { return entries_.empty(); }
  size_t support_size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Largest value id in the support + 1 (0 if empty).
  ValueId MaxValueExclusive() const {
    return entries_.empty() ? 0 : entries_.back().value + 1;
  }

  bool operator==(const Distribution&) const = default;

  // Binary serialization: u32 count, then count * (u32 value, f64 prob).
  void AppendTo(std::string* out) const;
  static Result<Distribution> Parse(std::string_view data, size_t* offset);

 private:
  std::vector<Entry> entries_;
};

}  // namespace caldera

#endif  // CALDERA_MARKOV_DISTRIBUTION_H_
